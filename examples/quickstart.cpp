// Quickstart: perform 100 units of idempotent work on 10 crash-prone
// processes with Protocol B, the paper's all-round workhorse (work-optimal,
// O(t^1.5) messages, O(n + t) time), under a random crash schedule.
//
//   $ ./quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "core/runner.h"

int main(int argc, char** argv) {
  using namespace dowork;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  DoAllConfig cfg{/*n=*/100, /*t=*/10};

  // Up to t-1 = 9 processes may crash; each non-idle step carries an 8%
  // chance until the budget runs out.  The Do-All guarantee: as long as one
  // process survives, all 100 units get done.
  RunResult result =
      run_do_all("B", cfg, std::make_unique<RandomFaults>(0.08, cfg.t - 1, seed));

  if (!result.ok()) {
    std::fprintf(stderr, "run violated its guarantees: %s\n", result.violation.c_str());
    return 1;
  }
  const RunMetrics& m = result.metrics;
  std::printf("all %lld units performed: %s\n", static_cast<long long>(cfg.n),
              m.all_units_done() ? "yes" : "no");
  std::printf("crashes survived:        %llu\n", static_cast<unsigned long long>(m.crashes));
  std::printf("work performed:          %llu units (multiplicity included; <= 3n = %lld)\n",
              static_cast<unsigned long long>(m.work_total), static_cast<long long>(3 * cfg.n));
  std::printf("messages sent:           %llu (checkpoints %llu, go-aheads %llu)\n",
              static_cast<unsigned long long>(m.messages_total),
              static_cast<unsigned long long>(m.messages_of(MsgKind::kCheckpoint)),
              static_cast<unsigned long long>(m.messages_of(MsgKind::kGoAhead)));
  std::printf("rounds until all retired: %s (<= 3n + 8t)\n",
              m.last_retire_round.to_string().c_str());
  return 0;
}
