// The paper's motivating scenario (Section 1): before fuel is added to a
// reactor, a set of valves must be verified closed.  Verification is
// idempotent, so it fits the Do-All mold exactly; we need every valve
// checked even if all but one controller node fails mid-procedure.
//
// This example runs Protocol A with a work sink that records which
// controller verified which valve and when, under an adversarial cascade
// that kills each active controller shortly after it takes over.
#include <cstdio>
#include <vector>

#include "core/registry.h"
#include "sim/simulator.h"

int main() {
  using namespace dowork;

  constexpr int kValves = 48;
  constexpr int kControllers = 9;
  DoAllConfig cfg{kValves, kControllers};

  struct Check {
    int controller;
    std::string round;
  };
  std::vector<std::vector<Check>> log(kValves);

  Simulator::Options opts;
  opts.n_units = kValves;
  opts.strict_one_op = true;
  // Adversary: every controller that becomes active dies after verifying 7
  // valves, its checkpoint broadcast reaching a single peer.
  Simulator sim(make_processes(find_protocol("A"), cfg),
                std::make_unique<WorkCascadeFaults>(7, kControllers - 1, /*deliver_prefix=*/1),
                opts);
  sim.set_work_sink([&](int proc, std::int64_t unit, const Round& round) {
    log[static_cast<std::size_t>(unit - 1)].push_back(Check{proc, round.to_string()});
  });
  RunMetrics m = sim.run();

  std::printf("valve verification complete: %s (%llu controller crashes survived)\n\n",
              m.all_units_done() ? "YES" : "NO", static_cast<unsigned long long>(m.crashes));
  std::printf("%-8s %-10s %s\n", "valve", "checks", "verified by (controller@round)");
  std::uint64_t rechecks = 0;
  for (int v = 0; v < kValves; ++v) {
    const auto& checks = log[static_cast<std::size_t>(v)];
    rechecks += checks.size() - 1;
    std::string who;
    for (const Check& c : checks)
      who += "c" + std::to_string(c.controller) + "@" + c.round + " ";
    if (v < 12 || checks.size() > 1)
      std::printf("%-8d %-10zu %s\n", v + 1, checks.size(), who.c_str());
  }
  std::printf("...\nredundant re-checks forced by crashes: %llu (bounded by 2n; checking "
              "twice is safe because verification is idempotent)\n",
              static_cast<unsigned long long>(rechecks));
  std::printf("messages: %llu, rounds: %s\n",
              static_cast<unsigned long long>(m.messages_total),
              m.last_retire_round.to_string().c_str());
  return m.all_units_done() ? 0 : 1;
}
