// Dynamic workload example: a build farm where compile jobs arrive at
// whichever frontend accepted the client connection, machines can be
// reclaimed at any moment, and the farm must guarantee that every job whose
// submission was acknowledged (gossiped once) eventually runs.
//
// This drives the dynamic extension of Protocol D (see
// src/dynamic/dynamic_d.h and the paper's Sections 1/4 remark about work
// "continually coming in to different sites").
#include <cstdio>

#include "dynamic/dynamic_d.h"

int main() {
  using namespace dowork;

  constexpr int kMachines = 8;
  DynamicConfig cfg;
  cfg.t = kMachines;
  cfg.max_units = 60;
  cfg.horizon = 100;  // the farm drains after round 100
  // Jobs 1..20 arrive at frontend 0 immediately; 21..40 hit frontend 3 at
  // round 20; 41..60 hit frontend 5 at round 55.
  Arrival early{0, 0, {}}, mid{20, 3, {}}, late{55, 5, {}};
  for (std::int64_t u = 1; u <= 20; ++u) early.units.push_back(u);
  for (std::int64_t u = 21; u <= 40; ++u) mid.units.push_back(u);
  for (std::int64_t u = 41; u <= 60; ++u) late.units.push_back(u);
  cfg.arrivals = {early, mid, late};

  // Users reclaim machines 6 and 7 early (machine 5 keeps its queue).
  std::vector<ScheduledFaults::Entry> reclaims{{6, 3, CrashPlan{true, 0}},
                                               {7, 8, CrashPlan{false, 1}}};
  DynamicRunResult r =
      run_dynamic_do_all(cfg, std::make_unique<ScheduledFaults>(std::move(reclaims)));

  std::printf("build farm drained: %s\n", r.metrics.all_retired ? "yes" : "NO");
  std::printf("jobs executed:      %llu (60 submitted, %llu machine reclaims)\n",
              static_cast<unsigned long long>(r.metrics.work_total),
              static_cast<unsigned long long>(r.metrics.crashes));
  std::printf("acknowledged jobs lost: %zu%s\n", r.lost_units.size(),
              r.all_known_work_done ? "" : "  <-- BUG");
  std::printf("gossip messages:    %llu over %s rounds\n",
              static_cast<unsigned long long>(r.metrics.messages_total),
              r.metrics.last_retire_round.to_string().c_str());

  std::printf("\nper-machine jobs run: ");
  for (int p = 0; p < kMachines; ++p)
    std::printf("m%d=%llu ", p,
                static_cast<unsigned long long>(r.metrics.work_by_proc[static_cast<std::size_t>(p)]));
  std::printf("\n");
  return r.all_known_work_done ? 0 : 1;
}
