// Section 5 application: crash-tolerant Byzantine agreement built on the
// work protocols.  A coordinator ("general") pushes a configuration version
// to a 60-node cluster tolerating 7 crashes: the general informs the 8
// senders, and the senders treat "tell node i the value" as Do-All work.
// Even if the general dies mid-broadcast and senders keep crashing, every
// surviving node decides the same version.
#include <cstdio>

#include "agreement/byzantine.h"

namespace {

void report(const char* scenario, const dowork::ByzantineResult& r) {
  std::printf("%-34s agreement=%-3s validity=%-3s general_crashed=%-3s msgs=%llu\n", scenario,
              r.agreement ? "yes" : "NO", r.validity ? "yes" : "NO",
              r.general_crashed ? "yes" : "no",
              static_cast<unsigned long long>(r.metrics.messages_total));
  // Show a few decisions.
  std::printf("    decisions: ");
  int shown = 0;
  for (std::size_t i = 0; i < r.decisions.size() && shown < 8; ++i) {
    if (r.decisions[i]) {
      std::printf("node%zu=%lld ", i, static_cast<long long>(*r.decisions[i]));
      ++shown;
    }
  }
  std::printf("...\n");
}

}  // namespace

int main() {
  using namespace dowork;

  ByzantineConfig cfg;
  cfg.n_procs = 60;
  cfg.t_faults = 7;
  cfg.value = 2024;     // the config version being agreed on
  cfg.protocol = "B";   // O(n + t*sqrt(t)) messages, O(n) rounds

  report("failure-free:", run_byzantine(cfg, std::make_unique<NoFaults>()));

  // The general crashes while telling the senders, reaching only 3 of them.
  report("general dies mid-broadcast:",
         run_byzantine(cfg, std::make_unique<ScheduledFaults>(std::vector<ScheduledFaults::Entry>{
                                {0, 1, CrashPlan{false, 3}}})));

  // Every sender that takes over dies after informing two more nodes.
  report("sender takeover cascade:",
         run_byzantine(cfg, std::make_unique<WorkCascadeFaults>(2, cfg.t_faults, 1)));

  // Same guarantees via Protocol C: fewer messages, exponential (simulated)
  // time -- note the round counter below.
  cfg.protocol = "C";
  ByzantineResult rc = run_byzantine(cfg, std::make_unique<WorkCascadeFaults>(2, cfg.t_faults, 1));
  report("via Protocol C (msg-frugal):", rc);
  std::printf("    (protocol C decision round ~ 2^%d -- exact, thanks to 512-bit rounds)\n",
              rc.metrics.last_retire_round.log2_floor());
  return 0;
}
