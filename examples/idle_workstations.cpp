// The paper's second motivating scenario (Section 1): a LAN where jobs are
// farmed out to idle workstations, and a "failure" is a user reclaiming her
// machine.  Time matters here -- all machines should crunch in parallel --
// so this is Protocol D territory: n/t + 2 rounds when nobody reclaims,
// graceful degradation as machines disappear, and a revert to Protocol A if
// most of the pool vanishes at once.
#include <cstdio>
#include <vector>

#include "core/registry.h"
#include "sim/simulator.h"

namespace {

dowork::RunMetrics render_farm(int frames, int machines, int reclaimed,
                               std::vector<std::uint64_t>* per_machine) {
  using namespace dowork;
  DoAllConfig cfg{frames, machines};
  Simulator::Options opts;
  opts.n_units = frames;
  opts.strict_one_op = true;
  // Users reclaim `reclaimed` machines, each after it rendered 5 frames.
  Simulator sim(make_processes(find_protocol("D"), cfg),
                std::make_unique<WorkCascadeFaults>(5, reclaimed, 0), opts);
  RunMetrics m = sim.run();
  if (per_machine) *per_machine = m.work_by_proc;
  return m;
}

}  // namespace

int main() {
  using namespace dowork;
  constexpr int kFrames = 320;
  constexpr int kMachines = 16;

  std::printf("Render farm: %d frames across %d idle workstations (Protocol D)\n\n", kFrames,
              kMachines);
  std::printf("%-22s %-8s %-8s %-10s %-8s\n", "scenario", "frames", "redone", "messages",
              "rounds");
  for (int reclaimed : {0, 1, 4, 8, 12}) {
    std::vector<std::uint64_t> per_machine;
    RunMetrics m = render_farm(kFrames, kMachines, reclaimed, &per_machine);
    if (!m.all_units_done()) {
      std::fprintf(stderr, "frames lost!\n");
      return 1;
    }
    char label[64];
    std::snprintf(label, sizeof label, "%d machines reclaimed", reclaimed);
    std::printf("%-22s %-8llu %-8llu %-10llu %-8s\n", label,
                static_cast<unsigned long long>(m.work_total),
                static_cast<unsigned long long>(m.work_total - kFrames),
                static_cast<unsigned long long>(m.messages_total),
                m.last_retire_round.to_string().c_str());
  }

  std::printf("\nLoad balance in the failure-free run:\n");
  std::vector<std::uint64_t> per_machine;
  render_farm(kFrames, kMachines, 0, &per_machine);
  for (int p = 0; p < kMachines; ++p)
    std::printf("  machine %2d: %llu frames\n", p,
                static_cast<unsigned long long>(per_machine[static_cast<std::size_t>(p)]));
  std::printf("\nEvery machine rendered frames in parallel (n/t each); with reclamations the "
              "survivors redo the lost slices, and a mass reclamation falls back to the "
              "sequential checkpointing protocol rather than thrashing.\n");
  return 0;
}
