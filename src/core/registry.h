// Protocol registry: maps protocol names to process factories plus the
// invariants the verifier should enforce for them.  Used by the test
// parameter sweeps, the benchmark harness and the examples.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/work.h"
#include "sim/process.h"

namespace dowork {

struct ProtocolInfo {
  std::string name;
  // At most one process performs work in any round (Protocols A/B/C and the
  // single-worker baselines; false for Protocol D and baseline_all).
  bool sequential = false;
  // Obeys the paper's one-operation-per-round accounting (enforced by the
  // simulator's strict mode).
  bool strict_one_op = false;
  std::function<std::unique_ptr<IProcess>(const DoAllConfig&, int self)> make_proc;
  // Scenario hook: protocols whose construction takes a tunable integer
  // (e.g. baseline_checkpoint's units-per-checkpoint).  Null for the rest;
  // the harness sweeps the parameter via RunOptions::protocol_param.
  std::function<std::unique_ptr<IProcess>(const DoAllConfig&, int self, std::int64_t param)>
      make_proc_param;
  // Whole-run factory for protocols whose processes share run-scoped state
  // (Protocol D's agreement merge cache -- a pure memoization shared by the
  // t sibling processes of ONE run, never across runs or threads).  When
  // set, make_processes uses this instead of t make_proc calls.
  std::function<std::vector<std::unique_ptr<IProcess>>(const DoAllConfig&)> make_procs;
};

// All registered protocols (baselines, A, B, C, C_batch, naive_C, D).
const std::vector<ProtocolInfo>& all_protocols();

// Lookup by name; throws std::invalid_argument for unknown names.
const ProtocolInfo& find_protocol(const std::string& name);

// Instantiate the full process vector for a run.  `param` selects the
// parameterized factory (make_proc_param) when set; protocols without one
// reject a param loudly rather than silently ignoring it.
// `shared_state` selects whether the whole-run factory (make_procs) may be
// used.  The live thread substrate passes false: run-scoped shared caches
// (Protocol D's merge cache) assume single-threaded, ascending-id serving,
// and the cache-free processes are pinned metric-identical anyway
// (protocol_d_test), so independent construction is the thread-safe and
// observably-equal choice.
std::vector<std::unique_ptr<IProcess>> make_processes(const ProtocolInfo& info,
                                                      const DoAllConfig& cfg);
std::vector<std::unique_ptr<IProcess>> make_processes(const ProtocolInfo& info,
                                                      const DoAllConfig& cfg,
                                                      std::optional<std::int64_t> param,
                                                      bool shared_state = true);

}  // namespace dowork
