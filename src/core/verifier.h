// Post-run verification of the Do-All guarantees.
#pragma once

#include <string>

#include "core/registry.h"
#include "sim/metrics.h"

namespace dowork {

// Returns an empty string when the run satisfies the problem's requirements
// (and the protocol's declared invariants), otherwise a description of the
// first violation:
//   * the run must end with every process retired (no deadlock, no cap),
//   * every unit 1..n must have been performed at least once,
//   * sequential protocols must never have two workers in one round --
//     unless the network interfered with delivery (metrics.net_*), which
//     voids the reliable-delivery premise that invariant rests on.
std::string verify_run(const ProtocolInfo& info, const DoAllConfig& cfg,
                       const RunMetrics& metrics);

}  // namespace dowork
