#include "core/runner.h"

#include "sim/round_pool.h"

namespace dowork {

RunResult run_do_all(const ProtocolInfo& info, const DoAllConfig& cfg,
                     std::unique_ptr<FaultInjector> faults, const RunOptions& opts) {
  cfg.validate();
  Simulator::Options sim_opts;
  sim_opts.strict_one_op = info.strict_one_op && opts.enforce_strict;
  sim_opts.max_stepped_rounds = opts.max_stepped_rounds;
  sim_opts.n_units = cfg.n;
  sim_opts.net = opts.net;

  Simulator sim(make_processes(info, cfg, opts.protocol_param), std::move(faults), sim_opts);
  // The pool must outlive sim.run(): the simulator holds a raw pointer for
  // the duration of the run.  sim_threads == 1 keeps the classic serial
  // eval+commit loop (no executor, no threads).
  std::unique_ptr<RoundPool> pool;
  if (opts.sim_threads > 1) {
    pool = std::make_unique<RoundPool>(opts.sim_threads);
    sim.set_step_executor(pool.get());
  }
  RunResult result;
  result.metrics = sim.run();
  result.violation = verify_run(info, cfg, result.metrics);
  return result;
}

RunResult run_do_all(const std::string& protocol, const DoAllConfig& cfg,
                     std::unique_ptr<FaultInjector> faults, const RunOptions& opts) {
  return run_do_all(find_protocol(protocol), cfg, std::move(faults), opts);
}

}  // namespace dowork
