// Problem statement types for the Do-All problem (paper Section 1): t
// synchronous crash-prone processes must perform n independent idempotent
// units of work; completion is required in every execution in which at least
// one process survives.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dowork {

struct DoAllConfig {
  std::int64_t n = 0;  // units of work, numbered 1..n
  int t = 0;           // processes, numbered 0..t-1

  void validate() const {
    if (n < 1) throw std::invalid_argument("DoAllConfig: n must be >= 1");
    if (t < 1) throw std::invalid_argument("DoAllConfig: t must be >= 1");
  }
  std::string to_string() const { return "n=" + std::to_string(n) + " t=" + std::to_string(t); }
};

// ceil(a/b) for positive integers.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

// Smallest s with s*s >= t (the generalized sqrt(t) group size of Protocols
// A and B).
int int_sqrt_ceil(int t);

// Smallest power of two >= t, and its exponent (Protocol C's padded process
// count).
int pow2_ceil(int t);
int log2_of_pow2(int v);

}  // namespace dowork
