// One-call run harness: instantiate a protocol, execute it under a fault
// injector, verify the outcome, and return the metrics.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/registry.h"
#include "core/verifier.h"
#include "sim/fault_injector.h"
#include "sim/simulator.h"

namespace dowork {

struct RunResult {
  RunMetrics metrics;
  std::string violation;  // empty = verified OK
  bool ok() const { return violation.empty(); }
};

struct RunOptions {
  std::uint64_t max_stepped_rounds = 50'000'000;
  // Override the protocol's declared strictness (e.g. the Byzantine layer
  // legitimately pairs work with a value send).
  bool enforce_strict = true;
  // Scenario hook: tunable protocol parameter, forwarded to the registry's
  // make_proc_param factory (e.g. baseline_checkpoint's units-per-checkpoint).
  std::optional<std::int64_t> protocol_param;
  // Network weather, forwarded to Simulator::Options verbatim (the default
  // no-op spec keeps the run bit-for-bit crash-only).
  NetSpec net;
  // Round-parallel evaluation: shard each round's step list over this many
  // threads (RoundPool).  1 = the classic serial loop; any value yields
  // byte-identical results (see round_pool.h), so this is purely a
  // wall-clock knob for big single runs.
  int sim_threads = 1;
};

RunResult run_do_all(const ProtocolInfo& info, const DoAllConfig& cfg,
                     std::unique_ptr<FaultInjector> faults, const RunOptions& opts = {});

// Convenience overload: lookup by protocol name.
RunResult run_do_all(const std::string& protocol, const DoAllConfig& cfg,
                     std::unique_ptr<FaultInjector> faults, const RunOptions& opts = {});

}  // namespace dowork
