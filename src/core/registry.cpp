#include "core/registry.h"

#include <stdexcept>

#include "protocols/baseline_all.h"
#include "protocols/baseline_checkpoint.h"
#include "protocols/protocol_a.h"
#include "protocols/protocol_b.h"
#include "protocols/protocol_c.h"
#include "protocols/protocol_d.h"
#include "protocols/protocol_d_coord.h"

namespace dowork {

const std::vector<ProtocolInfo>& all_protocols() {
  static const std::vector<ProtocolInfo> kProtocols = [] {
    std::vector<ProtocolInfo> v;
    v.push_back(ProtocolInfo{
        .name = "baseline_all", .sequential = false, .strict_one_op = true,
        .make_proc = [](const DoAllConfig& cfg, int self) -> std::unique_ptr<IProcess> {
          return std::make_unique<BaselineAllProcess>(cfg, self);
        },
        .make_proc_param = {}, .make_procs = {}});
    v.push_back(ProtocolInfo{
        .name = "baseline_checkpoint", .sequential = true, .strict_one_op = true,
        .make_proc = [](const DoAllConfig& cfg, int self) -> std::unique_ptr<IProcess> {
          return std::make_unique<BaselineCheckpointProcess>(cfg, self, /*k=*/1);
        },
        .make_proc_param = [](const DoAllConfig& cfg, int self, std::int64_t units_per_ckpt)
            -> std::unique_ptr<IProcess> {
          return std::make_unique<BaselineCheckpointProcess>(cfg, self, units_per_ckpt);
        },
        .make_procs = {}});
    v.push_back(ProtocolInfo{
        .name = "A", .sequential = true, .strict_one_op = true,
        .make_proc = [](const DoAllConfig& cfg, int self) -> std::unique_ptr<IProcess> {
          return std::make_unique<ProtocolAProcess>(cfg, self);
        },
        .make_proc_param = {}, .make_procs = {}});
    v.push_back(ProtocolInfo{
        .name = "B", .sequential = true, .strict_one_op = true,
        .make_proc = [](const DoAllConfig& cfg, int self) -> std::unique_ptr<IProcess> {
          return std::make_unique<ProtocolBProcess>(cfg, self);
        },
        .make_proc_param = {}, .make_procs = {}});
    v.push_back(ProtocolInfo{
        .name = "C", .sequential = true, .strict_one_op = true,
        .make_proc = [](const DoAllConfig& cfg, int self) -> std::unique_ptr<IProcess> {
          return std::make_unique<ProtocolCProcess>(cfg, self);
        },
        .make_proc_param = {}, .make_procs = {}});
    v.push_back(ProtocolInfo{
        .name = "C_batch", .sequential = true, .strict_one_op = true,
        .make_proc = [](const DoAllConfig& cfg, int self) -> std::unique_ptr<IProcess> {
          ProtocolCOptions o;
          o.batch_reports = true;
          return std::make_unique<ProtocolCProcess>(cfg, self, o);
        },
        .make_proc_param = {}, .make_procs = {}});
    v.push_back(ProtocolInfo{
        .name = "naive_C", .sequential = true, .strict_one_op = true,
        .make_proc = [](const DoAllConfig& cfg, int self) -> std::unique_ptr<IProcess> {
          ProtocolCOptions o;
          o.fault_detection = false;
          return std::make_unique<ProtocolCProcess>(cfg, self, o);
        },
        .make_proc_param = {}, .make_procs = {}});
    v.push_back(ProtocolInfo{
        .name = "D", .sequential = false, .strict_one_op = true,
        .make_proc = [](const DoAllConfig& cfg, int self) -> std::unique_ptr<IProcess> {
          return std::make_unique<ProtocolDProcess>(cfg, self);
        },
        .make_proc_param = {},
        // The run's t processes share one agreement merge cache (a pure
        // memoization of the round's collective view fold -- protocol_d.h
        // documents why results are bit-identical with and without it).
        .make_procs = [](const DoAllConfig& cfg) {
          auto cache = std::make_shared<AgreeMergeCache>();
          std::vector<std::unique_ptr<IProcess>> procs;
          procs.reserve(static_cast<std::size_t>(cfg.t));
          for (int i = 0; i < cfg.t; ++i)
            procs.push_back(std::make_unique<ProtocolDProcess>(cfg, i, cache));
          return procs;
        }});
    v.push_back(ProtocolInfo{
        .name = "D_coord", .sequential = false, .strict_one_op = true,
        .make_proc = [](const DoAllConfig& cfg, int self) -> std::unique_ptr<IProcess> {
          return std::make_unique<ProtocolDCoordProcess>(cfg, self);
        },
        .make_proc_param = {}, .make_procs = {}});
    return v;
  }();
  return kProtocols;
}

const ProtocolInfo& find_protocol(const std::string& name) {
  for (const ProtocolInfo& p : all_protocols())
    if (p.name == name) return p;
  throw std::invalid_argument("unknown protocol: " + name);
}

std::vector<std::unique_ptr<IProcess>> make_processes(const ProtocolInfo& info,
                                                      const DoAllConfig& cfg) {
  return make_processes(info, cfg, std::nullopt);
}

std::vector<std::unique_ptr<IProcess>> make_processes(const ProtocolInfo& info,
                                                      const DoAllConfig& cfg,
                                                      std::optional<std::int64_t> param,
                                                      bool shared_state) {
  if (param && !info.make_proc_param)
    throw std::invalid_argument("protocol " + info.name + " takes no parameter");
  if (!param && shared_state && info.make_procs) return info.make_procs(cfg);
  std::vector<std::unique_ptr<IProcess>> procs;
  procs.reserve(static_cast<std::size_t>(cfg.t));
  for (int i = 0; i < cfg.t; ++i)
    procs.push_back(param ? info.make_proc_param(cfg, i, *param) : info.make_proc(cfg, i));
  return procs;
}

}  // namespace dowork
