#include "core/registry.h"

#include <stdexcept>

#include "protocols/baseline_all.h"
#include "protocols/baseline_checkpoint.h"
#include "protocols/protocol_a.h"
#include "protocols/protocol_b.h"
#include "protocols/protocol_c.h"
#include "protocols/protocol_d.h"
#include "protocols/protocol_d_coord.h"

namespace dowork {

const std::vector<ProtocolInfo>& all_protocols() {
  static const std::vector<ProtocolInfo> kProtocols = [] {
    std::vector<ProtocolInfo> v;
    v.push_back(ProtocolInfo{
        "baseline_all", /*sequential=*/false, /*strict_one_op=*/true,
        [](const DoAllConfig& cfg, int self) -> std::unique_ptr<IProcess> {
          return std::make_unique<BaselineAllProcess>(cfg, self);
        }});
    v.push_back(ProtocolInfo{
        "baseline_checkpoint", /*sequential=*/true, /*strict_one_op=*/true,
        [](const DoAllConfig& cfg, int self) -> std::unique_ptr<IProcess> {
          return std::make_unique<BaselineCheckpointProcess>(cfg, self, /*k=*/1);
        }});
    v.push_back(ProtocolInfo{
        "A", /*sequential=*/true, /*strict_one_op=*/true,
        [](const DoAllConfig& cfg, int self) -> std::unique_ptr<IProcess> {
          return std::make_unique<ProtocolAProcess>(cfg, self);
        }});
    v.push_back(ProtocolInfo{
        "B", /*sequential=*/true, /*strict_one_op=*/true,
        [](const DoAllConfig& cfg, int self) -> std::unique_ptr<IProcess> {
          return std::make_unique<ProtocolBProcess>(cfg, self);
        }});
    v.push_back(ProtocolInfo{
        "C", /*sequential=*/true, /*strict_one_op=*/true,
        [](const DoAllConfig& cfg, int self) -> std::unique_ptr<IProcess> {
          return std::make_unique<ProtocolCProcess>(cfg, self);
        }});
    v.push_back(ProtocolInfo{
        "C_batch", /*sequential=*/true, /*strict_one_op=*/true,
        [](const DoAllConfig& cfg, int self) -> std::unique_ptr<IProcess> {
          ProtocolCOptions o;
          o.batch_reports = true;
          return std::make_unique<ProtocolCProcess>(cfg, self, o);
        }});
    v.push_back(ProtocolInfo{
        "naive_C", /*sequential=*/true, /*strict_one_op=*/true,
        [](const DoAllConfig& cfg, int self) -> std::unique_ptr<IProcess> {
          ProtocolCOptions o;
          o.fault_detection = false;
          return std::make_unique<ProtocolCProcess>(cfg, self, o);
        }});
    v.push_back(ProtocolInfo{
        "D", /*sequential=*/false, /*strict_one_op=*/true,
        [](const DoAllConfig& cfg, int self) -> std::unique_ptr<IProcess> {
          return std::make_unique<ProtocolDProcess>(cfg, self);
        }});
    v.push_back(ProtocolInfo{
        "D_coord", /*sequential=*/false, /*strict_one_op=*/true,
        [](const DoAllConfig& cfg, int self) -> std::unique_ptr<IProcess> {
          return std::make_unique<ProtocolDCoordProcess>(cfg, self);
        }});
    return v;
  }();
  return kProtocols;
}

const ProtocolInfo& find_protocol(const std::string& name) {
  for (const ProtocolInfo& p : all_protocols())
    if (p.name == name) return p;
  throw std::invalid_argument("unknown protocol: " + name);
}

std::vector<std::unique_ptr<IProcess>> make_processes(const ProtocolInfo& info,
                                                      const DoAllConfig& cfg) {
  std::vector<std::unique_ptr<IProcess>> procs;
  procs.reserve(static_cast<std::size_t>(cfg.t));
  for (int i = 0; i < cfg.t; ++i) procs.push_back(info.make_proc(cfg, i));
  return procs;
}

}  // namespace dowork
