#include "core/verifier.h"

namespace dowork {

std::string verify_run(const ProtocolInfo& info, const DoAllConfig& cfg,
                       const RunMetrics& metrics) {
  if (metrics.aborted) return "run aborted: " + metrics.aborted_reason;
  if (metrics.hit_round_cap) return "run hit the stepped-round cap";
  if (metrics.deadlocked) return "run deadlocked: live processes with no timers or messages";
  if (!metrics.all_retired) return "run ended with unretired processes";
  if (static_cast<std::int64_t>(metrics.unit_multiplicity.size()) != cfg.n)
    return "metrics not configured with n units";
  for (std::int64_t u = 0; u < cfg.n; ++u) {
    if (metrics.unit_multiplicity[static_cast<std::size_t>(u)] == 0)
      return "unit " + std::to_string(u + 1) + " was never performed";
  }
  // The sequentiality invariant is a theorem about reliable next-round
  // delivery: a silent worker is a crashed worker, so a successor never
  // overlaps one.  When the network interfered (dropped, severed, or
  // delayed a record -- the net_* counters), that premise is void and
  // overlap is the *expected* cost of weather, so only the completion and
  // unit-coverage requirements above apply.
  const bool weather = metrics.net_dropped || metrics.net_blocked || metrics.net_delayed;
  if (!weather && info.sequential && metrics.max_concurrent_workers > 1)
    return "sequential protocol had " + std::to_string(metrics.max_concurrent_workers) +
           " concurrent workers";
  return {};
}

}  // namespace dowork
