#include "core/work.h"

namespace dowork {

int int_sqrt_ceil(int t) {
  int s = 1;
  while (s * s < t) ++s;
  return s;
}

int pow2_ceil(int t) {
  int v = 1;
  while (v < t) v *= 2;
  return v;
}

int log2_of_pow2(int v) {
  int l = 0;
  while ((1 << l) < v) ++l;
  return l;
}

}  // namespace dowork
