#include "substrate/wire.h"

#include <cstring>
#include <typeinfo>

#include "protocols/baseline_checkpoint.h"
#include "protocols/protocol_a.h"
#include "protocols/protocol_b.h"
#include "protocols/protocol_c.h"
#include "protocols/protocol_d.h"
#include "util/bitset.h"

namespace dowork::substrate::wire {

namespace {

// Payload type tags (closed set -- wire.h documents the policy).
enum class PayloadTag : std::uint8_t {
  kNull = 0,
  kCkptPartial = 1,
  kCkptFull = 2,
  kGoAhead = 3,
  kOrdinaryC = 4,
  kPollC = 5,
  kPollReplyC = 6,
  kAgree = 7,
  kBaselineCkpt = 8,
};

class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}

  void u8(std::uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void round(const Round& r) {
    if (r.fits_u64()) {
      u8(0);
      u64(r.to_u64_saturating());
    } else {
      u8(1);
      const BigUint big = r.as_big();
      for (int i = 0; i < BigUint::kLimbs; ++i) u64(big.limb(i));
    }
  }

  void bitset(const DynBitset& b) {
    u64(b.size());
    for (std::size_t i = 0; i < b.word_count(); ++i) u64(b.word(i));
  }

  void recipients(const RecipientSet& to) {
    if (const auto& bits = to.shared_bits()) {
      u8(1);
      bitset(bits->bits);
    } else {
      const IdRange r = to.range();
      u8(0);
      i32(r.first);
      i32(r.end);
    }
  }

  void payload(const Payload* p);

 private:
  void view_c(const ViewC& v) {
    u32(static_cast<std::uint32_t>(v.retired.size()));
    out_->append(reinterpret_cast<const char*>(v.retired.data()), v.retired.size());
    i64(v.point0);
    round(v.round0);
    u32(static_cast<std::uint32_t>(v.point.size()));
    for (int x : v.point) i32(x);
    u32(static_cast<std::uint32_t>(v.round.size()));
    for (const Round& r : v.round) round(r);
  }

  std::string* out_;
};

void Writer::payload(const Payload* p) {
  if (p == nullptr) {
    u8(static_cast<std::uint8_t>(PayloadTag::kNull));
    return;
  }
  if (const auto* m = detail::payload_as<CkptPartial>(p)) {
    u8(static_cast<std::uint8_t>(PayloadTag::kCkptPartial));
    i32(m->c);
  } else if (const auto* m = detail::payload_as<CkptFull>(p)) {
    u8(static_cast<std::uint8_t>(PayloadTag::kCkptFull));
    i32(m->c);
    i32(m->g);
  } else if (detail::payload_as<GoAhead>(p) != nullptr) {
    u8(static_cast<std::uint8_t>(PayloadTag::kGoAhead));
  } else if (const auto* m = detail::payload_as<OrdinaryC>(p)) {
    u8(static_cast<std::uint8_t>(PayloadTag::kOrdinaryC));
    view_c(m->view);
  } else if (detail::payload_as<PollC>(p) != nullptr) {
    u8(static_cast<std::uint8_t>(PayloadTag::kPollC));
  } else if (detail::payload_as<PollReplyC>(p) != nullptr) {
    u8(static_cast<std::uint8_t>(PayloadTag::kPollReplyC));
  } else if (const auto* m = detail::payload_as<AgreeMsg>(p)) {
    u8(static_cast<std::uint8_t>(PayloadTag::kAgree));
    i32(m->phase);
    bitset(m->s_left);
    bitset(m->t_alive);
    u8(m->done ? 1 : 0);
  } else if (const auto* m = detail::payload_as<BaselineCkpt>(p)) {
    u8(static_cast<std::uint8_t>(PayloadTag::kBaselineCkpt));
    i64(m->done);
  } else {
    throw WireError(std::string("unsupported payload type on the socket substrate: ") +
                    typeid(*p).name());
  }
}

class BodyReader {
 public:
  explicit BodyReader(std::string_view body)
      : p_(reinterpret_cast<const std::uint8_t*>(body.data())), end_(p_ + body.size()) {}

  std::uint8_t u8() {
    need(1);
    return *p_++;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(*p_++) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(*p_++) << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  Round round() {
    const std::uint8_t tag = u8();
    if (tag == 0) return Round{u64()};
    if (tag != 1) throw WireError("bad round tag");
    std::array<std::uint64_t, BigUint::kLimbs> limbs;
    for (auto& l : limbs) l = u64();
    return Round{BigUint::from_limbs(limbs)};
  }

  DynBitset bitset() {
    const std::uint64_t n = u64();
    // A bitset's size is a process/unit count; cap it like a frame length.
    if (n > kMaxFrameLen) throw WireError("bitset size out of range");
    DynBitset b(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < b.word_count(); ++i) b.assign_word(i, u64());
    return b;
  }

  RecipientSet recipients() {
    const std::uint8_t tag = u8();
    if (tag == 0) {
      const int first = i32();
      const int end = i32();
      return RecipientSet{IdRange{first, end}};
    }
    if (tag != 1) throw WireError("bad recipient-set tag");
    return RecipientSet{make_recipient_bits(bitset())};
  }

  MsgKind kind() {
    const std::uint8_t k = u8();
    if (k > static_cast<std::uint8_t>(MsgKind::kOther)) throw WireError("bad message kind");
    return static_cast<MsgKind>(k);
  }

  std::shared_ptr<const Payload> payload();

  void expect_end() const {
    if (p_ != end_) throw WireError("trailing bytes in frame body");
  }

 private:
  void need(std::size_t n) {
    if (static_cast<std::size_t>(end_ - p_) < n) throw WireError("truncated frame body");
  }

  ViewC view_c() {
    ViewC v;
    const std::uint32_t nr = u32();
    need(nr);
    v.retired.resize(nr);
    std::memcpy(v.retired.data(), p_, nr);
    p_ += nr;
    v.point0 = i64();
    v.round0 = round();
    const std::uint32_t np = u32();
    if (np > kMaxFrameLen) throw WireError("view size out of range");
    v.point.reserve(np);
    for (std::uint32_t i = 0; i < np; ++i) v.point.push_back(i32());
    const std::uint32_t nq = u32();
    if (nq > kMaxFrameLen) throw WireError("view size out of range");
    v.round.reserve(nq);
    for (std::uint32_t i = 0; i < nq; ++i) v.round.push_back(round());
    return v;
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

std::shared_ptr<const Payload> BodyReader::payload() {
  switch (static_cast<PayloadTag>(u8())) {
    case PayloadTag::kNull:
      return nullptr;
    case PayloadTag::kCkptPartial:
      return std::make_shared<CkptPartial>(i32());
    case PayloadTag::kCkptFull: {
      const int c = i32();
      const int g = i32();
      return std::make_shared<CkptFull>(c, g);
    }
    case PayloadTag::kGoAhead:
      return std::make_shared<GoAhead>();
    case PayloadTag::kOrdinaryC:
      return std::make_shared<OrdinaryC>(view_c());
    case PayloadTag::kPollC:
      return std::make_shared<PollC>();
    case PayloadTag::kPollReplyC:
      return std::make_shared<PollReplyC>();
    case PayloadTag::kAgree: {
      const int phase = i32();
      DynBitset s = bitset();
      DynBitset t = bitset();
      const bool done = u8() != 0;
      return std::make_shared<AgreeMsg>(phase, std::move(s), std::move(t), done);
    }
    case PayloadTag::kBaselineCkpt:
      return std::make_shared<BaselineCkpt>(i64());
  }
  throw WireError("bad payload tag");
}

// Wraps a finished body in the frame header.
std::string frame(FrameType type, const std::string& body) {
  const std::uint32_t len = static_cast<std::uint32_t>(body.size() + 1);
  std::string out;
  out.reserve(4 + len);
  Writer w(&out);
  w.u32(len);
  w.u8(static_cast<std::uint8_t>(type));
  out += body;
  return out;
}

}  // namespace

std::string encode_hello(const HelloMsg& h) {
  std::string body;
  Writer w(&body);
  w.i32(h.proc);
  w.round(h.wake0);
  w.i64(h.known0);
  return frame(FrameType::kHello, body);
}

std::string encode_deliver(int from, MsgKind kind, const Round& sent_round,
                           const Payload* payload) {
  std::string body;
  Writer w(&body);
  w.i32(from);
  w.u8(static_cast<std::uint8_t>(kind));
  w.round(sent_round);
  w.payload(payload);
  return frame(FrameType::kDeliver, body);
}

std::string encode_step(const Round& round) {
  std::string body;
  Writer w(&body);
  w.round(round);
  return frame(FrameType::kStep, body);
}

std::string encode_reply(const Action& action, const Round& next_wake, std::int64_t known) {
  std::string body;
  Writer w(&body);
  std::uint8_t flags = 0;
  if (action.work) flags |= 1;
  if (action.terminate) flags |= 2;
  w.u8(flags);
  if (action.work) w.i64(*action.work);
  w.u32(static_cast<std::uint32_t>(action.sends.size()));
  for (std::size_t i = 0; i < action.sends.size(); ++i) {
    const Outgoing& o = action.sends[i];
    w.u8(static_cast<std::uint8_t>(o.kind));
    w.recipients(o.to);
    // Payload sharing is semantic: the simulator's strict mode counts
    // distinct payload *objects* to enforce one-broadcast-per-round, so a
    // payload shared across sends must come back as one object, not a copy
    // per send.  A back-reference (1 + index of the earlier send) encodes
    // exactly the sharing structure; 0 means an inline payload follows.
    std::size_t shared_with = i;
    for (std::size_t j = 0; j < i; ++j)
      if (action.sends[j].payload.get() == o.payload.get()) { shared_with = j; break; }
    if (shared_with < i) {
      w.u32(static_cast<std::uint32_t>(shared_with) + 1);
    } else {
      w.u32(0);
      w.payload(o.payload.get());
    }
  }
  w.round(next_wake);
  w.i64(known);
  return frame(FrameType::kReply, body);
}

std::string encode_kill(std::uint32_t tear_bytes) {
  std::string body;
  Writer w(&body);
  w.u32(tear_bytes);
  return frame(FrameType::kKill, body);
}

std::string encode_exit() { return frame(FrameType::kExit, std::string()); }

HelloMsg decode_hello(std::string_view body) {
  BodyReader r(body);
  HelloMsg h;
  h.proc = r.i32();
  h.wake0 = r.round();
  h.known0 = r.i64();
  r.expect_end();
  return h;
}

Envelope decode_deliver(std::string_view body, int self) {
  BodyReader r(body);
  Envelope e;
  e.from = r.i32();
  e.to = self;
  e.kind = r.kind();
  e.sent_round = r.round();
  e.payload = r.payload();
  r.expect_end();
  return e;
}

Round decode_step(std::string_view body) {
  BodyReader r(body);
  Round round = r.round();
  r.expect_end();
  return round;
}

ReplyMsg decode_reply(std::string_view body) {
  BodyReader r(body);
  ReplyMsg m;
  const std::uint8_t flags = r.u8();
  if ((flags & 1) != 0) m.action.work = r.i64();
  m.action.terminate = (flags & 2) != 0;
  const std::uint32_t nsends = r.u32();
  if (nsends > kMaxFrameLen) throw WireError("send count out of range");
  m.action.sends.reserve(nsends);
  for (std::uint32_t i = 0; i < nsends; ++i) {
    Outgoing o;
    o.kind = r.kind();
    o.to = r.recipients();
    const std::uint32_t backref = r.u32();
    if (backref == 0) {
      o.payload = r.payload();
    } else if (backref <= i) {
      o.payload = m.action.sends[backref - 1].payload;
    } else {
      throw WireError("payload back-reference out of range");
    }
    m.action.sends.push_back(std::move(o));
  }
  m.next_wake = r.round();
  m.known = r.i64();
  r.expect_end();
  return m;
}

std::uint32_t decode_kill(std::string_view body) {
  BodyReader r(body);
  const std::uint32_t tear = r.u32();
  r.expect_end();
  return tear;
}

void FrameReader::feed(const void* data, std::size_t n) {
  buf_.append(static_cast<const char*>(data), n);
}

bool FrameReader::next(FrameType* type, std::string* body) {
  const std::size_t avail = buf_.size() - off_;
  if (avail < 4) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf_[off_ + static_cast<std::size_t>(i)]))
           << (8 * i);
  if (len == 0 || len > kMaxFrameLen) throw WireError("bad frame length");
  if (avail < 4 + static_cast<std::size_t>(len)) return false;
  const std::uint8_t t = static_cast<std::uint8_t>(buf_[off_ + 4]);
  if (t < static_cast<std::uint8_t>(FrameType::kHello) ||
      t > static_cast<std::uint8_t>(FrameType::kExit))
    throw WireError("bad frame type");
  *type = static_cast<FrameType>(t);
  body->assign(buf_, off_ + 5, static_cast<std::size_t>(len) - 1);
  off_ += 4 + static_cast<std::size_t>(len);
  // Compact once the consumed prefix dominates, keeping feed() amortized O(n).
  if (off_ > 4096 && off_ * 2 > buf_.size()) {
    buf_.erase(0, off_);
    off_ = 0;
  }
  return true;
}

}  // namespace dowork::substrate::wire
