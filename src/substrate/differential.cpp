#include "substrate/differential.h"

#include <cstddef>
#include <utility>

#include "substrate/socket_substrate.h"

namespace dowork::substrate {

namespace {

std::string diff_u64(const char* field, std::uint64_t a, std::uint64_t b) {
  if (a == b) return "";
  return std::string(field) + ": sim=" + std::to_string(a) + " live=" + std::to_string(b);
}

std::string diff_round(const char* field, const Round& a, const Round& b) {
  if (!(a < b) && !(b < a)) return "";
  return std::string(field) + ": sim=" + a.to_string() + " live=" + b.to_string();
}

std::string diff_vec(const char* field, const std::vector<std::uint64_t>& a,
                     const std::vector<std::uint64_t>& b) {
  if (a.size() != b.size())
    return std::string(field) + ".size: sim=" + std::to_string(a.size()) +
           " live=" + std::to_string(b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i])
      return std::string(field) + "[" + std::to_string(i) + "]: sim=" + std::to_string(a[i]) +
             " live=" + std::to_string(b[i]);
  return "";
}

}  // namespace

std::string compare_metrics(const RunMetrics& sim, const RunMetrics& live) {
  std::string d;
  if (!(d = diff_u64("work_total", sim.work_total, live.work_total)).empty()) return d;
  if (!(d = diff_u64("messages_total", sim.messages_total, live.messages_total)).empty()) return d;
  if (!(d = diff_round("last_retire_round", sim.last_retire_round, live.last_retire_round)).empty())
    return d;
  if (!(d = diff_round("available_processor_steps", sim.available_processor_steps,
                       live.available_processor_steps))
           .empty())
    return d;
  for (std::size_t k = 0; k < sim.messages_by_kind.size(); ++k)
    if (sim.messages_by_kind[k] != live.messages_by_kind[k])
      return "messages_by_kind[" + std::to_string(k) +
             "]: sim=" + std::to_string(sim.messages_by_kind[k]) +
             " live=" + std::to_string(live.messages_by_kind[k]);
  if (!(d = diff_u64("crashes", sim.crashes, live.crashes)).empty()) return d;
  if (!(d = diff_u64("terminated", sim.terminated, live.terminated)).empty()) return d;
  if (!(d = diff_u64("stepped_rounds", sim.stepped_rounds, live.stepped_rounds)).empty()) return d;
  if (!(d = diff_u64("fast_forward_jumps", sim.fast_forward_jumps, live.fast_forward_jumps))
           .empty())
    return d;
  if (!(d = diff_u64("max_concurrent_workers", sim.max_concurrent_workers,
                     live.max_concurrent_workers))
           .empty())
    return d;
  if (!(d = diff_u64("net_dropped", sim.net_dropped, live.net_dropped)).empty()) return d;
  if (!(d = diff_u64("net_blocked", sim.net_blocked, live.net_blocked)).empty()) return d;
  if (!(d = diff_u64("net_delayed", sim.net_delayed, live.net_delayed)).empty()) return d;
  if (!(d = diff_vec("unit_multiplicity", sim.unit_multiplicity, live.unit_multiplicity)).empty())
    return d;
  if (!(d = diff_vec("work_by_proc", sim.work_by_proc, live.work_by_proc)).empty()) return d;
  if (!(d = diff_vec("messages_by_proc", sim.messages_by_proc, live.messages_by_proc)).empty())
    return d;
  if (sim.all_retired != live.all_retired)
    return std::string("all_retired: sim=") + (sim.all_retired ? "1" : "0") +
           " live=" + (live.all_retired ? "1" : "0");
  if (sim.deadlocked != live.deadlocked)
    return std::string("deadlocked: sim=") + (sim.deadlocked ? "1" : "0") +
           " live=" + (live.deadlocked ? "1" : "0");
  if (sim.hit_round_cap != live.hit_round_cap)
    return std::string("hit_round_cap: sim=") + (sim.hit_round_cap ? "1" : "0") +
           " live=" + (live.hit_round_cap ? "1" : "0");
  if (sim.aborted != live.aborted)
    return std::string("aborted: sim=") + (sim.aborted ? "1" : "0") +
           " live=" + (live.aborted ? "1" : "0") +
           (live.aborted ? " (" + live.aborted_reason + ")" : " (" + sim.aborted_reason + ")");
  return "";
}

DiffResult run_differential(const ProtocolInfo& info, const DoAllConfig& cfg,
                            const InjectorFactory& make_injector, const DiffOptions& opts) {
  DiffResult result;
  result.sim = run_do_all(info, cfg, make_injector(), opts.run);

  LiveOptions live;
  live.schedule = LiveOptions::Schedule::kDeterministic;
  live.watchdog_ms = opts.watchdog_ms;
  live.join_grace_ms = opts.join_grace_ms;
  live.transport = opts.transport;
  result.live = opts.live_backend == Backend::kSocket
                    ? run_socket_do_all(info, cfg, make_injector(), opts.run, live)
                    : run_live_do_all(info, cfg, make_injector(), opts.run, live);

  if (!result.sim.ok()) {
    result.divergence = "sim leg failed verification: " + result.sim.violation;
    return result;
  }
  if (!result.live.run.ok()) {
    result.divergence = "live leg failed verification: " + result.live.run.violation;
    return result;
  }
  result.divergence = compare_metrics(result.sim.metrics, result.live.run.metrics);
  return result;
}

DiffResult run_differential(const std::string& protocol, const DoAllConfig& cfg,
                            const InjectorFactory& make_injector, const DiffOptions& opts) {
  return run_differential(find_protocol(protocol), cfg, make_injector, opts);
}

}  // namespace dowork::substrate
