// The simulator as differential-testing oracle (the headline of ROADMAP
// item 4): run the identical (protocol, shape, FaultSpec, seed) case on
// both execution substrates and compare.
//
// Two modes, matching the two live schedules:
//
//   * Deterministic barrier schedule -- the live backend commits in
//     ascending process id, reproducing the simulator's serial
//     interleaving, so EVERY deterministic RunMetrics field must match the
//     sim run field for field (compare_metrics reports the first
//     divergence).  A mismatch is a bug in one of the substrates, never
//     acceptable noise.
//   * Free schedule -- commits land in completion order, the OS scheduler
//     is a real adversary, and metric equality is not expected; callers
//     assert only the paper bounds (src/harness/bounds.h) and the verifier.
//
// run_differential drives the deterministic mode end to end; the harness's
// `differential` experiment family and dowork_fuzz --differential are built
// on it.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "substrate/substrate.h"

namespace dowork::substrate {

// Field-for-field comparison of two runs' deterministic metrics.  Returns
// "" when equal, else a human-readable first-divergence description
// ("messages_total: sim=96 live=94").  Wall-clock and LiveStats fields are
// substrate-specific and never compared.
std::string compare_metrics(const RunMetrics& sim, const RunMetrics& live);

struct DiffOptions {
  RunOptions run;
  // Watchdog/join settings for the live leg (schedule is forced to
  // deterministic; that's the mode with an equality oracle).
  std::uint64_t watchdog_ms = 10'000;
  std::uint64_t join_grace_ms = 2'000;
  // Which live substrate supplies the non-oracle leg: worker threads
  // (default) or worker OS processes over localhost sockets
  // (socket_substrate.h); transport applies to the latter only.
  Backend live_backend = Backend::kThread;
  Transport transport = Transport::kUds;
};

struct DiffResult {
  RunResult sim;        // the oracle leg
  LiveRunResult live;   // the live-substrate leg (thread or socket)
  std::string divergence;  // "" = metric-for-metric equal and both legs verified
  bool ok() const { return divergence.empty(); }
};

// Runs the case on the simulator, then on the thread substrate under the
// deterministic barrier schedule, and checks: sim leg verifies, live leg
// verifies, metrics equal.  The injector factory is called once per leg and
// must produce independent injectors with identical deterministic behavior
// (every FaultSpec::make satisfies this -- specs are pure descriptions and
// adaptive strategies derive their choices from seed + observed state,
// which the deterministic schedule makes identical across legs).
using InjectorFactory = std::function<std::unique_ptr<FaultInjector>()>;

DiffResult run_differential(const ProtocolInfo& info, const DoAllConfig& cfg,
                            const InjectorFactory& make_injector, const DiffOptions& opts = {});
DiffResult run_differential(const std::string& protocol, const DoAllConfig& cfg,
                            const InjectorFactory& make_injector, const DiffOptions& opts = {});

}  // namespace dowork::substrate
