// The socket-process substrate (ROADMAP item 2): the same IProcess protocol
// objects, each running in its OWN OS PROCESS, speaking the length-prefixed
// wire format (substrate/wire.h) over localhost Unix-domain or TCP sockets
// to a coordinator that implements the thread substrate's deterministic
// round barrier.
//
// Topology per run: the coordinator keeps the real Simulator + the
// unmodified FaultSpec/adversary/verifier stack; its process objects are
// thin socket proxies.  Each worker process re-instantiates the protocol
// roster from the registry (deterministic construction) and keeps only its
// own process object.  One round = the coordinator ships each stepped
// worker its mail (one kDeliver frame per message, the frame bytes built
// once per broadcast) plus a kStep, then pumps replies under the watchdog
// deadline.  Under the deterministic schedule the commit order is
// ascending id, so every metric and adversary decision is byte-identical
// to the simulator -- which is what lets the differential family use the
// sim as a metric-for-metric oracle across a real process boundary.
//
// Crashes are real: a send-commit or round-barrier kill is kill(SIGKILL);
// a mid-broadcast kill asks the worker (kKill) to flush the first N bytes
// of a framed record and then SIGKILL itself, so the coordinator's reader
// exercises genuine partial-write recovery.  Supervision is process-grade:
// connect/accept/read deadlines with bounded retry+backoff, waitpid
// reaping, EPIPE/ECONNRESET from a model-dead worker mapped to
// crash-observations (a model-alive worker dying is a structured abort,
// never a harness crash), and hangs degraded into aborted/aborted_reason/
// abort_detail rows so no scenario can wedge CTest.  Unlike threads,
// processes can always be reaped -- the socket backend never leaks a run.
#pragma once

#include <memory>
#include <string>

#include "substrate/substrate.h"

namespace dowork::substrate {

// Socket counterpart of run_live_do_all (substrate.h): same protocol
// instantiation, fault injector and verifier, executed across real OS
// processes.  LiveOptions::transport picks UDS (default) or TCP.
LiveRunResult run_socket_do_all(const ProtocolInfo& info, const DoAllConfig& cfg,
                                std::unique_ptr<FaultInjector> faults, const RunOptions& opts = {},
                                const LiveOptions& live = {});
LiveRunResult run_socket_do_all(const std::string& protocol, const DoAllConfig& cfg,
                                std::unique_ptr<FaultInjector> faults, const RunOptions& opts = {},
                                const LiveOptions& live = {});

// Worker re-entry hook.  Workers are spawned as `/proc/self/exe
// --dowork-socket-worker ...` (fork + exec -- a bare fork from the
// multi-threaded scenario runner could inherit a held malloc lock), so
// every binary that can host a socket run calls this FIRST in main():
// returns -1 when argv is not a worker invocation, else the worker's exit
// code (0 clean, 2 bad args, 3 connect failure, 4 protocol error) for the
// caller to return immediately.
int maybe_socket_worker(int argc, char** argv);

}  // namespace dowork::substrate
