#include "substrate/substrate.h"

#include "substrate/socket_substrate.h"
#include "substrate/thread_substrate.h"

namespace dowork::substrate {

const char* to_string(Backend b) {
  switch (b) {
    case Backend::kSim: return "sim";
    case Backend::kThread: return "thread";
    case Backend::kSocket: return "socket";
  }
  return "?";
}

const char* to_string(Transport t) {
  switch (t) {
    case Transport::kUds: return "uds";
    case Transport::kTcp: return "tcp";
  }
  return "?";
}

namespace {

class SimSubstrate final : public ISubstrate {
 public:
  const char* name() const override { return "sim"; }
  RunResult run(const ProtocolInfo& info, const DoAllConfig& cfg,
                std::unique_ptr<FaultInjector> faults, const RunOptions& opts) override {
    return run_do_all(info, cfg, std::move(faults), opts);
  }
  LiveStats last_live_stats() const override { return {}; }
};

class ThreadSubstrate final : public ISubstrate {
 public:
  explicit ThreadSubstrate(LiveOptions live) : live_(live) {}
  const char* name() const override { return "thread"; }
  RunResult run(const ProtocolInfo& info, const DoAllConfig& cfg,
                std::unique_ptr<FaultInjector> faults, const RunOptions& opts) override {
    LiveRunResult r = run_live_do_all(info, cfg, std::move(faults), opts, live_);
    last_ = r.stats;
    return std::move(r.run);
  }
  LiveStats last_live_stats() const override { return last_; }

 private:
  LiveOptions live_;
  LiveStats last_{};
};

class SocketSubstrate final : public ISubstrate {
 public:
  explicit SocketSubstrate(LiveOptions live) : live_(live) {}
  const char* name() const override { return "socket"; }
  RunResult run(const ProtocolInfo& info, const DoAllConfig& cfg,
                std::unique_ptr<FaultInjector> faults, const RunOptions& opts) override {
    LiveRunResult r = run_socket_do_all(info, cfg, std::move(faults), opts, live_);
    last_ = r.stats;
    return std::move(r.run);
  }
  LiveStats last_live_stats() const override { return last_; }

 private:
  LiveOptions live_;
  LiveStats last_{};
};

}  // namespace

std::unique_ptr<ISubstrate> make_substrate(Backend backend, LiveOptions live) {
  if (backend == Backend::kThread) return std::make_unique<ThreadSubstrate>(live);
  if (backend == Backend::kSocket) return std::make_unique<SocketSubstrate>(live);
  return std::make_unique<SimSubstrate>();
}

}  // namespace dowork::substrate
