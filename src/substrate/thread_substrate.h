// The live execution backend: one worker thread per process, the
// simulator's scheduler/commit core as the supervisor, the channel fabric
// in between.
//
// Division of labor (the differential oracle depends on it):
//
//   supervisor (caller's thread)          workers (one per process)
//   ------------------------------------  --------------------------------
//   delivery, wake scheduling,            IProcess::on_round against the
//   fault-injector decision points,       round's InboxView -- the whole
//   work/ledger commits, retirement       protocol execution
//
// Each stepped round the supervisor hands the alive step set to the
// workers (WorkerChannel), collects evaluated Actions off the MPSC ring,
// and commits them: in ascending process id under the deterministic
// barrier schedule (byte-identical to the simulator -- the oracle
// contract), or in completion order under the free schedule (the OS
// scheduler as a real adversary; the synchronous round barrier itself is
// part of the model and remains).
//
// Crashes are real: when a commit retires a process, its worker thread is
// ordered out of its loop at the kill point the adversary's plan chose
// (send-commit, mid-broadcast, round-barrier) and joined at teardown.
//
// The watchdog gives every round a wall-clock deadline.  A stalled worker
// (wedged protocol code, priority inversion, a debugger) triggers
// cooperative cancellation and an AbortRun with a structured reason --
// the run reports `aborted` metrics instead of hanging CTest.  Since a
// std::thread cannot be killed from outside, a worker that never returns
// from on_round and ignores run_cancelled() cannot be joined: shutdown()
// waits out join_grace_ms, then detaches it and reports a leak, and
// run_live_do_all pins (intentionally leaks) the run's storage so the
// zombie thread never touches freed memory.
#pragma once

#include <memory>
#include <thread>
#include <vector>

#include "sim/simulator.h"
#include "substrate/fabric.h"
#include "substrate/substrate.h"

namespace dowork::substrate {

class ThreadExecutor final : public StepExecutor {
 public:
  ThreadExecutor(int num_procs, const LiveOptions& opts);
  // Clean-path teardown; callers that saw shutdown() report a leak must
  // keep the executor (and the Simulator its workers evaluate against)
  // alive forever instead of destroying it.
  ~ThreadExecutor() override;

  ThreadExecutor(const ThreadExecutor&) = delete;
  ThreadExecutor& operator=(const ThreadExecutor&) = delete;

  // StepExecutor: fan the round's evaluations out to the workers, collect
  // with the watchdog deadline, return in commit order.
  void run_steps(StepEval& eval, const Round& round, const std::vector<int>& steps,
                 std::vector<Ready>& out) override;
  // Stop the retired process's worker thread at its kill point.
  void on_retire(int proc, ProcState state, KillPoint kp) override;

  // Cancel + join-all with the grace deadline; true when every worker
  // joined (no thread leak).  Idempotent.
  bool shutdown();

  // Valid after shutdown(); wall_seconds/units_per_sec are filled by
  // run_live_do_all, which owns the clock.
  const LiveStats& stats() const { return stats_; }

 private:
  struct ResultMsg {
    int proc = -1;
    Action action;
  };

  void worker_main(int p);

  LiveOptions opts_;
  CancelToken cancel_;
  std::vector<WorkerChannel> channels_;
  MpscRing<ResultMsg> ring_;
  std::vector<std::atomic<bool>> exited_;
  std::mutex exit_m_;
  std::condition_variable exit_cv_;
  std::vector<std::thread> threads_;
  std::atomic<StepEval*> eval_{nullptr};

  // Round-scoped collection scratch (supervisor-only).
  std::vector<int> slot_of_proc_;      // proc id -> index into the round's steps
  std::vector<std::uint8_t> have_;     // per-step received flag
  std::vector<Action> det_actions_;    // deterministic mode: slot per step

  LiveStats stats_;
  bool shut_down_ = false;
};

}  // namespace dowork::substrate
