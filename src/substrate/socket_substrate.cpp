#include "substrate/socket_substrate.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "substrate/wire.h"

namespace dowork::substrate {

namespace {

using Clock = std::chrono::steady_clock;

constexpr const char* kWorkerFlag = "--dowork-socket-worker";

// --- low-level socket helpers ----------------------------------------------

// All writes go through send(MSG_NOSIGNAL): a worker SIGKILLed between our
// poll and our write must surface as EPIPE, not take the harness down with
// SIGPIPE (and the hosting binary's signal dispositions stay untouched).
bool write_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t w = ::send(fd, p, len, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    len -= static_cast<std::size_t>(w);
  }
  return true;
}

bool write_all(int fd, const std::string& bytes) { return write_all(fd, bytes.data(), bytes.size()); }

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

const std::string& self_exe_path() {
  static const std::string path = [] {
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n <= 0) return std::string();
    return std::string(buf, static_cast<std::size_t>(n));
  }();
  return path;
}

// Transport address as passed on the worker command line:
//   uds:<path>   or   tcp:<port>   (always 127.0.0.1)
int connect_to(const std::string& addr) {
  if (addr.rfind("uds:", 0) == 0) {
    const std::string path = addr.substr(4);
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (path.size() >= sizeof sa.sun_path) return -1;
    std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  if (addr.rfind("tcp:", 0) == 0) {
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(static_cast<std::uint16_t>(std::atoi(addr.c_str() + 4)));
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
      ::close(fd);
      return -1;
    }
    set_nodelay(fd);
    return fd;
  }
  return -1;
}

// Bounded retry + backoff: the coordinator's listener races the exec, so
// the first connect attempts may find nothing bound yet.
int connect_with_retry(const std::string& addr, std::uint64_t deadline_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  std::uint64_t backoff_us = 2'000;
  for (;;) {
    const int fd = connect_to(addr);
    if (fd >= 0) return fd;
    if (Clock::now() >= deadline) return -1;
    ::usleep(static_cast<useconds_t>(backoff_us));
    backoff_us = std::min<std::uint64_t>(backoff_us * 2, 100'000);
  }
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

// --- worker side ------------------------------------------------------------

int socket_worker_main(const std::string& addr, int self, const std::string& protocol,
                       std::int64_t n, int t, std::optional<std::int64_t> param) {
  DoAllConfig cfg{n, t};
  std::unique_ptr<IProcess> proc;
  try {
    // Same deterministic construction as the coordinator's model run;
    // shared_state=false for the same reason as the thread substrate
    // (registry.h) -- and here the siblings are in other address spaces.
    auto procs = make_processes(find_protocol(protocol), cfg, param, /*shared_state=*/false);
    proc = std::move(procs.at(static_cast<std::size_t>(self)));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dowork socket worker %d: bad setup: %s\n", self, e.what());
    return 2;
  }

  const int fd = connect_with_retry(addr, 10'000);
  if (fd < 0) {
    std::fprintf(stderr, "dowork socket worker %d: connect failed (%s)\n", self, addr.c_str());
    return 3;
  }

  // Supervision test hooks, inherited through exec: a worker that hangs
  // forever at its first step (watchdog coverage) or exits unannounced
  // (EPIPE/ECONNRESET-mapping coverage).
  const int hang_proc = env_int("DOWORK_SOCKET_TEST_HANG_PROC", -1);
  const int exit_proc = env_int("DOWORK_SOCKET_TEST_EXIT_PROC", -1);

  try {
    if (!write_all(fd, wire::encode_hello(
                           {self, proc->next_wake(Round{0}), proc->known_done_units()})))
      return 4;

    std::vector<Envelope> mail;
    wire::FrameReader reader;
    char buf[65536];
    for (;;) {
      wire::FrameType type;
      std::string body;
      while (!reader.next(&type, &body)) {
        const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
        if (r < 0 && errno == EINTR) continue;
        // Coordinator gone (its run aborted, or our kill raced the read):
        // nothing left to do.
        if (r <= 0) return 0;
        reader.feed(buf, static_cast<std::size_t>(r));
      }
      switch (type) {
        case wire::FrameType::kDeliver:
          mail.push_back(wire::decode_deliver(body, self));
          break;
        case wire::FrameType::kStep: {
          if (self == hang_proc)
            for (;;) ::pause();
          if (self == exit_proc) ::_exit(7);
          const RoundContext ctx{wire::decode_step(body), self};
          const Action action = proc->on_round(ctx, InboxView(mail));
          Round next = ctx.round;
          ++next;
          if (!write_all(fd, wire::encode_reply(action, proc->next_wake(next),
                                                proc->known_done_units())))
            return 4;
          mail.clear();
          break;
        }
        case wire::FrameType::kKill: {
          // Mid-broadcast crash realization: flush the first N bytes of a
          // framed record, then die at the kill point.  The coordinator's
          // reader sees a genuinely torn frame followed by EOF.
          std::uint32_t tear = wire::decode_kill(body);
          const std::string ghost = wire::encode_reply(Action{}, never_round(), 0);
          if (tear >= ghost.size()) tear = static_cast<std::uint32_t>(ghost.size()) - 1;
          if (tear > 0) write_all(fd, ghost.data(), tear);
          ::raise(SIGKILL);
          return 0;  // unreachable
        }
        case wire::FrameType::kExit:
          ::close(fd);
          return 0;
        default:
          std::fprintf(stderr, "dowork socket worker %d: unexpected frame type %d\n", self,
                       static_cast<int>(type));
          return 4;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dowork socket worker %d: %s\n", self, e.what());
    return 4;
  }
}

// --- coordinator side -------------------------------------------------------

struct Conn {
  int fd = -1;
  pid_t pid = -1;
  wire::FrameReader reader;
  Round wake;             // latest next_wake the worker announced (absolute)
  std::int64_t known = 0; // latest known_done_units the worker announced
  bool model_dead = false;  // retired in the model (crash or terminate)
  bool eof = false;         // stream fully drained
  bool reaped = false;
  int wstatus = 0;
};

class SocketExecutor;

// The coordinator-resident stand-in for one worker: on_round forwards the
// step over the socket (the returned Action is a placeholder -- the real
// one arrives in the worker's kReply and is substituted by the executor's
// pump; eval_one has no other side effects, so the simulator never sees
// the difference), next_wake/known_done_units answer from the per-reply
// cache.  next_wake's monotonicity contract makes the cache exact:
// next_wake(now') == max(next_wake(now), now'), and the cached value IS
// the worker's next_wake at its last reply.
class SocketProxyProcess final : public IProcess {
 public:
  SocketProxyProcess(SocketExecutor* coord, int self) : coord_(coord), self_(self) {}

  Action on_round(const RoundContext& ctx, const InboxView& inbox) override;
  Round next_wake(const Round& now) const override;
  std::int64_t known_done_units() const override;
  std::string describe() const override { return "socket-proxy[" + std::to_string(self_) + "]"; }

 private:
  SocketExecutor* coord_;
  int self_;
};

class SocketExecutor final : public StepExecutor {
 public:
  SocketExecutor(const ProtocolInfo& info, const DoAllConfig& cfg,
                 std::optional<std::int64_t> param, const LiveOptions& opts)
      : info_(info), cfg_(cfg), param_(param), opts_(opts),
        conns_(static_cast<std::size_t>(cfg.t)),
        outbox_(static_cast<std::size_t>(cfg.t)),
        actions_(static_cast<std::size_t>(cfg.t)),
        pending_(static_cast<std::size_t>(cfg.t), 0) {
    stats_.threads = cfg.t;
  }

  ~SocketExecutor() override { shutdown(); }

  // Spawns the workers and collects their hellos.  Throws AbortRun on a
  // setup failure (run_socket_do_all degrades it into aborted metrics).
  void start();
  // Reaps every worker: kExit to the live ones, waitpid with the join
  // grace, SIGKILL for stragglers.  Processes are always reapable, so the
  // socket backend never leaks a run.
  void shutdown();

  // StepExecutor.
  void run_steps(StepEval& eval, const Round& round, const std::vector<int>& steps,
                 std::vector<Ready>& out) override;
  void on_retire(int proc, ProcState state, KillPoint kp) override;

  // Proxy hooks.
  void post_step(int p, const Round& round, const InboxView& inbox);
  const Round& wake_of(int p) const { return conns_[static_cast<std::size_t>(p)].wake; }
  std::int64_t known_of(int p) const { return conns_[static_cast<std::size_t>(p)].known; }

  const LiveStats& stats() const { return stats_; }

 private:
  void spawn_workers(const std::string& addr);
  [[noreturn]] void abort_run(const std::string& reason, const std::string& detail) {
    throw AbortRun{reason, detail};
  }
  // Reads whatever is available on conn p, parsing frames.  kReply frames
  // complete pending steps; EOF/ECONNRESET from a model-dead worker is a
  // crash observation (torn trailing bytes dropped -- that IS the
  // partial-write recovery), from a model-alive worker a structured abort.
  void drain_conn(int p, const Round& round);
  void reap_nohang(Conn& c) {
    if (c.pid <= 0 || c.reaped) return;
    if (::waitpid(c.pid, &c.wstatus, WNOHANG) == c.pid) c.reaped = true;
  }

  const ProtocolInfo& info_;
  DoAllConfig cfg_;
  std::optional<std::int64_t> param_;
  LiveOptions opts_;
  LiveStats stats_{};

  int listen_fd_ = -1;
  std::string uds_path_;
  std::string addr_;
  bool started_ = false;
  bool shut_down_ = false;

  std::vector<Conn> conns_;
  std::vector<std::string> outbox_;      // per-worker buffered frames for this round
  std::vector<Action> actions_;          // decoded replies, by proc id
  std::vector<std::uint8_t> pending_;    // 1 = this round awaits p's reply
  std::vector<int> completion_order_;    // arrival order (free schedule commits in it)
  std::size_t arrived_ = 0;
  std::size_t expected_ = 0;
  // Frame bytes per broadcast, keyed by payload identity: one ledger
  // record = one payload object (message.h's ownership rules), so every
  // recipient of a broadcast reuses the same serialized record.
  std::unordered_map<const Payload*, std::string> frame_cache_;
  std::uint32_t tear_seq_ = 0;
};

Action SocketProxyProcess::on_round(const RoundContext& ctx, const InboxView& inbox) {
  coord_->post_step(self_, ctx.round, inbox);
  return Action{};  // placeholder; see class comment
}

Round SocketProxyProcess::next_wake(const Round& now) const {
  const Round& wake = coord_->wake_of(self_);
  return wake < now ? now : wake;
}

std::int64_t SocketProxyProcess::known_done_units() const { return coord_->known_of(self_); }

void SocketExecutor::spawn_workers(const std::string& addr) {
  // argv is fully materialized BEFORE fork: the scenario runner is
  // multi-threaded, so the child may only make async-signal-safe calls
  // until exec.
  const std::string& exe = self_exe_path();
  if (exe.empty()) abort_run("socket substrate: cannot resolve /proc/self/exe", "cause=spawn");
  for (int p = 0; p < cfg_.t; ++p) {
    std::vector<std::string> args = {exe,
                                     kWorkerFlag,
                                     addr,
                                     std::to_string(p),
                                     info_.name,
                                     std::to_string(cfg_.n),
                                     std::to_string(cfg_.t),
                                     param_ ? std::to_string(*param_) : "-"};
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid == 0) {
      ::execv(argv[0], argv.data());
      ::_exit(127);
    }
    if (pid < 0)
      abort_run("socket substrate: fork failed: " + std::string(std::strerror(errno)),
                "cause=spawn errno=" + std::to_string(errno) + " proc=" + std::to_string(p));
    conns_[static_cast<std::size_t>(p)].pid = pid;
  }
}

void SocketExecutor::start() {
  started_ = true;

  if (opts_.transport == Transport::kUds) {
    static std::atomic<std::uint64_t> seq{0};
    const char* tmp = std::getenv("TMPDIR");
    uds_path_ = std::string(tmp != nullptr && *tmp != '\0' ? tmp : "/tmp") + "/dowork-skt-" +
                std::to_string(::getpid()) + "-" + std::to_string(seq.fetch_add(1));
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (uds_path_.size() >= sizeof sa.sun_path)
      abort_run("socket substrate: TMPDIR path too long for AF_UNIX", "cause=spawn");
    std::memcpy(sa.sun_path, uds_path_.c_str(), uds_path_.size() + 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0 || ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0 ||
        ::listen(listen_fd_, cfg_.t) != 0)
      abort_run("socket substrate: UDS listen failed: " + std::string(std::strerror(errno)),
                "cause=spawn errno=" + std::to_string(errno));
    addr_ = "uds:" + uds_path_;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sa.sin_port = 0;  // ephemeral
    socklen_t slen = sizeof sa;
    if (listen_fd_ < 0 || ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0 ||
        ::listen(listen_fd_, cfg_.t) != 0 ||
        ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&sa), &slen) != 0)
      abort_run("socket substrate: TCP listen failed: " + std::string(std::strerror(errno)),
                "cause=spawn errno=" + std::to_string(errno));
    addr_ = "tcp:" + std::to_string(ntohs(sa.sin_port));
  }

  spawn_workers(addr_);

  // Accept + hello under the setup deadline.  Connections identify
  // themselves by the proc id in their kHello, so accept order is free.
  const auto deadline = Clock::now() + std::chrono::milliseconds(opts_.spawn_timeout_ms);
  struct PendingConn {
    int fd;
    wire::FrameReader reader;
  };
  std::vector<PendingConn> pending;
  int hellos = 0;
  char buf[65536];
  while (hellos < cfg_.t) {
    std::vector<pollfd> pfds;
    if (static_cast<int>(pending.size()) + hellos < cfg_.t)
      pfds.push_back({listen_fd_, POLLIN, 0});
    for (const PendingConn& pc : pending) pfds.push_back({pc.fd, POLLIN, 0});
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
    if (left.count() <= 0 || ::poll(pfds.data(), pfds.size(), static_cast<int>(left.count())) <= 0) {
      int dead = 0;
      for (Conn& c : conns_) {
        reap_nohang(c);
        if (c.reaped) ++dead;
      }
      for (const PendingConn& pc : pending) ::close(pc.fd);
      abort_run("socket substrate: " + std::to_string(cfg_.t - hellos) + " worker(s) missed the " +
                    std::to_string(opts_.spawn_timeout_ms) + "ms setup deadline",
                "cause=spawn-timeout missing=" + std::to_string(cfg_.t - hellos) +
                    " dead_children=" + std::to_string(dead));
    }
    std::size_t pi = 0;
    if (static_cast<int>(pending.size()) + hellos < cfg_.t) {
      if ((pfds[0].revents & POLLIN) != 0) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd >= 0) {
          if (opts_.transport == Transport::kTcp) set_nodelay(fd);
          pending.push_back(PendingConn{fd, {}});
        }
      }
      pi = 1;
    }
    for (std::size_t i = 0; i < pending.size() && pi + i < pfds.size(); ++i) {
      if ((pfds[pi + i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      PendingConn& pc = pending[i];
      const ssize_t r = ::recv(pc.fd, buf, sizeof buf, 0);
      if (r <= 0) {
        if (r < 0 && errno == EINTR) continue;
        ::close(pc.fd);
        pc.fd = -1;
        continue;
      }
      pc.reader.feed(buf, static_cast<std::size_t>(r));
      wire::FrameType type;
      std::string body;
      try {
        if (!pc.reader.next(&type, &body)) continue;
        if (type != wire::FrameType::kHello) throw wire::WireError("expected hello");
        const wire::HelloMsg h = wire::decode_hello(body);
        if (h.proc < 0 || h.proc >= cfg_.t || conns_[static_cast<std::size_t>(h.proc)].fd >= 0)
          throw wire::WireError("bad hello proc id");
        Conn& c = conns_[static_cast<std::size_t>(h.proc)];
        c.fd = pc.fd;
        c.wake = h.wake0;
        c.known = h.known0;
        pc.fd = -1;
        ++hellos;
      } catch (const wire::WireError& e) {
        for (const PendingConn& q : pending)
          if (q.fd >= 0) ::close(q.fd);
        abort_run(std::string("socket substrate: handshake error: ") + e.what(),
                  "cause=handshake");
      }
    }
    std::erase_if(pending, [](const PendingConn& pc) { return pc.fd < 0; });
  }
}

void SocketExecutor::post_step(int p, const Round& round, const InboxView& inbox) {
  std::string& out = outbox_[static_cast<std::size_t>(p)];
  for (const Msg& m : inbox) {
    const Payload* key = m.payload().get();
    if (key == nullptr) {
      out += wire::encode_deliver(m.from, m.kind, m.sent_round(), nullptr);
      continue;
    }
    auto it = frame_cache_.find(key);
    if (it == frame_cache_.end())
      it = frame_cache_.emplace(key, wire::encode_deliver(m.from, m.kind, m.sent_round(), key))
               .first;
    out += it->second;
  }
  out += wire::encode_step(round);
  pending_[static_cast<std::size_t>(p)] = 1;
  ++expected_;
}

void SocketExecutor::drain_conn(int p, const Round& round) {
  Conn& c = conns_[static_cast<std::size_t>(p)];
  char buf[65536];
  const ssize_t r = ::recv(c.fd, buf, sizeof buf, 0);
  if (r < 0) {
    if (errno == EINTR || errno == EAGAIN) return;
    if (errno != ECONNRESET && errno != EPIPE)
      abort_run("socket substrate: recv from proc " + std::to_string(p) +
                    " failed: " + std::strerror(errno),
                "cause=recv proc=" + std::to_string(p) + " pid=" + std::to_string(c.pid) +
                    " errno=" + std::to_string(errno) + " round=" + round.to_string());
    // fall through to the EOF paths: a SIGKILLed peer with queued data
    // resets the connection instead of half-closing it.
  }
  if (r <= 0) {
    c.eof = true;
    reap_nohang(c);
    if (!c.model_dead) {
      // A worker the model says is alive died underneath us: structured
      // abort, never a harness error.
      abort_run("socket substrate: worker for proc " + std::to_string(p) +
                    " died unexpectedly (round " + round.to_string() + ")",
                "cause=worker-eof proc=" + std::to_string(p) + " pid=" + std::to_string(c.pid) +
                    " round=" + round.to_string() +
                    " status=" + (c.reaped ? std::to_string(c.wstatus) : std::string("unreaped")));
    }
    // Crash observation: the kill point's torn trailing bytes (if any) stay
    // in the reader and are dropped here -- partial-write recovery.
    return;
  }
  c.reader.feed(buf, static_cast<std::size_t>(r));
  wire::FrameType type;
  std::string body;
  while (c.reader.next(&type, &body)) {
    if (type != wire::FrameType::kReply || pending_[static_cast<std::size_t>(p)] == 0)
      abort_run("socket substrate: unexpected frame from proc " + std::to_string(p),
                "cause=protocol proc=" + std::to_string(p) + " round=" + round.to_string());
    wire::ReplyMsg reply = wire::decode_reply(body);
    actions_[static_cast<std::size_t>(p)] = std::move(reply.action);
    c.wake = std::move(reply.next_wake);
    c.known = reply.known;
    pending_[static_cast<std::size_t>(p)] = 0;
    completion_order_.push_back(p);
    ++arrived_;
  }
}

void SocketExecutor::run_steps(StepEval& eval, const Round& round, const std::vector<int>& steps,
                               std::vector<Ready>& out) {
  // Phase 1 -- evaluate: each proxy's on_round serializes its mail (one
  // frame per broadcast, shared across recipients via frame_cache_) and a
  // step request into its worker's outbox.
  frame_cache_.clear();
  completion_order_.clear();
  arrived_ = 0;
  expected_ = 0;
  for (int p : steps) (void)eval.eval_step(p);

  // Phase 2 -- flush.  A write failing with EPIPE means the worker died
  // mid-round while the model holds it alive; surface it as the structured
  // worker-eof abort, not a harness error.
  for (int p : steps) {
    std::string& box = outbox_[static_cast<std::size_t>(p)];
    const bool ok = write_all(conns_[static_cast<std::size_t>(p)].fd, box);
    box.clear();
    if (!ok) {
      Conn& c = conns_[static_cast<std::size_t>(p)];
      reap_nohang(c);
      abort_run("socket substrate: send to proc " + std::to_string(p) + " failed: " +
                    std::strerror(errno) + " (round " + round.to_string() + ")",
                "cause=worker-eof proc=" + std::to_string(p) + " pid=" + std::to_string(c.pid) +
                    " errno=" + std::to_string(errno) + " round=" + round.to_string());
    }
  }

  // Phase 3 -- pump replies under the watchdog deadline.  Model-dead
  // workers' streams stay in the poll set until EOF so a mid-broadcast
  // kill's torn frame is observed and dropped promptly.
  const auto deadline = Clock::now() + std::chrono::milliseconds(opts_.watchdog_ms);
  while (arrived_ < expected_) {
    std::vector<pollfd> pfds;
    std::vector<int> procs;
    for (int p = 0; p < cfg_.t; ++p) {
      const Conn& c = conns_[static_cast<std::size_t>(p)];
      if (c.fd < 0 || c.eof) continue;
      if (pending_[static_cast<std::size_t>(p)] != 0 || c.model_dead) {
        pfds.push_back({c.fd, POLLIN, 0});
        procs.push_back(p);
      }
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
    const int nready =
        left.count() > 0 ? ::poll(pfds.data(), pfds.size(), static_cast<int>(left.count())) : 0;
    if (nready < 0 && errno == EINTR) continue;
    if (nready <= 0 && arrived_ < expected_) {
      // Watchdog: degrade the hang into a structured abort.  SIGKILL every
      // remaining worker first -- unlike threads they cannot wedge teardown.
      int first_stalled = -1;
      std::size_t missing = 0;
      for (int p = 0; p < cfg_.t; ++p) {
        if (pending_[static_cast<std::size_t>(p)] == 0) continue;
        ++missing;
        if (first_stalled < 0) first_stalled = p;
      }
      for (Conn& c : conns_)
        if (c.pid > 0 && !c.reaped) ::kill(c.pid, SIGKILL);
      out.clear();
      abort_run("watchdog: " + std::to_string(missing) + " worker(s) missed the " +
                    std::to_string(opts_.watchdog_ms) + "ms round deadline (first stalled: proc " +
                    std::to_string(first_stalled) + ", round " + round.to_string() + ")",
                "cause=watchdog proc=" + std::to_string(first_stalled) + " pid=" +
                    std::to_string(conns_[static_cast<std::size_t>(first_stalled)].pid) +
                    " missing=" + std::to_string(missing) + " round=" + round.to_string() +
                    " deadline_ms=" + std::to_string(opts_.watchdog_ms));
    }
    for (std::size_t i = 0; i < pfds.size(); ++i)
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) drain_conn(procs[i], round);
  }

  // Phase 4 -- hand back.  Deterministic: ascending id (steps order), the
  // simulator's serial interleaving.  Free: arrival order, so the OS
  // scheduler is a real adversary.
  if (opts_.schedule == LiveOptions::Schedule::kDeterministic) {
    for (int p : steps) out.push_back(Ready{p, std::move(actions_[static_cast<std::size_t>(p)])});
  } else {
    for (int p : completion_order_)
      out.push_back(Ready{p, std::move(actions_[static_cast<std::size_t>(p)])});
  }
}

void SocketExecutor::on_retire(int proc, ProcState state, KillPoint kp) {
  Conn& c = conns_[static_cast<std::size_t>(proc)];
  c.model_dead = true;
  if (state != ProcState::kCrashed) {
    // Voluntary termination: clean shutdown frame; the worker exits 0.
    if (c.fd >= 0 && !c.eof) write_all(c.fd, wire::encode_exit());
    return;
  }
  switch (kp) {
    case KillPoint::kSendCommit: ++stats_.kills_send_commit; break;
    case KillPoint::kMidBroadcast: ++stats_.kills_mid_broadcast; break;
    case KillPoint::kRoundBarrier: ++stats_.kills_round_barrier; break;
    case KillPoint::kNone: break;
  }
  if (kp == KillPoint::kMidBroadcast && c.fd >= 0 && !c.eof) {
    // Tear offsets cycle through the frame header and into the body so the
    // reader's resynchronization is exercised at every boundary class.
    const std::uint32_t tear = 1 + (tear_seq_++ % 11);
    write_all(c.fd, wire::encode_kill(tear));
    return;  // the worker SIGKILLs itself after flushing the torn prefix
  }
  if (c.pid > 0) ::kill(c.pid, SIGKILL);
}

void SocketExecutor::shutdown() {
  if (!started_ || shut_down_) return;
  shut_down_ = true;

  for (Conn& c : conns_)
    if (c.fd >= 0 && !c.eof && !c.model_dead) write_all(c.fd, wire::encode_exit());

  const auto deadline = Clock::now() + std::chrono::milliseconds(opts_.join_grace_ms);
  bool escalated = false;
  for (;;) {
    bool all = true;
    for (Conn& c : conns_) {
      reap_nohang(c);
      if (c.pid > 0 && !c.reaped) all = false;
    }
    if (all) break;
    if (Clock::now() >= deadline && !escalated) {
      escalated = true;
      for (Conn& c : conns_)
        if (c.pid > 0 && !c.reaped) ::kill(c.pid, SIGKILL);
    }
    if (escalated) {
      // Post-SIGKILL the children are collectible; block on them directly.
      for (Conn& c : conns_)
        if (c.pid > 0 && !c.reaped && ::waitpid(c.pid, &c.wstatus, 0) == c.pid) c.reaped = true;
      break;
    }
    ::usleep(2'000);
  }

  for (Conn& c : conns_) {
    if (c.fd >= 0) ::close(c.fd);
    c.fd = -1;
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  if (!uds_path_.empty()) ::unlink(uds_path_.c_str());
  stats_.leaked = false;
}

}  // namespace

LiveRunResult run_socket_do_all(const ProtocolInfo& info, const DoAllConfig& cfg,
                                std::unique_ptr<FaultInjector> faults, const RunOptions& opts,
                                const LiveOptions& live) {
  cfg.validate();
  Simulator::Options sim_opts;
  sim_opts.strict_one_op = info.strict_one_op && opts.enforce_strict;
  sim_opts.max_stepped_rounds = opts.max_stepped_rounds;
  sim_opts.n_units = cfg.n;
  sim_opts.net = opts.net;

  SocketExecutor executor(info, cfg, opts.protocol_param, live);
  LiveRunResult result;
  const auto start = Clock::now();
  try {
    executor.start();
    std::vector<std::unique_ptr<IProcess>> proxies;
    proxies.reserve(static_cast<std::size_t>(cfg.t));
    for (int p = 0; p < cfg.t; ++p)
      proxies.push_back(std::make_unique<SocketProxyProcess>(&executor, p));
    Simulator sim(std::move(proxies), std::move(faults), sim_opts);
    sim.set_step_executor(&executor);
    result.run.metrics = sim.run();
  } catch (AbortRun& abort) {
    // Setup failure (spawn/accept/hello): same structured degradation as a
    // mid-run watchdog abort -- mid-run AbortRuns are caught by sim.run()
    // itself and never reach here.
    result.run.metrics.aborted = true;
    result.run.metrics.aborted_reason = std::move(abort.reason);
    result.run.metrics.abort_detail = std::move(abort.detail);
  }
  executor.shutdown();
  const double secs = std::chrono::duration<double>(Clock::now() - start).count();

  result.stats = executor.stats();
  result.stats.wall_seconds = secs;
  if (secs > 0 && result.run.metrics.work_total > 0)
    result.stats.units_per_sec = static_cast<double>(result.run.metrics.work_total) / secs;

  result.run.violation = verify_run(info, cfg, result.run.metrics);
  return result;
}

LiveRunResult run_socket_do_all(const std::string& protocol, const DoAllConfig& cfg,
                                std::unique_ptr<FaultInjector> faults, const RunOptions& opts,
                                const LiveOptions& live) {
  return run_socket_do_all(find_protocol(protocol), cfg, std::move(faults), opts, live);
}

int maybe_socket_worker(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], kWorkerFlag) != 0) return -1;
  if (argc != 8) {
    std::fprintf(stderr, "usage: %s %s <addr> <proc> <protocol> <n> <t> <param|->\n", argv[0],
                 kWorkerFlag);
    return 2;
  }
  const std::string addr = argv[2];
  const int self = std::atoi(argv[3]);
  const std::string protocol = argv[4];
  const std::int64_t n = std::atoll(argv[5]);
  const int t = std::atoi(argv[6]);
  std::optional<std::int64_t> param;
  if (std::strcmp(argv[7], "-") != 0) param = std::atoll(argv[7]);
  if (self < 0 || self >= t || n < 1) {
    std::fprintf(stderr, "dowork socket worker: bad shape (proc=%d n=%lld t=%d)\n", self,
                 static_cast<long long>(n), t);
    return 2;
  }
  return socket_worker_main(addr, self, protocol, n, t, param);
}

}  // namespace dowork::substrate
