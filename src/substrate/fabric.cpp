#include "substrate/fabric.h"

namespace dowork::substrate {

namespace {
// One slot per thread: workers install their run's token on entry and
// clear it on exit; every other thread reads the default null.
thread_local const CancelToken* tl_cancel_token = nullptr;
}  // namespace

bool run_cancelled() { return tl_cancel_token != nullptr && tl_cancel_token->cancelled(); }

namespace detail {
void set_cancel_token(const CancelToken* token) { tl_cancel_token = token; }
}  // namespace detail

}  // namespace dowork::substrate
