// The execution-substrate abstraction (ROADMAP item 4): the same IProcess
// protocol objects, runnable on two backends.
//
//   * Backend::kSim    -- the deterministic synchronous Simulator
//                         (src/sim/), behind a thin adapter.
//   * Backend::kThread -- the live ThreadSubstrate: one worker thread per
//                         process over the in-process channel fabric
//                         (substrate/fabric.h), with real kill-point fault
//                         injection (a crashed process's thread actually
//                         stops) and a watchdog supervisor that turns a
//                         hung worker into a structured abort instead of a
//                         hung run.
//   * Backend::kSocket -- the SocketSubstrate
//                         (substrate/socket_substrate.h): one worker OS
//                         process per protocol process over localhost
//                         UDS/TCP, crash = SIGKILL at the same kill-point
//                         taxonomy, process-grade supervision (connect/
//                         accept/read deadlines, waitpid reaping).
//
// All backends drive the identical protocol code, fault injectors and
// verifier; under the deterministic barrier schedule the live backends'
// metrics match the simulator's field for field, which is what makes the
// sim a differential-testing oracle (substrate/differential.h).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/runner.h"

namespace dowork::substrate {

enum class Backend : std::uint8_t { kSim, kThread, kSocket };

// Which localhost transport the socket backend speaks.  UDS is the default
// (lower per-frame latency, no port allocation); TCP exercises the same
// framing over a real INET stack (127.0.0.1, TCP_NODELAY).
enum class Transport : std::uint8_t { kUds, kTcp };

const char* to_string(Backend b);
const char* to_string(Transport t);

struct LiveOptions {
  // kDeterministic: the supervisor commits evaluated steps in ascending
  // process id, reproducing the simulator's serial interleaving exactly --
  // every metric and adversary decision matches the sim run for run.
  // kFree: steps commit in completion order, so the OS scheduler becomes a
  // real nondeterministic adversary; only the paper bounds and the
  // verifier's invariants are meaningful assertions there.
  enum class Schedule : std::uint8_t { kDeterministic, kFree };
  Schedule schedule = Schedule::kDeterministic;

  // Per-round deadline: if a stepped round's evaluations have not all come
  // back within this wall-clock budget, the watchdog cancels the run and
  // aborts it with a structured RunMetrics::aborted_reason.
  std::uint64_t watchdog_ms = 10'000;

  // Teardown grace: how long join-all waits for workers to exit after
  // cancellation before declaring them leaked (a worker ignoring the
  // cooperative cancel token; see run_cancelled() in fabric.h).  The socket
  // backend uses the same budget for its waitpid reap before escalating to
  // SIGKILL (processes, unlike threads, can always be reaped -- the socket
  // backend never leaks).
  std::uint64_t join_grace_ms = 2'000;

  // Socket backend only: transport and the setup deadline covering worker
  // spawn + connect + hello (bounded retry with backoff inside it).
  Transport transport = Transport::kUds;
  std::uint64_t spawn_timeout_ms = 10'000;
};

// What the live backend measured beyond the shared RunMetrics: the first
// real-hardware throughput numbers (units/sec next to simulated-round
// metrics), the kill-point census, and the teardown outcome.
struct LiveStats {
  double wall_seconds = 0;
  double units_per_sec = 0;  // work_total / wall_seconds (0 when no work)
  // Crashes by kill point (simulator.h documents the taxonomy).
  std::uint64_t kills_send_commit = 0;
  std::uint64_t kills_mid_broadcast = 0;
  std::uint64_t kills_round_barrier = 0;
  int threads = 0;      // workers spawned (threads or, on kSocket, processes)
  bool leaked = false;  // join-all gave up on a worker (its run is pinned)
};

struct LiveRunResult {
  RunResult run;
  LiveStats stats;
};

// Live counterpart of run_do_all (core/runner.h): same protocol
// instantiation (minus run-shared caches -- registry.h documents why),
// same fault injector and verifier, executed on the thread substrate.
LiveRunResult run_live_do_all(const ProtocolInfo& info, const DoAllConfig& cfg,
                              std::unique_ptr<FaultInjector> faults, const RunOptions& opts = {},
                              const LiveOptions& live = {});
LiveRunResult run_live_do_all(const std::string& protocol, const DoAllConfig& cfg,
                              std::unique_ptr<FaultInjector> faults, const RunOptions& opts = {},
                              const LiveOptions& live = {});

// Uniform backend interface for callers that select at runtime.  run() has
// run_do_all's contract on either backend; last_live_stats() reports the
// most recent live run's stats (zeroes on the sim backend).
class ISubstrate {
 public:
  virtual ~ISubstrate() = default;
  virtual const char* name() const = 0;
  virtual RunResult run(const ProtocolInfo& info, const DoAllConfig& cfg,
                        std::unique_ptr<FaultInjector> faults, const RunOptions& opts) = 0;
  virtual LiveStats last_live_stats() const = 0;
};

std::unique_ptr<ISubstrate> make_substrate(Backend backend, LiveOptions live = {});

}  // namespace dowork::substrate
