// The in-process channel fabric the live thread substrate runs on.
//
// Three small primitives, all TSan-clean by construction:
//
//   * MpscRing<T> -- a bounded multi-producer single-consumer ring.  Worker
//     threads (producers) post their evaluated round results; the
//     supervisor (the single consumer) drains them, sleeping on a condition
//     variable with a deadline so the watchdog can fire.  Slot handoff is
//     Vyukov-style per-slot sequence counters (release store by the
//     producer, acquire load by the consumer establishes the
//     happens-before for the payload); the mutex exists only for the
//     consumer's sleep, never on the producers' fast path beyond the empty
//     lock/unlock that closes the lost-wakeup window.
//
//   * WorkerChannel -- the per-worker command mailbox (supervisor ->
//     worker): step assignments and the exit order.  One mutex + condvar
//     per worker; posts happen once per stepped round per live worker, so
//     this is not a hot path even at t = 4096.
//
//   * CancelToken + run_cancelled() -- cooperative cancellation.  A
//     std::thread cannot be killed from outside, so the watchdog publishes
//     intent here and long-running protocol code (anything that loops
//     inside on_round) is expected to poll run_cancelled() and return.
//     The token is installed thread-locally by each worker; on the
//     simulator backend run_cancelled() is always false.
//
// The delivery plane itself is NOT duplicated here: committed sends travel
// as the broadcast-ledger DeliveryRecord shape of PR 5 (sim/message.h) --
// audience-addressed, one payload allocation per broadcast -- and workers
// read them through the same InboxView.  The fabric only moves round
// assignments down and evaluated Actions back up.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

namespace dowork::substrate {

// Cooperative cancellation flag, shared by every worker of one run.
class CancelToken {
 public:
  void cancel() { flag_.store(true, std::memory_order_release); }
  bool cancelled() const { return flag_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> flag_{false};
};

// True when the calling thread is a live-substrate worker whose run has
// been cancelled (watchdog abort or shutdown).  Protocol code that loops
// inside on_round should poll this and return; everywhere else (the
// simulator backend, tests, the main thread) it is false.
bool run_cancelled();

namespace detail {
// Installs/clears the calling thread's cancel token (worker threads only).
void set_cancel_token(const CancelToken* token);
}  // namespace detail

// Bounded MPSC ring.  Capacity is rounded up to a power of two and must be
// >= the maximum number of outstanding (pushed, not yet popped) items --
// the substrate sizes it at the process count, since each worker posts at
// most one result per round and the supervisor drains between rounds.
// push() never blocks under that invariant; pop() never blocks;
// wait_nonempty_until() is the consumer's deadline sleep.
template <typename T>
class MpscRing {
 public:
  explicit MpscRing(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_ = std::vector<Slot>(cap);
    for (std::size_t i = 0; i < cap; ++i) slots_[i].seq.store(i, std::memory_order_relaxed);
    mask_ = cap - 1;
  }

  // Producer side: claim a ticket, fill the slot, publish.  The spin in
  // the full case is unreachable under the capacity invariant; it exists
  // so a misuse degrades to waiting, not corruption.
  void push(T value) {
    const std::size_t pos = tail_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[pos & mask_];
    while (s.seq.load(std::memory_order_acquire) != pos) std::this_thread::yield();
    s.value = std::move(value);
    s.seq.store(pos + 1, std::memory_order_release);
    // Close the lost-wakeup window: the consumer checks the slot under
    // sleep_m_, so publishing then passing through the mutex before
    // notifying guarantees it either saw the slot or will be notified.
    { std::lock_guard<std::mutex> lock(sleep_m_); }
    sleep_cv_.notify_one();
  }

  // Consumer side (single thread).  False when empty at the time of the
  // call.
  bool pop(T& out) {
    Slot& s = slots_[head_ & mask_];
    if (s.seq.load(std::memory_order_acquire) != head_ + 1) return false;
    out = std::move(s.value);
    s.seq.store(head_ + mask_ + 1, std::memory_order_release);
    ++head_;
    return true;
  }

  // Consumer side: sleep until something is poppable or the deadline
  // passes.  Returns true when poppable.
  bool wait_nonempty_until(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(sleep_m_);
    return sleep_cv_.wait_until(lock, deadline, [&] {
      return slots_[head_ & mask_].seq.load(std::memory_order_acquire) == head_ + 1;
    });
  }

 private:
  struct Slot {
    std::atomic<std::size_t> seq{0};
    T value{};
  };
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> tail_{0};  // producers claim tickets here
  std::size_t head_ = 0;              // consumer-owned
  std::mutex sleep_m_;
  std::condition_variable sleep_cv_;
};

// Supervisor -> worker command mailbox.  kExit is sticky: once posted,
// every subsequent take() returns it, so a worker draining a stale step
// assignment still sees the shutdown.
enum class WorkerCmd : std::uint8_t { kNone, kStep, kExit };

class WorkerChannel {
 public:
  void post(WorkerCmd cmd) {
    {
      std::lock_guard<std::mutex> lock(m_);
      if (cmd_ != WorkerCmd::kExit) cmd_ = cmd;
    }
    cv_.notify_one();
  }

  // Blocks until a command is available; consumes kStep, leaves kExit
  // sticky.
  WorkerCmd take() {
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock, [&] { return cmd_ != WorkerCmd::kNone; });
    const WorkerCmd cmd = cmd_;
    if (cmd == WorkerCmd::kStep) cmd_ = WorkerCmd::kNone;
    return cmd;
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  WorkerCmd cmd_ = WorkerCmd::kNone;
};

}  // namespace dowork::substrate
