// Wire format for the socket substrate (substrate/socket_substrate.h).
//
// The coordinator and its worker OS processes exchange length-prefixed
// frames over a localhost stream socket:
//
//   [u32 len LE][u8 type][body]        len counts the type byte + body
//
// Frame types mirror the round barrier's phases: the worker announces
// itself with kHello, the coordinator ships the round's mail as kDeliver
// records followed by one kStep, the worker answers with one kReply
// carrying its Action, and retirement is a real signal -- kExit for
// voluntary termination, SIGKILL for crashes (kKill asks the worker to
// flush the first N bytes of a ghost frame before killing itself, so a
// mid-broadcast crash leaves a genuinely torn frame for the coordinator's
// reader to recover from).
//
// Payload serialization is a CLOSED set: the sync-substrate protocols
// (A/B/C/C_batch/D/D_coord, baselines) exchange a fixed roster of payload
// structs, and the codec enumerates exactly those.  An unknown payload
// type is a structured WireError, never a silent drop -- a new protocol
// opting into the socket backend must extend the codec (and its
// round-trip test) first.  A broadcast's frame bytes are built ONCE and
// written to every recipient, preserving the delivery plane's
// one-allocation-per-broadcast shape across the process boundary.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "sim/message.h"
#include "sim/process.h"
#include "util/round.h"

namespace dowork::substrate::wire {

// Malformed bytes, truncated body, or a payload type outside the closed
// set.  The coordinator maps it to a structured abort; a worker exits
// with a protocol-error status.
struct WireError : std::runtime_error {
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

enum class FrameType : std::uint8_t {
  kHello = 1,    // worker -> coordinator: proc id, initial wake, known units
  kDeliver = 2,  // coordinator -> worker: one message of the round's mail
  kStep = 3,     // coordinator -> worker: evaluate on_round for this round
  kReply = 4,    // worker -> coordinator: the Action + next_wake + known units
  kKill = 5,     // coordinator -> worker: flush N torn bytes, then SIGKILL self
  kExit = 6,     // coordinator -> worker: clean shutdown
};

// Sanity bound on a frame's length prefix; anything larger is treated as
// stream corruption rather than an allocation request.
constexpr std::uint32_t kMaxFrameLen = 1u << 28;

struct HelloMsg {
  int proc = -1;
  Round wake0;
  std::int64_t known0 = 0;
};

struct ReplyMsg {
  Action action;
  Round next_wake;
  std::int64_t known = 0;
};

// Complete frames, ready to write.
std::string encode_hello(const HelloMsg& h);
std::string encode_deliver(int from, MsgKind kind, const Round& sent_round, const Payload* payload);
std::string encode_step(const Round& round);
std::string encode_reply(const Action& action, const Round& next_wake, std::int64_t known);
std::string encode_kill(std::uint32_t tear_bytes);
std::string encode_exit();

// Body decoders (the body is everything after the type byte).  All throw
// WireError on truncation or invalid tags.
HelloMsg decode_hello(std::string_view body);
// `self` fills Envelope::to -- the wire does not repeat the recipient id
// the coordinator already addressed the frame by.
Envelope decode_deliver(std::string_view body, int self);
Round decode_step(std::string_view body);
ReplyMsg decode_reply(std::string_view body);
std::uint32_t decode_kill(std::string_view body);

// Incremental frame assembly over a stream: feed() raw bytes as they
// arrive, next() yields complete frames.  A frame prefix left buffered at
// EOF is a torn frame -- exactly what a mid-write SIGKILL produces -- and
// mid_frame()/pending() let the reader classify it instead of erroring.
class FrameReader {
 public:
  void feed(const void* data, std::size_t n);
  // Extracts the next complete frame into *type / *body (body excludes the
  // type byte); returns false when only a partial frame (or nothing) is
  // buffered.  Throws WireError on an invalid length prefix or frame type.
  bool next(FrameType* type, std::string* body);
  // Bytes buffered but not yet consumed as frames.
  std::size_t pending() const { return buf_.size() - off_; }
  // True when the buffer holds the prefix of an incomplete frame.
  bool mid_frame() const { return pending() > 0; }

 private:
  std::string buf_;
  std::size_t off_ = 0;
};

}  // namespace dowork::substrate::wire
