#include "substrate/thread_substrate.h"

#include <chrono>
#include <string>
#include <utility>

namespace dowork::substrate {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

ThreadExecutor::ThreadExecutor(int num_procs, const LiveOptions& opts)
    : opts_(opts),
      channels_(static_cast<std::size_t>(num_procs)),
      ring_(static_cast<std::size_t>(num_procs)),
      exited_(static_cast<std::size_t>(num_procs)),
      slot_of_proc_(static_cast<std::size_t>(num_procs), -1) {
  threads_.reserve(static_cast<std::size_t>(num_procs));
  for (int p = 0; p < num_procs; ++p) threads_.emplace_back([this, p] { worker_main(p); });
  stats_.threads = num_procs;
}

ThreadExecutor::~ThreadExecutor() { shutdown(); }

void ThreadExecutor::worker_main(int p) {
  detail::set_cancel_token(&cancel_);
  const std::size_t self = static_cast<std::size_t>(p);
  for (;;) {
    const WorkerCmd cmd = channels_[self].take();
    if (cmd == WorkerCmd::kExit) break;
    // A step assignment that raced a watchdog abort: nobody is waiting for
    // the result, so don't start a stale evaluation.
    if (cancel_.cancelled()) break;
    StepEval* eval = eval_.load(std::memory_order_acquire);
    ring_.push(ResultMsg{p, eval->eval_step(p)});
  }
  detail::set_cancel_token(nullptr);
  exited_[self].store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(exit_m_);
  }
  exit_cv_.notify_all();
}

void ThreadExecutor::run_steps(StepEval& eval, const Round& round, const std::vector<int>& steps,
                               std::vector<Ready>& out) {
  // The kStep posts below (mutex handoffs) order this store before any
  // worker's load; the atomic keeps a late-running stale worker data-race
  // free as well.
  eval_.store(&eval, std::memory_order_release);

  const std::size_t expected = steps.size();
  const bool free_sched = opts_.schedule == LiveOptions::Schedule::kFree;
  have_.assign(expected, 0);
  if (!free_sched) det_actions_.assign(expected, Action{});
  for (std::size_t i = 0; i < expected; ++i)
    slot_of_proc_[static_cast<std::size_t>(steps[i])] = static_cast<int>(i);

  const auto deadline = Clock::now() + std::chrono::milliseconds(opts_.watchdog_ms);
  for (int p : steps) channels_[static_cast<std::size_t>(p)].post(WorkerCmd::kStep);

  std::size_t got = 0;
  ResultMsg msg;
  while (got < expected) {
    while (got < expected && ring_.pop(msg)) {
      const std::size_t idx =
          static_cast<std::size_t>(slot_of_proc_[static_cast<std::size_t>(msg.proc)]);
      have_[idx] = 1;
      ++got;
      if (free_sched)
        out.push_back(Ready{msg.proc, std::move(msg.action)});
      else
        det_actions_[idx] = std::move(msg.action);
    }
    if (got >= expected) break;
    if (!ring_.wait_nonempty_until(deadline)) {
      // Watchdog: the round missed its wall-clock deadline.  Cancel the run
      // cooperatively and abort with a structured reason; nothing from this
      // round commits.  (Free-schedule runs abort too -- out may hold
      // already-collected results, so the contract "throw before appending"
      // is kept by clearing it here.)
      cancel_.cancel();
      out.clear();
      std::size_t missing = 0;
      int first_stalled = -1;
      for (std::size_t i = 0; i < expected; ++i) {
        if (have_[i]) continue;
        ++missing;
        if (first_stalled < 0) first_stalled = steps[i];
      }
      throw AbortRun{"watchdog: " + std::to_string(missing) + " worker(s) missed the " +
                     std::to_string(opts_.watchdog_ms) + "ms round deadline (first stalled: proc " +
                     std::to_string(first_stalled) + ", round " + round.to_string() + ")",
                     "cause=watchdog proc=" + std::to_string(first_stalled) +
                         " missing=" + std::to_string(missing) + " round=" + round.to_string() +
                         " deadline_ms=" + std::to_string(opts_.watchdog_ms)};
    }
  }
  if (!free_sched)
    for (std::size_t i = 0; i < expected; ++i) out.push_back(Ready{steps[i], std::move(det_actions_[i])});
}

void ThreadExecutor::on_retire(int proc, ProcState state, KillPoint kp) {
  // The retirement is real: the process's thread leaves its loop at the
  // kill point the committed crash plan chose.  kExit is sticky, so even a
  // worker mid-take sees it.
  channels_[static_cast<std::size_t>(proc)].post(WorkerCmd::kExit);
  if (state != ProcState::kCrashed) return;
  switch (kp) {
    case KillPoint::kSendCommit: ++stats_.kills_send_commit; break;
    case KillPoint::kMidBroadcast: ++stats_.kills_mid_broadcast; break;
    case KillPoint::kRoundBarrier: ++stats_.kills_round_barrier; break;
    case KillPoint::kNone: break;
  }
}

bool ThreadExecutor::shutdown() {
  if (shut_down_) return !stats_.leaked;
  shut_down_ = true;
  cancel_.cancel();
  for (auto& ch : channels_) ch.post(WorkerCmd::kExit);

  const auto deadline = Clock::now() + std::chrono::milliseconds(opts_.join_grace_ms);
  {
    std::unique_lock<std::mutex> lock(exit_m_);
    exit_cv_.wait_until(lock, deadline, [&] {
      for (const auto& e : exited_)
        if (!e.load(std::memory_order_acquire)) return false;
      return true;
    });
  }
  for (std::size_t p = 0; p < threads_.size(); ++p) {
    if (exited_[p].load(std::memory_order_acquire)) {
      if (threads_[p].joinable()) threads_[p].join();
    } else {
      // A worker ignoring the cancel token cannot be joined; detach it and
      // report the leak so the caller pins this run's storage.
      threads_[p].detach();
      stats_.leaked = true;
    }
  }
  return !stats_.leaked;
}

namespace {

// The run's storage, heap-held so it can be pinned (deliberately leaked)
// when a wedged worker survives shutdown: the zombie thread keeps reading
// the Simulator and the fabric, which therefore must never be freed.
struct LiveRun {
  Simulator sim;
  ThreadExecutor executor;

  LiveRun(std::vector<std::unique_ptr<IProcess>> procs, std::unique_ptr<FaultInjector> faults,
          Simulator::Options sim_opts, int num_procs, const LiveOptions& live)
      : sim(std::move(procs), std::move(faults), std::move(sim_opts)),
        executor(num_procs, live) {}
};

}  // namespace

LiveRunResult run_live_do_all(const ProtocolInfo& info, const DoAllConfig& cfg,
                              std::unique_ptr<FaultInjector> faults, const RunOptions& opts,
                              const LiveOptions& live) {
  cfg.validate();
  Simulator::Options sim_opts;
  sim_opts.strict_one_op = info.strict_one_op && opts.enforce_strict;
  sim_opts.max_stepped_rounds = opts.max_stepped_rounds;
  sim_opts.n_units = cfg.n;
  sim_opts.net = opts.net;

  // shared_state=false: run-shared caches (Protocol D's AgreeMergeCache)
  // assume single-threaded ascending-id serving; registry.h documents why
  // the cache-free construction is observably identical.
  auto procs = make_processes(info, cfg, opts.protocol_param, /*shared_state=*/false);
  auto hold = std::make_unique<LiveRun>(std::move(procs), std::move(faults), sim_opts, cfg.t, live);
  hold->sim.set_step_executor(&hold->executor);

  LiveRunResult result;
  const auto start = Clock::now();
  try {
    result.run.metrics = hold->sim.run();
  } catch (...) {
    if (!hold->executor.shutdown()) hold.release();
    throw;
  }
  const double secs = std::chrono::duration<double>(Clock::now() - start).count();

  const bool clean = hold->executor.shutdown();
  result.stats = hold->executor.stats();
  result.stats.wall_seconds = secs;
  if (secs > 0 && result.run.metrics.work_total > 0)
    result.stats.units_per_sec = static_cast<double>(result.run.metrics.work_total) / secs;
  if (!clean) hold.release();  // pin the run for the zombie worker

  result.run.violation = verify_run(info, cfg, result.run.metrics);
  return result;
}

LiveRunResult run_live_do_all(const std::string& protocol, const DoAllConfig& cfg,
                              std::unique_ptr<FaultInjector> faults, const RunOptions& opts,
                              const LiveOptions& live) {
  return run_live_do_all(find_protocol(protocol), cfg, std::move(faults), opts, live);
}

}  // namespace dowork::substrate
