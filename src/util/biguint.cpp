#include "util/biguint.h"

#include <stdexcept>

namespace dowork {

BigUint BigUint::pow2(unsigned e) {
  if (e >= 64 * kLimbs) throw std::overflow_error("BigUint::pow2: exponent too large");
  BigUint r;
  r.limbs_[e / 64] = std::uint64_t{1} << (e % 64);
  return r;
}

void BigUint::throw_add_overflow() { throw std::overflow_error("BigUint: addition overflow"); }

void BigUint::throw_mul_overflow() {
  throw std::overflow_error("BigUint: multiplication overflow");
}

BigUint& BigUint::operator-=(const BigUint& rhs) {
  std::uint64_t borrow = 0;
  for (int i = 0; i < kLimbs; ++i) {
    std::uint64_t r = rhs.limbs_[i];
    std::uint64_t before = limbs_[i];
    std::uint64_t mid = before - r;
    std::uint64_t after = mid - borrow;
    // Borrow out if either subtraction wrapped.
    borrow = (before < r) || (mid < borrow) ? 1 : 0;
    limbs_[i] = after;
  }
  if (borrow != 0) throw std::underflow_error("BigUint: subtraction underflow");
  return *this;
}

BigUint& BigUint::operator<<=(unsigned sh) {
  if (sh == 0) return *this;
  unsigned limb_sh = sh / 64;
  unsigned bit_sh = sh % 64;
  // Check the bits that would be shifted out.
  for (int i = kLimbs - static_cast<int>(limb_sh); i < kLimbs; ++i) {
    if (i >= 0 && limbs_[static_cast<size_t>(i)] != 0)
      throw std::overflow_error("BigUint: shift overflow");
  }
  if (limb_sh >= static_cast<unsigned>(kLimbs)) {
    if (!is_zero()) throw std::overflow_error("BigUint: shift overflow");
    return *this;
  }
  if (bit_sh != 0 && limb_sh + 1 <= static_cast<unsigned>(kLimbs) &&
      (limbs_[kLimbs - 1 - limb_sh] >> (64 - bit_sh)) != 0) {
    throw std::overflow_error("BigUint: shift overflow");
  }
  for (int i = kLimbs - 1; i >= 0; --i) {
    std::uint64_t v = 0;
    int src = i - static_cast<int>(limb_sh);
    if (src >= 0) {
      v = limbs_[static_cast<size_t>(src)] << bit_sh;
      if (bit_sh != 0 && src - 1 >= 0)
        v |= limbs_[static_cast<size_t>(src - 1)] >> (64 - bit_sh);
    }
    limbs_[static_cast<size_t>(i)] = v;
  }
  return *this;
}

std::string BigUint::to_string() const {
  if (is_zero()) return "0";
  // Repeated division by 10^19 (largest power of 10 in a u64).
  constexpr std::uint64_t kChunk = 10'000'000'000'000'000'000ull;
  BigUint v = *this;
  std::string out;
  while (!v.is_zero()) {
    unsigned __int128 rem = 0;
    for (int i = kLimbs - 1; i >= 0; --i) {
      unsigned __int128 cur = (rem << 64) | v.limbs_[static_cast<size_t>(i)];
      v.limbs_[static_cast<size_t>(i)] = static_cast<std::uint64_t>(cur / kChunk);
      rem = cur % kChunk;
    }
    std::string part = std::to_string(static_cast<std::uint64_t>(rem));
    if (!v.is_zero()) part = std::string(19 - part.size(), '0') + part;
    out = part + out;
  }
  return out;
}

int BigUint::log2_floor() const {
  for (int i = kLimbs - 1; i >= 0; --i) {
    if (limbs_[static_cast<size_t>(i)] != 0) {
      return i * 64 + 63 - __builtin_clzll(limbs_[static_cast<size_t>(i)]);
    }
  }
  return -1;
}

std::string to_string(const BigUint& v) { return v.to_string(); }

}  // namespace dowork
