// Small formatting helpers shared by benches, examples and trace output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dowork {

// Fixed-width ASCII table printer used by the benchmark harness to emit the
// paper-style result tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  // Renders the table (header, rule, rows) to a string.
  std::string render() const;
  void print() const;  // render() to stdout

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// "12345" -> "12,345" for readable large counts.
std::string with_commas(std::uint64_t v);

// Formats a ratio like 1.2345 as "1.23x".
std::string ratio(double v);

}  // namespace dowork
