// The simulator's round-number ("time") type.  Round 0 is the first round.
//
// Dwork-Halpern-Waarts time bounds span from 3n + 8t rounds (Protocol B,
// Theorem 2.8) to ~2^(n+t) rounds (Protocol C, Corollary 3.9).  Round covers
// that span with two tiers: a uint64_t stored inline -- every round number
// Protocols A/B/D, the wake heap, the fault injector and the metrics ever
// see -- and an exact, automatic promotion to a heap-backed 512-bit BigUint
// (util/biguint.h) the moment a value crosses 2^64, which only Protocol C's
// deadline arithmetic does.  Promotion never saturates and never rounds: the
// promoted value is the exact integer the inline computation overflowed to.
//
// Promotion contract:
//   * Representation invariant: the value is stored inline (big_ == nullptr)
//     exactly when it is < 2^64.  Arithmetic that crosses 2^64 upward
//     promotes; arithmetic that crosses it downward (subtraction, *= 0)
//     demotes.  The representation is therefore canonical: equal values have
//     equal representations.
//   * Ordering is total across representations *because* of that invariant:
//     a promoted value is by construction >= 2^64 and thus greater than any
//     inline value, so small/small compares are one u64 compare, small/big
//     compares are one null check, and big/big compares fall through to
//     BigUint's limb compare.
//   * Overflow semantics are BigUint's, unchanged from when Round *was* a
//     BigUint: +, *, << and pow2 throw std::overflow_error past 2^512, and
//     - throws std::underflow_error below zero (the paper's correctness
//     argument needs deadline arithmetic to fail loudly, never wrap).  An
//     inline receiver is unchanged when its operator throws; a promoted
//     receiver computes in place and may be left partially updated, exactly
//     as a plain BigUint was -- simulator callers treat a throw as fatal
//     for the run.
//
// The arithmetic fast paths are inline below: round arithmetic sits on the
// simulator's scheduling hot path (wake-queue ordering, deadline math), and
// at 16 bytes a Round keeps WakeEntry at 24 bytes instead of the 72 the
// 512-bit representation cost.  Slow paths (anything involving a promoted
// operand or a carry out of the inline word) live in round.cpp.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "util/biguint.h"

namespace dowork {

class Round {
 public:
  constexpr Round() noexcept : lo_(0), big_(nullptr) {}
  constexpr Round(std::uint64_t v) noexcept : lo_(v), big_(nullptr) {}  // NOLINT: implicit by design
  Round(const BigUint& v);  // NOLINT: implicit -- exact, demotes when v fits u64

  Round(const Round& o) : lo_(o.lo_), big_(o.big_ ? clone(*o.big_) : nullptr) {}
  Round(Round&& o) noexcept : lo_(o.lo_), big_(o.big_) { o.big_ = nullptr; }
  Round& operator=(const Round& o);
  Round& operator=(Round&& o) noexcept {
    if (this != &o) {
      delete big_;
      lo_ = o.lo_;
      big_ = o.big_;
      o.big_ = nullptr;
    }
    return *this;
  }
  ~Round() { delete big_; }

  // 2^e: inline for e < 64, promoted above.  Throws std::overflow_error for
  // e >= 512 (the promoted representation's limit).
  static Round pow2(unsigned e);

  Round& operator+=(const Round& rhs) {
    if (big_ == nullptr && rhs.big_ == nullptr) [[likely]] {
      std::uint64_t s;
      if (!__builtin_add_overflow(lo_, rhs.lo_, &s)) [[likely]] {
        lo_ = s;
        return *this;
      }
    }
    return add_slow(rhs);
  }

  Round& operator-=(const Round& rhs) {
    if (big_ == nullptr && rhs.big_ == nullptr) [[likely]] {
      if (lo_ < rhs.lo_) throw_sub_underflow();
      lo_ -= rhs.lo_;
      return *this;
    }
    return sub_slow(rhs);
  }

  Round& operator*=(std::uint64_t rhs) {
    if (big_ == nullptr) [[likely]] {
      const unsigned __int128 p = static_cast<unsigned __int128>(lo_) * rhs;
      if (static_cast<std::uint64_t>(p >> 64) == 0) [[likely]] {
        lo_ = static_cast<std::uint64_t>(p);
        return *this;
      }
    }
    return mul_slow(rhs);
  }

  Round& operator<<=(unsigned sh) {
    if (big_ == nullptr) [[likely]] {
      if (lo_ == 0 || sh == 0) return *this;  // 0 << anything == 0, as in BigUint
      if (sh < 64 && (lo_ >> (64 - sh)) == 0) [[likely]] {
        lo_ <<= sh;
        return *this;
      }
    }
    return shl_slow(sh);
  }

  friend Round operator+(Round a, const Round& b) { return a += b; }
  friend Round operator-(Round a, const Round& b) { return a -= b; }
  friend Round operator*(Round a, std::uint64_t b) { return a *= b; }
  friend Round operator*(std::uint64_t a, Round b) { return b *= a; }
  friend Round operator<<(Round a, unsigned sh) { return a <<= sh; }

  Round& operator++() { return *this += Round{1}; }

  friend bool operator==(const Round& a, const Round& b) {
    if (a.big_ == nullptr && b.big_ == nullptr) [[likely]] return a.lo_ == b.lo_;
    // Canonical representation: a promoted value never equals an inline one.
    return a.big_ != nullptr && b.big_ != nullptr && *a.big_ == *b.big_;
  }
  friend std::strong_ordering operator<=>(const Round& a, const Round& b) {
    if (a.big_ == nullptr && b.big_ == nullptr) [[likely]] return a.lo_ <=> b.lo_;
    if (a.big_ == nullptr) return std::strong_ordering::less;  // promoted >= 2^64
    if (b.big_ == nullptr) return std::strong_ordering::greater;
    return *a.big_ <=> *b.big_;
  }

  bool is_zero() const { return big_ == nullptr && lo_ == 0; }
  // True iff the value is stored inline; by the representation invariant
  // this is exactly "the value fits in a u64".
  bool fits_u64() const { return big_ == nullptr; }
  // Value as u64; saturates to UINT64_MAX when promoted (same as BigUint).
  std::uint64_t to_u64_saturating() const { return big_ == nullptr ? lo_ : UINT64_MAX; }
  // Exact decimal representation, identical to BigUint's for every value.
  std::string to_string() const;
  // floor(log2(v)); returns -1 for zero.  Used for compact reporting of
  // Protocol C's astronomically large round counts ("~2^k").
  int log2_floor() const {
    if (big_ != nullptr) return big_->log2_floor();
    return lo_ == 0 ? -1 : 63 - __builtin_clzll(lo_);
  }
  // The exact value widened to the promoted representation (BigUint interop).
  BigUint as_big() const { return big_ ? *big_ : BigUint{lo_}; }

 private:
  static BigUint* clone(const BigUint& b);
  [[noreturn]] static void throw_sub_underflow();
  Round& add_slow(const Round& rhs);
  Round& sub_slow(const Round& rhs);
  Round& mul_slow(std::uint64_t rhs);
  Round& shl_slow(unsigned sh);
  // Installs b as the value, demoting to the inline word when it fits (the
  // canonicalization step every slow path funnels through).
  void set_big(BigUint&& b);

  std::uint64_t lo_;  // the value, when big_ == nullptr
  BigUint* big_;      // owned; non-null iff the value >= 2^64
};

std::string to_string(const Round& v);

}  // namespace dowork
