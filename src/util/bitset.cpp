#include "util/bitset.h"

// Runtime ISA dispatch for the merge loops.  DOWORK_HAVE_TARGET_CLONES is
// probed by CMake (check_cxx_source_compiles) because attribute support
// alone does not guarantee the arch=x86-64-v* clone names resolve on every
// toolchain.  Every clone executes the same word-wise AND/OR, so results
// are bitwise identical regardless of which one the loader picks.
#if defined(DOWORK_HAVE_TARGET_CLONES)
#define DOWORK_MERGE_CLONES \
  __attribute__((target_clones("arch=x86-64-v4", "arch=x86-64-v3", "default")))
#else
#define DOWORK_MERGE_CLONES
#endif

namespace dowork::detail {

DOWORK_MERGE_CLONES
void and_words(std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] &= b[i];
}

DOWORK_MERGE_CLONES
void or_words(std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] |= b[i];
}

}  // namespace dowork::detail
