#include "util/round.h"

#include <stdexcept>
#include <utility>

namespace dowork {

Round::Round(const BigUint& v) : lo_(0), big_(nullptr) {
  if (v.fits_u64()) lo_ = v.to_u64_saturating();
  else big_ = new BigUint(v);
}

Round& Round::operator=(const Round& o) {
  if (this == &o) return *this;
  lo_ = o.lo_;
  if (o.big_ == nullptr) {
    delete big_;
    big_ = nullptr;
  } else if (big_ == nullptr) {
    big_ = new BigUint(*o.big_);
  } else {
    *big_ = *o.big_;  // reuse the existing allocation
  }
  return *this;
}

BigUint* Round::clone(const BigUint& b) { return new BigUint(b); }

// Same message BigUint throws: a run that underflows produces the identical
// violation text whether the operands were inline or promoted.
void Round::throw_sub_underflow() {
  throw std::underflow_error("BigUint: subtraction underflow");
}

Round Round::pow2(unsigned e) {
  if (e < 64) return Round{std::uint64_t{1} << e};
  return Round(BigUint::pow2(e));  // throws std::overflow_error for e >= 512
}

void Round::set_big(BigUint&& b) {
  if (b.fits_u64()) {  // demote: keep the representation canonical
    lo_ = b.to_u64_saturating();
    delete big_;
    big_ = nullptr;
    return;
  }
  if (big_ == nullptr) big_ = new BigUint(std::move(b));
  else *big_ = std::move(b);
}

// The slow paths widen to 512 bits, compute, and canonicalize.  When *this
// is already promoted the arithmetic runs in place -- no temporary, no
// allocation -- which keeps Protocol C's promoted deadline math at the cost
// the plain BigUint representation had.  (BigUint's throwing operators may
// leave the promoted value partially updated, exactly as they did when
// Round *was* a BigUint; every simulator caller treats a throw as fatal for
// the run.)

Round& Round::add_slow(const Round& rhs) {
  if (big_ != nullptr) {
    // promoted + x >= 2^64: never demotes.
    *big_ += (rhs.big_ != nullptr ? *rhs.big_ : BigUint{rhs.lo_});
    return *this;
  }
  // *this is inline: either rhs is promoted, or this is the small + small
  // carry-out case (rhs inline too).  Widen and let set_big canonicalize.
  BigUint sum{lo_};
  sum += (rhs.big_ != nullptr ? *rhs.big_ : BigUint{rhs.lo_});  // may throw past 2^512
  set_big(std::move(sum));
  return *this;
}

Round& Round::sub_slow(const Round& rhs) {
  BigUint diff = as_big();
  diff -= rhs.as_big();  // throws std::underflow_error below zero
  set_big(std::move(diff));  // the difference may cross back under 2^64
  return *this;
}

Round& Round::mul_slow(std::uint64_t rhs) {
  if (big_ != nullptr && rhs != 0) {
    // promoted * nonzero >= 2^64: never demotes.
    *big_ *= rhs;  // throws std::overflow_error past 2^512
    return *this;
  }
  BigUint prod = as_big();
  prod *= rhs;
  set_big(std::move(prod));  // rhs == 0 demotes back to inline zero
  return *this;
}

Round& Round::shl_slow(unsigned sh) {
  if (big_ != nullptr) {
    // promoted << sh >= 2^64: never demotes (sh == 0 is a no-op).
    *big_ <<= sh;  // throws std::overflow_error when nonzero bits cross 2^512
    return *this;
  }
  BigUint v{lo_};
  v <<= sh;
  set_big(std::move(v));
  return *this;
}

std::string Round::to_string() const {
  return big_ != nullptr ? big_->to_string() : std::to_string(lo_);
}

std::string to_string(const Round& v) { return v.to_string(); }

}  // namespace dowork
