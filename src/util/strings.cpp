#include "util/strings.h"

#include <cstdio>
#include <iostream>

namespace dowork {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      line += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string out = emit_row(headers_);
  std::string rule = "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) rule += std::string(width[c] + 2, '-') + "|";
  out += rule + "\n";
  for (const auto& row : rows_) out += emit_row(row);
  return out;
}

void TablePrinter::print() const { std::cout << render() << std::flush; }

std::string with_commas(std::uint64_t v) {
  // Built by appending (not std::string::insert, which trips a GCC 12
  // -Werror=restrict false positive when inlined here).
  const std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i > 0 && (digits.size() - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

std::string ratio(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fx", v);
  return buf;
}

}  // namespace dowork
