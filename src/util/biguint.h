// 512-bit unsigned integer: the *promoted* representation behind the
// simulator's two-tier Round type (util/round.h).
//
// Protocol C (Dwork-Halpern-Waarts Section 3) schedules takeover deadlines of
// the form D(i,m) = K(n+t-m) * 2^(n+t-1-m) rounds; for the experiment sizes we
// reproduce, these values overflow 64- and 128-bit integers but fit easily in
// 512 bits (n + t up to ~450).  Every other protocol's round numbers fit one
// machine word, which is why Round keeps a uint64_t inline and only promotes
// to a heap-backed BigUint when a value crosses 2^64.  Arithmetic here still
// throws on overflow/underflow so a mis-sized experiment fails loudly rather
// than corrupting deadline ordering, which Protocol C's correctness proof
// depends on.  Code outside the promotion machinery should use Round; BigUint
// is the escape hatch for values known to be astronomically large (deadline
// tests, never_round()).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

namespace dowork {

class BigUint {
 public:
  static constexpr int kLimbs = 8;  // 8 x 64 = 512 bits

  constexpr BigUint() : limbs_{} {}
  constexpr BigUint(std::uint64_t v) : limbs_{} { limbs_[0] = v; }  // NOLINT: implicit by design

  // 2^e.  Throws std::overflow_error if e >= 512.
  static BigUint pow2(unsigned e);

  // The add/multiply/compare operators are defined inline below: round
  // arithmetic sits on the simulator's scheduling hot path (wake-queue
  // ordering, deadline math) and the call overhead of an out-of-line 8-limb
  // loop is measurable at large t.
  BigUint& operator+=(const BigUint& rhs);
  BigUint& operator-=(const BigUint& rhs);  // throws std::underflow_error if rhs > *this
  BigUint& operator*=(std::uint64_t rhs);
  BigUint& operator<<=(unsigned sh);

  friend BigUint operator+(BigUint a, const BigUint& b) { return a += b; }
  friend BigUint operator-(BigUint a, const BigUint& b) { return a -= b; }
  friend BigUint operator*(BigUint a, std::uint64_t b) { return a *= b; }
  friend BigUint operator*(std::uint64_t a, BigUint b) { return b *= a; }
  friend BigUint operator<<(BigUint a, unsigned sh) { return a <<= sh; }

  BigUint& operator++() { return *this += BigUint{1}; }

  friend bool operator==(const BigUint& a, const BigUint& b) = default;
  friend std::strong_ordering operator<=>(const BigUint& a, const BigUint& b);

  bool is_zero() const;
  bool fits_u64() const;
  // Value as u64; saturates to UINT64_MAX when the value does not fit.
  std::uint64_t to_u64_saturating() const;
  // Exact decimal representation.
  std::string to_string() const;
  // floor(log2(v)); returns -1 for zero.  Used for compact reporting of
  // Protocol C's astronomically large round counts.
  int log2_floor() const;

  // Exact little-endian limb access for serialization (the socket substrate
  // ships promoted Rounds limb-for-limb; decimal round-trips would be lossy
  // only in cost, but limbs are also branch-free to encode).
  std::uint64_t limb(int i) const { return limbs_[static_cast<std::size_t>(i)]; }
  static BigUint from_limbs(const std::array<std::uint64_t, kLimbs>& limbs) {
    BigUint v;
    v.limbs_ = limbs;
    return v;
  }

 private:
  [[noreturn]] static void throw_add_overflow();
  [[noreturn]] static void throw_mul_overflow();

  std::array<std::uint64_t, kLimbs> limbs_;  // little-endian limbs
};

inline BigUint& BigUint::operator+=(const BigUint& rhs) {
  unsigned __int128 carry = 0;
  for (int i = 0; i < kLimbs; ++i) {
    unsigned __int128 s = carry + limbs_[static_cast<std::size_t>(i)] +
                          rhs.limbs_[static_cast<std::size_t>(i)];
    limbs_[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(s);
    carry = s >> 64;
  }
  if (carry != 0) throw_add_overflow();
  return *this;
}

inline BigUint& BigUint::operator*=(std::uint64_t rhs) {
  unsigned __int128 carry = 0;
  for (int i = 0; i < kLimbs; ++i) {
    unsigned __int128 p =
        static_cast<unsigned __int128>(limbs_[static_cast<std::size_t>(i)]) * rhs + carry;
    limbs_[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(p);
    carry = p >> 64;
  }
  if (carry != 0) throw_mul_overflow();
  return *this;
}

inline std::strong_ordering operator<=>(const BigUint& a, const BigUint& b) {
  for (int i = BigUint::kLimbs - 1; i >= 0; --i) {
    if (a.limbs_[static_cast<std::size_t>(i)] != b.limbs_[static_cast<std::size_t>(i)])
      return a.limbs_[static_cast<std::size_t>(i)] <=> b.limbs_[static_cast<std::size_t>(i)];
  }
  return std::strong_ordering::equal;
}

// is_zero/fits_u64 are branch-free OR-reductions: both sit under Round's
// promotion/demotion checks, where an early-exit loop's data-dependent
// branches mispredict on mixed workloads for no win at 8 limbs.
inline bool BigUint::is_zero() const {
  std::uint64_t acc = 0;
  for (auto l : limbs_) acc |= l;
  return acc == 0;
}

inline bool BigUint::fits_u64() const {
  std::uint64_t acc = 0;
  for (int i = 1; i < kLimbs; ++i) acc |= limbs_[static_cast<std::size_t>(i)];
  return acc == 0;
}

inline std::uint64_t BigUint::to_u64_saturating() const {
  return fits_u64() ? limbs_[0] : UINT64_MAX;
}

std::string to_string(const BigUint& v);

}  // namespace dowork
