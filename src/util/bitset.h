// Word-packed dynamic bitset for the protocols' view vectors.
//
// Protocol D (and its coordinator variant) exchange views containing the
// outstanding-unit set S (n bits) and the believed-correct set T (t bits),
// and every agreement iteration intersects/unions the views of up to t
// peers.  Stored as one byte per element that merge traffic is O(t^2 * n)
// bytes per phase -- the single largest cost at the scale sweep's t = 1024,
// n = 16384 shape.  Packing 64 elements per word cuts both the memory
// traffic and the merge work by 8-64x without changing any observable
// behavior (the bit values, and hence every message and metric, are
// identical).
//
// Only the operations the protocols need are provided; all of them keep the
// invariant that bits at positions >= size() are zero, so whole-word
// equality, popcount and merge never see garbage.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace dowork {

class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(std::size_t n, bool value = false)
      : n_(n), w_((n + 63) / 64, value ? ~std::uint64_t{0} : 0) {
    mask_tail();
  }

  std::size_t size() const { return n_; }

  bool test(std::size_t i) const { return (w_[i / 64] >> (i % 64)) & 1; }
  void set(std::size_t i) { w_[i / 64] |= std::uint64_t{1} << (i % 64); }
  void reset(std::size_t i) { w_[i / 64] &= ~(std::uint64_t{1} << (i % 64)); }

  // Number of set bits.
  std::uint64_t count() const {
    std::uint64_t c = 0;
    for (std::uint64_t w : w_) c += static_cast<std::uint64_t>(std::popcount(w));
    return c;
  }

  // Number of set bits at positions < k (k <= size()).  The protocols use
  // this for "my rank among the live processes".
  std::uint64_t count_prefix(std::size_t k) const {
    std::uint64_t c = 0;
    std::size_t full = k / 64;
    for (std::size_t i = 0; i < full; ++i)
      c += static_cast<std::uint64_t>(std::popcount(w_[i]));
    if (k % 64)
      c += static_cast<std::uint64_t>(
          std::popcount(w_[full] & ((std::uint64_t{1} << (k % 64)) - 1)));
    return c;
  }

  bool none() const {
    for (std::uint64_t w : w_)
      if (w) return false;
    return true;
  }
  bool any() const { return !none(); }

  // Index of the first set bit at position >= from; size() when there is
  // none.  Enables O(words + popcount) iteration over sparse sets.
  std::size_t find_next(std::size_t from) const {
    if (from >= n_) return n_;
    std::size_t wi = from / 64;
    std::uint64_t w = w_[wi] & (~std::uint64_t{0} << (from % 64));
    while (true) {
      if (w) return wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
      if (++wi == w_.size()) return n_;
      w = w_[wi];
    }
  }

  // Element-wise merge; both operands must have equal size.
  DynBitset& operator&=(const DynBitset& o) {
    for (std::size_t i = 0; i < w_.size(); ++i) w_[i] &= o.w_[i];
    return *this;
  }
  DynBitset& operator|=(const DynBitset& o) {
    for (std::size_t i = 0; i < w_.size(); ++i) w_[i] |= o.w_[i];
    return *this;
  }

  friend bool operator==(const DynBitset& a, const DynBitset& b) = default;

 private:
  void mask_tail() {
    if (n_ % 64 && !w_.empty()) w_.back() &= (std::uint64_t{1} << (n_ % 64)) - 1;
  }

  std::size_t n_ = 0;
  std::vector<std::uint64_t> w_;
};

}  // namespace dowork
