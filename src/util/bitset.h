// Word-packed dynamic bitset for the protocols' view vectors.
//
// Protocol D (and its coordinator variant) exchange views containing the
// outstanding-unit set S (n bits) and the believed-correct set T (t bits),
// and every agreement iteration intersects/unions the views of up to t
// peers.  Stored as one byte per element that merge traffic is O(t^2 * n)
// bytes per phase -- the single largest cost at the scale sweep's t = 1024,
// n = 16384 shape.  Packing 64 elements per word cuts both the memory
// traffic and the merge work by 8-64x without changing any observable
// behavior (the bit values, and hence every message and metric, are
// identical).
//
// Only the operations the protocols need are provided; all of them keep the
// invariant that bits at positions >= size() are zero, so whole-word
// equality, popcount and merge never see garbage.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace dowork {

namespace detail {
// Out-of-line bulk word merges (bitset.cpp), compiled with target_clones
// when the toolchain supports it so the hot agreement merge runs at the
// widest vector width the machine has.
void and_words(std::uint64_t* a, const std::uint64_t* b, std::size_t n);
void or_words(std::uint64_t* a, const std::uint64_t* b, std::size_t n);
}  // namespace detail

class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(std::size_t n, bool value = false)
      : n_(n), w_((n + 63) / 64, value ? ~std::uint64_t{0} : 0) {
    mask_tail();
  }

  std::size_t size() const { return n_; }

  bool test(std::size_t i) const { return (w_[i / 64] >> (i % 64)) & 1; }
  void set(std::size_t i) { w_[i / 64] |= std::uint64_t{1} << (i % 64); }
  void reset(std::size_t i) { w_[i / 64] &= ~(std::uint64_t{1} << (i % 64)); }

  // Clears every bit, keeping the size (the simulator's per-round mail mask
  // is reused round over round).
  void reset_all() { std::fill(w_.begin(), w_.end(), 0); }

  // Number of set bits.
  std::uint64_t count() const {
    std::uint64_t c = 0;
    for (std::uint64_t w : w_) c += static_cast<std::uint64_t>(std::popcount(w));
    return c;
  }

  // Number of set bits at positions < k (k <= size()).  The protocols use
  // this for "my rank among the live processes".
  std::uint64_t count_prefix(std::size_t k) const {
    std::uint64_t c = 0;
    std::size_t full = k / 64;
    for (std::size_t i = 0; i < full; ++i)
      c += static_cast<std::uint64_t>(std::popcount(w_[i]));
    if (k % 64)
      c += static_cast<std::uint64_t>(
          std::popcount(w_[full] & ((std::uint64_t{1} << (k % 64)) - 1)));
    return c;
  }

  bool none() const {
    for (std::uint64_t w : w_)
      if (w) return false;
    return true;
  }
  bool any() const { return !none(); }

  // Index of the k-th (0-based) set bit in increasing position order; size()
  // when fewer than k+1 bits are set.  Protocol D uses this to locate its
  // work-phase slice without materializing the whole outstanding set.
  std::size_t select(std::uint64_t k) const {
    for (std::size_t wi = 0; wi < w_.size(); ++wi) {
      const auto pc = static_cast<std::uint64_t>(std::popcount(w_[wi]));
      if (k < pc) {
        std::uint64_t w = w_[wi];
        for (; k > 0; --k) w &= w - 1;  // drop the k lowest set bits
        return wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
      }
      k -= pc;
    }
    return n_;
  }

  // Index of the first set bit at position >= from; size() when there is
  // none.  Enables O(words + popcount) iteration over sparse sets.
  std::size_t find_next(std::size_t from) const {
    if (from >= n_) return n_;
    std::size_t wi = from / 64;
    std::uint64_t w = w_[wi] & (~std::uint64_t{0} << (from % 64));
    while (true) {
      if (w) return wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
      if (++wi == w_.size()) return n_;
      w = w_[wi];
    }
  }

  // Element-wise merge; both operands must have equal size.  The word loops
  // live out of line (bitset.cpp) behind runtime ISA dispatch: Protocol D's
  // agreement merge ANDs ~t views of n bits per iteration, and on x86-64 the
  // AVX-512/AVX2 clones cut the per-view merge from ~295 to ~180 cycles at
  // the scale sweep's n = 16384.  Results are bitwise identical on every
  // path -- dispatch only picks a vector width.
  DynBitset& operator&=(const DynBitset& o) {
    detail::and_words(w_.data(), o.w_.data(), w_.size());
    return *this;
  }
  DynBitset& operator|=(const DynBitset& o) {
    detail::or_words(w_.data(), o.w_.data(), w_.size());
    return *this;
  }

  friend bool operator==(const DynBitset& a, const DynBitset& b) = default;

  // Raw word access for serialization (the socket substrate's wire codec
  // ships view bitsets word-for-word; bit-at-a-time framing would be 64x
  // the work at Protocol D's shapes).  assign_word trusts the caller for
  // non-tail words and re-masks the tail so the bits >= size() invariant
  // survives a decode of hostile bytes.
  std::size_t word_count() const { return w_.size(); }
  std::uint64_t word(std::size_t i) const { return w_[i]; }
  void assign_word(std::size_t i, std::uint64_t w) {
    w_[i] = w;
    if (i + 1 == w_.size()) mask_tail();
  }

 private:
  void mask_tail() {
    if (n_ % 64 && !w_.empty()) w_.back() &= (std::uint64_t{1} << (n_ % 64)) - 1;
  }

  std::size_t n_ = 0;
  std::vector<std::uint64_t> w_;
};

}  // namespace dowork
