#include "util/rng.h"

#include <algorithm>

namespace dowork {

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  std::uniform_int_distribution<std::uint64_t> d(lo, hi);
  return d(engine_);
}

bool Rng::chance(double p) {
  p = std::clamp(p, 0.0, 1.0);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  return d(engine_) < p;
}

std::vector<bool> Rng::subset_mask(std::size_t k) {
  std::vector<bool> mask(k);
  for (std::size_t i = 0; i < k; ++i) mask[i] = chance(0.5);
  return mask;
}

Rng Rng::fork() { return Rng(engine_()); }

}  // namespace dowork
