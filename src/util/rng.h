// Deterministic pseudo-random source.  Every stochastic element of a run
// (random crash schedules, broadcast-subset adversaries, workload shuffles)
// draws from a single seeded generator so that any run is reproducible from
// its (protocol, n, t, schedule, seed) tuple.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace dowork {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);
  // Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p);
  // Uniformly chosen subset of {0,...,k-1} as a boolean mask.
  std::vector<bool> subset_mask(std::size_t k);
  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(0, i));
      std::swap(v[i], v[j]);
    }
  }
  // Fork a child generator; child streams are independent of later draws
  // from the parent.
  Rng fork();

 private:
  std::mt19937_64 engine_;
};

}  // namespace dowork
