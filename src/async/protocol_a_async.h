// Asynchronous Protocol A (paper Section 2.1, final remark).
//
// Identical checkpointing structure to the synchronous Protocol A, but
// process j becomes active when the failure detector has reported that every
// process below j crashed or terminated, instead of waiting for the absolute
// deadline DD(j).  Work and message complexity are unchanged; time depends
// only on actual delays and detector latency, not on worst-case deadlines.
#pragma once

#include <set>

#include "async/async_sim.h"
#include "core/work.h"
#include "protocols/protocol_a.h"

namespace dowork {

class AsyncProtocolAProcess final : public IAsyncProcess {
 public:
  AsyncProtocolAProcess(const DoAllConfig& cfg, int self);

  AsyncAction on_event(ATime now, const AsyncEvent& event) override;

 private:
  void ingest(int from, const Payload* payload);
  bool lower_processes_all_retired() const;
  AsyncAction pop_plan();

  GroupLayout layout_;
  WorkPartition part_;
  int self_;

  bool active_ = false;
  bool done_ = false;
  bool completion_seen_ = false;
  LastCheckpoint last_;
  std::set<int> retired_known_;
  ActivePlan plan_;
};

// Convenience harness mirroring run_do_all for the async model.
AsyncMetrics run_async_protocol_a(const DoAllConfig& cfg, AsyncSim::Options options,
                                  std::vector<std::optional<AsyncSim::CrashSpec>> crashes = {});

}  // namespace dowork
