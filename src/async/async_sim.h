// Event-driven asynchronous simulator with a perfect failure detector.
//
// Paper Section 2.1: Protocol A uses synchrony only to detect failures (the
// absence of an expected message), so it "can be easily modified to run in a
// completely asynchronous system equipped with a failure detection
// mechanism": instead of waiting for round DD(j), process j becomes active
// once the detector reports that processes 0..j-1 have crashed or
// terminated.  This module provides that substrate: messages take an
// adversarially chosen (seeded) delay in [min_delay, max_delay], process
// steps take step_delay, and whenever a process retires the detector
// notifies every live process after its own bounded delay.  The detector is
// *sound* (never reports a live process) and *complete* (eventually reports
// every retired one) -- the paper's requirements.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "sim/message.h"
#include "sim/network_model.h"
#include "util/rng.h"

namespace dowork {

using ATime = std::uint64_t;

struct AsyncEvent {
  enum class Kind { kStart, kTimer, kMessage, kRetireNotice };
  Kind kind = Kind::kStart;
  // kMessage:
  int from = -1;
  MsgKind msg_kind = MsgKind::kOther;
  std::shared_ptr<const Payload> payload;
  // kRetireNotice: the process reported retired by the failure detector.
  int retired_proc = -1;
};

struct AsyncAction {
  std::optional<std::int64_t> work;
  std::vector<Outgoing> sends;
  bool terminate = false;
  // Request a kTimer event this many ticks from now (used by active
  // processes to pace one operation per step).
  std::optional<ATime> timer;
};

class IAsyncProcess {
 public:
  virtual ~IAsyncProcess() = default;
  virtual AsyncAction on_event(ATime now, const AsyncEvent& event) = 0;
};

struct AsyncMetrics {
  std::uint64_t work_total = 0;
  std::uint64_t messages_total = 0;  // protocol messages (FD notices excluded)
  std::uint64_t fd_notices = 0;
  std::uint64_t crashes = 0;
  std::uint64_t net_dropped = 0;  // recipients lost to link loss (counted in messages_total)
  std::uint64_t net_blocked = 0;  // recipients severed by a partition window
  ATime end_time = 0;
  std::vector<std::uint64_t> unit_multiplicity;
  bool all_retired = false;
  bool all_units_done() const {
    for (auto m : unit_multiplicity)
      if (m == 0) return false;
    return true;
  }
};

class AsyncSim {
 public:
  struct Options {
    ATime min_delay = 1;
    ATime max_delay = 20;       // adversarial message delay range
    ATime fd_max_delay = 30;    // detector notification latency bound
    std::uint64_t seed = 1;
    std::int64_t n_units = 0;
    std::uint64_t max_events = 10'000'000;
    // Network weather (sim/network_model.h).  The latency component, when
    // set, REPLACES [min_delay, max_delay] -- the historical delay range was
    // always this model's uniform draw, now under one roof.  Loss and
    // partition apply per recipient at send time.  Failure-detector notices
    // ride the control plane: they model local detector timers, not network
    // messages, so weather never drops, severs, or re-times them (the
    // detector stays sound and complete under any NetSpec).
    NetSpec net;
  };

  // crash_after_actions[p] (if set) crashes process p on its k-th non-idle
  // action; the crash suppresses that action's work and truncates its
  // messages to the given prefix of the flattened recipient sequence
  // (sends in order, each audience ascending -- the synchronous
  // simulator's prefix-cut semantics).
  struct CrashSpec {
    std::uint64_t on_nth_action = 1;
    std::size_t deliver_prefix = 0;
    bool work_completes = false;
  };

  AsyncSim(std::vector<std::unique_ptr<IAsyncProcess>> procs, Options options,
           std::vector<std::optional<CrashSpec>> crash_specs = {});

  AsyncMetrics run();

 private:
  struct QueuedEvent {
    ATime time;
    std::uint64_t seq;  // FIFO tie-break for determinism
    int target;
    AsyncEvent event;
    bool operator>(const QueuedEvent& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  void schedule(ATime time, int target, AsyncEvent event);
  void retire(int proc, ATime now, bool crashed);

  std::vector<std::unique_ptr<IAsyncProcess>> procs_;
  Options opt_;
  std::vector<std::optional<CrashSpec>> crash_specs_;
  std::vector<std::uint64_t> action_count_;
  std::vector<bool> retired_;
  int alive_;
  Rng rng_;
  // Latency-normalized network model (see the Options::net comment); draws
  // come from rng_ so a noop/latency-only spec preserves the historical
  // event stream byte for byte.
  NetworkModel net_model_;
  std::uint64_t seq_ = 0;
  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, std::greater<>> queue_;
  AsyncMetrics metrics_;
};

}  // namespace dowork
