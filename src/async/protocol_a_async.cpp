#include "async/protocol_a_async.h"

namespace dowork {

AsyncProtocolAProcess::AsyncProtocolAProcess(const DoAllConfig& cfg, int self)
    : layout_(GroupLayout::for_sqrt(cfg.t)),
      part_(WorkPartition::for_protocol_a(cfg.n, cfg.t)),
      self_(self) {
  cfg.validate();
}

void AsyncProtocolAProcess::ingest(int from, const Payload* payload) {
  const int last_sub = part_.num_subchunks();
  if (const auto* p = dynamic_cast<const CkptPartial*>(payload)) {
    if (p->c == last_sub) completion_seen_ = true;
    last_ = LastCheckpoint{p->c, std::nullopt, from, Round{0}, false};
  } else if (const auto* f = dynamic_cast<const CkptFull*>(payload)) {
    if (f->c == last_sub && f->g == layout_.group_of(self_)) completion_seen_ = true;
    last_ = LastCheckpoint{f->c, f->g, from, Round{0}, false};
  }
}

bool AsyncProtocolAProcess::lower_processes_all_retired() const {
  for (int p = 0; p < self_; ++p)
    if (retired_known_.find(p) == retired_known_.end()) return false;
  return true;
}

AsyncAction AsyncProtocolAProcess::pop_plan() {
  AsyncAction a;
  if (plan_.empty()) {
    a.terminate = true;
    done_ = true;
    return a;
  }
  ActiveOp op = plan_.pop();
  if (op.work) {
    a.work = op.work;
  } else {
    a.sends.push_back(Outgoing{op.recipients, MsgKind::kCheckpoint, std::move(op.payload)});
  }
  if (plan_.empty()) {
    a.terminate = true;
    done_ = true;
  } else {
    a.timer = 1;  // pace one operation per step
  }
  return a;
}

AsyncAction AsyncProtocolAProcess::on_event(ATime, const AsyncEvent& event) {
  if (done_) return {};

  switch (event.kind) {
    case AsyncEvent::Kind::kMessage:
      if (!active_) {
        ingest(event.from, event.payload.get());
        if (completion_seen_) {
          AsyncAction a;
          a.terminate = true;
          done_ = true;
          return a;
        }
      }
      return {};
    case AsyncEvent::Kind::kRetireNotice:
      retired_known_.insert(event.retired_proc);
      break;
    case AsyncEvent::Kind::kStart:
      break;
    case AsyncEvent::Kind::kTimer:
      if (active_) return pop_plan();
      return {};
  }

  // kStart / kRetireNotice: maybe take over.
  if (!active_ && !completion_seen_ && lower_processes_all_retired()) {
    active_ = true;
    plan_ = ActivePlan(layout_, part_, self_, last_, nullptr);
    return pop_plan();
  }
  return {};
}

AsyncMetrics run_async_protocol_a(const DoAllConfig& cfg, AsyncSim::Options options,
                                  std::vector<std::optional<AsyncSim::CrashSpec>> crashes) {
  options.n_units = cfg.n;
  std::vector<std::unique_ptr<IAsyncProcess>> procs;
  for (int i = 0; i < cfg.t; ++i) procs.push_back(std::make_unique<AsyncProtocolAProcess>(cfg, i));
  AsyncSim sim(std::move(procs), options, std::move(crashes));
  return sim.run();
}

}  // namespace dowork
