#include "async/async_sim.h"

namespace dowork {

AsyncSim::AsyncSim(std::vector<std::unique_ptr<IAsyncProcess>> procs, Options options,
                   std::vector<std::optional<CrashSpec>> crash_specs)
    : procs_(std::move(procs)),
      opt_(options),
      crash_specs_(std::move(crash_specs)),
      rng_(options.seed),
      net_model_([&] {
        // Latency normalization: an unset latency component means the
        // historical [min_delay, max_delay] draw, so the model always owns
        // the delay and a default NetSpec reproduces the old event stream
        // exactly (same rng_, same uniform bounds, same draw order).
        NetSpec n = options.net;
        if (n.lat_max == 0) {
          n.lat_min = options.min_delay;
          n.lat_max = options.max_delay;
        }
        return n;
      }()) {
  const std::size_t t = procs_.size();
  crash_specs_.resize(t);
  action_count_.assign(t, 0);
  retired_.assign(t, false);
  alive_ = static_cast<int>(t);
  metrics_.unit_multiplicity.assign(static_cast<std::size_t>(opt_.n_units), 0);
}

void AsyncSim::schedule(ATime time, int target, AsyncEvent event) {
  queue_.push(QueuedEvent{time, seq_++, target, std::move(event)});
}

void AsyncSim::retire(int proc, ATime now, bool crashed) {
  if (retired_[static_cast<std::size_t>(proc)]) return;
  retired_[static_cast<std::size_t>(proc)] = true;
  --alive_;
  if (crashed) ++metrics_.crashes;
  // The failure detector eventually informs every live process, each after
  // its own (adversarial) latency.
  for (std::size_t p = 0; p < procs_.size(); ++p) {
    if (retired_[p]) continue;
    AsyncEvent e;
    e.kind = AsyncEvent::Kind::kRetireNotice;
    e.retired_proc = proc;
    schedule(now + rng_.uniform(1, opt_.fd_max_delay), static_cast<int>(p), std::move(e));
    ++metrics_.fd_notices;
  }
}

AsyncMetrics AsyncSim::run() {
  for (std::size_t p = 0; p < procs_.size(); ++p)
    schedule(0, static_cast<int>(p), AsyncEvent{});  // kStart

  std::uint64_t events = 0;
  while (!queue_.empty() && alive_ > 0) {
    if (++events > opt_.max_events) break;
    QueuedEvent qe = queue_.top();
    queue_.pop();
    const std::size_t p = static_cast<std::size_t>(qe.target);
    if (retired_[p]) continue;

    AsyncAction a = procs_[p]->on_event(qe.time, qe.event);

    std::optional<CrashSpec> crash;
    if (a.work || !a.sends.empty()) {
      // Non-trivial action (work or sends): count it against the crash spec.
      if (crash_specs_[p] && ++action_count_[p] >= crash_specs_[p]->on_nth_action &&
          alive_ > 1) {
        crash = crash_specs_[p];
        crash_specs_[p].reset();
      }
    }

    if (a.work && (!crash || crash->work_completes)) {
      ++metrics_.work_total;
      if (*a.work >= 1 && *a.work <= opt_.n_units)
        ++metrics_.unit_multiplicity[static_cast<std::size_t>(*a.work - 1)];
    }
    // deliver_prefix indexes the flattened message sequence (sends in
    // vector order, each audience in ascending id order), matching the
    // synchronous simulator's prefix-cut semantics; per-message delays are
    // drawn in that same order for live recipients only.
    std::size_t total = 0;
    for (const Outgoing& o : a.sends) total += o.to.size();
    const std::size_t deliver = crash ? std::min(crash->deliver_prefix, total) : total;
    std::size_t remaining = deliver;
    for (const Outgoing& o : a.sends) {
      if (remaining == 0) break;
      const std::size_t cut = std::min(o.to.size(), remaining);
      remaining -= cut;
      metrics_.messages_total += cut;
      o.to.for_each_prefix(cut, [&](int to) {
        if (to >= 0 && to < static_cast<int>(procs_.size()) &&
            !retired_[static_cast<std::size_t>(to)]) {
          // Network weather, in the model's fixed decision order: partition
          // (deterministic, no draw), then loss (one draw per surviving
          // link), then the per-link latency draw.  Absent components cost
          // zero draws, so the crash-only stream is untouched.
          if (net_model_.has_partitions() &&
              net_model_.severed(static_cast<int>(p), to, qe.time)) {
            ++metrics_.net_blocked;
            return;
          }
          if (net_model_.has_drop() && net_model_.drops(rng_)) {
            ++metrics_.net_dropped;
            return;
          }
          AsyncEvent e;
          e.kind = AsyncEvent::Kind::kMessage;
          e.from = static_cast<int>(p);
          e.msg_kind = o.kind;
          e.payload = o.payload;
          schedule(qe.time + net_model_.delay(rng_), to, std::move(e));
        }
      });
    }

    if (crash) {
      retire(static_cast<int>(p), qe.time, /*crashed=*/true);
    } else if (a.terminate) {
      retire(static_cast<int>(p), qe.time, /*crashed=*/false);
    } else if (a.timer) {
      AsyncEvent e;
      e.kind = AsyncEvent::Kind::kTimer;
      schedule(qe.time + *a.timer, static_cast<int>(p), std::move(e));
    }
    metrics_.end_time = qe.time;
  }
  metrics_.all_retired = alive_ == 0;
  return metrics_;
}

}  // namespace dowork
