// Adaptive adversaries: strategies that watch the execution and choose
// crashes online.
//
// Every bound in the paper is a worst case over an *adaptive* adversary, but
// a scripted FaultSpec can only replay a crash schedule someone already
// thought of.  This subsystem mechanizes the paper's lower-bound style of
// argument ("crash mid-broadcast so only a prefix escapes", "crash right
// after a unit is performed but before it is reported") as IAdversary
// strategies: at each of the simulator's crash-decision points
// (sim/fault_injector.h) the strategy sees the committed-state view
// (sim/observable.h) plus the stepping process's Action, and may spend one
// unit of its crash budget to kill that process mid-round.
//
// Determinism: a strategy is a deterministic state machine over the decision
// stream; anything stochastic draws from the seed it was constructed with
// (FaultSpec carries it, repetition r uses seed + r).  AdaptiveFaults is
// single-run like every FaultInjector — the harness builds a fresh one per
// run, so strategies never observe cross-run or cross-thread state and the
// `--jobs` byte-identity contract holds unchanged.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "sim/fault_injector.h"
#include "sim/observable.h"

namespace dowork::adversary {

// One adaptive crash strategy (see strategies.h for the concrete ones).
class IAdversary {
 public:
  virtual ~IAdversary() = default;

  // Decision point 2: a new round is about to step its processes.
  virtual void round_start(const Round& /*round*/, const SimObservable& /*sim*/) {}

  // Decision point 3: process `proc` is about to take `action`; return a
  // CrashPlan to kill it (work_completes and deliver_prefix chosen freely),
  // or nullopt to let it live.  `budget_left` > 0 is guaranteed; a returned
  // plan always spends exactly one crash.
  virtual std::optional<CrashPlan> decide(int proc, const Round& round, const Action& action,
                                          const SimObservable& sim, int budget_left) = 0;

  // Decision point 4: record `rec` from `from` is committing; return a
  // MessageFault to drop it (all surviving recipients) or hold it back
  // `delay` extra rounds, or nullopt to let the network carry it.  Only
  // consulted when the AdaptiveFaults wrapper has a message-fault budget;
  // `budget_left` > 0 is guaranteed and a returned fault spends one unit.
  // Network strategies (strategies.h, StrategyInfo::network) live here.
  virtual std::optional<MessageFault> on_message(int /*from*/, const Round& /*round*/,
                                                 const DeliveryRecord& /*rec*/,
                                                 const SimObservable& /*sim*/,
                                                 int /*budget_left*/) {
    return std::nullopt;
  }

  // The registry name this strategy was built under (diagnostics).
  virtual std::string name() const = 0;
};

// FaultInjector adapter: enforces the crash budget and wires a strategy to
// the simulator's decision points.  The simulator additionally never lets
// the last survivor die, exactly as for the scripted injectors.
class AdaptiveFaults final : public FaultInjector {
 public:
  // max_message_faults is the decision-point-4 budget ("jam=" in the
  // FaultSpec grammar); 0 keeps the injector crash-only and the simulator
  // never routes records through the hook.
  AdaptiveFaults(std::unique_ptr<IAdversary> strategy, int max_crashes,
                 int max_message_faults = 0);

  void attach(const SimObservable& sim) override { sim_ = &sim; }
  void on_round_start(const Round& round) override;
  std::optional<CrashPlan> inspect(int proc, const Round& round, const Action& action,
                                   const SimSnapshot& snap) override;
  bool wants_message_faults() const override { return max_message_faults_ > 0; }
  std::optional<MessageFault> on_message(int from, const Round& round,
                                         const DeliveryRecord& rec) override;

 private:
  std::unique_ptr<IAdversary> strategy_;
  int max_crashes_;
  int max_message_faults_;
  int message_faults_spent_ = 0;
  const SimObservable* sim_ = nullptr;
};

}  // namespace dowork::adversary
