#include "adversary/strategies.h"

#include <stdexcept>

#include "core/work.h"
#include "util/rng.h"

namespace dowork::adversary {

namespace {

// A deliberate announcement: any send the protocol chose to make (poll
// replies are reactive and free in the model, so killing a replier wastes
// budget on a crash that erases nothing).
bool announces(const Action& a) {
  for (const Outgoing& o : a.sends)
    if (o.kind != MsgKind::kPollReply) return true;
  return false;
}

// --- chain ------------------------------------------------------------------

class ChainChaser final : public IAdversary {
 public:
  void round_start(const Round&, const SimObservable&) override {
    // Concurrency is observed strictly before the first crash and the
    // parameters are locked at that crash: the sequential protocols can
    // never flip modes mid-cascade, so the per-decision behavior stays the
    // scripted cascade's.
    if (!locked_ && workers_last_round_ >= 2) concurrent_ = true;
    workers_last_round_ = 0;
  }

  std::optional<CrashPlan> decide(int proc, const Round&, const Action& action,
                                  const SimObservable& sim, int) override {
    if (!action.work) return std::nullopt;
    ++workers_last_round_;
    if (units_.size() <= static_cast<std::size_t>(proc))
      units_.resize(static_cast<std::size_t>(proc) + 1, 0);
    const std::uint64_t done = ++units_[static_cast<std::size_t>(proc)];
    const std::uint64_t threshold =
        concurrent_ ? 2
                    : static_cast<std::uint64_t>(
                          ceil_div(sim.num_units(), int_sqrt_ceil(sim.num_procs())) + 1);
    if (done < threshold) return std::nullopt;
    locked_ = true;
    return CrashPlan{/*work_completes=*/true,
                     /*deliver_prefix=*/concurrent_ ? std::size_t{0} : std::size_t{1}};
  }

  std::string name() const override { return "chain"; }

 private:
  std::vector<std::uint64_t> units_;  // committed units per process
  int workers_last_round_ = 0;
  bool concurrent_ = false;
  bool locked_ = false;
};

// --- greedy -----------------------------------------------------------------

class GreedyEffortMax final : public IAdversary {
 public:
  std::optional<CrashPlan> decide(int proc, const Round&, const Action& action,
                                  const SimObservable& sim, int) override {
    if (!announces(action)) return std::nullopt;
    const std::int64_t mine = sim.announced_progress(proc);
    if (mine <= 0) return std::nullopt;
    // Only kill a most-knowledgeable process: erasing its announcement
    // destroys knowledge nobody else can re-derive without redoing work.
    for (int p = 0; p < sim.num_procs(); ++p)
      if (p != proc && sim.is_active(p) && sim.announced_progress(p) > mine)
        return std::nullopt;
    return CrashPlan{/*work_completes=*/true, /*deliver_prefix=*/0};
  }

  std::string name() const override { return "greedy"; }
};

// --- splitter ---------------------------------------------------------------

class AgreementSplitter final : public IAdversary {
 public:
  void round_start(const Round&, const SimObservable&) override { crashed_this_round_ = false; }

  std::optional<CrashPlan> decide(int, const Round&, const Action& action, const SimObservable&,
                                  int) override {
    if (crashed_this_round_) return std::nullopt;  // one discovery per iteration
    bool agreement = false;
    for (const Outgoing& o : action.sends)
      if (o.kind == MsgKind::kAgreement) {
        agreement = true;
        break;
      }
    if (!agreement) return std::nullopt;
    crashed_this_round_ = true;
    // Half of the flattened recipient sequence: identical to halving the
    // per-recipient send list the pre-ledger Action carried.
    return CrashPlan{/*work_completes=*/true, /*deliver_prefix=*/action.total_recipients() / 2};
  }

  std::string name() const override { return "splitter"; }

 private:
  bool crashed_this_round_ = false;
};

// --- restart ----------------------------------------------------------------

class RandomRestart final : public IAdversary {
 public:
  explicit RandomRestart(std::uint64_t seed) : rng_(seed) {}

  std::optional<CrashPlan> decide(int, const Round&, const Action& action, const SimObservable&,
                                  int) override {
    // Announcement moments are where a crash can erase information, so the
    // search samples them an order of magnitude harder than work rounds.
    const double p = announces(action) ? 0.25 : 0.03;
    if (!rng_.chance(p)) return std::nullopt;
    CrashPlan plan;
    plan.work_completes = rng_.chance(0.5);
    plan.deliver_prefix = action.sends.empty()
                              ? 0
                              : static_cast<std::size_t>(rng_.uniform(0, action.total_recipients()));
    return plan;
  }

  std::string name() const override { return "restart"; }

 private:
  Rng rng_;
};

// --- jammer -----------------------------------------------------------------

class KnowledgeJammer final : public IAdversary {
 public:
  std::optional<CrashPlan> decide(int, const Round&, const Action&, const SimObservable&,
                                  int) override {
    return std::nullopt;  // pure network adversary: never spends a crash
  }

  std::optional<MessageFault> on_message(int from, const Round&, const DeliveryRecord& rec,
                                         const SimObservable& sim, int) override {
    // Poll replies are reactive: dropping one erases nothing the replier
    // would not repeat, so save the budget for deliberate announcements.
    if (rec.kind == MsgKind::kPollReply) return std::nullopt;
    const std::int64_t mine = sim.announced_progress(from);
    if (mine <= 0) return std::nullopt;
    // Same target test as `greedy`: only jam a most-knowledgeable sender,
    // where the lost announcement cannot be re-derived from anyone else.
    for (int p = 0; p < sim.num_procs(); ++p)
      if (p != from && sim.is_active(p) && sim.announced_progress(p) > mine)
        return std::nullopt;
    return MessageFault{/*drop=*/true, /*delay=*/0};
  }

  std::string name() const override { return "jammer"; }
};

// The one table every public function (and the tournament) derives from.
struct StrategyEntry {
  StrategyInfo info;
  std::unique_ptr<IAdversary> (*make)(std::uint64_t seed);
};

const std::vector<StrategyEntry>& registry() {
  static const std::vector<StrategyEntry> kRegistry = {
      {{"chain", false}, [](std::uint64_t) -> std::unique_ptr<IAdversary> {
         return std::make_unique<ChainChaser>();
       }},
      {{"greedy", false}, [](std::uint64_t) -> std::unique_ptr<IAdversary> {
         return std::make_unique<GreedyEffortMax>();
       }},
      {{"splitter", false}, [](std::uint64_t) -> std::unique_ptr<IAdversary> {
         return std::make_unique<AgreementSplitter>();
       }},
      {{"restart", true}, [](std::uint64_t seed) -> std::unique_ptr<IAdversary> {
         return std::make_unique<RandomRestart>(seed);
       }},
      {{"jammer", false, /*network=*/true}, [](std::uint64_t) -> std::unique_ptr<IAdversary> {
         return std::make_unique<KnowledgeJammer>();
       }},
  };
  return kRegistry;
}

}  // namespace

const std::vector<StrategyInfo>& all_strategies() {
  static const std::vector<StrategyInfo> kInfos = [] {
    std::vector<StrategyInfo> infos;
    for (const StrategyEntry& e : registry()) infos.push_back(e.info);
    return infos;
  }();
  return kInfos;
}

bool is_strategy(const std::string& name) {
  for (const StrategyEntry& e : registry())
    if (e.info.name == name) return true;
  return false;
}

std::unique_ptr<IAdversary> make_strategy(const std::string& name, std::uint64_t seed) {
  for (const StrategyEntry& e : registry())
    if (e.info.name == name) return e.make(seed);
  std::string known;
  for (const StrategyEntry& e : registry())
    known += (known.empty() ? "" : ", ") + e.info.name;
  throw std::invalid_argument("unknown adaptive strategy '" + name + "' (known: " + known + ")");
}

}  // namespace dowork::adversary
