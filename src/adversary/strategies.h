// The concrete adaptive strategies and their registry.
//
// Each strategy mechanizes one of the paper's adversarial arguments (see
// docs/ADVERSARIES.md for the taxonomy and the bound each one stresses):
//
//   chain     Takeover-chain chaser (Protocols A/B, also C's cascade): counts
//             committed units per process and crashes the worker one chunk
//             (ceil(n/sqrt(t)) + 1 units) in, broadcast truncated to one
//             recipient — and, when it observes concurrent workers (Protocol
//             D), tightens to two units with nothing escaping.  On the
//             sequential protocols this adaptively re-derives the scripted
//             worst-case chunk cascade decision for decision, so the
//             tournament's adaptive worst case can never fall below the
//             scripted one.
//   greedy    Greedy effort-maximizer: whenever the stepping process is
//             about to make a deliberate announcement (any non-poll-reply
//             send) and no other active process knows more than it does,
//             kill it with nothing escaping — the unit in progress completes
//             but is never reported (paper Section 2.1 / the Section 3
//             most-knowledgeable-takeover adversary), so successors redo it.
//   splitter  Agreement-splitter (Protocol D): crashes one agreement-phase
//             broadcaster per round mid-broadcast, half the views escaping,
//             so recipients disagree about S and T and every iteration
//             discovers at most one new failure — stretching the agreement
//             loop toward its (4f+2)t^2 message bound.  Never fires on
//             protocols without agreement traffic.
//   restart   Budgeted random-restart search: seeded random crash decisions
//             biased toward announcement moments (random prefix, coin-flip
//             unit completion).  The *search* is across repetitions — rep r
//             draws from seed + r and the tournament keeps the worst row.
//   jammer    Knowledge-jammer (network, decision point 4): spends its
//             message-fault budget dropping deliberate announcements from
//             the currently most-knowledgeable active process — the network
//             analogue of `greedy`, erasing the same irreplaceable knowledge
//             without spending a crash.  Runs with crashes=0; needs a jam
//             budget (FaultSpec "jam=") to do anything.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "adversary/adversary.h"

namespace dowork::adversary {

// One registry row.  The table below is the single source of truth: the
// name lookup, the factory, and the adversary_search tournament (which
// fields every registered strategy and gives the stochastic ones several
// seeded repetitions) all iterate it, so adding a strategy in one place
// adds it everywhere.
struct StrategyInfo {
  std::string name;
  // Draws from its seed: the tournament runs it with several repetitions
  // (rep r uses seed + r) and keeps the worst; deterministic strategies
  // get one.
  bool stochastic = false;
  // Operates at the message-fault decision point (needs a jam budget); the
  // crash-only tournament loop skips these and the network tournament runs
  // them.
  bool network = false;
};

// The registry, in presentation order.
const std::vector<StrategyInfo>& all_strategies();

// True iff `name` names a registered strategy (FaultSpec::parse validates
// adaptive specs with this without constructing anything).
bool is_strategy(const std::string& name);

// Fresh strategy instance; `seed` feeds the stochastic strategies (the
// deterministic ones ignore it).  Throws std::invalid_argument for unknown
// names, listing the registry.
std::unique_ptr<IAdversary> make_strategy(const std::string& name, std::uint64_t seed);

}  // namespace dowork::adversary
