#include "adversary/adversary.h"

#include <stdexcept>

namespace dowork::adversary {

AdaptiveFaults::AdaptiveFaults(std::unique_ptr<IAdversary> strategy, int max_crashes,
                               int max_message_faults)
    : strategy_(std::move(strategy)),
      max_crashes_(max_crashes),
      max_message_faults_(max_message_faults) {
  if (!strategy_) throw std::invalid_argument("AdaptiveFaults: null strategy");
}

void AdaptiveFaults::on_round_start(const Round& round) {
  if (sim_ != nullptr) strategy_->round_start(round, *sim_);
}

std::optional<CrashPlan> AdaptiveFaults::inspect(int proc, const Round& round,
                                                 const Action& action, const SimSnapshot& snap) {
  if (sim_ == nullptr)
    throw std::logic_error("AdaptiveFaults: inspect before attach (adaptive injectors only "
                           "run under the synchronous Simulator)");
  if (snap.crashed_so_far >= max_crashes_) return std::nullopt;
  if (action.idle()) return std::nullopt;
  return strategy_->decide(proc, round, action, *sim_, max_crashes_ - snap.crashed_so_far);
}

std::optional<MessageFault> AdaptiveFaults::on_message(int from, const Round& round,
                                                       const DeliveryRecord& rec) {
  if (sim_ == nullptr)
    throw std::logic_error("AdaptiveFaults: on_message before attach (adaptive injectors "
                           "only run under the synchronous Simulator)");
  if (message_faults_spent_ >= max_message_faults_) return std::nullopt;
  std::optional<MessageFault> fault =
      strategy_->on_message(from, round, rec, *sim_, max_message_faults_ - message_faults_spent_);
  if (fault) ++message_faults_spent_;
  return fault;
}

}  // namespace dowork::adversary
