// Random-but-valid scenario generation for the fuzzing campaign.
//
// Each case is drawn independently from the cross-product of protocol x
// shape x FaultSpec v2 (crash component x network component), constrained to
// the region where the paper's theorems -- and therefore the bound oracle --
// apply:
//
//   * shapes respect each protocol's validity envelope: t >= 2, n >= t for
//     the work protocols, n + t <= kCRoundBudget for C/C_batch (the 512-bit
//     deadline budget), n a multiple of t and the crash budget a minority
//     (f <= t/2 - 1) for D's case-1 bounds;
//   * crash budgets stay within t - 1 (the protocols assume at least one
//     survivor), so every crash-only case runs under assert_bounds = 1: any
//     execution above a bound is a genuine finding;
//   * network weather (latency / loss / partitions, A/B only -- the paper's
//     other protocols assume reliable delivery too rigidly to terminate
//     under arbitrary weather) and the jammer's message faults sit outside
//     the crash-only theorems, so those cases run under report_bounds = 1:
//     margins are recorded (and histogrammed by the campaign) but cannot
//     flip ok; completion and unit coverage are still enforced by the
//     verifier.  Partition windows always heal and loss stays light, so
//     every generated case is expected to complete.
//
// Generation is per-index deterministic: case k of seed S draws from
// Rng(mix(S, k)) only, so any subset of a campaign regenerates identically
// and the parallel runner's schedule cannot perturb the cases.  Every
// generated FaultSpec is additionally round-trip checked through
// parse(to_string()) -- the generator doubles as a grammar fuzzer.
#pragma once

#include <cstdint>
#include <vector>

#include "harness/scenario.h"

namespace dowork::fuzz {

struct GeneratorOptions {
  std::uint64_t seed = 42;
  // Scale every attached bound to max(1, bound * tighten_pct / 100).  100
  // asserts the paper bounds verbatim; smaller values plant deliberate
  // violations for shrinker/replay testing.
  int tighten_pct = 100;
};

// Deterministically attach the (possibly tightened) paper bounds for the
// scenario's protocol and crash budget, plus the assert_bounds /
// report_bounds flag per the policy above.  Replaces any bound params
// already present; shared by the generator and the shrinker so a mutated
// scenario is always re-judged against the bounds of its *new* shape.
void attach_fuzz_bounds(harness::Scenario& s, int tighten_pct);

// The crash budget a FaultSpec's crash component can spend (0 for none).
int crash_budget_of(const harness::FaultSpec& spec);

// Case `index` of the campaign with the given options.  Pure data: no
// injector_override, repetitions = 1, id "case<index>/<protocol>".
harness::Scenario generate_case(const GeneratorOptions& opts, int index);

// All cases [0, count).
std::vector<harness::Scenario> generate_cases(const GeneratorOptions& opts, int count);

}  // namespace dowork::fuzz
