// Campaign runner: thousands of generated cases through the parallel
// harness, under the bound oracle and the verifier's invariants, reduced to
// a deterministic JSON report.
//
// The pipeline: generate_cases() draws the cases (per-index independent
// streams), every case is wrapped in a decision recorder (fuzz/trace.h) and
// fanned out through the ParallelScenarioRunner -- results land in input
// slots, so the report is byte-identical at any --jobs value -- and every
// violating case is then greedily minimized (fuzz/shrink.h), serially and
// in case order.  Trace files (the original failing trace and the shrunk
// reproducer) are written only when trace_dir is set; their *names* appear
// in the JSON either way, so the report bytes never depend on where (or
// whether) artifacts landed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/shrink.h"
#include "fuzz/trace.h"
#include "harness/scenario.h"

namespace dowork::fuzz {

struct CampaignOptions {
  std::uint64_t seed = 42;
  int cases = 1000;
  int jobs = 0;  // <= 0: hardware concurrency
  // Bound tightening (generator.h); 100 asserts the paper bounds verbatim.
  int tighten_pct = 100;
  // When non-empty: write <trace_dir>/caseNNNNN.trace (the original failing
  // execution) and caseNNNNN.shrunk.trace (the minimal reproducer) for
  // every violation.  Created if missing.
  std::string trace_dir;
  // Run every sync case on BOTH backends -- the simulator and the live
  // thread substrate (src/substrate/differential.h) -- and fail the case on
  // any metric divergence, on top of the usual bound/invariant oracles
  // (which judge the simulator leg's metrics, exactly as in plain mode).
  // Differential cases cannot carry the decision recorder (one trace cannot
  // serve two legs), so on violation the simulator leg is re-run alone,
  // recorded: if it reproduces the failure the case shrinks normally; if it
  // comes back clean the failure is a genuine substrate divergence, which
  // is reported unshrunk (the shrinker's candidates replay single legs
  // only) with a trace of the clean simulator leg attached for inspection.
  bool differential = false;
  // With differential: the non-oracle leg is the socket-process substrate
  // (one worker OS process per protocol process, crashes as real SIGKILLs)
  // instead of the thread substrate.  Everything else -- oracles, shrink
  // policy, divergence reporting -- is identical; a socket-leg abort
  // (watchdog, worker death) surfaces as a divergence like any other
  // metric mismatch.  Ignored without differential.
  bool differential_socket = false;
  // > 1: run every sync case TWICE on the simulator -- once with
  // round-parallel evaluation (RunOptions::sim_threads = parallel_diff) and
  // once serial -- and fail the case if the two executions differ in any
  // recorded decision or outcome field (the serial leg is the oracle; the
  // round pool promises byte-identity, sim/round_pool.h).  Unlike
  // --differential both legs are recordable, so the comparison covers the
  // full decision traces, not just metrics.  A case whose threaded leg
  // fails an oracle that the serial leg also fails shrinks normally (the
  // bug is not parallelism); a genuine divergence is reported unshrunk (the
  // shrinker replays serial legs only) with the serial-leg trace attached.
  // Mutually exclusive with differential.
  int parallel_diff = 0;
  // Suppress the progress meter (stderr).
  bool quiet = false;
};

struct CampaignViolation {
  int index = 0;                   // case index within the campaign
  harness::ScenarioResult row;     // the original failing row
  Trace trace;                     // its decision trace
  ShrinkOutcome shrunk;            // the minimal reproducer
  std::string trace_file;          // "caseNNNNN.trace" (basename only)
  std::string shrunk_trace_file;   // "caseNNNNN.shrunk.trace"
};

struct CampaignResult {
  CampaignOptions options;
  std::vector<harness::ScenarioResult> rows;  // one per case, input order
  std::vector<CampaignViolation> violations;  // case order

  // Deterministic report: campaign metadata, ok/violation summary,
  // per-protocol bound-margin histograms (deciles of the percent-of-bound
  // columns, plus ">100" and "overflow" buckets), and every violation with
  // its shrunk reproducer.  No timestamps, no timing, no paths: --jobs 1
  // and --jobs 8 produce identical bytes.
  std::string to_json() const;

  // Human-facing summary (per-protocol table + violation reproducers).
  std::string summary_table() const;

  bool clean() const { return violations.empty(); }
};

CampaignResult run_campaign(const CampaignOptions& opts);

}  // namespace dowork::fuzz
