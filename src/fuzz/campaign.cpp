#include "fuzz/campaign.h"

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "fuzz/generator.h"
#include "harness/parallel_runner.h"
#include "harness/report.h"

namespace dowork::fuzz {

namespace {

constexpr std::array<const char*, 12> kBuckets = {
    "0-10",   "10-20",  "20-30", "30-40", "40-50",    "50-60",
    "60-70",  "70-80",  "80-90", "90-100", ">100",    "overflow"};

// Decile bucket of one bound_margin_* value ("percent of the bound
// consumed, rounded up" -- scenario.cpp), with ">100" and "overflow" tails.
std::size_t bucket_of(const std::string& margin) {
  if (margin == "overflow") return 11;
  const long pct = std::stol(margin);
  if (pct > 100) return 10;
  if (pct <= 0) return 0;
  return static_cast<std::size_t>((pct - 1) / 10);
}

struct ProtocolStats {
  int cases = 0;
  int ok = 0;
  // Histograms over the margin columns, one per measure.
  std::array<std::uint64_t, 12> work{};
  std::array<std::uint64_t, 12> msgs{};
  std::array<std::uint64_t, 12> rounds{};
};

std::string pad5(int index) {
  std::string s = std::to_string(index);
  while (s.size() < 5) s.insert(s.begin(), '0');
  return s;
}

void histogram_json(std::ostringstream& out, const char* name,
                    const std::array<std::uint64_t, 12>& counts) {
  out << "\"" << name << "\": {";
  for (std::size_t b = 0; b < kBuckets.size(); ++b) {
    if (b) out << ", ";
    out << "\"" << kBuckets[b] << "\": " << counts[b];
  }
  out << "}";
}

void write_file(const std::filesystem::path& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("fuzz: cannot write " + path.string());
  out << content;
}

}  // namespace

CampaignResult run_campaign(const CampaignOptions& opts) {
  CampaignResult result;
  result.options = opts;

  const GeneratorOptions gen{opts.seed, opts.tighten_pct};
  const std::vector<harness::Scenario> cases = generate_cases(gen, opts.cases);

  // One trace slot per case; worker threads write disjoint slots, the
  // wrapped scenarios are otherwise pure data.  Differential mode flips
  // every sync case to the two-backend substrate and skips the recorder
  // (campaign.h); the trace is recovered per-violation below.
  std::vector<Trace> traces(cases.size());
  std::vector<bool> flipped(cases.size(), false);
  // Parallel-diff bookkeeping: which cases run the threaded-vs-serial pair,
  // plus the serial (oracle) leg's traces.
  std::vector<bool> pd(cases.size(), false);
  std::vector<Trace> serial_traces(cases.size());
  std::vector<harness::Scenario> wrapped;
  wrapped.reserve(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    if (opts.differential && cases[i].substrate == harness::Substrate::kSync) {
      harness::Scenario d = cases[i];
      d.substrate = harness::Substrate::kDifferential;
      if (opts.differential_socket) d.params["socket"] = 1;
      wrapped.push_back(std::move(d));
      flipped[i] = true;
    } else {
      wrapped.push_back(with_recording(cases[i], &traces[i]));
      if (opts.parallel_diff > 1 && cases[i].substrate == harness::Substrate::kSync) {
        wrapped.back().sim_threads = opts.parallel_diff;
        pd[i] = true;
      }
    }
  }

  harness::ParallelScenarioRunner runner(opts.jobs);
  if (!opts.quiet) {
    runner.set_progress([](std::size_t done, std::size_t total) {
      if (done % 100 == 0 || done == total)
        std::fprintf(stderr, "\r[fuzz] %zu/%zu cases", done, total);
      if (done == total) std::fprintf(stderr, "\n");
    });
  }
  result.rows = runner.run("fuzz", wrapped);
  for (std::size_t i = 0; i < result.rows.size(); ++i)
    fill_outcome(result.rows[i], &traces[i]);

  if (opts.parallel_diff > 1) {
    // Second pass: the serial oracle legs, recorded.  Same fan-out/slot
    // discipline, so the report stays byte-identical at any --jobs.  The
    // comparison is whole-trace: identical decision streams AND identical
    // outcome rows, the strongest check the recorder supports.
    std::vector<harness::Scenario> oracle;
    std::vector<std::size_t> oracle_idx;
    for (std::size_t i = 0; i < cases.size(); ++i) {
      if (!pd[i]) continue;
      oracle.push_back(with_recording(cases[i], &serial_traces[i]));
      oracle_idx.push_back(i);
    }
    const std::vector<harness::ScenarioResult> oracle_rows = runner.run("fuzz", oracle);
    for (std::size_t k = 0; k < oracle_rows.size(); ++k) {
      const std::size_t i = oracle_idx[k];
      fill_outcome(oracle_rows[k], &serial_traces[i]);
      if (traces[i] == serial_traces[i]) continue;
      if (result.rows[i].ok) {
        const bool outcomes_match = traces[i].outcome == serial_traces[i].outcome;
        result.rows[i].ok = false;
        result.rows[i].violation =
            "parallel-diff divergence: sim_threads=" + std::to_string(opts.parallel_diff) +
            " leg differs from the serial leg (" +
            (outcomes_match ? "decision streams" : "outcome") + ")";
      }
    }
  }

  // Violations: shrink serially, in case order (the shrinker itself is
  // deterministic, so the whole report stays independent of --jobs).
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    if (result.rows[i].ok) continue;
    CampaignViolation v;
    v.index = static_cast<int>(i);
    v.row = result.rows[i];
    ShrinkOptions shrink_opts;
    shrink_opts.tighten_pct = opts.tighten_pct;
    if (flipped[i]) {
      // Recover a trace by re-running the simulator leg alone, recorded.
      // A reproduced failure is not substrate-specific (the oracles judge
      // the sim leg's metrics either way) and shrinks like any other; a
      // clean re-run means the two backends diverged, so the case is its
      // own minimal reproducer and the clean sim-leg trace rides along
      // for inspection (replaying it succeeds -- the divergence lives
      // between the backends, not inside either leg).
      RecordedRun sim = run_recorded(cases[i], "fuzz_diff");
      v.trace = sim.trace;
      if (!sim.row.ok) {
        v.shrunk = shrink(cases[i], shrink_opts);
      } else {
        v.shrunk.minimal = cases[i];
        v.shrunk.row = result.rows[i];
        v.shrunk.trace = sim.trace;
      }
    } else if (pd[i]) {
      // The serial oracle leg already ran, recorded.  A failure it
      // reproduces is not a parallelism bug and shrinks normally (the
      // shrinker's candidates replay serial legs); a clean serial leg means
      // the round pool diverged, so the case is its own minimal reproducer
      // and the clean serial trace rides along for inspection.
      v.trace = serial_traces[i];
      if (!serial_traces[i].outcome.ok) {
        v.shrunk = shrink(cases[i], shrink_opts);
      } else {
        v.shrunk.minimal = cases[i];
        v.shrunk.row = result.rows[i];
        v.shrunk.trace = serial_traces[i];
      }
    } else {
      v.trace = traces[i];
      v.shrunk = shrink(cases[i], shrink_opts);
    }
    v.trace_file = "case" + pad5(v.index) + ".trace";
    v.shrunk_trace_file = "case" + pad5(v.index) + ".shrunk.trace";
    result.violations.push_back(std::move(v));
  }

  if (!opts.trace_dir.empty() && !result.violations.empty()) {
    const std::filesystem::path dir(opts.trace_dir);
    std::filesystem::create_directories(dir);
    for (const CampaignViolation& v : result.violations) {
      write_file(dir / v.trace_file, v.trace.to_string());
      write_file(dir / v.shrunk_trace_file, v.shrunk.trace.to_string());
    }
  }
  return result;
}

std::string CampaignResult::to_json() const {
  using harness::json_escape;
  // Per-protocol reduction in sorted-name order (std::map), independent of
  // generation or completion order.
  std::map<std::string, ProtocolStats> stats;
  for (const harness::ScenarioResult& row : rows) {
    ProtocolStats& ps = stats[row.protocol];
    ++ps.cases;
    if (row.ok) ++ps.ok;
    for (const auto& [key, value] : row.extra) {
      if (key == "bound_margin_work") ps.work[bucket_of(value)]++;
      else if (key == "bound_margin_msgs") ps.msgs[bucket_of(value)]++;
      else if (key == "bound_margin_rounds") ps.rounds[bucket_of(value)]++;
    }
  }

  std::ostringstream out;
  out << "{\n";
  out << "  \"campaign\": {\"seed\": " << options.seed << ", \"cases\": " << options.cases
      << ", \"tighten_pct\": " << options.tighten_pct
      << (options.differential ? ", \"differential\": true" : "")
      << (options.differential && options.differential_socket
              ? ", \"differential_socket\": true"
              : "");
  if (options.parallel_diff > 1) out << ", \"parallel_diff\": " << options.parallel_diff;
  out << "},\n";
  out << "  \"summary\": {\"ok\": "
      << rows.size() - violations.size() << ", \"violations\": " << violations.size()
      << "},\n";
  out << "  \"per_protocol\": [\n";
  bool first = true;
  for (const auto& [protocol, ps] : stats) {
    if (!first) out << ",\n";
    first = false;
    out << "    {\"protocol\": \"" << json_escape(protocol) << "\", \"cases\": " << ps.cases
        << ", \"ok\": " << ps.ok << ", \"margins\": {";
    histogram_json(out, "work", ps.work);
    out << ", ";
    histogram_json(out, "msgs", ps.msgs);
    out << ", ";
    histogram_json(out, "rounds", ps.rounds);
    out << "}}";
  }
  out << "\n  ],\n";
  out << "  \"violations\": [\n";
  first = true;
  for (const CampaignViolation& v : violations) {
    if (!first) out << ",\n";
    first = false;
    const harness::ScenarioResult& m = v.shrunk.row;
    out << "    {\"case\": " << v.index << ", \"id\": \"" << json_escape(v.row.id)
        << "\", \"protocol\": \"" << json_escape(v.row.protocol) << "\", \"substrate\": \""
        << json_escape(v.row.substrate) << "\", \"faults\": \"" << json_escape(v.row.faults)
        << "\", \"n\": " << v.row.n << ", \"t\": " << v.row.t << ", \"seed\": " << v.row.seed
        << ", \"violation\": \"" << json_escape(v.row.violation) << "\",\n";
    out << "     \"shrunk\": {\"faults\": \"" << json_escape(m.faults) << "\", \"n\": " << m.n
        << ", \"t\": " << m.t << ", \"seed\": " << m.seed << ", \"violation\": \""
        << json_escape(m.violation) << "\", \"accepted\": " << v.shrunk.accepted
        << ", \"attempts\": " << v.shrunk.attempts << "},\n";
    out << "     \"trace\": \"" << json_escape(v.trace_file) << "\", \"shrunk_trace\": \""
        << json_escape(v.shrunk_trace_file) << "\"}";
  }
  out << "\n  ]\n";
  out << "}\n";
  return out.str();
}

std::string CampaignResult::summary_table() const {
  std::map<std::string, ProtocolStats> stats;
  for (const harness::ScenarioResult& row : rows) {
    ProtocolStats& ps = stats[row.protocol];
    ++ps.cases;
    if (row.ok) ++ps.ok;
  }
  std::ostringstream out;
  out << "fuzz campaign: seed " << options.seed << ", " << options.cases << " cases";
  if (options.tighten_pct != 100) out << ", bounds tightened to " << options.tighten_pct << "%";
  if (options.differential)
    out << ", differential (sim vs "
        << (options.differential_socket ? "socket" : "live") << " substrate)";
  if (options.parallel_diff > 1)
    out << ", parallel-diff (sim_threads=" << options.parallel_diff << " vs serial)";
  out << "\n";
  for (const auto& [protocol, ps] : stats)
    out << "  " << protocol << ": " << ps.ok << "/" << ps.cases << " ok\n";
  if (violations.empty()) {
    out << "no violations\n";
    return out.str();
  }
  out << violations.size() << " violation(s):\n";
  for (const CampaignViolation& v : violations) {
    const harness::ScenarioResult& m = v.shrunk.row;
    out << "  " << v.row.id << ": " << v.row.violation << "\n";
    out << "    minimal reproducer: protocol=" << m.protocol << " n=" << m.n << " t=" << m.t
        << " seed=" << m.seed << " faults=" << m.faults << "\n";
    out << "    minimal violation:  " << m.violation << "\n";
    out << "    trace: " << v.shrunk_trace_file
        << (options.trace_dir.empty() ? " (pass --trace-dir to write)" : "") << "\n";
  }
  return out.str();
}

}  // namespace dowork::fuzz
