#include "fuzz/trace.h"

#include <sstream>
#include <stdexcept>

#include "harness/fault_spec.h"

namespace dowork::fuzz {

namespace {

harness::Substrate substrate_from(const std::string& name) {
  if (name == "sync") return harness::Substrate::kSync;
  if (name == "async") return harness::Substrate::kAsync;
  throw std::invalid_argument("trace: unsupported substrate '" + name + "'");
}

[[noreturn]] void bad_line(const std::string& line) {
  throw std::invalid_argument("trace: malformed line '" + line + "'");
}

std::uint64_t parse_u64(const std::string& tok, const std::string& line) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(tok, &used);
    if (used != tok.size()) bad_line(line);
    return v;
  } catch (const std::invalid_argument&) {
    bad_line(line);
  } catch (const std::out_of_range&) {
    bad_line(line);
  }
}

bool parse_bool(const std::string& tok, const std::string& line) {
  if (tok == "0") return false;
  if (tok == "1") return true;
  bad_line(line);
}

}  // namespace

std::string Trace::to_string() const {
  std::ostringstream out;
  out << "dowork-trace v1\n";
  out << "id " << id << "\n";
  out << "substrate " << substrate << "\n";
  out << "protocol " << protocol << "\n";
  out << "n " << n << "\n";
  out << "t " << t << "\n";
  out << "seed " << seed << "\n";
  out << "faults " << faults << "\n";
  for (const auto& [key, value] : params) out << "param " << key << " " << value << "\n";
  out << "wants_msg_faults " << (wants_message_faults ? 1 : 0) << "\n";
  for (const TraceCrash& c : crashes)
    out << "crash " << c.inspect_idx << " " << c.proc << " " << (c.work_completes ? 1 : 0)
        << " " << c.deliver_prefix << "\n";
  for (const TraceMessageFault& f : message_faults)
    out << "msgfault " << f.msg_idx << " " << (f.drop ? 1 : 0) << " " << f.delay << "\n";
  out << "result ok " << (outcome.ok ? 1 : 0) << "\n";
  out << "result work " << outcome.work << "\n";
  out << "result msgs " << outcome.messages << "\n";
  out << "result effort " << outcome.effort << "\n";
  out << "result crashes " << outcome.crashes << "\n";
  out << "result rounds " << outcome.rounds << "\n";
  // The violation text may contain spaces; it is always the last line's
  // tail, and the line is omitted when empty.
  if (!outcome.violation.empty()) out << "result violation " << outcome.violation << "\n";
  out << "end\n";
  return out.str();
}

Trace Trace::parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "dowork-trace v1")
    throw std::invalid_argument("trace: missing 'dowork-trace v1' header");
  Trace tr;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    auto next = [&]() -> std::string {
      std::string tok;
      if (!(ls >> tok)) bad_line(line);
      return tok;
    };
    auto tail = [&]() -> std::string {
      std::string rest;
      std::getline(ls, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      return rest;
    };
    if (tag == "id") {
      tr.id = next();
    } else if (tag == "substrate") {
      tr.substrate = next();
    } else if (tag == "protocol") {
      tr.protocol = next();
    } else if (tag == "n") {
      tr.n = static_cast<std::int64_t>(parse_u64(next(), line));
    } else if (tag == "t") {
      tr.t = static_cast<int>(parse_u64(next(), line));
    } else if (tag == "seed") {
      tr.seed = parse_u64(next(), line);
    } else if (tag == "faults") {
      tr.faults = next();
    } else if (tag == "param") {
      const std::string key = next();
      const std::string value = next();
      // Params are int64 but always non-negative in practice; reuse the u64
      // parser and narrow.
      tr.params[key] = static_cast<std::int64_t>(parse_u64(value, line));
    } else if (tag == "wants_msg_faults") {
      tr.wants_message_faults = parse_bool(next(), line);
    } else if (tag == "crash") {
      TraceCrash c;
      c.inspect_idx = parse_u64(next(), line);
      c.proc = static_cast<int>(parse_u64(next(), line));
      c.work_completes = parse_bool(next(), line);
      c.deliver_prefix = static_cast<std::size_t>(parse_u64(next(), line));
      tr.crashes.push_back(c);
    } else if (tag == "msgfault") {
      TraceMessageFault f;
      f.msg_idx = parse_u64(next(), line);
      f.drop = parse_bool(next(), line);
      f.delay = parse_u64(next(), line);
      tr.message_faults.push_back(f);
    } else if (tag == "result") {
      const std::string field = next();
      if (field == "ok") {
        tr.outcome.ok = parse_bool(next(), line);
      } else if (field == "work") {
        tr.outcome.work = parse_u64(next(), line);
      } else if (field == "msgs") {
        tr.outcome.messages = parse_u64(next(), line);
      } else if (field == "effort") {
        tr.outcome.effort = parse_u64(next(), line);
      } else if (field == "crashes") {
        tr.outcome.crashes = parse_u64(next(), line);
      } else if (field == "rounds") {
        tr.outcome.rounds = next();
      } else if (field == "violation") {
        tr.outcome.violation = tail();
      } else {
        bad_line(line);
      }
    } else {
      bad_line(line);
    }
  }
  if (!saw_end) throw std::invalid_argument("trace: missing 'end' terminator");
  // The faults string must round-trip the spec grammar; parse it eagerly so
  // a corrupted trace fails at load time, not replay time.
  (void)harness::FaultSpec::parse(tr.faults);
  return tr;
}

harness::Scenario Trace::to_scenario(bool frozen) const {
  harness::Scenario s;
  s.id = id;
  s.group = id;
  s.substrate = substrate_from(substrate);
  s.protocol = protocol;
  s.cfg = DoAllConfig{n, t};
  s.faults = harness::FaultSpec::parse(faults);
  s.seed = seed;
  s.repetitions = 1;
  s.params = params;
  if (frozen && s.substrate == harness::Substrate::kSync) {
    // Copy the trace by value into the closure: the scenario stays
    // self-contained after the Trace goes away.
    const Trace self = *this;
    s.injector_override = [self](std::uint64_t) {
      return std::make_unique<ReplayFaults>(self);
    };
  }
  return s;
}

// --- RecordingFaults --------------------------------------------------------

RecordingFaults::RecordingFaults(std::unique_ptr<FaultInjector> inner, Trace* out)
    : inner_(std::move(inner)), out_(out) {
  out_->wants_message_faults = inner_->wants_message_faults();
  out_->crashes.clear();
  out_->message_faults.clear();
}

void RecordingFaults::attach(const SimObservable& sim) { inner_->attach(sim); }

void RecordingFaults::on_round_start(const Round& round) { inner_->on_round_start(round); }

std::optional<CrashPlan> RecordingFaults::inspect(int proc, const Round& round,
                                                  const Action& action,
                                                  const SimSnapshot& snap) {
  const std::uint64_t idx = inspect_calls_++;
  std::optional<CrashPlan> plan = inner_->inspect(proc, round, action, snap);
  if (plan)
    out_->crashes.push_back(TraceCrash{idx, proc, plan->work_completes, plan->deliver_prefix});
  return plan;
}

std::optional<MessageFault> RecordingFaults::on_message(int from, const Round& round,
                                                        const DeliveryRecord& rec) {
  const std::uint64_t idx = msg_calls_++;
  std::optional<MessageFault> fault = inner_->on_message(from, round, rec);
  if (fault) out_->message_faults.push_back(TraceMessageFault{idx, fault->drop, fault->delay});
  return fault;
}

bool RecordingFaults::wants_message_faults() const { return inner_->wants_message_faults(); }

// --- ReplayFaults -----------------------------------------------------------

ReplayFaults::ReplayFaults(const Trace& trace)
    : crashes_(trace.crashes),
      message_faults_(trace.message_faults),
      wants_message_faults_(trace.wants_message_faults) {}

std::optional<CrashPlan> ReplayFaults::inspect(int proc, const Round&, const Action&,
                                               const SimSnapshot&) {
  const std::uint64_t idx = inspect_calls_++;
  if (next_crash_ >= crashes_.size()) return std::nullopt;
  const TraceCrash& c = crashes_[next_crash_];
  if (c.inspect_idx != idx) return std::nullopt;
  ++next_crash_;
  if (c.proc != proc)
    throw std::runtime_error("trace divergence: recorded crash of process " +
                             std::to_string(c.proc) + " at inspect call " +
                             std::to_string(idx) + " but process " + std::to_string(proc) +
                             " is stepping");
  return CrashPlan{c.work_completes, c.deliver_prefix};
}

std::optional<MessageFault> ReplayFaults::on_message(int, const Round&,
                                                     const DeliveryRecord&) {
  const std::uint64_t idx = msg_calls_++;
  if (next_msg_fault_ >= message_faults_.size()) return std::nullopt;
  const TraceMessageFault& f = message_faults_[next_msg_fault_];
  if (f.msg_idx != idx) return std::nullopt;
  ++next_msg_fault_;
  MessageFault out;
  out.drop = f.drop;
  out.delay = f.delay;
  return out;
}

// --- record / replay entry points -------------------------------------------

harness::Scenario with_recording(const harness::Scenario& s, Trace* out) {
  out->id = s.id;
  out->substrate = harness::to_string(s.substrate);
  out->protocol = s.protocol;
  out->n = s.cfg.n;
  out->t = s.cfg.t;
  out->seed = s.seed;
  out->faults = s.faults.to_string();
  out->params = s.params;
  out->wants_message_faults = false;
  out->crashes.clear();
  out->message_faults.clear();
  harness::Scenario wrapped = s;
  const harness::FaultSpec spec = s.faults;
  wrapped.injector_override = [spec, out](std::uint64_t rep) {
    return std::make_unique<RecordingFaults>(spec.make(rep), out);
  };
  return wrapped;
}

void fill_outcome(const harness::ScenarioResult& row, Trace* out) {
  out->outcome = outcome_of(row);
}

TraceOutcome outcome_of(const harness::ScenarioResult& row) {
  TraceOutcome o;
  o.ok = row.ok;
  o.work = row.work;
  o.messages = row.messages;
  o.effort = row.effort;
  o.crashes = row.crashes;
  o.rounds = row.rounds;
  o.violation = row.violation;
  return o;
}

RecordedRun run_recorded(const harness::Scenario& s, const std::string& experiment) {
  if (s.repetitions != 1)
    throw std::invalid_argument("run_recorded: traces cover exactly one repetition");
  RecordedRun out;
  const harness::Scenario wrapped = with_recording(s, &out.trace);
  out.row = harness::run_scenario(experiment, wrapped).at(0);
  fill_outcome(out.row, &out.trace);
  return out;
}

harness::ScenarioResult replay(const Trace& trace, bool frozen) {
  const harness::Scenario s = trace.to_scenario(frozen);
  return harness::run_scenario("fuzz_replay", s).at(0);
}

}  // namespace dowork::fuzz
