#include "fuzz/shrink.h"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <vector>

#include "fuzz/generator.h"
#include "harness/bounds.h"

namespace dowork::fuzz {

namespace {

using harness::FaultSpec;
using harness::Scenario;
using harness::Substrate;

// Apply `f` to the crash component's budget knob, whatever the kind.
void map_budget(FaultSpec& spec, const std::function<int(int)>& f) {
  if (auto* c = std::get_if<harness::CascadeSpec>(&spec.crash)) {
    c->max_crashes = f(c->max_crashes);
  } else if (auto* o = std::get_if<harness::OnUnitSpec>(&spec.crash)) {
    o->max_crashes = f(o->max_crashes);
  } else if (auto* r = std::get_if<harness::RandomSpec>(&spec.crash)) {
    r->max_crashes = f(r->max_crashes);
  } else if (auto* s = std::get_if<harness::ScheduledSpec>(&spec.crash)) {
    const int keep = std::max(0, f(static_cast<int>(s->entries.size())));
    if (static_cast<std::size_t>(keep) < s->entries.size())
      s->entries.resize(static_cast<std::size_t>(keep));
  } else if (auto* a = std::get_if<harness::AdaptiveSpec>(&spec.crash)) {
    a->max_crashes = f(a->max_crashes);
  }
}

int net_components(const NetSpec& net) {
  return (net.lat_max > 0 ? 1 : 0) + (net.drop > 0.0 ? 1 : 0) +
         static_cast<int>(net.partitions.size());
}

// Scalar size metric the greedy loop strictly decreases: shape, crash
// budget, schedule length, network clauses, jam budget.
std::int64_t size_of(const Scenario& s) {
  std::int64_t sz = s.cfg.t + s.cfg.n;
  sz += crash_budget_of(s.faults);
  if (const auto* sch = std::get_if<harness::ScheduledSpec>(&s.faults.crash))
    sz += static_cast<std::int64_t>(sch->entries.size());
  if (const auto* a = std::get_if<harness::AdaptiveSpec>(&s.faults.crash))
    sz += a->max_message_faults;
  sz += net_components(s.faults.net);
  if (s.substrate == Substrate::kAsync) sz += s.param_or("crashes", s.cfg.t - 1);
  return sz;
}

// Clamp the mutated scenario back into its protocol's validity envelope and
// re-attach the (tightened) bound oracle for the new shape.
void normalize(Scenario& s, int tighten_pct) {
  int& t = s.cfg.t;
  std::int64_t& n = s.cfg.n;
  t = std::max(2, t);
  if (s.protocol == "D") {
    n = std::max<std::int64_t>(t, (n / t) * t);  // keep t | n
  } else if (s.protocol == "C" || s.protocol == "C_batch") {
    n = std::min<std::int64_t>(std::max<std::int64_t>(1, n), harness::kCRoundBudget - t);
  } else {
    n = std::max<std::int64_t>(t, n);
  }
  const int cap =
      s.protocol == "D" ? std::max(0, t / 2 - 1) : t - 1;
  map_budget(s.faults, [&](int b) { return std::clamp(b, 0, cap); });
  if (auto* o = std::get_if<harness::OnUnitSpec>(&s.faults.crash))
    o->unit = std::clamp<std::int64_t>(o->unit, 1, n);
  if (auto* sch = std::get_if<harness::ScheduledSpec>(&s.faults.crash)) {
    std::erase_if(sch->entries,
                  [&](const ScheduledFaults::Entry& e) { return e.proc < 0 || e.proc >= t; });
  }
  std::erase_if(s.faults.net.partitions,
                [](const PartitionWindow& w) { return w.until <= w.from; });
  for (PartitionWindow& w : s.faults.net.partitions)
    w.split = std::clamp(w.split, 1, std::max(1, t - 1));
  if (s.substrate == Substrate::kAsync) {
    if (auto it = s.params.find("crashes"); it != s.params.end())
      it->second = std::clamp<std::int64_t>(it->second, 0, t - 1);
    if (auto it = s.params.find("crash_after"); it != s.params.end())
      it->second = std::max<std::int64_t>(1, it->second);
  }
  attach_fuzz_bounds(s, tighten_pct);
}

// The fixed candidate list, re-derived from the current scenario each
// round.  Every candidate either shrinks the shape, the adversary, or the
// weather; inapplicable ones return the scenario unchanged and are filtered
// by the strict size check.
std::vector<Scenario> candidates(const Scenario& cur) {
  std::vector<Scenario> out;
  auto push = [&](const std::function<void(Scenario&)>& mutate) {
    Scenario s = cur;
    mutate(s);
    out.push_back(std::move(s));
  };
  push([](Scenario& s) { s.cfg.t /= 2; });
  push([](Scenario& s) { s.cfg.t -= 1; });
  push([](Scenario& s) { s.cfg.n /= 2; });
  push([](Scenario& s) { s.cfg.n -= s.protocol == "D" ? s.cfg.t : 1; });
  push([](Scenario& s) { map_budget(s.faults, [](int b) { return b / 2; }); });
  push([](Scenario& s) { map_budget(s.faults, [](int b) { return b - 1; }); });
  push([](Scenario& s) {
    if (auto* sch = std::get_if<harness::ScheduledSpec>(&s.faults.crash))
      if (!sch->entries.empty()) sch->entries.pop_back();
  });
  push([](Scenario& s) {
    if (auto* a = std::get_if<harness::AdaptiveSpec>(&s.faults.crash))
      a->max_message_faults /= 2;
  });
  push([](Scenario& s) { s.faults.net.partitions.clear(); });
  push([](Scenario& s) { s.faults.net.drop = 0.0; });
  push([](Scenario& s) { s.faults.net.lat_min = s.faults.net.lat_max = 0; });
  push([](Scenario& s) { s.faults.crash = std::monostate{}; });
  push([](Scenario& s) {
    if (auto it = s.params.find("crashes"); it != s.params.end()) it->second /= 2;
  });
  return out;
}

}  // namespace

bool is_bound_violation(const std::string& violation) {
  return violation.find(" exceeds ") != std::string::npos;
}

ShrinkOutcome shrink(const Scenario& failing, const ShrinkOptions& opts) {
  ShrinkOutcome out;
  out.minimal = failing;
  {
    RecordedRun rr = run_recorded(out.minimal, "fuzz_shrink");
    ++out.attempts;
    if (rr.row.ok)
      throw std::invalid_argument("shrink: scenario '" + failing.id + "' does not fail");
    out.row = std::move(rr.row);
    out.trace = std::move(rr.trace);
  }
  const bool want_bound = is_bound_violation(out.row.violation);

  bool progress = true;
  while (progress && out.attempts < opts.max_attempts) {
    progress = false;
    for (Scenario cand : candidates(out.minimal)) {
      normalize(cand, opts.tighten_pct);
      if (size_of(cand) >= size_of(out.minimal)) continue;
      if (out.attempts >= opts.max_attempts) break;
      RecordedRun rr = run_recorded(cand, "fuzz_shrink");
      ++out.attempts;
      if (rr.row.ok || is_bound_violation(rr.row.violation) != want_bound) continue;
      out.minimal = std::move(cand);
      out.row = std::move(rr.row);
      out.trace = std::move(rr.trace);
      ++out.accepted;
      progress = true;
      break;  // restart the candidate list from the top
    }
  }
  return out;
}

}  // namespace dowork::fuzz
