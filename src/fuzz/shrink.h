// Greedy minimization of a violating scenario.
//
// Given a failing case, the shrinker walks a fixed candidate-mutation list
// -- halve/decrement t, halve/decrement n, halve/decrement the crash
// budget, drop scheduled-kill entries, strip network clauses (latency,
// loss, partitions), drop the crash component entirely -- re-normalizing
// the scenario to validity after each step (budgets clamped below t, D's
// shape kept divisible with a minority budget, C's shape inside the 512-bit
// deadline budget, partition splits inside [1, t-1]) and re-attaching the
// bound oracle for the *new* shape.  A mutation is accepted only when the
// mutated case still fails with the same violation category (bound breach
// vs invariant/completion) AND is strictly smaller under a scalar size
// metric, so the loop terminates; on acceptance the mutation list restarts
// from the top.  The result is a locally-minimal reproducer: no single
// candidate mutation preserves the failure.
//
// Every candidate execution is recorded (fuzz/trace.h), so the outcome
// carries the minimal case's decision trace: `dowork_fuzz --replay` on the
// emitted file reproduces the minimal violation bit-identically.
#pragma once

#include <string>

#include "fuzz/trace.h"
#include "harness/scenario.h"

namespace dowork::fuzz {

struct ShrinkOptions {
  // The tightening under which the violation was found; re-applied after
  // every mutation so the oracle matches the campaign's.
  int tighten_pct = 100;
  // Execution budget: the greedy loop stops early after this many candidate
  // runs (each candidate is one full simulated execution).
  int max_attempts = 400;
};

struct ShrinkOutcome {
  harness::Scenario minimal;      // locally-minimal still-failing scenario
  harness::ScenarioResult row;    // its (recorded) result row
  Trace trace;                    // its decision trace, outcome filled
  int accepted = 0;               // mutations that survived re-checking
  int attempts = 0;               // candidate executions performed
};

// True when the violation text is a bound breach (scenario.cpp's
// assert_bounds grammar: "<measure> <amount> exceeds <key>=<bound>");
// anything else -- verifier invariants, incompletion, exceptions -- is the
// invariant category.
bool is_bound_violation(const std::string& violation);

// Minimize `failing` (which must currently fail; throws
// std::invalid_argument otherwise).
ShrinkOutcome shrink(const harness::Scenario& failing, const ShrinkOptions& opts = {});

}  // namespace dowork::fuzz
