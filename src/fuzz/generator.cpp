#include "fuzz/generator.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/work.h"
#include "harness/bounds.h"
#include "util/rng.h"

namespace dowork::fuzz {

namespace {

using harness::FaultSpec;
using harness::Scenario;
using harness::Substrate;

// Golden-ratio index mixing: case k draws from its own stream, independent
// of every other case, so any sub-range of a campaign regenerates
// identically.
std::uint64_t mix(std::uint64_t seed, int index) {
  return seed + 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(index + 1);
}

int pick(Rng& rng, int lo, int hi) {
  return static_cast<int>(rng.uniform(static_cast<std::uint64_t>(lo),
                                      static_cast<std::uint64_t>(hi)));
}

std::string pad5(int index) {
  std::string s = std::to_string(index);
  while (s.size() < 5) s.insert(s.begin(), '0');
  return s;
}

// The protocol whose bound set applies (the async substrate runs Protocol A
// under a failure detector; its work/message bounds are Protocol A's).
std::string bounds_protocol(const Scenario& s) {
  return s.substrate == Substrate::kAsync ? "A" : s.protocol;
}

bool has_message_fault_budget(const FaultSpec& spec) {
  if (const auto* a = std::get_if<harness::AdaptiveSpec>(&spec.crash))
    return a->max_message_faults > 0;
  return false;
}

// A broadcast-truncation prefix: nothing, everything, or a partial cut.
std::size_t pick_prefix(Rng& rng, int t) {
  switch (pick(rng, 0, 2)) {
    case 0: return 0;
    case 1: return static_cast<std::size_t>(-1);  // "all"
    default: return static_cast<std::size_t>(pick(rng, 0, t));
  }
}

FaultSpec pick_crash_spec(Rng& rng, const std::string& proto, std::int64_t n, int t,
                          int budget_cap) {
  const int roll = pick(rng, 0, 99);
  if (roll < 12 || budget_cap < 1) return FaultSpec::none();
  const int budget = pick(rng, 1, budget_cap);
  if (roll < 40) {
    const int units_hi = static_cast<int>(std::max<std::int64_t>(1, n / t)) + 2;
    return FaultSpec::cascade(static_cast<std::uint64_t>(pick(rng, 1, units_hi)), budget,
                              pick_prefix(rng, t), rng.chance(0.5));
  }
  if (roll < 55)
    return FaultSpec::on_unit(pick(rng, 1, static_cast<int>(std::min<std::int64_t>(n, 1000))),
                              budget, pick_prefix(rng, t));
  if (roll < 70)
    return FaultSpec::random(static_cast<double>(pick(rng, 1, 25)) / 100.0, budget,
                             rng.uniform(1, 1u << 20));
  if (roll < 82) {
    std::vector<ScheduledFaults::Entry> entries;
    const int count = pick(rng, 1, std::min(budget, 4));
    for (int i = 0; i < count; ++i) {
      ScheduledFaults::Entry e;
      e.proc = pick(rng, 0, t - 1);
      e.on_nth_action = static_cast<std::uint64_t>(pick(rng, 1, 6));
      e.plan.work_completes = rng.chance(0.5);
      e.plan.deliver_prefix = pick_prefix(rng, t);
      entries.push_back(e);
    }
    return FaultSpec::scheduled(std::move(entries));
  }
  // Adaptive strategies; the jammer (network adversary) is drawn separately
  // since it spends message faults, not crashes.
  static const char* kStrategies[] = {"chain", "greedy", "splitter", "restart"};
  const char* strategy = kStrategies[pick(rng, 0, 3)];
  // The splitter needs partition visibility but works on any protocol; all
  // four respect the crash budget by construction (adversary/adversary.h).
  (void)proto;
  return FaultSpec::adaptive(strategy, budget, rng.uniform(1, 1u << 20));
}

NetSpec pick_weather(Rng& rng, int t) {
  NetSpec net;
  if (rng.chance(0.5)) {
    net.lat_min = 1;
    net.lat_max = static_cast<std::uint64_t>(pick(rng, 2, 6));
  }
  if (rng.chance(0.4)) net.drop = static_cast<double>(pick(rng, 1, 6)) / 100.0;
  if (rng.chance(0.35)) {
    const int windows = pick(rng, 1, 2);
    std::uint64_t from = static_cast<std::uint64_t>(pick(rng, 0, 30));
    for (int w = 0; w < windows; ++w) {
      PartitionWindow win;
      win.from = from;
      win.until = from + static_cast<std::uint64_t>(pick(rng, 4, 30));
      win.split = t < 2 ? 1 : pick(rng, 1, t - 1);
      net.partitions.push_back(win);
      from = win.until + static_cast<std::uint64_t>(pick(rng, 2, 20));
    }
  }
  // At least one component must be active -- the grammar rejects an
  // effect-free net part.
  if (net.is_noop()) {
    net.lat_min = 1;
    net.lat_max = static_cast<std::uint64_t>(pick(rng, 2, 6));
  }
  net.seed = rng.uniform(1, 100000);
  return net;
}

}  // namespace

int crash_budget_of(const FaultSpec& spec) {
  switch (spec.kind()) {
    case FaultSpec::Kind::kNone: return 0;
    case FaultSpec::Kind::kCascade:
      return std::get<harness::CascadeSpec>(spec.crash).max_crashes;
    case FaultSpec::Kind::kOnUnit:
      return std::get<harness::OnUnitSpec>(spec.crash).max_crashes;
    case FaultSpec::Kind::kRandom:
      return std::get<harness::RandomSpec>(spec.crash).max_crashes;
    case FaultSpec::Kind::kScheduled:
      return static_cast<int>(std::get<harness::ScheduledSpec>(spec.crash).entries.size());
    case FaultSpec::Kind::kAdaptive:
      return std::get<harness::AdaptiveSpec>(spec.crash).max_crashes;
  }
  return 0;
}

void attach_fuzz_bounds(Scenario& s, int tighten_pct) {
  for (auto it = s.params.begin(); it != s.params.end();) {
    if (it->first.rfind("bound_", 0) == 0 || it->first == "assert_bounds" ||
        it->first == "report_bounds") {
      it = s.params.erase(it);
    } else {
      ++it;
    }
  }
  const int t = s.cfg.t;
  int budget = crash_budget_of(s.faults);
  if (s.substrate == Substrate::kAsync)
    budget = static_cast<int>(s.param_or("crashes", s.cfg.t - 1));
  if (s.protocol == "D") budget = std::min(budget, std::max(0, t / 2 - 1));
  const bool async = s.substrate == Substrate::kAsync;
  for (const auto& [key, bound] : harness::paper_bounds(bounds_protocol(s), s.cfg.n, t, budget)) {
    // The async substrate keeps Protocol A's work/message bounds but its
    // completion time follows the delay distribution, not the synchronous
    // round bound.
    if (async && key.rfind("bound_rounds", 0) == 0) continue;
    s.params[key] =
        std::max<std::int64_t>(1, bound * tighten_pct / 100);
  }
  // Crash-only cases assert the theorems; weather and jamming sit outside
  // the crash-fault model, so those cases report margins only (the verifier
  // still enforces completion and unit coverage).
  const bool outside_model = !s.faults.net.is_noop() || has_message_fault_budget(s.faults);
  s.params[outside_model ? "report_bounds" : "assert_bounds"] = 1;
}

Scenario generate_case(const GeneratorOptions& opts, int index) {
  Rng rng(mix(opts.seed, index));
  Scenario s;
  s.repetitions = 1;
  s.seed = rng.uniform(1, 1000000000);

  if (rng.chance(0.125)) {
    // Asynchronous Protocol A under its failure detector.
    s.substrate = Substrate::kAsync;
    s.protocol = "A_async";
    const int t = pick(rng, 2, 24);
    const std::int64_t n = static_cast<std::int64_t>(pick(rng, t, 16 * t));
    s.cfg = DoAllConfig{n, t};
    const int max_delay = pick(rng, 2, 20);
    s.params["max_delay"] = max_delay;
    s.params["fd_delay"] = pick(rng, max_delay, 4 * max_delay);
    s.params["crashes"] = pick(rng, 0, t - 1);
    s.params["crash_after"] = pick(rng, 1, static_cast<int>(ceil_div(n, t)) + 4);
    // Async weather: latency only (it replaces the substrate's own delay
    // draw); loss against an asynchronous failure detector can starve the
    // run, so the generator leaves it to the directed network families.
    if (rng.chance(0.25)) {
      NetSpec net;
      net.lat_min = 1;
      net.lat_max = static_cast<std::uint64_t>(pick(rng, 2, 12));
      net.seed = rng.uniform(1, 100000);
      s.faults = FaultSpec::none().with_net(net);
    }
  } else {
    s.substrate = Substrate::kSync;
    static const char* kProtocols[] = {"A", "B", "C", "C_batch", "D"};
    s.protocol = kProtocols[pick(rng, 0, 4)];
    int t = 2;
    std::int64_t n = 1;
    int budget_cap = 0;
    if (s.protocol == "A" || s.protocol == "B") {
      t = pick(rng, 2, 48);
      n = static_cast<std::int64_t>(pick(rng, t, 16 * t));
      budget_cap = t - 1;
    } else if (s.protocol == "C" || s.protocol == "C_batch") {
      t = pick(rng, 2, 64);
      const int n_max = static_cast<int>(
          std::min<std::int64_t>(16 * t, harness::kCRoundBudget - t));
      n = static_cast<std::int64_t>(pick(rng, 1, n_max));
      budget_cap = t - 1;
    } else {  // D: divisible shape, minority crash budget (case-1 bounds)
      t = pick(rng, 4, 32);
      n = static_cast<std::int64_t>(t) * pick(rng, 1, 12);
      budget_cap = std::max(1, t / 2 - 1);
    }
    s.cfg = DoAllConfig{n, t};

    const bool jam = (s.protocol == "A" || s.protocol == "B") && rng.chance(0.08);
    if (jam) {
      s.faults = FaultSpec::adaptive("jammer", 0, rng.uniform(1, 1u << 20),
                                     /*jam=*/pick(rng, 1, 8));
    } else {
      s.faults = pick_crash_spec(rng, s.protocol, n, t, budget_cap);
    }
    // Weather only for A/B: C's polling chains and D's full-information
    // rounds assume reliable delivery too rigidly to terminate under
    // arbitrary loss, and the bound oracle would have nothing to say there
    // anyway (see docs/FUZZING.md).
    if ((s.protocol == "A" || s.protocol == "B") && rng.chance(0.3))
      s.faults = s.faults.with_net(pick_weather(rng, t));
  }

  // Every generated case doubles as a grammar round-trip test: the spec
  // must survive parse(to_string()) exactly.
  const std::string text = s.faults.to_string();
  if (!(FaultSpec::parse(text) == s.faults))
    throw std::logic_error("fuzz generator: FaultSpec round-trip failed for '" + text + "'");

  s.id = "case" + pad5(index) + "/" + s.protocol;
  s.group = s.id;
  attach_fuzz_bounds(s, opts.tighten_pct);
  return s;
}

std::vector<Scenario> generate_cases(const GeneratorOptions& opts, int count) {
  std::vector<Scenario> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(generate_case(opts, i));
  return out;
}

}  // namespace dowork::fuzz
