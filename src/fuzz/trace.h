// Decision traces: every adversary choice of one run, frozen as a value.
//
// The fuzzer's reproducibility story rests on one observation about the
// simulator: the only channels through which an adversary influences an
// execution are the FaultInjector decision points (sim/fault_injector.h) --
// the CrashPlans returned from inspect() and the MessageFaults returned from
// on_message() -- plus the NetSpec-seeded network draws, which are already
// re-derivable from the spec.  So a run is fully determined by (scenario
// fields, the ordinal-indexed decisions actually taken), regardless of how
// much hidden state or randomness the strategy consulted to take them.
//
// RecordingFaults wraps the scenario's own injector and writes every
// non-null decision, keyed by the ordinal of the decision-point call, into a
// Trace.  ReplayFaults plays a frozen Trace back: at inspect() call #k it
// returns exactly the recorded plan (verifying the victim process matches --
// a mismatch means the execution diverged and the trace is stale) and never
// consults a strategy at all.  Replaying a trace through the unchanged
// simulator therefore reproduces the recorded run bit-for-bit: same rows,
// same margins, same violation text.
//
// Traces serialize to a line-oriented text format (docs/FUZZING.md) so a CI
// campaign artifact can be replayed locally:  `dowork_fuzz --replay FILE`.
//
// The async substrate takes no injector decisions (its crash schedule and
// delays are pure functions of the scenario params and seed), so an async
// trace has empty decision streams and replay(frozen) == rerun.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "harness/scenario.h"
#include "sim/fault_injector.h"

namespace dowork::fuzz {

// One crash decision: inspect() call number `inspect_idx` (0-based, counted
// over the whole run) returned a CrashPlan for process `proc`.
struct TraceCrash {
  std::uint64_t inspect_idx = 0;
  int proc = -1;
  bool work_completes = false;
  std::size_t deliver_prefix = 0;
  friend bool operator==(const TraceCrash&, const TraceCrash&) = default;
};

// One message-fault decision: on_message() call number `msg_idx` returned a
// drop or delay verdict.
struct TraceMessageFault {
  std::uint64_t msg_idx = 0;
  bool drop = false;
  std::uint64_t delay = 0;
  friend bool operator==(const TraceMessageFault&, const TraceMessageFault&) = default;
};

// The recorded outcome, for replay verification: a replay must reproduce
// every field exactly (rounds is the formatted column, so Protocol C's
// "~2^k" values compare too).
struct TraceOutcome {
  bool ok = false;
  std::uint64_t work = 0;
  std::uint64_t messages = 0;
  std::uint64_t effort = 0;
  std::uint64_t crashes = 0;
  std::string rounds;
  std::string violation;  // empty when ok
  friend bool operator==(const TraceOutcome&, const TraceOutcome&) = default;
};

struct Trace {
  // Scenario identity -- enough to rebuild the Scenario value exactly.
  // Only rep 0 is traceable (the fuzzer always runs repetitions = 1); the
  // seeded components fold `rep` into their streams, so a nonzero rep would
  // not survive the round trip through to_scenario().
  std::string id;
  std::string substrate = "sync";  // "sync" or "async"
  std::string protocol;
  std::int64_t n = 0;
  int t = 0;
  std::uint64_t seed = 0;
  std::string faults;  // FaultSpec::to_string()
  std::map<std::string, std::int64_t> params;

  // The decision streams.
  bool wants_message_faults = false;
  std::vector<TraceCrash> crashes;
  std::vector<TraceMessageFault> message_faults;

  TraceOutcome outcome;

  // Line-oriented text form; parse() accepts exactly what to_string() emits
  // and throws std::invalid_argument otherwise.  parse(to_string()) is the
  // identity.
  std::string to_string() const;
  static Trace parse(const std::string& text);

  // Rebuild the Scenario this trace describes.  With frozen = true the
  // scenario's injector_override replays the recorded decision streams
  // (sync substrate only -- async takes no decisions); with frozen = false
  // the spec's own injector is rebuilt and the run is re-derived from seeds
  // alone.  Both must reproduce `outcome` exactly.
  harness::Scenario to_scenario(bool frozen) const;

  friend bool operator==(const Trace&, const Trace&) = default;
};

// Wraps the scenario's injector, forwarding every call and recording the
// non-null decisions into `out` (borrowed; must outlive the run).
class RecordingFaults final : public FaultInjector {
 public:
  RecordingFaults(std::unique_ptr<FaultInjector> inner, Trace* out);

  void attach(const SimObservable& sim) override;
  void on_round_start(const Round& round) override;
  std::optional<CrashPlan> inspect(int proc, const Round& round, const Action& action,
                                   const SimSnapshot& snap) override;
  std::optional<MessageFault> on_message(int from, const Round& round,
                                         const DeliveryRecord& rec) override;
  bool wants_message_faults() const override;

 private:
  std::unique_ptr<FaultInjector> inner_;
  Trace* out_;
  std::uint64_t inspect_calls_ = 0;
  std::uint64_t msg_calls_ = 0;
};

// Replays a Trace's decision streams by call ordinal, never consulting a
// strategy.  Throws std::runtime_error on divergence (a recorded crash's
// victim differs from the process actually being inspected), which the
// harness surfaces as an ok=false row.
class ReplayFaults final : public FaultInjector {
 public:
  explicit ReplayFaults(const Trace& trace);

  std::optional<CrashPlan> inspect(int proc, const Round& round, const Action& action,
                                   const SimSnapshot& snap) override;
  std::optional<MessageFault> on_message(int from, const Round& round,
                                         const DeliveryRecord& rec) override;
  bool wants_message_faults() const override { return wants_message_faults_; }

 private:
  std::vector<TraceCrash> crashes_;
  std::vector<TraceMessageFault> message_faults_;
  bool wants_message_faults_;
  std::uint64_t inspect_calls_ = 0;
  std::uint64_t msg_calls_ = 0;
  std::size_t next_crash_ = 0;
  std::size_t next_msg_fault_ = 0;
};

// Copy of `s` whose injector_override records into `out`; also fills the
// trace's scenario-identity fields.  `out` must outlive every run of the
// returned scenario.  The caller copies the finished row into out->outcome
// (fill_outcome below).
harness::Scenario with_recording(const harness::Scenario& s, Trace* out);

void fill_outcome(const harness::ScenarioResult& row, Trace* out);

// Run one scenario (repetitions must be 1) with recording; returns the row
// and the completed trace.
struct RecordedRun {
  harness::ScenarioResult row;
  Trace trace;
};
RecordedRun run_recorded(const harness::Scenario& s, const std::string& experiment = "fuzz");

// Re-execute a trace (frozen by default) and return the resulting row; the
// caller compares against trace.outcome (outcome_of below) for the
// bit-identity check.
harness::ScenarioResult replay(const Trace& trace, bool frozen = true);

// The outcome fields of a row, for comparison against Trace::outcome.
TraceOutcome outcome_of(const harness::ScenarioResult& row);

}  // namespace dowork::fuzz
