// Dynamic-workload extension of Protocol D (paper Sections 1 and 4).
//
// The paper notes: "It is not too hard to modify our last algorithm to deal
// with a more realistic scenario, where work is continually coming in to
// different sites of the system, and is not initially common knowledge"
// (an IBM patent, Dwork-Halpern-Strong, covers such a variant).  This
// module implements that modification: units of work *arrive* at individual
// processes over time; the processes keep alternating work phases with
// agreement phases, and the agreement now gossips two monotone sets -- the
// units KNOWN to exist and the units DONE -- both merged by union (the
// static protocol's outstanding-set intersection is the complement of the
// same lattice).  A process terminates once an agreement establishes that
// (a) every known unit is done and (b) every participant entered the
// agreement past the announced arrival horizon (merged by AND so nobody
// leaves while a peer might still be carrying fresh work).
//
// Semantics of failure: work that arrived at a site that crashes before the
// site's next agreement broadcast is lost with the site, exactly as a real
// job queue on a reclaimed workstation would be; clients must resubmit.
#pragma once

#include <map>
#include <memory>

#include "core/work.h"
#include "sim/fault_injector.h"
#include "sim/metrics.h"
#include "sim/process.h"

namespace dowork {

// Work arriving at one site at one round.  Rounds must fit u64 here (the
// dynamic protocol has no exponential deadlines).
struct Arrival {
  std::uint64_t round;
  int proc;
  std::vector<std::int64_t> units;  // 1-based ids, unique across the schedule
};

struct DynamicConfig {
  int t = 0;
  std::int64_t max_units = 0;     // upper bound on unit ids
  std::uint64_t horizon = 0;      // no arrivals at or after this round (common knowledge)
  std::vector<Arrival> arrivals;  // shared, sorted by round

  void validate() const;
};

struct DynAgreeMsg final : Payload {
  int phase;
  std::vector<std::uint8_t> known;
  std::vector<std::uint8_t> done;
  std::vector<std::uint8_t> t_alive;
  bool past_horizon;  // AND-merged: every participant entered past the horizon
  bool finished;      // sender has decided this phase's final view
};

class DynamicDProcess final : public IProcess {
 public:
  DynamicDProcess(const DynamicConfig& cfg, int self);

  Action on_round(const RoundContext& ctx, const InboxView& inbox) override;
  Round next_wake(const Round& now) const override;
  std::string describe() const override;

 private:
  enum class PhaseKind { kWork, kAgree, kFinished };

  void absorb_arrivals(const Round& now);
  void enter_work_phase(const Round& now);
  Action agree_broadcast(bool finished);
  void finish_agree();
  std::uint64_t count(const std::vector<std::uint8_t>& bits) const;

  DynamicConfig cfg_;
  int self_;

  PhaseKind phase_kind_ = PhaseKind::kWork;
  int phase_ = 1;
  std::vector<std::uint8_t> known_, done_, t_alive_;
  // Slices and phase lengths must be computed from the *agreed* view only:
  // fresh local arrivals are not yet common knowledge and would desynchronize
  // the phase structure (different W at different sites).  They are gossiped
  // in the next agreement and become workable one phase later.
  std::vector<std::uint8_t> agreed_known_, agreed_done_;
  std::size_t next_arrival_ = 0;  // index into cfg_.arrivals

  std::vector<std::int64_t> my_slice_;
  std::size_t slice_pos_ = 0;
  Round work_end_;
  bool work_entered_ = false;

  std::vector<std::uint8_t> u_, tn_, kn_, dn_;
  bool agree_past_horizon_ = false;
  Round agree_entry_round_;
  int iter_ = 0;
  int grace_ = 0;
  std::map<int, std::shared_ptr<const DynAgreeMsg>> seen_;
  bool terminated_ = false;
};

struct DynamicRunResult {
  RunMetrics metrics;
  // Units that arrived at a site which crashed before propagating them; they
  // are legitimately lost (must be resubmitted by the client).
  std::vector<std::int64_t> lost_units;
  // Every unit that any surviving site learned about was performed.
  bool all_known_work_done = false;
};

DynamicRunResult run_dynamic_do_all(const DynamicConfig& cfg,
                                    std::unique_ptr<FaultInjector> faults);

}  // namespace dowork
