#include "dynamic/dynamic_d.h"

#include <algorithm>
#include <stdexcept>

#include "sim/simulator.h"

namespace dowork {

void DynamicConfig::validate() const {
  if (t < 1) throw std::invalid_argument("DynamicConfig: t >= 1 required");
  if (max_units < 1) throw std::invalid_argument("DynamicConfig: max_units >= 1 required");
  std::vector<bool> seen(static_cast<std::size_t>(max_units), false);
  std::uint64_t prev = 0;
  for (const Arrival& a : arrivals) {
    if (a.round < prev) throw std::invalid_argument("DynamicConfig: arrivals must be sorted");
    prev = a.round;
    if (a.round >= horizon)
      throw std::invalid_argument("DynamicConfig: arrival at/after the horizon");
    if (a.proc < 0 || a.proc >= t) throw std::invalid_argument("DynamicConfig: bad proc");
    for (std::int64_t u : a.units) {
      if (u < 1 || u > max_units) throw std::invalid_argument("DynamicConfig: bad unit id");
      if (seen[static_cast<std::size_t>(u - 1)])
        throw std::invalid_argument("DynamicConfig: duplicate unit id");
      seen[static_cast<std::size_t>(u - 1)] = true;
    }
  }
}

DynamicDProcess::DynamicDProcess(const DynamicConfig& cfg, int self) : cfg_(cfg), self_(self) {
  cfg_.validate();
  known_.assign(static_cast<std::size_t>(cfg_.max_units), 0);
  done_.assign(static_cast<std::size_t>(cfg_.max_units), 0);
  agreed_known_ = known_;
  agreed_done_ = done_;
  t_alive_.assign(static_cast<std::size_t>(cfg_.t), 1);
  grace_ = 0;
}

std::uint64_t DynamicDProcess::count(const std::vector<std::uint8_t>& bits) const {
  std::uint64_t c = 0;
  for (std::uint8_t b : bits) c += b;
  return c;
}

void DynamicDProcess::absorb_arrivals(const Round& now) {
  while (next_arrival_ < cfg_.arrivals.size() &&
         Round{cfg_.arrivals[next_arrival_].round} <= now) {
    const Arrival& a = cfg_.arrivals[next_arrival_];
    if (a.proc == self_)
      for (std::int64_t u : a.units) known_[static_cast<std::size_t>(u - 1)] = 1;
    ++next_arrival_;
  }
}

void DynamicDProcess::enter_work_phase(const Round& now) {
  std::vector<std::int64_t> outstanding;
  for (std::int64_t u = 1; u <= cfg_.max_units; ++u) {
    std::size_t i = static_cast<std::size_t>(u - 1);
    if (agreed_known_[i] && !agreed_done_[i]) outstanding.push_back(u);
  }
  const std::uint64_t alive = std::max<std::uint64_t>(1, count(t_alive_));
  const std::int64_t w = std::max<std::int64_t>(
      1, ceil_div(static_cast<std::int64_t>(outstanding.size()),
                  static_cast<std::int64_t>(alive)));
  my_slice_.clear();
  slice_pos_ = 0;
  if (t_alive_[static_cast<std::size_t>(self_)]) {
    std::int64_t rank = 0;
    for (int i = 0; i < self_; ++i) rank += t_alive_[static_cast<std::size_t>(i)];
    const std::int64_t from = rank * w;
    const std::int64_t to =
        std::min<std::int64_t>(from + w, static_cast<std::int64_t>(outstanding.size()));
    for (std::int64_t k = from; k < to; ++k)
      my_slice_.push_back(outstanding[static_cast<std::size_t>(k)]);
  }
  work_end_ = now + Round{static_cast<std::uint64_t>(w)};
  for (std::int64_t u : my_slice_) done_[static_cast<std::size_t>(u - 1)] = 1;
}

Action DynamicDProcess::agree_broadcast(bool finished) {
  Action a;
  auto payload = std::make_shared<DynAgreeMsg>();
  payload->phase = phase_;
  payload->known = kn_;
  payload->done = dn_;
  payload->t_alive = tn_;
  payload->past_horizon = agree_past_horizon_;
  payload->finished = finished;
  DynBitset bits(static_cast<std::size_t>(cfg_.t));
  for (int i = 0; i < cfg_.t; ++i)
    if (i != self_ && u_[static_cast<std::size_t>(i)]) bits.set(static_cast<std::size_t>(i));
  if (bits.any())
    a.sends.push_back(
        Outgoing{make_recipient_bits(std::move(bits)), MsgKind::kAgreement, std::move(payload)});
  return a;
}

void DynamicDProcess::finish_agree() {
  // The agreed view becomes both the working view and the basis for the next
  // phase's (common) slice computation; local arrivals since the broadcast
  // stay in known_ for the next gossip round.
  for (std::size_t k = 0; k < known_.size(); ++k) {
    known_[k] |= kn_[k];
    done_[k] |= dn_[k];
  }
  agreed_known_ = kn_;
  agreed_done_ = dn_;
  t_alive_ = tn_;
  if (!t_alive_[static_cast<std::size_t>(self_)]) {
    terminated_ = true;
    phase_kind_ = PhaseKind::kFinished;
    return;
  }
  // Terminate on agreed facts only: every participant entered this agreement
  // past the horizon (so no site can be carrying un-gossiped arrivals) and
  // the agreed known set is fully done.
  if (agree_past_horizon_ && agreed_known_ == agreed_done_) {
    terminated_ = true;
    phase_kind_ = PhaseKind::kFinished;
    return;
  }
  ++phase_;
  grace_ = 1;
  phase_kind_ = PhaseKind::kWork;
  work_entered_ = false;
  seen_.clear();
}

Action DynamicDProcess::on_round(const RoundContext& ctx, const InboxView& inbox) {
  if (terminated_) {
    Action a;
    a.terminate = true;
    return a;
  }
  absorb_arrivals(ctx.round);
  for (const Msg& msg : inbox) {
    if (const auto* m = msg.as<DynAgreeMsg>(); m != nullptr && m->phase == phase_)
      seen_[msg.from] = std::static_pointer_cast<const DynAgreeMsg>(msg.payload());
  }

  if (phase_kind_ == PhaseKind::kWork) {
    if (!work_entered_) {
      work_entered_ = true;
      enter_work_phase(ctx.round);
    }
    if (ctx.round < work_end_) {
      Action a;
      if (slice_pos_ < my_slice_.size()) a.work = my_slice_[slice_pos_++];
      return a;
    }
    phase_kind_ = PhaseKind::kAgree;
    u_ = t_alive_;
    tn_.assign(static_cast<std::size_t>(cfg_.t), 0);
    tn_[static_cast<std::size_t>(self_)] = 1;
    kn_ = known_;
    dn_ = done_;
    agree_entry_round_ = ctx.round;
    agree_past_horizon_ = ctx.round >= Round{cfg_.horizon};
    iter_ = 0;
    return agree_broadcast(false);
  }

  // Agreement phase (pipelined as in Protocol D; see protocol_d.h).
  bool adopted = false;
  for (const auto& [i, msg] : seen_) {
    if (msg->finished) {
      kn_ = msg->known;
      dn_ = msg->done;
      tn_ = msg->t_alive;
      agree_past_horizon_ = msg->past_horizon;
      adopted = true;
      break;
    }
  }
  bool removed_any = false;
  if (!adopted) {
    for (const auto& [i, msg] : seen_) {
      for (std::size_t k = 0; k < kn_.size(); ++k) {
        kn_[k] |= msg->known[k];
        dn_[k] |= msg->done[k];
      }
      for (std::size_t k = 0; k < tn_.size(); ++k) tn_[k] |= msg->t_alive[k];
      agree_past_horizon_ = agree_past_horizon_ && msg->past_horizon;
    }
    if (iter_ >= grace_) {
      for (int i = 0; i < cfg_.t; ++i) {
        if (i != self_ && u_[static_cast<std::size_t>(i)] && seen_.find(i) == seen_.end()) {
          u_[static_cast<std::size_t>(i)] = 0;
          removed_any = true;
        }
      }
    }
  }
  seen_.clear();
  const bool stable = !removed_any && iter_ >= grace_;
  ++iter_;

  if (adopted || stable) {
    Action a = agree_broadcast(true);
    finish_agree();
    if (terminated_) a.terminate = true;
    return a;
  }
  return agree_broadcast(false);
}

Round DynamicDProcess::next_wake(const Round& now) const {
  if (terminated_) return never_round();
  switch (phase_kind_) {
    case PhaseKind::kWork:
      if (!work_entered_ || slice_pos_ < my_slice_.size()) return now;
      return work_end_ > now ? work_end_ : now;
    case PhaseKind::kAgree:
      return now;
    case PhaseKind::kFinished:
      return now;
  }
  return never_round();
}

std::string DynamicDProcess::describe() const {
  return "DynamicD[" + std::to_string(self_) + ",phase=" + std::to_string(phase_) + "]";
}

DynamicRunResult run_dynamic_do_all(const DynamicConfig& cfg,
                                    std::unique_ptr<FaultInjector> faults) {
  cfg.validate();
  std::vector<std::unique_ptr<IProcess>> procs;
  for (int i = 0; i < cfg.t; ++i) procs.push_back(std::make_unique<DynamicDProcess>(cfg, i));
  Simulator::Options opts;
  opts.strict_one_op = true;
  opts.n_units = cfg.max_units;
  Simulator sim(std::move(procs), std::move(faults), opts);

  DynamicRunResult result;
  result.metrics = sim.run();

  // A unit may legitimately go unperformed only if its arrival site crashed
  // (the job died with the workstation).
  result.all_known_work_done = true;
  for (const Arrival& a : cfg.arrivals) {
    for (std::int64_t u : a.units) {
      if (result.metrics.unit_multiplicity[static_cast<std::size_t>(u - 1)] == 0) {
        result.lost_units.push_back(u);
        if (sim.state_of(a.proc) != ProcState::kCrashed) result.all_known_work_done = false;
      }
    }
  }
  return result;
}

}  // namespace dowork
