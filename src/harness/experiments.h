// Named experiment families: every per-figure benchmark binary's sweep,
// re-expressed as data.  Each experiment expands to a vector of Scenarios
// (see DESIGN.md for the experiment -> paper table/figure map); the unified
// dowork_bench CLI and the thin per-experiment wrappers both run them
// through the ParallelScenarioRunner.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "harness/scenario.h"

namespace dowork::harness {

struct ExperimentInfo {
  std::string name;   // CLI name: dowork_bench --experiment <name>
  std::string title;  // paper table/figure reference
  std::string claim;  // the paper claim the experiment checks
  std::function<std::vector<Scenario>()> scenarios;
};

// All registered experiments, in presentation order.
const std::vector<ExperimentInfo>& all_experiments();

// Lookup by name; nullptr when unknown.
const ExperimentInfo* find_experiment(const std::string& name);

}  // namespace dowork::harness
