#include "harness/bounds.h"

#include <algorithm>
#include <stdexcept>

#include "core/work.h"

namespace dowork::harness {

std::vector<std::pair<std::string, std::int64_t>> paper_bounds(const std::string& protocol,
                                                               std::int64_t n, int t,
                                                               int crash_budget) {
  const std::int64_t tt = t;
  if (protocol == "A" || protocol == "B") {
    const std::int64_t s = int_sqrt_ceil(t);
    return {{"bound_work_3n", 3 * n},
            {"bound_msgs", (protocol == "A" ? 9 : 10) * tt * s},
            {"bound_rounds", protocol == "A" ? n * tt + 3 * tt * tt : 3 * n + 8 * tt}};
  }
  if (protocol == "C" || protocol == "C_batch") {
    const std::int64_t T = pow2_ceil(t);
    const std::int64_t L = std::max<std::int64_t>(1, log2_of_pow2(static_cast<int>(T)));
    if (protocol == "C_batch") {
      // Theorem 3.8's n + 2t slack charges <= 2 redone units to each of
      // <= t takeover/failure events; Corollary 3.9 batches level-0
      // reports every ceil(n/t) units, so the knowledge a successor takes
      // over with (and the worker's own unreported progress) lags in
      // whole batches and each event redoes up to 2 batches instead of 2
      // units: work <= n + 2t * batch, which reduces to the C bound at
      // batch = 1.  The fuzzer's ragged (t does not divide n) shapes made
      // the inflation measurable; the historical t | n, n = 4t shapes
      // satisfied plain n + 2t empirically, which is why the seed repo
      // never noticed.
      const std::int64_t batch = ceil_div(n, tt);
      return {{"bound_work_batched", n + 2 * tt * batch},
              {"bound_msgs", n + 8 * T * L}};
    }
    return {{"bound_work_n_2t", n + 2 * tt}, {"bound_msgs", n + 8 * T * L}};
  }
  if (protocol == "D") {
    const std::int64_t f = crash_budget;
    return {{"bound_work_2n", 2 * n},
            {"bound_msgs", (4 * f + 2) * tt * tt},
            {"bound_rounds", (f + 1) * ceil_div(n, tt) + 4 * f + 2}};
  }
  throw std::invalid_argument("paper_bounds: no audited bound set for protocol '" + protocol +
                              "'");
}

bool has_paper_bounds(const std::string& protocol) {
  return protocol == "A" || protocol == "B" || protocol == "C" || protocol == "C_batch" ||
         protocol == "D";
}

}  // namespace dowork::harness
