// The paper's per-protocol bound formulas as a library.
//
// Until the fuzzing PR these formulas lived inline in experiments.cpp, once
// per family that asserted them; the fuzzer generates thousands of random
// shapes, so the formulas become a shared, unit-tested oracle instead: the
// adversary_search tournament, the protocol_a/protocol_b families and the
// fuzz campaign all attach exactly these (key, value) bound params, and
// scenario.cpp's assert_bounds checks the measured row against them.
//
// Keys are load-bearing: assert_bounds dispatches on the "bound_work*" /
// "bound_msgs*" / "bound_rounds*" prefix, and the key strings appear
// verbatim as report columns, so they must stay byte-identical to the
// pre-refactor inline params.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dowork::harness {

// Protocol C's deadlines are ~2^(n+t) rounds and must fit Round's promoted
// 512-bit representation: shapes with n + t above this budget are not
// exactly simulable (the scale family and the fuzz generator both cap at
// it).
inline constexpr std::int64_t kCRoundBudget = 440;

// Ordered (param key, bound value) rows for `protocol` at shape (n, t) with
// an adversary holding `crash_budget` crashes -- exactly the params the
// adversary_search tournament asserts per row:
//   A        work <= 3n, msgs <= 9t*sqrt(t), rounds <= nt + 3t^2  (Thm 2.3)
//   B        work <= 3n, msgs <= 10t*sqrt(t), rounds <= 3n + 8t   (Thm 2.8)
//   C        work <= n + 2t, msgs <= n + 8T log T over the padded process
//            count T = pow2_ceil(t); no rounds bound (time is exponential
//            in n + t by design)                                  (Thm 3.8)
//   C_batch  msgs as C; work <= n + 2t * ceil(n/t) -- the C work argument
//            charges <= 2 redone units per takeover event, and batching
//            level-0 reports every ceil(n/t) units turns each redone unit
//            of knowledge into a redone batch, so the n + 2t bound only
//            holds verbatim when reports are per-unit (batch = 1 recovers
//            it exactly) (Cor 3.9)
//   D        with f = crash_budget (valid for f <= t/2 - 1, Theorem 4.1
//            case 1; a majority loss moves the goalposts to the case-2
//            revert bounds): work <= 2n, msgs <= (4f+2)t^2,
//            rounds <= (f+1)*ceil(n/t) + 4f + 2
// The bounds are monotone in the budget, so asserting with the budget when
// fewer crashes actually happen stays sound.  Throws std::invalid_argument
// for protocols without an audited bound set (see has_paper_bounds).
std::vector<std::pair<std::string, std::int64_t>> paper_bounds(const std::string& protocol,
                                                               std::int64_t n, int t,
                                                               int crash_budget);

// True iff paper_bounds knows `protocol` (A, B, C, C_batch, D).
bool has_paper_bounds(const std::string& protocol);

}  // namespace dowork::harness
