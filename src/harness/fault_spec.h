// Declarative fault-injector specification.
//
// A Scenario must be a value (copyable, comparable, printable) so that sweeps
// can be generated up front, fanned out across threads, and logged; but a
// FaultInjector is stateful and single-run.  FaultSpec is the bridge: it
// names one of the simulator's adversaries plus its knobs, builds a fresh
// injector per run via make(), and round-trips through to_string()/parse()
// so scenario ids and JSON rows identify the exact adversary.
//
// ## The string grammar accepted by parse()
//
// parse() accepts exactly the language to_string() emits (and throws
// std::invalid_argument on anything else); parse(to_string()) is the
// identity, and to_string(parse()) is a fixed point.  No whitespace is
// permitted anywhere.
//
//   spec      := "none" | cascade | on_unit | random | scheduled | adaptive
//   cascade   := "cascade(units=" U64 ",crashes=" INT ",prefix=" PREFIX
//                ",completes=" BOOL ")"
//   on_unit   := "on_unit(unit=" I64 ",crashes=" INT ",prefix=" PREFIX ")"
//   random    := "random(p=" DOUBLE ",crashes=" INT ",seed=" U64 ")"
//   scheduled := "scheduled(" entry (";" entry)* ")"     -- may be empty: "scheduled()"
//   entry     := PROC "@" NTH ":" BOOL ":" PREFIX        -- proc, action ordinal, plan
//   adaptive  := "adaptive:" STRATEGY "(crashes=" INT ",seed=" U64 ")"
//
//   PREFIX   := "all" | U64    -- how many of the dying broadcast's sends
//                                 escape; "all" round-trips SIZE_MAX
//   BOOL     := "0" | "1"
//   DOUBLE   := shortest %g form that re-parses to the identical double
//   STRATEGY := a name registered in src/adversary/strategies.h ("chain",
//               "greedy", "splitter", "restart"); anything else is rejected
//               at parse time, not at make() time
//
// Examples (all produced by the convenience constructors below):
//   none
//   cascade(units=129,crashes=63,prefix=1,completes=1)
//   on_unit(unit=63,crashes=31,prefix=0)
//   random(p=0.05,crashes=15,seed=42)
//   scheduled(0@1:0:4;3@9:1:all)
//   adaptive:greedy(crashes=15,seed=7)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/fault_injector.h"

namespace dowork::harness {

struct FaultSpec {
  // Which of the simulator's adversaries (sim/fault_injector.h) this spec
  // names.  Which of the knob fields below are meaningful depends on it;
  // the unused ones keep their defaults and are ignored by make(),
  // to_string() and operator==.
  enum class Kind : std::uint8_t { kNone, kCascade, kOnUnit, kRandom, kScheduled, kAdaptive };

  // kNone (the default): no process ever fails.
  Kind kind = Kind::kNone;

  // kCascade: how many units the currently-working process performs before
  // the adversary kills it (WorkCascadeFaults's takeover-cascade rhythm).
  std::uint64_t units_before_crash = 1;
  // kCascade / kOnUnit / kRandom / kAdaptive: total crash budget; the
  // simulator additionally never lets the last survivor die.
  int max_crashes = 0;
  // kCascade / kOnUnit: broadcast truncation on crash -- the number of the
  // dying process's in-progress sends that still escape (paper Section 2.1:
  // "only some subset of the processes receive the message").  0 = nothing
  // escapes, SIZE_MAX (spelled "all" in the grammar) = the full broadcast.
  std::size_t deliver_prefix = 0;
  // kCascade: does the unit in progress complete before the crash?  A false
  // value models dying *during* the unit, so a successor must redo it.
  bool crash_completes_unit = true;
  // kOnUnit: the 1-based unit id whose performance triggers the crash
  // (CrashOnUnitFaults; with unit = n this is the Section 3 adversary that
  // kills every most-knowledgeable process at the finish line).
  std::int64_t unit = 0;
  // kRandom: per-round crash probability for every live, non-idle process.
  double p = 0.0;
  // kRandom / kAdaptive: RNG seed.  make(rep) draws from seed + rep, so
  // repetitions of one scenario explore different schedules while staying
  // reproducible (kAdaptive's "restart" strategy is the seed consumer; the
  // deterministic strategies ignore it but keep it in their identity).
  std::uint64_t seed = 0;
  // kScheduled: an explicit kill list -- (proc, its k-th non-idle action,
  // CrashPlan) triples, applied by ScheduledFaults exactly as written.
  // Used by tests and the protocol_d experiments to craft exact executions.
  std::vector<ScheduledFaults::Entry> entries;
  // kAdaptive: registered strategy name (src/adversary/strategies.h);
  // make() builds an AdaptiveFaults around a fresh strategy instance.
  std::string strategy;

  // Fresh injector for one run.  `rep` perturbs the random adversary's seed
  // so repetitions explore different schedules; the deterministic adversaries
  // ignore it.
  std::unique_ptr<FaultInjector> make(std::uint64_t rep = 0) const;

  // Compact single-line form per the grammar above; parse() accepts exactly
  // what to_string() emits and throws std::invalid_argument otherwise.
  std::string to_string() const;
  static FaultSpec parse(const std::string& text);

  friend bool operator==(const FaultSpec& a, const FaultSpec& b);

  // Convenience constructors for the scenario generators.
  static FaultSpec none();
  static FaultSpec cascade(std::uint64_t units, int crashes, std::size_t prefix = 0,
                           bool completes = true);
  static FaultSpec on_unit(std::int64_t unit, int crashes, std::size_t prefix = 0);
  static FaultSpec random(double p, int crashes, std::uint64_t seed);
  static FaultSpec scheduled(std::vector<ScheduledFaults::Entry> entries);
  // Throws std::invalid_argument for unregistered strategy names.
  static FaultSpec adaptive(const std::string& strategy, int crashes, std::uint64_t seed = 0);
};

}  // namespace dowork::harness
