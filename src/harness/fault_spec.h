// Declarative fault-injector specification.
//
// A Scenario must be a value (copyable, comparable, printable) so that sweeps
// can be generated up front, fanned out across threads, and logged; but a
// FaultInjector is stateful and single-run.  FaultSpec is the bridge: it
// names one of the simulator's adversaries plus its knobs, builds a fresh
// injector per run via make(), and round-trips through to_string()/parse()
// so scenario ids and JSON rows identify the exact adversary.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/fault_injector.h"

namespace dowork::harness {

struct FaultSpec {
  enum class Kind : std::uint8_t { kNone, kCascade, kOnUnit, kRandom, kScheduled };

  Kind kind = Kind::kNone;

  // kCascade: WorkCascadeFaults(units_before_crash, max_crashes,
  // deliver_prefix, crash_completes_unit).
  std::uint64_t units_before_crash = 1;
  // kCascade / kOnUnit / kRandom: crash budget.
  int max_crashes = 0;
  // kCascade / kOnUnit: broadcast truncation on crash (SIZE_MAX = all).
  std::size_t deliver_prefix = 0;
  bool crash_completes_unit = true;
  // kOnUnit: CrashOnUnitFaults(unit, ...).
  std::int64_t unit = 0;
  // kRandom: RandomFaults(p, max_crashes, seed + rep).
  double p = 0.0;
  std::uint64_t seed = 0;
  // kScheduled: ScheduledFaults(entries).
  std::vector<ScheduledFaults::Entry> entries;

  // Fresh injector for one run.  `rep` perturbs the random adversary's seed
  // so repetitions explore different schedules; the deterministic adversaries
  // ignore it.
  std::unique_ptr<FaultInjector> make(std::uint64_t rep = 0) const;

  // Compact single-line form, e.g. "cascade(units=1,crashes=15,prefix=0,
  // completes=1)".  parse() accepts exactly what to_string() emits and throws
  // std::invalid_argument otherwise.
  std::string to_string() const;
  static FaultSpec parse(const std::string& text);

  friend bool operator==(const FaultSpec& a, const FaultSpec& b);

  // Convenience constructors for the scenario generators.
  static FaultSpec none();
  static FaultSpec cascade(std::uint64_t units, int crashes, std::size_t prefix = 0,
                           bool completes = true);
  static FaultSpec on_unit(std::int64_t unit, int crashes, std::size_t prefix = 0);
  static FaultSpec random(double p, int crashes, std::uint64_t seed);
  static FaultSpec scheduled(std::vector<ScheduledFaults::Entry> entries);
};

}  // namespace dowork::harness
