// Declarative fault-injector specification.
//
// A Scenario must be a value (copyable, comparable, printable) so that sweeps
// can be generated up front, fanned out across threads, and logged; but a
// FaultInjector is stateful and single-run.  FaultSpec is the bridge: it
// names one of the simulator's adversaries plus its knobs, builds a fresh
// injector per run via make(), and round-trips through to_string()/parse()
// so scenario ids and JSON rows identify the exact adversary.
//
// Since the network-realism PR a FaultSpec composes two orthogonal
// components: an optional *crash* component (one of the five process
// adversaries below) and an optional *network* component (latency, loss,
// partitions -- sim/network_model.h).  Each component is a typed sub-struct;
// the crash component is a variant over them, so a spec physically cannot
// carry another kind's knobs.
//
// ## The string grammar accepted by parse()
//
// parse() accepts exactly the language below (and throws
// std::invalid_argument on anything else); parse(to_string()) is the
// identity, and to_string(parse()) is a fixed point.  No whitespace is
// permitted anywhere.
//
//   spec      := part (";" part)*      -- ";" splits at paren depth 0 only
//   part      := crash_part | net_part -- at most one of each, any order
//   crash_part:= ["crash="] crash      -- the bare v1 string still parses
//   crash     := "none" | cascade | on_unit | random | scheduled | adaptive
//   cascade   := "cascade(units=" U64 ",crashes=" INT ",prefix=" PREFIX
//                ",completes=" BOOL ")"
//   on_unit   := "on_unit(unit=" I64 ",crashes=" INT ",prefix=" PREFIX ")"
//   random    := "random(p=" DOUBLE ",crashes=" INT ",seed=" U64 ")"
//   scheduled := "scheduled(" entry (";" entry)* ")"     -- may be empty: "scheduled()"
//   entry     := PROC "@" NTH ":" BOOL ":" PREFIX        -- proc, action ordinal, plan
//   adaptive  := "adaptive:" STRATEGY "(crashes=" INT ["," jam] ",seed=" U64 ")"
//   jam       := "jam=" INT            -- message-fault budget; omitted when 0
//   net_part  := "net=(" netfields ",seed=" U64 ")"      -- active fields only:
//                "lat=" U64 ".." U64 | "drop=" DOUBLE | "part=" window (";" window)*
//   window    := U64 ".." U64 "@" INT                    -- split..heal@cut
//
//   PREFIX   := "all" | U64    -- how many of the dying broadcast's sends
//                                 escape; "all" round-trips SIZE_MAX
//   BOOL     := "0" | "1"
//   DOUBLE   := shortest %g form that re-parses to the identical double
//   STRATEGY := a name registered in src/adversary/strategies.h ("chain",
//               "greedy", "splitter", "restart", "jammer"); anything else is
//               rejected at parse time, not at make() time
//
// to_string() emits the bare crash string when the network component is a
// no-op (so every pre-network spec renders byte-identically), "net=(...)"
// alone for a pure network spec, and "crash=...;net=(...)" when both
// components are active.
//
// Examples (all produced by the convenience constructors below):
//   none
//   cascade(units=129,crashes=63,prefix=1,completes=1)
//   on_unit(unit=63,crashes=31,prefix=0)
//   random(p=0.05,crashes=15,seed=42)
//   scheduled(0@1:0:4;3@9:1:all)
//   adaptive:greedy(crashes=15,seed=7)
//   adaptive:jammer(crashes=0,jam=8,seed=0)
//   net=(lat=1..4,seed=3)
//   crash=cascade(units=2,crashes=7,prefix=1,completes=1);net=(drop=0.05,seed=11)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "sim/fault_injector.h"
#include "sim/network_model.h"

namespace dowork::harness {

// --- Crash-component sub-structs (one per adversary kind) -------------------

// WorkCascadeFaults: kill the currently-working process every
// `units_before_crash` committed units (the takeover-cascade rhythm).
struct CascadeSpec {
  std::uint64_t units_before_crash = 1;
  // Total crash budget; the simulator additionally never lets the last
  // survivor die.
  int max_crashes = 0;
  // Broadcast truncation on crash -- the number of the dying process's
  // in-progress sends that still escape (paper Section 2.1: "only some
  // subset of the processes receive the message").  0 = nothing escapes,
  // SIZE_MAX (spelled "all" in the grammar) = the full broadcast.
  std::size_t deliver_prefix = 0;
  // Does the unit in progress complete before the crash?  false models
  // dying *during* the unit, so a successor must redo it.
  bool crash_completes_unit = true;
  friend bool operator==(const CascadeSpec&, const CascadeSpec&) = default;
};

// CrashOnUnitFaults: the 1-based unit id whose performance triggers the
// crash (with unit = n this is the Section 3 adversary that kills every
// most-knowledgeable process at the finish line).
struct OnUnitSpec {
  std::int64_t unit = 0;
  int max_crashes = 0;
  std::size_t deliver_prefix = 0;
  friend bool operator==(const OnUnitSpec&, const OnUnitSpec&) = default;
};

// RandomFaults: per-round crash probability for every live, non-idle
// process.  make(rep) draws from seed + rep, so repetitions of one scenario
// explore different schedules while staying reproducible.
struct RandomSpec {
  double p = 0.0;
  int max_crashes = 0;
  std::uint64_t seed = 0;
  friend bool operator==(const RandomSpec&, const RandomSpec&) = default;
};

// ScheduledFaults: an explicit kill list -- (proc, its k-th non-idle
// action, CrashPlan) triples, applied exactly as written.  Used by tests
// and the protocol_d experiments to craft exact executions.
struct ScheduledSpec {
  std::vector<ScheduledFaults::Entry> entries;
  friend bool operator==(const ScheduledSpec&, const ScheduledSpec&) = default;
};

// adversary::AdaptiveFaults around a registered strategy
// (src/adversary/strategies.h): crash budget, optional message-fault budget
// ("jam", decision point 4 -- only the network strategies spend it), and the
// seed the stochastic strategies draw from (seed + rep per repetition; the
// deterministic ones ignore it but keep it in their identity).
struct AdaptiveSpec {
  std::string strategy;
  int max_crashes = 0;
  int max_message_faults = 0;
  std::uint64_t seed = 0;
  friend bool operator==(const AdaptiveSpec&, const AdaptiveSpec&) = default;
};

// --- The composed spec ------------------------------------------------------

struct FaultSpec {
  // Kind values double as variant indices (static_asserted in the .cpp);
  // kNone is the monostate alternative.
  enum class Kind : std::uint8_t { kNone, kCascade, kOnUnit, kRandom, kScheduled, kAdaptive };

  using Crash =
      std::variant<std::monostate, CascadeSpec, OnUnitSpec, RandomSpec, ScheduledSpec,
                   AdaptiveSpec>;

  // The crash component; monostate (the default) = no process ever fails.
  Crash crash;
  // The network component; a default NetSpec is a no-op and renders as
  // nothing.  The harness forwards it to the substrate (with seed + rep for
  // the synchronous simulator's dedicated network Rng), so crash schedule
  // and weather compose without either knowing about the other.
  NetSpec net;

  Kind kind() const { return static_cast<Kind>(crash.index()); }

  // Fresh injector for one run (the crash component only; the caller wires
  // `net` into the substrate options).  `rep` perturbs the seeded
  // adversaries so repetitions explore different schedules.
  std::unique_ptr<FaultInjector> make(std::uint64_t rep = 0) const;

  // Compact single-line form per the grammar above; parse() accepts exactly
  // the grammar and throws std::invalid_argument otherwise.
  std::string to_string() const;
  static FaultSpec parse(const std::string& text);

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;

  // Convenience constructors for the scenario generators.
  static FaultSpec none();
  static FaultSpec cascade(std::uint64_t units, int crashes, std::size_t prefix = 0,
                           bool completes = true);
  static FaultSpec on_unit(std::int64_t unit, int crashes, std::size_t prefix = 0);
  static FaultSpec random(double p, int crashes, std::uint64_t seed);
  static FaultSpec scheduled(std::vector<ScheduledFaults::Entry> entries);
  // Throws std::invalid_argument for unregistered strategy names.  `jam` is
  // the message-fault budget (0 = crash-only adversary).
  static FaultSpec adaptive(const std::string& strategy, int crashes, std::uint64_t seed = 0,
                            int jam = 0);
  // Copy of this spec with the network component replaced -- the composition
  // hook: FaultSpec::cascade(...).with_net(NetSpec::lossy(0.05, 7)).
  FaultSpec with_net(NetSpec net_spec) const;
};

}  // namespace dowork::harness
