// Reduction and rendering of scenario results: group aggregation (the
// paper's worst-over-adversaries tables), paper-style ASCII tables, and the
// machine-readable JSON report consumed by CI.
#pragma once

#include <string>
#include <vector>

#include "harness/scenario.h"
#include "sim/metrics.h"

namespace dowork::harness {

// One aggregated table row: all results sharing a group key, reduced with
// sim/metrics.h's commutative MetricsAggregate so the reduction is
// order-independent.
struct GroupAggregate {
  std::string group;
  std::string protocol;
  std::string substrate;
  std::int64_t n = 0;
  int t = 0;
  MetricsAggregate metrics;
  double wall_ms = 0;  // summed over the group's rows; tables/timing only
  // Extra columns, reduced across the group's rows: the union of keys in
  // first-occurrence order; numeric/round-formatted values reduce to their
  // max, yes/NO flags to NO-if-any-NO, anything else must agree ("mixed"
  // otherwise).
  std::vector<std::pair<std::string, std::string>> extra;
};

// Groups rows by their group key, in first-occurrence order.
std::vector<GroupAggregate> aggregate(const std::vector<ScenarioResult>& rows);

// Paper-style table over the aggregated groups.  The trailing "ms" column
// (wall-clock per group) is for humans; it never enters the JSON row data.
std::string render_table(const std::vector<GroupAggregate>& groups);

// Deterministic JSON document: {"experiment", "rows": [...], "aggregates":
// [...]} with no timestamps or machine-dependent fields, so --jobs 1 and
// --jobs N produce byte-identical output.  With include_timing, a trailing
// "timing" key is appended ({"total_ms", "groups": {group: ms},
// "per_protocol": {protocol: ms}, "rows": [{id, rep, wall_ms}]}) -- the one
// machine-dependent section, used for perf artifacts like BENCH_scale.json;
// CI's determinism diff runs without it and stays byte-exact.  per_protocol
// sums wall_ms by protocol so cross-tier comparisons survive sweeps whose
// protocol mix varies by tier (the scale family drops C_batch past t=256).
std::string to_json(const std::string& experiment, const std::vector<ScenarioResult>& rows,
                    bool include_timing = false);

// Minimal JSON string escaping (quotes, backslash, control characters).
std::string json_escape(const std::string& s);

}  // namespace dowork::harness
