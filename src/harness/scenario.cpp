#include "harness/scenario.h"

#include <chrono>
#include <exception>

#include "agreement/byzantine.h"
#include "async/protocol_a_async.h"
#include "core/runner.h"
#include "dynamic/dynamic_d.h"
#include "sharedmem/write_all.h"
#include "substrate/differential.h"
#include "substrate/socket_substrate.h"
#include "util/strings.h"

namespace dowork::harness {

const char* to_string(Substrate s) {
  switch (s) {
    case Substrate::kSync: return "sync";
    case Substrate::kByzantine: return "byzantine";
    case Substrate::kAsync: return "async";
    case Substrate::kSharedMem: return "sharedmem";
    case Substrate::kDynamic: return "dynamic";
    case Substrate::kLive: return "live";
    case Substrate::kDifferential: return "differential";
  }
  return "?";
}

std::string format_round(const Round& r) {
  if (r.fits_u64()) return std::to_string(r.to_u64_saturating());
  return "~2^" + std::to_string(r.log2_floor());
}

namespace {

void fill_sync_metrics(const RunMetrics& m, ScenarioResult& row) {
  row.work = m.work_total;
  row.messages = m.messages_total;
  row.effort = m.effort();
  row.crashes = m.crashes;
  row.last_round = m.last_retire_round;
  row.rounds = format_round(m.last_retire_round);
  row.extra.emplace_back("aps", format_round(m.available_processor_steps));
  if (m.messages_of(MsgKind::kGoAhead))
    row.extra.emplace_back("goaheads", std::to_string(m.messages_of(MsgKind::kGoAhead)));
  if (m.messages_of(MsgKind::kPoll))
    row.extra.emplace_back("polls", std::to_string(m.messages_of(MsgKind::kPoll)));
  // Network-fault columns appear only when the network actually interfered,
  // so crash-only rows render byte-identically to the pre-network harness.
  if (m.net_dropped) row.extra.emplace_back("net_dropped", std::to_string(m.net_dropped));
  if (m.net_blocked) row.extra.emplace_back("net_blocked", std::to_string(m.net_blocked));
  if (m.net_delayed) row.extra.emplace_back("net_delayed", std::to_string(m.net_delayed));
  // Aborted runs (watchdog fires, worker process dies unexpectedly, ...)
  // carry the machine-readable "key=value ..." detail string so tooling
  // (compare_bench.py --aborts) can bucket them by cause without parsing
  // prose.  Absent on every healthy row.
  if (m.aborted && !m.abort_detail.empty())
    row.extra.emplace_back("abort_detail", m.abort_detail);
}

// The crash injector for one repetition: the spec's own factory, unless the
// fuzz hook (Scenario::injector_override) replaces it.
std::unique_ptr<FaultInjector> make_injector(const Scenario& s, int rep) {
  const std::uint64_t r = static_cast<std::uint64_t>(rep);
  return s.injector_override ? s.injector_override(r) : s.faults.make(r);
}

// RunOptions shared by every execution of a registry protocol, whichever
// backend runs it (sync, live, or the differential pair).
RunOptions sync_run_options(const Scenario& s, int rep) {
  RunOptions opts;
  if (auto it = s.params.find("protocol_param"); it != s.params.end())
    opts.protocol_param = it->second;
  // The network component rides beside the crash injector; like the
  // seeded crash adversaries, repetition r re-seeds the weather.
  opts.net = s.faults.net;
  opts.net.seed += static_cast<std::uint64_t>(rep);
  // Round-parallel evaluation: only the plain simulator path consults this
  // (the live substrate runs its own executor), so forwarding it
  // unconditionally is safe.
  opts.sim_threads = s.sim_threads;
  return opts;
}

// Live-substrate knobs the scenario's params can set: the socket backend's
// transport (params["transport_tcp"] = 1 picks TCP over the UDS default).
// Harmless on the thread backend, which ignores the transport field.
substrate::LiveOptions scenario_live_options(const Scenario& s) {
  substrate::LiveOptions live;
  if (s.param_or("transport_tcp", 0) == 1) live.transport = substrate::Transport::kTcp;
  return live;
}

void run_one_rep(const Scenario& s, int rep, ScenarioResult& row) {
  switch (s.substrate) {
    case Substrate::kSync: {
      const RunOptions opts = sync_run_options(s, rep);
      if (s.force_backend != Scenario::ForceBackend::kNone) {
        // CLI backend override: same protocol, injector and verifier on a
        // live substrate's deterministic barrier schedule -- row data must
        // come out byte-identical to the simulator path below, whether the
        // workers are threads (kLive) or OS processes (kSocket).
        substrate::LiveRunResult r =
            s.force_backend == Scenario::ForceBackend::kSocket
                ? substrate::run_socket_do_all(s.protocol, s.cfg, make_injector(s, rep),
                                               opts, scenario_live_options(s))
                : substrate::run_live_do_all(s.protocol, s.cfg, make_injector(s, rep), opts);
        fill_sync_metrics(r.run.metrics, row);
        row.ok = r.run.ok();
        row.violation = r.run.violation;
        row.units_per_sec = r.stats.units_per_sec;
        return;
      }
      RunResult r = run_do_all(s.protocol, s.cfg, make_injector(s, rep), opts);
      fill_sync_metrics(r.metrics, row);
      row.ok = r.ok();
      row.violation = r.violation;
      return;
    }
    case Substrate::kLive: {
      substrate::LiveOptions live = scenario_live_options(s);
      if (s.param_or("free_sched", 0) == 1)
        live.schedule = substrate::LiveOptions::Schedule::kFree;
      // params["socket"] = 1 moves the row from worker threads to worker OS
      // processes; everything else (schedule, kill-point census, verifier)
      // is substrate-independent.
      substrate::LiveRunResult r =
          s.param_or("socket", 0) == 1
              ? substrate::run_socket_do_all(s.protocol, s.cfg, make_injector(s, rep),
                                             sync_run_options(s, rep), live)
              : substrate::run_live_do_all(s.protocol, s.cfg, make_injector(s, rep),
                                           sync_run_options(s, rep), live);
      fill_sync_metrics(r.run.metrics, row);
      row.ok = r.run.ok();
      row.violation = r.run.violation;
      row.units_per_sec = r.stats.units_per_sec;
      // The kill-point census is plan-derived, hence deterministic under the
      // deterministic schedule; free-schedule rows are nondeterministic
      // anyway (that is their point), so the columns are safe either way.
      if (r.run.metrics.crashes) {
        row.extra.emplace_back("kill_send", std::to_string(r.stats.kills_send_commit));
        row.extra.emplace_back("kill_midbcast", std::to_string(r.stats.kills_mid_broadcast));
        row.extra.emplace_back("kill_barrier", std::to_string(r.stats.kills_round_barrier));
      }
      return;
    }
    case Substrate::kDifferential: {
      substrate::DiffOptions opts;
      opts.run = sync_run_options(s, rep);
      // params["socket"] = 1 makes the non-oracle leg the socket-process
      // substrate instead of the thread substrate; the simulator stays the
      // oracle either way.
      if (s.param_or("socket", 0) == 1) {
        opts.live_backend = substrate::Backend::kSocket;
        if (s.param_or("transport_tcp", 0) == 1)
          opts.transport = substrate::Transport::kTcp;
      }
      substrate::DiffResult d = substrate::run_differential(
          find_protocol(s.protocol), s.cfg, [&] { return make_injector(s, rep); }, opts);
      // The row reports the sim leg's metrics (either leg would do: a
      // divergence fails the row before anyone reads them).
      fill_sync_metrics(d.sim.metrics, row);
      row.ok = d.ok();
      row.violation = d.divergence;
      row.units_per_sec = d.live.stats.units_per_sec;
      return;
    }
    case Substrate::kByzantine: {
      // The Byzantine (and dynamic) substrates run their own internal sims
      // and ignore the FaultSpec's network component; only sync and async
      // model network weather.
      ByzantineConfig cfg;
      cfg.n_procs = static_cast<int>(s.cfg.n);
      cfg.t_faults = s.cfg.t;
      cfg.value = s.param_or("value", 5);
      cfg.protocol = s.protocol;
      ByzantineResult r = run_byzantine(cfg, make_injector(s, rep));
      fill_sync_metrics(r.metrics, row);
      row.ok = r.agreement && r.validity;
      if (!row.ok) row.violation = "byzantine agreement/validity violated";
      row.extra.emplace_back("agreement", r.agreement ? "yes" : "NO");
      row.extra.emplace_back("validity", r.validity ? "yes" : "NO");
      row.extra.emplace_back("general_crashed", r.general_crashed ? "yes" : "no");
      return;
    }
    case Substrate::kAsync: {
      AsyncSim::Options opts;
      opts.min_delay = static_cast<ATime>(s.param_or("min_delay", 1));
      opts.max_delay = static_cast<ATime>(s.param_or("max_delay", 10));
      opts.fd_max_delay = static_cast<ATime>(s.param_or("fd_delay", 30));
      opts.seed = s.seed + static_cast<std::uint64_t>(rep);
      // Weather for the async substrate; draws come from the event seed
      // above, so repetitions already explore different weather.
      opts.net = s.faults.net;
      const std::int64_t crash_count = s.param_or("crashes", s.cfg.t - 1);
      const std::int64_t after =
          s.param_or("crash_after", ceil_div(s.cfg.n, s.cfg.t) + 3);
      std::vector<std::optional<AsyncSim::CrashSpec>> crashes(
          static_cast<std::size_t>(s.cfg.t));
      for (std::int64_t p = 0; p < crash_count; ++p)
        crashes[static_cast<std::size_t>(p)] =
            AsyncSim::CrashSpec{static_cast<std::uint64_t>(after), 2, true};
      AsyncMetrics m = run_async_protocol_a(s.cfg, opts, std::move(crashes));
      row.work = m.work_total;
      row.messages = m.messages_total;
      row.effort = m.work_total + m.messages_total;
      row.crashes = m.crashes;
      row.last_round = Round{m.end_time};
      row.rounds = std::to_string(m.end_time);
      row.ok = m.all_retired && m.all_units_done();
      if (!row.ok) row.violation = "async run incomplete";
      row.extra.emplace_back("fd_notices", std::to_string(m.fd_notices));
      if (m.net_dropped) row.extra.emplace_back("net_dropped", std::to_string(m.net_dropped));
      if (m.net_blocked) row.extra.emplace_back("net_blocked", std::to_string(m.net_blocked));
      return;
    }
    case Substrate::kSharedMem: {
      const std::int64_t crash_count = s.param_or("crashes", s.cfg.t - 1);
      const std::int64_t on_op =
          s.param_or("crash_on_op", 2 * ceil_div(s.cfg.n, s.cfg.t) + 3);
      std::vector<std::optional<SharedMemSim::CrashSpec>> crashes(
          static_cast<std::size_t>(s.cfg.t));
      for (std::int64_t p = 0; p < crash_count; ++p)
        crashes[static_cast<std::size_t>(p)] =
            SharedMemSim::CrashSpec{static_cast<std::uint64_t>(on_op), true};
      SharedMetrics m = run_write_all(s.cfg, std::move(crashes));
      row.work = m.work_total;
      row.messages = m.reads + m.writes;  // memory ops play the message role
      row.effort = m.effort();
      row.crashes = m.crashes;
      row.last_round = Round{m.last_round};
      row.rounds = std::to_string(m.last_round);
      row.ok = m.all_retired && m.all_units_done();
      if (!row.ok) row.violation = "shared-memory run incomplete";
      row.extra.emplace_back("reads", std::to_string(m.reads));
      row.extra.emplace_back("writes", std::to_string(m.writes));
      return;
    }
    case Substrate::kDynamic: {
      DynamicConfig cfg;
      cfg.t = s.cfg.t;
      const std::int64_t batches = s.param_or("batches", 6);
      const std::int64_t per_batch = s.param_or("per_batch", 4 * s.cfg.t);
      const std::uint64_t gap = static_cast<std::uint64_t>(s.param_or("gap", 25));
      cfg.max_units = batches * per_batch;
      cfg.horizon = gap * static_cast<std::uint64_t>(batches) + 8;
      std::int64_t next = 1;
      for (std::int64_t b = 0; b < batches; ++b) {
        Arrival a;
        a.round = gap * static_cast<std::uint64_t>(b);
        a.proc = static_cast<int>(b % cfg.t);
        for (std::int64_t k = 0; k < per_batch; ++k) a.units.push_back(next++);
        cfg.arrivals.push_back(a);
      }
      DynamicRunResult r = run_dynamic_do_all(cfg, make_injector(s, rep));
      row.work = r.metrics.work_total;
      row.messages = r.metrics.messages_total;
      row.effort = r.metrics.effort();
      row.crashes = r.metrics.crashes;
      row.last_round = r.metrics.last_retire_round;
      row.rounds = format_round(r.metrics.last_retire_round);
      row.ok = r.metrics.all_retired && r.all_known_work_done;
      if (!row.ok) row.violation = "dynamic run lost announced work";
      row.extra.emplace_back("lost_units", std::to_string(r.lost_units.size()));
      return;
    }
  }
  throw std::logic_error("run_one_rep: bad substrate");
}

// Bound-margin reporting (opt-in; the adversary_search and network
// families).  Every "bound_work*" / "bound_msgs*" / "bound_rounds*" param is
// compared against its measured column and adds a bound_margin_* extra
// holding the percent of the bound consumed (rounded up, so 100 can mean
// "tight" but never "over") -- the group reduction's max is then the least
// headroom.  Under params["assert_bounds"] = 1 exceeding a bound also flips
// the row to a violation (the crash-fault theorems quantify over *every*
// adversary, so an adaptive execution above a bound is a finding, not
// noise).  Under params["report_bounds"] = 1 the margins are informational
// only: network faults sit outside the crash-only theorems, so a >100%
// margin there measures degradation, not a refutation.
void assert_bounds(const Scenario& s, ScenarioResult& row, bool flip_ok) {
  auto check = [&](const std::string& key, std::int64_t bound, const char* measure,
                   std::uint64_t measured, bool fits) {
    const std::uint64_t b = static_cast<std::uint64_t>(bound);
    if (flip_ok && (!fits || measured > b)) {
      row.ok = false;
      const std::string amount = fits ? std::to_string(measured) : row.rounds;
      if (!row.violation.empty()) row.violation += "; ";
      row.violation += std::string(measure) + " " + amount + " exceeds " + key + "=" +
                       std::to_string(bound);
    }
    const std::uint64_t pct = fits ? (measured * 100 + b - 1) / b : 0;
    row.extra.emplace_back(std::string("bound_margin_") + measure,
                           fits ? std::to_string(pct) : "overflow");
  };
  for (const auto& [key, bound] : s.params) {
    if (bound <= 0) continue;
    if (key.rfind("bound_work", 0) == 0) {
      check(key, bound, "work", row.work, true);
    } else if (key.rfind("bound_msgs", 0) == 0) {
      check(key, bound, "msgs", row.messages, true);
    } else if (key.rfind("bound_rounds", 0) == 0) {
      // Rounds are exact (possibly promoted past u64, in which case any
      // int64 bound is certainly exceeded).
      const bool fits = row.last_round.fits_u64();
      check(key, bound, "rounds", fits ? row.last_round.to_u64_saturating() : 0, fits);
    }
  }
}

}  // namespace

std::vector<ScenarioResult> run_scenario(const std::string& experiment, const Scenario& s) {
  std::vector<ScenarioResult> rows;
  rows.reserve(static_cast<std::size_t>(s.repetitions));
  for (int rep = 0; rep < s.repetitions; ++rep) {
    ScenarioResult row;
    row.experiment = experiment;
    row.id = s.id;
    row.group = s.group.empty() ? s.id : s.group;
    row.protocol = s.protocol;
    row.substrate = to_string(s.substrate);
    row.faults = s.faults.to_string();
    row.n = s.cfg.n;
    row.t = s.cfg.t;
    row.seed = s.seed;
    row.rep = rep;
    const auto start = std::chrono::steady_clock::now();
    try {
      run_one_rep(s, rep, row);
    } catch (const std::exception& e) {
      row.ok = false;
      row.violation = e.what();
    }
    row.wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();
    // Paper-bound columns ride along on every row of the group, under their
    // full bound_* name (stripping the prefix would collide with the fixed
    // msgs/rounds columns).
    for (const auto& [key, value] : s.params)
      if (key.rfind("bound_", 0) == 0)
        row.extra.emplace_back(key, with_commas(static_cast<std::uint64_t>(value)));
    // Opt-in bound assertion + bound_margin_* columns (adversary_search),
    // or margins-only reporting (the network families).
    if (s.param_or("assert_bounds", 0) == 1)
      assert_bounds(s, row, /*flip_ok=*/true);
    else if (s.param_or("report_bounds", 0) == 1)
      assert_bounds(s, row, /*flip_ok=*/false);
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace dowork::harness
