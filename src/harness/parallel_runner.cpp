#include "harness/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

namespace dowork::harness {

ParallelScenarioRunner::ParallelScenarioRunner(int jobs) : jobs_(jobs) {
  if (jobs_ <= 0) jobs_ = static_cast<int>(std::thread::hardware_concurrency());
  if (jobs_ <= 0) jobs_ = 1;
}

std::vector<ScenarioResult> ParallelScenarioRunner::run(
    const std::string& experiment, const std::vector<Scenario>& scenarios) const {
  std::vector<std::vector<ScenarioResult>> per_scenario(scenarios.size());
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> done{0};
  std::mutex progress_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= scenarios.size()) return;
      per_scenario[i] = run_scenario(experiment, scenarios[i]);
      const std::size_t finished = done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (progress_) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        progress_(finished, scenarios.size());
      }
    }
  };

  const int workers = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), scenarios.size()));
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) threads.emplace_back(worker);
    for (std::thread& th : threads) th.join();
  }

  std::vector<ScenarioResult> rows;
  for (std::vector<ScenarioResult>& part : per_scenario)
    for (ScenarioResult& row : part) rows.push_back(std::move(row));
  return rows;
}

}  // namespace dowork::harness
