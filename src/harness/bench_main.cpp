#include "harness/bench_main.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "harness/experiments.h"
#include "harness/parallel_runner.h"
#include "harness/report.h"
#include "substrate/socket_substrate.h"

namespace dowork::harness {

namespace {

void print_usage(const char* argv0, const std::string& fixed_experiment) {
  std::printf("usage: %s [options]\n", argv0);
  if (fixed_experiment.empty())
    std::printf(
        "  --experiment NAMES  experiment(s) to run: one name, a comma-separated\n"
        "                      list, or 'all'; see --list\n");
  std::printf(
      "  --jobs N            worker threads (default: hardware concurrency)\n"
      "  --json PATH         write the machine-readable report to PATH ('-' = stdout)\n"
      "  --filter SUBSTR     only run scenarios whose id contains SUBSTR\n"
      "  --backend WHICH     execution backend for sync scenarios: 'sim' (default),\n"
      "                      'live' (thread substrate), or 'socket' (one worker OS\n"
      "                      process per protocol process over localhost sockets);\n"
      "                      both live backends use the deterministic schedule, so\n"
      "                      report rows are identical to sim's, with real\n"
      "                      units/sec under --timing\n"
      "  --transport WHICH   socket-backend transport: 'uds' (default) or 'tcp'\n"
      "                      (127.0.0.1); requires --backend socket\n"
      "  --sim-threads N     round-parallel evaluation inside each simulator run\n"
      "                      (default 1 = serial; reports are byte-identical at\n"
      "                      any value, so this only moves wall clock -- best for\n"
      "                      one big run, where --jobs has nothing to fan out)\n"
      "  --timing            include wall-clock timing in the JSON report\n"
      "                      (machine-dependent; breaks byte-identity across runs)\n"
      "  --list              list experiments and exit\n"
      "  --quiet             suppress the tables\n"
      "  --help              this text\n");
}

void list_experiments() {
  for (const ExperimentInfo& e : all_experiments()) {
    const std::vector<Scenario> scenarios = e.scenarios();
    bool any_sync = false;
    for (const Scenario& s : scenarios)
      if (s.substrate == Substrate::kSync) { any_sync = true; break; }
    // The marker is a trailing column, so `--list | awk '{print $1}'` style
    // scripting keeps seeing the names: experiments with sync scenarios
    // accept --backend live|socket.
    std::printf("%-20s %-40s %zu scenarios%s\n", e.name.c_str(), e.title.c_str(),
                scenarios.size(), any_sync ? "  [--backend capable]" : "");
  }
}

}  // namespace

int bench_main(int argc, char** argv, const std::string& fixed_experiment) {
  // Socket-substrate workers re-execute this very binary; a worker argv
  // never looks like a bench invocation, so the hook is a no-op otherwise.
  if (int code = substrate::maybe_socket_worker(argc, argv); code >= 0) return code;
  BenchOptions opt;
  opt.experiment = fixed_experiment;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--experiment") {
      if (!fixed_experiment.empty()) {
        std::fprintf(stderr, "%s: this binary is pinned to experiment '%s'\n", argv[0],
                     fixed_experiment.c_str());
        return 2;
      }
      opt.experiment = next();
    } else if (arg == "--jobs") {
      const char* value = next();
      char* end = nullptr;
      opt.jobs = static_cast<int>(std::strtol(value, &end, 10));
      if (end == value || *end != '\0' || opt.jobs < 0) {
        std::fprintf(stderr, "%s: --jobs wants a non-negative integer, got '%s'\n", argv[0],
                     value);
        return 2;
      }
    } else if (arg == "--json") {
      opt.json_path = next();
    } else if (arg == "--filter") {
      opt.filter = next();
    } else if (arg == "--backend") {
      const std::string value = next();
      if (value == "live") {
        opt.backend = Scenario::ForceBackend::kLive;
      } else if (value == "socket") {
        opt.backend = Scenario::ForceBackend::kSocket;
      } else if (value == "sim") {
        opt.backend = Scenario::ForceBackend::kNone;
      } else {
        std::fprintf(stderr, "%s: --backend wants 'sim', 'live' or 'socket', got '%s'\n",
                     argv[0], value.c_str());
        return 2;
      }
    } else if (arg == "--transport") {
      const std::string value = next();
      if (value == "tcp") {
        opt.transport_tcp = true;
      } else if (value == "uds") {
        opt.transport_tcp = false;
      } else {
        std::fprintf(stderr, "%s: --transport wants 'uds' or 'tcp', got '%s'\n", argv[0],
                     value.c_str());
        return 2;
      }
    } else if (arg == "--sim-threads") {
      const char* value = next();
      char* end = nullptr;
      opt.sim_threads = static_cast<int>(std::strtol(value, &end, 10));
      if (end == value || *end != '\0' || opt.sim_threads < 1) {
        std::fprintf(stderr, "%s: --sim-threads wants a positive integer, got '%s'\n", argv[0],
                     value);
        return 2;
      }
    } else if (arg == "--timing") {
      opt.timing = true;
    } else if (arg == "--list") {
      opt.list_only = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(argv[0], fixed_experiment);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg.c_str());
      print_usage(argv[0], fixed_experiment);
      return 2;
    }
  }

  if (opt.transport_tcp && opt.backend != Scenario::ForceBackend::kSocket) {
    std::fprintf(stderr, "%s: --transport requires --backend socket\n", argv[0]);
    return 2;
  }
  if (opt.list_only) {
    list_experiments();
    return 0;
  }
  if (opt.experiment.empty()) {
    std::fprintf(stderr, "%s: pick an experiment with --experiment NAME (see --list)\n",
                 argv[0]);
    return 2;
  }

  std::vector<const ExperimentInfo*> selected;
  if (opt.experiment == "all") {
    for (const ExperimentInfo& e : all_experiments()) selected.push_back(&e);
  } else {
    // One name or a comma-separated list, kept in the order given (the JSON
    // array preserves it, so multi-experiment artifacts are reproducible).
    std::size_t pos = 0;
    while (pos <= opt.experiment.size()) {
      const std::size_t comma = opt.experiment.find(',', pos);
      const std::string name = opt.experiment.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      pos = comma == std::string::npos ? opt.experiment.size() + 1 : comma + 1;
      if (name.empty()) continue;
      const ExperimentInfo* e = find_experiment(name);
      if (!e) {
        std::fprintf(stderr, "%s: unknown experiment '%s' (see --list)\n", argv[0],
                     name.c_str());
        return 2;
      }
      selected.push_back(e);
    }
    if (selected.empty()) {
      std::fprintf(stderr, "%s: --experiment got an empty list\n", argv[0]);
      return 2;
    }
  }

  ParallelScenarioRunner runner(opt.jobs);
  std::vector<std::string> json_docs;
  bool all_ok = true;
  bool filter_matched_any = false;
  for (const ExperimentInfo* e : selected) {
    std::vector<Scenario> scenarios = e->scenarios();
    if (!opt.filter.empty()) {
      std::erase_if(scenarios, [&](const Scenario& s) {
        return s.id.find(opt.filter) == std::string::npos;
      });
      if (scenarios.empty()) {
        // With a single experiment a no-match filter is a hard error; across
        // several (--experiment all) it just skips the experiments it does
        // not touch -- erroring only if it matched nothing anywhere (below).
        if (selected.size() == 1) {
          std::fprintf(stderr, "%s: --filter '%s' matches no scenario of '%s'\n", argv[0],
                       opt.filter.c_str(), e->name.c_str());
          return 2;
        }
        continue;
      }
      filter_matched_any = true;
    }
    if (opt.backend != Scenario::ForceBackend::kNone)
      for (Scenario& s : scenarios)
        if (s.substrate == Substrate::kSync) {
          s.force_backend = opt.backend;
          if (opt.transport_tcp) s.params["transport_tcp"] = 1;
        }
    if (opt.sim_threads > 1)
      for (Scenario& s : scenarios)
        if (s.substrate == Substrate::kSync && s.force_backend == Scenario::ForceBackend::kNone)
          s.sim_threads = opt.sim_threads;
    const auto start = std::chrono::steady_clock::now();
    const std::vector<ScenarioResult> rows = runner.run(e->name, scenarios);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (!opt.quiet) {
      std::printf("\n=== %s -- %s ===\n%s\n\n", e->name.c_str(), e->title.c_str(),
                  e->claim.c_str());
      std::printf("%s", render_table(aggregate(rows)).c_str());
      std::printf("\n%zu scenarios, %zu runs on %d thread(s) in %.2fs\n", scenarios.size(),
                  rows.size(), runner.jobs(), secs);
    }
    for (const ScenarioResult& row : rows)
      if (!row.ok) {
        all_ok = false;
        std::fprintf(stderr, "FAILED: %s/%s rep %d: %s\n", e->name.c_str(), row.id.c_str(),
                     row.rep, row.violation.c_str());
      }
    if (!opt.json_path.empty()) json_docs.push_back(to_json(e->name, rows, opt.timing));
  }

  if (!opt.filter.empty() && selected.size() > 1 && !filter_matched_any) {
    std::fprintf(stderr, "%s: --filter '%s' matches no scenario of any experiment\n", argv[0],
                 opt.filter.c_str());
    return 2;
  }

  if (!opt.json_path.empty()) {
    std::string doc;
    if (json_docs.size() == 1) {
      doc = json_docs.front() + "\n";
    } else {
      doc = "[";
      for (std::size_t i = 0; i < json_docs.size(); ++i) {
        if (i) doc += ',';
        doc += json_docs[i];
      }
      doc += "]\n";
    }
    if (opt.json_path == "-") {
      std::fwrite(doc.data(), 1, doc.size(), stdout);
    } else {
      std::ofstream out(opt.json_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "%s: cannot write %s\n", argv[0], opt.json_path.c_str());
        return 1;
      }
      out << doc;
    }
  }
  return all_ok ? 0 : 1;
}

}  // namespace dowork::harness
