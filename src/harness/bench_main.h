// Shared CLI driver for the benchmark executables.
//
// The unified `dowork_bench` binary and the thin per-experiment wrappers
// (bench_protocol_a, bench_checkpoint_sweep, ...) all funnel into
// bench_main(): parse flags, expand experiments to scenarios, fan out on the
// ParallelScenarioRunner, print paper-style tables, optionally write the
// deterministic JSON report.
#pragma once

#include <string>

namespace dowork::harness {

struct BenchOptions {
  // Experiment names to run: one name, a comma-separated list, or "all";
  // empty = the fixed experiment of a wrapper binary.
  std::string experiment;
  int jobs = 0;           // 0 = hardware concurrency
  std::string json_path;  // empty = no JSON output
  std::string filter;     // substring over scenario ids; empty = keep all
  bool list_only = false;
  bool quiet = false;   // suppress tables (JSON/e2e timing only)
  bool timing = false;  // include the machine-dependent "timing" JSON key
  // --backend live: execute every sync scenario on the live thread
  // substrate (deterministic schedule) instead of the simulator.  The
  // deterministic report is byte-identical by the oracle contract -- CI
  // diffs the two JSONs -- and --timing additionally carries units_per_sec.
  bool live_backend = false;
  // --sim-threads N: round-parallel evaluation inside each simulator run
  // (RoundPool).  Orthogonal to --jobs (scenarios x threads-within-a-run);
  // byte-identical reports at any value, by the ordered-commit contract.
  int sim_threads = 1;
};

// Parses argv (flags: --experiment NAME[,NAME...], --jobs N, --json PATH,
// --filter SUBSTR, --backend sim|live, --sim-threads N, --timing, --list,
// --quiet, --help).
// `fixed_experiment` pins a wrapper binary to its experiment (its
// --experiment flag is rejected).  Returns the process exit code.
int bench_main(int argc, char** argv, const std::string& fixed_experiment = "");

}  // namespace dowork::harness
