// Shared CLI driver for the benchmark executables.
//
// The unified `dowork_bench` binary and the thin per-experiment wrappers
// (bench_protocol_a, bench_checkpoint_sweep, ...) all funnel into
// bench_main(): parse flags, expand experiments to scenarios, fan out on the
// ParallelScenarioRunner, print paper-style tables, optionally write the
// deterministic JSON report.
#pragma once

#include <string>

#include "harness/scenario.h"

namespace dowork::harness {

struct BenchOptions {
  // Experiment names to run: one name, a comma-separated list, or "all";
  // empty = the fixed experiment of a wrapper binary.
  std::string experiment;
  int jobs = 0;           // 0 = hardware concurrency
  std::string json_path;  // empty = no JSON output
  std::string filter;     // substring over scenario ids; empty = keep all
  bool list_only = false;
  bool quiet = false;   // suppress tables (JSON/e2e timing only)
  bool timing = false;  // include the machine-dependent "timing" JSON key
  // --backend live|socket: execute every sync scenario on a live substrate
  // (deterministic barrier schedule) instead of the simulator -- worker
  // threads for live, worker OS processes over localhost sockets for
  // socket.  The deterministic report is byte-identical on every backend by
  // the oracle contract -- CI diffs the JSONs -- and --timing additionally
  // carries units_per_sec.
  Scenario::ForceBackend backend = Scenario::ForceBackend::kNone;
  // --transport tcp: the socket backend speaks TCP over 127.0.0.1 instead
  // of the default Unix-domain sockets.  Only meaningful with
  // --backend socket (rejected otherwise, to catch typos).
  bool transport_tcp = false;
  // --sim-threads N: round-parallel evaluation inside each simulator run
  // (RoundPool).  Orthogonal to --jobs (scenarios x threads-within-a-run);
  // byte-identical reports at any value, by the ordered-commit contract.
  int sim_threads = 1;
};

// Parses argv (flags: --experiment NAME[,NAME...], --jobs N, --json PATH,
// --filter SUBSTR, --backend sim|live|socket, --transport uds|tcp,
// --sim-threads N, --timing, --list, --quiet, --help).  Socket-substrate
// worker re-executions (substrate::maybe_socket_worker) are intercepted
// before flag parsing, so every bench binary can serve as its own worker
// image.
// `fixed_experiment` pins a wrapper binary to its experiment (its
// --experiment flag is rejected).  Returns the process exit code.
int bench_main(int argc, char** argv, const std::string& fixed_experiment = "");

}  // namespace dowork::harness
