#include "harness/fault_spec.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "adversary/strategies.h"

namespace dowork::harness {

// The grammar names kinds by variant index; keep the enum and the variant in
// lockstep.
static_assert(static_cast<std::size_t>(FaultSpec::Kind::kNone) == 0);
static_assert(std::is_same_v<std::variant_alternative_t<0, FaultSpec::Crash>, std::monostate>);
static_assert(std::is_same_v<
              std::variant_alternative_t<static_cast<std::size_t>(FaultSpec::Kind::kCascade),
                                         FaultSpec::Crash>,
              CascadeSpec>);
static_assert(std::is_same_v<
              std::variant_alternative_t<static_cast<std::size_t>(FaultSpec::Kind::kOnUnit),
                                         FaultSpec::Crash>,
              OnUnitSpec>);
static_assert(std::is_same_v<
              std::variant_alternative_t<static_cast<std::size_t>(FaultSpec::Kind::kRandom),
                                         FaultSpec::Crash>,
              RandomSpec>);
static_assert(std::is_same_v<
              std::variant_alternative_t<static_cast<std::size_t>(FaultSpec::Kind::kScheduled),
                                         FaultSpec::Crash>,
              ScheduledSpec>);
static_assert(std::is_same_v<
              std::variant_alternative_t<static_cast<std::size_t>(FaultSpec::Kind::kAdaptive),
                                         FaultSpec::Crash>,
              AdaptiveSpec>);

namespace {

std::string prefix_str(std::size_t prefix) {
  return prefix == SIZE_MAX ? "all" : std::to_string(prefix);
}

std::size_t parse_prefix(const std::string& s) {
  if (s == "all") return SIZE_MAX;
  return static_cast<std::size_t>(std::stoull(s));
}

// Shortest decimal form of p that parses back to the identical double.
std::string double_str(double v) {
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

// Splits "key=value,key=value,..." content; throws on malformed input.
std::vector<std::pair<std::string, std::string>> split_kv(const std::string& body) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t comma = body.find(',', pos);
    if (comma == std::string::npos) comma = body.size();
    const std::string item = body.substr(pos, comma - pos);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("FaultSpec: malformed field '" + item + "'");
    out.emplace_back(item.substr(0, eq), item.substr(eq + 1));
    pos = comma + 1;
  }
  return out;
}

std::string find_kv(const std::vector<std::pair<std::string, std::string>>& kvs,
                    const std::string& key) {
  for (const auto& [k, v] : kvs)
    if (k == key) return v;
  throw std::invalid_argument("FaultSpec: missing field '" + key + "'");
}

bool has_kv(const std::vector<std::pair<std::string, std::string>>& kvs,
            const std::string& key) {
  for (const auto& [k, v] : kvs)
    if (k == key) return true;
  return false;
}

// Renders the crash component alone -- exactly the v1 grammar, so every
// pre-network spec's string is unchanged byte for byte.
std::string crash_to_string(const FaultSpec::Crash& crash) {
  char buf[160];
  switch (static_cast<FaultSpec::Kind>(crash.index())) {
    case FaultSpec::Kind::kNone:
      return "none";
    case FaultSpec::Kind::kCascade: {
      const CascadeSpec& c = std::get<CascadeSpec>(crash);
      std::snprintf(buf, sizeof buf, "cascade(units=%" PRIu64 ",crashes=%d,prefix=%s,completes=%d)",
                    c.units_before_crash, c.max_crashes, prefix_str(c.deliver_prefix).c_str(),
                    c.crash_completes_unit ? 1 : 0);
      return buf;
    }
    case FaultSpec::Kind::kOnUnit: {
      const OnUnitSpec& c = std::get<OnUnitSpec>(crash);
      std::snprintf(buf, sizeof buf, "on_unit(unit=%lld,crashes=%d,prefix=%s)",
                    static_cast<long long>(c.unit), c.max_crashes,
                    prefix_str(c.deliver_prefix).c_str());
      return buf;
    }
    case FaultSpec::Kind::kRandom: {
      const RandomSpec& c = std::get<RandomSpec>(crash);
      std::snprintf(buf, sizeof buf, "random(p=%s,crashes=%d,seed=%" PRIu64 ")",
                    double_str(c.p).c_str(), c.max_crashes, c.seed);
      return buf;
    }
    case FaultSpec::Kind::kScheduled: {
      const ScheduledSpec& c = std::get<ScheduledSpec>(crash);
      std::string out = "scheduled(";
      for (std::size_t i = 0; i < c.entries.size(); ++i) {
        const ScheduledFaults::Entry& e = c.entries[i];
        if (i) out += ';';
        out += std::to_string(e.proc) + "@" + std::to_string(e.on_nth_action) + ":" +
               (e.plan.work_completes ? "1" : "0") + ":" + prefix_str(e.plan.deliver_prefix);
      }
      return out + ")";
    }
    case FaultSpec::Kind::kAdaptive: {
      const AdaptiveSpec& c = std::get<AdaptiveSpec>(crash);
      if (c.max_message_faults > 0)
        std::snprintf(buf, sizeof buf, "adaptive:%s(crashes=%d,jam=%d,seed=%" PRIu64 ")",
                      c.strategy.c_str(), c.max_crashes, c.max_message_faults, c.seed);
      else
        std::snprintf(buf, sizeof buf, "adaptive:%s(crashes=%d,seed=%" PRIu64 ")",
                      c.strategy.c_str(), c.max_crashes, c.seed);
      return buf;
    }
  }
  throw std::logic_error("FaultSpec: bad kind");
}

// Parses one crash component -- the v1 grammar.
FaultSpec::Crash crash_parse(const std::string& text) {
  if (text == "none") return std::monostate{};
  const std::size_t open = text.find('(');
  if (open == std::string::npos || text.back() != ')')
    throw std::invalid_argument("FaultSpec: malformed '" + text + "'");
  const std::string name = text.substr(0, open);
  const std::string body = text.substr(open + 1, text.size() - open - 2);

  if (name == "cascade") {
    const auto kvs = split_kv(body);
    CascadeSpec c;
    c.units_before_crash = std::stoull(find_kv(kvs, "units"));
    c.max_crashes = std::stoi(find_kv(kvs, "crashes"));
    c.deliver_prefix = parse_prefix(find_kv(kvs, "prefix"));
    c.crash_completes_unit = find_kv(kvs, "completes") == "1";
    return c;
  }
  if (name == "on_unit") {
    const auto kvs = split_kv(body);
    OnUnitSpec c;
    c.unit = std::stoll(find_kv(kvs, "unit"));
    c.max_crashes = std::stoi(find_kv(kvs, "crashes"));
    c.deliver_prefix = parse_prefix(find_kv(kvs, "prefix"));
    return c;
  }
  if (name == "random") {
    const auto kvs = split_kv(body);
    RandomSpec c;
    c.p = std::strtod(find_kv(kvs, "p").c_str(), nullptr);
    c.max_crashes = std::stoi(find_kv(kvs, "crashes"));
    c.seed = std::stoull(find_kv(kvs, "seed"));
    return c;
  }
  if (name.rfind("adaptive:", 0) == 0) {
    const auto kvs = split_kv(body);
    AdaptiveSpec c;
    c.strategy = name.substr(std::strlen("adaptive:"));
    if (!adversary::is_strategy(c.strategy))
      throw std::invalid_argument("FaultSpec: unknown adaptive strategy '" + c.strategy + "'");
    c.max_crashes = std::stoi(find_kv(kvs, "crashes"));
    if (has_kv(kvs, "jam")) {
      c.max_message_faults = std::stoi(find_kv(kvs, "jam"));
      if (c.max_message_faults <= 0)
        throw std::invalid_argument("FaultSpec: jam budget must be positive (omit when 0)");
    }
    c.seed = std::stoull(find_kv(kvs, "seed"));
    return c;
  }
  if (name == "scheduled") {
    ScheduledSpec c;
    std::size_t pos = 0;
    while (pos < body.size()) {
      std::size_t semi = body.find(';', pos);
      if (semi == std::string::npos) semi = body.size();
      const std::string item = body.substr(pos, semi - pos);
      const std::size_t at = item.find('@');
      const std::size_t c1 = item.find(':', at);
      const std::size_t c2 = item.find(':', c1 + 1);
      if (at == std::string::npos || c1 == std::string::npos || c2 == std::string::npos)
        throw std::invalid_argument("FaultSpec: malformed schedule entry '" + item + "'");
      ScheduledFaults::Entry e;
      e.proc = std::stoi(item.substr(0, at));
      e.on_nth_action = std::stoull(item.substr(at + 1, c1 - at - 1));
      e.plan.work_completes = item.substr(c1 + 1, c2 - c1 - 1) == "1";
      e.plan.deliver_prefix = parse_prefix(item.substr(c2 + 1));
      c.entries.push_back(e);
      pos = semi + 1;
    }
    return c;
  }
  throw std::invalid_argument("FaultSpec: unknown adversary '" + name + "'");
}

}  // namespace

std::unique_ptr<FaultInjector> FaultSpec::make(std::uint64_t rep) const {
  switch (kind()) {
    case Kind::kNone:
      return std::make_unique<NoFaults>();
    case Kind::kCascade: {
      const CascadeSpec& c = std::get<CascadeSpec>(crash);
      return std::make_unique<WorkCascadeFaults>(c.units_before_crash, c.max_crashes,
                                                 c.deliver_prefix, c.crash_completes_unit);
    }
    case Kind::kOnUnit: {
      const OnUnitSpec& c = std::get<OnUnitSpec>(crash);
      return std::make_unique<CrashOnUnitFaults>(c.unit, c.max_crashes, c.deliver_prefix);
    }
    case Kind::kRandom: {
      const RandomSpec& c = std::get<RandomSpec>(crash);
      return std::make_unique<RandomFaults>(c.p, c.max_crashes, c.seed + rep);
    }
    case Kind::kScheduled:
      return std::make_unique<ScheduledFaults>(std::get<ScheduledSpec>(crash).entries);
    case Kind::kAdaptive: {
      const AdaptiveSpec& c = std::get<AdaptiveSpec>(crash);
      return std::make_unique<adversary::AdaptiveFaults>(
          adversary::make_strategy(c.strategy, c.seed + rep), c.max_crashes,
          c.max_message_faults);
    }
  }
  throw std::logic_error("FaultSpec: bad kind");
}

std::string FaultSpec::to_string() const {
  if (net.is_noop()) return crash_to_string(crash);
  if (kind() == Kind::kNone) return "net=" + net.to_string();
  return "crash=" + crash_to_string(crash) + ";net=" + net.to_string();
}

FaultSpec FaultSpec::parse(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("FaultSpec: empty spec");
  // Split into top-level parts on ';' at paren depth 0 (scheduled entries
  // and partition windows keep their inner semicolons).
  std::vector<std::string> parts;
  std::size_t start = 0;
  int depth = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    else if (text[i] == ')') --depth;
    else if (text[i] == ';' && depth == 0) {
      parts.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (depth != 0) throw std::invalid_argument("FaultSpec: unbalanced parens in '" + text + "'");
  parts.push_back(text.substr(start));
  if (parts.size() > 2)
    throw std::invalid_argument("FaultSpec: too many components in '" + text + "'");

  FaultSpec spec;
  bool have_crash = false, have_net = false;
  for (const std::string& part : parts) {
    if (part.empty()) throw std::invalid_argument("FaultSpec: empty component in '" + text + "'");
    if (part.rfind("net=", 0) == 0) {
      if (have_net)
        throw std::invalid_argument("FaultSpec: duplicate net component in '" + text + "'");
      have_net = true;
      spec.net = NetSpec::parse(part.substr(std::strlen("net=")));
    } else {
      if (have_crash)
        throw std::invalid_argument("FaultSpec: duplicate crash component in '" + text + "'");
      have_crash = true;
      const bool tagged = part.rfind("crash=", 0) == 0;
      spec.crash = crash_parse(tagged ? part.substr(std::strlen("crash=")) : part);
    }
  }
  return spec;
}

FaultSpec FaultSpec::none() { return FaultSpec{}; }

FaultSpec FaultSpec::cascade(std::uint64_t units, int crashes, std::size_t prefix,
                             bool completes) {
  FaultSpec s;
  s.crash = CascadeSpec{units, crashes, prefix, completes};
  return s;
}

FaultSpec FaultSpec::on_unit(std::int64_t unit, int crashes, std::size_t prefix) {
  FaultSpec s;
  s.crash = OnUnitSpec{unit, crashes, prefix};
  return s;
}

FaultSpec FaultSpec::random(double p, int crashes, std::uint64_t seed) {
  FaultSpec s;
  s.crash = RandomSpec{p, crashes, seed};
  return s;
}

FaultSpec FaultSpec::scheduled(std::vector<ScheduledFaults::Entry> entries) {
  FaultSpec s;
  s.crash = ScheduledSpec{std::move(entries)};
  return s;
}

FaultSpec FaultSpec::adaptive(const std::string& strategy, int crashes, std::uint64_t seed,
                              int jam) {
  if (!adversary::is_strategy(strategy))
    throw std::invalid_argument("FaultSpec: unknown adaptive strategy '" + strategy + "'");
  FaultSpec s;
  s.crash = AdaptiveSpec{strategy, crashes, jam, seed};
  return s;
}

FaultSpec FaultSpec::with_net(NetSpec net_spec) const {
  FaultSpec s = *this;
  s.net = std::move(net_spec);
  return s;
}

}  // namespace dowork::harness
