#include "harness/fault_spec.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "adversary/strategies.h"

namespace dowork::harness {

namespace {

std::string prefix_str(std::size_t prefix) {
  return prefix == SIZE_MAX ? "all" : std::to_string(prefix);
}

std::size_t parse_prefix(const std::string& s) {
  if (s == "all") return SIZE_MAX;
  return static_cast<std::size_t>(std::stoull(s));
}

// Shortest decimal form of p that parses back to the identical double.
std::string double_str(double v) {
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

// Splits "key=value,key=value,..." content; throws on malformed input.
std::vector<std::pair<std::string, std::string>> split_kv(const std::string& body) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t comma = body.find(',', pos);
    if (comma == std::string::npos) comma = body.size();
    const std::string item = body.substr(pos, comma - pos);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("FaultSpec: malformed field '" + item + "'");
    out.emplace_back(item.substr(0, eq), item.substr(eq + 1));
    pos = comma + 1;
  }
  return out;
}

std::string find_kv(const std::vector<std::pair<std::string, std::string>>& kvs,
                    const std::string& key) {
  for (const auto& [k, v] : kvs)
    if (k == key) return v;
  throw std::invalid_argument("FaultSpec: missing field '" + key + "'");
}

}  // namespace

std::unique_ptr<FaultInjector> FaultSpec::make(std::uint64_t rep) const {
  switch (kind) {
    case Kind::kNone:
      return std::make_unique<NoFaults>();
    case Kind::kCascade:
      return std::make_unique<WorkCascadeFaults>(units_before_crash, max_crashes,
                                                 deliver_prefix, crash_completes_unit);
    case Kind::kOnUnit:
      return std::make_unique<CrashOnUnitFaults>(unit, max_crashes, deliver_prefix);
    case Kind::kRandom:
      return std::make_unique<RandomFaults>(p, max_crashes, seed + rep);
    case Kind::kScheduled:
      return std::make_unique<ScheduledFaults>(entries);
    case Kind::kAdaptive:
      return std::make_unique<adversary::AdaptiveFaults>(
          adversary::make_strategy(strategy, seed + rep), max_crashes);
  }
  throw std::logic_error("FaultSpec: bad kind");
}

std::string FaultSpec::to_string() const {
  char buf[160];
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kCascade:
      std::snprintf(buf, sizeof buf, "cascade(units=%" PRIu64 ",crashes=%d,prefix=%s,completes=%d)",
                    units_before_crash, max_crashes, prefix_str(deliver_prefix).c_str(),
                    crash_completes_unit ? 1 : 0);
      return buf;
    case Kind::kOnUnit:
      std::snprintf(buf, sizeof buf, "on_unit(unit=%lld,crashes=%d,prefix=%s)",
                    static_cast<long long>(unit), max_crashes,
                    prefix_str(deliver_prefix).c_str());
      return buf;
    case Kind::kRandom:
      std::snprintf(buf, sizeof buf, "random(p=%s,crashes=%d,seed=%" PRIu64 ")",
                    double_str(p).c_str(), max_crashes, seed);
      return buf;
    case Kind::kScheduled: {
      std::string out = "scheduled(";
      for (std::size_t i = 0; i < entries.size(); ++i) {
        const ScheduledFaults::Entry& e = entries[i];
        if (i) out += ';';
        out += std::to_string(e.proc) + "@" + std::to_string(e.on_nth_action) + ":" +
               (e.plan.work_completes ? "1" : "0") + ":" + prefix_str(e.plan.deliver_prefix);
      }
      return out + ")";
    }
    case Kind::kAdaptive:
      std::snprintf(buf, sizeof buf, "adaptive:%s(crashes=%d,seed=%" PRIu64 ")",
                    strategy.c_str(), max_crashes, seed);
      return buf;
  }
  throw std::logic_error("FaultSpec: bad kind");
}

FaultSpec FaultSpec::parse(const std::string& text) {
  if (text == "none") return FaultSpec{};
  const std::size_t open = text.find('(');
  if (open == std::string::npos || text.back() != ')')
    throw std::invalid_argument("FaultSpec: malformed '" + text + "'");
  const std::string name = text.substr(0, open);
  const std::string body = text.substr(open + 1, text.size() - open - 2);

  FaultSpec spec;
  if (name == "cascade") {
    const auto kvs = split_kv(body);
    spec.kind = Kind::kCascade;
    spec.units_before_crash = std::stoull(find_kv(kvs, "units"));
    spec.max_crashes = std::stoi(find_kv(kvs, "crashes"));
    spec.deliver_prefix = parse_prefix(find_kv(kvs, "prefix"));
    spec.crash_completes_unit = find_kv(kvs, "completes") == "1";
  } else if (name == "on_unit") {
    const auto kvs = split_kv(body);
    spec.kind = Kind::kOnUnit;
    spec.unit = std::stoll(find_kv(kvs, "unit"));
    spec.max_crashes = std::stoi(find_kv(kvs, "crashes"));
    spec.deliver_prefix = parse_prefix(find_kv(kvs, "prefix"));
  } else if (name == "random") {
    const auto kvs = split_kv(body);
    spec.kind = Kind::kRandom;
    spec.p = std::strtod(find_kv(kvs, "p").c_str(), nullptr);
    spec.max_crashes = std::stoi(find_kv(kvs, "crashes"));
    spec.seed = std::stoull(find_kv(kvs, "seed"));
  } else if (name.rfind("adaptive:", 0) == 0) {
    const auto kvs = split_kv(body);
    spec.kind = Kind::kAdaptive;
    spec.strategy = name.substr(std::strlen("adaptive:"));
    if (!adversary::is_strategy(spec.strategy))
      throw std::invalid_argument("FaultSpec: unknown adaptive strategy '" + spec.strategy +
                                  "'");
    spec.max_crashes = std::stoi(find_kv(kvs, "crashes"));
    spec.seed = std::stoull(find_kv(kvs, "seed"));
  } else if (name == "scheduled") {
    spec.kind = Kind::kScheduled;
    std::size_t pos = 0;
    while (pos < body.size()) {
      std::size_t semi = body.find(';', pos);
      if (semi == std::string::npos) semi = body.size();
      const std::string item = body.substr(pos, semi - pos);
      const std::size_t at = item.find('@');
      const std::size_t c1 = item.find(':', at);
      const std::size_t c2 = item.find(':', c1 + 1);
      if (at == std::string::npos || c1 == std::string::npos || c2 == std::string::npos)
        throw std::invalid_argument("FaultSpec: malformed schedule entry '" + item + "'");
      ScheduledFaults::Entry e;
      e.proc = std::stoi(item.substr(0, at));
      e.on_nth_action = std::stoull(item.substr(at + 1, c1 - at - 1));
      e.plan.work_completes = item.substr(c1 + 1, c2 - c1 - 1) == "1";
      e.plan.deliver_prefix = parse_prefix(item.substr(c2 + 1));
      spec.entries.push_back(e);
      pos = semi + 1;
    }
  } else {
    throw std::invalid_argument("FaultSpec: unknown adversary '" + name + "'");
  }
  return spec;
}

bool operator==(const FaultSpec& a, const FaultSpec& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case FaultSpec::Kind::kNone:
      return true;
    case FaultSpec::Kind::kCascade:
      return a.units_before_crash == b.units_before_crash && a.max_crashes == b.max_crashes &&
             a.deliver_prefix == b.deliver_prefix &&
             a.crash_completes_unit == b.crash_completes_unit;
    case FaultSpec::Kind::kOnUnit:
      return a.unit == b.unit && a.max_crashes == b.max_crashes &&
             a.deliver_prefix == b.deliver_prefix;
    case FaultSpec::Kind::kRandom:
      return a.p == b.p && a.max_crashes == b.max_crashes && a.seed == b.seed;
    case FaultSpec::Kind::kAdaptive:
      return a.strategy == b.strategy && a.max_crashes == b.max_crashes && a.seed == b.seed;
    case FaultSpec::Kind::kScheduled:
      if (a.entries.size() != b.entries.size()) return false;
      for (std::size_t i = 0; i < a.entries.size(); ++i) {
        const ScheduledFaults::Entry &x = a.entries[i], &y = b.entries[i];
        if (x.proc != y.proc || x.on_nth_action != y.on_nth_action ||
            x.plan.work_completes != y.plan.work_completes ||
            x.plan.deliver_prefix != y.plan.deliver_prefix)
          return false;
      }
      return true;
  }
  return false;
}

FaultSpec FaultSpec::none() { return FaultSpec{}; }

FaultSpec FaultSpec::cascade(std::uint64_t units, int crashes, std::size_t prefix,
                             bool completes) {
  FaultSpec s;
  s.kind = Kind::kCascade;
  s.units_before_crash = units;
  s.max_crashes = crashes;
  s.deliver_prefix = prefix;
  s.crash_completes_unit = completes;
  return s;
}

FaultSpec FaultSpec::on_unit(std::int64_t unit, int crashes, std::size_t prefix) {
  FaultSpec s;
  s.kind = Kind::kOnUnit;
  s.unit = unit;
  s.max_crashes = crashes;
  s.deliver_prefix = prefix;
  return s;
}

FaultSpec FaultSpec::random(double p, int crashes, std::uint64_t seed) {
  FaultSpec s;
  s.kind = Kind::kRandom;
  s.p = p;
  s.max_crashes = crashes;
  s.seed = seed;
  return s;
}

FaultSpec FaultSpec::scheduled(std::vector<ScheduledFaults::Entry> entries) {
  FaultSpec s;
  s.kind = Kind::kScheduled;
  s.entries = std::move(entries);
  return s;
}

FaultSpec FaultSpec::adaptive(const std::string& strategy, int crashes, std::uint64_t seed) {
  if (!adversary::is_strategy(strategy))
    throw std::invalid_argument("FaultSpec: unknown adaptive strategy '" + strategy + "'");
  FaultSpec s;
  s.kind = Kind::kAdaptive;
  s.strategy = strategy;
  s.max_crashes = crashes;
  s.seed = seed;
  return s;
}

}  // namespace dowork::harness
