// Thread-pool fan-out over independent scenarios.
//
// Simulated executions share no state (each builds its own processes, fault
// injector and RNG), so a sweep is embarrassingly parallel.  The runner
// hands scenario INDICES to worker threads through an atomic cursor and
// writes each result into its input slot, so the output order -- and
// therefore every aggregate and JSON byte produced from it -- is the input
// order, independent of thread count and completion interleaving.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "harness/scenario.h"

namespace dowork::harness {

class ParallelScenarioRunner {
 public:
  // jobs <= 0 selects std::thread::hardware_concurrency().
  explicit ParallelScenarioRunner(int jobs = 0);

  int jobs() const { return jobs_; }

  // Optional progress hook, called after each scenario completes (from
  // worker threads, serialized by the runner).
  using Progress = std::function<void(std::size_t done, std::size_t total)>;
  void set_progress(Progress progress) { progress_ = std::move(progress); }

  // Runs every scenario (all repetitions) and returns the flattened rows in
  // scenario order.  Exceptions inside a scenario become ok=false rows
  // (run_scenario already guarantees this); exceptions in the harness
  // itself propagate.
  std::vector<ScenarioResult> run(const std::string& experiment,
                                  const std::vector<Scenario>& scenarios) const;

 private:
  int jobs_;
  Progress progress_;
};

}  // namespace dowork::harness
