// Declarative scenarios: one simulated execution, described as a value.
//
// The experiment registry (harness/experiments.h) expands each named
// experiment into a vector of Scenarios; the ParallelScenarioRunner fans
// them out across threads; run_scenario() executes one and reduces it to a
// flat ScenarioResult row.  Because a Scenario is pure data (protocol name,
// config, fault spec, seed), the same vector produces byte-identical
// results at any parallelism.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/work.h"
#include "harness/fault_spec.h"

namespace dowork::harness {

// Which simulation substrate executes the scenario.  kSync covers every
// registry protocol (baselines, A, B, C, C_batch, naive_C, D, D_coord); the
// others are the paper's model variants with their own simulators -- except
// the last two, which are *execution* substrates over the same registry
// protocols: kLive runs the scenario on the thread substrate
// (src/substrate/, one worker thread per process; params["free_sched"] = 1
// selects the free commit schedule), and kDifferential runs it on BOTH
// backends under the deterministic barrier schedule and fails the row on
// any metric divergence (the simulator as oracle).
enum class Substrate : std::uint8_t {
  kSync, kByzantine, kAsync, kSharedMem, kDynamic, kLive, kDifferential
};

const char* to_string(Substrate s);

struct Scenario {
  // Unique within its experiment and stable across runs/builds: it names
  // the row in logs, JSON, and `dowork_bench --filter` matches against it.
  // Generators conventionally use "<group>/<faults.to_string()>".
  std::string id;
  // Aggregation key: all rows sharing a group reduce into one table line
  // (the paper's worst-over-adversaries semantics).  Empty = use `id`.
  std::string group;
  // Which simulation substrate executes the scenario (enum above).
  Substrate substrate = Substrate::kSync;
  // For kSync: a protocol registry name (src/core/registry.h) such as "A",
  // "C_batch", "baseline_all".  For kByzantine: the *inner* work protocol
  // the agreement layer runs over.  Other substrates have one hard-wired
  // algorithm and ignore it beyond labeling.
  std::string protocol;
  // Instance shape.  n = units of work; t = processes.  For kByzantine,
  // n = processes that must agree and t = tolerated faults (the paper's
  // Section 5 naming).  kDynamic derives its workload from params instead.
  DoAllConfig cfg;
  // The declarative adversary (see fault_spec.h for the grammar).  Drives
  // the kSync and kDynamic substrates directly; kByzantine feeds it to the
  // underlying synchronous run; kAsync/kSharedMem build their crash specs
  // from params instead.
  FaultSpec faults;
  // Base seed for anything stochastic: repetition r uses seed + r (random
  // adversaries, async delivery delays).  Purely deterministic scenarios
  // ignore it.  Identical seeds => identical rows, any thread count.
  std::uint64_t seed = 0;
  // Number of repetitions; each becomes its own ScenarioResult row with
  // rep = 0..repetitions-1.  Only useful when seed enters the run.
  int repetitions = 1;
  // Substrate- and experiment-specific integer knobs (e.g. "max_delay",
  // "fd_delay" for kAsync; "batches", "per_batch", "gap" for kDynamic;
  // "protocol_param" tunes a registry protocol's constructor; "value" is
  // the Byzantine general's value).  Keys prefixed "bound_" are paper-bound
  // columns copied verbatim into the result rows for table/JSON output.
  // With "assert_bounds" = 1 (the adversary_search family), bound_work* /
  // bound_msgs* / bound_rounds* are additionally *checked* against the
  // measured row (exceeding one is a violation) and reported as
  // bound_margin_* columns -- percent of the bound consumed, rounded up.
  // With "report_bounds" = 1 (the network families) the same bound_margin_*
  // columns appear but never flip ok: network faults sit outside the
  // crash-only theorems, so a >100% margin measures degradation there.
  std::map<std::string, std::int64_t> params;
  // Fuzz hook: when set, replaces faults.make(rep) as the crash-injector
  // factory for the substrates that consult one (sync, byzantine, dynamic).
  // The spec still supplies the network component and the row's faults
  // string; src/fuzz/ uses this to wrap the spec's injector in a decision
  // recorder or to replace it with a frozen-trace replayer.  Never set by
  // the experiment registry, so every registered scenario is pure data.
  std::function<std::unique_ptr<FaultInjector>(std::uint64_t rep)> injector_override;
  // CLI hook (dowork_bench --backend live|socket): execute this kSync
  // scenario on a live substrate under the deterministic barrier schedule
  // instead of the simulator -- kLive is the thread substrate, kSocket the
  // socket-process substrate (one worker OS process per protocol process;
  // params["transport_tcp"] = 1 selects TCP over the default UDS).  Row
  // data is byte-identical on every backend (the oracle contract), which
  // is exactly what the CI sim-vs-live JSON diffs check; only the timing
  // section's units_per_sec betrays the backend.  Never set by the
  // experiment registry.
  enum class ForceBackend : std::uint8_t { kNone, kLive, kSocket };
  ForceBackend force_backend = ForceBackend::kNone;
  // CLI hook (dowork_bench --sim-threads N): round-parallel evaluation for
  // this kSync scenario's simulator runs (RunOptions::sim_threads).  Byte-
  // identical row data at any value -- the round pool's ordered-commit
  // contract, checked by the CI --sim-threads determinism diff -- so, like
  // --jobs, it is purely a wall-clock knob.  Never set by the experiment
  // registry.
  int sim_threads = 1;

  std::int64_t param_or(const std::string& key, std::int64_t fallback) const {
    auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
  }
};

// Flat result row for one repetition of one scenario: everything the JSON
// report and the paper-style tables need, with BigUint round counts already
// string-formatted (decimal when they fit, "~2^k" otherwise).
struct ScenarioResult {
  // Identity: copied from the scenario (and the experiment that owns it)
  // so each row is self-describing in the JSON report.
  std::string experiment;
  std::string id;
  std::string group;
  std::string protocol;
  std::string substrate;   // to_string(Substrate)
  std::string faults;      // FaultSpec::to_string()
  std::int64_t n = 0;
  int t = 0;
  std::uint64_t seed = 0;  // the scenario's base seed (not seed + rep)
  int rep = 0;             // which repetition this row is, 0-based

  // Outcome: ok means the run completed all n units, every process retired,
  // and the substrate's own checks passed (agreement/validity, no lost
  // announced work, ...).  Otherwise `violation` holds the verifier's
  // message or the exception text -- run_scenario() never throws.
  bool ok = false;
  std::string violation;  // empty when ok

  // The paper's measures (see PAPER.md): units performed counting
  // multiplicity; point-to-point sends (shared-memory runs count reads +
  // writes here); work + messages; processes crashed by the adversary.
  std::uint64_t work = 0;
  std::uint64_t messages = 0;
  std::uint64_t effort = 0;
  std::uint64_t crashes = 0;
  Round last_round;    // last retire round / end time, exact
  std::string rounds;  // the same, formatted via format_round()
  // Wall-clock time of this repetition, milliseconds.  Machine-dependent by
  // nature: it appears in the human-facing tables and in the JSON report's
  // optional "timing" section only (to_json must be asked for it), never in
  // the deterministic row data that CI byte-compares across --jobs values.
  double wall_ms = 0;
  // Live-substrate throughput (work units per wall-clock second), measured
  // by src/substrate/ when the repetition ran on the thread backend; 0 on
  // pure simulator rows.  Machine-dependent like wall_ms: it rides in the
  // JSON report's timing section only, never in the deterministic row data.
  double units_per_sec = 0;
  // Ordered extra columns: paper bounds, per-kind message counts, substrate
  // specifics (APS, reads/writes, lost units, ...).
  std::vector<std::pair<std::string, std::string>> extra;
};

// Executes one scenario (all repetitions, rep r uses seed + r) and returns
// one row per repetition.  Never throws: failures come back as rows with
// ok = false and the exception text in `violation`.
std::vector<ScenarioResult> run_scenario(const std::string& experiment, const Scenario& s);

// Compact round-count form: decimal when the value fits u64, "~2^k"
// otherwise (Protocol C's deadlines are exponential in n + t).
std::string format_round(const Round& r);

}  // namespace dowork::harness
