// Declarative scenarios: one simulated execution, described as a value.
//
// The experiment registry (harness/experiments.h) expands each named
// experiment into a vector of Scenarios; the ParallelScenarioRunner fans
// them out across threads; run_scenario() executes one and reduces it to a
// flat ScenarioResult row.  Because a Scenario is pure data (protocol name,
// config, fault spec, seed), the same vector produces byte-identical
// results at any parallelism.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/work.h"
#include "harness/fault_spec.h"

namespace dowork::harness {

// Which simulation substrate executes the scenario.  kSync covers every
// registry protocol (baselines, A, B, C, C_batch, naive_C, D, D_coord); the
// others are the paper's model variants with their own simulators.
enum class Substrate : std::uint8_t { kSync, kByzantine, kAsync, kSharedMem, kDynamic };

const char* to_string(Substrate s);

struct Scenario {
  std::string id;     // unique within its experiment; stable across runs
  std::string group;  // aggregation key: rows sharing it reduce together
  Substrate substrate = Substrate::kSync;
  std::string protocol;  // registry name (kSync) or inner protocol (kByzantine)
  // n = units of work; t = processes.  For kByzantine, n = processes that
  // must agree and t = tolerated faults (the paper's Section 5 naming).
  DoAllConfig cfg;
  FaultSpec faults;  // kSync substrate adversary; others derive from params
  std::uint64_t seed = 0;
  int repetitions = 1;
  // Substrate- and experiment-specific integer knobs (e.g. async delays,
  // dynamic batch shape).  Keys prefixed "bound_" are paper-bound columns
  // copied verbatim into the result rows for table/JSON output.
  std::map<std::string, std::int64_t> params;

  std::int64_t param_or(const std::string& key, std::int64_t fallback) const {
    auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
  }
};

// Flat result row for one repetition of one scenario: everything the JSON
// report and the paper-style tables need, with BigUint round counts already
// string-formatted (decimal when they fit, "~2^k" otherwise).
struct ScenarioResult {
  std::string experiment;
  std::string id;
  std::string group;
  std::string protocol;
  std::string substrate;
  std::string faults;  // FaultSpec::to_string() or substrate crash summary
  std::int64_t n = 0;
  int t = 0;
  std::uint64_t seed = 0;
  int rep = 0;

  bool ok = false;
  std::string violation;  // empty when ok

  std::uint64_t work = 0;
  std::uint64_t messages = 0;
  std::uint64_t effort = 0;
  std::uint64_t crashes = 0;
  Round last_round;    // last retire round / end time, exact
  std::string rounds;  // the same, formatted via format_round()
  // Ordered extra columns: paper bounds, per-kind message counts, substrate
  // specifics (APS, reads/writes, lost units, ...).
  std::vector<std::pair<std::string, std::string>> extra;
};

// Executes one scenario (all repetitions, rep r uses seed + r) and returns
// one row per repetition.  Never throws: failures come back as rows with
// ok = false and the exception text in `violation`.
std::vector<ScenarioResult> run_scenario(const std::string& experiment, const Scenario& s);

// Compact round-count form: decimal when the value fits u64, "~2^k"
// otherwise (Protocol C's deadlines are exponential in n + t).
std::string format_round(const Round& r);

}  // namespace dowork::harness
