#include "harness/experiments.h"

#include <algorithm>
#include <cstdint>
#include <set>

#include "adversary/strategies.h"
#include "fuzz/generator.h"
#include "harness/bounds.h"

namespace dowork::harness {

namespace {

Scenario sync_scenario(std::string group, std::string protocol, std::int64_t n, int t,
                       FaultSpec faults, int reps = 1) {
  Scenario s;
  s.group = std::move(group);
  s.substrate = Substrate::kSync;
  s.protocol = std::move(protocol);
  s.cfg = DoAllConfig{n, t};
  s.faults = std::move(faults);
  s.repetitions = reps;
  s.id = s.group + "/" + s.faults.to_string();
  return s;
}

std::uint64_t u(std::int64_t v) { return static_cast<std::uint64_t>(v); }

// The worst-case adversary the seed benches used for the sequential
// protocols: a takeover cascade crashing each active worker one chunk in,
// its broadcast truncated to a single recipient.
FaultSpec chunk_cascade(std::int64_t n, int t) {
  return FaultSpec::cascade(u(ceil_div(n, int_sqrt_ceil(t)) + 1), t - 1, /*prefix=*/1);
}

// --- F1: checkpoint-frequency sweep ----------------------------------------

std::vector<Scenario> checkpoint_sweep_scenarios() {
  const int t = 32;
  const std::int64_t n = 1024;
  std::vector<Scenario> out;
  for (std::int64_t k : {1, 2, 4, 6, 8, 12, 16, 24, 32, 64, 128, 256, 1024}) {
    const std::int64_t per = std::max<std::int64_t>(1, n / k);
    Scenario s = sync_scenario("k=" + std::to_string(k), "baseline_checkpoint", n, t,
                               FaultSpec::cascade(u(per), t - 1, 0));
    s.params["protocol_param"] = per;
    s.params["bound_units_per_ckpt"] = per;
    s.id = s.group + "/per=" + std::to_string(per);
    out.push_back(std::move(s));
  }
  // Protocol A's two-level checkpointing on the same adversary family.
  out.push_back(sync_scenario("protocol_A", "A", n, t,
                              FaultSpec::cascade(u(ceil_div(n, t)), t - 1, 0)));
  return out;
}

// --- T1: trivial baselines -------------------------------------------------

std::vector<Scenario> baselines_scenarios() {
  std::vector<Scenario> out;
  for (int t : {4, 8, 16, 32, 64}) {
    const std::int64_t n = 1024;
    for (const char* proto : {"baseline_all", "baseline_checkpoint", "A"}) {
      const bool all = std::string(proto) == "baseline_all";
      Scenario s = sync_scenario("t=" + std::to_string(t) + "/" + proto, proto, n, t,
                                 all ? FaultSpec::none() : chunk_cascade(n, t));
      s.params["bound_effort_tn"] = t * n;
      out.push_back(std::move(s));
    }
  }
  return out;
}

// --- T2 / T3: Protocols A and B vs their theorem bounds ---------------------

std::vector<Scenario> protocol_bounds_scenarios(const std::string& proto) {
  std::vector<Scenario> out;
  for (int t : {4, 9, 16, 25, 36, 49, 64, 100}) {
    const std::int64_t n = 16 * t;
    const std::string group = "t=" + std::to_string(t);
    auto add = [&](Scenario s) {
      // Theorem 2.3 / 2.8 bounds from the shared audited library
      // (harness/bounds.h): same keys and values the inline params carried.
      for (const auto& [key, value] : paper_bounds(proto, n, t, t - 1))
        s.params[key] = value;
      out.push_back(std::move(s));
    };
    for (std::int64_t units : {std::int64_t{1}, ceil_div(n, t), ceil_div(n, int_sqrt_ceil(t))}) {
      for (std::size_t prefix : {std::size_t{0}, std::size_t{1}})
        add(sync_scenario(group, proto, n, t, FaultSpec::cascade(u(units), t - 1, prefix)));
    }
    add(sync_scenario(group, proto, n, t, FaultSpec::random(0.05, t - 1, 0), /*reps=*/8));
  }
  return out;
}

// --- T4: Protocol C --------------------------------------------------------

std::vector<Scenario> protocol_c_scenarios() {
  std::vector<Scenario> out;
  for (int t : {4, 8, 16, 32, 64}) {
    const std::int64_t n = 4 * t;
    for (const char* proto : {"C", "C_batch"}) {
      const std::string group = "t=" + std::to_string(t) + "/" + proto;
      const std::int64_t T = pow2_ceil(t);
      const std::int64_t L = std::max(1, log2_of_pow2(pow2_ceil(t)));
      auto add = [&](Scenario s) {
        s.params["bound_work_n_2t"] = n + 2 * t;
        s.params["bound_msgs_n_8TlogT"] = n + 8 * T * L;
        out.push_back(std::move(s));
      };
      add(sync_scenario(group, proto, n, t, FaultSpec::none()));
      add(sync_scenario(group, proto, n, t, FaultSpec::cascade(1, t - 1, 0)));
      add(sync_scenario(group, proto, n, t, FaultSpec::cascade(u(ceil_div(n, t)), t - 1, 1)));
      add(sync_scenario(group, proto, n, t, FaultSpec::random(0.05, t - 1, 0), /*reps=*/4));
    }
  }
  return out;
}

// --- T5 / F4 / T5b / T10: Protocol D family ---------------------------------

std::vector<Scenario> protocol_d_scenarios() {
  std::vector<Scenario> out;
  // T5: graceful degradation with f scheduled crashes (case 1).
  for (int t : {4, 8, 16, 32}) {
    const std::int64_t n = 32 * t;
    for (int f : std::set<int>{0, 1, t / 4, t / 2}) {
      std::vector<ScheduledFaults::Entry> entries;
      for (int p = 0; p < f; ++p)
        entries.push_back({p, u(1 + 2 * p), CrashPlan{true, 0}});
      Scenario s = sync_scenario("T5/t=" + std::to_string(t) + "/f=" + std::to_string(f), "D",
                                 n, t, FaultSpec::scheduled(std::move(entries)));
      s.params["bound_work_2n"] = 2 * n;
      s.params["bound_msgs"] = (4 * static_cast<std::int64_t>(f) + 2) * t * t;
      s.params["bound_rounds"] = (f + 1) * (n / t) + 4 * f + 2;
      out.push_back(std::move(s));
    }
  }
  // F4: rounds vs f at fixed shape (n=4096, t=16).
  for (int f = 0; f <= 15; ++f) {
    std::vector<ScheduledFaults::Entry> entries;
    for (int p = 0; p < f; ++p) entries.push_back({p, u(3 + 5 * p), CrashPlan{true, 0}});
    Scenario s = sync_scenario("F4/f=" + std::to_string(f), "D", 4096, 16,
                               FaultSpec::scheduled(std::move(entries)));
    s.params["bound_rounds"] = (f + 1) * 256 + 4 * f + 2;
    out.push_back(std::move(s));
  }
  // T5b: majority loss in phase 1 reverts to Protocol A (case 2).
  for (int t : {8, 16, 32}) {
    const std::int64_t n = 16 * t;
    const int kill = t / 2 + 1;
    std::vector<ScheduledFaults::Entry> entries;
    for (int p = 0; p < kill; ++p) entries.push_back({p, 2, CrashPlan{true, 0}});
    Scenario s = sync_scenario("T5b/t=" + std::to_string(t), "D", n, t,
                               FaultSpec::scheduled(std::move(entries)));
    s.params["bound_work_4n"] = 4 * n;
    out.push_back(std::move(s));
  }
  // T10: coordinator agreement variant, failure-free and coordinator-dies.
  for (int t : {8, 16, 32}) {
    const std::int64_t n = 16 * t;
    for (const char* proto : {"D", "D_coord"}) {
      out.push_back(sync_scenario("T10/t=" + std::to_string(t) + "/ff/" + proto, proto, n, t,
                                  FaultSpec::none()));
      out.push_back(sync_scenario(
          "T10/t=" + std::to_string(t) + "/coord_dies/" + proto, proto, n, t,
          FaultSpec::scheduled({{0, u(n / t + 1), CrashPlan{false, 2}}})));
    }
  }
  return out;
}

// --- F5: rounds-to-completion, A vs B --------------------------------------

std::vector<Scenario> time_a_vs_b_scenarios() {
  std::vector<Scenario> out;
  for (int t : {4, 16, 36, 64, 100, 144}) {
    const std::int64_t n = 64 * t;
    for (const char* proto : {"A", "B"}) {
      Scenario s = sync_scenario("t=" + std::to_string(t) + "/" + proto, proto, n, t,
                                 FaultSpec::cascade(1, t - 1, 0));
      s.params["bound_rounds"] = std::string(proto) == "A"
                                     ? n * t + 3 * static_cast<std::int64_t>(t) * t
                                     : 3 * n + 8 * t;
      out.push_back(std::move(s));
    }
  }
  return out;
}

// --- F2: effort landscape across all protocols ------------------------------

std::vector<Scenario> effort_comparison_scenarios() {
  std::vector<Scenario> out;
  for (int t : {8, 16, 32, 64}) {
    const std::int64_t n = 4 * t;  // keeps n + t within Protocol C's 512-bit budget
    for (const char* proto :
         {"baseline_all", "baseline_checkpoint", "A", "B", "C", "C_batch", "D"}) {
      FaultSpec faults;
      if (std::string(proto) == "baseline_all")
        faults = FaultSpec::none();  // its worst case is failure-free
      else if (std::string(proto) == "D")
        faults = FaultSpec::cascade(2, std::max(1, t / 2 - 1), 0);
      else
        faults = chunk_cascade(n, t);
      out.push_back(
          sync_scenario("t=" + std::to_string(t) + "/" + proto, proto, n, t, faults));
    }
  }
  return out;
}

// --- F3: naive most-knowledgeable takeover vs Protocol C --------------------

std::vector<Scenario> ablation_naive_c_scenarios() {
  std::vector<Scenario> out;
  for (int t : {8, 16, 32, 64}) {
    const std::int64_t n = t - 1;  // the paper's scenario shape
    for (const char* proto : {"naive_C", "C"}) {
      Scenario s = sync_scenario("t=" + std::to_string(t) + "/" + proto, proto, n, t,
                                 FaultSpec::on_unit(n, t - 1));
      s.params["bound_work_n_2t"] = n + 2 * t;
      out.push_back(std::move(s));
    }
  }
  return out;
}

// --- adversary_search: adaptive-adversary tournament -------------------------
//
// Every other family replays scripted adversaries; this one lets the
// adaptive strategies of src/adversary/ fight back.  Per protocol and shape
// it runs two groups at identical (n, t, crash budget):
//   */scripted  -- the hand-crafted worst-case cascade the other families
//                  trust (chunk cascade for A/B/C, the two-unit cascade for
//                  D), as the floor the tournament must dominate;
//   */adaptive  -- every registered strategy (the restart search with 6
//                  seeded repetitions), reduced to the worst row.
// All rows carry assert_bounds: work/messages/rounds are checked against
// the paper bounds per row (an adaptive execution above a bound would be a
// real finding -- the theorems quantify over every adversary) and reported
// as bound_margin_* columns (percent of the bound consumed).
std::vector<Scenario> adversary_search_scenarios() {
  std::vector<Scenario> out;
  for (int t : {16, 64}) {
    const std::string ts = "t=" + std::to_string(t);
    auto add_protocol = [&](const char* proto, std::int64_t n, int budget,
                            FaultSpec scripted) {
      // The tournament's oracle is the shared audited bound library
      // (harness/bounds.h) -- the same formulas the fuzz campaign asserts.
      const auto bounds = paper_bounds(proto, n, t, budget);
      auto fill = [&](Scenario s) {
        s.params["assert_bounds"] = 1;
        for (const auto& [key, value] : bounds) s.params[key] = value;
        out.push_back(std::move(s));
      };
      fill(sync_scenario(ts + "/" + proto + "/scripted", proto, n, t, std::move(scripted)));
      for (const adversary::StrategyInfo& strategy : adversary::all_strategies()) {
        // Network strategies spend a message-fault budget, not crashes; the
        // crash tournament skips them (the network groups below field them).
        if (strategy.network) continue;
        fill(sync_scenario(ts + "/" + proto + "/adaptive", proto, n, t,
                           FaultSpec::adaptive(strategy.name, budget, /*seed=*/1),
                           /*reps=*/strategy.stochastic ? 6 : 1));
      }
    };
    {
      const std::int64_t n = 16 * t;
      add_protocol("A", n, t - 1, chunk_cascade(n, t));
      add_protocol("B", n, t - 1, chunk_cascade(n, t));
    }
    {
      // Protocol C's time bound is exponential in n + t: no bound_rounds row
      // (the shape keeps n + t within the 512-bit deadline budget instead).
      const std::int64_t n = 4 * t;
      add_protocol("C", n, t - 1, chunk_cascade(n, t));
    }
    {
      // Minority budget: Theorem 4.1 case 1 (a majority loss would move the
      // goalposts to the case-2 revert bounds).
      const std::int64_t n = 16 * t;
      const int f = std::max(1, t / 2 - 1);
      add_protocol("D", n, f, FaultSpec::cascade(2, f, 0));
    }
  }
  // Network tournament, appended after every crash group so the crash rows
  // keep their historical order.  The jammer spends a message-fault budget
  // (jam=t) instead of crashes, dropping the most-knowledgeable announcer's
  // broadcasts at decision point 4; margins are report-only because the
  // crash-only theorems don't quantify over message loss -- a >100% margin
  // here measures degradation, not a refutation.
  for (int t : {16, 64}) {
    const std::int64_t n = 16 * t;
    const std::int64_t s_ = int_sqrt_ceil(t);
    for (const char* proto : {"A", "B"}) {
      Scenario s = sync_scenario("net/t=" + std::to_string(t) + "/" + proto + "/jammer", proto,
                                 n, t, FaultSpec::adaptive("jammer", 0, /*seed=*/1, /*jam=*/t));
      s.params["report_bounds"] = 1;
      s.params["bound_work_3n"] = 3 * n;
      s.params["bound_msgs"] = (std::string(proto) == "A" ? 9 : 10) * t * s_;
      out.push_back(std::move(s));
    }
  }
  // Async weather rows: the same bound-margin reporting on the asynchronous
  // substrate, under seeded link loss (the detector is weather-proof, so the
  // runs complete; lost announcements surface as redone work).
  {
    const std::int64_t n = 256;
    const int t = 16;
    for (int pct : {2, 10}) {
      Scenario s;
      s.group = "net/async/drop=" + std::to_string(pct) + "%";
      s.substrate = Substrate::kAsync;
      s.protocol = "A_async";
      s.cfg = DoAllConfig{n, t};
      s.seed = u(900 + pct);
      s.faults = FaultSpec::none().with_net(NetSpec::lossy(pct / 100.0, u(pct)));
      s.id = s.group + "/" + s.faults.to_string();
      s.repetitions = 2;
      s.params["max_delay"] = 10;
      s.params["crashes"] = t / 2;
      s.params["report_bounds"] = 1;
      s.params["bound_work_3n"] = 3 * n;
      s.params["bound_msgs_9tsqrt"] = 9 * t * int_sqrt_ceil(t);
      out.push_back(std::move(s));
    }
  }
  return out;
}

// --- wan_latency / lossy_link / partition_heal: network-realism families -----
//
// The network counterpart of the crash families: the same protocols under
// weather the paper's model rules out.  Protocols A and B carry these
// families because their correctness is deadline-driven -- a silent
// predecessor is indistinguishable from a crashed one, so lost or late
// checkpoints cost redone work and time, never completion.  (Protocol C
// trusts poll replies and Protocol D trusts agreement traffic, so weather
// can starve them; their network behavior is a finding for a later PR, not
// a regression suite.)  Every row reports bound margins against the
// crash-only theorems (report_bounds: informational, a >100% margin is
// measured degradation) so the tables quantify what weather costs.

std::vector<Scenario> wan_latency_scenarios() {
  std::vector<Scenario> out;
  const std::int64_t n = 256;
  const int t = 16;
  const std::int64_t s_ = int_sqrt_ceil(t);
  auto bounds = [&](Scenario& s, const char* proto) {
    s.params["report_bounds"] = 1;
    s.params["bound_work_3n"] = 3 * n;
    s.params["bound_msgs"] = (std::string(proto) == "A" ? 9 : 10) * t * s_;
    s.params["bound_rounds"] = std::string(proto) == "A"
                                   ? n * t + 3 * static_cast<std::int64_t>(t) * t
                                   : 3 * n + 8 * t;
  };
  // Sync: every broadcast pays an extra uniform uplink delay in whole
  // rounds; composed with the worst-case cascade to show crash + net
  // weather in one spec.
  for (const char* proto : {"A", "B"}) {
    for (std::int64_t hi : {2, 8}) {
      Scenario s = sync_scenario(
          std::string("sync/") + proto + "/lat=1.." + std::to_string(hi), proto, n, t,
          FaultSpec::none().with_net(NetSpec::latency(1, hi, u(hi))));
      bounds(s, proto);
      out.push_back(std::move(s));
    }
    Scenario s = sync_scenario(std::string("sync/") + proto + "/cascade+lat", proto, n, t,
                               chunk_cascade(n, t).with_net(NetSpec::latency(1, 4, 5)));
    bounds(s, proto);
    out.push_back(std::move(s));
  }
  // Async: the latency component replaces the substrate's delay knobs, so
  // this sweep is the honest WAN version of the async family's delay grid.
  for (std::int64_t hi : {20, 100}) {
    Scenario s;
    s.group = "async/lat=1.." + std::to_string(hi);
    s.substrate = Substrate::kAsync;
    s.protocol = "A_async";
    s.cfg = DoAllConfig{n, t};
    s.seed = u(7000 + hi);
    s.faults = FaultSpec::none().with_net(NetSpec::latency(1, hi, u(hi)));
    s.id = s.group + "/" + s.faults.to_string();
    s.params["crashes"] = t - 1;
    s.params["crash_after"] = ceil_div(n, t) + 3;
    s.params["report_bounds"] = 1;
    s.params["bound_work_3n"] = 3 * n;
    s.params["bound_msgs_9tsqrt"] = 9 * t * s_;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<Scenario> lossy_link_scenarios() {
  std::vector<Scenario> out;
  const std::int64_t n = 256;
  const int t = 16;
  const std::int64_t s_ = int_sqrt_ceil(t);
  for (const char* proto : {"A", "B"}) {
    for (int pct : {1, 5, 10}) {
      // Four seeded repetitions: rep r draws the weather from seed + r,
      // exactly like the seeded crash adversaries.
      Scenario s = sync_scenario(
          std::string("sync/") + proto + "/drop=" + std::to_string(pct) + "%", proto, n, t,
          FaultSpec::none().with_net(NetSpec::lossy(pct / 100.0, u(pct))), /*reps=*/4);
      s.params["report_bounds"] = 1;
      s.params["bound_work_3n"] = 3 * n;
      s.params["bound_msgs"] = (std::string(proto) == "A" ? 9 : 10) * t * s_;
      out.push_back(std::move(s));
    }
    // Crash cascade and link loss composed: the adversary the paper allows
    // plus the one it doesn't, in a single two-component spec.
    Scenario s = sync_scenario(std::string("sync/") + proto + "/cascade+drop", proto, n, t,
                               chunk_cascade(n, t).with_net(NetSpec::lossy(0.05, 11)),
                               /*reps=*/4);
    s.params["report_bounds"] = 1;
    s.params["bound_work_3n"] = 3 * n;
    s.params["bound_msgs"] = (std::string(proto) == "A" ? 9 : 10) * t * s_;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<Scenario> partition_heal_scenarios() {
  std::vector<Scenario> out;
  const std::int64_t n = 256;
  const int t = 16;
  const std::int64_t s_ = int_sqrt_ceil(t);
  // Windows are in stepped rounds; Protocol A's first takeover deadline is
  // ~n/t rounds in, so the early window hides the initial checkpoints and
  // the late window tests recovery after real progress.
  struct Cut {
    const char* name;
    std::vector<PartitionWindow> windows;
  };
  const std::vector<Cut> cuts = {
      {"early", {{4, 24, 8}}},
      {"late", {{40, 80, 8}}},
      {"repeated", {{4, 24, 8}, {48, 64, 4}}},
      {"minority", {{8, 48, 2}}},
  };
  for (const char* proto : {"A", "B"}) {
    for (const Cut& cut : cuts) {
      Scenario s = sync_scenario(
          std::string("sync/") + proto + "/" + cut.name, proto, n, t,
          FaultSpec::none().with_net(NetSpec::partition(cut.windows, 0)));
      s.params["report_bounds"] = 1;
      s.params["bound_work_3n"] = 3 * n;
      s.params["bound_msgs"] = (std::string(proto) == "A" ? 9 : 10) * t * s_;
      s.params["bound_rounds"] = std::string(proto) == "A"
                                     ? n * t + 3 * static_cast<std::int64_t>(t) * t
                                     : 3 * n + 8 * t;
      out.push_back(std::move(s));
    }
  }
  return out;
}

// --- T6: Byzantine agreement over the work protocols ------------------------

std::vector<Scenario> byzantine_scenarios() {
  std::vector<Scenario> out;
  struct Shape {
    int n, t;
  };
  for (Shape sh : {Shape{64, 8}, Shape{144, 12}, Shape{256, 16}, Shape{128, 32}}) {
    for (const char* proto : {"A", "B", "C"}) {
      const std::string group =
          "n=" + std::to_string(sh.n) + "/t=" + std::to_string(sh.t) + "/" + proto;
      // Message bounds from the deleted bench: senders = t+1 run the work
      // protocol, so the A/B bound is n + O(senders^1.5) and the C bound is
      // n + O(T log T) over the padded sender count.
      const std::int64_t senders = sh.t + 1;
      const std::int64_t sq = int_sqrt_ceil(sh.t + 1);
      const std::int64_t T = pow2_ceil(sh.t + 1);
      const std::int64_t L = log2_of_pow2(T);
      const std::int64_t bound_msgs = std::string("C") == proto
                                          ? sh.n + 8 * T * L + 4 * T + senders
                                          : sh.n + 10 * senders * sq + 10 * sq * sq + senders;
      auto add = [&](FaultSpec faults, int reps = 1) {
        Scenario s;
        s.group = group;
        s.substrate = Substrate::kByzantine;
        s.protocol = proto;
        s.cfg = DoAllConfig{sh.n, sh.t};
        s.faults = std::move(faults);
        s.repetitions = reps;
        s.params["value"] = 5;
        s.params["bound_msgs"] = bound_msgs;
        s.id = group + "/" + s.faults.to_string();
        out.push_back(std::move(s));
      };
      add(FaultSpec::none());
      add(FaultSpec::scheduled({{0, 1, CrashPlan{false, static_cast<std::size_t>(sh.t / 2)}}}));
      add(FaultSpec::cascade(2, sh.t, 1));
      add(FaultSpec::random(0.03, sh.t, 0), /*reps=*/4);
    }
  }
  return out;
}

// --- T7: asynchronous Protocol A -------------------------------------------

std::vector<Scenario> async_scenarios() {
  std::vector<Scenario> out;
  const std::int64_t n = 256;
  const int t = 16;
  for (std::int64_t delay : {2, 10, 50}) {
    for (std::int64_t fd : {5, 25, 100}) {
      Scenario s;
      s.group = "delay=" + std::to_string(delay) + "/fd=" + std::to_string(fd);
      s.id = s.group;
      s.substrate = Substrate::kAsync;
      s.protocol = "A_async";
      s.cfg = DoAllConfig{n, t};
      s.seed = u(delay * 1000 + fd);
      s.params["max_delay"] = delay;
      s.params["fd_delay"] = fd;
      s.params["crashes"] = t - 1;
      s.params["crash_after"] = ceil_div(n, t) + 3;
      s.params["bound_work_3n"] = 3 * n;
      s.params["bound_msgs_9tsqrt"] = 9 * t * int_sqrt_ceil(t);
      out.push_back(std::move(s));
    }
  }
  return out;
}

// --- T9: dynamic workload --------------------------------------------------

std::vector<Scenario> dynamic_scenarios() {
  std::vector<Scenario> out;
  for (int t : {4, 8, 16}) {
    for (int crashes : {0, t / 4, t / 2}) {
      Scenario s;
      s.group = "t=" + std::to_string(t) + "/crashes=" + std::to_string(crashes);
      s.id = s.group;
      s.substrate = Substrate::kDynamic;
      s.protocol = "D_dynamic";
      s.cfg = DoAllConfig{/*n=*/1, t};  // workload shape comes from params
      s.faults = crashes == 0 ? FaultSpec::none() : FaultSpec::cascade(6, crashes, 0);
      s.params["batches"] = 6;
      s.params["per_batch"] = 4 * t;
      s.params["gap"] = 25;
      out.push_back(std::move(s));
    }
  }
  return out;
}

// --- T8 / F6: related models (APS contrast, shared memory) ------------------

std::vector<Scenario> related_models_scenarios() {
  std::vector<Scenario> out;
  // T8: effort vs available processor steps for the message-passing protocols
  // (the APS column rides in each row's extras).
  for (int t : {8, 16, 32}) {
    const std::int64_t n = 4 * t;
    for (const char* proto : {"A", "B", "C", "D"}) {
      FaultSpec faults = std::string(proto) == "D"
                             ? FaultSpec::cascade(2, std::max(1, t / 2 - 1), 0)
                             : chunk_cascade(n, t);
      out.push_back(
          sync_scenario("T8/t=" + std::to_string(t) + "/" + proto, proto, n, t, faults));
    }
  }
  // F6: the shared-memory progress-counter algorithm on the same shapes.
  for (int t : {8, 16, 32, 64}) {
    const std::int64_t n = 4 * t;
    Scenario s;
    s.group = "F6/t=" + std::to_string(t) + "/write_all";
    s.id = s.group;
    s.substrate = Substrate::kSharedMem;
    s.protocol = "write_all";
    s.cfg = DoAllConfig{n, t};
    s.params["crashes"] = t - 1;
    s.params["bound_effort_2n_3t"] = 2 * n + 3 * t;
    out.push_back(std::move(s));
  }
  return out;
}

// --- scale: asymptotic separation sweep --------------------------------------
//
// The paper's message-complexity separations (A/B's O(t*sqrt(t)) vs C's
// n + 8t log t vs D's (4f+2)t^2, Theorem 2.3 / Corollary 3.9 / Theorem 4.1)
// only become visible at sizes far beyond the per-table experiments, so this
// family sweeps t = 64..16384 with n = 16t under worst-case cascades (the
// t = 2048 and 4096 rows were added once the two-tier Round and the lazy
// A/B plan made them affordable; t = 8192 and 16384 once the round-parallel
// core let --sim-threads soak the big rows).  Three model-imposed caveats,
// documented in DESIGN.md:
//   * Protocol C's deadlines are ~2^(n+t) rounds and must fit Round's
//     promoted 512-bit representation, so its rows ride at the largest
//     feasible shape (n = 440 - t, batched reports) and stop at t = 256 --
//     enough to show the t log t message curve against A/B's t*sqrt(t).
//   * Protocol D's message bill is (4f+2)t^2: its adversary uses a fixed
//     budget of f = 16 crashes so the sweep measures the t^2 growth rather
//     than drowning in an O(t^3) worst case.
//   * Protocol D stops at t = 8192: the agreement merge cache's suffix
//     table is O(t*n) bits (~570 MB at t = 16384), so the top tier is
//     A/B-only until ROADMAP's sparse-state scale_xl item shrinks it.
std::vector<Scenario> scale_scenarios() {
  std::vector<Scenario> out;
  for (int t : {64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384}) {
    const std::int64_t n = 16 * t;
    const std::int64_t s_ = int_sqrt_ceil(t);
    for (const char* proto : {"A", "B"}) {
      Scenario s = sync_scenario("t=" + std::to_string(t) + "/" + proto, proto, n, t,
                                 chunk_cascade(n, t));
      s.params["bound_work_3n"] = 3 * n;
      s.params["bound_msgs"] = (std::string(proto) == "A" ? 9 : 10) * t * s_;
      out.push_back(std::move(s));
    }
    if (t <= 8192) {
      const int f = std::min(t / 2 - 1, 16);
      Scenario s = sync_scenario("t=" + std::to_string(t) + "/D", "D", n, t,
                                 FaultSpec::cascade(2, f, 0));
      s.params["bound_work_2n"] = 2 * n;
      s.params["bound_msgs"] = (4 * static_cast<std::int64_t>(f) + 2) * t * t;
      out.push_back(std::move(s));
    }
    if (t <= 256) {
      const std::int64_t cn = 440 - t;  // 512-bit deadline budget: n + t <= 440
      const std::int64_t T = pow2_ceil(t);
      const std::int64_t L = std::max(1, log2_of_pow2(T));
      Scenario s = sync_scenario("t=" + std::to_string(t) + "/C_batch", "C_batch", cn, t,
                                 FaultSpec::cascade(1, t - 1, 0));
      s.params["bound_work_n_2t"] = cn + 2 * t;
      s.params["bound_msgs"] = cn + 8 * T * L;
      out.push_back(std::move(s));
    }
  }
  return out;
}

// --- sim_microbench: substrate throughput guard ------------------------------
//
// The successor of the free-standing google-benchmark binary: the same
// end-to-end protocol sweeps, expressed as registry scenarios so they run
// through the harness, ctest and the determinism diff like every other
// experiment.  (The old binary's BigUint arithmetic microbenches are covered
// by tests/round_test.cpp's promotion-boundary suite; every row here
// exercises Round arithmetic on the simulator hot path anyway.)
std::vector<Scenario> sim_microbench_scenarios() {
  std::vector<Scenario> out;
  for (int t : {16, 64, 256})
    out.push_back(sync_scenario("A_ff/t=" + std::to_string(t), "A", 16 * t, t,
                                FaultSpec::none()));
  for (int t : {16, 64})
    out.push_back(sync_scenario("B_cascade/t=" + std::to_string(t), "B", 16 * t, t,
                                FaultSpec::cascade(1, t - 1, 0)));
  for (int t : {8, 32})
    out.push_back(sync_scenario("C_cascade/t=" + std::to_string(t), "C", 4 * t, t,
                                FaultSpec::cascade(1, t - 1, 0)));
  for (int t : {8, 32})
    out.push_back(sync_scenario("D_ff/t=" + std::to_string(t), "D", 64 * t, t,
                                FaultSpec::none()));
  return out;
}

// --- differential / live_throughput: the live thread substrate --------------

// The simulator as differential oracle (src/substrate/differential.h): the
// deterministic groups run every case on both backends and fail the row on
// any metric divergence; the free groups surrender the commit order to the
// OS scheduler -- no equality oracle exists there, so each row asserts its
// paper bounds and the verifier instead.  Free rows are nondeterministic by
// design: keep this family out of byte-identity comparisons.
std::vector<Scenario> differential_scenarios() {
  std::vector<Scenario> out;
  for (int t : {16, 64}) {
    const std::string ts = "det/t=" + std::to_string(t);
    auto add = [&](const char* proto, std::int64_t n, FaultSpec faults) {
      Scenario s = sync_scenario(ts + "/" + proto, proto, n, t, std::move(faults));
      s.substrate = Substrate::kDifferential;
      out.push_back(std::move(s));
    };
    const std::int64_t n = 16 * t;
    const int f = std::max(1, t / 2 - 1);
    add("A", n, chunk_cascade(n, t));
    add("A", n, FaultSpec::adaptive("greedy", t - 1, /*seed=*/1));
    add("B", n, chunk_cascade(n, t));
    add("B", n, FaultSpec::adaptive("chain", t - 1, /*seed=*/1));
    // C's shape keeps n + t inside the 512-bit deadline budget; its
    // exponential idle stretches fast-forward identically on both backends.
    add("C", 4 * t, chunk_cascade(4 * t, t));
    add("D", n, FaultSpec::cascade(2, f, 0));
    add("D", n, FaultSpec::adaptive("greedy", f, /*seed=*/1));
  }
  for (int t : {16, 64}) {
    const std::string ts = "free/t=" + std::to_string(t);
    auto add = [&](const char* proto, std::int64_t n, int budget, FaultSpec faults) {
      Scenario s = sync_scenario(ts + "/" + proto, proto, n, t, std::move(faults));
      s.substrate = Substrate::kLive;
      s.params["free_sched"] = 1;
      s.params["assert_bounds"] = 1;
      for (const auto& [key, value] : paper_bounds(proto, n, t, budget))
        s.params[key] = value;
      out.push_back(std::move(s));
    };
    const std::int64_t n = 16 * t;
    const int f = std::max(1, t / 2 - 1);
    add("A", n, t - 1, chunk_cascade(n, t));
    add("B", n, t - 1, chunk_cascade(n, t));
    add("C", 4 * t, t - 1, chunk_cascade(4 * t, t));
    add("D", n, f, FaultSpec::cascade(2, f, 0));
  }
  // Socket-process legs of the same oracle: identical shapes and
  // adversaries, but the non-oracle leg runs one worker OS process per
  // protocol process (params["socket"] = 1), so crashes are real SIGKILLs
  // and the barrier crosses a kernel socket.  Group names deliberately use
  // "det-tN"/"free-tN" (no slash after det/free): --filter det/ and
  // --filter free/ keep selecting the thread rows only, --filter socket/
  // selects exactly these.
  for (int t : {16, 64}) {
    const std::string ts = "socket/det-t" + std::to_string(t);
    auto add = [&](const std::string& name, const char* proto, std::int64_t n,
                   FaultSpec faults) {
      Scenario s = sync_scenario(ts + "/" + name, proto, n, t, std::move(faults));
      s.substrate = Substrate::kDifferential;
      s.params["socket"] = 1;
      out.push_back(std::move(s));
    };
    const std::int64_t n = 16 * t;
    const int f = std::max(1, t / 2 - 1);
    add("A", "A", n, chunk_cascade(n, t));
    add("A", "A", n, FaultSpec::adaptive("greedy", t - 1, /*seed=*/1));
    add("B", "B", n, chunk_cascade(n, t));
    add("B", "B", n, FaultSpec::adaptive("chain", t - 1, /*seed=*/1));
    add("C", "C", 4 * t, chunk_cascade(4 * t, t));
    add("D", "D", n, FaultSpec::cascade(2, f, 0));
    add("D", "D", n, FaultSpec::adaptive("greedy", f, /*seed=*/1));
    // One TCP row per shape keeps the 127.0.0.1 transport honest in the
    // same sweep (everything else defaults to Unix-domain sockets).
    {
      Scenario s = sync_scenario(ts + "/B-tcp", "B", n, t, chunk_cascade(n, t));
      s.substrate = Substrate::kDifferential;
      s.params["socket"] = 1;
      s.params["transport_tcp"] = 1;
      out.push_back(std::move(s));
    }
  }
  for (int t : {16, 64}) {
    const std::string ts = "socket/free-t" + std::to_string(t);
    auto add = [&](const char* proto, std::int64_t n, int budget, FaultSpec faults) {
      Scenario s = sync_scenario(ts + "/" + proto, proto, n, t, std::move(faults));
      s.substrate = Substrate::kLive;
      s.params["socket"] = 1;
      s.params["free_sched"] = 1;
      s.params["assert_bounds"] = 1;
      for (const auto& [key, value] : paper_bounds(proto, n, t, budget))
        s.params[key] = value;
      out.push_back(std::move(s));
    };
    const std::int64_t n = 16 * t;
    const int f = std::max(1, t / 2 - 1);
    add("A", n, t - 1, chunk_cascade(n, t));
    add("B", n, t - 1, chunk_cascade(n, t));
    add("C", 4 * t, t - 1, chunk_cascade(4 * t, t));
    add("D", n, f, FaultSpec::cascade(2, f, 0));
  }
  return out;
}

// Real units/sec on the thread substrate next to the same shapes' simulated
// rows: sim/live scenario pairs whose deterministic row data is
// byte-identical (the oracle contract); the live rows additionally carry
// units_per_sec in the --timing section.
std::vector<Scenario> live_throughput_scenarios() {
  std::vector<Scenario> out;
  for (int t : {16, 64}) {
    const std::int64_t n = 16 * t;
    const int f = std::max(1, t / 2 - 1);
    for (const char* proto : {"A", "B", "D"}) {
      const FaultSpec cascade =
          std::string(proto) == "D" ? FaultSpec::cascade(2, f, 0) : chunk_cascade(n, t);
      for (const bool live : {false, true}) {
        const std::string backend = live ? "live" : "sim";
        for (const FaultSpec& faults : {FaultSpec::none(), cascade}) {
          Scenario s = sync_scenario(backend + "/t=" + std::to_string(t) + "/" + proto, proto,
                                     n, t, faults);
          if (live) s.substrate = Substrate::kLive;
          out.push_back(std::move(s));
        }
      }
    }
  }
  return out;
}

// --- smoke: one quick scenario per substrate, for CI artifacts --------------

std::vector<Scenario> smoke_scenarios() {
  std::vector<Scenario> out;
  const std::int64_t n = 64;
  const int t = 8;
  for (const char* proto : {"baseline_all", "baseline_checkpoint", "A", "B", "C", "D"}) {
    out.push_back(sync_scenario(std::string("sync/") + proto, proto, n, t,
                                std::string(proto) == "baseline_all"
                                    ? FaultSpec::none()
                                    : FaultSpec::cascade(2, t / 2, 1)));
  }
  {
    Scenario s;
    s.group = "byzantine/B";
    s.id = s.group;
    s.substrate = Substrate::kByzantine;
    s.protocol = "B";
    s.cfg = DoAllConfig{16, 4};
    s.faults = FaultSpec::cascade(2, 4, 1);
    out.push_back(std::move(s));
  }
  {
    Scenario s;
    s.group = "async/A";
    s.id = s.group;
    s.substrate = Substrate::kAsync;
    s.protocol = "A_async";
    s.cfg = DoAllConfig{n, t};
    s.seed = 7;
    s.params["max_delay"] = 5;
    s.params["fd_delay"] = 10;
    s.params["crashes"] = t / 2;
    out.push_back(std::move(s));
  }
  {
    Scenario s;
    s.group = "sharedmem/write_all";
    s.id = s.group;
    s.substrate = Substrate::kSharedMem;
    s.protocol = "write_all";
    s.cfg = DoAllConfig{n, t};
    s.params["crashes"] = t - 1;
    out.push_back(std::move(s));
  }
  {
    Scenario s;
    s.group = "dynamic/D";
    s.id = s.group;
    s.substrate = Substrate::kDynamic;
    s.protocol = "D_dynamic";
    s.cfg = DoAllConfig{1, 4};
    s.faults = FaultSpec::cascade(6, 2, 0);
    s.params["batches"] = 3;
    s.params["per_batch"] = 8;
    s.params["gap"] = 25;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

const std::vector<ExperimentInfo>& all_experiments() {
  static const std::vector<ExperimentInfo> kExperiments = {
      {"smoke", "CI smoke suite",
       "One quick scenario per protocol and substrate; the CI artifact.",
       smoke_scenarios},
      {"baselines", "T1 (Section 1)",
       "Both trivial baselines cost O(tn) effort; Protocol A achieves 3n work + "
       "9t*sqrt(t) messages.",
       baselines_scenarios},
      {"checkpoint_sweep", "F1 (Section 2 introduction)",
       "Checkpoint every n/k units => ~n*t/k redone work and ~t*k messages; the effort "
       "curve has an interior minimum between k=sqrt(t) and k=t, motivating Protocol A's "
       "two-level scheme.",
       checkpoint_sweep_scenarios},
      {"protocol_a", "T2 (Theorem 2.3)",
       "Protocol A: work <= 3n, messages <= 9t*sqrt(t), all retired by round nt + 3t^2; "
       "worst over cascade variants and 8 random schedules.",
       [] { return protocol_bounds_scenarios("A"); }},
      {"protocol_b", "T3 (Theorem 2.8)",
       "Protocol B keeps work <= 3n and messages <= 10t*sqrt(t) while retiring everyone "
       "by round 3n + 8t.",
       [] { return protocol_bounds_scenarios("B"); }},
      {"protocol_c", "T4 (Theorem 3.8, Corollary 3.9)",
       "Protocol C: work <= n + 2t, messages <= n + 8t log t (C_batch drops the n term); "
       "time exponential in n + t, simulated exactly via 512-bit fast-forward.",
       protocol_c_scenarios},
      {"protocol_d", "T5/F4/T5b/T10 (Theorem 4.1, Section 4)",
       "Protocol D: failure-free n/t + 2 rounds and 2t^2 messages; f failures cost work "
       "<= 2n, messages <= (4f+2)t^2, rounds <= (f+1)n/t + 4f + 2; majority loss reverts "
       "to Protocol A; the coordinator variant cuts failure-free messages to 2(t-1).",
       protocol_d_scenarios},
      {"time_a_vs_b", "F5 (Theorems 2.3c vs 2.8c)",
       "Protocol A's deadline cascade costs Theta(nt + t^2) rounds; Protocol B's "
       "message-relative timeouts bring it to 3n + 8t.",
       time_a_vs_b_scenarios},
      {"effort_comparison", "F2 (Sections 1 and 6)",
       "The protocol landscape under one cascade: baselines O(tn) effort, A/B 3n + "
       "O(t^1.5), C O(n + t log t), D trades t^2 messages for optimal time.",
       effort_comparison_scenarios},
      {"ablation_naive_c", "F3 (Section 3 introduction)",
       "Without fault detection the most-knowledgeable-takeover scheme pays Theta(n + "
       "t^2) work; Protocol C's pointer-guided polling stays at n + 2t.",
       ablation_naive_c_scenarios},
      {"adversary_search", "Adaptive tournament (Thms 2.3/2.8/3.8/4.1)",
       "Adaptive strategies (src/adversary/: chain, greedy, splitter, seeded restart "
       "search) fight A/B/C/D for the worst execution a crash budget buys: the adaptive "
       "worst case dominates the scripted cascade at the same shape, and every paper "
       "bound holds per row (bound_margin_* = percent of the bound consumed).",
       adversary_search_scenarios},
      {"byzantine", "T6 (Section 5)",
       "Byzantine agreement for crash faults via the work protocols: via A/B O(n + "
       "t*sqrt(t)) messages at O(n) rounds, via C O(n + t log t) messages at exponential "
       "time; agreement and validity under every crash schedule.",
       byzantine_scenarios},
      {"async", "T7 (Section 2.1 remark)",
       "With a sound and complete failure detector Protocol A runs fully asynchronously: "
       "work and messages keep the synchronous bounds, only completion time follows the "
       "delays.",
       async_scenarios},
      {"dynamic", "T9 (Sections 1 and 4)",
       "The dynamic extension of Protocol D absorbs work arriving over time at individual "
       "sites; announced work is never lost, never-gossiped arrivals die with their site.",
       dynamic_scenarios},
      {"scale", "Scale sweep (Thms 2.3, 2.8, 4.1; Cor 3.9)",
       "Asymptotics where the curves visibly diverge: t = 64..4096 at n = 16t under "
       "worst-case cascades; A/B stay within 3n work + O(t^1.5) messages, D pays "
       "(4f+2)t^2 messages for optimal time, C_batch (capped at the 512-bit deadline "
       "budget) tracks its t log t message bound.",
       scale_scenarios},
      {"related_models", "T8/F6 (Section 1.1)",
       "Effort vs available-processor-steps (Protocol C: effort-optimal, APS-astronomical) "
       "and the shared-memory progress counter whose effort hugs 2n + O(t).",
       related_models_scenarios},
      {"sim_microbench", "Substrate guard (no paper table)",
       "End-to-end throughput of the simulator substrate itself -- failure-free and "
       "cascade runs of A/B/C/D at small and medium shapes -- to catch harness "
       "performance regressions; wall-clock rides in the ms column and --timing.",
       sim_microbench_scenarios},
      {"differential", "Differential oracle (substrate equivalence)",
       "Identical (protocol, shape, FaultSpec, seed) cases on the simulator and a live "
       "substrate -- worker threads (det/, free/) and worker OS processes over localhost "
       "sockets (socket/): metric-for-metric equality under the deterministic barrier "
       "schedule (scripted and adaptive adversaries, A/B/C/D at t=16,64, crashes as real "
       "SIGKILLs on the socket legs), and paper bounds + verifier under the free "
       "schedule where the OS scheduler is a real adversary.",
       differential_scenarios},
      {"live_throughput", "Live substrate throughput (no paper table)",
       "Real units/sec on the thread substrate beside the same shapes' simulated rows "
       "(A/B/D, failure-free and cascade): deterministic row data is byte-identical "
       "across backends; --timing carries wall-clock and units_per_sec.",
       live_throughput_scenarios},
      {"wan_latency", "Network realism: latency (outside the paper's model)",
       "A/B under uniform per-broadcast uplink delay (sync: whole extra rounds; async: "
       "the link-delay distribution itself), alone and composed with the worst-case "
       "cascade; bound_margin_* columns report what lateness costs against the "
       "synchronous theorems.",
       wan_latency_scenarios},
      {"lossy_link", "Network realism: loss (outside the paper's model)",
       "A/B under seeded per-link Bernoulli loss at 1-10%, alone and composed with the "
       "cascade: silence is indistinguishable from a crash, so lost checkpoints surface "
       "as redone work and late retirement, never incompletion; margins quantify the "
       "degradation.",
       lossy_link_scenarios},
      {"partition_heal", "Network realism: partitions (outside the paper's model)",
       "A/B across scheduled split/heal windows (early, late, repeated, minority cuts): "
       "the deadline discipline rides out every healed partition -- both sides redo "
       "work but the run completes, with bound margins reporting the price.",
       partition_heal_scenarios},
      {"fuzz_smoke", "Fuzz campaign smoke (every theorem, random shapes)",
       "The fuzzing campaign's first 100 seed-42 cases as a registry experiment: random "
       "valid (protocol, shape, FaultSpec v2) draws, every crash-only row asserting its "
       "paper bounds (src/harness/bounds.h) and every weather row reporting margins; any "
       "bound breach or invariant violation fails the row.",
       [] { return fuzz::generate_cases({42, 100}, 100); }},
  };
  return kExperiments;
}

const ExperimentInfo* find_experiment(const std::string& name) {
  for (const ExperimentInfo& e : all_experiments())
    if (e.name == name) return &e;
  return nullptr;
}

}  // namespace dowork::harness
