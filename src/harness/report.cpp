#include "harness/report.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "util/strings.h"

namespace dowork::harness {

namespace {

// Extra-column values that are magnitudes: plain decimals (optionally with
// thousands separators) and format_round()'s "~2^k" fallback.
bool is_magnitude(const std::string& s) {
  if (s.rfind("~2^", 0) == 0) return s.size() > 3;
  if (s.empty()) return false;
  for (char c : s)
    if ((c < '0' || c > '9') && c != ',') return false;
  return true;
}

// Orders two magnitude strings: every ~2^k form exceeds every decimal form
// the formatter emits (it only falls back past u64); decimals compare by
// digit count then lexicographically (separators stripped).
bool magnitude_less(const std::string& a, const std::string& b) {
  const bool pa = a.rfind("~2^", 0) == 0, pb = b.rfind("~2^", 0) == 0;
  if (pa != pb) return pb;
  if (pa) return std::stoi(a.substr(3)) < std::stoi(b.substr(3));
  std::string da, db;
  for (char c : a)
    if (c != ',') da += c;
  for (char c : b)
    if (c != ',') db += c;
  if (da.size() != db.size()) return da.size() < db.size();
  return da < db;
}

// Commutative reduction of one extra column across a group's rows.
std::string merge_extra(const std::string& a, const std::string& b) {
  if (a == b) return a;
  if (is_magnitude(a) && is_magnitude(b)) return magnitude_less(a, b) ? b : a;
  if (a == "NO" || b == "NO") return "NO";  // yes/NO flags: any failure wins
  return "mixed";
}

// Fixed-format milliseconds (locale-independent, for tables and the timing
// JSON section).
std::string format_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

}  // namespace

std::vector<GroupAggregate> aggregate(const std::vector<ScenarioResult>& rows) {
  std::vector<GroupAggregate> groups;
  for (const ScenarioResult& row : rows) {
    GroupAggregate* g = nullptr;
    for (GroupAggregate& existing : groups)
      if (existing.group == row.group) {
        g = &existing;
        break;
      }
    if (!g) {
      groups.push_back(GroupAggregate{});
      g = &groups.back();
      g->group = row.group;
      g->protocol = row.protocol;
      g->substrate = row.substrate;
      g->n = row.n;
      g->t = row.t;
    }
    RunMetrics m;
    m.work_total = row.work;
    m.messages_total = row.messages;
    m.crashes = row.crashes;
    m.last_retire_round = row.last_round;
    m.all_retired = row.ok;  // a failed row poisons the group's all_ok
    g->metrics.absorb(m);
    g->wall_ms += row.wall_ms;  // sum: commutative, so jobs-order independent
    // Union of extra keys in first-occurrence order, values reduced
    // commutatively so completion order cannot matter.
    for (const auto& [key, value] : row.extra) {
      bool found = false;
      for (auto& [k, v] : g->extra)
        if (k == key) {
          v = merge_extra(v, value);
          found = true;
          break;
        }
      if (!found) g->extra.emplace_back(key, value);
    }
  }
  return groups;
}

std::string render_table(const std::vector<GroupAggregate>& groups) {
  std::vector<std::string> headers = {"scenario", "protocol", "n",      "t",
                                      "runs",     "work",     "msgs",   "effort",
                                      "rounds",   "crashes",  "ok",     "ms"};
  // Columns are the union of extra keys over all groups, in first-occurrence
  // order, so a key absent from the first group still gets a column.
  std::vector<std::string> extra_keys;
  for (const GroupAggregate& g : groups)
    for (const auto& [key, value] : g.extra)
      if (std::find(extra_keys.begin(), extra_keys.end(), key) == extra_keys.end())
        extra_keys.push_back(key);
  for (const std::string& key : extra_keys) headers.push_back(key);

  TablePrinter table(headers);
  for (const GroupAggregate& g : groups) {
    std::vector<std::string> row = {g.group,
                                    g.protocol,
                                    std::to_string(g.n),
                                    std::to_string(g.t),
                                    std::to_string(g.metrics.runs),
                                    with_commas(g.metrics.max_work),
                                    with_commas(g.metrics.max_messages),
                                    with_commas(g.metrics.max_effort),
                                    format_round(g.metrics.max_rounds),
                                    std::to_string(g.metrics.max_crashes),
                                    g.metrics.all_ok ? "yes" : "NO",
                                    format_ms(g.wall_ms)};
    for (const std::string& key : extra_keys) {
      std::string value;
      for (const auto& [k, v] : g.extra)
        if (k == key) {
          value = v;
          break;
        }
      row.push_back(value);
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_kv(std::string& out, const char* key, const std::string& value, bool quote) {
  out += '"';
  out += key;
  out += "\":";
  if (quote) {
    out += '"';
    out += json_escape(value);
    out += '"';
  } else {
    out += value;
  }
}

}  // namespace

std::string to_json(const std::string& experiment, const std::vector<ScenarioResult>& rows,
                    bool include_timing) {
  std::string out = "{\"experiment\":\"" + json_escape(experiment) + "\",\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScenarioResult& r = rows[i];
    if (i) out += ',';
    out += '{';
    append_kv(out, "id", r.id, true);
    out += ',';
    append_kv(out, "group", r.group, true);
    out += ',';
    append_kv(out, "protocol", r.protocol, true);
    out += ',';
    append_kv(out, "substrate", r.substrate, true);
    out += ',';
    append_kv(out, "faults", r.faults, true);
    out += ',';
    append_kv(out, "n", std::to_string(r.n), false);
    out += ',';
    append_kv(out, "t", std::to_string(r.t), false);
    out += ',';
    append_kv(out, "seed", std::to_string(r.seed), false);
    out += ',';
    append_kv(out, "rep", std::to_string(r.rep), false);
    out += ',';
    append_kv(out, "ok", r.ok ? "true" : "false", false);
    out += ',';
    append_kv(out, "violation", r.violation, true);
    out += ',';
    append_kv(out, "work", std::to_string(r.work), false);
    out += ',';
    append_kv(out, "messages", std::to_string(r.messages), false);
    out += ',';
    append_kv(out, "effort", std::to_string(r.effort), false);
    out += ',';
    append_kv(out, "crashes", std::to_string(r.crashes), false);
    out += ',';
    append_kv(out, "rounds", r.rounds, true);
    out += ",\"extra\":{";
    for (std::size_t e = 0; e < r.extra.size(); ++e) {
      if (e) out += ',';
      out += '"' + json_escape(r.extra[e].first) + "\":\"" + json_escape(r.extra[e].second) +
             '"';
    }
    out += "}}";
  }
  out += "],\"aggregates\":[";
  const std::vector<GroupAggregate> groups = aggregate(rows);
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const GroupAggregate& g = groups[i];
    if (i) out += ',';
    out += '{';
    append_kv(out, "group", g.group, true);
    out += ',';
    append_kv(out, "protocol", g.protocol, true);
    out += ',';
    append_kv(out, "substrate", g.substrate, true);
    out += ',';
    append_kv(out, "n", std::to_string(g.n), false);
    out += ',';
    append_kv(out, "t", std::to_string(g.t), false);
    out += ',';
    append_kv(out, "runs", std::to_string(g.metrics.runs), false);
    out += ',';
    append_kv(out, "max_work", std::to_string(g.metrics.max_work), false);
    out += ',';
    append_kv(out, "max_messages", std::to_string(g.metrics.max_messages), false);
    out += ',';
    append_kv(out, "max_effort", std::to_string(g.metrics.max_effort), false);
    out += ',';
    append_kv(out, "max_crashes", std::to_string(g.metrics.max_crashes), false);
    out += ',';
    append_kv(out, "max_rounds", format_round(g.metrics.max_rounds), true);
    out += ',';
    append_kv(out, "ok", g.metrics.all_ok ? "true" : "false", false);
    out += '}';
  }
  out += ']';
  if (include_timing) {
    // Machine-dependent by design; excluded from the determinism contract
    // (see report.h).  Groups are keyed, not positional, so consumers can
    // join on the aggregates; the per-repetition rows are what
    // bench/compare_bench.py matches across two reports to print wall_ms
    // deltas (the tracked perf trajectory seeded by BENCH_scale.json).
    double total = 0;
    for (const ScenarioResult& r : rows) total += r.wall_ms;
    out += ",\"timing\":{\"total_ms\":" + format_ms(total) + ",\"groups\":{";
    for (std::size_t i = 0; i < groups.size(); ++i) {
      if (i) out += ',';
      out += '"' + json_escape(groups[i].group) + "\":" + format_ms(groups[i].wall_ms);
    }
    // Per-protocol rollup (first-occurrence order): total_ms alone misleads
    // across sweeps whose protocol mix varies by tier -- the scale family
    // drops C_batch past t = 256 (its n + t <= 440 deadline cap), so a
    // cross-tier total silently compares different protocol sets.  Summing
    // per protocol gives comparable curves.
    std::vector<std::pair<std::string, double>> per_protocol;
    for (const ScenarioResult& r : rows) {
      bool found = false;
      for (auto& [proto, ms] : per_protocol)
        if (proto == r.protocol) {
          ms += r.wall_ms;
          found = true;
          break;
        }
      if (!found) per_protocol.emplace_back(r.protocol, r.wall_ms);
    }
    out += "},\"per_protocol\":{";
    for (std::size_t i = 0; i < per_protocol.size(); ++i) {
      if (i) out += ',';
      out += '"' + json_escape(per_protocol[i].first) + "\":" + format_ms(per_protocol[i].second);
    }
    out += "},\"rows\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (i) out += ',';
      out += "{\"id\":\"" + json_escape(rows[i].id) +
             "\",\"rep\":" + std::to_string(rows[i].rep) +
             ",\"wall_ms\":" + format_ms(rows[i].wall_ms);
      // Live-substrate repetitions additionally report real throughput
      // (work units per wall-clock second, measured by src/substrate/);
      // bench/compare_bench.py --timing diffs these in their own
      // throughput table so live rows never pollute the wall_ms deltas.
      if (rows[i].units_per_sec > 0)
        out += ",\"units_per_sec\":" + format_ms(rows[i].units_per_sec);
      out += '}';
    }
    out += "]}";
  }
  out += '}';
  return out;
}

}  // namespace dowork::harness
