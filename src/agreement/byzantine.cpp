#include "agreement/byzantine.h"

#include <stdexcept>

#include "protocols/protocol_a.h"
#include "protocols/protocol_b.h"
#include "protocols/protocol_c.h"
#include "sim/simulator.h"

namespace dowork {

Round work_protocol_time_bound(const std::string& protocol, const DoAllConfig& cfg) {
  const std::uint64_t n = static_cast<std::uint64_t>(std::max<std::int64_t>(cfg.n, cfg.t));
  const std::uint64_t t = static_cast<std::uint64_t>(cfg.t);
  if (protocol == "A") {
    // Theorem 2.3(c): nt + 3t^2, plus slack for the generalization.
    return Round{(n + 3 * t) * (t + 1) + 4};
  }
  if (protocol == "B") {
    // Theorem 2.8(c): 3n + 8t, generalized slack as in the tests.
    return Round{3 * n + 14 * t + 8 * static_cast<std::uint64_t>(int_sqrt_ceil(cfg.t)) + 64};
  }
  if (protocol == "C") {
    // Theorem 3.8(c): t * K * (n+t) * 2^(n+t).
    ProtocolCProcess probe(cfg, 0);
    return (Round{t} * probe.contact_bound_k() * static_cast<std::uint64_t>(cfg.n + cfg.t))
           << static_cast<unsigned>(cfg.n + cfg.t);
  }
  throw std::invalid_argument("work_protocol_time_bound: unknown protocol " + protocol);
}

namespace {

// Collects decisions (owned by the harness, outlives the simulator).
struct Blackboard {
  std::vector<std::optional<std::int64_t>> decisions;
};

// Wraps a process of the underlying work protocol (senders) or nothing
// (pure receivers), maintaining the current value for the general and
// deciding at the predetermined round.
class ByzantineProcess final : public IProcess {
 public:
  ByzantineProcess(int self, std::int64_t initial_value, std::unique_ptr<IProcess> inner,
                   bool wrap_values, int num_senders, Round decide_at, Blackboard* board)
      : self_(self),
        value_(initial_value),
        inner_(std::move(inner)),
        wrap_values_(wrap_values),
        num_senders_(num_senders),
        decide_at_(decide_at),
        board_(board) {}

  Action on_round(const RoundContext& ctx, const InboxView& inbox) override {
    // Adopt values and strip piggybacks before handing mail to the inner
    // protocol (as materialized envelopes: the inner process sees a plain
    // vector-backed InboxView).
    std::vector<Envelope> inner_mail;
    for (const Msg& msg : inbox) {
      if (const auto* v = msg.as<ValueMsg>()) {
        value_ = v->value;
        continue;
      }
      if (const auto* pv = msg.as<ValuedPayload>()) {
        value_ = pv->value;
        inner_mail.push_back(Envelope{msg.from, self_, msg.kind, msg.sent_round(), pv->inner});
        continue;
      }
      inner_mail.push_back(Envelope{msg.from, self_, msg.kind, msg.sent_round(), msg.payload()});
    }

    Action out;
    // Round 0: the general broadcasts its value to the senders -- one
    // range-addressed send, so a crash mid-broadcast informs the id prefix
    // of them (the fault injector's choice); the work protocol then spreads
    // whatever survived.
    if (self_ == 0 && ctx.round == Round{0}) {
      if (num_senders_ > 1)
        out.sends.push_back(
            Outgoing{IdRange{1, num_senders_}, MsgKind::kValue, std::make_shared<ValueMsg>(value_)});
      return out;
    }

    if (inner_ && !inner_done_ && ctx.round >= Round{1}) {
      Action a = inner_->on_round(ctx, inner_mail);
      if (a.terminate) inner_done_ = true;  // the wrapper decides later
      if (a.work) {
        // Performing unit j = informing process j-1 of the current value.
        out.work = a.work;
        out.sends.push_back(Outgoing{static_cast<int>(*a.work - 1), MsgKind::kValue,
                                     std::make_shared<ValueMsg>(value_)});
      }
      for (Outgoing& o : a.sends) {
        // Piggybacking wraps per send -- a broadcast's audience shares one
        // wrapper, exactly as it shares the inner payload.
        if (wrap_values_)
          o.payload = std::make_shared<ValuedPayload>(std::move(o.payload), value_);
        out.sends.push_back(std::move(o));
      }
    }

    if (ctx.round >= decide_at_) {
      board_->decisions[static_cast<std::size_t>(self_)] = value_;
      out.terminate = true;
    }
    return out;
  }

  Round next_wake(const Round& now) const override {
    if (self_ == 0 && now == Round{0}) return now;
    Round w = decide_at_;
    if (inner_ && !inner_done_) {
      Round iw = inner_->next_wake(now);
      if (iw < w) w = iw;
    }
    return w > now ? w : now;
  }

  std::string describe() const override {
    return "Byzantine[" + std::to_string(self_) + (inner_ ? ",sender]" : "]");
  }

 private:
  int self_;
  std::int64_t value_;
  std::unique_ptr<IProcess> inner_;
  bool inner_done_ = false;
  bool wrap_values_;
  int num_senders_;
  Round decide_at_;
  Blackboard* board_;
};

std::unique_ptr<IProcess> make_inner(const std::string& protocol, const DoAllConfig& cfg,
                                     int self) {
  if (protocol == "A") return std::make_unique<ProtocolAProcess>(cfg, self, Round{1});
  if (protocol == "B") return std::make_unique<ProtocolBProcess>(cfg, self, Round{1});
  if (protocol == "C")
    return std::make_unique<ProtocolCProcess>(cfg, self, ProtocolCOptions{}, Round{1});
  throw std::invalid_argument("run_byzantine: unknown protocol " + protocol);
}

}  // namespace

ByzantineResult run_byzantine(const ByzantineConfig& cfg, std::unique_ptr<FaultInjector> faults) {
  if (cfg.n_procs < 1) throw std::invalid_argument("run_byzantine: n_procs >= 1 required");
  if (cfg.t_faults < 0 || cfg.t_faults + 1 > cfg.n_procs)
    throw std::invalid_argument("run_byzantine: need 0 <= t_faults < n_procs");

  const int num_senders = cfg.t_faults + 1;
  // The senders perform n units of work: unit j informs process j-1.
  DoAllConfig work_cfg{cfg.n_procs, num_senders};
  const Round decide_at = Round{1} + work_protocol_time_bound(cfg.protocol, work_cfg) + Round{4};
  const bool wrap = cfg.protocol == "C";

  Blackboard board;
  board.decisions.assign(static_cast<std::size_t>(cfg.n_procs), std::nullopt);

  std::vector<std::unique_ptr<IProcess>> procs;
  for (int i = 0; i < cfg.n_procs; ++i) {
    std::unique_ptr<IProcess> inner =
        i < num_senders ? make_inner(cfg.protocol, work_cfg, i) : nullptr;
    std::int64_t init = (i == 0) ? cfg.value : 0;
    procs.push_back(std::make_unique<ByzantineProcess>(i, init, std::move(inner), wrap,
                                                       num_senders, decide_at, &board));
  }

  Simulator::Options opts;
  opts.strict_one_op = false;  // performing a unit *is* sending a message here
  opts.n_units = cfg.n_procs;
  Simulator sim(std::move(procs), std::move(faults), opts);
  ByzantineResult result;
  result.metrics = sim.run();
  result.decisions = board.decisions;
  result.general_crashed = sim.state_of(0) == ProcState::kCrashed;

  result.agreement = true;
  std::optional<std::int64_t> first;
  for (int i = 0; i < cfg.n_procs; ++i) {
    if (sim.state_of(i) == ProcState::kCrashed) continue;
    const auto& d = result.decisions[static_cast<std::size_t>(i)];
    if (!d) {
      result.agreement = false;  // survivor without a decision
      continue;
    }
    if (!first) first = *d;
    else if (*first != *d) result.agreement = false;
  }
  result.validity = result.general_crashed ||
                    (result.agreement && first && *first == cfg.value);
  return result;
}

}  // namespace dowork
