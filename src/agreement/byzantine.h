// Byzantine agreement for crash faults built on the work protocols (paper
// Section 5).
//
// The general (process 0) broadcasts its value to the t+1 *senders*
// (processes 0..t); the senders then run one of the work protocols where
// "performing unit j" means sending the message "the general's value is x"
// to process j-1.  Every process starts with value 0 and adopts any value it
// is informed of; at a predetermined round by which the work protocol must
// have terminated, everyone decides its current value.
//
// Faithfulness notes (the paper's proof depends on both):
//   * with Protocols A and B the checkpoint messages must NOT carry the
//     value (a crashed broadcast could otherwise leak it past the takeover
//     order), so only the unit-j value messages inform;
//   * with Protocol C every protocol message additionally carries the
//     sender's current value (we wrap payloads rather than sending an extra
//     message, matching the paper's piggybacking).
//
// Resulting message complexity: via A/B O(n + t*sqrt(t)) with O(n) rounds
// (improving on Bracha's nonconstructive O(n + t^1.5) bound); via C
// O(n + t log t) messages at exponential time.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/work.h"
#include "sim/fault_injector.h"
#include "sim/metrics.h"
#include "sim/process.h"

namespace dowork {

// "The general's value is x."
struct ValueMsg final : Payload {
  std::int64_t value;
  explicit ValueMsg(std::int64_t v) : value(v) {}
};

// Protocol C piggyback: an inner protocol payload plus the sender's current
// value for the general (one message on the wire, as in the paper).
struct ValuedPayload final : Payload {
  std::shared_ptr<const Payload> inner;
  std::int64_t value;
  ValuedPayload(std::shared_ptr<const Payload> p, std::int64_t v)
      : inner(std::move(p)), value(v) {}
};

struct ByzantineConfig {
  int n_procs = 0;            // processes that must agree
  int t_faults = 0;           // tolerated crash faults; senders = 0..t_faults
  std::int64_t value = 1;     // the general's input (must be != 0, the default)
  std::string protocol = "B"; // work protocol run by the senders: "A", "B" or "C"
};

struct ByzantineResult {
  RunMetrics metrics;
  // Decision of each process; nullopt = crashed before deciding.
  std::vector<std::optional<std::int64_t>> decisions;
  bool general_crashed = false;
  // All surviving processes decided the same value.
  bool agreement = false;
  // The general survived and everyone decided its value (trivially true when
  // the general crashed).
  bool validity = false;
};

// Worst-case retirement bound (with slack) for a work protocol instance,
// used as the predetermined decision round.
Round work_protocol_time_bound(const std::string& protocol, const DoAllConfig& cfg);

ByzantineResult run_byzantine(const ByzantineConfig& cfg,
                              std::unique_ptr<FaultInjector> faults);

}  // namespace dowork
