// Message model for the synchronous crash-fault simulator.
//
// A message sent in round r is delivered at the start of round r+1.  Payloads
// are protocol-defined: each protocol derives its payload structs from
// Payload and downcasts on receipt (the simulator never inspects payloads).
// The `kind` tag exists so the metrics layer can break message counts down
// the way the paper does (ordinary vs checkpoint vs go-ahead vs poll...).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/biguint.h"

namespace dowork {

// Classification used only for accounting; protocols choose the tag that
// matches the paper's terminology for each send.
enum class MsgKind : std::uint8_t {
  kOrdinary,     // Protocol C "ordinary" messages; generic data messages
  kCheckpoint,   // Protocol A/B partial & full checkpoint broadcasts
  kGoAhead,      // Protocol B go-ahead probes
  kPoll,         // Protocol C "Are you alive?"
  kPollReply,    // response to a poll (exempt from the one-op-per-round rule)
  kAgreement,    // Protocol D agreement-phase broadcasts
  kValue,        // Byzantine layer: "the general's value is x"
  kOther,
};

const char* to_string(MsgKind k);

// Base class for protocol payloads.  Payloads are immutable after send and
// shared between the copies delivered to each recipient of a broadcast.
struct Payload {
  virtual ~Payload() = default;
};

// A message as handed to the simulator by a process (destination chosen,
// round filled in by the simulator).
struct Outgoing {
  int to = -1;
  MsgKind kind = MsgKind::kOther;
  std::shared_ptr<const Payload> payload;
};

// A delivered message as seen by the recipient.
struct Envelope {
  int from = -1;
  int to = -1;
  MsgKind kind = MsgKind::kOther;
  Round sent_round;  // round in which the sender emitted it
  std::shared_ptr<const Payload> payload;

  // Convenience downcast; returns nullptr if the payload has a different
  // dynamic type.
  template <typename T>
  const T* as() const {
    return dynamic_cast<const T*>(payload.get());
  }
};

// Helper: broadcast one payload to a list of recipients.
std::vector<Outgoing> broadcast(const std::vector<int>& recipients, MsgKind kind,
                                std::shared_ptr<const Payload> payload);

}  // namespace dowork
