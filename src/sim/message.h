// Message model for the synchronous crash-fault simulator.
//
// A message sent in round r is delivered at the start of round r+1.  Payloads
// are protocol-defined: each protocol derives its payload structs from
// Payload and downcasts on receipt (the simulator never inspects payloads).
// The `kind` tag exists so the metrics layer can break message counts down
// the way the paper does (ordinary vs checkpoint vs go-ahead vs poll...).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <typeinfo>
#include <vector>

#include "util/round.h"

namespace dowork {

// Classification used only for accounting; protocols choose the tag that
// matches the paper's terminology for each send.
enum class MsgKind : std::uint8_t {
  kOrdinary,     // Protocol C "ordinary" messages; generic data messages
  kCheckpoint,   // Protocol A/B partial & full checkpoint broadcasts
  kGoAhead,      // Protocol B go-ahead probes
  kPoll,         // Protocol C "Are you alive?"
  kPollReply,    // response to a poll (exempt from the one-op-per-round rule)
  kAgreement,    // Protocol D agreement-phase broadcasts
  kValue,        // Byzantine layer: "the general's value is x"
  kOther,
};

const char* to_string(MsgKind k);

// Base class for protocol payloads.
//
// Ownership rules (the simulator hot path depends on these):
//   * A broadcast allocates its payload ONCE; every Outgoing of the
//     broadcast and every delivered Envelope holds a shared_ptr to the same
//     const object.  The simulator never clones a payload -- it moves the
//     sender's reference into the recipient's envelope -- so sending to t
//     recipients costs t pointer copies, not t payload copies
//     (sim_test.cpp's PayloadSharing pins this down).
//   * Payloads are immutable after send: they are typed `const` end to end,
//     and because all recipients alias one object, any mutation would be a
//     cross-process side channel the model forbids.
//   * A recipient that wants a payload beyond its on_round call copies the
//     shared_ptr (see the inbox reuse contract in process.h).
struct Payload {
  virtual ~Payload() = default;
};

// A message as handed to the simulator by a process (destination chosen,
// round filled in by the simulator).
struct Outgoing {
  int to = -1;
  MsgKind kind = MsgKind::kOther;
  std::shared_ptr<const Payload> payload;
};

// A delivered message as seen by the recipient.
struct Envelope {
  int from = -1;
  int to = -1;
  MsgKind kind = MsgKind::kOther;
  Round sent_round;  // round in which the sender emitted it
  std::shared_ptr<const Payload> payload;

  // Convenience downcast; returns nullptr if the payload has a different
  // dynamic type.  Exact-type matching (every payload struct is final, and
  // receipt code always asks for the concrete type), so this is a typeid
  // comparison -- one pointer/string check -- rather than a dynamic_cast
  // graph walk; ingest runs once per delivered envelope, which makes this
  // the hottest cast in the simulator.
  template <typename T>
  const T* as() const {
    static_assert(std::is_final_v<T>, "as<T> matches exact dynamic types only");
    const Payload* p = payload.get();
    if (p == nullptr || typeid(*p) != typeid(T)) return nullptr;
    return static_cast<const T*>(p);
  }
};

// Helper: broadcast one payload to a list of recipients.
std::vector<Outgoing> broadcast(const std::vector<int>& recipients, MsgKind kind,
                                std::shared_ptr<const Payload> payload);

}  // namespace dowork
