// Message model for the synchronous crash-fault simulator.
//
// A message sent in round r is delivered at the start of round r+1.  Payloads
// are protocol-defined: each protocol derives its payload structs from
// Payload and downcasts on receipt (the simulator never inspects payloads).
// The `kind` tag exists so the metrics layer can break message counts down
// the way the paper does (ordinary vs checkpoint vs go-ahead vs poll...).
//
// Broadcast-native addressing (the delivery plane's core idea): a send names
// its audience as a RecipientSet -- one process, a contiguous id range, or an
// explicit bit set -- instead of materializing one entry per recipient.  The
// simulator records each send ONCE in a per-round broadcast ledger
// (DeliveryRecord) and recipients read it through a lazy InboxView, so a
// t-recipient broadcast costs one ledger record, not t envelopes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <typeinfo>
#include <vector>

#include "util/bitset.h"
#include "util/round.h"

namespace dowork {

// Classification used only for accounting; protocols choose the tag that
// matches the paper's terminology for each send.
enum class MsgKind : std::uint8_t {
  kOrdinary,     // Protocol C "ordinary" messages; generic data messages
  kCheckpoint,   // Protocol A/B partial & full checkpoint broadcasts
  kGoAhead,      // Protocol B go-ahead probes
  kPoll,         // Protocol C "Are you alive?"
  kPollReply,    // response to a poll (exempt from the one-op-per-round rule)
  kAgreement,    // Protocol D agreement-phase broadcasts
  kValue,        // Byzantine layer: "the general's value is x"
  kOther,
};

const char* to_string(MsgKind k);

struct Payload;

namespace detail {
// Exact dynamic-type equality for the as<T>() downcasts, out of line
// (message.cpp) so the optimizer cannot constant-fold it.  GCC 12 at -O2+
// folds an inline `typeid(*p) == typeid(T)` to false when T lives in an
// anonymous namespace: it drops type_info::operator=='s same-object fast
// path (assuming a runtime typeinfo pointer cannot equal the TU-local
// typeinfo's address -- it can, via the vtable of an object built in that
// TU) and the remaining name comparison rejects '*'-prefixed local names
// by design.  Out of line, both operands are runtime values and the
// comparison is evaluated faithfully.
bool same_payload_type(const std::type_info& a, const std::type_info& b);

// The one shared implementation of exact-dynamic-type payload downcasting
// (Envelope::as and Msg::as delegate here): a typeinfo-pointer fast path
// (statically linked typeinfos are unique per type, so this is one vtable
// load + compare), then the fold-proof out-of-line comparison -- a
// misfolded fast path can only cost the call, never a wrong answer.
template <typename T>
const T* payload_as(const Payload* p) {
  static_assert(std::is_final_v<T>, "as<T> matches exact dynamic types only");
  if (p == nullptr) return nullptr;
  const std::type_info& ti = typeid(*p);
  if (&ti != &typeid(T) && !same_payload_type(ti, typeid(T))) return nullptr;
  return static_cast<const T*>(p);
}
}  // namespace detail

// Base class for protocol payloads.
//
// Ownership rules (the simulator hot path depends on these):
//   * A broadcast allocates its payload ONCE; the one Outgoing of the
//     broadcast and the one ledger record it becomes hold the only
//     references.  The simulator never clones a payload -- it moves the
//     sender's reference into the ledger -- so sending to t recipients costs
//     zero pointer copies and zero refcount traffic (tests/inbox_test.cpp's
//     DeliveryPlane suite pins this down).
//   * Payloads are immutable after send: they are typed `const` end to end,
//     and because all recipients alias one object, any mutation would be a
//     cross-process side channel the model forbids.
//   * A recipient that wants a payload beyond its on_round call copies the
//     message's shared_ptr via Msg::payload() (see the inbox reuse contract
//     in process.h).
struct Payload {
  Payload() { alloc_count_.fetch_add(1, std::memory_order_relaxed); }
  Payload(const Payload&) { alloc_count_.fetch_add(1, std::memory_order_relaxed); }
  virtual ~Payload() = default;

  // Number of Payload objects constructed so far, process-wide (relaxed
  // atomic: scenario runs are thread-parallel).  Exists for the
  // delivery-plane allocation tests ("one payload allocation per broadcast,
  // zero per-recipient"); never read on a hot path -- one relaxed increment
  // per broadcast, never per recipient.
  static std::uint64_t allocations() { return alloc_count_.load(std::memory_order_relaxed); }

 private:
  static std::atomic<std::uint64_t> alloc_count_;
};

// A contiguous process-id range [first, end).  Groups are consecutive id
// ranges (protocols/groups.h), so every checkpoint broadcast's audience --
// "group g" or "my group above me" -- is a range; storing the endpoints
// instead of a materialized vector<int> makes broadcast ops allocation-free.
struct IdRange {
  int first = 0;
  int end = 0;  // exclusive
  bool empty() const { return end <= first; }
  std::size_t size() const { return empty() ? 0 : static_cast<std::size_t>(end - first); }
};

// Immutable audience for a set-addressed broadcast (Protocol D's "everyone I
// still believe correct"): a bitset over process ids plus its cached
// popcount.  Shared by reference -- the sender builds it once (and may cache
// it across rounds while the audience is unchanged); every ledger record of
// the broadcast aliases the same object.
struct RecipientBits {
  DynBitset bits;
  std::uint64_t count = 0;
};

std::shared_ptr<const RecipientBits> make_recipient_bits(DynBitset bits);

// The audience of one send: a single process (unicasts, poll replies), a
// contiguous id range (group checkpoints), or a shared bit set (Protocol D's
// believed-correct set).  Recipients are always enumerated in ascending id
// order; that order defines the "first k recipients" a mid-broadcast crash
// prefix cut delivers to (sim/fault_injector.h).
class RecipientSet {
 public:
  // Default: a single invalid recipient (id -1), like the old unaddressed
  // Outgoing; the simulator rejects it at send time.
  RecipientSet() = default;
  RecipientSet(int to) : lo_(to), hi_(to + 1) {}  // NOLINT(runtime/explicit)
  RecipientSet(IdRange r)                          // NOLINT(runtime/explicit)
      : lo_(r.first), hi_(r.empty() ? r.first : r.end) {}
  RecipientSet(std::shared_ptr<const RecipientBits> bits)  // NOLINT(runtime/explicit)
      : bits_(std::move(bits)) {}

  std::size_t size() const {
    if (bits_) return static_cast<std::size_t>(bits_->count);
    return hi_ > lo_ ? static_cast<std::size_t>(hi_ - lo_) : 0;
  }
  bool empty() const { return size() == 0; }

  bool contains(int id) const {
    if (bits_)
      return id >= 0 && static_cast<std::size_t>(id) < bits_->bits.size() &&
             bits_->bits.test(static_cast<std::size_t>(id));
    return lo_ <= id && id < hi_;
  }

  // Position of `id` in the ascending enumeration; only meaningful when
  // contains(id).  Used to test membership in a crash-truncated prefix.
  std::size_t rank_of(int id) const {
    if (bits_) return bits_->bits.count_prefix(static_cast<std::size_t>(id));
    return static_cast<std::size_t>(id - lo_);
  }

  // Lowest member id (for error messages / validation); -1 when empty.
  int lowest() const;
  // True when every member id lies in [0, t).
  bool within(int t) const;

  // Calls f(id) for the first `k` members in ascending order (all of them
  // when k >= size(), so SIZE_MAX means "everyone").
  template <typename F>
  void for_each_prefix(std::size_t k, F&& f) const {
    if (bits_) {
      const DynBitset& b = bits_->bits;
      std::size_t i = b.find_next(0);
      for (std::size_t done = 0; done < k && i < b.size(); ++done, i = b.find_next(i + 1))
        f(static_cast<int>(i));
      return;
    }
    // Clamp before narrowing: a huge k (the SIZE_MAX "all" convention)
    // must mean the whole range, not an overflowed int.
    const int stop = k >= size() ? hi_ : lo_ + static_cast<int>(k);
    for (int id = lo_; id < stop; ++id) f(id);
  }

  // Sets the bits of the first `k` members in `dst` (sized >= every member
  // id + 1).  Word-level OR when the audience is a full bit set of matching
  // size -- the Protocol D hot path -- per-member bits otherwise.
  void mark_prefix(DynBitset& dst, std::size_t k) const {
    if (bits_ && k >= bits_->count && bits_->bits.size() == dst.size()) {
      dst |= bits_->bits;
      return;
    }
    for_each_prefix(k, [&dst](int id) { dst.set(static_cast<std::size_t>(id)); });
  }

  // The shared audience object, when set-addressed (null otherwise); lets
  // wrappers that remap ids detect the representation.
  const std::shared_ptr<const RecipientBits>& shared_bits() const { return bits_; }
  // The [first, end) range when range/single-addressed (empty when
  // set-addressed).
  IdRange range() const { return bits_ ? IdRange{} : IdRange{lo_, hi_}; }

 private:
  int lo_ = -1;
  int hi_ = 0;  // default: single recipient -1
  std::shared_ptr<const RecipientBits> bits_;
};

// A message as handed to the simulator by a process (audience chosen, round
// filled in by the simulator).  A broadcast is ONE Outgoing whose `to` names
// every recipient; `to` converts implicitly from a plain process id, so
// unicasts read as before: Outgoing{7, kind, payload}.
struct Outgoing {
  RecipientSet to;
  MsgKind kind = MsgKind::kOther;
  std::shared_ptr<const Payload> payload;
};

// A delivered message in owning form.  The simulator's own delivery no
// longer materializes these (recipients read ledger records through Msg
// views); Envelope remains the storable representation used by protocol
// wrappers that translate mail before re-dispatching it (Protocol D's
// revert-to-A id translation, the Byzantine layer's payload unwrapping) and
// by tests that hand-craft inboxes.
struct Envelope {
  int from = -1;
  int to = -1;
  MsgKind kind = MsgKind::kOther;
  Round sent_round;  // round in which the sender emitted it
  std::shared_ptr<const Payload> payload;

  // Convenience downcast; returns nullptr if the payload has a different
  // dynamic type.  Exact-type matching (every payload struct is final, and
  // receipt code always asks for the concrete type), so this is a typeid
  // comparison -- see detail::payload_as -- rather than a dynamic_cast
  // graph walk.
  template <typename T>
  const T* as() const {
    return detail::payload_as<T>(payload.get());
  }
};

// One ledger record: a send as the simulator committed it.  `cut` is the
// number of recipients (in ascending audience order) the message actually
// reached -- equal to to.size() for an uncut send, smaller when the fault
// injector killed the sender mid-broadcast (CrashPlan::deliver_prefix).
// All records of one round share their sent round (stored once, ledger-wide)
// -- messages live exactly one round, so per-record rounds would be t copies
// of the same value.
struct DeliveryRecord {
  int from = -1;
  MsgKind kind = MsgKind::kOther;
  std::size_t cut = 0;
  RecipientSet to;
  std::shared_ptr<const Payload> payload;

  bool delivers_to(int id) const {
    return to.contains(id) && (cut >= to.size() || to.rank_of(id) < cut);
  }
};

// A non-owning view of one delivered message, as yielded by InboxView
// iteration.  Copying the underlying payload reference (for retention past
// on_round) is explicit via payload(); plain iteration touches no refcounts.
struct Msg {
  int from = -1;
  MsgKind kind = MsgKind::kOther;
  const Round* sent_round_ptr = nullptr;
  const std::shared_ptr<const Payload>* payload_ptr = nullptr;

  Msg() = default;
  Msg(const Envelope& e)  // NOLINT(runtime/explicit)
      : from(e.from), kind(e.kind), sent_round_ptr(&e.sent_round), payload_ptr(&e.payload) {}

  const Round& sent_round() const { return *sent_round_ptr; }
  // The owning reference; copy it to keep the payload alive past on_round.
  const std::shared_ptr<const Payload>& payload() const { return *payload_ptr; }

  template <typename T>
  const T* as() const {
    return detail::payload_as<T>(payload_ptr->get());
  }
};

// The inbox a process reads in on_round: a lazy view over the round's
// broadcast ledger filtered to "records that deliver to me", or (wrapper /
// test mode) over a materialized vector<Envelope>.  Iteration yields every
// message sent to the process in the previous round, in emission order
// (senders in step order, each sender's sends in Action order) -- exactly
// the order the envelope-based delivery produced.  Guarantees:
//   * iteration allocates nothing and touches no payload refcounts;
//   * empty() is O(1) (the simulator precomputes per-round mail membership);
//   * a crash-truncated broadcast is visible only to the first `cut`
//     recipients in ascending id order (DeliveryRecord::delivers_to).
class InboxView {
 public:
  InboxView() = default;
  InboxView(const std::vector<Envelope>& envelopes)  // NOLINT(runtime/explicit)
      : envs_(&envelopes), any_(!envelopes.empty()) {}
  // Ledger mode.  `sent_round` is the shared sent round of every record;
  // when the delivery plane mixes in latency-delayed records (the network
  // path, sim/network_model.h) it passes `per_record_rounds` -- aligned
  // index-for-index with `records` -- and each message reports its own
  // sent round instead.
  InboxView(const std::vector<DeliveryRecord>& records, const Round& sent_round, int self,
            bool any, const std::vector<Round>* per_record_rounds = nullptr)
      : recs_(&records), sent_round_(&sent_round), sent_rounds_(per_record_rounds),
        self_(self), any_(any) {}

  bool empty() const { return !any_; }
  // Number of messages in the view; O(ledger records), for tests and
  // diagnostics (protocols iterate instead).
  std::size_t count() const;

  class const_iterator {
   public:
    using value_type = Msg;
    using difference_type = std::ptrdiff_t;
    using reference = const Msg&;
    using pointer = const Msg*;
    using iterator_category = std::forward_iterator_tag;

    const_iterator() = default;
    const_iterator(const InboxView* v, std::size_t i) : v_(v), i_(i) { seek(); }

    reference operator*() const { return cur_; }
    pointer operator->() const { return &cur_; }
    const_iterator& operator++() {
      ++i_;
      seek();
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.i_ == b.i_;
    }

   private:
    // Advances i_ to the next item addressed to the viewer and fills cur_.
    void seek();

    const InboxView* v_ = nullptr;
    std::size_t i_ = 0;
    Msg cur_;
  };

  const_iterator begin() const { return const_iterator(this, any_ ? 0 : limit()); }
  const_iterator end() const { return const_iterator(this, limit()); }

  // First message, by value (a Msg is a handful of pointers).  Iterators
  // own the Msg they expose, so `*inbox.begin()` on the begin() temporary
  // would dangle; use this for one-message peeks.  Precondition: !empty().
  Msg front() const { return *begin(); }

 private:
  friend class const_iterator;
  std::size_t limit() const {
    if (recs_) return recs_->size();
    if (envs_) return envs_->size();
    return 0;
  }

  const std::vector<DeliveryRecord>* recs_ = nullptr;
  const std::vector<Envelope>* envs_ = nullptr;
  const Round* sent_round_ = nullptr;
  const std::vector<Round>* sent_rounds_ = nullptr;  // per-record, network path
  int self_ = -1;
  bool any_ = false;
};

// Helper: one broadcast Outgoing addressed to an explicit recipient list
// (converted to a shared RecipientBits; ids need not be sorted).
Outgoing broadcast(const std::vector<int>& recipients, MsgKind kind,
                   std::shared_ptr<const Payload> payload);

// Remaps every member id of `set` through `map` (map[id] = new id, table
// sized for every member), returning a set over ids < t.  Contiguous ranges
// generally map to non-contiguous sets, so the result is bit-set addressed
// unless the input was a unicast.  Used by Protocol D's revert-to-A wrapper
// to translate the embedded protocol's rank-addressed broadcasts back to
// real process ids.
RecipientSet remap_recipients(const RecipientSet& set, const std::vector<int>& map, int t);

}  // namespace dowork
