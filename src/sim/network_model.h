// Network-fault model: latency, loss, and partitions as first-class
// adversaries.
//
// The paper's adversary crashes processes; its protocols nonetheless assume a
// network that delivers every surviving send by the next round (sync) or
// within a bounded delay (async).  NetSpec declares the ways this PR lets the
// network itself misbehave, and NetworkModel is the run-time oracle both
// substrates consult at delivery-commit time:
//
//   latency    One uniform draw in [lat_min, lat_max].  The synchronous
//              simulator draws once per committed record -- the sender's
//              uplink delay, shifting the whole broadcast to round
//              r + 1 + d -- so a delayed broadcast stays ONE ledger record.
//              The asynchronous simulator draws once per link, which is
//              exactly its historical ad-hoc [min_delay, max_delay] draw:
//              with no NetSpec the async substrate wraps its option knobs in
//              a NetworkModel and reproduces the old byte stream verbatim.
//   loss       Seeded Bernoulli per link (probability `drop`), drawn in
//              ascending recipient order over the crash-cut audience prefix.
//              A lost recipient is an audience-bitset edit on the record,
//              not per-recipient bookkeeping.
//   partition  Scheduled split/heal windows, each a bipartition of the
//              process ids at a split point: while a window is in force,
//              links crossing the cut are severed.  Deterministic -- severed
//              links consume no randomness -- and applied at send-commit
//              time: a send committed while the cut is in force is lost even
//              if the partition heals before the delivery round.
//
// Decision order at commit time (the draw stream the determinism contract
// pins): the fault injector's message hook first (adversarial drop/delay,
// sim/fault_injector.h), then the partition filter, then one loss draw per
// surviving prefix member, then -- if the record still has an audience --
// one latency draw.  All randomness comes from a dedicated Rng seeded with
// NetSpec::seed (+ rep in the harness), so crash schedules and network
// weather are independently reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace dowork {

// One scheduled partition window: while `from <= now < until`, process ids
// [0, split) and [split, t) cannot exchange messages.  `now` is the stepped
// round (sync) or the event time (async).
struct PartitionWindow {
  std::uint64_t from = 0;
  std::uint64_t until = 0;  // heal time, exclusive
  int split = 1;            // ids below the split vs the rest
  friend bool operator==(const PartitionWindow&, const PartitionWindow&) = default;
};

// Declarative network component of a FaultSpec (harness/fault_spec.h owns
// the composed grammar; the "net=(...)" part round-trips through the
// to_string/parse pair below).  A default NetSpec is a no-op: every knob at
// its default leaves both substrates bit-for-bit unchanged.
struct NetSpec {
  // Extra delivery latency, uniform in [lat_min, lat_max]; lat_max == 0
  // disables the component.  Sync: whole extra rounds on top of the normal
  // next-round delivery.  Async: the link delay itself, replacing the
  // substrate's [min_delay, max_delay] option knobs.
  std::uint64_t lat_min = 0;
  std::uint64_t lat_max = 0;
  // Per-link loss probability; 0 disables the component.
  double drop = 0.0;
  // Scheduled split/heal windows (may overlap; a link is severed while any
  // window covering `now` separates its endpoints).
  std::vector<PartitionWindow> partitions;
  // Seed for the latency/loss draws.  The synchronous substrate gives the
  // network its own Rng(seed + rep); the asynchronous substrate draws from
  // its single event Rng (AsyncSim::Options::seed) and ignores this field.
  std::uint64_t seed = 0;

  bool is_noop() const { return lat_max == 0 && drop == 0.0 && partitions.empty(); }

  // Builders for the scenario generators (fields stay public; chain by
  // assignment for composed weather).
  static NetSpec latency(std::uint64_t lo, std::uint64_t hi, std::uint64_t seed = 0);
  static NetSpec lossy(double p, std::uint64_t seed = 0);
  static NetSpec partition(std::vector<PartitionWindow> windows, std::uint64_t seed = 0);

  // The "(...)" part of the composed FaultSpec grammar, active fields only
  // (seed always), e.g. "(lat=1..20,drop=0.05,part=8..40@4,seed=7)".
  // parse() accepts exactly what to_string() emits for non-noop specs and
  // throws std::invalid_argument on anything else, including a field-free
  // or effect-free body.
  std::string to_string() const;
  static NetSpec parse(const std::string& text);

  friend bool operator==(const NetSpec&, const NetSpec&) = default;
};

// Run-time oracle over one NetSpec.  Stateless beyond the spec: callers own
// the Rng (the sync simulator a dedicated one, the async simulator its event
// stream), so the model itself never breaks run-purity.
class NetworkModel {
 public:
  NetworkModel() = default;
  explicit NetworkModel(NetSpec spec) : spec_(std::move(spec)) {}

  bool is_noop() const { return spec_.is_noop(); }
  bool has_latency() const { return spec_.lat_max > 0; }
  bool has_drop() const { return spec_.drop > 0.0; }
  bool has_partitions() const { return !spec_.partitions.empty(); }
  const NetSpec& spec() const { return spec_; }

  // One latency draw in [lat_min, lat_max].
  std::uint64_t delay(Rng& rng) const { return rng.uniform(spec_.lat_min, spec_.lat_max); }
  // One loss draw for one link.
  bool drops(Rng& rng) const { return rng.chance(spec_.drop); }
  // True when some window in force at `now` puts `from` and `to` on
  // opposite sides of its cut.  Deterministic.
  bool severed(int from, int to, std::uint64_t now) const;
  // 0 when no window is in force at `now`; otherwise 1 for ids below the
  // first in-force window's split, 2 for the rest (the SimObservable
  // partition-id convention, sim/observable.h).
  int partition_side(int proc, std::uint64_t now) const;

 private:
  NetSpec spec_;
};

}  // namespace dowork
