// Crash-fault injection.
//
// The adversary may crash a process at any point during its round.  Per the
// paper (Section 2.1): a process can crash in the middle of a broadcast so
// that "only some subset of the processes receive the message", and it can
// crash immediately after performing a unit of work, before reporting it.
// CrashPlan captures both degrees of freedom.  The simulator never allows
// the last surviving process to crash: the problem statement only requires
// completion of the work in executions where at least one process survives,
// and all protocols assume at most t-1 failures.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sim/process.h"
#include "util/round.h"
#include "util/rng.h"

namespace dowork {

struct CrashPlan {
  // Does the in-progress work unit (if any) complete before the crash?
  bool work_completes = false;
  // Which of the in-progress messages actually leave the process.
  // Interpreted as a prefix length into the action's *flattened* message
  // sequence -- sends in Action::sends order, each audience enumerated in
  // ascending id order -- so a mid-broadcast cut reaches the lowest-id
  // recipients; SIZE_MAX means "all".
  std::size_t deliver_prefix = 0;

  friend bool operator==(const CrashPlan&, const CrashPlan&) = default;
};

// The adversary's verdict on one committed send (decision point 4 below):
// erase the record, or hold it back for `delay` extra rounds beyond the
// normal next-round delivery.  A drop wins over any delay.
struct MessageFault {
  bool drop = false;
  std::uint64_t delay = 0;
};

struct SimSnapshot {
  int t = 0;            // total number of processes
  int alive = 0;        // processes neither crashed nor terminated
  int crashed_so_far = 0;
};

class SimObservable;

// Crash-decision points, in the order the simulator visits them:
//   1. attach()         — once, before round 0: hands adaptive injectors the
//                         read-only committed-state view (sim/observable.h),
//                         valid for the whole run.
//   2. on_round_start() — once per *stepped* round (fast-forwarded idle
//                         stretches are skipped), before any process steps.
//   3. inspect()        — per stepping process: the returned CrashPlan folds
//                         the paper's two mid-round degrees of freedom into
//                         one decision — the mid-broadcast prefix cut
//                         (deliver_prefix) and the crash-after-the-unit-but-
//                         before-reporting-it choice (work_completes).
//   4. on_message()     — per committed send (post crash cut), when the
//                         injector opted in via wants_message_faults(): the
//                         returned MessageFault drops the record or delays
//                         it, modeling an adversary that owns the wire
//                         instead of the processes.  The observable-state
//                         rules are identical to the crash points: the
//                         injector sees the committed record and the same
//                         SimObservable window it was attached with, nothing
//                         more.
// The scripted injectors below ignore hooks 1, 2 and 4 (the defaults are
// no-ops), so existing executions are bit-for-bit unchanged.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  // Decision point 1: offered once before the run; default: ignore the view.
  virtual void attach(const SimObservable& /*sim*/) {}
  // Decision point 2: a new round is about to step its processes.
  virtual void on_round_start(const Round& /*round*/) {}
  // Decision point 3: inspect the action process `proc` is about to take in
  // `round`; return a CrashPlan to kill it mid-round, or nullopt to let it
  // live.
  virtual std::optional<CrashPlan> inspect(int proc, const Round& round, const Action& action,
                                           const SimSnapshot& snap) = 0;
  // Decision point 4: `rec` (sent by `from` in `round`, crash cut already
  // applied) is about to enter the delivery plane.  Only consulted when
  // wants_message_faults() returned true at attach time, which also routes
  // the run through the network delivery path; injectors that leave both
  // defaults keep the crash-only hot path bit-for-bit.
  virtual std::optional<MessageFault> on_message(int /*from*/, const Round& /*round*/,
                                                 const DeliveryRecord& /*rec*/) {
    return std::nullopt;
  }
  // Cached by the simulator once per run, alongside attach().
  virtual bool wants_message_faults() const { return false; }
};

// No process ever fails.
class NoFaults final : public FaultInjector {
 public:
  std::optional<CrashPlan> inspect(int, const Round&, const Action&,
                                   const SimSnapshot&) override {
    return std::nullopt;
  }
};

// Explicit schedule: kill `proc` on the k-th round in which it takes a
// non-idle action (k counted from 1), with the given plan.  Used by tests to
// craft exact adversarial executions.
class ScheduledFaults final : public FaultInjector {
 public:
  struct Entry {
    int proc = -1;
    std::uint64_t on_nth_action = 1;  // 1 = first non-idle action
    CrashPlan plan;

    friend bool operator==(const Entry&, const Entry&) = default;
  };
  explicit ScheduledFaults(std::vector<Entry> entries);

  std::optional<CrashPlan> inspect(int proc, const Round& round, const Action& action,
                                   const SimSnapshot& snap) override;

 private:
  std::vector<Entry> entries_;
  std::vector<std::uint64_t> action_count_;  // grown on demand, per process
};

// Worst-case style adversary for the sequential protocols: lets whichever
// process is currently doing work perform `units_before_crash` units, then
// crashes it (work unit completing, broadcasts truncated to
// `deliver_prefix`), until `max_crashes` processes have died.  This produces
// the takeover cascades that drive the paper's upper-bound analyses.
class WorkCascadeFaults final : public FaultInjector {
 public:
  WorkCascadeFaults(std::uint64_t units_before_crash, int max_crashes,
                    std::size_t deliver_prefix = 0, bool crash_completes_unit = true);

  std::optional<CrashPlan> inspect(int proc, const Round& round, const Action& action,
                                   const SimSnapshot& snap) override;

 private:
  std::uint64_t units_before_crash_;
  int max_crashes_;
  std::size_t deliver_prefix_;
  bool crash_completes_unit_;
  std::vector<std::uint64_t> units_done_;  // per process, grown on demand
};

// Crashes any process the moment it performs the given work unit (the unit
// completes; in-progress sends are truncated to `deliver_prefix`), up to
// max_crashes times.  With unit = n this is the Section 3 adversary: every
// takeover finishes the tail of the work and dies before its final report,
// which drives the naive most-knowledgeable-takeover protocol to Theta(n +
// t^2) effort while Protocol C's fault detection keeps it linear.
class CrashOnUnitFaults final : public FaultInjector {
 public:
  CrashOnUnitFaults(std::int64_t unit, int max_crashes, std::size_t deliver_prefix = 0)
      : unit_(unit), max_crashes_(max_crashes), deliver_prefix_(deliver_prefix) {}

  std::optional<CrashPlan> inspect(int, const Round&, const Action& action,
                                   const SimSnapshot& snap) override {
    if (snap.crashed_so_far >= max_crashes_) return std::nullopt;
    if (!action.work || *action.work != unit_) return std::nullopt;
    return CrashPlan{/*work_completes=*/true, deliver_prefix_};
  }

 private:
  std::int64_t unit_;
  int max_crashes_;
  std::size_t deliver_prefix_;
};

// Each stepped, non-idle round every live process crashes with probability p
// (independent draws) until max_crashes have occurred.  Broadcast delivery
// on crash is a random prefix; the pending unit completes with prob 1/2.
class RandomFaults final : public FaultInjector {
 public:
  RandomFaults(double p_per_round, int max_crashes, std::uint64_t seed);

  std::optional<CrashPlan> inspect(int proc, const Round& round, const Action& action,
                                   const SimSnapshot& snap) override;

 private:
  double p_;
  int max_crashes_;
  Rng rng_;
};

}  // namespace dowork
