#include "sim/round_pool.h"

#include <algorithm>
#include <utility>

namespace dowork {

RoundPool::RoundPool(int threads, std::size_t min_steps_per_shard)
    : min_steps_per_shard_(std::max<std::size_t>(1, min_steps_per_shard)) {
  const int workers = std::max(1, threads) - 1;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

RoundPool::~RoundPool() {
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void RoundPool::run_steps(StepEval& eval, const Round& round, const std::vector<int>& steps,
                          std::vector<Ready>& out) {
  (void)round;
  // Inline path: rounds too small to amortize a dispatch (the sequential
  // protocols' 1-2 step rounds, and everything when threads() == 1) run on
  // the calling thread exactly like the serial executor path.
  const std::size_t n = steps.size();
  const std::size_t max_shards =
      std::min<std::size_t>(static_cast<std::size_t>(threads()), n / min_steps_per_shard_);
  if (max_shards <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      Action a = eval.eval_step(steps[i]);
      out.push_back(Ready{steps[i], std::move(a)});
    }
    return;
  }

  // Dispatch: carve [0, n) into max_shards near-equal contiguous slices.
  // steps is ascending by id, so shard k's ids all precede shard k+1's.
  if (shards_.size() < max_shards) shards_.resize(max_shards);
  const std::size_t base = n / max_shards;
  const std::size_t rem = n % max_shards;
  std::size_t pos = 0;
  for (std::size_t k = 0; k < max_shards; ++k) {
    Shard& s = shards_[k];
    s.begin = pos;
    pos += base + (k < rem ? 1 : 0);
    s.end = pos;
    s.out.clear();
    s.error = nullptr;
  }

  {
    std::lock_guard<std::mutex> lock(m_);
    eval_ = &eval;
    steps_ = &steps;
    active_shards_ = max_shards;
    next_shard_ = 0;
    pending_ = max_shards;
    ++generation_;
  }
  work_cv_.notify_all();

  // The dispatching thread is a full pool member: claim and evaluate shards
  // until none remain, then wait for the stragglers at the barrier.
  drain_shards();
  {
    std::unique_lock<std::mutex> lock(m_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    eval_ = nullptr;
    steps_ = nullptr;
  }

  // Post-barrier: surface the first failure in shard order -- i.e. the one
  // the serial loop would have hit first -- with `out` still untouched, so
  // an aborting round (watchdog-style AbortRun, or a protocol throw) commits
  // nothing, matching the serial executor path byte for byte.
  for (std::size_t k = 0; k < max_shards; ++k) {
    if (shards_[k].error) std::rethrow_exception(shards_[k].error);
  }
  for (std::size_t k = 0; k < max_shards; ++k) {
    for (Ready& r : shards_[k].out) out.push_back(std::move(r));
    shards_[k].out.clear();
  }
}

void RoundPool::drain_shards() {
  for (;;) {
    Shard* shard = nullptr;
    {
      std::lock_guard<std::mutex> lock(m_);
      if (next_shard_ >= active_shards_) return;
      shard = &shards_[next_shard_++];
    }
    eval_shard(*shard);
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(m_);
      last = (--pending_ == 0);
    }
    if (last) done_cv_.notify_one();
  }
}

void RoundPool::eval_shard(Shard& shard) {
  try {
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      const int p = (*steps_)[i];
      Action a = eval_->eval_step(p);
      shard.out.push_back(Ready{p, std::move(a)});
    }
  } catch (...) {
    shard.error = std::current_exception();
  }
}

void RoundPool::worker_main() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(m_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    drain_shards();
  }
}

}  // namespace dowork
