// Round-parallel evaluation pool: shard one round's step list over a fixed
// worker pool, byte-identical to the serial simulator.
//
// Within a synchronous round every process's work is independent by
// construction -- all sends land next round, and the adversary's decision
// points sit at the commit boundary (StepEval's contract in simulator.h) --
// so the evaluation phase of step_round is embarrassingly parallel while
// the commit phase must stay serial.  RoundPool is the StepExecutor that
// exploits exactly that split:
//
//   1. SHARD    the step list (already in ascending process id order) into
//               up to `threads` contiguous id ranges of near-equal size;
//   2. EVALUATE each shard on its own thread, in ascending id order within
//               the shard, appending results to a shard-local buffer (the
//               calling thread participates, so `threads = 8` uses 8 cores
//               with 7 pooled workers);
//   3. BARRIER  until every shard is done (a shard failure aborts the round
//               before anything is handed back);
//   4. COMMIT   by concatenating the shard buffers in shard order, which is
//               ascending process id -- the simulator then commits them in
//               that order, reproducing the serial interleaving exactly.
//
// Why observable state cannot move a byte: an evaluation reads only the
// process's own state plus the round's already-delivered inbox (never this
// round's commits), and every commit -- ledger records, wake-queue pushes,
// metric bumps, fault-injector decisions, RNG draws -- runs on the
// simulator's thread in ascending id order, exactly as the serial loop
// interleaved them.  The equivalence argument is the same one the live
// thread substrate's deterministic schedule relies on (DESIGN.md
// "Execution substrates"); RoundPool is its worker-pool sibling with no
// kill-point machinery, built for throughput inside one big run.
// tests/parallel_sim_test.cpp pins serial vs pooled equality
// metric-for-metric and report-byte-for-byte; dowork_fuzz --parallel-diff
// and the CI --sim-threads determinism diff keep it pinned.
//
// Run-shared protocol state is the one thing the pool cannot make
// data-independent by fiat: Protocol D's AgreeMergeCache serves fold
// requests from whichever thread evaluates the recipient, so it keeps
// per-serving-thread lanes (protocol_d.h) -- pure memoization either way,
// pinned equal by protocol_d_test.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/simulator.h"

namespace dowork {

class RoundPool final : public StepExecutor {
 public:
  // `threads` is the total evaluation parallelism (calling thread included):
  // threads - 1 pooled workers are spawned, so RoundPool(1) degenerates to
  // the inline path with no threads at all.  `min_steps_per_shard` bounds
  // the dispatch overhead: a round with fewer than 2x this many live steps
  // is evaluated inline (sequential protocols step 1-2 processes per round
  // and must not pay a barrier for it); tests lower it to 1 to force real
  // sharding at tiny t.
  explicit RoundPool(int threads, std::size_t min_steps_per_shard = 8);
  ~RoundPool() override;

  RoundPool(const RoundPool&) = delete;
  RoundPool& operator=(const RoundPool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  // StepExecutor: evaluate the round's steps (sharded, concurrent), append
  // results to `out` in ascending process id order.  Rethrows the first
  // shard failure (in shard order) after the barrier, before appending
  // anything -- an aborted round commits nothing, per the contract in
  // simulator.h.
  void run_steps(StepEval& eval, const Round& round, const std::vector<int>& steps,
                 std::vector<Ready>& out) override;

  // The pool has no kill-point machinery: a retired process simply never
  // appears in a later step list.
  void on_retire(int, ProcState, KillPoint) override {}

 private:
  // One contiguous slice [begin, end) of the round's step list, evaluated
  // by exactly one thread per round.  Buffers are reused round over round.
  struct Shard {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::vector<Ready> out;
    std::exception_ptr error;
  };

  void worker_main();
  // Evaluates one shard in ascending id order; a throw from eval_step stops
  // the shard and is stashed in `error` for the post-barrier rethrow.
  void eval_shard(Shard& shard);
  // Claims shards off next_shard_ until none remain; called by workers and
  // the dispatching thread alike (monotone claiming order, so a thread that
  // serves several shards serves them in ascending id order -- what keeps
  // AgreeMergeCache lanes on their fast path).
  void drain_shards();

  const std::size_t min_steps_per_shard_;
  std::vector<std::thread> workers_;

  std::mutex m_;
  std::condition_variable work_cv_;  // workers wait here for a new round
  std::condition_variable done_cv_;  // the dispatcher waits here for the barrier
  std::uint64_t generation_ = 0;     // bumped once per dispatched round
  bool stop_ = false;
  StepEval* eval_ = nullptr;
  const std::vector<int>* steps_ = nullptr;
  std::vector<Shard> shards_;
  std::size_t active_shards_ = 0;  // shards of this round, fixed at dispatch
  std::size_t next_shard_ = 0;     // claim cursor (guarded by m_)
  std::size_t pending_ = 0;        // shards not yet evaluated (guarded by m_)
};

}  // namespace dowork
