// Run metrics: the paper's three complexity measures (work, messages, time)
// plus the breakdowns its proofs reason about.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/message.h"
#include "util/round.h"

namespace dowork {

struct RunMetrics {
  // --- the paper's measures -------------------------------------------------
  std::uint64_t work_total = 0;     // units performed, counting multiplicity
  std::uint64_t messages_total = 0; // point-to-point sends that left a process
  Round last_retire_round;          // round by which every process has retired
  std::uint64_t effort() const { return work_total + messages_total; }

  // Kanellakis-Shvartsman's *available processor steps* (Section 1.1): the
  // sum over rounds, while the algorithm runs, of the number of non-faulty
  // processes -- charging idle processes for every round they merely wait.
  // The paper argues against this measure for message passing (idle
  // processes are free to do other tasks); tracking it here makes the
  // contrast measurable (Protocol C's APS is astronomically large while its
  // effort is optimal).  512-bit: fast-forwarded idle eons are charged too.
  Round available_processor_steps;

  // --- breakdowns -----------------------------------------------------------
  std::array<std::uint64_t, 8> messages_by_kind{};  // indexed by MsgKind
  std::uint64_t crashes = 0;
  std::uint64_t terminated = 0;
  std::uint64_t stepped_rounds = 0;      // rounds actually simulated (not skipped)
  std::uint64_t fast_forward_jumps = 0;  // idle stretches skipped
  // Max number of distinct processes performing work in a single round.
  // == 1 for the sequential protocols (A/B/C), up to t for Protocol D.
  std::uint64_t max_concurrent_workers = 0;
  // Network plane (sim/network_model.h); all zero on crash-only runs, and
  // the emitted message totals above count sends as emitted regardless --
  // the network eats deliveries, not the sender's bill.  Loss and severed
  // links count point-to-point (per recipient lost); delays count records.
  std::uint64_t net_dropped = 0;  // recipients lost to loss draws / message faults
  std::uint64_t net_blocked = 0;  // recipients severed by a partition window
  std::uint64_t net_delayed = 0;  // records delivered later than the next round
  // Per-unit multiplicity (how often each unit of work was performed); the
  // work-optimality proofs bound sum(multiplicity) <= c*n + c'*t.
  std::vector<std::uint64_t> unit_multiplicity;  // index = unit-1
  std::vector<std::uint64_t> work_by_proc;
  std::vector<std::uint64_t> messages_by_proc;

  // --- outcome --------------------------------------------------------------
  bool all_retired = false;   // run ended with every process crashed/terminated
  bool deadlocked = false;    // run ended because nothing could ever happen again
  bool hit_round_cap = false;
  // Structured degradation: the run was cut short by its execution
  // substrate (the live backend's watchdog detecting a stalled worker)
  // rather than finishing.  The reason is human-readable and lands in the
  // JSON report's violation column instead of the run hanging CTest.
  bool aborted = false;
  std::string aborted_reason;
  // Machine-readable companion to aborted_reason: space-separated
  // "key=value" pairs (cause=..., plus whatever the substrate knows --
  // stalled proc, killed pid, last round reached, socket errno) so fuzz
  // reports and compare_bench.py --aborts can bucket abort causes without
  // parsing prose.  Empty when the run was not aborted.
  std::string abort_detail;

  std::uint64_t messages_of(MsgKind k) const {
    return messages_by_kind[static_cast<std::size_t>(k)];
  }
  // True iff every unit 1..n was performed at least once.
  bool all_units_done() const;
  std::string summary() const;
};

// Deterministic per-scenario aggregation of RunMetrics: the paper's tables
// report a worst case (or total) over several adversaries / repetitions of
// one configuration, and the parallel harness needs that reduction to be
// independent of completion order.  absorb() is commutative and
// associative, so aggregating rows in scenario order gives identical output
// whether the runs happened on 1 thread or 8.
struct MetricsAggregate {
  std::uint64_t runs = 0;
  std::uint64_t max_work = 0, sum_work = 0;
  std::uint64_t max_messages = 0, sum_messages = 0;
  std::uint64_t max_effort = 0, sum_effort = 0;
  std::uint64_t max_crashes = 0, sum_crashes = 0;
  Round max_rounds;  // max last_retire_round over runs
  bool all_ok = true;  // every absorbed run completed and retired

  void absorb(const RunMetrics& m);
  std::string summary() const;
};

}  // namespace dowork
