// Process interface for the synchronous simulator.
//
// The paper's model: in one time unit a process may compute locally and
// perform one unit of work OR one round of communication (one broadcast).
// Accordingly a process's per-round Action carries at most one work unit or
// one broadcast; the simulator can enforce this in strict mode (poll replies
// are exempt, matching the paper's treatment of inactive processes that
// "only send responses to 'Are you alive?' messages").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/message.h"
#include "util/round.h"

namespace dowork {

// Sentinel wake time for processes with no pending timer (a shared
// constant; copy it to store it).
const Round& never_round();

// What a process does in one round.  A broadcast is ONE entry of `sends`
// whose RecipientSet names the whole audience (message.h); the flattened
// message sequence -- each send expanded to its recipients in ascending id
// order, sends in vector order -- is what the fault injector's
// deliver_prefix indexes into and what every message metric counts.
struct Action {
  std::optional<std::int64_t> work;  // 1-based unit id to perform this round
  std::vector<Outgoing> sends;       // sends emitted this round (audiences, not pairs)
  bool terminate = false;            // retire (voluntarily) at end of round

  static Action none() { return {}; }
  bool idle() const { return !work && sends.empty() && !terminate; }
  // Total point-to-point messages this action emits: the sum of audience
  // sizes.  (Protocols never push empty-audience sends, so sends.empty()
  // iff total_recipients() == 0.)
  std::size_t total_recipients() const {
    std::size_t n = 0;
    for (const Outgoing& o : sends) n += o.to.size();
    return n;
  }
};

struct RoundContext {
  Round round;  // current round number (starts at 0)
  int self = -1;
};

// A protocol participant.  Implementations are plain deterministic state
// machines: all inputs arrive via on_round, all outputs leave via Action.
class IProcess {
 public:
  virtual ~IProcess() = default;

  // Called when the process is scheduled in a round: either its wake time
  // arrived or it received mail.  `inbox` views every message sent to it in
  // the previous round (empty view otherwise), in emission order; iterate
  // it as `for (const Msg& m : inbox)`.
  //
  // Inbox reuse contract: the view reads the simulator's round ledger,
  // which is recycled the moment the round's deliveries are consumed.  A
  // process that wants to keep a payload beyond the call must copy the
  // Msg's owning reference via Msg::payload() (cheap -- payloads are
  // refcount-shared, never cloned); it must not retain Msg values, raw
  // payload pointers, or iterators into the view itself.
  virtual Action on_round(const RoundContext& ctx, const InboxView& inbox) = 0;

  // Earliest round >= `now` at which the process wants to be scheduled if it
  // receives no further messages; never_round() if it is purely reactive.
  // Used by the simulator to fast-forward over idle stretches (essential for
  // Protocol C, whose deadlines are exponential in n+t).
  //
  // Contract: next_wake must be a pure function of the process state, and
  // monotone in `now` -- for now' >= now, next_wake(now') ==
  // max(next_wake(now), now').  Equivalently, the process holds an internal
  // deadline D fixed between on_round calls and answers max(D, now).  The
  // simulator relies on this to query next_wake exactly once per step and
  // cache the answer in its wake queue (simulator.h) instead of re-asking
  // every process every round.
  virtual Round next_wake(const Round& now) const = 0;

  // Observability accessor for adaptive adversaries (src/adversary/, via
  // SimObservable::announced_progress): how many of the run's work units
  // this process currently believes done.  This is the process's *local
  // planning view* — knowledge it earned by performing units or heard in
  // announcements (checkpoints, ordinary messages, agreement views) that
  // physically left some process — so exposing it leaks nothing the
  // adversary, who controls the network and the crash schedule, could not
  // already reconstruct.  It may run ahead of globally committed work for
  // units the process itself is mid-performing (Protocol D books its whole
  // slice at phase entry, per the paper's line 8; A/B count the unit in
  // the current action), and a crash that vetoes the pending unit strands
  // a dead process's count high — the strictly committed per-process
  // tallies live in SimObservable::units_done instead.  Must not
  // speculate about in-flight mail.  Purely diagnostic default: 0.
  virtual std::int64_t known_done_units() const { return 0; }

  // Diagnostic label.
  virtual std::string describe() const { return "process"; }
};

}  // namespace dowork
