#include "sim/network_model.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace dowork {

namespace {

// Strict full-token numeric parsers: the composed grammar promises to reject
// near-miss strings, so "1x" must not silently parse as 1 the way the
// stdlib's stoull would have it.
std::uint64_t parse_u64(const std::string& s) {
  if (s.empty()) throw std::invalid_argument("NetSpec: empty number");
  std::size_t pos = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(s, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("NetSpec: bad number '" + s + "'");
  }
  if (pos != s.size() || s[0] == '-' || s[0] == '+')
    throw std::invalid_argument("NetSpec: bad number '" + s + "'");
  return v;
}

int parse_split(const std::string& s) {
  const std::uint64_t v = parse_u64(s);
  if (v == 0 || v > 1u << 24) throw std::invalid_argument("NetSpec: bad split '" + s + "'");
  return static_cast<int>(v);
}

double parse_drop(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size() || !(v > 0.0) || v > 1.0)
    throw std::invalid_argument("NetSpec: drop must be in (0,1], got '" + s + "'");
  return v;
}

// Shortest decimal form of v that parses back to the identical double
// (mirrors the FaultSpec grammar's DOUBLE convention).
std::string double_str(double v) {
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

// "LO..HI" with LO <= HI.
std::pair<std::uint64_t, std::uint64_t> parse_range(const std::string& s) {
  const std::size_t dots = s.find("..");
  if (dots == std::string::npos)
    throw std::invalid_argument("NetSpec: malformed range '" + s + "'");
  const std::uint64_t lo = parse_u64(s.substr(0, dots));
  const std::uint64_t hi = parse_u64(s.substr(dots + 2));
  if (hi < lo) throw std::invalid_argument("NetSpec: inverted range '" + s + "'");
  return {lo, hi};
}

}  // namespace

NetSpec NetSpec::latency(std::uint64_t lo, std::uint64_t hi, std::uint64_t seed) {
  NetSpec n;
  n.lat_min = lo;
  n.lat_max = hi;
  n.seed = seed;
  return n;
}

NetSpec NetSpec::lossy(double p, std::uint64_t seed) {
  NetSpec n;
  n.drop = p;
  n.seed = seed;
  return n;
}

NetSpec NetSpec::partition(std::vector<PartitionWindow> windows, std::uint64_t seed) {
  NetSpec n;
  n.partitions = std::move(windows);
  n.seed = seed;
  return n;
}

std::string NetSpec::to_string() const {
  std::string out = "(";
  auto add = [&out](const std::string& field) {
    if (out.size() > 1) out += ',';
    out += field;
  };
  if (lat_max > 0)
    add("lat=" + std::to_string(lat_min) + ".." + std::to_string(lat_max));
  if (drop > 0.0) add("drop=" + double_str(drop));
  if (!partitions.empty()) {
    std::string p = "part=";
    for (std::size_t i = 0; i < partitions.size(); ++i) {
      const PartitionWindow& w = partitions[i];
      if (i) p += ';';
      p += std::to_string(w.from) + ".." + std::to_string(w.until) + "@" +
           std::to_string(w.split);
    }
    add(p);
  }
  add("seed=" + std::to_string(seed));
  return out + ")";
}

NetSpec NetSpec::parse(const std::string& text) {
  if (text.size() < 2 || text.front() != '(' || text.back() != ')')
    throw std::invalid_argument("NetSpec: malformed '" + text + "'");
  const std::string body = text.substr(1, text.size() - 2);
  NetSpec spec;
  bool saw_lat = false, saw_drop = false, saw_part = false, saw_seed = false;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t comma = body.find(',', pos);
    if (comma == std::string::npos) comma = body.size();
    const std::string item = body.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("NetSpec: malformed field '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "lat") {
      if (saw_lat) throw std::invalid_argument("NetSpec: duplicate field 'lat'");
      saw_lat = true;
      const auto [lo, hi] = parse_range(value);
      if (hi == 0) throw std::invalid_argument("NetSpec: lat=0..0 has no effect");
      spec.lat_min = lo;
      spec.lat_max = hi;
    } else if (key == "drop") {
      if (saw_drop) throw std::invalid_argument("NetSpec: duplicate field 'drop'");
      saw_drop = true;
      spec.drop = parse_drop(value);
    } else if (key == "part") {
      if (saw_part) throw std::invalid_argument("NetSpec: duplicate field 'part'");
      saw_part = true;
      std::size_t wpos = 0;
      while (wpos <= value.size()) {
        std::size_t semi = value.find(';', wpos);
        if (semi == std::string::npos) semi = value.size();
        const std::string wtext = value.substr(wpos, semi - wpos);
        const std::size_t at = wtext.find('@');
        if (at == std::string::npos)
          throw std::invalid_argument("NetSpec: malformed window '" + wtext + "'");
        PartitionWindow w;
        const auto [from, until] = parse_range(wtext.substr(0, at));
        if (until <= from)
          throw std::invalid_argument("NetSpec: empty window '" + wtext + "'");
        w.from = from;
        w.until = until;
        w.split = parse_split(wtext.substr(at + 1));
        spec.partitions.push_back(w);
        if (semi == value.size()) break;
        wpos = semi + 1;
      }
    } else if (key == "seed") {
      if (saw_seed) throw std::invalid_argument("NetSpec: duplicate field 'seed'");
      saw_seed = true;
      spec.seed = parse_u64(value);
    } else {
      throw std::invalid_argument("NetSpec: unknown field '" + key + "'");
    }
  }
  if (!saw_seed) throw std::invalid_argument("NetSpec: missing field 'seed'");
  if (spec.is_noop())
    throw std::invalid_argument("NetSpec: component with no effect '" + text + "'");
  return spec;
}

bool NetworkModel::severed(int from, int to, std::uint64_t now) const {
  for (const PartitionWindow& w : spec_.partitions) {
    if (now < w.from || now >= w.until) continue;
    if ((from < w.split) != (to < w.split)) return true;
  }
  return false;
}

int NetworkModel::partition_side(int proc, std::uint64_t now) const {
  for (const PartitionWindow& w : spec_.partitions)
    if (now >= w.from && now < w.until) return proc < w.split ? 1 : 2;
  return 0;
}

}  // namespace dowork
