#include "sim/message.h"

namespace dowork {

const char* to_string(MsgKind k) {
  switch (k) {
    case MsgKind::kOrdinary: return "ordinary";
    case MsgKind::kCheckpoint: return "checkpoint";
    case MsgKind::kGoAhead: return "go_ahead";
    case MsgKind::kPoll: return "poll";
    case MsgKind::kPollReply: return "poll_reply";
    case MsgKind::kAgreement: return "agreement";
    case MsgKind::kValue: return "value";
    case MsgKind::kOther: return "other";
  }
  return "?";
}

std::vector<Outgoing> broadcast(const std::vector<int>& recipients, MsgKind kind,
                                std::shared_ptr<const Payload> payload) {
  std::vector<Outgoing> out;
  out.reserve(recipients.size());
  for (int r : recipients) out.push_back(Outgoing{r, kind, payload});
  return out;
}

}  // namespace dowork
