#include "sim/message.h"

namespace dowork {

std::atomic<std::uint64_t> Payload::alloc_count_{0};

namespace detail {

bool same_payload_type(const std::type_info& a, const std::type_info& b) { return a == b; }

}  // namespace detail

const char* to_string(MsgKind k) {
  switch (k) {
    case MsgKind::kOrdinary: return "ordinary";
    case MsgKind::kCheckpoint: return "checkpoint";
    case MsgKind::kGoAhead: return "go_ahead";
    case MsgKind::kPoll: return "poll";
    case MsgKind::kPollReply: return "poll_reply";
    case MsgKind::kAgreement: return "agreement";
    case MsgKind::kValue: return "value";
    case MsgKind::kOther: return "other";
  }
  return "?";
}

std::shared_ptr<const RecipientBits> make_recipient_bits(DynBitset bits) {
  auto out = std::make_shared<RecipientBits>();
  out->count = bits.count();
  out->bits = std::move(bits);
  return out;
}

int RecipientSet::lowest() const {
  if (bits_) {
    const std::size_t i = bits_->bits.find_next(0);
    return i < bits_->bits.size() ? static_cast<int>(i) : -1;
  }
  return hi_ > lo_ ? lo_ : -1;
}

bool RecipientSet::within(int t) const {
  if (bits_)
    // The invariant that bits at positions >= size() are zero makes the size
    // check sufficient for the upper bound; negative ids cannot be encoded.
    return bits_->bits.size() <= static_cast<std::size_t>(t);
  return lo_ >= 0 && hi_ <= t;
}

std::size_t InboxView::count() const {
  std::size_t c = 0;
  if (recs_) {
    for (const DeliveryRecord& r : *recs_)
      if (r.delivers_to(self_)) ++c;
    return c;
  }
  return envs_ ? envs_->size() : 0;
}

void InboxView::const_iterator::seek() {
  if (v_ == nullptr) return;
  if (v_->recs_) {
    const std::vector<DeliveryRecord>& recs = *v_->recs_;
    while (i_ < recs.size() && !recs[i_].delivers_to(v_->self_)) ++i_;
    if (i_ < recs.size()) {
      const DeliveryRecord& r = recs[i_];
      cur_ = Msg{};
      cur_.from = r.from;
      cur_.kind = r.kind;
      cur_.sent_round_ptr = v_->sent_rounds_ ? &(*v_->sent_rounds_)[i_] : v_->sent_round_;
      cur_.payload_ptr = &r.payload;
    }
    return;
  }
  if (v_->envs_ && i_ < v_->envs_->size()) cur_ = Msg((*v_->envs_)[i_]);
}

Outgoing broadcast(const std::vector<int>& recipients, MsgKind kind,
                   std::shared_ptr<const Payload> payload) {
  std::size_t max_id = 0;
  for (int r : recipients)
    if (r >= 0 && static_cast<std::size_t>(r) + 1 > max_id)
      max_id = static_cast<std::size_t>(r) + 1;
  DynBitset bits(max_id);
  for (int r : recipients)
    if (r >= 0) bits.set(static_cast<std::size_t>(r));
  return Outgoing{make_recipient_bits(std::move(bits)), kind, std::move(payload)};
}

RecipientSet remap_recipients(const RecipientSet& set, const std::vector<int>& map, int t) {
  IdRange r = set.range();
  if (r.size() == 1) return map[static_cast<std::size_t>(r.first)];
  DynBitset bits(static_cast<std::size_t>(t));
  set.for_each_prefix(set.size(), [&](int id) {
    bits.set(static_cast<std::size_t>(map[static_cast<std::size_t>(id)]));
  });
  return make_recipient_bits(std::move(bits));
}

}  // namespace dowork
