#include "sim/simulator.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace dowork {

const Round& never_round() {
  // All-ones 512-bit value: larger than any reachable round (Protocol C's
  // promoted deadlines included).  Built once and returned by reference:
  // comparing against it is a null-tag check, and only callers that *store*
  // it pay for cloning the promoted representation.
  static const Round never = [] {
    BigUint all_ones;
    for (int i = 0; i < 512; ++i) all_ones += BigUint::pow2(static_cast<unsigned>(i));
    return Round(all_ones);
  }();
  return never;
}

namespace {

const Round& never() { return never_round(); }

}  // namespace

Simulator::Simulator(std::vector<std::unique_ptr<IProcess>> processes,
                     std::unique_ptr<FaultInjector> faults, Options options)
    : procs_(std::move(processes)),
      faults_(std::move(faults)),
      opt_(std::move(options)),
      net_model_(opt_.net),
      net_rng_(opt_.net.seed) {
  // The two-tier Round exists so heap entries stay this small; 3 per cache
  // line instead of the 72 bytes the flat 512-bit representation cost.
  static_assert(sizeof(WakeEntry) <= 24);
  const std::size_t t = procs_.size();
  state_.assign(t, ProcState::kAlive);
  alive_ = static_cast<int>(t);
  mail_bits_ = DynBitset(t);
  consumed_epoch_.assign(t, 0);
  wake_.assign(t, Round{});
  queued_.assign(t, 0);
  heap_has_.assign(t, 0);
  heap_.reserve(t + 16);
  metrics_.work_by_proc.assign(t, 0);
  metrics_.messages_by_proc.assign(t, 0);
  metrics_.unit_multiplicity.assign(static_cast<std::size_t>(opt_.n_units), 0);
}

void Simulator::retire(std::size_t p, ProcState to) {
  state_[p] = to;
  --alive_;
}

std::size_t Simulator::inbox_size(int proc) const {
  const std::size_t p = static_cast<std::size_t>(proc);
  // Mail exists only for live processes that have not consumed it yet this
  // round (the step clears it, exactly as the per-process inbox buffers
  // used to be cleared when on_round returned).
  if (state_[p] != ProcState::kAlive || !mail_bits_.test(p)) return 0;
  if (consumed_epoch_[p] == epoch_) return 0;
  std::size_t c = 0;
  for (const DeliveryRecord& rec : arriving_)
    if (rec.delivers_to(proc)) ++c;
  return c;
}

void Simulator::reschedule(std::size_t p, const Round& now) {
  Round w = procs_[p]->next_wake(now);
  if (w < now) w = now;  // a process may not schedule itself in the past
  if (w == now) {
    // Fast path for the overwhelmingly common answer "step me again next
    // round" (every active process): a plain list instead of heap traffic.
    // Any previous heap entry for p turns stale (it no longer matches
    // wake_[p] when popped).
    wake_[p] = std::move(w);
    heap_has_[p] = 0;
    if (!queued_[p]) {
      queued_[p] = 1;
      next_step_.push_back(static_cast<int>(p));
    }
    return;
  }
  // Unchanged wake with its entry still queued: nothing to do.  (The entry
  // cannot have been consumed or gone stale -- due entries pop only in the
  // round they fire, after which the re-queried wake necessarily moves
  // forward, and staleness requires wake_[p] to have changed.)  This is what
  // keeps a passive process cheap when every broadcast lands in its inbox:
  // its deadline is re-announced each step but queued only once.
  if (heap_has_[p] && w == wake_[p]) return;
  wake_[p] = w;
  // Purely reactive processes (wake == never) are woken by mail alone and
  // carry no heap entry; everyone else gets a fresh entry.
  if (w != never()) {
    heap_.push_back(WakeEntry{std::move(w), static_cast<int>(p)});
    std::push_heap(heap_.begin(), heap_.end(), &Simulator::wake_later);
    heap_has_[p] = 1;
  } else {
    heap_has_[p] = 0;
  }
}

const Round* Simulator::peek_min_wake() {
  while (!heap_.empty()) {
    const WakeEntry& top = heap_.front();
    const std::size_t p = static_cast<std::size_t>(top.proc);
    if (state_[p] == ProcState::kAlive && wake_[p] == top.wake) return &top.wake;
    std::pop_heap(heap_.begin(), heap_.end(), &Simulator::wake_later);
    heap_.pop_back();
  }
  return nullptr;
}

void Simulator::validate_strict(int proc, const Action& a) const {
  // One op per round: a work unit or one broadcast (a common payload), with
  // poll replies exempt.
  std::size_t protocol_sends = 0;
  const Payload* payload = nullptr;
  bool mixed_payload = false;
  for (const Outgoing& o : a.sends) {
    if (o.kind == MsgKind::kPollReply) continue;
    protocol_sends += o.to.size();
    if (payload == nullptr) payload = o.payload.get();
    else if (payload != o.payload.get()) mixed_payload = true;
  }
  if (a.work && protocol_sends > 0)
    throw std::logic_error("strict mode: process " + std::to_string(proc) +
                           " performed work and sent messages in one round");
  if (mixed_payload)
    throw std::logic_error("strict mode: process " + std::to_string(proc) +
                           " emitted more than one broadcast in one round");
}

Action Simulator::eval_one(std::size_t p, const Round& r) {
  RoundContext ctx{r, static_cast<int>(p)};
  const bool has_mail = mail_bits_.test(p);
  InboxView inbox(arriving_, arriving_round_, static_cast<int>(p), has_mail,
                  net_active_ ? &arriving_sent_rounds_ : nullptr);
  return procs_[p]->on_round(ctx, inbox);
}

Action Simulator::eval_step(int proc) {
  // Executor entry point: everything this reads (cur_round_, the arriving
  // ledger, the process object) is a member of this Simulator, never a
  // per-round stack frame, so a worker thread that starts late -- even
  // after a watchdog abort unwound run() -- evaluates against live storage.
  return eval_one(static_cast<std::size_t>(proc), cur_round_);
}

void Simulator::commit_step(std::size_t p, const Round& r, const Round& next_r, Action a) {
  // The mail (if any) is consumed with the on_round call, but the
  // observable effect is committed here so adaptive adversaries inspecting
  // a later process in this round see exactly the serial interleaving
  // regardless of how evaluations were scheduled.
  consumed_epoch_[p] = epoch_;
  if (opt_.strict_one_op) validate_strict(static_cast<int>(p), a);

  SimSnapshot snap{static_cast<int>(procs_.size()), alive_, static_cast<int>(metrics_.crashes)};
  std::optional<CrashPlan> plan = faults_->inspect(static_cast<int>(p), r, a, snap);
  if (plan && snap.alive <= 1) plan.reset();  // the last survivor never crashes

  const bool work_done = a.work && (!plan || plan->work_completes);
  if (work_done) {
    ++metrics_.work_total;
    ++metrics_.work_by_proc[p];
    if (*a.work >= 1 && *a.work <= opt_.n_units)
      ++metrics_.unit_multiplicity[static_cast<std::size_t>(*a.work - 1)];
    if (work_sink_) work_sink_(static_cast<int>(p), *a.work, r);
  }

  // Commit the action's sends to the round ledger: one record per send, the
  // audience truncated to the crash plan's prefix of the *flattened*
  // message sequence (sends in vector order, each audience in ascending id
  // order -- exactly what the per-pair delivery enumerated).  Sends to
  // already-retired processes still count (they were emitted); delivery
  // re-checks recipient state next round.  The payload and audience
  // references are moved, never copied: a broadcast costs one record
  // regardless of fan-out.
  const std::size_t total = a.total_recipients();
  const std::size_t deliver = plan ? std::min(plan->deliver_prefix, total) : total;
  std::size_t remaining = deliver;
  for (Outgoing& o : a.sends) {
    if (remaining == 0) break;
    const std::size_t fanout = o.to.size();
    const std::size_t cut = std::min(fanout, remaining);
    remaining -= cut;
    if (cut == 0) continue;
    if (!o.to.within(static_cast<int>(procs_.size())))
      throw std::logic_error("send to nonexistent process " + std::to_string(o.to.lowest()));
    metrics_.messages_by_kind[static_cast<std::size_t>(o.kind)] += cut;
    DeliveryRecord rec{static_cast<int>(p), o.kind, cut, std::move(o.to), std::move(o.payload)};
    if (net_active_)
      commit_record(std::move(rec), r);
    else
      ledger_.push_back(std::move(rec));
  }
  // Totals bumped arithmetically: a t-recipient broadcast is one add.
  metrics_.messages_total += deliver;
  metrics_.messages_by_proc[p] += deliver;

  if (plan) {
    retire(p, ProcState::kCrashed);
    ++metrics_.crashes;
    if (executor_ != nullptr) {
      // Classify the kill point for the live backend (simulator.h
      // documents the taxonomy) so the worker thread actually stops where
      // the adversary's plan cut the execution.
      KillPoint kp = KillPoint::kRoundBarrier;
      if (total > 0) kp = deliver < total ? KillPoint::kMidBroadcast : KillPoint::kSendCommit;
      executor_->on_retire(static_cast<int>(p), ProcState::kCrashed, kp);
    }
  } else if (a.terminate) {
    retire(p, ProcState::kTerminated);
    ++metrics_.terminated;
    if (executor_ != nullptr)
      executor_->on_retire(static_cast<int>(p), ProcState::kTerminated, KillPoint::kNone);
  } else {
    reschedule(p, next_r);
  }
}

void Simulator::commit_record(DeliveryRecord rec, const Round& r) {
  // Decision order per network_model.h: adversary hook, partition filter,
  // loss draws, latency draw.  Emission accounting already happened in
  // step_proc -- the network eats deliveries, not the sender's bill.
  std::uint64_t extra_delay = 0;
  const std::size_t members = std::min(rec.cut, rec.to.size());
  if (wants_msg_faults_) {
    if (std::optional<MessageFault> f = faults_->on_message(rec.from, r, rec)) {
      if (f->drop) {
        metrics_.net_dropped += members;
        return;
      }
      extra_delay = f->delay;
    }
  }
  if (net_model_.has_partitions() || net_model_.has_drop()) {
    // Filter the crash-cut audience prefix down to the recipients the
    // network lets through.  Severed links are deterministic and consume no
    // randomness; each surviving link costs one loss draw, in ascending id
    // order.  Any loss turns the record's audience into one fresh bitset --
    // the single audience edit the delivery plane was built for.
    const std::uint64_t now = r.to_u64_saturating();
    DynBitset survivors(procs_.size());
    std::size_t kept = 0;
    bool lost_any = false;
    rec.to.for_each_prefix(members, [&](int id) {
      if (net_model_.has_partitions() && net_model_.severed(rec.from, id, now)) {
        ++metrics_.net_blocked;
        lost_any = true;
        return;
      }
      if (net_model_.has_drop() && net_model_.drops(net_rng_)) {
        ++metrics_.net_dropped;
        lost_any = true;
        return;
      }
      survivors.set(static_cast<std::size_t>(id));
      ++kept;
    });
    if (kept == 0) return;
    if (lost_any) {
      rec.to = make_recipient_bits(std::move(survivors));
      rec.cut = kept;
    }
  }
  if (net_model_.has_latency()) extra_delay += net_model_.delay(net_rng_);
  if (extra_delay == 0) {
    ledger_.push_back(std::move(rec));
    return;
  }
  ++metrics_.net_delayed;
  Round due = r + Round{extra_delay + 1};  // normal delivery is r + 1
  future_[std::move(due)].push_back(DelayedRecord{std::move(rec), r});
  ++future_count_;
}

void Simulator::step_round(const Round& r) {
  const std::uint64_t workers_before = metrics_.work_total;
  const Round next_r = r + Round{1};  // one 512-bit add per round, not per step
  if (executor_ != nullptr) {
    // Executor path: hand the alive step subset to the executor for the
    // evaluation phase (possibly concurrent, possibly aborted by its
    // watchdog), then commit on this thread in the order it returned.
    // Nothing observable happens between an on_round return and its commit
    // in the serial path, so "evaluate all, then commit in ascending id
    // order" is byte-identical to the in-place loop below.
    live_steps_.clear();
    for (int p : step_list_) {
      queued_[static_cast<std::size_t>(p)] = 0;
      if (state_[static_cast<std::size_t>(p)] == ProcState::kAlive) live_steps_.push_back(p);
    }
    if (!live_steps_.empty()) {
      ready_.clear();
      executor_->run_steps(*this, r, live_steps_, ready_);  // may throw AbortRun
      for (StepExecutor::Ready& rd : ready_)
        commit_step(static_cast<std::size_t>(rd.proc), r, next_r, std::move(rd.action));
    }
    metrics_.max_concurrent_workers =
        std::max(metrics_.max_concurrent_workers, metrics_.work_total - workers_before);
    step_list_.clear();
    return;
  }
  for (int p : step_list_) {
    queued_[static_cast<std::size_t>(p)] = 0;
    if (state_[static_cast<std::size_t>(p)] != ProcState::kAlive) continue;
    commit_step(static_cast<std::size_t>(p), r, next_r,
                eval_one(static_cast<std::size_t>(p), r));
  }
  // All steps of a round are independent (sends land next round), so the
  // concurrent-worker count is simply the work performed this round.
  metrics_.max_concurrent_workers =
      std::max(metrics_.max_concurrent_workers, metrics_.work_total - workers_before);
  step_list_.clear();
}

RunMetrics Simulator::run() {
  if (ran_) throw std::logic_error("Simulator::run called twice");
  ran_ = true;

  // Crash-decision point 1: hand adaptive injectors the committed-state
  // view before anything happens (a no-op for the scripted injectors).
  faults_->attach(*this);
  // The network delivery path is opted into once per run: by a non-noop
  // network model, or by an injector that faults messages (decision point
  // 4).  Everything else runs the crash-only path untouched.
  wants_msg_faults_ = faults_->wants_message_faults();
  net_active_ = wants_msg_faults_ || !net_model_.is_noop();

  // Seed the wake cache: every process is asked once, up front, when it
  // first wants to run; from here on next_wake is re-queried only after a
  // step (the monotonicity contract in process.h makes the cache exact).
  for (std::size_t p = 0; p < procs_.size(); ++p) reschedule(p, Round{0});

  Round r = 0;
  while (true) {
    // Terminate when every process has retired.
    if (alive_ == 0) {
      metrics_.all_retired = true;
      break;
    }
    if (metrics_.stepped_rounds >= opt_.max_stepped_rounds) {
      metrics_.hit_round_cap = true;
      break;
    }

    // Processes that asked to run again this round were queued by
    // reschedule's fast path last round (their queued_ flags are still set).
    step_list_.swap(next_step_);

    // Deliver messages sent last stepped round (they were addressed to the
    // round immediately after their send round; fast-forward never skips
    // past deliveries because we only jump when the ledger is empty).  The
    // ledger swap reuses both buffers' capacity round over round; the
    // records stay readable (through InboxView) for this whole round.
    ++epoch_;
    arriving_.swap(ledger_);
    ledger_.clear();
    std::swap(arriving_round_, ledger_round_);
    if (net_active_) {
      // Ledger records all share the swap-in sent round; latency-held
      // records due exactly now join them with their own sent rounds.
      // (Delivery rounds are never skipped: the loop advances one round at
      // a time and fast-forward clamps its jump to the earliest due bucket.)
      arriving_sent_rounds_.assign(arriving_.size(), arriving_round_);
      for (auto it = future_.begin(); it != future_.end() && it->first == r;) {
        for (DelayedRecord& d : it->second) {
          arriving_.push_back(std::move(d.rec));
          arriving_sent_rounds_.push_back(std::move(d.sent));
          --future_count_;
        }
        it = future_.erase(it);
      }
    }
    // The mail mask is only touched when there is mail: work-heavy rounds
    // with an empty ledger (most of Protocol A/B's rounds) skip the
    // O(t/64) clear and scan entirely.
    if (mail_dirty_) {
      mail_bits_.reset_all();
      mail_dirty_ = false;
    }
    if (!arriving_.empty()) {
      mail_dirty_ = true;
      for (const DeliveryRecord& rec : arriving_) rec.to.mark_prefix(mail_bits_, rec.cut);
      // Live recipients of mail join the step list (in ascending id order,
      // as bitset iteration yields them; dead recipients' mail is dropped
      // here, exactly as per-pair delivery dropped their envelopes).
      for (std::size_t p = mail_bits_.find_next(0); p < mail_bits_.size();
           p = mail_bits_.find_next(p + 1)) {
        if (state_[p] != ProcState::kAlive) continue;
        if (!queued_[p]) {
          queued_[p] = 1;
          step_list_.push_back(static_cast<int>(p));
        }
      }
    }

    // Processes whose wake time arrived join the recipients of mail.
    while (const Round* min_wake = peek_min_wake()) {
      if (*min_wake > r) break;
      const int p = heap_.front().proc;
      std::pop_heap(heap_.begin(), heap_.end(), &Simulator::wake_later);
      heap_.pop_back();
      if (!queued_[static_cast<std::size_t>(p)]) {
        queued_[static_cast<std::size_t>(p)] = 1;
        step_list_.push_back(p);
      }
    }
    // Steps must run in ascending id order (the round contract).  The list
    // is usually already sorted -- next_step_ fills in step order, mail in
    // ascending id order -- so check before paying for a sort.
    if (!std::is_sorted(step_list_.begin(), step_list_.end()))
      std::sort(step_list_.begin(), step_list_.end());

    metrics_.available_processor_steps += Round{static_cast<std::uint64_t>(alive_)};
    // Crash-decision point 2: the round is about to step (delivery is done,
    // so inbox sizes are observable).  cur_round_ backs rounds_elapsed().
    cur_round_ = r;
    ledger_round_ = r;  // sends emitted below carry this round
    faults_->on_round_start(r);
    try {
      step_round(r);
    } catch (AbortRun& abort) {
      // Structured degradation (the thread substrate's watchdog): record
      // the reason and return normally with partial metrics -- the verifier
      // turns it into a violation, never a hang or a crash.  Executors
      // throw before handing back any step, so the aborted round committed
      // nothing.
      metrics_.aborted = true;
      metrics_.aborted_reason = std::move(abort.reason);
      metrics_.abort_detail = std::move(abort.detail);
      break;
    }
    ++metrics_.stepped_rounds;
    metrics_.last_retire_round = r;

    if (alive_ == 0) {
      metrics_.all_retired = true;
      break;
    }

    if (!ledger_.empty() || !next_step_.empty()) {
      r += 1;
      continue;
    }
    // Fast-forward: jump to the earliest wake time over live processes.
    // Every live cached wake is > r here (due entries were popped above and
    // next-round steppers were just checked), so the heap top is the exact
    // minimum the old per-process scan computed.  Arithmetic runs in place
    // on r / one gap temporary: with Protocol C's promoted round numbers a
    // by-value formulation cost three heap clones per jump.  With the
    // network plane live, a latency-held record is as good as a timer: the
    // jump clamps to the earliest due bucket, and pending records mean the
    // run is not deadlocked.
    const Round* min_wake = peek_min_wake();
    if (!future_.empty()) {
      const Round& min_due = future_.begin()->first;
      if (min_wake == nullptr || min_due < *min_wake) min_wake = &min_due;
    }
    if (min_wake == nullptr) {
      metrics_.deadlocked = true;  // live processes, no mail, no timers
      break;
    }
    r += 1;  // the round after the one just stepped is the floor
    if (*min_wake > r) {
      ++metrics_.fast_forward_jumps;
      // Idle processes are charged by the available-processor-steps measure
      // even across fast-forwarded stretches.
      Round gap = *min_wake;
      gap -= r;
      gap *= static_cast<std::uint64_t>(alive_);
      metrics_.available_processor_steps += gap;
      r = *min_wake;
    }
  }
  return metrics_;
}

RunMetrics run_simulation(std::vector<std::unique_ptr<IProcess>> processes,
                          std::unique_ptr<FaultInjector> faults, Simulator::Options options,
                          Simulator::WorkSink sink) {
  Simulator sim(std::move(processes), std::move(faults), options);
  if (sink) sim.set_work_sink(std::move(sink));
  return sim.run();
}

}  // namespace dowork
