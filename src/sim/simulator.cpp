#include "sim/simulator.h"

#include <limits>
#include <stdexcept>

namespace dowork {

Round never_round() {
  // All-ones 512-bit value: larger than any reachable round.
  Round r;
  for (int i = 0; i < 512; ++i) r += BigUint::pow2(static_cast<unsigned>(i));
  return r;
}

namespace {
const Round& never() {
  static const Round r = never_round();
  return r;
}
}  // namespace

Simulator::Simulator(std::vector<std::unique_ptr<IProcess>> processes,
                     std::unique_ptr<FaultInjector> faults, Options options)
    : procs_(std::move(processes)), faults_(std::move(faults)), opt_(options) {
  const std::size_t t = procs_.size();
  state_.assign(t, ProcState::kAlive);
  inbox_.assign(t, {});
  metrics_.work_by_proc.assign(t, 0);
  metrics_.messages_by_proc.assign(t, 0);
  metrics_.unit_multiplicity.assign(static_cast<std::size_t>(opt_.n_units), 0);
}

int Simulator::alive_count() const {
  int n = 0;
  for (ProcState s : state_)
    if (s == ProcState::kAlive) ++n;
  return n;
}

void Simulator::validate_strict(int proc, const Action& a) const {
  // One op per round: a work unit or one broadcast (a common payload), with
  // poll replies exempt.
  std::size_t protocol_sends = 0;
  const Payload* payload = nullptr;
  bool mixed_payload = false;
  for (const Outgoing& o : a.sends) {
    if (o.kind == MsgKind::kPollReply) continue;
    ++protocol_sends;
    if (payload == nullptr) payload = o.payload.get();
    else if (payload != o.payload.get()) mixed_payload = true;
  }
  if (a.work && protocol_sends > 0)
    throw std::logic_error("strict mode: process " + std::to_string(proc) +
                           " performed work and sent messages in one round");
  if (mixed_payload)
    throw std::logic_error("strict mode: process " + std::to_string(proc) +
                           " emitted more than one broadcast in one round");
}

void Simulator::step_round(const Round& r) {
  std::vector<Envelope> staging;
  std::uint64_t workers_this_round = 0;

  for (std::size_t p = 0; p < procs_.size(); ++p) {
    if (state_[p] != ProcState::kAlive) continue;
    const bool has_mail = !inbox_[p].empty();
    if (!has_mail && procs_[p]->next_wake(r) > r) continue;

    RoundContext ctx{r, static_cast<int>(p)};
    Action a = procs_[p]->on_round(ctx, inbox_[p]);
    inbox_[p].clear();
    if (opt_.strict_one_op) validate_strict(static_cast<int>(p), a);

    SimSnapshot snap{static_cast<int>(procs_.size()), alive_count(),
                     static_cast<int>(metrics_.crashes)};
    std::optional<CrashPlan> plan = faults_->inspect(static_cast<int>(p), r, a, snap);
    if (plan && snap.alive <= 1) plan.reset();  // the last survivor never crashes

    const bool work_done = a.work && (!plan || plan->work_completes);
    if (work_done) {
      ++metrics_.work_total;
      ++metrics_.work_by_proc[p];
      ++workers_this_round;
      if (*a.work >= 1 && *a.work <= opt_.n_units)
        ++metrics_.unit_multiplicity[static_cast<std::size_t>(*a.work - 1)];
      if (work_sink_) work_sink_(static_cast<int>(p), *a.work, r);
    }

    const std::size_t deliver =
        plan ? std::min(plan->deliver_prefix, a.sends.size()) : a.sends.size();
    for (std::size_t s = 0; s < deliver; ++s) {
      const Outgoing& o = a.sends[s];
      if (o.to < 0 || o.to >= static_cast<int>(procs_.size()))
        throw std::logic_error("send to nonexistent process " + std::to_string(o.to));
      ++metrics_.messages_total;
      ++metrics_.messages_by_proc[p];
      ++metrics_.messages_by_kind[static_cast<std::size_t>(o.kind)];
      if (state_[static_cast<std::size_t>(o.to)] == ProcState::kAlive) {
        staging.push_back(Envelope{static_cast<int>(p), o.to, o.kind, r, o.payload});
      }
      // Sends to retired processes still count (they were emitted) but are
      // never delivered.
    }

    if (plan) {
      state_[p] = ProcState::kCrashed;
      ++metrics_.crashes;
    } else if (a.terminate) {
      state_[p] = ProcState::kTerminated;
      ++metrics_.terminated;
    }
  }

  metrics_.max_concurrent_workers = std::max(metrics_.max_concurrent_workers, workers_this_round);
  for (Envelope& e : staging) {
    if (state_[static_cast<std::size_t>(e.to)] == ProcState::kAlive)
      in_flight_.push_back(std::move(e));
  }
}

RunMetrics Simulator::run() {
  if (ran_) throw std::logic_error("Simulator::run called twice");
  ran_ = true;

  Round r = 0;
  while (true) {
    // Terminate when every process has retired.
    if (alive_count() == 0) {
      metrics_.all_retired = true;
      break;
    }
    if (metrics_.stepped_rounds >= opt_.max_stepped_rounds) {
      metrics_.hit_round_cap = true;
      break;
    }

    // Deliver messages sent last stepped round (they were addressed to the
    // round immediately after their send round; fast-forward never skips
    // past deliveries because we only jump when in_flight_ is empty).
    for (Envelope& e : in_flight_) inbox_[static_cast<std::size_t>(e.to)].push_back(std::move(e));
    in_flight_.clear();

    metrics_.available_processor_steps += Round{static_cast<std::uint64_t>(alive_count())};
    step_round(r);
    ++metrics_.stepped_rounds;
    metrics_.last_retire_round = r;

    if (alive_count() == 0) {
      metrics_.all_retired = true;
      break;
    }

    if (!in_flight_.empty()) {
      r += 1;
      continue;
    }
    // Fast-forward: jump to the earliest wake time over live processes.
    Round next = never();
    Round lower = r + Round{1};
    for (std::size_t p = 0; p < procs_.size(); ++p) {
      if (state_[p] != ProcState::kAlive) continue;
      Round w = procs_[p]->next_wake(lower);
      if (w < lower) w = lower;  // a process may not schedule itself in the past
      if (w < next) next = w;
    }
    if (next == never()) {
      metrics_.deadlocked = true;  // live processes, no mail, no timers
      break;
    }
    if (next > lower) {
      ++metrics_.fast_forward_jumps;
      // Idle processes are charged by the available-processor-steps measure
      // even across fast-forwarded stretches.
      metrics_.available_processor_steps +=
          (next - lower) * static_cast<std::uint64_t>(alive_count());
    }
    r = next;
  }
  return metrics_;
}

RunMetrics run_simulation(std::vector<std::unique_ptr<IProcess>> processes,
                          std::unique_ptr<FaultInjector> faults, Simulator::Options options,
                          Simulator::WorkSink sink) {
  Simulator sim(std::move(processes), std::move(faults), options);
  if (sink) sim.set_work_sink(std::move(sink));
  return sim.run();
}

}  // namespace dowork
