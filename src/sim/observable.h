// Read-only window onto committed simulator state, for adaptive adversaries.
//
// The paper's bounds are worst cases over an *adaptive* adversary: one that
// watches the execution and chooses crashes online.  SimObservable is the
// exact window such an adversary is allowed to watch through — it is handed
// to the fault injector via FaultInjector::attach() and stays valid for the
// whole run (src/adversary/ builds its strategies on top of it).
//
// ## What is observable, and why nothing more
//
// The accessors report committed run state — work units that actually
// completed (post fault filtering), messages that actually escaped their
// sender, retirements that already happened — plus each process's own
// progress view (announced_progress below, which can additionally count a
// unit the process is mid-performing; process.h has the exact contract).
// The adversary never sees a protocol's private intentions beyond the
// Action it is already handed at the existing inspect() decision point —
// which is faithful to the model (the adversary controls the network and
// the crash schedule, so everything here is information it could
// reconstruct from the wire anyway) and is what keeps the harness
// determinism contract intact: a run is a pure function of (scenario,
// seed), strategies draw randomness only from scenario seeds, and no
// accessor exposes cross-run or cross-thread state (each run owns its
// simulator and injector; parallelism exists only across runs).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/round.h"

namespace dowork {

class SimObservable {
 public:
  virtual ~SimObservable() = default;

  // Shape: process count and (when the run tracks them) distinct work units.
  virtual int num_procs() const = 0;
  virtual std::int64_t num_units() const = 0;

  // Liveness.  "Active" means neither crashed nor voluntarily terminated.
  virtual bool is_active(int proc) const = 0;
  virtual int active_count() const = 0;
  virtual std::uint64_t crashes_so_far() const = 0;

  // Rounds elapsed: the round currently being stepped.
  virtual const Round& rounds_elapsed() const = 0;

  // Messages delivered to `proc` this round and not yet consumed by it:
  // once `proc` has been stepped (its on_round call consumed the mail) the
  // answer is 0 for the rest of the round, exactly as it was when delivery
  // materialized per-process inbox buffers.  The broadcast-ledger delivery
  // plane computes this lazily (a scan of the round's ledger), so only
  // adaptive adversaries pay for it -- never the simulator hot path.
  virtual std::size_t inbox_size(int proc) const = 0;

  // Committed per-process tallies (exactly the run metrics' breakdowns).
  virtual std::uint64_t units_done(int proc) const = 0;
  virtual std::uint64_t messages_sent(int proc) const = 0;
  virtual std::uint64_t total_units_done() const = 0;

  // The protocol-level observability accessor (IProcess::known_done_units):
  // how many units `proc` believes done — wire-derived knowledge plus the
  // process's own in-progress bookkeeping, which may run ahead of the
  // committed units_done() tallies for units `proc` is mid-performing.
  // See process.h for the exact contract and the per-protocol caveats.
  virtual std::int64_t announced_progress(int proc) const = 0;

  // --- network visibility -----------------------------------------------
  // Read-only view of the delivery plane, under the same committed-state
  // rules as the crash accessors: both report state the adversary could
  // reconstruct from the wire it already controls, and neither exposes
  // anything about *future* draws of the network model.  Defaulted so
  // substrates (and test doubles) without a network plane read as a calm
  // network.
  //
  // Broadcast records committed to the delivery plane and not yet delivered:
  // this round's ledger plus every record a latency draw or message fault
  // holds for a later round.  Counted in records (a t-recipient broadcast is
  // one), matching the ledger's own accounting.
  virtual std::uint64_t in_flight_messages() const { return 0; }
  // Partition id of `proc` at the round/time being stepped: 0 when no
  // partition window is in force, 1 for ids below the in-force window's
  // split, 2 for the rest (sim/network_model.h).
  virtual int current_partition(int /*proc*/) const { return 0; }
};

}  // namespace dowork
