// Synchronous round-based simulator with crash faults and fast-forward.
//
// Round structure (round r):
//   1. Messages sent in round r-1 are delivered to their recipients.
//   2. Each live process that has mail or whose wake time arrived is stepped
//      (in increasing id order; order is unobservable within a round since
//      all sends land next round).
//   3. The fault injector may crash a stepping process mid-round: the
//      adversary decides whether its work unit completed and how much of its
//      broadcast escaped (paper Section 2.1).
//   4. If no messages are in flight, the simulator jumps straight to the
//      earliest wake time over live processes ("fast-forward"), which is what
//      makes Protocol C's 2^(n+t)-round executions exactly simulable.
//
// The run ends when every process has retired (crashed or terminated), or on
// deadlock (nothing can ever happen again), or at the round cap.
//
// Hot-path design (see DESIGN.md "Simulator hot path"):
//   * Scheduling is wake-queue driven, not scan driven.  IProcess::next_wake
//     is monotone and only changes when the process is stepped (the contract
//     in process.h), so the simulator queries it exactly once per step,
//     caches the result in wake_[p], and keeps a lazy min-heap of
//     (wake, proc) entries.  A round steps only the processes that received
//     mail plus those popped from the heap -- O(steps * log t) instead of
//     O(t) virtual calls per round -- and heap compares are one u64 compare
//     in the common case (Round's inline tier; see util/round.h, which also
//     keeps a WakeEntry at 24 bytes instead of 72).  Fast-forward peeks the
//     heap instead of rescanning every process.
//     Stale heap entries (wake changed, process retired) are dropped on pop
//     by comparing against wake_[p] and state_[p].
//   * Delivery is a broadcast ledger, not per-pair envelopes: each send is
//     recorded ONCE (DeliveryRecord: audience + moved payload reference +
//     the crash prefix cut), so a round costs O(broadcasts + unicasts)
//     regardless of fan-out -- zero per-recipient allocation or shared_ptr
//     refcount traffic.  Recipients read the ledger lazily through
//     InboxView (message.h documents the iteration-order and prefix-cut
//     guarantees); per-recipient mail membership is precomputed into a
//     bitset (word-level ORs of shared audience sets) to drive the step
//     list and O(1) empty-inbox checks.  Message metrics are bumped
//     arithmetically per record (audience size), never per pair.
//   * alive_count() is an O(1) counter maintained on crash/terminate, not a
//     scan; it is consulted once per stepping process for the fault
//     injector's SimSnapshot.
// None of this changes observable behavior: scheduling decisions, delivery
// order and metrics are bit-for-bit those of the original O(t)-scan,
// envelope-per-pair simulator (tests/golden/ pins the JSON reports
// byte-for-byte).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "sim/fault_injector.h"
#include "sim/metrics.h"
#include "sim/network_model.h"
#include "sim/observable.h"
#include "sim/process.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace dowork {

enum class ProcState : std::uint8_t { kAlive, kCrashed, kTerminated };

// Thrown by a StepExecutor to end the run with a structured outcome instead
// of crashing or hanging: Simulator::run catches it, stamps
// RunMetrics::aborted / aborted_reason, and returns normally (the verifier
// then reports the reason as the violation).  The thread substrate's
// watchdog throws it when a worker misses its round deadline.  Executors
// may only throw before handing back any evaluated step, so an aborted
// round commits nothing.
struct AbortRun {
  std::string reason;
  // Machine-readable "key=value ..." companion, copied to
  // RunMetrics::abort_detail (may be empty).  By convention the first pair
  // is cause=<bucket>; compare_bench.py --aborts groups on it.
  std::string detail;
};

// How a committed CrashPlan stopped a process, as the live backend
// classifies its kill points (DESIGN.md "Execution substrates"): a crash
// whose delivery cut stops short of the flattened send sequence is a
// mid-broadcast kill, a crash that let every send through (or had none to
// cut on a sending round) is a send-commit kill, and a crash on a round
// with no sends at all stops the thread at the round barrier.
enum class KillPoint : std::uint8_t { kNone, kSendCommit, kMidBroadcast, kRoundBarrier };

// The evaluation half of one step: runs process p's on_round against the
// current round's inbox, exactly once, without committing anything.
// Implemented by Simulator; handed to the StepExecutor so worker threads
// can evaluate steps against an object whose lifetime spans the whole run
// (never against a per-round stack frame).  Distinct processes are
// data-independent -- eval_step(p) and eval_step(q) may run concurrently
// for p != q -- because an evaluation reads only process p's own state plus
// the round's already-delivered inbox, never this round's commits.
class StepEval {
 public:
  virtual Action eval_step(int proc) = 0;

 protected:
  ~StepEval() = default;
};

// Executor hook for the round's evaluation phase.  The default (no
// executor) is the serial in-place path, byte-identical to the historical
// simulator; the thread substrate (src/substrate/) installs one that fans
// evaluations out to per-process worker threads.  Commits always run on the
// simulator's own thread, in the order the executor returns -- ascending
// process id reproduces the serial interleaving exactly (the equivalence
// argument lives in DESIGN.md "Execution substrates").
class StepExecutor {
 public:
  virtual ~StepExecutor() = default;

  // One evaluated step, ready to commit.
  struct Ready {
    int proc;
    Action action;
  };

  // Evaluate the round's on_round calls.  `steps` is the alive subset of
  // the step list in ascending id order; the executor must call
  // eval.eval_step(p) exactly once per entry and append every result to
  // `out` in the order commits should happen.  May throw AbortRun (before
  // appending anything) to end the run with a structured reason.
  virtual void run_steps(StepEval& eval, const Round& round, const std::vector<int>& steps,
                         std::vector<Ready>& out) = 0;

  // A commit retired process `proc` (crash or terminate); `kp` classifies a
  // crash's kill point and is kNone for termination.  Called from the
  // commit phase, between run_steps calls.
  virtual void on_retire(int proc, ProcState state, KillPoint kp) = 0;
};

// The simulator is itself the SimObservable it hands the fault injector at
// run start (FaultInjector::attach): every accessor reads committed state —
// metrics breakdowns, retirement flags, this round's ledger — so adaptive
// adversaries (src/adversary/) observe exactly what the model lets them.
class Simulator final : public SimObservable, public StepEval {
 public:
  struct Options {
    // Enforce the paper's one-operation-per-round accounting: a step may
    // perform a work unit or emit one broadcast (all sends sharing a
    // payload), not both; poll replies are exempt.  Violations throw.
    bool strict_one_op = false;
    // Safety cap on *stepped* rounds (fast-forward jumps don't count).
    std::uint64_t max_stepped_rounds = 50'000'000;
    // Number of distinct work units (for multiplicity tracking); 0 = none.
    std::int64_t n_units = 0;
    // Network weather (sim/network_model.h).  The default is a no-op spec:
    // the run never enters the network delivery path and is bit-for-bit the
    // crash-only execution.
    NetSpec net;
  };

  // Called whenever a unit of work is actually performed (post fault
  // filtering).  Used by the Byzantine layer to attach effects to units.
  using WorkSink = std::function<void(int proc, std::int64_t unit, const Round& round)>;

  Simulator(std::vector<std::unique_ptr<IProcess>> processes,
            std::unique_ptr<FaultInjector> faults, Options options);

  void set_work_sink(WorkSink sink) { work_sink_ = std::move(sink); }

  // Installs the round-evaluation executor (null = the serial path).  Must
  // be set before run(); the executor must outlive the run, and -- because
  // worker threads evaluate against this object -- the Simulator must stay
  // alive until the executor's threads are joined.
  void set_step_executor(StepExecutor* executor) { executor_ = executor; }

  // StepEval: evaluate process `proc` against the round being stepped
  // (cur_round_).  Called by executors, possibly from worker threads.
  Action eval_step(int proc) override;

  // Runs to completion and returns the metrics.  May be called once.
  RunMetrics run();

  // Post-run inspection.
  ProcState state_of(int proc) const { return state_[static_cast<std::size_t>(proc)]; }
  int alive_count() const { return alive_; }
  const RunMetrics& metrics() const { return metrics_; }

  // SimObservable: the adaptive adversary's committed-state window
  // (sim/observable.h documents the contract).
  int num_procs() const override { return static_cast<int>(procs_.size()); }
  std::int64_t num_units() const override { return opt_.n_units; }
  bool is_active(int proc) const override {
    return state_[static_cast<std::size_t>(proc)] == ProcState::kAlive;
  }
  int active_count() const override { return alive_; }
  std::uint64_t crashes_so_far() const override { return metrics_.crashes; }
  const Round& rounds_elapsed() const override { return cur_round_; }
  // Counted lazily off the round's ledger (observable.h documents the
  // "delivered this round and not yet consumed" semantics); only adaptive
  // adversaries pay for it.
  std::size_t inbox_size(int proc) const override;
  std::uint64_t units_done(int proc) const override {
    return metrics_.work_by_proc[static_cast<std::size_t>(proc)];
  }
  std::uint64_t messages_sent(int proc) const override {
    return metrics_.messages_by_proc[static_cast<std::size_t>(proc)];
  }
  std::uint64_t total_units_done() const override { return metrics_.work_total; }
  std::int64_t announced_progress(int proc) const override {
    return procs_[static_cast<std::size_t>(proc)]->known_done_units();
  }
  // Network visibility (observable.h): this round's ledger plus every
  // latency-held record, counted in records.
  std::uint64_t in_flight_messages() const override {
    return static_cast<std::uint64_t>(ledger_.size()) + future_count_;
  }
  int current_partition(int proc) const override {
    return net_model_.partition_side(proc, cur_round_.to_u64_saturating());
  }

 private:
  // One lazy min-heap entry; stale when wake != wake_[proc] or the process
  // has retired (checked on pop, never eagerly removed).
  struct WakeEntry {
    Round wake;
    int proc;
  };
  // Min-heap order for std::push_heap/pop_heap (which build max-heaps, hence
  // the inversion).  Ties pop in arbitrary order: all due entries of a round
  // are collected and the step list is sorted by process id afterwards.
  static bool wake_later(const WakeEntry& a, const WakeEntry& b) { return b.wake < a.wake; }

  void step_round(const Round& r);
  // One step, split at the evaluation/commit boundary so an executor can
  // run evaluations concurrently while commits stay serial: eval_one runs
  // on_round against the round's inbox (thread-safe across distinct p);
  // commit_step marks the mail consumed, validates, consults the fault
  // injector, commits work and sends to the ledger, and retires or
  // reschedules.  The serial path is eval_one immediately followed by
  // commit_step per process -- observably identical to the historical
  // single-function step.
  Action eval_one(std::size_t p, const Round& r);
  void commit_step(std::size_t p, const Round& r, const Round& next_r, Action a);
  // Network delivery path (net_active_ only): runs the committed record
  // through the injector's message hook, the partition filter, the loss
  // draws and the latency draw (network_model.h documents the order), then
  // files it in the ledger or the future buffer.
  void commit_record(DeliveryRecord rec, const Round& r);
  void validate_strict(int proc, const Action& a) const;
  void retire(std::size_t p, ProcState to);
  // Re-queries next_wake(now) for p (clamped forward to `now`) and updates
  // the cache.  "Run again next round" answers go straight onto next_step_
  // (no heap traffic -- the common case for active processes); wake == never
  // means mail-only, no entry at all; everything else is heap-queued.
  void reschedule(std::size_t p, const Round& now);
  // Min wake over live processes as of the heap top, dropping stale entries;
  // never_round() when no live process has a timer.
  const Round* peek_min_wake();

  std::vector<std::unique_ptr<IProcess>> procs_;
  std::unique_ptr<FaultInjector> faults_;
  Options opt_;
  WorkSink work_sink_;
  StepExecutor* executor_ = nullptr;
  std::vector<int> live_steps_;                // executor path: alive step subset; reused
  std::vector<StepExecutor::Ready> ready_;     // executor path: evaluated steps; reused

  std::vector<ProcState> state_;
  int alive_ = 0;
  // The delivery plane: sends of the round being stepped land in ledger_;
  // at the next round's delivery the buffers swap and arriving_ holds the
  // records recipients view through InboxView for exactly one round.  Both
  // keep their capacity round over round.  arriving_round_ is the shared
  // sent round of every arriving record; mail_bits_ marks the (post-cut)
  // recipients, driving the step list and O(1) inbox-emptiness.
  std::vector<DeliveryRecord> ledger_;
  std::vector<DeliveryRecord> arriving_;
  Round ledger_round_;
  Round arriving_round_;
  // Network plane (populated only when net_active_): records a latency draw
  // or adversarial message fault holds back, keyed by delivery round, each
  // with its own sent round; arriving_sent_rounds_ mirrors arriving_
  // index-for-index so InboxView can report per-record sent rounds.  The
  // no-net path never touches any of it.
  struct DelayedRecord {
    DeliveryRecord rec;
    Round sent;
  };
  std::map<Round, std::vector<DelayedRecord>> future_;
  std::uint64_t future_count_ = 0;
  std::vector<Round> arriving_sent_rounds_;
  NetworkModel net_model_;
  Rng net_rng_{0};
  bool net_active_ = false;        // net model live or injector faults messages
  bool wants_msg_faults_ = false;  // cached FaultInjector::wants_message_faults
  DynBitset mail_bits_;
  bool mail_dirty_ = false;  // mail_bits_ has set bits to clear next delivery
  // Round-scoped step bookkeeping for the observable inbox_size: a process
  // that already consumed its mail this round reads as empty.
  std::vector<std::uint64_t> consumed_epoch_;
  std::uint64_t epoch_ = 0;
  std::vector<Round> wake_;                   // cached next_wake per process
  std::vector<WakeEntry> heap_;               // lazy min-heap over wake_
  std::vector<int> step_list_;                // processes to step this round; reused
  std::vector<int> next_step_;                // fast path: wake == next round
  std::vector<std::uint8_t> queued_;          // step/next-step membership flags
  std::vector<std::uint8_t> heap_has_;        // heap holds an entry == wake_[p]
  Round cur_round_;                           // round being stepped (observable)
  RunMetrics metrics_;
  bool ran_ = false;
};

// Convenience: build, run, and return metrics in one call.
RunMetrics run_simulation(std::vector<std::unique_ptr<IProcess>> processes,
                          std::unique_ptr<FaultInjector> faults, Simulator::Options options,
                          Simulator::WorkSink sink = nullptr);

}  // namespace dowork
