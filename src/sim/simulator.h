// Synchronous round-based simulator with crash faults and fast-forward.
//
// Round structure (round r):
//   1. Messages sent in round r-1 are delivered to recipient inboxes.
//   2. Each live process that has mail or whose wake time arrived is stepped
//      (in increasing id order; order is unobservable within a round since
//      all sends land next round).
//   3. The fault injector may crash a stepping process mid-round: the
//      adversary decides whether its work unit completed and how much of its
//      broadcast escaped (paper Section 2.1).
//   4. If no messages are in flight, the simulator jumps straight to the
//      earliest wake time over live processes ("fast-forward"), which is what
//      makes Protocol C's 2^(n+t)-round executions exactly simulable.
//
// The run ends when every process has retired (crashed or terminated), or on
// deadlock (nothing can ever happen again), or at the round cap.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/fault_injector.h"
#include "sim/metrics.h"
#include "sim/process.h"

namespace dowork {

enum class ProcState : std::uint8_t { kAlive, kCrashed, kTerminated };

class Simulator {
 public:
  struct Options {
    // Enforce the paper's one-operation-per-round accounting: a step may
    // perform a work unit or emit one broadcast (all sends sharing a
    // payload), not both; poll replies are exempt.  Violations throw.
    bool strict_one_op = false;
    // Safety cap on *stepped* rounds (fast-forward jumps don't count).
    std::uint64_t max_stepped_rounds = 50'000'000;
    // Number of distinct work units (for multiplicity tracking); 0 = none.
    std::int64_t n_units = 0;
  };

  // Called whenever a unit of work is actually performed (post fault
  // filtering).  Used by the Byzantine layer to attach effects to units.
  using WorkSink = std::function<void(int proc, std::int64_t unit, const Round& round)>;

  Simulator(std::vector<std::unique_ptr<IProcess>> processes,
            std::unique_ptr<FaultInjector> faults, Options options);

  void set_work_sink(WorkSink sink) { work_sink_ = std::move(sink); }

  // Runs to completion and returns the metrics.  May be called once.
  RunMetrics run();

  // Post-run inspection.
  ProcState state_of(int proc) const { return state_[static_cast<std::size_t>(proc)]; }
  int alive_count() const;
  const RunMetrics& metrics() const { return metrics_; }

 private:
  void step_round(const Round& r);
  void validate_strict(int proc, const Action& a) const;

  std::vector<std::unique_ptr<IProcess>> procs_;
  std::unique_ptr<FaultInjector> faults_;
  Options opt_;
  WorkSink work_sink_;

  std::vector<ProcState> state_;
  std::vector<std::vector<Envelope>> inbox_;    // delivered this round
  std::vector<Envelope> in_flight_;             // sent this round, lands next
  RunMetrics metrics_;
  bool ran_ = false;
};

// Convenience: build, run, and return metrics in one call.
RunMetrics run_simulation(std::vector<std::unique_ptr<IProcess>> processes,
                          std::unique_ptr<FaultInjector> faults, Simulator::Options options,
                          Simulator::WorkSink sink = nullptr);

}  // namespace dowork
