#include "sim/fault_injector.h"

namespace dowork {

ScheduledFaults::ScheduledFaults(std::vector<Entry> entries) : entries_(std::move(entries)) {}

std::optional<CrashPlan> ScheduledFaults::inspect(int proc, const Round&, const Action& action,
                                                  const SimSnapshot&) {
  if (action.idle()) return std::nullopt;
  if (action_count_.size() <= static_cast<std::size_t>(proc))
    action_count_.resize(static_cast<std::size_t>(proc) + 1, 0);
  std::uint64_t nth = ++action_count_[static_cast<std::size_t>(proc)];
  for (const Entry& e : entries_) {
    if (e.proc == proc && e.on_nth_action == nth) return e.plan;
  }
  return std::nullopt;
}

WorkCascadeFaults::WorkCascadeFaults(std::uint64_t units_before_crash, int max_crashes,
                                     std::size_t deliver_prefix, bool crash_completes_unit)
    : units_before_crash_(units_before_crash),
      max_crashes_(max_crashes),
      deliver_prefix_(deliver_prefix),
      crash_completes_unit_(crash_completes_unit) {}

std::optional<CrashPlan> WorkCascadeFaults::inspect(int proc, const Round&, const Action& action,
                                                    const SimSnapshot& snap) {
  if (snap.crashed_so_far >= max_crashes_) return std::nullopt;
  if (!action.work) return std::nullopt;
  if (units_done_.size() <= static_cast<std::size_t>(proc))
    units_done_.resize(static_cast<std::size_t>(proc) + 1, 0);
  std::uint64_t done = ++units_done_[static_cast<std::size_t>(proc)];
  if (done >= units_before_crash_) {
    CrashPlan plan;
    plan.work_completes = crash_completes_unit_;
    plan.deliver_prefix = deliver_prefix_;
    return plan;
  }
  return std::nullopt;
}

RandomFaults::RandomFaults(double p_per_round, int max_crashes, std::uint64_t seed)
    : p_(p_per_round), max_crashes_(max_crashes), rng_(seed) {}

std::optional<CrashPlan> RandomFaults::inspect(int, const Round&, const Action& action,
                                               const SimSnapshot& snap) {
  if (snap.crashed_so_far >= max_crashes_) return std::nullopt;
  if (action.idle()) return std::nullopt;
  if (!rng_.chance(p_)) return std::nullopt;
  CrashPlan plan;
  plan.work_completes = rng_.chance(0.5);
  plan.deliver_prefix = action.sends.empty()
                            ? 0
                            : static_cast<std::size_t>(rng_.uniform(0, action.total_recipients()));
  return plan;
}

}  // namespace dowork
