#include "sim/metrics.h"

#include <sstream>

namespace dowork {

bool RunMetrics::all_units_done() const {
  for (std::uint64_t m : unit_multiplicity)
    if (m == 0) return false;
  return true;
}

std::string RunMetrics::summary() const {
  std::ostringstream os;
  os << "work=" << work_total << " msgs=" << messages_total
     << " effort=" << effort() << " rounds=" << last_retire_round.to_string()
     << " crashes=" << crashes << " done=" << (all_units_done() ? "yes" : "NO")
     << " retired=" << (all_retired ? "yes" : "NO");
  return os.str();
}

}  // namespace dowork
