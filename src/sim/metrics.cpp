#include "sim/metrics.h"

#include <algorithm>
#include <sstream>

namespace dowork {

bool RunMetrics::all_units_done() const {
  for (std::uint64_t m : unit_multiplicity)
    if (m == 0) return false;
  return true;
}

std::string RunMetrics::summary() const {
  std::ostringstream os;
  os << "work=" << work_total << " msgs=" << messages_total
     << " effort=" << effort() << " rounds=" << last_retire_round.to_string()
     << " crashes=" << crashes << " done=" << (all_units_done() ? "yes" : "NO")
     << " retired=" << (all_retired ? "yes" : "NO");
  if (aborted) os << " aborted=\"" << aborted_reason << '"';
  return os.str();
}

void MetricsAggregate::absorb(const RunMetrics& m) {
  ++runs;
  max_work = std::max(max_work, m.work_total);
  sum_work += m.work_total;
  max_messages = std::max(max_messages, m.messages_total);
  sum_messages += m.messages_total;
  max_effort = std::max(max_effort, m.effort());
  sum_effort += m.effort();
  max_crashes = std::max(max_crashes, m.crashes);
  sum_crashes += m.crashes;
  if (m.last_retire_round > max_rounds) max_rounds = m.last_retire_round;
  all_ok = all_ok && m.all_retired && m.all_units_done() && !m.aborted;
}

std::string MetricsAggregate::summary() const {
  std::ostringstream os;
  os << "runs=" << runs << " max_work=" << max_work << " max_msgs=" << max_messages
     << " max_effort=" << max_effort << " max_rounds=" << max_rounds.to_string()
     << " ok=" << (all_ok ? "yes" : "NO");
  return os.str();
}

}  // namespace dowork
