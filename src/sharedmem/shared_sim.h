// Synchronous crash-prone shared-memory simulator (paper Section 1.1).
//
// The paper contrasts its message-passing model with Kanellakis-Shvartsman's
// shared-memory Write-All setting and notes that shared memory "simplifies
// things considerably for our problem": a straightforward algorithm that
// records progress in shared memory achieves optimal effort O(n + t) (where
// effort counts reads, writes and work units) in O(nt) time, because the
// shared cells survive crashes -- unlike unsent messages.  The standard
// emulations of shared memory over message passing don't help the other way
// round: they tolerate < t/2 failures and multiply message costs (the
// paper's argument for studying the message-passing problem directly).
//
// Model: atomic single-cell reads and writes; per round a live process
// performs one operation (read, write, or a unit of work).  A read issued
// in round r returns the cell value at the start of round r; if several
// processes write one cell in the same round, the lowest id wins (any rule
// works for the algorithms here).  Crashes may suppress the in-flight
// operation.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace dowork {

struct SharedOp {
  enum class Kind { kIdle, kRead, kWrite, kWork, kTerminate };
  Kind kind = Kind::kIdle;
  std::int64_t cell = -1;   // for kRead/kWrite
  std::int64_t value = 0;   // for kWrite
  std::int64_t unit = 0;    // for kWork (1-based)

  static SharedOp idle() { return {}; }
  static SharedOp read(std::int64_t c) { return {Kind::kRead, c, 0, 0}; }
  static SharedOp write(std::int64_t c, std::int64_t v) { return {Kind::kWrite, c, v, 0}; }
  static SharedOp work(std::int64_t u) { return {Kind::kWork, -1, 0, u}; }
  static SharedOp terminate() { return {Kind::kTerminate, -1, 0, 0}; }
};

class ISharedProcess {
 public:
  virtual ~ISharedProcess() = default;
  // `last_read` carries the value returned by the previous round's read (if
  // any).  Return the operation for this round.
  virtual SharedOp on_round(std::uint64_t round, std::optional<std::int64_t> last_read) = 0;
  // Fast-forward support: earliest round >= now at which the process acts.
  virtual std::uint64_t next_wake(std::uint64_t now) const = 0;
};

struct SharedMetrics {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t work_total = 0;
  std::uint64_t crashes = 0;
  std::uint64_t last_round = 0;
  std::vector<std::uint64_t> unit_multiplicity;
  bool all_retired = false;
  // The shared-memory notion of effort: memory operations plus work.
  std::uint64_t effort() const { return reads + writes + work_total; }
  bool all_units_done() const {
    for (auto m : unit_multiplicity)
      if (m == 0) return false;
    return true;
  }
};

class SharedMemSim {
 public:
  struct Options {
    std::int64_t n_units = 0;
    std::int64_t n_cells = 0;
    std::uint64_t max_rounds = 100'000'000;
  };
  struct CrashSpec {
    std::uint64_t on_nth_op = 1;  // crash on the k-th non-idle operation
    bool op_completes = false;    // does that operation take effect?
  };

  SharedMemSim(std::vector<std::unique_ptr<ISharedProcess>> procs, Options options,
               std::vector<std::optional<CrashSpec>> crash_specs = {});

  SharedMetrics run();

 private:
  std::vector<std::unique_ptr<ISharedProcess>> procs_;
  Options opt_;
  std::vector<std::optional<CrashSpec>> crash_specs_;
  std::vector<std::uint64_t> op_count_;
  std::vector<bool> retired_;
  std::vector<std::int64_t> cells_;
  std::vector<std::optional<std::int64_t>> pending_read_;
  SharedMetrics metrics_;
};

}  // namespace dowork
