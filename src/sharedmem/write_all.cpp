#include "sharedmem/write_all.h"

namespace dowork {

SharedOp WriteAllCounterProcess::on_round(std::uint64_t round,
                                          std::optional<std::int64_t> last_read) {
  switch (phase_) {
    case Phase::kWait:
      if (round < deadline_) return SharedOp::idle();
      phase_ = Phase::kReadIssued;
      return SharedOp::read(0);  // the progress counter lives in cell 0
    case Phase::kReadIssued:
      done_ = last_read.value_or(0);
      if (done_ >= n_) {
        phase_ = Phase::kDone;
        return SharedOp::terminate();
      }
      phase_ = Phase::kWriteBack;
      return SharedOp::work(done_ + 1);
    case Phase::kWork:
      if (done_ >= n_) {
        phase_ = Phase::kDone;
        return SharedOp::terminate();
      }
      phase_ = Phase::kWriteBack;
      return SharedOp::work(done_ + 1);
    case Phase::kWriteBack:
      // The unit just performed becomes durable before the next one starts;
      // a crash in between costs exactly one redone unit.
      ++done_;
      phase_ = Phase::kWork;
      return SharedOp::write(0, done_);
    case Phase::kDone:
      return SharedOp::terminate();
  }
  return SharedOp::idle();
}

std::uint64_t WriteAllCounterProcess::next_wake(std::uint64_t now) const {
  if (phase_ == Phase::kWait) return std::max(now, deadline_);
  if (phase_ == Phase::kDone) return UINT64_MAX;
  return now;
}

SharedMetrics run_write_all(const DoAllConfig& cfg,
                            std::vector<std::optional<SharedMemSim::CrashSpec>> crashes) {
  std::vector<std::unique_ptr<ISharedProcess>> procs;
  for (int i = 0; i < cfg.t; ++i)
    procs.push_back(std::make_unique<WriteAllCounterProcess>(cfg, i));
  SharedMemSim::Options opts;
  opts.n_units = cfg.n;
  opts.n_cells = 1;
  SharedMemSim sim(std::move(procs), opts, std::move(crashes));
  return sim.run();
}

}  // namespace dowork
