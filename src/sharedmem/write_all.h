// The "straightforward" shared-memory Do-All algorithm from the paper's
// Section 1.1 comparison: a shared progress counter records how many units
// are done; at most one process is active at a time (absolute deadlines, as
// in Protocol A), and a taker simply reads the counter and continues from
// there.  Because the counter survives crashes, at most one unit is redone
// per failure: effort (reads + writes + work) is 2n + O(t) -- optimal O(n+t)
// -- with running time O(nt).  This is what "shared memory simplifies
// things considerably" means concretely; contrast with the message-passing
// protocols that need checkpointing waves to reconstruct the same
// information.
#pragma once

#include "core/work.h"
#include "sharedmem/shared_sim.h"

namespace dowork {

class WriteAllCounterProcess final : public ISharedProcess {
 public:
  WriteAllCounterProcess(const DoAllConfig& cfg, int self)
      : n_(cfg.n), self_(self), deadline_(static_cast<std::uint64_t>(self) *
                                          static_cast<std::uint64_t>(2 * cfg.n + 4)) {
    cfg.validate();
  }

  SharedOp on_round(std::uint64_t round, std::optional<std::int64_t> last_read) override;
  std::uint64_t next_wake(std::uint64_t now) const override;

 private:
  enum class Phase { kWait, kReadIssued, kWork, kWriteBack, kDone };

  std::int64_t n_;
  int self_;
  std::uint64_t deadline_;
  Phase phase_ = Phase::kWait;
  std::int64_t done_ = 0;  // counter value: units 1..done_ complete
};

// Harness: run the counter algorithm on t processes with the given crash
// schedule (crash process p on its k-th shared-memory/work operation).
SharedMetrics run_write_all(const DoAllConfig& cfg,
                            std::vector<std::optional<SharedMemSim::CrashSpec>> crashes = {});

}  // namespace dowork
