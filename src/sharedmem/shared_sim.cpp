#include "sharedmem/shared_sim.h"

#include <algorithm>

namespace dowork {

SharedMemSim::SharedMemSim(std::vector<std::unique_ptr<ISharedProcess>> procs, Options options,
                           std::vector<std::optional<CrashSpec>> crash_specs)
    : procs_(std::move(procs)), opt_(options), crash_specs_(std::move(crash_specs)) {
  const std::size_t t = procs_.size();
  crash_specs_.resize(t);
  op_count_.assign(t, 0);
  retired_.assign(t, false);
  pending_read_.assign(t, std::nullopt);
  cells_.assign(static_cast<std::size_t>(opt_.n_cells), 0);
  metrics_.unit_multiplicity.assign(static_cast<std::size_t>(opt_.n_units), 0);
}

SharedMetrics SharedMemSim::run() {
  std::uint64_t r = 0;
  std::uint64_t rounds_stepped = 0;
  while (true) {
    int alive = 0;
    for (bool b : retired_)
      if (!b) ++alive;
    if (alive == 0) {
      metrics_.all_retired = true;
      break;
    }
    if (++rounds_stepped > opt_.max_rounds) break;

    // Collect this round's operations; reads see the cell values from the
    // start of the round, writes apply at the end (lowest id wins).
    std::vector<std::pair<std::int64_t, std::int64_t>> writes;  // (cell, value), id order
    for (std::size_t p = 0; p < procs_.size(); ++p) {
      if (retired_[p]) continue;
      if (pending_read_[p] == std::nullopt && procs_[p]->next_wake(r) > r) continue;
      SharedOp op = procs_[p]->on_round(r, pending_read_[p]);
      pending_read_[p].reset();

      std::optional<CrashSpec> crash;
      if (op.kind != SharedOp::Kind::kIdle && op.kind != SharedOp::Kind::kTerminate) {
        if (crash_specs_[p] && ++op_count_[p] >= crash_specs_[p]->on_nth_op && alive > 1) {
          crash = crash_specs_[p];
          crash_specs_[p].reset();
        }
      }
      const bool effective = !crash || crash->op_completes;
      switch (op.kind) {
        case SharedOp::Kind::kRead:
          if (effective && op.cell >= 0 && op.cell < opt_.n_cells) {
            ++metrics_.reads;
            pending_read_[p] = cells_[static_cast<std::size_t>(op.cell)];
          }
          break;
        case SharedOp::Kind::kWrite:
          if (effective && op.cell >= 0 && op.cell < opt_.n_cells) {
            ++metrics_.writes;
            writes.emplace_back(op.cell, op.value);
          }
          break;
        case SharedOp::Kind::kWork:
          if (effective) {
            ++metrics_.work_total;
            if (op.unit >= 1 && op.unit <= opt_.n_units)
              ++metrics_.unit_multiplicity[static_cast<std::size_t>(op.unit - 1)];
          }
          break;
        case SharedOp::Kind::kTerminate:
          retired_[p] = true;
          break;
        case SharedOp::Kind::kIdle:
          break;
      }
      if (crash) {
        retired_[p] = true;
        pending_read_[p].reset();
        ++metrics_.crashes;
      }
    }
    // Lowest id wins on write conflicts: apply in reverse id order so the
    // earliest write lands last... writes were gathered in id order, so the
    // first entry must win: iterate in reverse.
    for (auto it = writes.rbegin(); it != writes.rend(); ++it)
      cells_[static_cast<std::size_t>(it->first)] = it->second;

    metrics_.last_round = r;

    // Fast-forward over idle stretches (deadline-based takeovers).
    bool someone_now = false;
    bool anyone_alive = false;
    std::uint64_t next = UINT64_MAX;
    for (std::size_t p = 0; p < procs_.size(); ++p) {
      if (retired_[p]) continue;
      anyone_alive = true;
      if (pending_read_[p] != std::nullopt) {
        someone_now = true;
        break;
      }
      next = std::min(next, procs_[p]->next_wake(r + 1));
    }
    if (!anyone_alive) {
      metrics_.all_retired = true;
      break;
    }
    if (someone_now)
      r += 1;
    else if (next == UINT64_MAX)
      break;  // deadlock: live processes, no timers
    else
      r = std::max(next, r + 1);
  }
  return metrics_;
}

}  // namespace dowork
