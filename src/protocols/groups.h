// Group and work-partition geometry shared by Protocols A and B (Section 2).
//
// The paper assumes t is a perfect square and t | n "for ease of exposition";
// this is the generalized version it leaves to the reader:
//   * group size s = ceil(sqrt(t)); groups are consecutive id ranges
//     [g*s, min((g+1)*s, t)), the last group possibly smaller;
//   * the work is divided into t subchunks, subchunk c (1-based) covering
//     units (floor((c-1)*n/t), floor(c*n/t)] -- sizes differ by at most one;
//   * a "chunk" is s consecutive subchunks; the final subchunk is always
//     treated as a chunk boundary so the last full checkpoint happens even
//     when s does not divide t.
#pragma once

#include <cstdint>
#include <vector>

#include "core/work.h"

namespace dowork {

class GroupLayout {
 public:
  GroupLayout(int t, int group_size);
  static GroupLayout for_sqrt(int t) { return GroupLayout(t, int_sqrt_ceil(t)); }

  int t() const { return t_; }
  int group_size() const { return s_; }
  int num_groups() const { return num_groups_; }

  int group_of(int proc) const { return proc / s_; }
  int pos_in_group(int proc) const { return proc % s_; }  // the paper's i-bar
  int first_of_group(int g) const { return g * s_; }
  // Exclusive end id of group g (accounts for a short last group).
  int end_of_group(int g) const;

  // All members of group g.
  std::vector<int> members(int g) const;
  // Members of group g with id strictly greater than `above` (the "remainder
  // of the group" an active process broadcasts to).
  std::vector<int> members_above(int g, int above) const;

 private:
  int t_;
  int s_;
  int num_groups_;
};

class WorkPartition {
 public:
  // n units split into `subchunks` subchunks, grouped `per_chunk` subchunks
  // to a chunk.
  WorkPartition(std::int64_t n, int subchunks, int per_chunk);
  static WorkPartition for_protocol_a(std::int64_t n, int t) {
    return WorkPartition(n, t, int_sqrt_ceil(t));
  }

  std::int64_t n() const { return n_; }
  int num_subchunks() const { return subchunks_; }

  // First / last unit (1-based, inclusive) of subchunk c in 1..subchunks.
  // May be an empty range (begin > end) when n < subchunks.
  std::int64_t sub_begin(int c) const;
  std::int64_t sub_end(int c) const;

  // True when completing subchunk c triggers a full checkpoint.
  bool is_chunk_boundary(int c) const { return c % per_chunk_ == 0 || c == subchunks_; }

 private:
  std::int64_t n_;
  int subchunks_;
  int per_chunk_;
};

}  // namespace dowork
