// Protocol D (paper Section 4): the time-optimal algorithm.
//
// Work is spread over all processes believed correct: the protocol
// alternates *work phases* (each process performs its ceil(|S|/|T|)-unit
// slice of the outstanding set S) with *agreement phases*, an early-stopping
// eventual-agreement exchange in which everyone repeatedly broadcasts its
// view (S = outstanding units, T = processes seen alive) until the alive set
// is stable for a round, or a finished peer's view can be adopted.  If more
// than half the processes thought correct at the start of a phase are
// discovered to have failed during it, the protocol reverts to Protocol A on
// whatever work remains (without that escape hatch an adaptive adversary can
// force Omega(n log f / log log f) work, per De Prisco-Mayer-Yung).
//
// Guarantees (Theorem 4.1, case 1): with f failures and no phase losing more
// than half its processes, work <= 2n, messages <= (4f+2)t^2, and everyone
// retires by round (f+1)n/t + 4f + 2.  Failure-free: n/t + 2 rounds and 2t^2
// messages.
//
// Model adaptation (see DESIGN.md): the paper's agreement loop sends and
// receives within one round; our simulator delivers at the next round, so
// the loop is pipelined -- the receive-check for iteration k inspects the
// iteration-k broadcasts, which land one round later.  Later phases allow
// one grace iteration before declaring silent processes faulty, absorbing
// the <=1 round of skew left by done-adoption (the paper's "grace round").
#pragma once

#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "core/work.h"
#include "protocols/protocol_a.h"
#include "sim/process.h"
#include "util/bitset.h"

namespace dowork {

// Views are word-packed (util/bitset.h): an agreement iteration merges up
// to t of these per recipient, so the packing is what keeps the scale
// sweep's t = 1024 shape affordable.
struct AgreeMsg final : Payload {
  int phase;          // work/agreement phase number, 1-based
  DynBitset s_left;   // outstanding units, indexed unit-1
  DynBitset t_alive;  // processes believed correct
  bool done;
  AgreeMsg(int ph, DynBitset s, DynBitset t, bool d)
      : phase(ph), s_left(std::move(s)), t_alive(std::move(t)), done(d) {}
};

// Run-scoped memoization of the agreement merge.  Every recipient of an
// agreement round folds the SAME collective broadcast set (minus its own
// message) into its views: sn &= AND over senders of s_left, tn |= OR of
// t_alive.  Doing that independently costs Theta(t^2) view merges per round
// -- the dominant memory traffic of the D scale rows once the broadcast
// ledger removed the per-pair envelope churn.  The cache computes
// "everyone except me" with prefix/suffix folds over the round's pinned
// sender->message table: O(t) merges to build per round, O(1) merges per
// recipient to apply.
//
// Why results are bit-identical: AND/OR are associative and commutative,
// so regrouping the fold cannot change a bit, and fold() applies it only
// after verifying the requester's seen-set matches the pinned collective
// view entry-for-entry (any deviation -- a crash-cut broadcast that missed
// this recipient, an early arrival from a skewed phase boundary, a silent
// sender -- returns false and the caller merges the long way).  The cache
// is shared by the t sibling processes of ONE run and is invisible to every
// metric, message, and decision; protocol_d_test pins cache and cache-free
// runs to identical metrics.
//
// Threading: the round-parallel core (sim/round_pool.h) evaluates recipients
// on several threads, so one fold state cannot be shared -- requesters from
// different shards would interleave their prefix advances.  Instead the
// cache keeps one *lane* of fold state per serving thread, created on first
// use: the pool hands each thread a run of ascending-id recipients, so every
// lane independently sees the serial cache's access pattern over its own id
// range and pins its own collective view from its lowest requester.  Lanes
// never touch each other's state (the lane table itself is the only
// mutex-guarded structure), the per-lane fast path is lock-free, and a lane
// that sees requesters out of ascending order merely falls back to the naive
// merge -- the validation makes misuse slow, never wrong.  The serial
// simulator exercises exactly one lane, which behaves byte-for-byte like the
// pre-lane cache; protocol_d_test's sharded-round tests pin the
// serving-thread-change cases.
//
// Memory: a lane's suffix folds are built only above its pinning (lowest)
// requester, so lane k of a k-sharded round stores the top 1/k-ish of the
// suffix table and the lanes together cost ~ln(k) serial tables, not k.
class AgreeMergeCache {
 public:
  // Folds the collective view of `round` minus `self` into (sn, tn) exactly
  // as the naive loop over `seen` would; returns false (views untouched)
  // when `seen` deviates from the pinned collective view.
  bool fold(int self, const Round& round, int phase, const std::vector<const AgreeMsg*>& seen,
            DynBitset& sn, DynBitset& tn);

 private:
  // One serving thread's complete fold state; the pre-lane cache's fields,
  // verbatim, plus the suffix trim base.
  struct Lane {
    bool fold(int self, const Round& round, int phase, const std::vector<const AgreeMsg*>& seen,
              DynBitset& sn, DynBitset& tn);

    bool active_ = false;
    Round round_;
    int phase_ = 0;
    std::vector<const AgreeMsg*> msgs_;  // pinned collective view, by sender
    std::vector<std::uint8_t> defined_;  // msgs_[i] pinned (undefined = a past requester's own slot)
    std::vector<DynBitset> suffix_sn_, suffix_tn_;  // [j] = fold over senders in [j, t)
    int suffix_base_ = 0;  // suffix entries valid for j > suffix_base_ (= this round's pinning self)
    DynBitset prefix_sn_, prefix_tn_;  // fold over senders in [0, prefix_end_)
    int prefix_end_ = 0;
  };

  Lane& lane_for_this_thread();

  std::mutex lanes_mu_;  // guards the lane table only, never lane contents
  std::vector<std::pair<std::thread::id, std::unique_ptr<Lane>>> lanes_;
};

class ProtocolDProcess final : public IProcess {
 public:
  ProtocolDProcess(const DoAllConfig& cfg, int self,
                   std::shared_ptr<AgreeMergeCache> merge_cache = nullptr);

  Action on_round(const RoundContext& ctx, const InboxView& inbox) override;
  Round next_wake(const Round& now) const override;
  std::string describe() const override;

  int phases_completed() const { return phase_ - 1; }
  bool reverted_to_a() const { return phase_kind_ == PhaseKind::kRevertA; }

  // Observability accessor (process.h): units outside the outstanding set S
  // are exactly the ones this process knows done (performed by itself or
  // learned via agreement views).  After a revert, S is frozen at the
  // revert-time value — the embedded Protocol A instance works on virtual
  // ids, so its extra knowledge is not translated back.
  std::int64_t known_done_units() const override {
    return static_cast<std::int64_t>(s_.size() - s_.count());
  }

 private:
  enum class PhaseKind { kWork, kAgree, kRevertA, kFinished };

  void enter_work_phase(const Round& now);
  void enter_agree_phase(const Round& now);
  Action agree_broadcast(bool done);
  void finish_agree(const Round& now);

  std::int64_t n_;
  int t_;
  int self_;

  PhaseKind phase_kind_ = PhaseKind::kWork;
  int phase_ = 1;
  DynBitset s_;  // outstanding units (unit u -> s_[u-1])
  DynBitset t_alive_;

  // Work-phase state.
  std::vector<std::int64_t> my_slice_;
  std::size_t slice_pos_ = 0;
  Round work_end_;  // round at which the agreement phase starts
  bool work_entered_ = false;

  // Agreement-phase state (pipelined; see header comment).
  DynBitset u_;   // not yet known faulty this phase
  DynBitset tn_;  // T being accumulated
  DynBitset sn_;  // S being intersected
  // The broadcast audience (u_ minus self) as the shared immutable set the
  // ledger records alias (sim/message.h).  Rebuilt lazily whenever u_
  // changes; between changes -- every iteration of a stable agreement --
  // consecutive broadcasts share one object, so a full agreement phase
  // allocates O(changes) audience sets, not O(iterations).
  std::shared_ptr<const RecipientBits> audience_;
  int iter_ = 0;
  int grace_ = 0;
  bool done_ = false;
  // This phase's broadcasts, indexed by sender (null = silent); a flat
  // array instead of a map keeps the per-iteration bookkeeping O(t) with no
  // node allocation.  Raw pointers: during an agreement round the inbox owns
  // the payloads for the whole on_round call and seen_ is consumed and
  // cleared before returning; only messages that arrive *early* -- while we
  // are still in the work phase -- outlive their inbox, and those are kept
  // alive by early_retained_ (refcount churn per message was measurable at
  // t = 1024, where an iteration stashes ~t messages).
  std::vector<const AgreeMsg*> seen_;
  std::vector<std::shared_ptr<const Payload>> early_retained_;
  std::shared_ptr<AgreeMergeCache> merge_cache_;  // run-shared; null = merge manually

  // Revert path.  The paper's case-2 bounds assume Protocol A runs over the
  // surviving processes only, so the embedded instance uses rank-in-T ids;
  // the wrapper translates between ranks and real process ids on the wire.
  std::unique_ptr<ProtocolAProcess> revert_;
  std::vector<int> rank_to_id_;
  std::vector<int> id_to_rank_;  // -1 for processes outside the agreed T
  bool terminated_ = false;
};

}  // namespace dowork
