// Protocol D (paper Section 4): the time-optimal algorithm.
//
// Work is spread over all processes believed correct: the protocol
// alternates *work phases* (each process performs its ceil(|S|/|T|)-unit
// slice of the outstanding set S) with *agreement phases*, an early-stopping
// eventual-agreement exchange in which everyone repeatedly broadcasts its
// view (S = outstanding units, T = processes seen alive) until the alive set
// is stable for a round, or a finished peer's view can be adopted.  If more
// than half the processes thought correct at the start of a phase are
// discovered to have failed during it, the protocol reverts to Protocol A on
// whatever work remains (without that escape hatch an adaptive adversary can
// force Omega(n log f / log log f) work, per De Prisco-Mayer-Yung).
//
// Guarantees (Theorem 4.1, case 1): with f failures and no phase losing more
// than half its processes, work <= 2n, messages <= (4f+2)t^2, and everyone
// retires by round (f+1)n/t + 4f + 2.  Failure-free: n/t + 2 rounds and 2t^2
// messages.
//
// Model adaptation (see DESIGN.md): the paper's agreement loop sends and
// receives within one round; our simulator delivers at the next round, so
// the loop is pipelined -- the receive-check for iteration k inspects the
// iteration-k broadcasts, which land one round later.  Later phases allow
// one grace iteration before declaring silent processes faulty, absorbing
// the <=1 round of skew left by done-adoption (the paper's "grace round").
#pragma once

#include <memory>

#include "core/work.h"
#include "protocols/protocol_a.h"
#include "sim/process.h"
#include "util/bitset.h"

namespace dowork {

// Views are word-packed (util/bitset.h): an agreement iteration merges up
// to t of these per recipient, so the packing is what keeps the scale
// sweep's t = 1024 shape affordable.
struct AgreeMsg final : Payload {
  int phase;          // work/agreement phase number, 1-based
  DynBitset s_left;   // outstanding units, indexed unit-1
  DynBitset t_alive;  // processes believed correct
  bool done;
  AgreeMsg(int ph, DynBitset s, DynBitset t, bool d)
      : phase(ph), s_left(std::move(s)), t_alive(std::move(t)), done(d) {}
};

class ProtocolDProcess final : public IProcess {
 public:
  ProtocolDProcess(const DoAllConfig& cfg, int self);

  Action on_round(const RoundContext& ctx, const std::vector<Envelope>& inbox) override;
  Round next_wake(const Round& now) const override;
  std::string describe() const override;

  int phases_completed() const { return phase_ - 1; }
  bool reverted_to_a() const { return phase_kind_ == PhaseKind::kRevertA; }

  // Observability accessor (process.h): units outside the outstanding set S
  // are exactly the ones this process knows done (performed by itself or
  // learned via agreement views).  After a revert, S is frozen at the
  // revert-time value — the embedded Protocol A instance works on virtual
  // ids, so its extra knowledge is not translated back.
  std::int64_t known_done_units() const override {
    return static_cast<std::int64_t>(s_.size() - s_.count());
  }

 private:
  enum class PhaseKind { kWork, kAgree, kRevertA, kFinished };

  void enter_work_phase(const Round& now);
  void enter_agree_phase(const Round& now);
  Action agree_broadcast(bool done);
  void finish_agree(const Round& now);

  std::int64_t n_;
  int t_;
  int self_;

  PhaseKind phase_kind_ = PhaseKind::kWork;
  int phase_ = 1;
  DynBitset s_;  // outstanding units (unit u -> s_[u-1])
  DynBitset t_alive_;

  // Work-phase state.
  std::vector<std::int64_t> my_slice_;
  std::size_t slice_pos_ = 0;
  Round work_end_;  // round at which the agreement phase starts
  bool work_entered_ = false;

  // Agreement-phase state (pipelined; see header comment).
  DynBitset u_;   // not yet known faulty this phase
  DynBitset tn_;  // T being accumulated
  DynBitset sn_;  // S being intersected
  int iter_ = 0;
  int grace_ = 0;
  bool done_ = false;
  // This phase's broadcasts, indexed by sender (null = silent); a flat
  // array instead of a map keeps the per-iteration bookkeeping O(t) with no
  // node allocation.  Raw pointers: during an agreement round the inbox owns
  // the payloads for the whole on_round call and seen_ is consumed and
  // cleared before returning; only messages that arrive *early* -- while we
  // are still in the work phase -- outlive their inbox, and those are kept
  // alive by early_retained_ (refcount churn per message was measurable at
  // t = 1024, where an iteration stashes ~t messages).
  std::vector<const AgreeMsg*> seen_;
  std::vector<std::shared_ptr<const Payload>> early_retained_;

  // Revert path.  The paper's case-2 bounds assume Protocol A runs over the
  // surviving processes only, so the embedded instance uses rank-in-T ids;
  // the wrapper translates between ranks and real process ids on the wire.
  std::unique_ptr<ProtocolAProcess> revert_;
  std::vector<int> rank_to_id_;
  std::vector<int> id_to_rank_;  // -1 for processes outside the agreed T
  bool terminated_ = false;
};

}  // namespace dowork
