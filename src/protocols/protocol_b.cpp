#include "protocols/protocol_b.h"

#include <algorithm>

namespace dowork {

ProtocolBProcess::ProtocolBProcess(const DoAllConfig& cfg, int self, Round start_round)
    : layout_(GroupLayout::for_sqrt(cfg.t)),
      part_(WorkPartition::for_protocol_a(cfg.n, cfg.t)),
      n_(cfg.n),
      t_(cfg.t),
      self_(self),
      start_round_(start_round) {
  cfg.validate();
  // PTO - 1 bounds the silence a process can see from an active process in
  // its own group: one subchunk of work (<= ceil(n/t) rounds) plus the
  // partial-checkpoint round plus delivery.
  pto_ = static_cast<std::uint64_t>(ceil_div(n_, t_)) + 2;
  // The paper's convention: a fictitious ordinary message (0, g_j) from
  // process 0 at round 0 seeds every timeout.
  last_ = LastCheckpoint{0, layout_.group_of(self_), 0, start_round_, true};
}

std::uint64_t ProtocolBProcess::gto(int i) const {
  // GTO(i) - 1 bounds the silence before a higher group hears from group g_i
  // while any process >= i there is active: one chunk of work, its partial
  // checkpoints, and the per-process takeover probes.
  const std::uint64_t s = static_cast<std::uint64_t>(layout_.group_size());
  const std::uint64_t chunk_work = s * static_cast<std::uint64_t>(ceil_div(n_, t_));
  const std::uint64_t ibar = static_cast<std::uint64_t>(layout_.pos_in_group(i));
  return chunk_work + 3 * s + (s - ibar - 1) * pto_ + 1;
}

std::uint64_t ProtocolBProcess::ddb(int i) const {
  const int gi = layout_.group_of(i);
  const int gj = layout_.group_of(self_);
  if (gi == gj) return pto_;
  return gto(i) + static_cast<std::uint64_t>(gj - gi - 1) * gto(0);
}

Round ProtocolBProcess::passive_deadline() const {
  if (self_ == 0) return start_round_;  // process 0 is active from the start
  return last_.received_round + Round{ddb(last_.from)};
}

void ProtocolBProcess::ingest(const Msg& msg) {
  if (msg.as<GoAhead>()) {
    go_ahead_pending_ = true;
    return;
  }
  if (is_completion_notice(layout_, part_, self_, msg)) completion_seen_ = true;
  if (const auto* p = msg.as<CkptPartial>()) {
    last_ = LastCheckpoint{p->c, std::nullopt, msg.from, msg.sent_round() + Round{1}, false};
    if (state_ == State::kPreactive) state_ = State::kPassive;  // someone is alive below us
  } else if (const auto* f = msg.as<CkptFull>()) {
    last_ = LastCheckpoint{f->c, f->g, msg.from, msg.sent_round() + Round{1}, false};
    if (state_ == State::kPreactive) state_ = State::kPassive;
  }
}

void ProtocolBProcess::activate() {
  state_ = State::kActive;
  plan_ = ActivePlan(layout_, part_, self_, last_, nullptr);
}

void ProtocolBProcess::enter_preactive(const Round& now) {
  state_ = State::kPreactive;
  preactive_start_ = now;
  probe_targets_.clear();
  next_probe_ = 0;
  const int gj = layout_.group_of(self_);
  // Probe the lower-numbered group members that might still be alive: all of
  // them if the last ordinary message came from another group, only those
  // above the (known retired) sender otherwise.
  int first = layout_.group_of(last_.from) == gj ? last_.from + 1 : layout_.first_of_group(gj);
  for (int k = first; k < self_; ++k) probe_targets_.push_back(k);
}

Action ProtocolBProcess::pop_plan() {
  if (plan_.empty()) {
    state_ = State::kDone;
    Action a;
    a.terminate = true;
    return a;
  }
  ActiveOp op = plan_.pop();
  Action a;
  if (op.work) {
    a.work = op.work;
    if (*op.work > top_unit_) top_unit_ = *op.work;
  } else {
    a.sends.push_back(Outgoing{op.recipients, MsgKind::kCheckpoint, std::move(op.payload)});
  }
  if (plan_.empty()) {
    a.terminate = true;
    state_ = State::kDone;
  }
  return a;
}

std::int64_t ProtocolBProcess::known_done_units() const {
  const int c = std::min(last_.c, part_.num_subchunks());
  const std::int64_t from_ckpt = c >= 1 ? part_.sub_end(c) : 0;
  return std::max(from_ckpt, top_unit_);
}

Action ProtocolBProcess::on_round(const RoundContext& ctx, const InboxView& inbox) {
  go_ahead_pending_ = false;
  for (const Msg& msg : inbox) ingest(msg);

  if (state_ == State::kDone) {
    Action a;
    a.terminate = true;
    return a;
  }
  if (state_ == State::kActive) return pop_plan();

  // Passive/preactive: a completion notice retires us immediately.
  if (completion_seen_) {
    state_ = State::kDone;
    Action a;
    a.terminate = true;
    return a;
  }
  // A go-ahead makes us active on the spot, provided we do not already know
  // the last subchunk finished (c = t means only the tail of a full
  // checkpoint remains; the prober will time out and finish it itself).
  if (go_ahead_pending_ && last_.c < part_.num_subchunks()) {
    activate();
    return pop_plan();
  }

  if (state_ == State::kPassive) {
    if (ctx.round >= passive_deadline()) {
      enter_preactive(ctx.round);
      // Fall through to emit the first probe (or activate if none needed).
    } else {
      return Action::none();
    }
  }

  // Preactive probing: go-aheads PTO rounds apart; once every target has
  // been probed and a further PTO of silence passed, become active.
  if (state_ == State::kPreactive) {
    Round activation = preactive_start_ + Round{pto_} * probe_targets_.size();
    if (ctx.round >= activation) {
      activate();
      return pop_plan();
    }
    if (next_probe_ < probe_targets_.size()) {
      Round due = preactive_start_ + Round{pto_} * next_probe_;
      if (ctx.round >= due) {
        Action a;
        a.sends.push_back(
            Outgoing{probe_targets_[next_probe_], MsgKind::kGoAhead, std::make_shared<GoAhead>()});
        ++next_probe_;
        return a;
      }
    }
    return Action::none();
  }
  return Action::none();
}

Round ProtocolBProcess::next_wake(const Round& now) const {
  switch (state_) {
    case State::kPassive: {
      if (completion_seen_) return now;
      Round dd = passive_deadline();
      return dd > now ? dd : now;
    }
    case State::kPreactive: {
      Round due = next_probe_ < probe_targets_.size()
                      ? preactive_start_ + Round{pto_} * next_probe_
                      : preactive_start_ + Round{pto_} * probe_targets_.size();
      return due > now ? due : now;
    }
    case State::kActive:
      return now;
    case State::kDone:
      return never_round();
  }
  return never_round();
}

std::string ProtocolBProcess::describe() const {
  return "ProtocolB[" + std::to_string(self_) + "]";
}

}  // namespace dowork
