// Baseline 1 (paper Section 1): every process performs every unit of work.
// No messages, t*n work in the worst (= failure-free) case, n rounds.
#pragma once

#include "core/work.h"
#include "sim/process.h"

namespace dowork {

class BaselineAllProcess final : public IProcess {
 public:
  BaselineAllProcess(const DoAllConfig& cfg, int self) : n_(cfg.n), self_(self) {
    cfg.validate();
  }

  Action on_round(const RoundContext&, const InboxView&) override {
    Action a;
    if (next_unit_ <= n_) a.work = next_unit_++;
    if (next_unit_ > n_) a.terminate = true;
    return a;
  }

  Round next_wake(const Round& now) const override { return now; }
  std::string describe() const override { return "BaselineAll[" + std::to_string(self_) + "]"; }

 private:
  std::int64_t n_;
  int self_;
  std::int64_t next_unit_ = 1;
};

}  // namespace dowork
