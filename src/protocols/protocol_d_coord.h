// Coordinator variant of Protocol D (paper Section 4, closing remark):
// "We can also cut down the message complexity in the case of no failures to
// 2(t-1), rather than 2t^2 ... Instead of messages being broadcast during
// the agreement phase, they are all sent to a central coordinator, who
// broadcasts the results. ... Dealing with failures is somewhat subtle."
//
// The subtlety is the mixed state a crashed coordinator can leave behind (a
// prefix of the final-view broadcast delivered).  This implementation
// resolves it with fixed per-phase offsets and a reactive fallback:
//
//   R      work phase ends; every non-coordinator sends its view (one
//          message) to the coordinator = lowest-id process believed alive;
//   R+1..2 the coordinator collects reports (the extra round absorbs the
//          <=1 round of skew) and then broadcasts the merged final view;
//   R+3..4 participants await the final view;
//   R+5    anyone still lacking it starts a *fallback*: the standard
//          broadcast agreement (grace 2);
//   R+5..7 processes that did adopt the final view listen; on hearing any
//          fallback traffic they re-broadcast the adopted view as a done
//          message, which the fallback's done-adoption absorbs -- so every
//          survivor leaves the phase with the same view whether or not the
//          coordinator (or any adopter) died mid-broadcast;
//   R+8    everyone enters the next work phase (or terminates/reverts).
//
// Failure-free cost per agreement phase: (t-1) reports + (t-1) final-view
// messages = 2(t-1), at a constant number of extra (message-free) rounds
// relative to the broadcast variant -- the trade the paper describes.
#pragma once

#include "protocols/protocol_d.h"
#include "util/bitset.h"

namespace dowork {

class ProtocolDCoordProcess final : public IProcess {
 public:
  ProtocolDCoordProcess(const DoAllConfig& cfg, int self);

  Action on_round(const RoundContext& ctx, const InboxView& inbox) override;
  Round next_wake(const Round& now) const override;
  std::string describe() const override;

 private:
  enum class PhaseKind { kWork, kAgrCoord, kAgrAwait, kAgrListen, kAgrFallback, kRevertA,
                         kFinished };

  int coordinator() const;  // lowest-id process believed alive
  void enter_work_phase(const Round& now);
  Action broadcast_view(bool done);
  void finish_phase(const Round& now);

  std::int64_t n_;
  int t_;
  int self_;

  PhaseKind phase_kind_ = PhaseKind::kWork;
  int phase_ = 1;
  DynBitset s_, t_alive_;  // word-packed views, as in protocol_d.h

  std::vector<std::int64_t> my_slice_;
  std::size_t slice_pos_ = 0;
  Round work_end_;  // == this phase's agreement entry round R
  bool work_entered_ = false;

  // Agreement state.
  DynBitset u_, tn_, sn_;
  // This phase's messages, indexed by sender (null = silent); flat array
  // for the same O(t)-no-allocation reason as in protocol_d.h.
  std::vector<std::shared_ptr<const AgreeMsg>> seen_;
  Round agr_entry_;        // R
  bool report_sent_ = false;
  bool final_broadcast_ = false;
  bool responded_ = false;
  int iter_ = 0;           // fallback iteration counter
  bool in_fallback_ = false;
  Round resume_at_;        // next work-phase entry round

  std::unique_ptr<ProtocolAProcess> revert_;
  std::vector<int> rank_to_id_;
  std::vector<int> id_to_rank_;
  bool terminated_ = false;
};

}  // namespace dowork
