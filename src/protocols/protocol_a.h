// Protocol A (paper Section 2.1-2.2).
//
// At most one process is active at a time.  The active process performs the
// work one subchunk (n/t units) at a time; after each subchunk it does a
// *partial checkpoint* -- broadcasting (c) to the higher-numbered members of
// its own group of ~sqrt(t) processes -- and after each chunk (sqrt(t)
// subchunks) a *full checkpoint*: for each higher group g it broadcasts
// (c, g) to group g and then echoes (c, g) to its own group, checkpointing
// the fact that g was informed.  Process j takes over as the active process
// at round DD(j) = j*(n + 3t) unless it has learned that the work finished
// (it received (t) or a full checkpoint (t, g_j) addressed to its group).
//
// Guarantees (Theorem 2.3): work <= 3n', messages <= 9*t*sqrt(t), all
// processes retired by round n't + 3t^2, where n' = max(n, t) (with n < t a
// subchunk may be empty but is still checkpointed).
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "core/work.h"
#include "protocols/groups.h"
#include "sim/process.h"

namespace dowork {

// "(c)" -- partial checkpoint: subchunk c has been completed.
struct CkptPartial final : Payload {
  int c;
  explicit CkptPartial(int c_in) : c(c_in) {}
};

// "(c, g)" -- full checkpoint: subchunk c completed and group g informed.
// Delivered either directly to members of group g or as an echo to the
// sender's own group.
struct CkptFull final : Payload {
  int c;
  int g;  // 0-based group index
  CkptFull(int c_in, int g_in) : c(c_in), g(g_in) {}
};

// The information a passive process retains for takeover: the content and
// sender of the last checkpoint message it received.  `fictitious` marks the
// initial state (nothing received; Protocol B's convention of a round-0
// message (0, g_j) from process 0).
struct LastCheckpoint {
  int c = 0;
  std::optional<int> g;  // set for (c, g) messages
  int from = 0;
  Round received_round = 0;
  bool fictitious = true;
};

// One round of the active process's remaining script: either perform a work
// unit or emit one broadcast.
struct ActiveOp {
  std::optional<std::int64_t> work;
  std::vector<int> recipients;
  std::shared_ptr<const Payload> payload;
};

// Builds the full script of an active process that takes over in state
// `last` (DoWork in Figure 1): resume/complete the interrupted checkpoint,
// then work subchunk-by-subchunk with partial/full checkpoints.  Shared by
// Protocols A and B.
std::deque<ActiveOp> build_active_plan(const GroupLayout& layout, const WorkPartition& part,
                                       int self, const LastCheckpoint& last,
                                       const std::vector<std::int64_t>* unit_map);

// True when a received checkpoint tells `self` that all work is complete
// ("(t)" or a direct "(t, g_self)").
bool is_completion_notice(const GroupLayout& layout, const WorkPartition& part, int self,
                          const Envelope& env);

class ProtocolAProcess final : public IProcess {
 public:
  // `unit_map`, if non-empty, remaps virtual unit v (1-based) to
  // unit_map[v-1]; used when Protocol D reverts to Protocol A on the
  // leftover work set.  `start_round` offsets every deadline (the protocol
  // may be started mid-simulation, e.g. by the Byzantine layer).
  ProtocolAProcess(const DoAllConfig& cfg, int self, Round start_round = 0,
                   std::vector<std::int64_t> unit_map = {});

  Action on_round(const RoundContext& ctx, const std::vector<Envelope>& inbox) override;
  Round next_wake(const Round& now) const override;
  std::string describe() const override;

  bool is_active() const { return state_ == State::kActive; }

 private:
  enum class State { kPassive, kActive, kDone };

  Round takeover_deadline() const;  // start_round + DD(self)
  void ingest(const Envelope& env);
  Action pop_plan();

  GroupLayout layout_;
  WorkPartition part_;
  std::int64_t n_;
  int t_;
  int self_;
  Round start_round_;
  std::vector<std::int64_t> unit_map_;

  State state_ = State::kPassive;
  bool completion_seen_ = false;
  LastCheckpoint last_;
  std::deque<ActiveOp> plan_;
};

}  // namespace dowork
