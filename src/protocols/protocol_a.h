// Protocol A (paper Section 2.1-2.2).
//
// At most one process is active at a time.  The active process performs the
// work one subchunk (n/t units) at a time; after each subchunk it does a
// *partial checkpoint* -- broadcasting (c) to the higher-numbered members of
// its own group of ~sqrt(t) processes -- and after each chunk (sqrt(t)
// subchunks) a *full checkpoint*: for each higher group g it broadcasts
// (c, g) to group g and then echoes (c, g) to its own group, checkpointing
// the fact that g was informed.  Process j takes over as the active process
// at round DD(j) = j*(n + 3t) unless it has learned that the work finished
// (it received (t) or a full checkpoint (t, g_j) addressed to its group).
//
// Guarantees (Theorem 2.3): work <= 3n', messages <= 9*t*sqrt(t), all
// processes retired by round n't + 3t^2, where n' = max(n, t) (with n < t a
// subchunk may be empty but is still checkpointed).
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "core/work.h"
#include "protocols/groups.h"
#include "sim/process.h"

namespace dowork {

// "(c)" -- partial checkpoint: subchunk c has been completed.
struct CkptPartial final : Payload {
  int c;
  explicit CkptPartial(int c_in) : c(c_in) {}
};

// "(c, g)" -- full checkpoint: subchunk c completed and group g informed.
// Delivered either directly to members of group g or as an echo to the
// sender's own group.
struct CkptFull final : Payload {
  int c;
  int g;  // 0-based group index
  CkptFull(int c_in, int g_in) : c(c_in), g(g_in) {}
};

// The information a passive process retains for takeover: the content and
// sender of the last checkpoint message it received.  `fictitious` marks the
// initial state (nothing received; Protocol B's convention of a round-0
// message (0, g_j) from process 0).
struct LastCheckpoint {
  int c = 0;
  std::optional<int> g;  // set for (c, g) messages
  int from = 0;
  Round received_round = 0;
  bool fictitious = true;
};

// One round of the active process's remaining script: either perform a work
// unit or emit one broadcast.  Recipients are an IdRange (sim/message.h):
// groups are consecutive id ranges (groups.h), so every checkpoint
// broadcast's audience -- "group g" or "my group above me" -- is a range,
// and the range IS the wire representation (the Action carries it as one
// range-addressed send; the simulator never flattens it).
struct ActiveOp {
  std::optional<std::int64_t> work;
  IdRange recipients;
  std::shared_ptr<const Payload> payload;
};

// The active process's remaining script (DoWork in Figure 1), generated
// lazily: resume/complete the interrupted checkpoint, then work
// subchunk-by-subchunk with partial/full checkpoints.  Shared by Protocols A
// and B.
//
// Laziness matters under takeover cascades: the eager builder materialized
// O(n + t) ops per takeover while the adversary lets each active process
// consume only a chunk's worth, which made plan construction the dominant
// cost of the A/B scale rows.  The cursor snapshots the takeover state
// (`last`) at construction, so the op sequence is exactly the one the eager
// builder produced -- build_active_plan() below drains a cursor and is what
// plan_test.cpp pins the sequence with.
class ActivePlan {
 public:
  ActivePlan() = default;
  // `unit_map` (optional) must outlive the plan; it is the owning process's
  // member vector.
  ActivePlan(const GroupLayout& layout, const WorkPartition& part, int self,
             const LastCheckpoint& last, const std::vector<std::int64_t>* unit_map);

  bool empty() const { return prefix_pos_ >= prefix_.size() && !next_.has_value(); }
  // Next op of the script; must not be called when empty().
  ActiveOp pop();

 private:
  enum class Stage : std::uint8_t { kUnits, kPartial, kFullDirect, kFullEcho, kDone };

  // Emits the next main-loop op into *out and advances the state machine;
  // false when the script is exhausted.  Skips the ops the eager builder
  // skipped (empty broadcasts convey nothing and cost no round).
  bool produce(ActiveOp* out);
  void advance_subchunk();  // move to subchunk c_ + 1 (or kDone past the last)

  GroupLayout layout_{1, 1};
  WorkPartition part_{0, 1, 1};
  int self_ = 0;
  int gj_ = 0;        // own group index
  IdRange own_rest_;  // "remainder of the own group": ids in (self_, end of group)
  const std::vector<std::int64_t>* unit_map_ = nullptr;

  std::vector<ActiveOp> prefix_;  // resume section, O(groups), built eagerly
  std::size_t prefix_pos_ = 0;
  // One-op lookahead so empty() is exact even when the remaining tail emits
  // nothing (e.g. a last-in-group process with no higher groups).
  std::optional<ActiveOp> next_;
  Stage stage_ = Stage::kDone;
  int c_ = 0;           // current subchunk
  std::int64_t u_ = 0;  // next unit within subchunk c_ (kUnits only)
  int g_ = 0;           // current full-checkpoint target group
};

// The eager form of the script -- a drained ActivePlan -- used by the plan
// unit tests and anyone who wants the ops as data.
std::deque<ActiveOp> build_active_plan(const GroupLayout& layout, const WorkPartition& part,
                                       int self, const LastCheckpoint& last,
                                       const std::vector<std::int64_t>* unit_map);

// True when a received checkpoint tells `self` that all work is complete
// ("(t)" or a direct "(t, g_self)").  Takes the non-owning message view;
// Envelope converts implicitly.
bool is_completion_notice(const GroupLayout& layout, const WorkPartition& part, int self,
                          const Msg& msg);

class ProtocolAProcess final : public IProcess {
 public:
  // `unit_map`, if non-empty, remaps virtual unit v (1-based) to
  // unit_map[v-1]; used when Protocol D reverts to Protocol A on the
  // leftover work set.  `start_round` offsets every deadline (the protocol
  // may be started mid-simulation, e.g. by the Byzantine layer).
  ProtocolAProcess(const DoAllConfig& cfg, int self, Round start_round = 0,
                   std::vector<std::int64_t> unit_map = {});

  Action on_round(const RoundContext& ctx, const InboxView& inbox) override;
  Round next_wake(const Round& now) const override;
  std::string describe() const override;

  bool is_active() const { return state_ == State::kActive; }

  // Observability accessor (process.h): units known done = the last
  // checkpoint heard (work is sequential, so subchunk c done means units
  // 1..sub_end(c) are done) or, when active, the last unit performed.
  // Unit-mapped instances (Protocol D's revert) report 0 — their ids are
  // virtual and the wrapper exposes its own knowledge instead.
  std::int64_t known_done_units() const override;

 private:
  enum class State { kPassive, kActive, kDone };

  Round takeover_deadline() const;  // start_round + DD(self)
  void ingest(const Msg& msg);
  Action pop_plan();

  GroupLayout layout_;
  WorkPartition part_;
  std::int64_t n_;
  int t_;
  int self_;
  Round start_round_;
  std::vector<std::int64_t> unit_map_;

  State state_ = State::kPassive;
  bool completion_seen_ = false;
  LastCheckpoint last_;
  ActivePlan plan_;
  std::int64_t top_unit_ = 0;  // highest unit performed (unmapped runs only)
};

}  // namespace dowork
