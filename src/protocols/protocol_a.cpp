#include "protocols/protocol_a.h"

namespace dowork {

namespace {

// Append a broadcast op unless the recipient list is empty (an empty
// broadcast conveys nothing and the paper does not charge a round for it).
void push_broadcast(std::deque<ActiveOp>& plan, std::vector<int> recipients,
                    std::shared_ptr<const Payload> payload) {
  if (recipients.empty()) return;
  plan.push_back(ActiveOp{std::nullopt, std::move(recipients), std::move(payload)});
}

}  // namespace

std::deque<ActiveOp> build_active_plan(const GroupLayout& layout, const WorkPartition& part,
                                       int self, const LastCheckpoint& last,
                                       const std::vector<std::int64_t>* unit_map) {
  std::deque<ActiveOp> plan;
  const int gj = layout.group_of(self);
  const int num_groups = layout.num_groups();

  // Partialcheckpoint(c): inform the remainder of the own group.
  auto partial_ckpt = [&](int c) {
    push_broadcast(plan, layout.members_above(gj, self), std::make_shared<CkptPartial>(c));
  };
  // Fullcheckpoint(c, l): for each group g = l..G-1, inform group g and then
  // checkpoint that fact to the remainder of the own group.
  auto full_ckpt = [&](int c, int from_g) {
    for (int g = from_g; g < num_groups; ++g) {
      push_broadcast(plan, layout.members(g), std::make_shared<CkptFull>(c, g));
      push_broadcast(plan, layout.members_above(gj, self), std::make_shared<CkptFull>(c, g));
    }
  };

  // Resume the interrupted checkpointing (Figure 1, DoWork lines 1-9).
  if (!last.fictitious) {
    if (last.g.has_value()) {
      if (layout.group_of(last.from) != gj) {
        // Direct full checkpoint (c, g_j) from an earlier group: complete the
        // partial checkpoint, then the full checkpoint from the next group.
        partial_ckpt(last.c);
        full_ckpt(last.c, gj + 1);
      } else {
        // Echo (c, g) with g > g_j from a group mate: make sure the own group
        // knows group g was informed, then continue from group g+1.
        push_broadcast(plan, layout.members_above(gj, self),
                       std::make_shared<CkptFull>(last.c, *last.g));
        full_ckpt(last.c, *last.g + 1);
      }
    } else {
      // Partial checkpoint (c): complete it; if c closed a chunk, the full
      // checkpoint may also have been cut short -- redo it.
      partial_ckpt(last.c);
      if (part.is_chunk_boundary(last.c)) full_ckpt(last.c, gj + 1);
    }
  }

  // Proceed with the work, subchunk by subchunk (lines 10-14).
  for (int c = last.c + 1; c <= part.num_subchunks(); ++c) {
    for (std::int64_t u = part.sub_begin(c); u <= part.sub_end(c); ++u) {
      std::int64_t unit = unit_map ? (*unit_map)[static_cast<std::size_t>(u - 1)] : u;
      plan.push_back(ActiveOp{unit, {}, nullptr});
    }
    partial_ckpt(c);
    if (part.is_chunk_boundary(c)) full_ckpt(c, gj + 1);
  }
  return plan;
}

bool is_completion_notice(const GroupLayout& layout, const WorkPartition& part, int self,
                          const Envelope& env) {
  const int last_sub = part.num_subchunks();
  if (const auto* p = env.as<CkptPartial>()) return p->c == last_sub;
  if (const auto* f = env.as<CkptFull>())
    return f->c == last_sub && f->g == layout.group_of(self);
  return false;
}

ProtocolAProcess::ProtocolAProcess(const DoAllConfig& cfg, int self, Round start_round,
                                   std::vector<std::int64_t> unit_map)
    : layout_(GroupLayout::for_sqrt(cfg.t)),
      part_(WorkPartition::for_protocol_a(cfg.n, cfg.t)),
      n_(cfg.n),
      t_(cfg.t),
      self_(self),
      start_round_(start_round),
      unit_map_(std::move(unit_map)) {
  cfg.validate();
}

Round ProtocolAProcess::takeover_deadline() const {
  // DD(j) = j * (n + 3t): by then processes 0..j-1 have retired (Lemma 2.2;
  // each active process lives < n + 3t rounds, Lemma 2.1).
  return start_round_ + Round{static_cast<std::uint64_t>(self_)} *
                            static_cast<std::uint64_t>(n_ + 3 * static_cast<std::int64_t>(t_));
}

void ProtocolAProcess::ingest(const Envelope& env) {
  if (is_completion_notice(layout_, part_, self_, env)) completion_seen_ = true;
  if (const auto* p = env.as<CkptPartial>()) {
    last_ = LastCheckpoint{p->c, std::nullopt, env.from, env.sent_round + Round{1}, false};
  } else if (const auto* f = env.as<CkptFull>()) {
    last_ = LastCheckpoint{f->c, f->g, env.from, env.sent_round + Round{1}, false};
  }
}

Action ProtocolAProcess::pop_plan() {
  if (plan_.empty()) {
    state_ = State::kDone;
    Action a;
    a.terminate = true;
    return a;
  }
  ActiveOp op = std::move(plan_.front());
  plan_.pop_front();
  Action a;
  if (op.work) {
    a.work = op.work;
  } else {
    for (int r : op.recipients) a.sends.push_back(Outgoing{r, MsgKind::kCheckpoint, op.payload});
  }
  if (plan_.empty()) {
    // Terminate in the same round as the final operation.
    a.terminate = true;
    state_ = State::kDone;
  }
  return a;
}

Action ProtocolAProcess::on_round(const RoundContext& ctx, const std::vector<Envelope>& inbox) {
  for (const Envelope& env : inbox) ingest(env);

  if (state_ == State::kDone) {
    Action a;
    a.terminate = true;
    return a;
  }

  if (state_ == State::kPassive) {
    if (completion_seen_) {
      state_ = State::kDone;
      Action a;
      a.terminate = true;
      return a;
    }
    if (ctx.round >= takeover_deadline()) {
      state_ = State::kActive;
      plan_ = build_active_plan(layout_, part_, self_, last_,
                                unit_map_.empty() ? nullptr : &unit_map_);
    } else {
      return Action::none();
    }
  }
  return pop_plan();
}

Round ProtocolAProcess::next_wake(const Round& now) const {
  switch (state_) {
    case State::kPassive: {
      if (completion_seen_) return now;  // wake to retire
      Round dd = takeover_deadline();
      return dd > now ? dd : now;
    }
    case State::kActive:
      return now;  // acts every round until the plan is drained
    case State::kDone:
      return never_round();
  }
  return never_round();
}

std::string ProtocolAProcess::describe() const {
  return "ProtocolA[" + std::to_string(self_) + "]";
}

}  // namespace dowork
