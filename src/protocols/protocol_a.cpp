#include "protocols/protocol_a.h"

namespace dowork {

ActivePlan::ActivePlan(const GroupLayout& layout, const WorkPartition& part, int self,
                       const LastCheckpoint& last, const std::vector<std::int64_t>* unit_map)
    : layout_(layout), part_(part), self_(self), unit_map_(unit_map) {
  gj_ = layout_.group_of(self_);
  own_rest_ =
      IdRange{std::max(layout_.first_of_group(gj_), self_ + 1), layout_.end_of_group(gj_)};

  // The resume section (Figure 1, DoWork lines 1-9) is O(groups): build it
  // eagerly.  An empty broadcast conveys nothing and the paper does not
  // charge a round for it, so empty recipient ranges emit no op.
  auto push_broadcast = [&](IdRange recipients, std::shared_ptr<const Payload> payload) {
    if (recipients.empty()) return;
    prefix_.push_back(ActiveOp{std::nullopt, recipients, std::move(payload)});
  };
  // Partialcheckpoint(c): inform the remainder of the own group.
  auto partial_ckpt = [&](int c) { push_broadcast(own_rest_, std::make_shared<CkptPartial>(c)); };
  // Fullcheckpoint(c, l): for each group g = l..G-1, inform group g and then
  // checkpoint that fact to the remainder of the own group.
  auto full_ckpt = [&](int c, int from_g) {
    for (int g = from_g; g < layout_.num_groups(); ++g) {
      push_broadcast(IdRange{layout_.first_of_group(g), layout_.end_of_group(g)},
                     std::make_shared<CkptFull>(c, g));
      push_broadcast(own_rest_, std::make_shared<CkptFull>(c, g));
    }
  };
  if (!last.fictitious) {
    if (last.g.has_value()) {
      if (layout_.group_of(last.from) != gj_) {
        // Direct full checkpoint (c, g_j) from an earlier group: complete the
        // partial checkpoint, then the full checkpoint from the next group.
        partial_ckpt(last.c);
        full_ckpt(last.c, gj_ + 1);
      } else {
        // Echo (c, g) with g > g_j from a group mate: make sure the own group
        // knows group g was informed, then continue from group g+1.
        push_broadcast(own_rest_, std::make_shared<CkptFull>(last.c, *last.g));
        full_ckpt(last.c, *last.g + 1);
      }
    } else {
      // Partial checkpoint (c): complete it; if c closed a chunk, the full
      // checkpoint may also have been cut short -- redo it.
      partial_ckpt(last.c);
      if (part_.is_chunk_boundary(last.c)) full_ckpt(last.c, gj_ + 1);
    }
  }

  // Position the lazy main loop (lines 10-14) at subchunk last.c + 1 and
  // prime the lookahead.
  c_ = last.c;
  advance_subchunk();
  ActiveOp op;
  if (produce(&op)) next_ = std::move(op);
}

void ActivePlan::advance_subchunk() {
  ++c_;
  if (c_ > part_.num_subchunks()) {
    stage_ = Stage::kDone;
    return;
  }
  u_ = part_.sub_begin(c_);
  stage_ = Stage::kUnits;
}

bool ActivePlan::produce(ActiveOp* out) {
  while (true) {
    switch (stage_) {
      case Stage::kDone:
        return false;
      case Stage::kUnits: {
        if (u_ <= part_.sub_end(c_)) {
          const std::int64_t unit =
              unit_map_ ? (*unit_map_)[static_cast<std::size_t>(u_ - 1)] : u_;
          ++u_;
          *out = ActiveOp{unit, {}, nullptr};
          return true;
        }
        stage_ = Stage::kPartial;
        break;
      }
      case Stage::kPartial: {
        const int c = c_;
        if (part_.is_chunk_boundary(c_)) {
          stage_ = Stage::kFullDirect;
          g_ = gj_ + 1;
        } else {
          advance_subchunk();
        }
        if (!own_rest_.empty()) {
          *out = ActiveOp{std::nullopt, own_rest_, std::make_shared<CkptPartial>(c)};
          return true;
        }
        break;
      }
      case Stage::kFullDirect: {
        if (g_ >= layout_.num_groups()) {
          advance_subchunk();
          break;
        }
        *out = ActiveOp{std::nullopt,
                        IdRange{layout_.first_of_group(g_), layout_.end_of_group(g_)},
                        std::make_shared<CkptFull>(c_, g_)};
        stage_ = Stage::kFullEcho;
        return true;
      }
      case Stage::kFullEcho: {
        const int g = g_;
        ++g_;
        stage_ = Stage::kFullDirect;
        if (!own_rest_.empty()) {
          *out = ActiveOp{std::nullopt, own_rest_, std::make_shared<CkptFull>(c_, g)};
          return true;
        }
        break;
      }
    }
  }
}

ActiveOp ActivePlan::pop() {
  if (prefix_pos_ < prefix_.size()) return std::move(prefix_[prefix_pos_++]);
  ActiveOp out = std::move(*next_);
  next_.reset();
  ActiveOp refill;
  if (produce(&refill)) next_ = std::move(refill);
  return out;
}

std::deque<ActiveOp> build_active_plan(const GroupLayout& layout, const WorkPartition& part,
                                       int self, const LastCheckpoint& last,
                                       const std::vector<std::int64_t>* unit_map) {
  ActivePlan cursor(layout, part, self, last, unit_map);
  std::deque<ActiveOp> plan;
  while (!cursor.empty()) plan.push_back(cursor.pop());
  return plan;
}

bool is_completion_notice(const GroupLayout& layout, const WorkPartition& part, int self,
                          const Msg& msg) {
  const int last_sub = part.num_subchunks();
  if (const auto* p = msg.as<CkptPartial>()) return p->c == last_sub;
  if (const auto* f = msg.as<CkptFull>())
    return f->c == last_sub && f->g == layout.group_of(self);
  return false;
}

ProtocolAProcess::ProtocolAProcess(const DoAllConfig& cfg, int self, Round start_round,
                                   std::vector<std::int64_t> unit_map)
    : layout_(GroupLayout::for_sqrt(cfg.t)),
      part_(WorkPartition::for_protocol_a(cfg.n, cfg.t)),
      n_(cfg.n),
      t_(cfg.t),
      self_(self),
      start_round_(start_round),
      unit_map_(std::move(unit_map)) {
  cfg.validate();
}

Round ProtocolAProcess::takeover_deadline() const {
  // DD(j) = j * (n + 3t): by then processes 0..j-1 have retired (Lemma 2.2;
  // each active process lives < n + 3t rounds, Lemma 2.1).
  return start_round_ + Round{static_cast<std::uint64_t>(self_)} *
                            static_cast<std::uint64_t>(n_ + 3 * static_cast<std::int64_t>(t_));
}

void ProtocolAProcess::ingest(const Msg& msg) {
  if (is_completion_notice(layout_, part_, self_, msg)) completion_seen_ = true;
  if (const auto* p = msg.as<CkptPartial>()) {
    last_ = LastCheckpoint{p->c, std::nullopt, msg.from, msg.sent_round() + Round{1}, false};
  } else if (const auto* f = msg.as<CkptFull>()) {
    last_ = LastCheckpoint{f->c, f->g, msg.from, msg.sent_round() + Round{1}, false};
  }
}

Action ProtocolAProcess::pop_plan() {
  if (plan_.empty()) {
    state_ = State::kDone;
    Action a;
    a.terminate = true;
    return a;
  }
  ActiveOp op = plan_.pop();
  Action a;
  if (op.work) {
    a.work = op.work;
    if (unit_map_.empty() && *op.work > top_unit_) top_unit_ = *op.work;
  } else {
    // The whole group broadcast is ONE range-addressed send; the delivery
    // plane never materializes per-recipient messages.
    a.sends.push_back(Outgoing{op.recipients, MsgKind::kCheckpoint, std::move(op.payload)});
  }
  if (plan_.empty()) {
    // Terminate in the same round as the final operation.
    a.terminate = true;
    state_ = State::kDone;
  }
  return a;
}

Action ProtocolAProcess::on_round(const RoundContext& ctx, const InboxView& inbox) {
  for (const Msg& msg : inbox) ingest(msg);

  if (state_ == State::kDone) {
    Action a;
    a.terminate = true;
    return a;
  }

  if (state_ == State::kPassive) {
    if (completion_seen_) {
      state_ = State::kDone;
      Action a;
      a.terminate = true;
      return a;
    }
    if (ctx.round >= takeover_deadline()) {
      state_ = State::kActive;
      plan_ = ActivePlan(layout_, part_, self_, last_,
                         unit_map_.empty() ? nullptr : &unit_map_);
    } else {
      return Action::none();
    }
  }
  return pop_plan();
}

std::int64_t ProtocolAProcess::known_done_units() const {
  if (!unit_map_.empty()) return 0;  // virtual ids; the D wrapper answers
  const int c = std::min(last_.c, part_.num_subchunks());
  const std::int64_t from_ckpt = c >= 1 ? part_.sub_end(c) : 0;
  return std::max(from_ckpt, top_unit_);
}

Round ProtocolAProcess::next_wake(const Round& now) const {
  switch (state_) {
    case State::kPassive: {
      if (completion_seen_) return now;  // wake to retire
      Round dd = takeover_deadline();
      return dd > now ? dd : now;
    }
    case State::kActive:
      return now;  // acts every round until the plan is drained
    case State::kDone:
      return never_round();
  }
  return never_round();
}

std::string ProtocolAProcess::describe() const {
  return "ProtocolA[" + std::to_string(self_) + "]";
}

}  // namespace dowork
