#include "protocols/groups.h"

#include <algorithm>
#include <stdexcept>

namespace dowork {

GroupLayout::GroupLayout(int t, int group_size) : t_(t), s_(group_size) {
  if (t < 1 || group_size < 1) throw std::invalid_argument("GroupLayout: bad sizes");
  num_groups_ = (t + s_ - 1) / s_;
}

int GroupLayout::end_of_group(int g) const { return std::min(t_, (g + 1) * s_); }

std::vector<int> GroupLayout::members(int g) const {
  std::vector<int> out;
  for (int i = first_of_group(g); i < end_of_group(g); ++i) out.push_back(i);
  return out;
}

std::vector<int> GroupLayout::members_above(int g, int above) const {
  std::vector<int> out;
  for (int i = std::max(first_of_group(g), above + 1); i < end_of_group(g); ++i) out.push_back(i);
  return out;
}

WorkPartition::WorkPartition(std::int64_t n, int subchunks, int per_chunk)
    : n_(n), subchunks_(subchunks), per_chunk_(per_chunk) {
  if (n < 0 || subchunks < 1 || per_chunk < 1) throw std::invalid_argument("WorkPartition: bad");
}

std::int64_t WorkPartition::sub_begin(int c) const {
  return (static_cast<std::int64_t>(c - 1) * n_) / subchunks_ + 1;
}

std::int64_t WorkPartition::sub_end(int c) const {
  return (static_cast<std::int64_t>(c) * n_) / subchunks_;
}

}  // namespace dowork
