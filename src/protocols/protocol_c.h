// Protocol C (paper Section 3): work-optimal Do-All with only O(n + t log t)
// messages (O(t log t) in the batched variant of Corollary 3.9), at the cost
// of running time exponential in n + t.
//
// Processing is organized into log t levels; at level h the processes are
// partitioned into groups of size 2^(log t - h + 1), so each process belongs
// to one group per level (level 1 = everyone, level log t = pairs).  "Work on
// level h-1" (polling members of the level-(h-1) group with "Are you alive?",
// or at level 0 the real work) is reported with an *ordinary message* to the
// pointer position in the level-h group; ordinary messages carry the sender's
// entire view (F, point, round), spreading knowledge as uniformly as
// possible.  A newly active process first performs fault detection from the
// top level down -- leaving level h as soon as it finds a live member --
// which is what prevents the naive Theta(n + t^2) takeover cascade.
//
// An inactive process that last improved its *reduced view* to m at round r
// becomes active at r + D(i, m), with
//     D(i, m) = K (n+t-m) 2^(n+t-1-m)        for m >= 1
//     D(i, 0) = K (t-i) (n+t) 2^(n+t-1)      if it never heard anything,
// so the most knowledgeable non-retired process always takes over first
// (Lemma 3.4).  These deadlines overflow machine words; rounds here are
// 512-bit integers and the simulator fast-forwards across the idle eons.
//
// Guarantees (Theorem 3.8): work <= n + 2t, messages <= n + 8t log t, all
// retired by round t(5t + 2 log t)(n+t)2^(n+t).
//
// For t not a power of two the process space is padded with virtual
// processes that everyone knows to be retired from the start; they are
// excluded from reduced views so the deadline structure is unchanged.
#pragma once

#include <optional>

#include "core/work.h"
#include "sim/process.h"

namespace dowork {

// Level/group geometry of Protocol C.  T = 2^L is the padded process count;
// levels run 1..L with groups of size 2^(L-h+1); global group indices
// enumerate level by level (2^(h-1) groups at level h).
class LevelTree {
 public:
  explicit LevelTree(int t_real);

  int t_real() const { return t_real_; }
  int padded() const { return T_; }
  int levels() const { return L_; }
  int num_groups() const { return T_ - 1; }  // sum over levels; 0 when T == 1

  int group_size(int h) const { return 1 << (L_ - h + 1); }
  int group_base(int h, int proc) const { return proc / group_size(h) * group_size(h); }
  // Global index of the level-h group containing proc, in [0, T-1).
  int group_index(int h, int proc) const {
    return (1 << (h - 1)) - 1 + proc / group_size(h);
  }

 private:
  int t_real_;
  int T_;
  int L_;
};

// A process's view (Section 3.1): the retired set F, and for level 0 plus
// every group in the system the last reported position and when it was
// reported.  Ordinary messages carry a full snapshot; merging keeps, per
// group, the entry with the later round.
struct ViewC {
  std::vector<std::uint8_t> retired;  // F, indexed by process id (incl. padding)
  std::int64_t point0 = 1;            // successor of the last unit known done
  Round round0;
  std::vector<int> point;    // per group index: a process id
  std::vector<Round> round;  // per group index

  void merge(const ViewC& other);
  // Reduced view: units known done + *real* failures known (virtual padding
  // processes are common knowledge and excluded).
  std::int64_t reduced(int t_real) const;
};

struct OrdinaryC final : Payload {
  ViewC view;
  explicit OrdinaryC(ViewC v) : view(std::move(v)) {}
};
struct PollC final : Payload {};
struct PollReplyC final : Payload {};

struct ProtocolCOptions {
  // Corollary 3.9: report level-0 work every ceil(n/t) units instead of
  // every unit, cutting messages to O(t log t) at the cost of a larger K.
  bool batch_reports = false;
  // Ablation (Section 3 intro): disable fault detection and never learn
  // failures; reproduces the Theta(n + t^2) takeover cascade.
  bool fault_detection = true;
};

class ProtocolCProcess final : public IProcess {
 public:
  ProtocolCProcess(const DoAllConfig& cfg, int self, ProtocolCOptions options = {},
                   Round start_round = 0);

  Action on_round(const RoundContext& ctx, const InboxView& inbox) override;
  Round next_wake(const Round& now) const override;
  std::string describe() const override;

  // Deadline function, exposed for tests.
  Round deadline_for(std::int64_t m) const;
  std::uint64_t contact_bound_k() const { return k_; }
  const ViewC& view() const { return view_; }

  // Observability accessor (process.h): point0 is the successor of the last
  // unit this process knows done (its own work plus everything ordinary
  // messages taught it).
  std::int64_t known_done_units() const override { return view_.point0 - 1; }

 private:
  enum class State { kPassive, kActive, kDone };

  // Cyclic successor scan in the level-h group of self: first member,
  // starting at `start`, that is not self and not in F.  nullopt if none.
  std::optional<int> first_valid(int h, int start) const;
  std::optional<int> normalize_pointer(int h);  // updates point to the result
  // Send an ordinary message (with a fresh view snapshot) to the pointer
  // target of the level-h group, advancing point/round; returns the sends
  // (empty if the group has no live target).
  std::vector<Outgoing> report_to_level(int h, const Round& now);
  Action active_step(const RoundContext& ctx, const InboxView& inbox);
  Action finish(Action a);

  LevelTree tree_;
  std::int64_t n_;
  int t_;
  int self_;
  ProtocolCOptions opt_;
  Round start_round_;
  std::uint64_t k_;           // K: contact bound (rounds)
  std::int64_t batch_size_;   // level-0 units per report (1 unless batching)

  State state_ = State::kPassive;
  ViewC view_;
  Round wake_;  // passive: activation deadline; active+awaiting: reply-check round

  // Active-phase machinery.
  int h_ = 0;  // current level; levels()..1 = fault detection, 0 = work
  struct AwaitReply {
    int target;
    Round due;
  };
  std::optional<AwaitReply> await_;
  std::int64_t since_report_ = 0;
  bool report_due_ = false;
};

}  // namespace dowork
