#include "protocols/protocol_c.h"

#include <algorithm>
#include <stdexcept>

namespace dowork {

LevelTree::LevelTree(int t_real) : t_real_(t_real) {
  if (t_real < 1) throw std::invalid_argument("LevelTree: t must be >= 1");
  T_ = pow2_ceil(t_real);
  L_ = log2_of_pow2(T_);
}

void ViewC::merge(const ViewC& other) {
  for (std::size_t i = 0; i < retired.size(); ++i) retired[i] |= other.retired[i];
  if (other.round0 > round0 || (other.round0 == round0 && other.point0 > point0)) {
    round0 = other.round0;
    point0 = other.point0;
  }
  for (std::size_t g = 0; g < point.size(); ++g) {
    if (other.round[g] > round[g]) {
      round[g] = other.round[g];
      point[g] = other.point[g];
    }
  }
}

std::int64_t ViewC::reduced(int t_real) const {
  std::int64_t failures = 0;
  for (int i = 0; i < t_real; ++i) failures += retired[static_cast<std::size_t>(i)];
  return point0 - 1 + failures;
}

ProtocolCProcess::ProtocolCProcess(const DoAllConfig& cfg, int self, ProtocolCOptions options,
                                   Round start_round)
    : tree_(cfg.t), n_(cfg.n), t_(cfg.t), self_(self), opt_(options), start_round_(start_round) {
  cfg.validate();
  batch_size_ = opt_.batch_reports ? std::max<std::int64_t>(1, ceil_div(n_, t_)) : 1;

  // K bounds the rounds until every non-retired process has heard from a
  // newly active process: fault detection costs <= 2(T + L) poll rounds plus
  // <= T report rounds; a full report cycle through G1 costs T reports,
  // batch_size_ work rounds apart (Lemma 3.2; Corollary 3.9 notes K grows
  // with the batch size).
  const std::uint64_t T = static_cast<std::uint64_t>(tree_.padded());
  const std::uint64_t L = static_cast<std::uint64_t>(tree_.levels());
  k_ = 3 * T + 2 * L + T * static_cast<std::uint64_t>(batch_size_ + 1) + 8;

  const int T_int = tree_.padded();
  view_.retired.assign(static_cast<std::size_t>(T_int), 0);
  for (int i = t_; i < T_int; ++i) view_.retired[static_cast<std::size_t>(i)] = 1;
  view_.point0 = 1;
  view_.point.assign(static_cast<std::size_t>(tree_.num_groups()), 0);
  view_.round.assign(static_cast<std::size_t>(tree_.num_groups()), Round{0});
  for (int h = 1; h <= tree_.levels(); ++h) {
    int sz = tree_.group_size(h);
    for (int base = 0; base < T_int; base += sz) {
      int idx = (1 << (h - 1)) - 1 + base / sz;
      // Lowest-numbered member other than self.
      view_.point[static_cast<std::size_t>(idx)] = (base == self_) ? base + 1 : base;
    }
  }

  try {
    wake_ = start_round_ + deadline_for(0);
    (void)deadline_for(1);  // also exercise the m >= 1 branch
  } catch (const std::overflow_error&) {
    throw std::invalid_argument(
        "ProtocolC: n + t too large for 512-bit deadlines (need n + t <~ 460); got n=" +
        std::to_string(n_) + " t=" + std::to_string(t_));
  }
}

Round ProtocolCProcess::deadline_for(std::int64_t m) const {
  const std::int64_t NT = n_ + t_;
  m = std::clamp<std::int64_t>(m, 0, NT - 1);
  if (!opt_.fault_detection) {
    // Naive-C ablation: same exponential skeleton (gaps must swallow whole
    // execution suffixes) with base-4 growth and an id tie-break, since
    // without the paper's knowledge total-order there is no proof that
    // reduced views are distinct.
    unsigned e = static_cast<unsigned>(2 * (NT - m));
    Round d = (Round{k_} * static_cast<std::uint64_t>(NT - m + 1)) << e;
    return d + Round{k_} * (2 * static_cast<std::uint64_t>(t_ - 1 - self_));
  }
  if (m == 0) {
    // Never heard anything: D(i, 0) = K (t - i) (n+t) 2^(n+t-1); the highest
    // numbered zero-knowledge process takes over first.
    return (Round{k_} * static_cast<std::uint64_t>(t_ - self_) *
            static_cast<std::uint64_t>(NT))
           << static_cast<unsigned>(NT - 1);
  }
  return (Round{k_} * static_cast<std::uint64_t>(NT - m)) << static_cast<unsigned>(NT - 1 - m);
}

std::optional<int> ProtocolCProcess::first_valid(int h, int start) const {
  const int base = tree_.group_base(h, self_);
  const int sz = tree_.group_size(h);
  if (start < base || start >= base + sz) start = base;
  for (int k = 0; k < sz; ++k) {
    int c = base + (start - base + k) % sz;
    if (c != self_ && !view_.retired[static_cast<std::size_t>(c)]) return c;
  }
  return std::nullopt;
}

std::optional<int> ProtocolCProcess::normalize_pointer(int h) {
  const int idx = tree_.group_index(h, self_);
  auto v = first_valid(h, view_.point[static_cast<std::size_t>(idx)]);
  if (v) view_.point[static_cast<std::size_t>(idx)] = *v;
  return v;
}

std::vector<Outgoing> ProtocolCProcess::report_to_level(int h, const Round& now) {
  const int idx = tree_.group_index(h, self_);
  auto target = first_valid(h, view_.point[static_cast<std::size_t>(idx)]);
  if (!target) return {};
  // The recipient learns of its own receipt, so the snapshot records this
  // very send: round = now, point = the target's successor.
  view_.round[static_cast<std::size_t>(idx)] = now;
  const int base = tree_.group_base(h, self_);
  const int sz = tree_.group_size(h);
  auto succ = first_valid(h, base + (*target - base + 1) % sz);
  view_.point[static_cast<std::size_t>(idx)] = succ.value_or(*target);
  auto payload = std::make_shared<OrdinaryC>(view_);
  return {Outgoing{*target, MsgKind::kOrdinary, payload}};
}

Action ProtocolCProcess::finish(Action a) {
  a.terminate = true;
  state_ = State::kDone;
  return a;
}

Action ProtocolCProcess::active_step(const RoundContext& ctx, const InboxView& inbox) {
  const Round& r = ctx.round;

  // Resolve an outstanding "Are you alive?".
  if (await_) {
    if (r < await_->due) return Action::none();
    const int target = await_->target;
    bool replied = false;
    for (const Msg& msg : inbox)
      if (msg.kind == MsgKind::kPollReply && msg.from == target) replied = true;
    await_.reset();
    if (!replied) {
      view_.retired[static_cast<std::size_t>(target)] = 1;
      if (h_ != tree_.levels()) {
        // Report the newly detected failure one level up (Figure 3 line 9).
        std::vector<Outgoing> sends = report_to_level(h_ + 1, r);
        if (!sends.empty()) {
          Action a;
          a.sends = std::move(sends);
          return a;  // level decision resumes next round
        }
      }
      // No report possible/needed; fall through and keep polling this level.
    } else {
      --h_;  // found a live member; leave the level
    }
  }

  // Fault-detection levels, top (smallest groups) down.
  while (h_ >= 1) {
    auto target = normalize_pointer(h_);
    if (!target) {
      --h_;  // everyone else in this group is known retired
      continue;
    }
    Action a;
    a.sends.push_back(Outgoing{*target, MsgKind::kPoll, std::make_shared<PollC>()});
    await_ = AwaitReply{*target, r + Round{2}};
    return a;
  }

  // Level 0: the real work, reported into the level-1 group.
  if (report_due_) {
    report_due_ = false;
    since_report_ = 0;
    std::vector<Outgoing> sends =
        tree_.levels() >= 1 ? report_to_level(1, r) : std::vector<Outgoing>{};
    Action a;
    a.sends = std::move(sends);
    if (view_.point0 > n_) return finish(std::move(a));  // final report; halt
    if (!a.sends.empty()) return a;
    // No live target to tell: keep working this same round.
  }
  if (view_.point0 <= n_) {
    Action a;
    a.work = view_.point0;
    view_.round0 = r;
    ++view_.point0;
    ++since_report_;
    if (since_report_ >= batch_size_ || view_.point0 > n_) report_due_ = true;
    return a;
  }
  return finish(Action{});
}

Action ProtocolCProcess::on_round(const RoundContext& ctx, const InboxView& inbox) {
  // Poll replies are sent by active and inactive processes alike and are
  // exempt from the one-op-per-round rule.
  std::vector<Outgoing> replies;
  for (const Msg& msg : inbox)
    if (msg.kind == MsgKind::kPoll)
      replies.push_back(Outgoing{msg.from, MsgKind::kPollReply, std::make_shared<PollReplyC>()});

  if (state_ == State::kDone) {
    Action a;
    a.terminate = true;
    return a;
  }

  if (state_ == State::kPassive) {
    bool got_ordinary = false;
    for (const Msg& msg : inbox) {
      if (const auto* o = msg.as<OrdinaryC>()) {
        view_.merge(o->view);
        got_ordinary = true;
      }
    }
    if (got_ordinary) {
      // Deadline restarts from this receipt (Section 3.1).
      std::int64_t m = std::max<std::int64_t>(1, view_.reduced(t_));
      wake_ = ctx.round + deadline_for(m);
      Action a;
      a.sends = std::move(replies);
      return a;
    }
    if (ctx.round >= wake_) {
      state_ = State::kActive;
      h_ = opt_.fault_detection ? tree_.levels() : 0;
      await_.reset();
      since_report_ = 0;
      report_due_ = false;
      Action a = active_step(ctx, inbox);
      for (Outgoing& o : replies) a.sends.push_back(std::move(o));
      return a;
    }
    Action a;
    a.sends = std::move(replies);
    return a;
  }

  Action a = active_step(ctx, inbox);
  for (Outgoing& o : replies) a.sends.push_back(std::move(o));
  return a;
}

Round ProtocolCProcess::next_wake(const Round& now) const {
  switch (state_) {
    case State::kPassive:
      return wake_ > now ? wake_ : now;
    case State::kActive:
      if (await_ && await_->due > now) return await_->due;
      return now;
    case State::kDone:
      return never_round();
  }
  return never_round();
}

std::string ProtocolCProcess::describe() const {
  return std::string(opt_.fault_detection ? "ProtocolC[" : "NaiveC[") + std::to_string(self_) +
         (opt_.batch_reports ? ",batch]" : "]");
}

}  // namespace dowork
