#include "protocols/protocol_d.h"

#include <algorithm>

namespace dowork {

bool AgreeMergeCache::fold(int self, const Round& round, int phase,
                           const std::vector<const AgreeMsg*>& seen, DynBitset& sn,
                           DynBitset& tn) {
  return lane_for_this_thread().fold(self, round, phase, seen, sn, tn);
}

AgreeMergeCache::Lane& AgreeMergeCache::lane_for_this_thread() {
  // A handful of pool threads at most: linear search under the table mutex
  // beats a hash map here, and the fold itself then runs lock-free on the
  // caller's own lane.
  const std::thread::id me = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(lanes_mu_);
  for (auto& entry : lanes_) {
    if (entry.first == me) return *entry.second;
  }
  lanes_.emplace_back(me, std::make_unique<Lane>());
  return *lanes_.back().second;
}

bool AgreeMergeCache::Lane::fold(int self, const Round& round, int phase,
                                 const std::vector<const AgreeMsg*>& seen, DynBitset& sn,
                                 DynBitset& tn) {
  const int t = static_cast<int>(seen.size());
  if (seen[static_cast<std::size_t>(self)] != nullptr) return false;  // never hears itself
  if (!active_ || round_ != round) {
    // New round: pin the collective view from this (lane-lowest) requester --
    // its own slot stays undefined, a later requester's prefix advance pins
    // it -- and build the suffix folds.  Requesters below the pinning self
    // can never hit the fast path (their own slot check below rejects them),
    // so the suffix table is only built above it: the serial lane pays the
    // classic full build, shard lanes only their own id range.  All buffers
    // are reused round over round, so a generation costs at most t view
    // merges and no steady-state allocation.
    active_ = true;
    round_ = round;
    phase_ = phase;
    msgs_.assign(seen.begin(), seen.end());
    defined_.assign(static_cast<std::size_t>(t), 1);
    defined_[static_cast<std::size_t>(self)] = 0;
    if (suffix_sn_.size() != static_cast<std::size_t>(t) + 1) {
      suffix_sn_.resize(static_cast<std::size_t>(t) + 1);
      suffix_tn_.resize(static_cast<std::size_t>(t) + 1);
    }
    suffix_base_ = self;
    suffix_sn_[static_cast<std::size_t>(t)] = DynBitset(sn.size(), true);  // AND identity
    suffix_tn_[static_cast<std::size_t>(t)] = DynBitset(tn.size());        // OR identity
    for (int j = t - 1; j > suffix_base_; --j) {
      suffix_sn_[static_cast<std::size_t>(j)] = suffix_sn_[static_cast<std::size_t>(j) + 1];
      suffix_tn_[static_cast<std::size_t>(j)] = suffix_tn_[static_cast<std::size_t>(j) + 1];
      if (const AgreeMsg* m = msgs_[static_cast<std::size_t>(j)]) {
        suffix_sn_[static_cast<std::size_t>(j)] &= m->s_left;
        suffix_tn_[static_cast<std::size_t>(j)] |= m->t_alive;
      }
    }
    prefix_sn_ = DynBitset(sn.size(), true);
    prefix_tn_ = DynBitset(tn.size());
    prefix_end_ = 0;
  } else {
    if (phase_ != phase) return false;
    // The cached folds only apply if this requester merges exactly the
    // pinned set: verify entry-for-entry before touching anything.
    // Undefined slots below `self` are fine (pinned during the prefix
    // advance); at or above `self` they would sit inside the suffix fold,
    // which cannot happen when this lane's requesters arrive in ascending id
    // order -- and the same check is what rejects a requester below the
    // pinning self (whose slot, the lane's only undefined one, lies at
    // suffix_base_ >= self), so the trimmed suffix table is never read below
    // suffix_base_ + 1.
    for (int i = 0; i < t; ++i) {
      if (i == self) continue;
      const std::size_t si = static_cast<std::size_t>(i);
      if (defined_[si]) {
        if (msgs_[si] != seen[si]) return false;
      } else if (i >= self) {
        return false;
      }
    }
  }
  for (int i = prefix_end_; i < self; ++i) {
    const std::size_t si = static_cast<std::size_t>(i);
    if (!defined_[si]) {
      defined_[si] = 1;
      msgs_[si] = seen[si];
    }
    if (const AgreeMsg* m = msgs_[si]) {
      prefix_sn_ &= m->s_left;
      prefix_tn_ |= m->t_alive;
    }
  }
  if (self > prefix_end_) prefix_end_ = self;
  sn &= prefix_sn_;
  sn &= suffix_sn_[static_cast<std::size_t>(self) + 1];
  tn |= prefix_tn_;
  tn |= suffix_tn_[static_cast<std::size_t>(self) + 1];
  return true;
}

ProtocolDProcess::ProtocolDProcess(const DoAllConfig& cfg, int self,
                                   std::shared_ptr<AgreeMergeCache> merge_cache)
    : n_(cfg.n), t_(cfg.t), self_(self), merge_cache_(std::move(merge_cache)) {
  cfg.validate();
  s_ = DynBitset(static_cast<std::size_t>(n_), true);
  t_alive_ = DynBitset(static_cast<std::size_t>(t_), true);
  seen_.assign(static_cast<std::size_t>(t_), nullptr);
  grace_ = 0;  // phase 1 starts in lockstep: no grace iteration needed
}

void ProtocolDProcess::enter_work_phase(const Round& now) {
  // Figure 4 line 5: among the units still outstanding, take the slice of
  // ceil(|S|/|T|) whose gradeS-rank matches our gradeT-rank.  The slice is
  // located by rank directly in the bitset (select + find_next) instead of
  // materializing all |S| outstanding units: every process re-derives the
  // partition each phase, which made the O(n) flattening the second-largest
  // cost of the t = 1024 scale row.
  const std::int64_t left = static_cast<std::int64_t>(s_.count());
  const std::uint64_t alive = std::max<std::uint64_t>(1, t_alive_.count());
  const std::int64_t w = ceil_div(left, static_cast<std::int64_t>(alive));
  my_slice_.clear();
  slice_pos_ = 0;
  if (t_alive_.test(static_cast<std::size_t>(self_))) {
    const std::int64_t rank =
        static_cast<std::int64_t>(t_alive_.count_prefix(static_cast<std::size_t>(self_)));
    const std::int64_t from = rank * w;
    const std::int64_t to = std::min<std::int64_t>(from + w, left);
    if (from < to) {
      std::size_t i = s_.select(static_cast<std::uint64_t>(from));
      for (std::int64_t k = from; k < to; ++k, i = s_.find_next(i + 1))
        my_slice_.push_back(static_cast<std::int64_t>(i) + 1);
    }
  }
  // Everyone spends exactly ceil(|S|/|T|) rounds in the phase (line 7) so the
  // agreement phases stay aligned.
  work_end_ = now + Round{static_cast<std::uint64_t>(w)};
  // Line 8: S := S \ S' -- if we live to broadcast, the slice was performed.
  for (std::int64_t u : my_slice_) s_.reset(static_cast<std::size_t>(u - 1));
}

void ProtocolDProcess::enter_agree_phase(const Round&) {
  u_ = t_alive_;
  audience_.reset();  // u_ changed; the shared audience set is stale
  tn_ = DynBitset(static_cast<std::size_t>(t_));
  tn_.set(static_cast<std::size_t>(self_));
  sn_ = s_;
  iter_ = 0;
  done_ = false;
}

Action ProtocolDProcess::agree_broadcast(bool done) {
  Action a;
  if (!audience_) {
    DynBitset bits = u_;
    if (bits.test(static_cast<std::size_t>(self_))) bits.reset(static_cast<std::size_t>(self_));
    audience_ = make_recipient_bits(std::move(bits));
  }
  if (audience_->count > 0)
    a.sends.push_back(
        Outgoing{audience_, MsgKind::kAgreement, std::make_shared<AgreeMsg>(phase_, sn_, tn_, done)});
  return a;
}

void ProtocolDProcess::finish_agree(const Round& now) {
  const std::uint64_t old_alive = t_alive_.count();
  s_ = sn_;
  t_alive_ = tn_;
  const std::uint64_t new_alive = std::max<std::uint64_t>(1, t_alive_.count());

  if (old_alive > 2 * new_alive) {
    // Figure 4 lines 11-13: more than half the processes died this phase;
    // hand the leftovers to Protocol A (work-optimal regardless of failure
    // pattern) rather than risking the adaptive-adversary lower bound.
    std::vector<std::int64_t> units;
    for (std::size_t i = s_.find_next(0); i < s_.size(); i = s_.find_next(i + 1))
      units.push_back(static_cast<std::int64_t>(i) + 1);
    if (units.empty() || !t_alive_.test(static_cast<std::size_t>(self_))) {
      terminated_ = true;
      phase_kind_ = PhaseKind::kFinished;
      return;
    }
    // Renumber the agreed survivors 0..|T|-1 so Protocol A's deadlines scale
    // with the survivor count (Theorem 4.1 case 2 applies Theorem 2.3 with
    // t/2 processes); the wrapper translates ids on the wire.
    rank_to_id_.clear();
    id_to_rank_.assign(static_cast<std::size_t>(t_), -1);
    for (int i = 0; i < t_; ++i) {
      if (t_alive_.test(static_cast<std::size_t>(i))) {
        id_to_rank_[static_cast<std::size_t>(i)] = static_cast<int>(rank_to_id_.size());
        rank_to_id_.push_back(i);
      }
    }
    DoAllConfig sub{static_cast<std::int64_t>(units.size()),
                    static_cast<int>(rank_to_id_.size())};
    revert_ = std::make_unique<ProtocolAProcess>(
        sub, id_to_rank_[static_cast<std::size_t>(self_)], now + Round{1}, std::move(units));
    phase_kind_ = PhaseKind::kRevertA;
    return;
  }
  if (s_.none() || !t_alive_.test(static_cast<std::size_t>(self_))) {
    terminated_ = true;
    phase_kind_ = PhaseKind::kFinished;
    return;
  }
  ++phase_;
  grace_ = 1;  // later phases absorb the <=1 round skew from done-adoption
  phase_kind_ = PhaseKind::kWork;
  work_entered_ = false;
  std::fill(seen_.begin(), seen_.end(), nullptr);
  early_retained_.clear();
}

Action ProtocolDProcess::on_round(const RoundContext& ctx, const InboxView& inbox) {
  if (terminated_) {
    Action a;
    a.terminate = true;
    return a;
  }
  if (phase_kind_ == PhaseKind::kRevertA) {
    std::vector<Envelope> translated;
    for (const Msg& msg : inbox) {
      if (msg.from < 0 || id_to_rank_[static_cast<std::size_t>(msg.from)] < 0)
        continue;  // stale pre-revert traffic
      translated.push_back(Envelope{id_to_rank_[static_cast<std::size_t>(msg.from)], self_,
                                    msg.kind, msg.sent_round(), msg.payload()});
    }
    Action a = revert_->on_round(ctx, translated);
    // The embedded Protocol A addresses rank-space ranges; map them back to
    // real ids (generally non-contiguous, so ranges become bit sets).
    for (Outgoing& o : a.sends) o.to = remap_recipients(o.to, rank_to_id_, t_);
    return a;
  }

  // Stash this phase's agreement messages (they may arrive one round early
  // when a peer finished the previous agreement before us).  Early arrivals
  // land while we are still in the work phase and must outlive the recycled
  // round ledger, so their payloads are retained; agreement-round arrivals
  // are consumed before this call returns (see the seen_ comment in the
  // header).
  for (const Msg& msg : inbox) {
    if (const auto* m = msg.as<AgreeMsg>(); m != nullptr && m->phase == phase_) {
      seen_[static_cast<std::size_t>(msg.from)] = m;
      if (phase_kind_ == PhaseKind::kWork) early_retained_.push_back(msg.payload());
    }
  }

  if (phase_kind_ == PhaseKind::kWork) {
    if (!work_entered_) {
      work_entered_ = true;
      enter_work_phase(ctx.round);
    }
    if (ctx.round < work_end_) {
      Action a;
      if (slice_pos_ < my_slice_.size()) a.work = my_slice_[slice_pos_++];
      return a;
    }
    phase_kind_ = PhaseKind::kAgree;
    enter_agree_phase(ctx.round);
    return agree_broadcast(false);  // iteration-0 broadcast
  }

  // Agreement phase, receive-check for iteration iter_ (peers' iteration-k
  // broadcasts arrive one simulator round after they were sent).
  bool adopted = false;
  for (int i = 0; i < t_; ++i) {
    const AgreeMsg* msg = seen_[static_cast<std::size_t>(i)];
    if (msg && msg->done) {
      sn_ = msg->s_left;
      tn_ = msg->t_alive;
      adopted = true;
      break;
    }
  }
  bool removed_any = false;
  if (!adopted) {
    // The common case -- every recipient folding the same collective round
    // view -- hits the run-shared prefix/suffix cache in O(1) merges; any
    // deviation (cut broadcast, phase skew, no cache) merges the long way.
    if (!merge_cache_ || !merge_cache_->fold(self_, ctx.round, phase_, seen_, sn_, tn_)) {
      for (int i = 0; i < t_; ++i) {
        const AgreeMsg* msg = seen_[static_cast<std::size_t>(i)];
        if (!msg) continue;
        sn_ &= msg->s_left;
        tn_ |= msg->t_alive;
      }
    }
    if (iter_ >= grace_) {
      for (int i = 0; i < t_; ++i) {
        if (i != self_ && u_.test(static_cast<std::size_t>(i)) &&
            !seen_[static_cast<std::size_t>(i)]) {
          u_.reset(static_cast<std::size_t>(i));  // silent => crashed
          removed_any = true;
        }
      }
      if (removed_any) audience_.reset();  // u_ changed; rebuild on next broadcast
    }
  }
  std::fill(seen_.begin(), seen_.end(), nullptr);
  early_retained_.clear();
  const bool stable = !removed_any && iter_ >= grace_;
  ++iter_;

  if (adopted || stable) {
    Action a = agree_broadcast(true);  // line 20: final view, done = true
    finish_agree(ctx.round);
    if (terminated_) a.terminate = true;
    return a;
  }
  return agree_broadcast(false);
}

Round ProtocolDProcess::next_wake(const Round& now) const {
  if (terminated_) return never_round();
  switch (phase_kind_) {
    case PhaseKind::kRevertA:
      return revert_->next_wake(now);
    case PhaseKind::kWork:
      if (!work_entered_ || slice_pos_ < my_slice_.size()) return now;
      return work_end_ > now ? work_end_ : now;
    case PhaseKind::kAgree:
      return now;
    case PhaseKind::kFinished:
      return now;  // wake once more to emit the terminate action
  }
  return never_round();
}

std::string ProtocolDProcess::describe() const {
  return "ProtocolD[" + std::to_string(self_) + ",phase=" + std::to_string(phase_) + "]";
}

}  // namespace dowork
