#include "protocols/protocol_d_coord.h"

#include <algorithm>

namespace dowork {

namespace {
constexpr std::uint64_t kCollectAt = 2;   // coordinator finalizes at R + 2
constexpr std::uint64_t kFallbackAt = 5;  // missing final view => fallback at R + 5
constexpr std::uint64_t kResumeAt = 8;    // next work phase at R + 8
}  // namespace

ProtocolDCoordProcess::ProtocolDCoordProcess(const DoAllConfig& cfg, int self)
    : n_(cfg.n), t_(cfg.t), self_(self) {
  cfg.validate();
  s_ = DynBitset(static_cast<std::size_t>(n_), true);
  t_alive_ = DynBitset(static_cast<std::size_t>(t_), true);
  seen_.assign(static_cast<std::size_t>(t_), nullptr);
}

int ProtocolDCoordProcess::coordinator() const {
  const std::size_t first = t_alive_.find_next(0);
  return first < t_alive_.size() ? static_cast<int>(first) : 0;
}

void ProtocolDCoordProcess::enter_work_phase(const Round& now) {
  std::vector<std::int64_t> outstanding;
  for (std::size_t i = s_.find_next(0); i < s_.size(); i = s_.find_next(i + 1))
    outstanding.push_back(static_cast<std::int64_t>(i) + 1);
  const std::uint64_t alive = std::max<std::uint64_t>(1, t_alive_.count());
  const std::int64_t w = ceil_div(static_cast<std::int64_t>(outstanding.size()),
                                  static_cast<std::int64_t>(alive));
  my_slice_.clear();
  slice_pos_ = 0;
  if (t_alive_.test(static_cast<std::size_t>(self_))) {
    const std::int64_t rank =
        static_cast<std::int64_t>(t_alive_.count_prefix(static_cast<std::size_t>(self_)));
    const std::int64_t from = rank * w;
    const std::int64_t to =
        std::min<std::int64_t>(from + w, static_cast<std::int64_t>(outstanding.size()));
    for (std::int64_t k = from; k < to; ++k)
      my_slice_.push_back(outstanding[static_cast<std::size_t>(k)]);
  }
  work_end_ = now + Round{static_cast<std::uint64_t>(w)};
  for (std::int64_t u : my_slice_) s_.reset(static_cast<std::size_t>(u - 1));
}

namespace {

// The audience "every member of `who` except me" as a shared recipient set.
// The coordinator variant runs at per-table shapes, so the sets are built
// per broadcast (Protocol D proper caches its audience across iterations).
RecipientSet audience_of(const DynBitset& who, int self) {
  DynBitset bits = who;
  if (bits.test(static_cast<std::size_t>(self))) bits.reset(static_cast<std::size_t>(self));
  return make_recipient_bits(std::move(bits));
}

}  // namespace

Action ProtocolDCoordProcess::broadcast_view(bool done) {
  Action a;
  RecipientSet to = audience_of(t_alive_, self_);
  if (!to.empty())
    a.sends.push_back(
        Outgoing{std::move(to), MsgKind::kAgreement, std::make_shared<AgreeMsg>(phase_, sn_, tn_, done)});
  return a;
}

void ProtocolDCoordProcess::finish_phase(const Round& now) {
  const std::uint64_t old_alive = t_alive_.count();
  s_ = sn_;
  t_alive_ = tn_;
  const std::uint64_t new_alive = std::max<std::uint64_t>(1, t_alive_.count());

  if (old_alive > 2 * new_alive) {
    std::vector<std::int64_t> units;
    for (std::size_t i = s_.find_next(0); i < s_.size(); i = s_.find_next(i + 1))
      units.push_back(static_cast<std::int64_t>(i) + 1);
    if (units.empty() || !t_alive_.test(static_cast<std::size_t>(self_))) {
      terminated_ = true;
      phase_kind_ = PhaseKind::kFinished;
      return;
    }
    rank_to_id_.clear();
    id_to_rank_.assign(static_cast<std::size_t>(t_), -1);
    for (int i = 0; i < t_; ++i) {
      if (t_alive_.test(static_cast<std::size_t>(i))) {
        id_to_rank_[static_cast<std::size_t>(i)] = static_cast<int>(rank_to_id_.size());
        rank_to_id_.push_back(i);
      }
    }
    DoAllConfig sub{static_cast<std::int64_t>(units.size()),
                    static_cast<int>(rank_to_id_.size())};
    revert_ = std::make_unique<ProtocolAProcess>(
        sub, id_to_rank_[static_cast<std::size_t>(self_)], now + Round{1}, std::move(units));
    phase_kind_ = PhaseKind::kRevertA;
    return;
  }
  if (s_.none() || !t_alive_.test(static_cast<std::size_t>(self_))) {
    terminated_ = true;
    phase_kind_ = PhaseKind::kFinished;
    return;
  }
  ++phase_;
  phase_kind_ = PhaseKind::kWork;
  work_entered_ = false;
  std::fill(seen_.begin(), seen_.end(), nullptr);
}

Action ProtocolDCoordProcess::on_round(const RoundContext& ctx, const InboxView& inbox) {
  if (terminated_) {
    Action a;
    a.terminate = true;
    return a;
  }
  if (phase_kind_ == PhaseKind::kRevertA) {
    std::vector<Envelope> translated;
    for (const Msg& msg : inbox) {
      if (msg.from < 0 || id_to_rank_[static_cast<std::size_t>(msg.from)] < 0) continue;
      translated.push_back(Envelope{id_to_rank_[static_cast<std::size_t>(msg.from)], self_,
                                    msg.kind, msg.sent_round(), msg.payload()});
    }
    Action a = revert_->on_round(ctx, translated);
    for (Outgoing& o : a.sends) o.to = remap_recipients(o.to, rank_to_id_, t_);
    return a;
  }

  for (const Msg& msg : inbox) {
    if (const auto* m = msg.as<AgreeMsg>(); m != nullptr && m->phase == phase_)
      seen_[static_cast<std::size_t>(msg.from)] =
          std::static_pointer_cast<const AgreeMsg>(msg.payload());
  }

  if (phase_kind_ == PhaseKind::kWork) {
    if (!work_entered_) {
      work_entered_ = true;
      enter_work_phase(ctx.round);
    }
    if (ctx.round < work_end_) {
      Action a;
      if (slice_pos_ < my_slice_.size()) a.work = my_slice_[slice_pos_++];
      return a;
    }
    // Agreement entry at R = work_end_.
    agr_entry_ = ctx.round;
    sn_ = s_;
    tn_ = DynBitset(static_cast<std::size_t>(t_));
    tn_.set(static_cast<std::size_t>(self_));
    resume_at_ = agr_entry_ + Round{kResumeAt};
    responded_ = false;
    in_fallback_ = false;
    iter_ = 0;
    if (coordinator() == self_) {
      phase_kind_ = PhaseKind::kAgrCoord;
      return Action::none();  // collect reports for the next two rounds
    }
    phase_kind_ = PhaseKind::kAgrAwait;
    Action a;
    auto payload = std::make_shared<AgreeMsg>(phase_, sn_, tn_, false);
    a.sends.push_back(Outgoing{coordinator(), MsgKind::kAgreement, payload});
    return a;
  }

  if (phase_kind_ == PhaseKind::kAgrCoord) {
    if (ctx.round < agr_entry_ + Round{kCollectAt}) return Action::none();
    // Finalize: merge every report seen and broadcast the final view.
    for (const auto& msg : seen_) {
      if (!msg) continue;
      sn_ &= msg->s_left;
      tn_ |= msg->t_alive;
    }
    std::fill(seen_.begin(), seen_.end(), nullptr);
    Action a = broadcast_view(true);
    phase_kind_ = PhaseKind::kAgrListen;  // wait out the fallback window
    responded_ = true;                    // the final broadcast already went out
    return a;
  }

  if (phase_kind_ == PhaseKind::kAgrAwait) {
    for (const auto& msg : seen_) {
      if (msg && msg->done) {
        sn_ = msg->s_left;
        tn_ = msg->t_alive;
        std::fill(seen_.begin(), seen_.end(), nullptr);
        phase_kind_ = PhaseKind::kAgrListen;
        return Action::none();
      }
    }
    if (ctx.round >= agr_entry_ + Round{kFallbackAt}) {
      // No final view: the coordinator must have died.  Fall back to the
      // broadcast agreement (grace 2 so listening adopters can answer).
      phase_kind_ = PhaseKind::kAgrFallback;
      in_fallback_ = true;
      u_ = t_alive_;
      sn_ = s_;
      tn_ = DynBitset(static_cast<std::size_t>(t_));
      tn_.set(static_cast<std::size_t>(self_));
      iter_ = 0;
      std::fill(seen_.begin(), seen_.end(), nullptr);
      return broadcast_view(false);
    }
    return Action::none();
  }

  if (phase_kind_ == PhaseKind::kAgrListen) {
    // An adopter that hears fallback traffic re-broadcasts the final view;
    // the fallback's done-adoption then re-unifies everyone.
    bool fallback_heard = false;
    for (const auto& msg : seen_)
      if (msg && !msg->done) fallback_heard = true;
    std::fill(seen_.begin(), seen_.end(), nullptr);
    if (fallback_heard && !responded_) {
      responded_ = true;
      return broadcast_view(true);
    }
    if (ctx.round >= resume_at_) {
      finish_phase(ctx.round);
      if (terminated_) {
        Action a;
        a.terminate = true;
        return a;
      }
      // Enter the next work phase this same round.
      work_entered_ = true;
      enter_work_phase(ctx.round);
      Action a;
      if (slice_pos_ < my_slice_.size()) a.work = my_slice_[slice_pos_++];
      return a;
    }
    return Action::none();
  }

  // kAgrFallback: pipelined broadcast agreement with grace 2.
  bool adopted = false;
  for (int i = 0; i < t_; ++i) {
    const auto& msg = seen_[static_cast<std::size_t>(i)];
    if (msg && msg->done) {
      sn_ = msg->s_left;
      tn_ = msg->t_alive;
      adopted = true;
      break;
    }
  }
  bool removed_any = false;
  if (!adopted) {
    for (int i = 0; i < t_; ++i) {
      const auto& msg = seen_[static_cast<std::size_t>(i)];
      if (!msg) continue;
      sn_ &= msg->s_left;
      tn_ |= msg->t_alive;
    }
    if (iter_ >= 2) {
      for (int i = 0; i < t_; ++i) {
        if (i != self_ && u_.test(static_cast<std::size_t>(i)) &&
            !seen_[static_cast<std::size_t>(i)]) {
          u_.reset(static_cast<std::size_t>(i));
          removed_any = true;
        }
      }
    }
  }
  std::fill(seen_.begin(), seen_.end(), nullptr);
  const bool stable = !removed_any && iter_ >= 2;
  ++iter_;
  if (adopted || stable) {
    Action a;
    RecipientSet to = audience_of(u_, self_);
    if (!to.empty())
      a.sends.push_back(Outgoing{std::move(to), MsgKind::kAgreement,
                                 std::make_shared<AgreeMsg>(phase_, sn_, tn_, true)});
    Round finish_next = ctx.round + Round{1};
    resume_at_ = resume_at_ > finish_next ? resume_at_ : finish_next;
    responded_ = true;
    phase_kind_ = PhaseKind::kAgrListen;  // inert wait until resume_at_
    return a;
  }
  Action a;
  RecipientSet to = audience_of(u_, self_);
  if (!to.empty())
    a.sends.push_back(Outgoing{std::move(to), MsgKind::kAgreement,
                               std::make_shared<AgreeMsg>(phase_, sn_, tn_, false)});
  return a;
}

Round ProtocolDCoordProcess::next_wake(const Round& now) const {
  if (terminated_) return never_round();
  switch (phase_kind_) {
    case PhaseKind::kRevertA:
      return revert_->next_wake(now);
    case PhaseKind::kWork:
      if (!work_entered_ || slice_pos_ < my_slice_.size()) return now;
      return work_end_ > now ? work_end_ : now;
    case PhaseKind::kAgrCoord: {
      Round due = agr_entry_ + Round{kCollectAt};
      return due > now ? due : now;
    }
    case PhaseKind::kAgrAwait: {
      Round due = agr_entry_ + Round{kFallbackAt};
      return due > now ? due : now;
    }
    case PhaseKind::kAgrListen:
      return resume_at_ > now ? resume_at_ : now;
    case PhaseKind::kAgrFallback:
      return now;
    case PhaseKind::kFinished:
      return now;
  }
  return never_round();
}

std::string ProtocolDCoordProcess::describe() const {
  return "ProtocolDCoord[" + std::to_string(self_) + ",phase=" + std::to_string(phase_) + "]";
}

}  // namespace dowork
