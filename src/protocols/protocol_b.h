// Protocol B (paper Section 2.3-2.4).
//
// Identical to Protocol A once a process is active, but takeovers are driven
// by message-relative timeouts instead of the absolute deadlines DD(j), which
// cuts the running time from O(nt + t^2) to O(n + t):
//
//   * PTO ("process time out") bounds the gap between messages a process
//     hears from an active process in its own group;
//   * GTO(i) ("group time out") bounds the gap before a higher group hears
//     from group g_i if anyone there is active;
//   * DDB(j, i) combines them: if j last heard (an ordinary message) from i
//     at round r' and silence lasts DDB(j, i) rounds, every group below g_j
//     must have retired.
//
// At r' + DDB(j, i) process j becomes *preactive*: it probes the
// lower-numbered members of its own group one-by-one with go-ahead messages,
// PTO rounds apart.  A live recipient becomes active (its first checkpoint
// broadcast reaches j, sending j back to passive); if all probes go
// unanswered j becomes active itself.  By convention every process starts
// with a fictitious ordinary message (0, g_j) from process 0 at round 0.
//
// Guarantees (Theorem 2.8): work <= 3n, messages <= 10*t*sqrt(t), all
// processes retired by round 3n + 8t.
#pragma once

#include "core/work.h"
#include "protocols/protocol_a.h"

namespace dowork {

struct GoAhead final : Payload {};

class ProtocolBProcess final : public IProcess {
 public:
  ProtocolBProcess(const DoAllConfig& cfg, int self, Round start_round = 0);

  Action on_round(const RoundContext& ctx, const InboxView& inbox) override;
  Round next_wake(const Round& now) const override;
  std::string describe() const override;

  bool is_active() const { return state_ == State::kActive; }

  // Observability accessor (process.h): same knowledge notion as Protocol A
  // — the last checkpoint heard or the last unit performed.
  std::int64_t known_done_units() const override;

  // Timeout functions, exposed for tests (all in rounds).
  std::uint64_t pto() const { return pto_; }
  std::uint64_t gto(int i) const;
  std::uint64_t ddb(int i) const;  // DDB(self, i)

 private:
  enum class State { kPassive, kPreactive, kActive, kDone };

  void ingest(const Msg& msg);
  void activate();
  void enter_preactive(const Round& now);
  Action pop_plan();
  Round passive_deadline() const;

  GroupLayout layout_;
  WorkPartition part_;
  std::int64_t n_;
  int t_;
  int self_;
  Round start_round_;
  std::uint64_t pto_;

  State state_ = State::kPassive;
  bool completion_seen_ = false;
  bool go_ahead_pending_ = false;  // received this round, handled in on_round
  LastCheckpoint last_;
  ActivePlan plan_;
  std::int64_t top_unit_ = 0;  // highest unit performed

  // Preactive probing state.
  Round preactive_start_;
  std::vector<int> probe_targets_;
  std::size_t next_probe_ = 0;
};

}  // namespace dowork
