#include "protocols/baseline_checkpoint.h"

#include <algorithm>

namespace dowork {

BaselineCheckpointProcess::BaselineCheckpointProcess(const DoAllConfig& cfg, int self,
                                                     std::int64_t k)
    : n_(cfg.n), t_(cfg.t), self_(self), k_(std::max<std::int64_t>(1, k)) {
  cfg.validate();
}

Round BaselineCheckpointProcess::deadline() const {
  // An active process lives at most n work rounds + ceil(n/k)+1 checkpoint
  // rounds; stagger takeovers by that much.
  std::uint64_t life = static_cast<std::uint64_t>(n_ + ceil_div(n_, k_) + 2);
  return Round{static_cast<std::uint64_t>(self_)} * life;
}

Action BaselineCheckpointProcess::on_round(const RoundContext& ctx, const InboxView& inbox) {
  for (const Msg& msg : inbox) {
    if (const auto* c = msg.as<BaselineCkpt>()) known_done_ = std::max(known_done_, c->done);
  }
  Action a;
  if (done_) {
    a.terminate = true;
    return a;
  }
  if (known_done_ >= n_ && !active_) {
    done_ = true;
    a.terminate = true;
    return a;
  }
  if (!active_) {
    if (ctx.round < deadline()) return Action::none();
    active_ = true;
    next_unit_ = known_done_ + 1;
    since_ckpt_ = 0;
  }

  // Checkpoint round: after k units, or after the final unit.
  const bool all_done = next_unit_ > n_;
  if (since_ckpt_ >= k_ || (all_done && since_ckpt_ > 0) || (all_done && known_done_ < n_)) {
    std::int64_t done_upto = next_unit_ - 1;
    auto payload = std::make_shared<BaselineCkpt>(done_upto);
    // "Everyone but me" as two range-addressed sends (ids below, ids above):
    // same ascending recipient order the per-recipient loop produced, zero
    // per-recipient materialization.
    if (self_ > 0)
      a.sends.push_back(Outgoing{IdRange{0, self_}, MsgKind::kCheckpoint, payload});
    if (self_ + 1 < t_)
      a.sends.push_back(Outgoing{IdRange{self_ + 1, t_}, MsgKind::kCheckpoint, std::move(payload)});
    known_done_ = std::max(known_done_, done_upto);
    since_ckpt_ = 0;
    if (all_done) {
      done_ = true;
      a.terminate = true;
    }
    return a;
  }
  if (all_done) {
    done_ = true;
    a.terminate = true;
    return a;
  }
  a.work = next_unit_++;
  ++since_ckpt_;
  return a;
}

Round BaselineCheckpointProcess::next_wake(const Round& now) const {
  if (done_) return never_round();
  if (active_ || known_done_ >= n_) return now;
  Round dd = deadline();
  return dd > now ? dd : now;
}

}  // namespace dowork
