// Baseline 2 (paper Section 1) and the Section 2 checkpoint-frequency
// argument: a single active process performs the work, broadcasting a
// checkpoint to *all* other processes after every k units; process j takes
// over at a deadline by which processes 0..j-1 must have retired.
//
// k = 1 is the paper's second trivial solution (work n + t - 1, messages
// ~ t*n).  Sweeping k reproduces the Section 2 trade-off: infrequent
// checkpoints waste work on crashes (up to k units redone per failure),
// frequent ones waste messages (t per checkpoint) -- motivating Protocol A's
// two-level scheme.
#pragma once

#include "core/work.h"
#include "sim/process.h"

namespace dowork {

struct BaselineCkpt final : Payload {
  std::int64_t done;  // units 1..done are complete
  explicit BaselineCkpt(std::int64_t d) : done(d) {}
};

class BaselineCheckpointProcess final : public IProcess {
 public:
  BaselineCheckpointProcess(const DoAllConfig& cfg, int self, std::int64_t k);

  Action on_round(const RoundContext& ctx, const InboxView& inbox) override;
  Round next_wake(const Round& now) const override;
  std::string describe() const override {
    return "BaselineCkpt[" + std::to_string(self_) + ",k=" + std::to_string(k_) + "]";
  }

 private:
  Round deadline() const;

  std::int64_t n_;
  int t_;
  int self_;
  std::int64_t k_;

  bool active_ = false;
  bool done_ = false;
  std::int64_t known_done_ = 0;   // highest checkpointed unit heard of
  std::int64_t next_unit_ = 1;    // when active
  std::int64_t since_ckpt_ = 0;   // units since the last checkpoint broadcast
};

}  // namespace dowork
