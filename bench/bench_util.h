// Shared helpers for the per-experiment benchmark binaries.  Each binary
// regenerates one table/figure from the paper's evaluation (see DESIGN.md's
// experiment index) and prints paper-measured rows.
#pragma once

#include <cstdio>
#include <string>

#include "core/runner.h"
#include "util/strings.h"

namespace dowork::bench {

inline std::string fmt_round(const Round& r) {
  if (r.fits_u64()) return with_commas(r.to_u64_saturating());
  return "~2^" + std::to_string(r.log2_floor());
}

// Runs a protocol and aborts loudly if verification fails: a bench must not
// print numbers from a broken run.
inline RunResult checked_run(const std::string& protocol, const DoAllConfig& cfg,
                             std::unique_ptr<FaultInjector> faults) {
  RunResult r = run_do_all(protocol, cfg, std::move(faults));
  if (!r.ok()) {
    std::fprintf(stderr, "FATAL: %s on %s violated invariants: %s\n", protocol.c_str(),
                 cfg.to_string().c_str(), r.violation.c_str());
    std::abort();
  }
  return r;
}

inline void header(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n%s\n\n", experiment, claim);
}

}  // namespace dowork::bench
