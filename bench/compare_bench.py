#!/usr/bin/env python3
"""Diff two dowork_bench --timing JSON reports row by row.

Usage:
    bench/compare_bench.py BASELINE.json CURRENT.json [--threshold X] [--timing]

Rows (repetitions) are matched by (experiment, id, rep); per-row wall_ms
deltas are printed for every row present in both files, followed by the
group and total deltas.  Rows missing from either side are listed but never
fail the comparison (the sweep may legitimately grow).

With --threshold X the exit status is 1 when any matched row is more than X
times slower than its baseline (and at least 1 ms absolute, so sub-ms rows
cannot trip on scheduler noise).  Without it the script always exits 0.
CI runs this advisorily against the committed BENCH_scale.json with a
generous threshold; the numbers are machine-dependent by nature, so treat a
failure as a prompt to look, not proof of a regression.

With --timing the comparison switches from per-repetition rows to the
reports' timing.groups (and timing.per_protocol, when both sides carry it):
for every group present in both files it prints baseline ms, current ms and
the speedup ratio (baseline / current, so > 1 is faster).  This is how the
DESIGN.md perf-trajectory claims are reproduced from two committed
BENCH_scale.json artifacts.  Per-protocol rollups and totals are compared
per experiment, for exactly those experiments whose group sets match on
both sides -- so a multi-experiment baseline array diffs usefully against a
single-experiment candidate.  --threshold applies to groups in this mode
(a group is a regression when current > X * baseline and >= 1 ms slower).

With --throughput the comparison reads only the rows carrying a
units_per_sec field (live-substrate repetitions; src/substrate/) and diffs
real throughput in its own table -- higher is better, ratio is current /
baseline.  Simulated rows have no units_per_sec and are ignored here, so a
baseline that predates the live backend diffs cleanly: its live rows are
listed as new throughput rows instead of polluting the wall_ms
added/removed lists.  --threshold in this mode fails rows whose throughput
dropped by more than X times.

With --aborts the script takes a SINGLE report (no current argument) and
switches from timing to supervision: it counts, per experiment, the rows
that ended in a structured abort (a watchdog firing, a live worker dying
unexpectedly, ...), bucketed by the cause= key of their machine-readable
abort_detail extra, and lists each aborted row.  Live-substrate rows carry
abort_detail whenever the run aborted (src/substrate/); pure-simulator
reports simply count zero.  This mode needs only the deterministic "rows"
section, so it works on reports generated without --timing.  Exit status is
0 when no row aborted, 1 otherwise -- CI uses it as the hang-regression
guard's triage step.
"""

import argparse
import json
import sys


def load_timing_sections(path):
    with open(path, "rb") as f:
        doc = json.load(f)
    docs = doc if isinstance(doc, list) else [doc]
    groups = {}
    per_protocol = {}
    totals = {}
    for d in docs:
        timing = d.get("timing")
        if timing is None:
            sys.exit(f"{path}: no 'timing' section -- generate with --timing")
        exp = d.get("experiment", "?")
        totals[exp] = timing.get("total_ms", 0.0)
        for group, ms in timing.get("groups", {}).items():
            groups[(exp, group)] = ms
        for proto, ms in timing.get("per_protocol", {}).items():
            per_protocol[(exp, proto)] = ms
    return groups, per_protocol, totals


def compare_timing(args):
    base_groups, base_protos, base_totals = load_timing_sections(args.baseline)
    cur_groups, cur_protos, cur_totals = load_timing_sections(args.current)

    regressions = []

    def table(title, base, cur):
        # Groups present in only one artifact are reported as added/removed
        # rather than failing (or being silently swallowed when nothing
        # matches): a bench JSON that gains a new experiment family must
        # still diff cleanly against an old baseline.
        matched = sorted(set(base) & set(cur))
        removed = sorted(set(base) - set(cur))
        added = sorted(set(cur) - set(base))
        if not matched and not removed and not added:
            return
        print(f"-- {title} --")
        if matched:
            width = max(len("/".join(k)) for k in matched)
            print(f"{'key':<{width}}  {'base ms':>10}  {'cur ms':>10}  speedup")
            for key in matched:
                b, c = base[key], cur[key]
                speedup = b / c if c > 0 else float("inf")
                name = "/".join(key)
                print(f"{name:<{width}}  {b:>10.2f}  {c:>10.2f}  {speedup:6.2f}x")
                if (args.threshold is not None and b > 0 and c / b > args.threshold
                        and c - b >= 1.0):
                    regressions.append((name, b, c, c / b))
        for key in removed:
            print(f"removed (only in baseline): {'/'.join(key)}")
        for key in added:
            print(f"added (only in current):    {'/'.join(key)}")

    table("timing.groups", base_groups, cur_groups)

    # Per-protocol sums and totals are only meaningful when both sides timed
    # the same row set -- a filtered run against a full sweep would print
    # ratios that are purely the filter.  That judgment is per EXPERIMENT,
    # not global: a [scale, live_throughput] baseline diffed against a
    # scale-only candidate must still roll up scale's per_protocol/totals
    # (live_throughput's absence is already reported as a removed experiment
    # below), and the missing experiment's disjoint per_protocol keys must
    # not leak into the rollup as removed protocols.
    def exp_groups(groups, exp):
        return {g for e, g in groups if e == exp}

    shared = sorted(set(base_totals) & set(cur_totals))
    comparable = {e for e in shared
                  if exp_groups(base_groups, e) == exp_groups(cur_groups, e)}
    table("timing.per_protocol",
          {k: v for k, v in base_protos.items() if k[0] in comparable},
          {k: v for k, v in cur_protos.items() if k[0] in comparable})
    for exp in shared:
        if exp in comparable:
            b, c = base_totals[exp], cur_totals[exp]
            print(f"total[{exp}]: {b:.1f} ms -> {c:.1f} ms "
                  f"({b / c if c else float('inf'):.2f}x speedup)")
        else:
            print(f"(group sets differ for {exp}: "
                  "skipping per_protocol/total comparison)")
    for exp in sorted(set(base_totals) - set(cur_totals)):
        print(f"experiment removed (only in baseline): {exp}")
    for exp in sorted(set(cur_totals) - set(base_totals)):
        print(f"experiment added (only in current):    {exp}")

    if regressions:
        print(f"\n{len(regressions)} group(s) slower than {args.threshold}x baseline:")
        for name, b, c, ratio in regressions:
            print(f"  {name}: {b:.2f} ms -> {c:.2f} ms ({ratio:.2f}x)")
        return 1
    return 0


def load_throughput(path):
    """(experiment, id, rep) -> units_per_sec, for rows that carry it."""
    with open(path, "rb") as f:
        doc = json.load(f)
    docs = doc if isinstance(doc, list) else [doc]
    rows = {}
    for d in docs:
        timing = d.get("timing")
        if timing is None:
            sys.exit(f"{path}: no 'timing' section -- generate with --timing")
        exp = d.get("experiment", "?")
        for t in timing.get("rows", []):
            if "units_per_sec" in t:
                rows[(exp, t["id"], t.get("rep", 0))] = t["units_per_sec"]
    return rows


def compare_throughput(args):
    base = load_throughput(args.baseline)
    cur = load_throughput(args.current)

    matched = sorted(set(base) & set(cur))
    retired = sorted(set(base) - set(cur))
    new = sorted(set(cur) - set(base))
    if not base and not cur:
        print("(no units_per_sec rows on either side)")
        return 0

    regressions = []
    width = max((len("/".join(map(str, k))) for k in matched), default=20)
    print(f"{'row':<{width}}  {'base u/s':>12}  {'cur u/s':>12}  ratio")
    for key in matched:
        b, c = base[key], cur[key]
        ratio = c / b if b > 0 else float("inf")
        name = "/".join(map(str, key))
        print(f"{name:<{width}}  {b:>12.1f}  {c:>12.1f}  {ratio:5.2f}x")
        if (args.threshold is not None and b > 0
                and (c == 0 or b / c > args.threshold)):
            regressions.append((name, b, c))
    # One-sided rows are expected, not errors: the live backend is newer
    # than most committed baselines, and sweeps legitimately grow.
    for key in retired:
        print(f"throughput row retired (only in baseline): {'/'.join(map(str, key))}")
    for key in new:
        print(f"new throughput row (no baseline yet):      {'/'.join(map(str, key))}")

    if regressions:
        print(f"\n{len(regressions)} row(s) with throughput down more than "
              f"{args.threshold}x:")
        for name, b, c in regressions:
            print(f"  {name}: {b:.1f} u/s -> {c:.1f} u/s")
        return 1
    return 0


def list_aborts(path):
    """Per-experiment abort-row census over one report's deterministic rows."""
    with open(path, "rb") as f:
        doc = json.load(f)
    docs = doc if isinstance(doc, list) else [doc]
    totals = {}    # experiment -> row count
    causes = {}    # experiment -> {cause -> count}
    aborted = []   # (experiment, id, rep, detail)
    for d in docs:
        exp = d.get("experiment", "?")
        rows = d.get("rows")
        if rows is None:
            sys.exit(f"{path}: no 'rows' section -- not a dowork_bench report")
        for r in rows:
            totals[exp] = totals.get(exp, 0) + 1
            detail = r.get("extra", {}).get("abort_detail")
            # abort_detail is authoritative when present; the violation text
            # catches aborted rows from before the detail column existed.
            if detail is None and not r.get("violation", "").startswith("run aborted:"):
                continue
            cause = "unknown"
            for pair in (detail or "").split():
                if pair.startswith("cause="):
                    cause = pair[len("cause="):]
                    break
            causes.setdefault(exp, {})[cause] = causes.get(exp, {}).get(cause, 0) + 1
            aborted.append((exp, r.get("id", "?"), r.get("rep", 0),
                            detail or r.get("violation", "")))
    for exp in sorted(totals):
        buckets = causes.get(exp, {})
        if not buckets:
            print(f"{exp}: 0/{totals[exp]} rows aborted")
            continue
        summary = ", ".join(f"{cause}={n}" for cause, n in sorted(buckets.items()))
        print(f"{exp}: {sum(buckets.values())}/{totals[exp]} rows aborted ({summary})")
    for exp, row_id, rep, detail in aborted:
        print(f"  {exp}/{row_id} rep {rep}: {detail}")
    return 1 if aborted else 0


def load(path):
    with open(path, "rb") as f:
        doc = json.load(f)
    docs = doc if isinstance(doc, list) else [doc]
    rows = {}
    totals = {}
    for d in docs:
        timing = d.get("timing")
        if timing is None:
            sys.exit(f"{path}: no 'timing' section -- generate with --timing")
        exp = d.get("experiment", "?")
        totals[exp] = timing.get("total_ms", 0.0)
        # wall_ms lives in the timing section, keyed like the rows.
        for t in timing.get("rows", []):
            key = (exp, t["id"], t.get("rep", 0))
            rows[key] = t["wall_ms"]
        if "rows" not in timing:
            # Older reports carry only per-group timing; fall back to groups.
            # A *present but empty* rows list is not the old format -- it is a
            # run whose filter matched nothing, and inventing group-keyed
            # pseudo-rows for it would silently compare nothing against the
            # other side's per-repetition rows.
            for group, ms in timing.get("groups", {}).items():
                rows[(exp, group, 0)] = ms
    return rows, totals


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current", nargs="?", default=None)
    ap.add_argument("--threshold", type=float, default=None,
                    help="fail (exit 1) when a row is more than X times slower")
    ap.add_argument("--aborts", action="store_true",
                    help="census of structured abort rows in a SINGLE report "
                         "(no current argument), bucketed by abort_detail cause=")
    ap.add_argument("--timing", action="store_true",
                    help="diff timing.groups/per_protocol and print speedup ratios "
                         "instead of matching per-repetition rows")
    ap.add_argument("--throughput", action="store_true",
                    help="diff only the live-substrate units_per_sec rows, in "
                         "their own table (higher is better)")
    args = ap.parse_args()

    if args.timing and args.throughput:
        ap.error("--timing and --throughput are mutually exclusive")
    if args.aborts:
        if args.timing or args.throughput:
            ap.error("--aborts is exclusive with --timing/--throughput")
        if args.current is not None:
            ap.error("--aborts reads a single report; drop the second argument")
        return list_aborts(args.baseline)
    if args.current is None:
        ap.error("the comparison modes need both BASELINE and CURRENT reports")
    if args.throughput:
        return compare_throughput(args)
    if args.timing:
        return compare_timing(args)

    base_rows, base_totals = load(args.baseline)
    cur_rows, cur_totals = load(args.current)

    matched = sorted(set(base_rows) & set(cur_rows))
    only_base = sorted(set(base_rows) - set(cur_rows))
    only_cur = sorted(set(cur_rows) - set(base_rows))

    regressions = []
    width = max((len("/".join(map(str, k))) for k in matched), default=20)
    print(f"{'row':<{width}}  {'base ms':>10}  {'cur ms':>10}  {'delta':>8}  ratio")
    for key in matched:
        b, c = base_rows[key], cur_rows[key]
        ratio = c / b if b > 0 else float("inf")
        name = "/".join(map(str, key))
        print(f"{name:<{width}}  {b:>10.2f}  {c:>10.2f}  {c - b:>+8.2f}  {ratio:5.2f}x")
        if args.threshold is not None and ratio > args.threshold and c - b >= 1.0:
            regressions.append((name, b, c, ratio))

    for exp in sorted(set(base_totals) & set(cur_totals)):
        b, c = base_totals[exp], cur_totals[exp]
        print(f"total[{exp}]: {b:.1f} ms -> {c:.1f} ms "
              f"({c / b if b else float('inf'):.2f}x)")
    for key in only_base:
        print(f"only in baseline: {'/'.join(map(str, key))}")
    for key in only_cur:
        print(f"only in current:  {'/'.join(map(str, key))}")

    if regressions:
        print(f"\n{len(regressions)} row(s) slower than {args.threshold}x baseline:")
        for name, b, c, ratio in regressions:
            print(f"  {name}: {b:.2f} ms -> {c:.2f} ms ({ratio:.2f}x)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
