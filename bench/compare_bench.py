#!/usr/bin/env python3
"""Diff two dowork_bench --timing JSON reports row by row.

Usage:
    bench/compare_bench.py BASELINE.json CURRENT.json [--threshold X]

Rows (repetitions) are matched by (experiment, id, rep); per-row wall_ms
deltas are printed for every row present in both files, followed by the
group and total deltas.  Rows missing from either side are listed but never
fail the comparison (the sweep may legitimately grow).

With --threshold X the exit status is 1 when any matched row is more than X
times slower than its baseline (and at least 1 ms absolute, so sub-ms rows
cannot trip on scheduler noise).  Without it the script always exits 0.
CI runs this advisorily against the committed BENCH_scale.json with a
generous threshold; the numbers are machine-dependent by nature, so treat a
failure as a prompt to look, not proof of a regression.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "rb") as f:
        doc = json.load(f)
    docs = doc if isinstance(doc, list) else [doc]
    rows = {}
    totals = {}
    for d in docs:
        timing = d.get("timing")
        if timing is None:
            sys.exit(f"{path}: no 'timing' section -- generate with --timing")
        exp = d.get("experiment", "?")
        totals[exp] = timing.get("total_ms", 0.0)
        # wall_ms lives in the timing section, keyed like the rows.
        for t in timing.get("rows", []):
            key = (exp, t["id"], t.get("rep", 0))
            rows[key] = t["wall_ms"]
        if not timing.get("rows"):
            # Older reports carry only per-group timing; fall back to groups.
            for group, ms in timing.get("groups", {}).items():
                rows[(exp, group, 0)] = ms
    return rows, totals


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=None,
                    help="fail (exit 1) when a row is more than X times slower")
    args = ap.parse_args()

    base_rows, base_totals = load(args.baseline)
    cur_rows, cur_totals = load(args.current)

    matched = sorted(set(base_rows) & set(cur_rows))
    only_base = sorted(set(base_rows) - set(cur_rows))
    only_cur = sorted(set(cur_rows) - set(base_rows))

    regressions = []
    width = max((len("/".join(map(str, k))) for k in matched), default=20)
    print(f"{'row':<{width}}  {'base ms':>10}  {'cur ms':>10}  {'delta':>8}  ratio")
    for key in matched:
        b, c = base_rows[key], cur_rows[key]
        ratio = c / b if b > 0 else float("inf")
        name = "/".join(map(str, key))
        print(f"{name:<{width}}  {b:>10.2f}  {c:>10.2f}  {c - b:>+8.2f}  {ratio:5.2f}x")
        if args.threshold is not None and ratio > args.threshold and c - b >= 1.0:
            regressions.append((name, b, c, ratio))

    for exp in sorted(set(base_totals) & set(cur_totals)):
        b, c = base_totals[exp], cur_totals[exp]
        print(f"total[{exp}]: {b:.1f} ms -> {c:.1f} ms "
              f"({c / b if b else float('inf'):.2f}x)")
    for key in only_base:
        print(f"only in baseline: {'/'.join(map(str, key))}")
    for key in only_cur:
        print(f"only in current:  {'/'.join(map(str, key))}")

    if regressions:
        print(f"\n{len(regressions)} row(s) slower than {args.threshold}x baseline:")
        for name, b, c, ratio in regressions:
            print(f"  {name}: {b:.2f} ms -> {c:.2f} ms ({ratio:.2f}x)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
