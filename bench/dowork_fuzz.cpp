// Scenario-fuzzing CLI: random valid campaigns under the bound oracles,
// deterministic trace capture, replay, and greedy shrinking.
//
//   dowork_fuzz --cases 1000 --seed 42            # the CI campaign
//   dowork_fuzz --cases 200 --tighten 40          # plant violations
//   dowork_fuzz --replay traces/case00007.shrunk.trace
//
// The campaign exits 0 iff no case violated a bound or an invariant; the
// JSON report (--json) is byte-identical at any --jobs value.  See
// docs/FUZZING.md for the trace format and the replay workflow.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "fuzz/campaign.h"
#include "fuzz/trace.h"
#include "substrate/socket_substrate.h"

namespace {

int usage(int code) {
  std::printf(
      "usage: dowork_fuzz [options]\n"
      "\n"
      "campaign mode (default):\n"
      "  --cases N       generated cases (default 1000)\n"
      "  --seed S        campaign seed (default 42)\n"
      "  --jobs J        worker threads (default: hardware concurrency)\n"
      "  --tighten PCT   scale every bound to PCT%% of the paper's value\n"
      "                  (plants deliberate violations; default 100)\n"
      "  --json FILE     write the deterministic campaign report\n"
      "  --trace-dir DIR write violation traces (original + shrunk reproducer)\n"
      "  --differential [thread|socket]\n"
      "                  run every sync case on both the simulator and a live\n"
      "                  substrate -- worker threads (default) or worker OS\n"
      "                  processes over localhost sockets, where crashes are\n"
      "                  real SIGKILLs; any metric divergence fails the case\n"
      "                  (divergences are reported unshrunk, with a trace of\n"
      "                  the clean simulator leg attached)\n"
      "  --parallel-diff [N]\n"
      "                  run every sync case twice on the simulator -- with\n"
      "                  round-parallel evaluation (--sim-threads N, default\n"
      "                  8) and serial -- and fail the case on any decision\n"
      "                  or outcome divergence (the serial leg is the\n"
      "                  oracle); exclusive with --differential\n"
      "  --quiet         suppress the progress meter\n"
      "exit status: 0 iff every case satisfied its bounds and invariants\n"
      "\n"
      "replay mode:\n"
      "  --replay FILE   re-execute a trace and verify it reproduces the\n"
      "                  recorded outcome bit-identically\n"
      "  --rerun         with --replay: rebuild the adversary from the spec\n"
      "                  and re-derive the run from seeds instead of\n"
      "                  replaying the frozen decision stream\n"
      "exit status: 0 iff the re-execution matches the recorded outcome\n");
  return code;
}

int replay_mode(const std::string& file, bool frozen) {
  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "dowork_fuzz: cannot read %s\n", file.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const dowork::fuzz::Trace trace = dowork::fuzz::Trace::parse(text.str());
  const dowork::harness::ScenarioResult row = dowork::fuzz::replay(trace, frozen);
  const dowork::fuzz::TraceOutcome got = dowork::fuzz::outcome_of(row);

  auto show = [](const char* label, const dowork::fuzz::TraceOutcome& o) {
    std::printf("%s ok=%d work=%llu msgs=%llu effort=%llu crashes=%llu rounds=%s", label,
                o.ok ? 1 : 0, static_cast<unsigned long long>(o.work),
                static_cast<unsigned long long>(o.messages),
                static_cast<unsigned long long>(o.effort),
                static_cast<unsigned long long>(o.crashes), o.rounds.c_str());
    if (!o.violation.empty()) std::printf(" violation=%s", o.violation.c_str());
    std::printf("\n");
  };
  std::printf("trace: %s (%s, %s, n=%lld, t=%d, faults=%s)\n", trace.id.c_str(),
              trace.substrate.c_str(), trace.protocol.c_str(),
              static_cast<long long>(trace.n), trace.t, trace.faults.c_str());
  show("recorded:", trace.outcome);
  show(frozen ? "replayed:" : "rerun:   ", got);
  if (got == trace.outcome) {
    std::printf("replay reproduces the recorded outcome bit-identically\n");
    return 0;
  }
  std::printf("REPLAY MISMATCH\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Socket-substrate workers re-execute this very binary (differential
  // socket campaigns fork them via /proc/self/exe); a worker argv never
  // looks like a fuzz invocation, so the hook is a no-op otherwise.
  if (int code = dowork::substrate::maybe_socket_worker(argc, argv); code >= 0) return code;
  dowork::fuzz::CampaignOptions opts;
  std::string json_file;
  std::string replay_file;
  bool rerun = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dowork_fuzz: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--cases") {
      opts.cases = std::stoi(value());
    } else if (arg == "--seed") {
      opts.seed = std::stoull(value());
    } else if (arg == "--jobs") {
      opts.jobs = std::stoi(value());
    } else if (arg == "--tighten") {
      opts.tighten_pct = std::stoi(value());
    } else if (arg == "--json") {
      json_file = value();
    } else if (arg == "--trace-dir") {
      opts.trace_dir = value();
    } else if (arg == "--differential") {
      opts.differential = true;
      // Optional backend name: consume the next token only when it names a
      // live substrate (so `--differential --json f` still works).
      if (i + 1 < argc && std::strcmp(argv[i + 1], "socket") == 0) {
        opts.differential_socket = true;
        ++i;
      } else if (i + 1 < argc && std::strcmp(argv[i + 1], "thread") == 0) {
        ++i;
      }
    } else if (arg == "--parallel-diff") {
      // Optional thread count: consume the next token only when it is a
      // bare positive integer (so `--parallel-diff --json f` still works).
      opts.parallel_diff = 8;
      if (i + 1 < argc && argv[i + 1][0] >= '1' && argv[i + 1][0] <= '9' &&
          std::strspn(argv[i + 1], "0123456789") == std::strlen(argv[i + 1])) {
        opts.parallel_diff = std::stoi(argv[++i]);
      }
    } else if (arg == "--quiet") {
      opts.quiet = true;
    } else if (arg == "--replay") {
      replay_file = value();
    } else if (arg == "--rerun") {
      rerun = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else {
      std::fprintf(stderr, "dowork_fuzz: unknown option %s\n", arg.c_str());
      return usage(2);
    }
  }

  try {
    if (!replay_file.empty()) return replay_mode(replay_file, /*frozen=*/!rerun);
    if (opts.cases <= 0 || opts.tighten_pct <= 0) {
      std::fprintf(stderr, "dowork_fuzz: --cases and --tighten must be positive\n");
      return 2;
    }
    if (opts.differential && opts.parallel_diff > 1) {
      std::fprintf(stderr,
                   "dowork_fuzz: --differential and --parallel-diff are exclusive "
                   "(each needs its own oracle leg)\n");
      return 2;
    }
    const dowork::fuzz::CampaignResult result = dowork::fuzz::run_campaign(opts);
    if (!json_file.empty()) {
      std::ofstream out(json_file);
      if (!out) {
        std::fprintf(stderr, "dowork_fuzz: cannot write %s\n", json_file.c_str());
        return 1;
      }
      out << result.to_json();
    }
    std::fputs(result.summary_table().c_str(), stdout);
    return result.clean() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dowork_fuzz: %s\n", e.what());
    return 1;
  }
}
