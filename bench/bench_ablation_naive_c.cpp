// Experiment F3 (Section 3 introduction): naive most-knowledgeable takeover
// vs Protocol C's fault detection.  Thin wrapper over the harness experiment
// registry.
#include "harness/bench_main.h"

int main(int argc, char** argv) {
  return dowork::harness::bench_main(argc, argv, "ablation_naive_c");
}
