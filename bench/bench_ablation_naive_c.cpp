// Experiment F3 (Section 3 introduction): without fault detection, the
// "most-knowledgeable takes over" idea costs Theta(n + t^2) work and
// messages under the adversary that kills every active process as it
// performs the final unit (its report dies with it, so each takeover redoes
// the tail and re-informs dead processes).  Protocol C's pointer-guided
// polling discovers the dead and stays at n + 2t work.
#include "bench_util.h"

using namespace dowork;
using namespace dowork::bench;

int main() {
  header("F3: naive most-knowledgeable takeover vs Protocol C",
         "Paper claim (Sec. 3 intro): the naive scheme does O(n + t^2) work/messages; fault "
         "detection (treated as recursive work) removes the cascade.  Adversary: crash each "
         "active process on the last unit; n = t - 1 (the paper's scenario shape).");

  TablePrinter table({"t", "n", "naive work", "naive msgs", "C work", "C msgs", "C polls",
                      "n+2t (Thm 3.8a)", "work ratio"});
  for (int t : {8, 16, 32, 64}) {
    const std::int64_t n = t - 1;
    DoAllConfig cfg{n, t};
    auto adversary = [&] { return std::make_unique<CrashOnUnitFaults>(n, t - 1); };
    RunResult naive = checked_run("naive_C", cfg, adversary());
    RunResult smart = checked_run("C", cfg, adversary());
    table.add_row(
        {std::to_string(t), std::to_string(n), with_commas(naive.metrics.work_total),
         with_commas(naive.metrics.messages_total), with_commas(smart.metrics.work_total),
         with_commas(smart.metrics.messages_total),
         with_commas(smart.metrics.messages_of(MsgKind::kPoll)),
         with_commas(static_cast<std::uint64_t>(n) + 2 * t),
         ratio(static_cast<double>(naive.metrics.work_total) /
               static_cast<double>(smart.metrics.work_total))});
  }
  table.print();
  std::printf("\nShape check: naive work grows ~ t^2/2 (the ratio column widens with t) while "
              "Protocol C stays under its n + 2t bound.\n");
  return 0;
}
