// Experiment T3 (Theorem 2.8): Protocol B keeps Protocol A's work and
// message bounds (<= 3n work, <= 10 t sqrt(t) messages) while retiring
// everyone by round 3n + 8t -- linear instead of Protocol A's nt + 3t^2.
#include "bench_util.h"

using namespace dowork;
using namespace dowork::bench;

int main() {
  header("T3: Protocol B vs Theorem 2.8 bounds",
         "Paper claim: work <= 3n, messages <= 10t*sqrt(t) (go-aheads included), "
         "all retired by 3n + 8t rounds; worst over cascades and 8 random schedules.");

  TablePrinter table({"t", "n", "max work", "3n", "max msgs", "10t*sqrt(t)", "go-aheads",
                      "max rounds", "3n+8t"});
  for (int t : {4, 9, 16, 25, 36, 49, 64, 100}) {
    const std::int64_t n = 16 * t;
    DoAllConfig cfg{n, t};
    std::uint64_t max_work = 0, max_msgs = 0, max_rounds = 0, max_goahead = 0;
    auto absorb = [&](const RunResult& r) {
      max_work = std::max(max_work, r.metrics.work_total);
      max_msgs = std::max(max_msgs, r.metrics.messages_total);
      max_goahead = std::max(max_goahead, r.metrics.messages_of(MsgKind::kGoAhead));
      max_rounds = std::max(max_rounds, r.metrics.last_retire_round.to_u64_saturating());
    };
    for (std::uint64_t units : {std::uint64_t{1}, static_cast<std::uint64_t>(ceil_div(n, t))}) {
      for (std::size_t prefix : {std::size_t{0}, std::size_t{1}})
        absorb(checked_run("B", cfg, std::make_unique<WorkCascadeFaults>(units, t - 1, prefix)));
    }
    for (unsigned seed = 0; seed < 8; ++seed)
      absorb(checked_run("B", cfg, std::make_unique<RandomFaults>(0.05, t - 1, seed)));

    const std::uint64_t s = static_cast<std::uint64_t>(int_sqrt_ceil(t));
    const std::uint64_t tu = static_cast<std::uint64_t>(t);
    const std::uint64_t nu = static_cast<std::uint64_t>(n);
    table.add_row({std::to_string(t), std::to_string(n), with_commas(max_work),
                   with_commas(3 * nu), with_commas(max_msgs), with_commas(10 * tu * s),
                   with_commas(max_goahead), with_commas(max_rounds),
                   with_commas(3 * nu + 8 * tu)});
  }
  table.print();
  std::printf("\nShape check: rounds linear in n + t (vs Protocol A's nt + 3t^2 deadline "
              "cascade; see bench_time_a_vs_b for the head-to-head).\n");
  return 0;
}
