// Experiment T3 (Theorem 2.8): Protocol B vs its work/message/time bounds.
// Thin wrapper over the harness experiment registry.
#include "harness/bench_main.h"

int main(int argc, char** argv) {
  return dowork::harness::bench_main(argc, argv, "protocol_b");
}
