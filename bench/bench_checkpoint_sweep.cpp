// Experiment F1 (Section 2 introduction): the checkpoint-frequency
// trade-off.  Thin wrapper over the harness experiment registry; see
// src/harness/experiments.cpp for the scenario family and DESIGN.md for the
// experiment -> paper map.
#include "harness/bench_main.h"

int main(int argc, char** argv) {
  return dowork::harness::bench_main(argc, argv, "checkpoint_sweep");
}
