// Experiment F1 (Section 2 introduction): the checkpoint-frequency
// trade-off.  A single worker checkpointing every n/k units to all t
// processes loses up to n/k units per crash (suggesting k >= t) but pays t
// messages per checkpoint (suggesting k <= sqrt(t)); the effort curve over k
// has an interior minimum, motivating Protocol A's two-level scheme
// (partial checkpoints every n/t units to sqrt(t) processes, full
// checkpoints every n/sqrt(t) units to everyone).
#include "bench_util.h"

#include "protocols/baseline_checkpoint.h"
#include "sim/simulator.h"

using namespace dowork;
using namespace dowork::bench;

namespace {

RunMetrics run_with_k(const DoAllConfig& cfg, std::int64_t units_per_ckpt) {
  std::vector<std::unique_ptr<IProcess>> procs;
  for (int i = 0; i < cfg.t; ++i)
    procs.push_back(std::make_unique<BaselineCheckpointProcess>(cfg, i, units_per_ckpt));
  Simulator::Options opts;
  opts.n_units = cfg.n;
  opts.strict_one_op = true;
  // Adversary: kill each active worker just after a checkpoint interval so a
  // full interval of work is in flight (maximum loss), all t-1 crashes.
  Simulator sim(std::move(procs),
                std::make_unique<WorkCascadeFaults>(
                    static_cast<std::uint64_t>(units_per_ckpt), cfg.t - 1, 0),
                opts);
  RunMetrics m = sim.run();
  if (!m.all_units_done() || !m.all_retired) {
    std::fprintf(stderr, "FATAL: checkpoint sweep run broken\n");
    std::abort();
  }
  return m;
}

}  // namespace

int main() {
  header("F1: checkpoint-frequency sweep (single worker, checkpoint to all)",
         "Paper claim (Sec. 2 intro): checkpoint every n/k units => ~n*t/k redone work and "
         "~t*k messages; too-small and too-large k both lose, best k between sqrt(t) and t.");

  const int t = 32;
  const std::int64_t n = 1024;
  DoAllConfig cfg{n, t};
  TablePrinter table({"k (ckpts)", "units/ckpt", "work", "redone", "messages", "effort"});
  std::uint64_t best_effort = UINT64_MAX;
  std::int64_t best_k = 0;
  for (std::int64_t k : {1, 2, 4, 6, 8, 12, 16, 24, 32, 64, 128, 256, 1024}) {
    std::int64_t per = std::max<std::int64_t>(1, n / k);
    RunMetrics m = run_with_k(cfg, per);
    table.add_row({std::to_string(k), std::to_string(per), with_commas(m.work_total),
                   with_commas(m.work_total - static_cast<std::uint64_t>(n)),
                   with_commas(m.messages_total), with_commas(m.effort())});
    if (m.effort() < best_effort) {
      best_effort = m.effort();
      best_k = k;
    }
  }
  table.print();
  std::printf("\nBest k = %lld (effort %s): interior minimum between k=1 (message-bound) and "
              "k=n (work-redo-bound), as the Section 2 argument predicts.  Protocol A's "
              "two-level checkpointing beats every single-level k:\n",
              static_cast<long long>(best_k), with_commas(best_effort).c_str());
  RunResult a = checked_run("A", cfg,
                            std::make_unique<WorkCascadeFaults>(
                                static_cast<std::uint64_t>(ceil_div(n, t)), t - 1, 0));
  std::printf("Protocol A effort on the same adversary: %s\n",
              with_commas(a.metrics.effort()).c_str());
  return 0;
}
