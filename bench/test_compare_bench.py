#!/usr/bin/env python3
"""Tests for bench/compare_bench.py (stdlib unittest, no dependencies).

Covers both comparison modes and their edge cases: per-repetition rows with
and without --threshold (including the 1 ms absolute guard against
scheduler noise on sub-ms rows), --timing group diffs with added/removed
groups, the old-format groups fallback, the present-but-empty timing.rows
case, and the missing-timing-section error.  Run directly or via CTest
(compare_bench_test).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "compare_bench.py")


def report(experiment, rows=None, groups=None, per_protocol=None, total=0.0,
           omit_rows=False, omit_timing=False):
    """One dowork_bench --timing JSON document."""
    doc = {"experiment": experiment}
    if omit_timing:
        return doc
    timing = {"total_ms": total}
    if not omit_rows:
        # Row tuples: (id, rep, wall_ms) or (id, rep, wall_ms, units_per_sec)
        # -- the 4-tuple form is a live-substrate repetition.
        timing["rows"] = []
        for row in (rows or []):
            entry = {"id": row[0], "rep": row[1], "wall_ms": row[2]}
            if len(row) > 3:
                entry["units_per_sec"] = row[3]
            timing["rows"].append(entry)
    if groups is not None:
        timing["groups"] = groups
    if per_protocol is not None:
        timing["per_protocol"] = per_protocol
    doc["timing"] = timing
    return doc


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.dir.name, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def run_compare(self, base, cur, *flags):
        return subprocess.run(
            [sys.executable, SCRIPT, base, cur, *flags],
            capture_output=True, text=True)

    # --- per-repetition row mode -------------------------------------------

    def test_matched_rows_within_threshold_pass(self):
        base = self.write("b.json", report("scale", rows=[("t=64/A", 0, 10.0)], total=10.0))
        cur = self.write("c.json", report("scale", rows=[("t=64/A", 0, 12.0)], total=12.0))
        r = self.run_compare(base, cur, "--threshold", "2.0")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("t=64/A", r.stdout)
        self.assertIn("total[scale]", r.stdout)

    def test_row_regression_fails_threshold(self):
        base = self.write("b.json", report("scale", rows=[("t=64/A", 0, 10.0)]))
        cur = self.write("c.json", report("scale", rows=[("t=64/A", 0, 35.0)]))
        r = self.run_compare(base, cur, "--threshold", "2.0")
        self.assertEqual(r.returncode, 1)
        self.assertIn("slower than 2.0x baseline", r.stdout)

    def test_sub_millisecond_rows_cannot_trip_threshold(self):
        # 10x slower but the absolute delta is under 1 ms: scheduler noise,
        # not a regression.
        base = self.write("b.json", report("scale", rows=[("t=64/A", 0, 0.05)]))
        cur = self.write("c.json", report("scale", rows=[("t=64/A", 0, 0.5)]))
        r = self.run_compare(base, cur, "--threshold", "2.0")
        self.assertEqual(r.returncode, 0, r.stdout)

    def test_without_threshold_always_exits_zero(self):
        base = self.write("b.json", report("scale", rows=[("t=64/A", 0, 1.0)]))
        cur = self.write("c.json", report("scale", rows=[("t=64/A", 0, 100.0)]))
        r = self.run_compare(base, cur)
        self.assertEqual(r.returncode, 0, r.stdout)

    def test_unmatched_rows_are_listed_but_never_fail(self):
        base = self.write("b.json", report(
            "scale", rows=[("t=64/A", 0, 5.0), ("t=64/B", 0, 5.0)]))
        cur = self.write("c.json", report(
            "scale", rows=[("t=64/A", 0, 5.0), ("t=128/A", 0, 99.0)]))
        r = self.run_compare(base, cur, "--threshold", "1.1")
        self.assertEqual(r.returncode, 0, r.stdout)
        self.assertIn("only in baseline: scale/t=64/B", r.stdout)
        self.assertIn("only in current:  scale/t=128/A", r.stdout)

    def test_old_format_without_rows_falls_back_to_groups(self):
        base = self.write("b.json", report(
            "scale", omit_rows=True, groups={"t=64": 10.0}))
        cur = self.write("c.json", report(
            "scale", omit_rows=True, groups={"t=64": 12.0}))
        r = self.run_compare(base, cur, "--threshold", "2.0")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("scale/t=64/0", r.stdout)

    def test_empty_rows_list_is_not_the_old_format(self):
        # A run whose filter matched nothing has rows == []; it must not
        # fabricate group-keyed pseudo-rows that silently compare nothing
        # against the other side's real per-repetition rows.
        base = self.write("b.json", report(
            "scale", rows=[("t=64/A", 0, 5.0)], groups={"t=64": 5.0}))
        cur = self.write("c.json", report(
            "scale", rows=[], groups={"t=64": 5.0}))
        r = self.run_compare(base, cur)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("only in baseline: scale/t=64/A", r.stdout)
        self.assertNotIn("only in current", r.stdout)

    def test_missing_timing_section_is_an_error(self):
        base = self.write("b.json", report("scale", omit_timing=True))
        cur = self.write("c.json", report("scale", rows=[("t=64/A", 0, 1.0)]))
        r = self.run_compare(base, cur)
        self.assertNotEqual(r.returncode, 0)
        self.assertIn("no 'timing' section", r.stderr)

    def test_list_of_documents_is_accepted(self):
        base = self.write("b.json", [
            report("scale", rows=[("t=64/A", 0, 1.0)], total=1.0),
            report("protocol_a", rows=[("n=16t/A", 0, 2.0)], total=2.0),
        ])
        cur = self.write("c.json", [
            report("scale", rows=[("t=64/A", 0, 1.0)], total=1.0),
            report("protocol_a", rows=[("n=16t/A", 0, 2.0)], total=2.0),
        ])
        r = self.run_compare(base, cur, "--threshold", "1.5")
        self.assertEqual(r.returncode, 0, r.stdout)
        self.assertIn("total[protocol_a]", r.stdout)

    # --- --timing group mode ------------------------------------------------

    def test_timing_mode_prints_speedups_and_totals(self):
        base = self.write("b.json", report(
            "scale", rows=[], groups={"t=64": 20.0, "t=128": 40.0},
            per_protocol={"A": 30.0}, total=60.0))
        cur = self.write("c.json", report(
            "scale", rows=[], groups={"t=64": 10.0, "t=128": 20.0},
            per_protocol={"A": 15.0}, total=30.0))
        r = self.run_compare(base, cur, "--timing")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("timing.groups", r.stdout)
        self.assertIn("2.00x", r.stdout)
        self.assertIn("timing.per_protocol", r.stdout)
        self.assertIn("total[scale]: 60.0 ms -> 30.0 ms (2.00x speedup)", r.stdout)

    def test_timing_mode_threshold_regression_fails(self):
        base = self.write("b.json", report("scale", rows=[], groups={"t=64": 10.0}))
        cur = self.write("c.json", report("scale", rows=[], groups={"t=64": 50.0}))
        r = self.run_compare(base, cur, "--timing", "--threshold", "2.0")
        self.assertEqual(r.returncode, 1, r.stdout)
        self.assertIn("slower than 2.0x baseline", r.stdout)

    def test_timing_mode_added_and_removed_groups(self):
        # Group sets differing must report added/removed and skip the
        # per-protocol/total comparison (the ratios would only measure the
        # filter), never fail.
        base = self.write("b.json", report(
            "scale", rows=[], groups={"t=64": 10.0, "t=128": 20.0},
            per_protocol={"A": 15.0}, total=30.0))
        cur = self.write("c.json", report(
            "scale", rows=[], groups={"t=64": 10.0, "t=256": 40.0},
            per_protocol={"A": 25.0}, total=50.0))
        r = self.run_compare(base, cur, "--timing", "--threshold", "1.1")
        self.assertEqual(r.returncode, 0, r.stdout)
        self.assertIn("removed (only in baseline): scale/t=128", r.stdout)
        self.assertIn("added (only in current):    scale/t=256", r.stdout)
        self.assertIn("skipping per_protocol/total comparison", r.stdout)
        self.assertNotIn("timing.per_protocol", r.stdout)

    # --- --throughput mode --------------------------------------------------

    def test_throughput_mode_matches_only_units_per_sec_rows(self):
        # Sim rows (wall_ms only) are invisible to --throughput; live rows
        # diff by units_per_sec with current/baseline ratio.
        base = self.write("b.json", report("live_throughput", rows=[
            ("sim/t=16/A", 0, 5.0), ("live/t=16/A", 0, 9.0, 1000.0)]))
        cur = self.write("c.json", report("live_throughput", rows=[
            ("sim/t=16/A", 0, 6.0), ("live/t=16/A", 0, 8.0, 2000.0)]))
        r = self.run_compare(base, cur, "--throughput")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("live/t=16/A", r.stdout)
        self.assertIn("2.00x", r.stdout)
        self.assertNotIn("sim/t=16/A", r.stdout)

    def test_throughput_mode_lists_new_live_rows_instead_of_added_removed(self):
        # A baseline that predates the live backend diffs cleanly: the live
        # rows land in the throughput table as new, and nothing fails.
        base = self.write("b.json", report("scale", rows=[("t=64/A", 0, 5.0)]))
        cur = self.write("c.json", report("scale", rows=[
            ("t=64/A", 0, 5.0), ("live/t=64/A", 0, 9.0, 1234.5)]))
        r = self.run_compare(base, cur, "--throughput", "--threshold", "1.1")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("new throughput row (no baseline yet):      scale/live/t=64/A",
                      r.stdout)
        self.assertNotIn("only in", r.stdout)

    def test_throughput_mode_threshold_fails_on_drop(self):
        base = self.write("b.json", report("live_throughput", rows=[
            ("live/t=16/A", 0, 9.0, 3000.0)]))
        cur = self.write("c.json", report("live_throughput", rows=[
            ("live/t=16/A", 0, 9.0, 1000.0)]))
        r = self.run_compare(base, cur, "--throughput", "--threshold", "2.0")
        self.assertEqual(r.returncode, 1, r.stdout)
        self.assertIn("throughput down more than 2.0x", r.stdout)

    def test_throughput_mode_without_any_live_rows(self):
        base = self.write("b.json", report("scale", rows=[("t=64/A", 0, 5.0)]))
        cur = self.write("c.json", report("scale", rows=[("t=64/A", 0, 5.0)]))
        r = self.run_compare(base, cur, "--throughput")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("no units_per_sec rows on either side", r.stdout)

    def test_timing_and_throughput_are_mutually_exclusive(self):
        base = self.write("b.json", report("scale", rows=[]))
        cur = self.write("c.json", report("scale", rows=[]))
        r = self.run_compare(base, cur, "--timing", "--throughput")
        self.assertNotEqual(r.returncode, 0)
        self.assertIn("mutually exclusive", r.stderr)

    def test_timing_mode_rolls_up_matching_experiment_from_wider_baseline(self):
        # The committed baseline may be a [scale, live_throughput] array
        # while the candidate (e.g. the scale_d_perf CI step) re-times only
        # scale.  The per_protocol/total rollup must still happen for scale
        # -- whose group sets match exactly -- instead of being skipped
        # because live_throughput's groups (and its disjoint per_protocol
        # keys) make the GLOBAL group sets differ.
        base = self.write("b.json", [
            report("scale", rows=[], groups={"t=64": 20.0},
                   per_protocol={"A": 12.0, "D": 8.0}, total=20.0),
            report("live_throughput", rows=[], groups={"live": 5.0},
                   per_protocol={"live/A": 5.0}, total=5.0),
        ])
        cur = self.write("c.json", report(
            "scale", rows=[], groups={"t=64": 10.0},
            per_protocol={"A": 6.0, "D": 4.0}, total=10.0))
        r = self.run_compare(base, cur, "--timing")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("timing.per_protocol", r.stdout)
        self.assertIn("scale/A", r.stdout)
        self.assertIn("total[scale]: 20.0 ms -> 10.0 ms (2.00x speedup)",
                      r.stdout)
        # The absent experiment is reported once, as removed -- its
        # per_protocol keys must not surface as removed protocol rows.
        self.assertIn("experiment removed (only in baseline): live_throughput",
                      r.stdout)
        self.assertNotIn("live/A", r.stdout)

    def test_timing_mode_group_set_check_is_per_experiment(self):
        # Two shared experiments, one timed identically and one filtered
        # differently: the first rolls up, the second is skipped by name.
        base = self.write("b.json", [
            report("scale", rows=[], groups={"t=64": 10.0},
                   per_protocol={"A": 10.0}, total=10.0),
            report("wan_latency", rows=[], groups={"p50": 4.0},
                   per_protocol={"B": 4.0}, total=4.0),
        ])
        cur = self.write("c.json", [
            report("scale", rows=[], groups={"t=64": 5.0},
                   per_protocol={"A": 5.0}, total=5.0),
            report("wan_latency", rows=[], groups={"p99": 6.0},
                   per_protocol={"B": 6.0}, total=6.0),
        ])
        r = self.run_compare(base, cur, "--timing")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("scale/A", r.stdout)
        self.assertIn("total[scale]", r.stdout)
        self.assertIn(
            "(group sets differ for wan_latency: "
            "skipping per_protocol/total comparison)", r.stdout)
        self.assertNotIn("total[wan_latency]", r.stdout)
        self.assertNotIn("wan_latency/B", r.stdout)

    def test_timing_mode_added_experiment_is_reported(self):
        base = self.write("b.json", [report("scale", rows=[], groups={"t=64": 1.0})])
        cur = self.write("c.json", [
            report("scale", rows=[], groups={"t=64": 1.0}),
            report("wan_latency", rows=[], groups={"p2p": 2.0}),
        ])
        r = self.run_compare(base, cur, "--timing")
        self.assertEqual(r.returncode, 0, r.stdout)
        self.assertIn("experiment added (only in current):    wan_latency", r.stdout)

    # --- abort census mode -------------------------------------------------

    def run_aborts(self, path, *flags):
        return subprocess.run(
            [sys.executable, SCRIPT, path, "--aborts", *flags],
            capture_output=True, text=True)

    @staticmethod
    def deterministic_report(experiment, rows):
        """A report with only the deterministic 'rows' section (no --timing):
        rows is a list of (id, rep, violation, extra) tuples."""
        return {"experiment": experiment,
                "rows": [{"id": i, "rep": rep, "violation": v, "extra": extra}
                         for i, rep, v, extra in rows]}

    def test_aborts_clean_report_exits_zero(self):
        path = self.write("r.json", self.deterministic_report(
            "differential", [("socket/det-t16/A", 0, "", {})]))
        r = self.run_aborts(path)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("differential: 0/1 rows aborted", r.stdout)

    def test_aborts_buckets_by_cause_and_exits_one(self):
        path = self.write("r.json", self.deterministic_report("differential", [
            ("socket/det-t16/A", 0, "run aborted: worker hang",
             {"abort_detail": "cause=watchdog proc=3 round=7"}),
            ("socket/det-t16/B", 0, "run aborted: worker hang",
             {"abort_detail": "cause=watchdog proc=1 round=2"}),
            ("socket/det-t16/C", 0, "run aborted: worker 4 exited",
             {"abort_detail": "cause=worker-eof pid=123 round=5"}),
            ("socket/det-t16/D", 0, "", {}),
        ]))
        r = self.run_aborts(path)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("differential: 3/4 rows aborted "
                      "(watchdog=2, worker-eof=1)", r.stdout)
        self.assertIn("differential/socket/det-t16/A rep 0: "
                      "cause=watchdog proc=3 round=7", r.stdout)

    def test_aborts_detail_free_abort_rows_count_as_unknown(self):
        # Rows from before the abort_detail column existed still carry the
        # "run aborted:" violation prefix; they bucket as unknown.
        path = self.write("r.json", self.deterministic_report(
            "live_throughput",
            [("live/t=16/A", 1, "run aborted: watchdog", {})]))
        r = self.run_aborts(path)
        self.assertEqual(r.returncode, 1)
        self.assertIn("live_throughput: 1/1 rows aborted (unknown=1)", r.stdout)

    def test_aborts_accepts_multi_experiment_arrays(self):
        path = self.write("r.json", [
            self.deterministic_report("smoke", [("sync/A", 0, "", {})]),
            self.deterministic_report("differential", [
                ("socket/det-t16/A", 0, "run aborted: spawn",
                 {"abort_detail": "cause=spawn proc=2 errno=11"})]),
        ])
        r = self.run_aborts(path)
        self.assertEqual(r.returncode, 1)
        self.assertIn("smoke: 0/1 rows aborted", r.stdout)
        self.assertIn("differential: 1/1 rows aborted (spawn=1)", r.stdout)

    def test_aborts_rejects_a_second_report(self):
        path = self.write("r.json", self.deterministic_report("smoke", []))
        other = self.write("o.json", self.deterministic_report("smoke", []))
        r = subprocess.run([sys.executable, SCRIPT, path, other, "--aborts"],
                           capture_output=True, text=True)
        self.assertNotEqual(r.returncode, 0)
        self.assertIn("single report", r.stderr)

    def test_comparison_modes_still_require_both_reports(self):
        path = self.write("r.json", self.deterministic_report("smoke", []))
        r = subprocess.run([sys.executable, SCRIPT, path],
                           capture_output=True, text=True)
        self.assertNotEqual(r.returncode, 0)
        self.assertIn("BASELINE and CURRENT", r.stderr)


if __name__ == "__main__":
    unittest.main()
