// Experiment F2 (Sections 1 and 6): the protocol landscape in one table --
// effort (work + messages) of the baselines and all four protocols under
// the same worst-case crash cascade, showing who wins where:
//   baselines O(tn) effort; A/B effort 3n + O(t^1.5); C effort O(n + t log t)
//   (message-optimal among these); D trades messages ((4f+2)t^2) for time.
#include "bench_util.h"

using namespace dowork;
using namespace dowork::bench;

int main() {
  header("F2: effort comparison across all protocols (cascade, f = t-1)",
         "Paper claim: trivial solutions cost O(tn) effort; A/B cost 3n + O(t^1.5); C costs "
         "O(n + t log t); D costs O(n + f t^2) but finishes fastest when failures are few.");

  TablePrinter table({"t", "n", "protocol", "work", "messages", "effort", "rounds"});
  for (int t : {8, 16, 32, 64}) {
    const std::int64_t n = 4 * t;  // keeps n + t within Protocol C's 512-bit budget
    DoAllConfig cfg{n, t};
    for (const char* proto :
         {"baseline_all", "baseline_checkpoint", "A", "B", "C", "C_batch", "D"}) {
      // baseline_all's worst case is failure-free (tn work); the others face
      // a takeover cascade that crashes each worker one chunk in with its
      // broadcast truncated to a single recipient.
      std::unique_ptr<FaultInjector> faults;
      if (std::string(proto) == "baseline_all")
        faults = std::make_unique<NoFaults>();
      else if (std::string(proto) == "D")
        // D's workers only hold n/t units each; crash t/2 - 1 of them two
        // units in (case 1 of Theorem 4.1, no revert).
        faults = std::make_unique<WorkCascadeFaults>(2, std::max(1, t / 2 - 1),
                                                     /*deliver_prefix=*/0);
      else
        faults = std::make_unique<WorkCascadeFaults>(
            static_cast<std::uint64_t>(ceil_div(n, int_sqrt_ceil(t)) + 1), t - 1,
            /*deliver_prefix=*/1);
      RunResult r = checked_run(proto, cfg, std::move(faults));
      table.add_row({std::to_string(t), std::to_string(n), proto,
                     with_commas(r.metrics.work_total), with_commas(r.metrics.messages_total),
                     with_commas(r.metrics.effort()), fmt_round(r.metrics.last_retire_round)});
    }
  }
  table.print();
  std::printf("\nShape check (fixed n/t ratio, growing t): baselines' effort grows ~ t^2 (tn); "
              "A/B ~ t^1.5 in the message term; C/C_batch smallest messages; D smallest "
              "rounds but t^2-heavy messages -- matching the paper's trade-off table.\n");
  return 0;
}
