// Experiment F2 (Sections 1 and 6): the protocol landscape in one table.
// Thin wrapper over the harness experiment registry.
#include "harness/bench_main.h"

int main(int argc, char** argv) {
  return dowork::harness::bench_main(argc, argv, "effort_comparison");
}
