// Experiment T9 (Sections 1 and 4, the patented extension): work arriving
// continually at individual sites, not initially common knowledge.  The
// dynamic Protocol D keeps alternating work and agreement phases; arriving
// units become common knowledge one agreement later and are load-balanced
// like the static workload.  Announced work is never lost; work that dies
// with its arrival site before being gossiped is reported as lost (clients
// must resubmit), exactly the semantics of a reclaimed workstation's queue.
#include "bench_util.h"
#include "dynamic/dynamic_d.h"

using namespace dowork;
using namespace dowork::bench;

namespace {

DynamicConfig make_workload(int t, int batches, std::int64_t per_batch, std::uint64_t gap) {
  DynamicConfig cfg;
  cfg.t = t;
  cfg.max_units = batches * per_batch;
  cfg.horizon = gap * static_cast<std::uint64_t>(batches) + 8;
  std::int64_t next = 1;
  for (int b = 0; b < batches; ++b) {
    Arrival a;
    a.round = gap * static_cast<std::uint64_t>(b);
    a.proc = b % t;
    for (std::int64_t k = 0; k < per_batch; ++k) a.units.push_back(next++);
    cfg.arrivals.push_back(a);
  }
  return cfg;
}

}  // namespace

int main() {
  header("T9: dynamic workload extension of Protocol D",
         "Paper claim (Secs. 1, 4): Protocol D extends to work arriving over time at "
         "different sites via periodic agreement; cost stays work + O(phases * t^2) "
         "messages.  Sweep: batch cadence and crash count.");

  TablePrinter table({"t", "batches x units", "crashes", "work", "lost", "messages",
                      "rounds", "done"});
  for (int t : {4, 8, 16}) {
    for (int crashes : {0, t / 4, t / 2}) {
      DynamicConfig cfg = make_workload(t, /*batches=*/6, /*per_batch=*/4 * t, /*gap=*/25);
      std::unique_ptr<FaultInjector> faults =
          crashes == 0 ? std::unique_ptr<FaultInjector>(std::make_unique<NoFaults>())
                       : std::make_unique<WorkCascadeFaults>(6, crashes, 0);
      DynamicRunResult r = run_dynamic_do_all(cfg, std::move(faults));
      if (!r.metrics.all_retired || !r.all_known_work_done) {
        std::fprintf(stderr, "FATAL: dynamic run lost announced work\n");
        return 1;
      }
      table.add_row({std::to_string(t), "6 x " + std::to_string(4 * t),
                     std::to_string(r.metrics.crashes), with_commas(r.metrics.work_total),
                     std::to_string(r.lost_units.size()),
                     with_commas(r.metrics.messages_total),
                     fmt_round(r.metrics.last_retire_round),
                     r.lost_units.empty() ? "all" : "all announced"});
    }
  }
  table.print();
  std::printf("\nShape check: without failures work equals the injected total (no redo) and "
              "every batch is absorbed one agreement after its arrival; with crashes the "
              "survivors redo dead slices and only never-gossiped arrivals can be lost.\n");
  return 0;
}
