// Experiment T9 (Sections 1 and 4): the dynamic-workload extension of
// Protocol D.  Thin wrapper over the harness experiment registry.
#include "harness/bench_main.h"

int main(int argc, char** argv) {
  return dowork::harness::bench_main(argc, argv, "dynamic");
}
