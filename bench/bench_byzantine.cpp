// Experiment T6 (Section 5): Byzantine agreement for crash faults via the
// work protocols.  Via A/B: O(n + t sqrt t) messages and O(n) time
// (matching Bracha's nonconstructive bound, constructively); via C:
// O(n + t log t) messages at exponential time.  Agreement and validity hold
// under every crash schedule, including the general dying mid-broadcast.
#include "agreement/byzantine.h"
#include "bench_util.h"

using namespace dowork;
using namespace dowork::bench;

namespace {

ByzantineResult checked_ba(const ByzantineConfig& cfg, std::unique_ptr<FaultInjector> faults) {
  ByzantineResult r = run_byzantine(cfg, std::move(faults));
  if (!r.agreement || !r.validity) {
    std::fprintf(stderr, "FATAL: BA violated agreement/validity (proto %s)\n",
                 cfg.protocol.c_str());
    std::abort();
  }
  return r;
}

}  // namespace

int main() {
  header("T6: Byzantine agreement (crash faults) built on the work protocols",
         "Paper claim: via A/B O(n + t*sqrt(t)) msgs, O(n) rounds; via C O(n + t log t) msgs, "
         "exponential rounds.  Worst over: failure-free, general crash mid-broadcast, sender "
         "cascade, 4 random schedules.");

  TablePrinter table({"n", "t", "proto", "max msgs", "n+10t*sqrt(t)", "n+8TlogT",
                      "max rounds", "agreement", "validity"});
  struct Shape {
    int n, t;
  };
  for (Shape sh : {Shape{64, 8}, Shape{144, 12}, Shape{256, 16}, Shape{128, 32}}) {
    for (const char* proto : {"A", "B", "C"}) {
      ByzantineConfig cfg;
      cfg.n_procs = sh.n;
      cfg.t_faults = sh.t;
      cfg.value = 5;
      cfg.protocol = proto;
      std::uint64_t max_msgs = 0;
      Round max_rounds{0};
      auto absorb = [&](const ByzantineResult& r) {
        max_msgs = std::max(max_msgs, r.metrics.messages_total);
        if (r.metrics.last_retire_round > max_rounds) max_rounds = r.metrics.last_retire_round;
      };
      absorb(checked_ba(cfg, std::make_unique<NoFaults>()));
      absorb(checked_ba(cfg, std::make_unique<ScheduledFaults>(std::vector<ScheduledFaults::Entry>{
                                 {0, 1, CrashPlan{false, static_cast<std::size_t>(sh.t / 2)}}})));
      absorb(checked_ba(cfg, std::make_unique<WorkCascadeFaults>(2, sh.t, 1)));
      for (unsigned seed = 0; seed < 4; ++seed)
        absorb(checked_ba(cfg, std::make_unique<RandomFaults>(0.03, sh.t, seed)));

      const std::uint64_t senders = static_cast<std::uint64_t>(sh.t + 1);
      const std::uint64_t s = static_cast<std::uint64_t>(int_sqrt_ceil(sh.t + 1));
      const std::uint64_t T = static_cast<std::uint64_t>(pow2_ceil(sh.t + 1));
      const std::uint64_t L = static_cast<std::uint64_t>(log2_of_pow2(pow2_ceil(sh.t + 1)));
      table.add_row({std::to_string(sh.n), std::to_string(sh.t), proto, with_commas(max_msgs),
                     with_commas(static_cast<std::uint64_t>(sh.n) + 10 * senders * s +
                                 10 * s * s + senders),
                     with_commas(static_cast<std::uint64_t>(sh.n) + 8 * T * L + 4 * T + senders),
                     fmt_round(max_rounds), "yes", "yes"});
    }
  }
  table.print();
  std::printf("\nShape check: A/B rows respect the n + O(t^1.5) message column with small "
              "round counts; C rows respect the n + O(t log t) column with astronomically "
              "large (exponential) round counts.\n");
  return 0;
}
