// Experiment T6 (Section 5): Byzantine agreement for crash faults via the
// work protocols.  Thin wrapper over the harness experiment registry.
#include "harness/bench_main.h"

int main(int argc, char** argv) {
  return dowork::harness::bench_main(argc, argv, "byzantine");
}
