// Experiments T8/F6 (paper Section 1.1, related work):
//
// (a) Available processor steps.  Kanellakis-Shvartsman's measure charges
// every non-faulty process for every round the algorithm runs; the paper
// argues effort (work + messages) is the right measure for message passing
// because idle processes are free.  The contrast is extreme: Protocol C is
// effort-near-optimal but its APS is astronomically large (its deadlines
// are exponential), and even Protocol A's APS is Theta(n t^2).  De Prisco,
// Mayer and Yung later showed any message-passing algorithm needs n^2 APS
// when t ~ n; Protocol D, which keeps everyone busy, is the APS-friendly
// one.
//
// (b) Shared memory.  The paper notes shared memory "simplifies things
// considerably": a progress counter survives crashes, so the
// straightforward algorithm achieves optimal O(n + t) effort; the
// message-passing protocols must reconstruct that state with checkpoint
// waves.
#include "bench_util.h"
#include "sharedmem/write_all.h"

using namespace dowork;
using namespace dowork::bench;

int main() {
  header("T8: effort vs available processor steps (Section 1.1)",
         "Paper claim: the APS measure charges idle waiting; the sequential protocols are "
         "effort-optimal but APS-terrible (C: exponential), while Protocol D is APS-friendly. "
         "Adversary: chunk cascade, f = t-1 (D: t/2-1).");

  TablePrinter aps({"t", "n", "protocol", "effort", "APS", "APS/effort"});
  for (int t : {8, 16, 32}) {
    const std::int64_t n = 4 * t;
    DoAllConfig cfg{n, t};
    for (const char* proto : {"A", "B", "C", "D"}) {
      std::unique_ptr<FaultInjector> faults;
      if (std::string(proto) == "D")
        faults = std::make_unique<WorkCascadeFaults>(2, std::max(1, t / 2 - 1), 0);
      else
        faults = std::make_unique<WorkCascadeFaults>(
            static_cast<std::uint64_t>(ceil_div(n, int_sqrt_ceil(t)) + 1), t - 1, 1);
      RunResult r = checked_run(proto, cfg, std::move(faults));
      const Round& steps = r.metrics.available_processor_steps;
      std::string ratio_str =
          steps.fits_u64()
              ? ratio(static_cast<double>(steps.to_u64_saturating()) /
                      static_cast<double>(r.metrics.effort()))
              : "~2^" + std::to_string(steps.log2_floor());
      aps.add_row({std::to_string(t), std::to_string(n), proto,
                   with_commas(r.metrics.effort()), fmt_round(steps), ratio_str});
    }
  }
  aps.print();

  header("F6: message passing vs shared memory (Section 1.1)",
         "Paper claim: with shared memory a progress counter gives optimal O(n+t) effort "
         "(reads+writes+work); message passing pays checkpoint waves for the same resilience. "
         "Adversary: t-1 crashes, one chunk into each takeover.");
  TablePrinter sm({"t", "n", "sharedmem effort", "2n+O(t)", "ProtoA effort", "ProtoC effort"});
  for (int t : {8, 16, 32, 64}) {
    const std::int64_t n = 4 * t;
    DoAllConfig cfg{n, t};
    std::vector<std::optional<SharedMemSim::CrashSpec>> crashes(static_cast<std::size_t>(t));
    for (int p = 0; p < t - 1; ++p)
      crashes[static_cast<std::size_t>(p)] =
          SharedMemSim::CrashSpec{static_cast<std::uint64_t>(2 * ceil_div(n, t)) + 3, true};
    SharedMetrics shared = run_write_all(cfg, std::move(crashes));
    if (!shared.all_units_done()) {
      std::fprintf(stderr, "FATAL: write-all incomplete\n");
      return 1;
    }
    auto cascade = [&] {
      return std::make_unique<WorkCascadeFaults>(
          static_cast<std::uint64_t>(ceil_div(n, int_sqrt_ceil(t)) + 1), t - 1, 1);
    };
    RunResult a = checked_run("A", cfg, cascade());
    RunResult c = checked_run("C", cfg, cascade());
    sm.add_row({std::to_string(t), std::to_string(n), with_commas(shared.effort()),
                with_commas(2 * static_cast<std::uint64_t>(n) + 3 * t),
                with_commas(a.metrics.effort()), with_commas(c.metrics.effort())});
  }
  sm.print();
  std::printf("\nShape check: shared-memory effort hugs 2n + O(t); the message-passing rows "
              "carry the additional t^1.5 / t log t checkpoint terms -- the gap the paper's "
              "model discussion predicts.\n");
  return 0;
}
