// Experiments T8/F6 (Section 1.1): effort vs available processor steps, and
// the shared-memory progress counter.  Thin wrapper over the harness
// experiment registry.
#include "harness/bench_main.h"

int main(int argc, char** argv) {
  return dowork::harness::bench_main(argc, argv, "related_models");
}
