// Google-benchmark microbenchmarks of the substrate itself: simulator round
// throughput, BigUint arithmetic, and end-to-end protocol runs.  These guard
// against performance regressions in the harness (the paper benches above
// all run on top of it).
#include <benchmark/benchmark.h>

#include "core/runner.h"
#include "util/biguint.h"

namespace dowork {
namespace {

void BM_BigUintAddShift(benchmark::State& state) {
  BigUint acc{1};
  for (auto _ : state) {
    BigUint v = BigUint{0x9e3779b97f4a7c15ull} << 200;
    v += acc;
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_BigUintAddShift);

void BM_BigUintToString(benchmark::State& state) {
  BigUint v = BigUint{0xdeadbeefull} << 300;
  for (auto _ : state) {
    std::string s = v.to_string();
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_BigUintToString);

void BM_ProtocolA_FailureFree(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  DoAllConfig cfg{16 * t, t};
  for (auto _ : state) {
    RunResult r = run_do_all("A", cfg, std::make_unique<NoFaults>());
    benchmark::DoNotOptimize(r.metrics.work_total);
  }
  state.SetItemsProcessed(state.iterations() * cfg.n);
}
BENCHMARK(BM_ProtocolA_FailureFree)->Arg(16)->Arg(64)->Arg(256);

void BM_ProtocolB_Cascade(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  DoAllConfig cfg{16 * t, t};
  for (auto _ : state) {
    RunResult r =
        run_do_all("B", cfg, std::make_unique<WorkCascadeFaults>(1, t - 1, 0));
    benchmark::DoNotOptimize(r.metrics.work_total);
  }
}
BENCHMARK(BM_ProtocolB_Cascade)->Arg(16)->Arg(64);

void BM_ProtocolC_Cascade(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  DoAllConfig cfg{4 * t, t};
  for (auto _ : state) {
    RunResult r =
        run_do_all("C", cfg, std::make_unique<WorkCascadeFaults>(1, t - 1, 0));
    benchmark::DoNotOptimize(r.metrics.messages_total);
  }
}
BENCHMARK(BM_ProtocolC_Cascade)->Arg(8)->Arg(32);

void BM_ProtocolD_FailureFree(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  DoAllConfig cfg{64 * t, t};
  for (auto _ : state) {
    RunResult r = run_do_all("D", cfg, std::make_unique<NoFaults>());
    benchmark::DoNotOptimize(r.metrics.messages_total);
  }
}
BENCHMARK(BM_ProtocolD_FailureFree)->Arg(8)->Arg(32);

}  // namespace
}  // namespace dowork

BENCHMARK_MAIN();
