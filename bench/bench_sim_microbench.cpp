// Substrate microbenchmarks: simulator round throughput and end-to-end
// protocol runs, guarding against performance regressions in the harness.
// Thin wrapper over the harness experiment registry (the google-benchmark
// dependency is gone; Round arithmetic microbenches live in
// tests/round_test.cpp).
#include "harness/bench_main.h"

int main(int argc, char** argv) {
  return dowork::harness::bench_main(argc, argv, "sim_microbench");
}
