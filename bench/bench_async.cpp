// Experiment T7 (Section 2.1 remark): asynchronous Protocol A with failure
// detection.  Thin wrapper over the harness experiment registry.
#include "harness/bench_main.h"

int main(int argc, char** argv) {
  return dowork::harness::bench_main(argc, argv, "async");
}
