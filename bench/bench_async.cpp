// Experiment T7 (Section 2.1 remark): Protocol A runs unchanged in a fully
// asynchronous system with a failure detector -- activation waits for
// detector notices instead of round deadlines.  Work and message complexity
// are delay-invariant; completion time scales with actual delays and
// detector latency rather than worst-case deadlines.
#include "async/protocol_a_async.h"
#include "bench_util.h"

using namespace dowork;
using namespace dowork::bench;

int main() {
  header("T7: asynchronous Protocol A with failure detection",
         "Paper claim: the synchronous deadlines exist only to detect failures; with a sound "
         "+ complete detector the same protocol (same work/message bounds) runs fully "
         "asynchronously.  Sweep: message delay and detector latency ranges.");

  const DoAllConfig cfg{256, 16};
  const std::uint64_t s = static_cast<std::uint64_t>(int_sqrt_ceil(cfg.t));
  TablePrinter table({"max msg delay", "max FD delay", "crashes", "work", "3n", "messages",
                      "9t*sqrt(t)", "end time"});
  for (ATime delay : {ATime{2}, ATime{10}, ATime{50}}) {
    for (ATime fd : {ATime{5}, ATime{25}, ATime{100}}) {
      AsyncSim::Options opts;
      opts.min_delay = 1;
      opts.max_delay = delay;
      opts.fd_max_delay = fd;
      opts.seed = delay * 1000 + fd;
      std::vector<std::optional<AsyncSim::CrashSpec>> crashes(
          static_cast<std::size_t>(cfg.t));
      // Each active process survives one subchunk + checkpoint (so the
      // checkpoint traffic flows), then dies mid-broadcast on a later one.
      for (int p = 0; p < cfg.t - 1; ++p)
        crashes[static_cast<std::size_t>(p)] =
            AsyncSim::CrashSpec{static_cast<std::uint64_t>(ceil_div(cfg.n, cfg.t)) + 3, 2, true};
      AsyncMetrics m = run_async_protocol_a(cfg, opts, std::move(crashes));
      if (!m.all_retired || !m.all_units_done()) {
        std::fprintf(stderr, "FATAL: async run incomplete\n");
        return 1;
      }
      table.add_row({std::to_string(delay), std::to_string(fd), std::to_string(m.crashes),
                     with_commas(m.work_total),
                     with_commas(3 * static_cast<std::uint64_t>(cfg.n)),
                     with_commas(m.messages_total),
                     with_commas(9 * static_cast<std::uint64_t>(cfg.t) * s),
                     with_commas(m.end_time)});
    }
  }
  table.print();
  std::printf("\nShape check: work and messages stay within the synchronous Theorem 2.3 "
              "bounds in every row; only the end-time column moves with the delays.\n");
  return 0;
}
