// Experiment F5 (Theorems 2.3c vs 2.8c): the entire point of Protocol B.
// Protocol A's takeover deadlines DD(j) = j(n + 3t) make its worst-case
// running time Theta(nt + t^2); Protocol B's message-relative timeouts plus
// go-ahead probing bring it to 3n + 8t.  Same work, slightly more messages.
#include "bench_util.h"

using namespace dowork;
using namespace dowork::bench;

int main() {
  header("F5: rounds-to-completion, Protocol A vs Protocol B",
         "Paper claim: A retires by nt + 3t^2, B by 3n + 8t (both work <= 3n).  Adversary: "
         "full cascade, each active process crashes after one unit, reaching nobody.");

  TablePrinter table({"t", "n", "A rounds", "A bound nt+3t^2", "B rounds", "B bound 3n+8t",
                      "speedup", "A msgs", "B msgs"});
  for (int t : {4, 16, 36, 64, 100, 144}) {
    const std::int64_t n = 64 * t;
    DoAllConfig cfg{n, t};
    auto cascade = [&] { return std::make_unique<WorkCascadeFaults>(1, t - 1, 0); };
    RunResult ra = checked_run("A", cfg, cascade());
    RunResult rb = checked_run("B", cfg, cascade());
    const std::uint64_t nu = static_cast<std::uint64_t>(n);
    const std::uint64_t tu = static_cast<std::uint64_t>(t);
    double speedup = static_cast<double>(ra.metrics.last_retire_round.to_u64_saturating()) /
                     static_cast<double>(rb.metrics.last_retire_round.to_u64_saturating());
    table.add_row({std::to_string(t), std::to_string(n),
                   fmt_round(ra.metrics.last_retire_round), with_commas(nu * tu + 3 * tu * tu),
                   fmt_round(rb.metrics.last_retire_round), with_commas(3 * nu + 8 * tu),
                   ratio(speedup), with_commas(ra.metrics.messages_total),
                   with_commas(rb.metrics.messages_total)});
  }
  table.print();
  std::printf("\nShape check: the speedup column grows ~ t/3 (A is Theta(nt), B is Theta(n)): "
              "the crossover the paper buys with go-ahead probing.\n");
  return 0;
}
