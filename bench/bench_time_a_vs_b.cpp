// Experiment F5 (Theorems 2.3c vs 2.8c): rounds-to-completion, A vs B.
// Thin wrapper over the harness experiment registry.
#include "harness/bench_main.h"

int main(int argc, char** argv) {
  return dowork::harness::bench_main(argc, argv, "time_a_vs_b");
}
