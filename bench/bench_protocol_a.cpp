// Experiment T2 (Theorem 2.3): in every execution of Protocol A, work <= 3n,
// messages <= 9 t sqrt(t), and all processes retire by round nt + 3t^2.
#include "bench_util.h"

using namespace dowork;
using namespace dowork::bench;

int main() {
  header("T2: Protocol A vs Theorem 2.3 bounds",
         "Paper claim: work <= 3n, messages <= 9t*sqrt(t), retire by nt+3t^2; "
         "adversary = takeover cascade crashing each active process (worst observed "
         "over cascade variants and 8 random schedules).");

  TablePrinter table({"t", "sqrt(t)", "n", "max work", "3n", "max msgs", "9t*sqrt(t)",
                      "max rounds", "nt+3t^2"});
  for (int t : {4, 9, 16, 25, 36, 49, 64, 100}) {
    const std::int64_t n = 16 * t;
    DoAllConfig cfg{n, t};
    std::uint64_t max_work = 0, max_msgs = 0, max_rounds = 0;
    auto absorb = [&](const RunResult& r) {
      max_work = std::max(max_work, r.metrics.work_total);
      max_msgs = std::max(max_msgs, r.metrics.messages_total);
      max_rounds = std::max(max_rounds, r.metrics.last_retire_round.to_u64_saturating());
    };
    // Cascade adversaries at several crash granularities.
    for (std::uint64_t units : {std::uint64_t{1}, static_cast<std::uint64_t>(ceil_div(n, t)),
                                static_cast<std::uint64_t>(ceil_div(n, int_sqrt_ceil(t)))}) {
      for (std::size_t prefix : {std::size_t{0}, std::size_t{1}}) {
        absorb(checked_run("A", cfg, std::make_unique<WorkCascadeFaults>(units, t - 1, prefix)));
      }
    }
    for (unsigned seed = 0; seed < 8; ++seed)
      absorb(checked_run("A", cfg, std::make_unique<RandomFaults>(0.05, t - 1, seed)));

    const std::uint64_t s = static_cast<std::uint64_t>(int_sqrt_ceil(t));
    const std::uint64_t tu = static_cast<std::uint64_t>(t);
    const std::uint64_t nu = static_cast<std::uint64_t>(n);
    table.add_row({std::to_string(t), std::to_string(s), std::to_string(n),
                   with_commas(max_work), with_commas(3 * nu), with_commas(max_msgs),
                   with_commas(9 * tu * s), with_commas(max_rounds),
                   with_commas(nu * tu + 3 * tu * tu)});
  }
  table.print();
  std::printf("\nShape check: every measured column stays below its theorem column; messages "
              "grow ~ t^1.5.\n");
  return 0;
}
