// Experiment T2 (Theorem 2.3): Protocol A vs its work/message/time bounds.
// Thin wrapper over the harness experiment registry.
#include "harness/bench_main.h"

int main(int argc, char** argv) {
  return dowork::harness::bench_main(argc, argv, "protocol_a");
}
