// Experiment T1 (Section 1): the two trivial solutions cost O(tn) effort.
// Thin wrapper over the harness experiment registry; see
// src/harness/experiments.cpp for the scenario family and DESIGN.md for the
// experiment -> paper map.
#include "harness/bench_main.h"

int main(int argc, char** argv) {
  return dowork::harness::bench_main(argc, argv, "baselines");
}
