// Experiment T1 (paper Section 1): the two trivial solutions cost O(tn)
// effort -- "everyone does everything" in work, "checkpoint every unit to
// everyone" in messages -- motivating work-optimal protocols with O(n + t)
// work and sub-(tn) messages.
#include "bench_util.h"

using namespace dowork;
using namespace dowork::bench;

int main() {
  header("T1: trivial baselines vs Protocol A (worst-case crash cascade)",
         "Paper claim: both baselines have effort O(tn); Protocol A achieves "
         "3n work + 9t*sqrt(t) messages.");

  TablePrinter table({"t", "n", "protocol", "faults", "work", "messages", "effort", "rounds"});
  for (int t : {4, 8, 16, 32, 64}) {
    const std::int64_t n = 1024;
    DoAllConfig cfg{n, t};
    for (const char* proto : {"baseline_all", "baseline_checkpoint", "A"}) {
      // Each protocol under its own worst case: for baseline_all that is the
      // failure-free run (everyone does everything, t*n work); for the
      // single-worker protocols a full takeover cascade, crashing each
      // worker one chunk in with its broadcast truncated to one recipient.
      const bool all = std::string(proto) == "baseline_all";
      std::unique_ptr<FaultInjector> faults;
      if (all)
        faults = std::make_unique<NoFaults>();
      else
        faults = std::make_unique<WorkCascadeFaults>(
            static_cast<std::uint64_t>(ceil_div(n, int_sqrt_ceil(t)) + 1), t - 1,
            /*deliver_prefix=*/1);
      RunResult r = checked_run(proto, cfg, std::move(faults));
      table.add_row({std::to_string(t), std::to_string(n), proto,
                     all ? "none (worst case)" : "t-1 cascade",
                     with_commas(r.metrics.work_total), with_commas(r.metrics.messages_total),
                     with_commas(r.metrics.effort()), fmt_round(r.metrics.last_retire_round)});
    }
  }
  table.print();

  std::printf("\nShape check: baseline_all work ~ t*n; baseline_checkpoint messages ~ t*n;\n"
              "Protocol A keeps effort near n + t^1.5 (who-wins ordering as in the paper).\n");
  return 0;
}
