// Experiment T5 + F4 (Theorem 4.1): Protocol D is time-optimal without
// failures (n/t + 2 rounds, 2t^2 messages) and degrades gracefully: with f
// failures (never losing a majority in one phase) work <= 2n, messages <=
// (4f+2) t^2, rounds <= (f+1) n/t + 4f + 2; a majority loss reverts to
// Protocol A with case-2 bounds.
#include "bench_util.h"

using namespace dowork;
using namespace dowork::bench;

int main() {
  header("T5: Protocol D vs Theorem 4.1 (case 1)",
         "Paper claim: failure-free n/t+2 rounds and 2t^2 messages; f failures: work <= 2n, "
         "msgs <= (4f+2)t^2, rounds <= (f+1)n/t + 4f + 2 (small pipeline slack; see DESIGN.md).");

  TablePrinter t5({"t", "n", "f", "work", "2n", "msgs", "(4f+2)t^2", "rounds",
                   "(f+1)n/t+4f+2"});
  for (int t : {4, 8, 16, 32}) {
    const std::int64_t n = 32 * t;
    DoAllConfig cfg{n, t};
    for (int f : {0, 1, t / 4, t / 2}) {
      std::vector<ScheduledFaults::Entry> entries;
      for (int p = 0; p < f; ++p)
        entries.push_back({p, static_cast<std::uint64_t>(1 + 2 * p), CrashPlan{true, 0}});
      RunResult r =
          checked_run("D", cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
      const std::uint64_t tu = static_cast<std::uint64_t>(t);
      const std::uint64_t nu = static_cast<std::uint64_t>(n);
      t5.add_row({std::to_string(t), std::to_string(n), std::to_string(f),
                  with_commas(r.metrics.work_total), with_commas(2 * nu),
                  with_commas(r.metrics.messages_total),
                  with_commas((4 * static_cast<std::uint64_t>(f) + 2) * tu * tu),
                  fmt_round(r.metrics.last_retire_round),
                  with_commas(static_cast<std::uint64_t>(f + 1) * (nu / tu) + 4 * f + 2)});
    }
  }
  t5.print();

  header("F4: graceful degradation -- rounds vs number of failures",
         "Paper claim: time grows ~ (f+1) n/t + 4f + 2 as f goes 0..t-1 (n=4096, t=16).");
  TablePrinter f4({"f", "rounds", "bound (f+1)n/t+4f+2", "work", "messages"});
  {
    DoAllConfig cfg{4096, 16};
    for (int f = 0; f <= 15; ++f) {
      std::vector<ScheduledFaults::Entry> entries;
      for (int p = 0; p < f; ++p)
        entries.push_back({p, static_cast<std::uint64_t>(3 + 5 * p), CrashPlan{true, 0}});
      RunResult r =
          checked_run("D", cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
      f4.add_row({std::to_string(f), fmt_round(r.metrics.last_retire_round),
                  with_commas(static_cast<std::uint64_t>(f + 1) * 256 + 4 * f + 2),
                  with_commas(r.metrics.work_total), with_commas(r.metrics.messages_total)});
    }
  }
  f4.print();

  header("T5b: majority loss reverts to Protocol A (Theorem 4.1 case 2)",
         "Paper claim: work <= 4n, msgs <= (4f+2)t^2 + 9t*sqrt(t)/(2*sqrt(2)), rounds gain "
         "+nt/2 + 3t^2/4.");
  TablePrinter t5b({"t", "n", "killed in phase 1", "work", "4n", "msgs", "rounds"});
  for (int t : {8, 16, 32}) {
    const std::int64_t n = 16 * t;
    DoAllConfig cfg{n, t};
    int kill = t / 2 + 1;
    std::vector<ScheduledFaults::Entry> entries;
    for (int p = 0; p < kill; ++p) entries.push_back({p, 2, CrashPlan{true, 0}});
    RunResult r = checked_run("D", cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
    t5b.add_row({std::to_string(t), std::to_string(n), std::to_string(kill),
                 with_commas(r.metrics.work_total),
                 with_commas(4 * static_cast<std::uint64_t>(n)),
                 with_commas(r.metrics.messages_total),
                 fmt_round(r.metrics.last_retire_round)});
  }
  t5b.print();

  header("T10: coordinator agreement variant (Section 4, closing remark)",
         "Paper claim: sending views to a coordinator who broadcasts the result cuts "
         "failure-free messages to 2(t-1) per phase, same work; coordinator failure falls "
         "back to broadcast agreement.");
  TablePrinter t10({"t", "n", "scenario", "work", "msgs D", "msgs D_coord", "2(t-1)"});
  for (int t : {8, 16, 32}) {
    const std::int64_t n = 16 * t;
    DoAllConfig cfg{n, t};
    {
      RunResult d = checked_run("D", cfg, std::make_unique<NoFaults>());
      RunResult dc = checked_run("D_coord", cfg, std::make_unique<NoFaults>());
      t10.add_row({std::to_string(t), std::to_string(n), "failure-free",
                   with_commas(dc.metrics.work_total), with_commas(d.metrics.messages_total),
                   with_commas(dc.metrics.messages_total),
                   with_commas(2u * static_cast<std::uint64_t>(t - 1))});
    }
    {
      // Kill the phase-1 coordinator during its final broadcast.
      auto sched = [&] {
        return std::make_unique<ScheduledFaults>(std::vector<ScheduledFaults::Entry>{
            {0, static_cast<std::uint64_t>(n / t + 1), CrashPlan{false, 2}}});
      };
      RunResult d = checked_run("D", cfg, sched());
      RunResult dc = checked_run("D_coord", cfg, sched());
      t10.add_row({std::to_string(t), std::to_string(n), "coordinator dies",
                   with_commas(dc.metrics.work_total), with_commas(d.metrics.messages_total),
                   with_commas(dc.metrics.messages_total), "(fallback)"});
    }
  }
  t10.print();
  std::printf("\nShape check: failure-free row matches n/t + 2 rounds and 2t(t-1) messages "
              "exactly for D, and 2(t-1) for D_coord; the coordinator-crash rows pay the "
              "broadcast fallback; rounds grow linearly in f; revert rows stay under 4n "
              "work.\n");
  return 0;
}
