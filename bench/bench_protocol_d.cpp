// Experiments T5/F4/T5b/T10 (Theorem 4.1, Section 4): Protocol D, graceful
// degradation, majority-loss revert, coordinator variant.  Thin wrapper over
// the harness experiment registry.
#include "harness/bench_main.h"

int main(int argc, char** argv) {
  return dowork::harness::bench_main(argc, argv, "protocol_d");
}
