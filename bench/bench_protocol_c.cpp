// Experiment T4 (Theorem 3.8 + Corollary 3.9): Protocol C performs at most
// n + 2t units of work and sends at most n + 8 t log t messages; reporting
// every ceil(n/t) units instead of every unit removes the n term
// (O(t log t) messages) at the price of yet more (still exponential) time.
#include "bench_util.h"

using namespace dowork;
using namespace dowork::bench;

int main() {
  header("T4: Protocol C vs Theorem 3.8 / Corollary 3.9 bounds",
         "Paper claim: work <= n + 2t; messages <= n + 8t log t (variant: O(t log t)); "
         "time exponential in n + t.  Adversary: takeover cascade; worst over variants.");

  TablePrinter table({"t", "n", "proto", "max work", "n+2t", "max msgs", "n+8TlogT",
                      "polls", "rounds (last retire)"});
  for (int t : {4, 8, 16, 32, 64}) {
    const std::int64_t n = 4 * t;
    DoAllConfig cfg{n, t};
    for (const char* proto : {"C", "C_batch"}) {
      std::uint64_t max_work = 0, max_msgs = 0, max_polls = 0;
      Round max_rounds{0};
      auto absorb = [&](const RunResult& r) {
        max_work = std::max(max_work, r.metrics.work_total);
        max_msgs = std::max(max_msgs, r.metrics.messages_total);
        max_polls = std::max(max_polls, r.metrics.messages_of(MsgKind::kPoll));
        if (r.metrics.last_retire_round > max_rounds) max_rounds = r.metrics.last_retire_round;
      };
      absorb(checked_run(proto, cfg, std::make_unique<NoFaults>()));
      absorb(checked_run(proto, cfg, std::make_unique<WorkCascadeFaults>(1, t - 1, 0)));
      absorb(checked_run(proto, cfg,
                         std::make_unique<WorkCascadeFaults>(
                             static_cast<std::uint64_t>(ceil_div(n, t)), t - 1, 1)));
      for (unsigned seed = 0; seed < 4; ++seed)
        absorb(checked_run(proto, cfg, std::make_unique<RandomFaults>(0.05, t - 1, seed)));

      const std::uint64_t T = static_cast<std::uint64_t>(pow2_ceil(t));
      const std::uint64_t L = static_cast<std::uint64_t>(std::max(1, log2_of_pow2(pow2_ceil(t))));
      table.add_row({std::to_string(t), std::to_string(n), proto, with_commas(max_work),
                     with_commas(static_cast<std::uint64_t>(n) + 2 * t),
                     with_commas(max_msgs),
                     with_commas(static_cast<std::uint64_t>(n) + 8 * T * L),
                     with_commas(max_polls), fmt_round(max_rounds)});
    }
  }
  table.print();
  std::printf("\nShape check: C's messages grow ~ n + t log t (C_batch drops the n term); the "
              "round column is astronomically large (deadlines 2^(n+t)) yet simulated exactly "
              "via 512-bit fast-forward.\n");
  return 0;
}
