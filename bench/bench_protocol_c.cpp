// Experiment T4 (Theorem 3.8 + Corollary 3.9): Protocol C and its batched
// variant.  Thin wrapper over the harness experiment registry.
#include "harness/bench_main.h"

int main(int argc, char** argv) {
  return dowork::harness::bench_main(argc, argv, "protocol_c");
}
