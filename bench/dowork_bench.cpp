// Unified benchmark CLI: every experiment from the paper's evaluation,
// expanded to declarative scenarios and fanned out across a thread pool.
//
//   dowork_bench --list
//   dowork_bench --experiment checkpoint_sweep --jobs 8
//   dowork_bench --experiment all --json report.json
//
// The JSON report is byte-identical at any --jobs value (scenarios are
// seeded values and rows are emitted in scenario order), so CI can diff
// trajectories across commits.
#include "harness/bench_main.h"

int main(int argc, char** argv) { return dowork::harness::bench_main(argc, argv); }
