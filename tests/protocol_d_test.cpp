#include "protocols/protocol_d.h"

#include <gtest/gtest.h>

#include <thread>

#include "core/runner.h"
#include "sim/round_pool.h"

namespace dowork {
namespace {

std::uint64_t u(std::int64_t v) { return static_cast<std::uint64_t>(v); }

TEST(ProtocolD, FailureFreeIsTimeOptimal) {
  DoAllConfig cfg{64, 8};  // n/t = 8
  RunResult r = run_do_all("D", cfg, std::make_unique<NoFaults>());
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_EQ(r.metrics.work_total, 64u);  // perfect load balance, no redo
  EXPECT_EQ(r.metrics.max_concurrent_workers, 8u);
  // n/t + 2 rounds (Theorem 4.1 discussion): rounds 0..n/t+1.
  EXPECT_EQ(r.metrics.last_retire_round, Round{64u / 8u + 1u});
  // 2 agreement broadcasts to t-1 peers each: 2t(t-1) <= 2t^2 messages.
  EXPECT_EQ(r.metrics.messages_total, 2u * 8u * 7u);
  EXPECT_EQ(r.metrics.messages_of(MsgKind::kAgreement), r.metrics.messages_total);
}

TEST(ProtocolD, FailureFreeUnevenDivision) {
  DoAllConfig cfg{65, 8};  // ceil(65/8) = 9
  RunResult r = run_do_all("D", cfg, std::make_unique<NoFaults>());
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_EQ(r.metrics.work_total, 65u);
  EXPECT_EQ(r.metrics.last_retire_round, Round{9u + 1u});
}

TEST(ProtocolD, SingleProcess) {
  DoAllConfig cfg{10, 1};
  RunResult r = run_do_all("D", cfg, std::make_unique<NoFaults>());
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_EQ(r.metrics.work_total, 10u);
  EXPECT_EQ(r.metrics.messages_total, 0u);
}

TEST(ProtocolD, OneCrashCostsOneExtraPhase) {
  DoAllConfig cfg{64, 8};
  // Process 3 dies on its first work unit without completing it.
  std::vector<ScheduledFaults::Entry> entries{{3, 1, CrashPlan{false, 0}}};
  RunResult r = run_do_all("D", cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
  ASSERT_TRUE(r.ok()) << r.violation;
  // Its 8-unit slice is redone by the 7 survivors in phase 2.
  EXPECT_LE(r.metrics.work_total, 64u + 8u);
  // Paper: with one failure, <= n/t + ceil(n/t(t-1)) + 6 rounds and <= 5t^2
  // messages (plus small pipeline slack).
  EXPECT_LE(r.metrics.last_retire_round, Round{8u + 2u + 8u});
  EXPECT_LE(r.metrics.messages_total, 5u * 64u + 64u);
}

TEST(ProtocolD, CrashDuringAgreementBroadcastStillAgrees) {
  DoAllConfig cfg{32, 4};
  // Process 1: 8 work actions, then dies during its first agreement
  // broadcast, reaching only the first recipient.
  std::vector<ScheduledFaults::Entry> entries{{1, 9, CrashPlan{false, 1}}};
  RunResult r = run_do_all("D", cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_EQ(r.metrics.crashes, 1u);
  // Its slice was already done; survivors may or may not have learned it.
  EXPECT_LE(r.metrics.work_total, 32u + 8u);
}

TEST(ProtocolD, TheoremFourOneCaseOneBounds) {
  // One crash per phase, f = 4 crashes on t = 16: never more than half.
  DoAllConfig cfg{128, 16};
  const int f = 4;
  // Crash process p on its (p+1)*2-th work unit so deaths spread over time.
  std::vector<ScheduledFaults::Entry> entries;
  for (int p = 0; p < f; ++p)
    entries.push_back({p, u(2 * (p + 1)), CrashPlan{true, 0}});
  RunResult r = run_do_all("D", cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_LE(r.metrics.work_total, 2u * 128u) << "work <= 2n (Thm 4.1 1a)";
  EXPECT_LE(r.metrics.messages_total, (4u * f + 2u) * 16u * 16u) << "msgs <= (4f+2)t^2";
  // rounds <= (f+1) n/t + 4f + 2, plus pipeline grace slack (<= 2 per phase).
  EXPECT_LE(r.metrics.last_retire_round, Round{(f + 1) * 8u + 4u * f + 2u + 2u * (f + 1)});
}

TEST(ProtocolD, RevertsToProtocolAWhenMajorityDies) {
  DoAllConfig cfg{64, 8};
  // Kill 5 of 8 (more than half of those thought correct) in phase 1.
  std::vector<ScheduledFaults::Entry> entries;
  for (int p = 0; p < 5; ++p) entries.push_back({p, 2, CrashPlan{true, 0}});
  std::vector<std::unique_ptr<IProcess>> procs;
  std::vector<ProtocolDProcess*> raw;
  for (int i = 0; i < cfg.t; ++i) {
    auto d = std::make_unique<ProtocolDProcess>(cfg, i);
    raw.push_back(d.get());
    procs.push_back(std::move(d));
  }
  Simulator::Options opts;
  opts.n_units = cfg.n;
  opts.strict_one_op = true;
  Simulator sim(std::move(procs), std::make_unique<ScheduledFaults>(std::move(entries)), opts);
  RunMetrics m = sim.run();
  EXPECT_TRUE(m.all_retired);
  EXPECT_TRUE(m.all_units_done());
  // The survivors switched to the Protocol A escape hatch.
  bool any_reverted = false;
  for (auto* d : raw) any_reverted |= d->reverted_to_a();
  EXPECT_TRUE(any_reverted);
  // Theorem 4.1 case 2: work <= 4n, checkpoint traffic present.
  EXPECT_LE(m.work_total, 4u * 64u);
  EXPECT_GT(m.messages_of(MsgKind::kCheckpoint), 0u);
}

TEST(ProtocolD, GracefulDegradationRoundsGrowLinearlyInF) {
  DoAllConfig cfg{240, 8};
  std::uint64_t prev_rounds = 0;
  for (int f : {0, 2, 4}) {
    std::vector<ScheduledFaults::Entry> entries;
    for (int p = 0; p < f; ++p) entries.push_back({p, u(10 * (p + 1)), CrashPlan{true, 0}});
    RunResult r = run_do_all("D", cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
    ASSERT_TRUE(r.ok()) << r.violation << " f=" << f;
    std::uint64_t rounds = r.metrics.last_retire_round.to_u64_saturating();
    EXPECT_GE(rounds, prev_rounds);
    // Never worse than (f+1)n/t + O(f).
    EXPECT_LE(rounds, u((f + 1) * 30 + 6 * f + 6));
    prev_rounds = rounds;
  }
}

struct SweepCase {
  std::int64_t n;
  int t;
  int fault_mode;
  unsigned seed;
};

class ProtocolDSweep : public ::testing::TestWithParam<SweepCase> {};

std::unique_ptr<FaultInjector> make_faults(const SweepCase& c) {
  switch (c.fault_mode) {
    case 1:
      return std::make_unique<WorkCascadeFaults>(1, c.t - 1, 0);
    case 2:
      return std::make_unique<WorkCascadeFaults>(u(ceil_div(c.n, c.t)), c.t - 1, 2);
    case 3:
      return std::make_unique<RandomFaults>(0.05, c.t - 1, c.seed);
    default:
      return std::make_unique<NoFaults>();
  }
}

TEST_P(ProtocolDSweep, AlwaysCompletesAllWork) {
  const SweepCase& c = GetParam();
  DoAllConfig cfg{c.n, c.t};
  RunResult r = run_do_all("D", cfg, make_faults(c));
  ASSERT_TRUE(r.ok()) << r.violation << " (" << cfg.to_string() << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProtocolDSweep,
    ::testing::Values(
        SweepCase{16, 4, 0, 0}, SweepCase{16, 4, 1, 0}, SweepCase{16, 4, 2, 0},
        SweepCase{16, 4, 3, 1}, SweepCase{100, 10, 1, 0}, SweepCase{100, 10, 2, 0},
        SweepCase{100, 10, 3, 2}, SweepCase{64, 16, 1, 0}, SweepCase{64, 16, 3, 3},
        SweepCase{50, 7, 1, 0}, SweepCase{50, 7, 3, 4}, SweepCase{8, 16, 1, 0},
        SweepCase{8, 16, 3, 5}, SweepCase{1, 4, 1, 0}, SweepCase{33, 11, 2, 0},
        SweepCase{33, 11, 3, 6}, SweepCase{256, 25, 1, 0}, SweepCase{256, 25, 3, 7},
        SweepCase{128, 2, 1, 0}, SweepCase{40, 3, 3, 8}, SweepCase{512, 32, 3, 9},
        SweepCase{81, 81, 1, 0}, SweepCase{81, 81, 3, 10}));

class ProtocolDRandom : public ::testing::TestWithParam<unsigned> {};

// The run-shared AgreeMergeCache is a pure memoization: with and without
// it, every metric of the run -- work, messages, rounds, per-process and
// per-unit breakdowns -- must be identical, including under mid-broadcast
// prefix cuts (which force some recipients onto the slow merge path) and
// random schedules.
TEST(ProtocolD, MergeCacheIsObservablyInvisible) {
  const DoAllConfig cfg{96, 12};
  auto run_with = [&](bool cached, std::unique_ptr<FaultInjector> faults) {
    auto cache = cached ? std::make_shared<AgreeMergeCache>() : nullptr;
    std::vector<std::unique_ptr<IProcess>> procs;
    for (int i = 0; i < cfg.t; ++i)
      procs.push_back(std::make_unique<ProtocolDProcess>(cfg, i, cache));
    Simulator::Options opts;
    opts.strict_one_op = true;
    opts.n_units = cfg.n;
    return run_simulation(std::move(procs), std::move(faults), opts);
  };
  auto faults = [] {
    // Crashes landing in work rounds AND mid-agreement-broadcast (half the
    // audience cut), so both merge paths are exercised.
    return std::make_unique<ScheduledFaults>(std::vector<ScheduledFaults::Entry>{
        {2, 3, CrashPlan{false, 0}},
        {5, 9, CrashPlan{true, 5}},
        {7, 11, CrashPlan{true, 2}},
    });
  };
  RunMetrics with = run_with(true, faults());
  RunMetrics without = run_with(false, faults());
  EXPECT_EQ(with.work_total, without.work_total);
  EXPECT_EQ(with.messages_total, without.messages_total);
  EXPECT_EQ(with.last_retire_round, without.last_retire_round);
  EXPECT_EQ(with.stepped_rounds, without.stepped_rounds);
  EXPECT_EQ(with.crashes, without.crashes);
  EXPECT_EQ(with.unit_multiplicity, without.unit_multiplicity);
  EXPECT_EQ(with.work_by_proc, without.work_by_proc);
  EXPECT_EQ(with.messages_by_proc, without.messages_by_proc);
  EXPECT_EQ(with.messages_by_kind, without.messages_by_kind);

  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    RunMetrics a = run_with(true, std::make_unique<RandomFaults>(0.05, 11, seed));
    RunMetrics b = run_with(false, std::make_unique<RandomFaults>(0.05, 11, seed));
    EXPECT_EQ(a.work_total, b.work_total) << "seed " << seed;
    EXPECT_EQ(a.messages_total, b.messages_total) << "seed " << seed;
    EXPECT_EQ(a.last_retire_round, b.last_retire_round) << "seed " << seed;
    EXPECT_EQ(a.work_by_proc, b.work_by_proc) << "seed " << seed;
  }
}

TEST_P(ProtocolDRandom, RandomSchedulesAlwaysComplete) {
  DoAllConfig cfg{120, 12};
  RunResult r = run_do_all("D", cfg, std::make_unique<RandomFaults>(0.05, 11, GetParam()));
  ASSERT_TRUE(r.ok()) << r.violation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolDRandom, ::testing::Range(0u, 25u));

// --- the merge cache when the serving thread changes ------------------------
//
// The round-parallel core (sim/round_pool.h) evaluates recipients on several
// threads, so AgreeMergeCache keeps per-serving-thread lanes.  These tests
// pin the contract directly: each lane independently reproduces the naive
// fold over its own ascending-id range, and a requester below a lane's
// pinning self falls back (returns false) instead of reading a suffix entry
// the lane never built.

// One synthetic agreement round: t messages with distinct views, sender 6
// silent (a crashed broadcaster every recipient agrees is silent).
struct FoldFixture {
  static constexpr int t = 12;
  static constexpr std::size_t n = 48;
  std::vector<std::unique_ptr<AgreeMsg>> owned;
  std::vector<const AgreeMsg*> table;  // by sender; null = silent

  FoldFixture() {
    table.assign(t, nullptr);
    for (int i = 0; i < t; ++i) {
      if (i == 6) continue;
      DynBitset s(n, true);
      s.reset(static_cast<std::size_t>(i));      // each sender knows unit i done
      s.reset(static_cast<std::size_t>(i + 12));
      DynBitset tv(t);
      tv.set(static_cast<std::size_t>(i));       // and believes itself alive
      tv.set(static_cast<std::size_t>((i + 1) % t));
      owned.push_back(std::make_unique<AgreeMsg>(1, std::move(s), std::move(tv), false));
      table[static_cast<std::size_t>(i)] = owned.back().get();
    }
  }

  // What recipient `self` hears: everyone's message but its own.
  std::vector<const AgreeMsg*> seen_for(int self) const {
    std::vector<const AgreeMsg*> seen = table;
    seen[static_cast<std::size_t>(self)] = nullptr;
    return seen;
  }

  // The naive merge the cache must reproduce bit for bit.
  void naive(int self, DynBitset& sn, DynBitset& tn) const {
    for (int i = 0; i < t; ++i) {
      if (i == self) continue;
      if (const AgreeMsg* m = table[static_cast<std::size_t>(i)]) {
        sn &= m->s_left;
        tn |= m->t_alive;
      }
    }
  }
};

TEST(ProtocolDParallel, MergeCacheLanesMatchNaiveAcrossServingThreads) {
  const FoldFixture fx;
  AgreeMergeCache cache;
  const Round round{7u};
  // Shard the recipients like the pool would: [0,6) on this thread, [6,12)
  // on a second -- each lane pins its own view from its lowest requester and
  // serves ascending ids.  Every fold must hit the fast path and match the
  // naive merge exactly.
  auto serve = [&](int lo, int hi, std::vector<int>& fell_back) {
    for (int self = lo; self < hi; ++self) {
      DynBitset sn(fx.n, true), tn(fx.t);
      DynBitset want_sn(fx.n, true), want_tn(fx.t);
      if (!cache.fold(self, round, 1, fx.seen_for(self), sn, tn)) {
        fell_back.push_back(self);
        continue;
      }
      fx.naive(self, want_sn, want_tn);
      EXPECT_EQ(sn, want_sn) << "self " << self;
      EXPECT_EQ(tn, want_tn) << "self " << self;
    }
  };
  std::vector<int> fb_low, fb_high;
  std::thread high([&] { serve(6, FoldFixture::t, fb_high); });
  serve(0, 6, fb_low);
  high.join();
  EXPECT_TRUE(fb_low.empty());
  EXPECT_TRUE(fb_high.empty());
}

TEST(ProtocolDParallel, MergeCacheRequesterBelowLanePinFallsBack) {
  const FoldFixture fx;
  AgreeMergeCache cache;
  const Round round{7u};
  // This lane's first requester is 5: its slot is the lane's undefined one
  // and the suffix table exists only above it.
  DynBitset sn(fx.n, true), tn(fx.t);
  ASSERT_TRUE(cache.fold(5, round, 1, fx.seen_for(5), sn, tn));
  // A lower id on the SAME thread (out of ascending order -- the pool never
  // does this, but the cache must stay safe if a caller does) returns false
  // with the views untouched.
  DynBitset sn2(fx.n, true), tn2(fx.t);
  const DynBitset sn2_before = sn2, tn2_before = tn2;
  EXPECT_FALSE(cache.fold(2, round, 1, fx.seen_for(2), sn2, tn2));
  EXPECT_EQ(sn2, sn2_before);
  EXPECT_EQ(tn2, tn2_before);
  // Higher ids keep working, and still match naive.
  DynBitset sn3(fx.n, true), tn3(fx.t);
  DynBitset want_sn(fx.n, true), want_tn(fx.t);
  ASSERT_TRUE(cache.fold(9, round, 1, fx.seen_for(9), sn3, tn3));
  fx.naive(9, want_sn, want_tn);
  EXPECT_EQ(sn3, want_sn);
  EXPECT_EQ(tn3, want_tn);
}

// End to end: the cache under a genuinely sharded simulator round must stay
// observably invisible -- cached + sharded vs naive + serial, identical
// metrics -- including the mid-broadcast cuts that force slow-path merges.
TEST(ProtocolDParallel, MergeCacheInvisibleUnderShardedRounds) {
  const DoAllConfig cfg{96, 12};
  auto faults = [] {
    return std::make_unique<ScheduledFaults>(std::vector<ScheduledFaults::Entry>{
        {2, 3, CrashPlan{false, 0}},
        {5, 9, CrashPlan{true, 5}},
        {7, 11, CrashPlan{true, 2}},
    });
  };
  auto run_with = [&](bool cached, int threads) {
    auto cache = cached ? std::make_shared<AgreeMergeCache>() : nullptr;
    std::vector<std::unique_ptr<IProcess>> procs;
    for (int i = 0; i < cfg.t; ++i)
      procs.push_back(std::make_unique<ProtocolDProcess>(cfg, i, cache));
    Simulator::Options opts;
    opts.strict_one_op = true;
    opts.n_units = cfg.n;
    Simulator sim(std::move(procs), faults(), opts);
    // min_steps_per_shard = 1 so even t = 12 rounds genuinely shard.
    RoundPool pool(threads, 1);
    if (threads > 1) sim.set_step_executor(&pool);
    return sim.run();
  };
  const RunMetrics naive_serial = run_with(false, 1);
  for (int threads : {2, 4}) {
    const RunMetrics cached_sharded = run_with(true, threads);
    EXPECT_EQ(cached_sharded.work_total, naive_serial.work_total) << threads;
    EXPECT_EQ(cached_sharded.messages_total, naive_serial.messages_total) << threads;
    EXPECT_EQ(cached_sharded.last_retire_round, naive_serial.last_retire_round) << threads;
    EXPECT_EQ(cached_sharded.stepped_rounds, naive_serial.stepped_rounds) << threads;
    EXPECT_EQ(cached_sharded.crashes, naive_serial.crashes) << threads;
    EXPECT_EQ(cached_sharded.unit_multiplicity, naive_serial.unit_multiplicity) << threads;
    EXPECT_EQ(cached_sharded.work_by_proc, naive_serial.work_by_proc) << threads;
    EXPECT_EQ(cached_sharded.messages_by_proc, naive_serial.messages_by_proc) << threads;
    EXPECT_EQ(cached_sharded.messages_by_kind, naive_serial.messages_by_kind) << threads;
  }
}

}  // namespace
}  // namespace dowork
