// Channel-fabric primitives (src/substrate/fabric.h): the MPSC result ring
// under real producer threads, the worker command mailbox's sticky exit,
// and the cooperative cancel token.
#include "substrate/fabric.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

namespace dowork::substrate {
namespace {

TEST(FabricTest, MpscRingSingleProducerFifo) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ring.push(i);
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.pop(v));
}

TEST(FabricTest, MpscRingCapacityRoundsUpToPow2) {
  // min_capacity 5 -> 8 slots: six items fit without any consumer progress.
  MpscRing<int> ring(5);
  for (int i = 0; i < 6; ++i) ring.push(i);
  int v = -1;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(ring.pop(v));
    EXPECT_EQ(v, i);
  }
}

TEST(FabricTest, MpscRingMultiProducerStress) {
  // Four producers, a thousand items each, through an 8-slot ring: forces
  // many laps and the full-ring backpressure spin while the consumer
  // drains concurrently.  Checks per-producer FIFO and global accounting.
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 1000;
  MpscRing<std::uint64_t> ring(8);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i)
        ring.push((static_cast<std::uint64_t>(p) << 32) | i);
    });

  std::vector<std::uint64_t> next(kProducers, 0);
  std::uint64_t total = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (total < kProducers * kPerProducer) {
    std::uint64_t v = 0;
    if (!ring.pop(v)) {
      ASSERT_TRUE(ring.wait_nonempty_until(deadline)) << "ring starved";
      continue;
    }
    const auto p = static_cast<std::size_t>(v >> 32);
    const std::uint64_t seq = v & 0xffffffffu;
    ASSERT_LT(p, static_cast<std::size_t>(kProducers));
    EXPECT_EQ(seq, next[p]) << "producer " << p << " items reordered";
    ++next[p];
    ++total;
  }
  for (auto& th : producers) th.join();
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next[p], kPerProducer);
  std::uint64_t v = 0;
  EXPECT_FALSE(ring.pop(v));
}

TEST(FabricTest, MpscRingWaitTimesOutWhenEmpty) {
  MpscRing<int> ring(2);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  EXPECT_FALSE(ring.wait_nonempty_until(deadline));
}

TEST(FabricTest, MpscRingWaitSeesConcurrentPush) {
  MpscRing<int> ring(2);
  std::thread producer([&ring] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ring.push(7);
  });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  EXPECT_TRUE(ring.wait_nonempty_until(deadline));
  int v = 0;
  EXPECT_TRUE(ring.pop(v));
  EXPECT_EQ(v, 7);
  producer.join();
}

TEST(FabricTest, WorkerChannelDeliversStep) {
  WorkerChannel ch;
  ch.post(WorkerCmd::kStep);
  EXPECT_EQ(ch.take(), WorkerCmd::kStep);
}

TEST(FabricTest, WorkerChannelExitIsSticky) {
  WorkerChannel ch;
  ch.post(WorkerCmd::kExit);
  // A later step assignment must not mask the shutdown order...
  ch.post(WorkerCmd::kStep);
  EXPECT_EQ(ch.take(), WorkerCmd::kExit);
  // ...and exit stays consumable forever (take leaves it in place).
  EXPECT_EQ(ch.take(), WorkerCmd::kExit);
}

TEST(FabricTest, WorkerChannelStepThenExitKeepsExit) {
  WorkerChannel ch;
  ch.post(WorkerCmd::kStep);
  ch.post(WorkerCmd::kExit);  // overwrites the pending step: shutdown wins
  EXPECT_EQ(ch.take(), WorkerCmd::kExit);
}

TEST(FabricTest, RunCancelledFalseOutsideWorkers) {
  // The main thread (and the simulator backend) never has a token.
  EXPECT_FALSE(run_cancelled());
}

TEST(FabricTest, RunCancelledTracksInstalledToken) {
  CancelToken token;
  detail::set_cancel_token(&token);
  EXPECT_FALSE(run_cancelled());
  token.cancel();
  EXPECT_TRUE(run_cancelled());
  detail::set_cancel_token(nullptr);
  EXPECT_FALSE(run_cancelled());
}

}  // namespace
}  // namespace dowork::substrate
