// Tests for the coordinator variant of Protocol D (Section 4, closing
// remark): 2(t-1) failure-free messages per agreement phase, reactive
// fallback to broadcast agreement when the coordinator dies.
#include "protocols/protocol_d_coord.h"

#include <gtest/gtest.h>

#include "core/runner.h"

namespace dowork {
namespace {

TEST(ProtocolDCoord, FailureFreeUsesTwoTMinusOneMessages) {
  DoAllConfig cfg{64, 8};
  RunResult r = run_do_all("D_coord", cfg, std::make_unique<NoFaults>());
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_EQ(r.metrics.work_total, 64u);
  // One agreement phase: (t-1) reports + (t-1) final-view messages.
  EXPECT_EQ(r.metrics.messages_total, 2u * 7u);
  // Time: n/t work rounds + the constant agreement window.
  EXPECT_LE(r.metrics.last_retire_round, Round{64u / 8u + 10u});
  EXPECT_EQ(r.metrics.max_concurrent_workers, 8u);
}

TEST(ProtocolDCoord, QuadraticallyFewerMessagesThanBroadcastD) {
  DoAllConfig cfg{128, 32};
  RunResult bcast = run_do_all("D", cfg, std::make_unique<NoFaults>());
  RunResult coord = run_do_all("D_coord", cfg, std::make_unique<NoFaults>());
  ASSERT_TRUE(bcast.ok());
  ASSERT_TRUE(coord.ok());
  EXPECT_EQ(bcast.metrics.messages_total, 2u * 32u * 31u);  // 2t(t-1)
  EXPECT_EQ(coord.metrics.messages_total, 2u * 31u);        // 2(t-1)
}

TEST(ProtocolDCoord, SingleProcess) {
  DoAllConfig cfg{10, 1};
  RunResult r = run_do_all("D_coord", cfg, std::make_unique<NoFaults>());
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_EQ(r.metrics.messages_total, 0u);
}

TEST(ProtocolDCoord, WorkerCrashIsAbsorbedByTheCoordinator) {
  DoAllConfig cfg{64, 8};
  // Process 3 dies mid work phase; the coordinator times its report out and
  // excludes it from the final view; survivors redo its slice.
  std::vector<ScheduledFaults::Entry> entries{{3, 2, CrashPlan{true, 0}}};
  RunResult r = run_do_all("D_coord", cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_LE(r.metrics.work_total, 64u + 8u);
}

TEST(ProtocolDCoord, CoordinatorCrashBeforeFinalTriggersFallback) {
  DoAllConfig cfg{64, 8};
  // Process 0 (phase-1 coordinator) dies on its last work unit, before it
  // can broadcast the final view; everyone falls back to broadcast
  // agreement and the run completes.
  std::vector<ScheduledFaults::Entry> entries{{0, 8, CrashPlan{true, 0}}};
  RunResult r = run_do_all("D_coord", cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_EQ(r.metrics.crashes, 1u);
  // Fallback pays broadcast-agreement messages.
  EXPECT_GT(r.metrics.messages_total, 2u * 7u);
}

TEST(ProtocolDCoord, CoordinatorCrashMidFinalBroadcastStaysConsistent) {
  DoAllConfig cfg{64, 8};
  // The coordinator performs 8 units (actions 1..8), sends nothing at the
  // agreement entry (it collects), then its 9th action is the final-view
  // broadcast: crash it there, delivering to 3 of 7 recipients.  The
  // adopters answer the fallback and every survivor leaves with one view.
  std::vector<ScheduledFaults::Entry> entries{{0, 9, CrashPlan{false, 3}}};
  RunResult r = run_do_all("D_coord", cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_EQ(r.metrics.crashes, 1u);
}

TEST(ProtocolDCoord, MajorityLossRevertsToProtocolA) {
  DoAllConfig cfg{64, 8};
  std::vector<ScheduledFaults::Entry> entries;
  for (int p = 1; p < 6; ++p) entries.push_back({p, 2, CrashPlan{true, 0}});
  RunResult r = run_do_all("D_coord", cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_GT(r.metrics.messages_of(MsgKind::kCheckpoint), 0u);  // Protocol A traffic
}

struct SweepCase {
  std::int64_t n;
  int t;
  int fault_mode;
  unsigned seed;
};

class DCoordSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(DCoordSweep, AlwaysCompletes) {
  const SweepCase& c = GetParam();
  DoAllConfig cfg{c.n, c.t};
  std::unique_ptr<FaultInjector> faults;
  switch (c.fault_mode) {
    case 1: faults = std::make_unique<WorkCascadeFaults>(1, c.t - 1, 0); break;
    case 2: faults = std::make_unique<WorkCascadeFaults>(3, c.t - 1, 2); break;
    case 3: faults = std::make_unique<RandomFaults>(0.05, c.t - 1, c.seed); break;
    default: faults = std::make_unique<NoFaults>(); break;
  }
  RunResult r = run_do_all("D_coord", cfg, std::move(faults));
  ASSERT_TRUE(r.ok()) << r.violation << " (" << cfg.to_string() << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DCoordSweep,
    ::testing::Values(SweepCase{16, 4, 0, 0}, SweepCase{16, 4, 1, 0}, SweepCase{16, 4, 2, 0},
                      SweepCase{16, 4, 3, 1}, SweepCase{100, 10, 1, 0}, SweepCase{100, 10, 2, 0},
                      SweepCase{100, 10, 3, 2}, SweepCase{64, 16, 1, 0}, SweepCase{64, 16, 3, 3},
                      SweepCase{8, 16, 1, 0}, SweepCase{1, 4, 1, 0}, SweepCase{33, 11, 2, 0},
                      SweepCase{33, 11, 3, 6}, SweepCase{128, 2, 1, 0}, SweepCase{40, 3, 3, 8}));

class DCoordRandom : public ::testing::TestWithParam<unsigned> {};

TEST_P(DCoordRandom, RandomSchedulesAlwaysComplete) {
  DoAllConfig cfg{120, 12};
  RunResult r = run_do_all("D_coord", cfg, std::make_unique<RandomFaults>(0.05, 11, GetParam()));
  ASSERT_TRUE(r.ok()) << r.violation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DCoordRandom, ::testing::Range(0u, 25u));

}  // namespace
}  // namespace dowork
