#include "agreement/byzantine.h"

#include <gtest/gtest.h>

namespace dowork {
namespace {

TEST(Byzantine, FailureFreeAllProtocolsDecideGeneralsValue) {
  for (const char* proto : {"A", "B", "C"}) {
    ByzantineConfig cfg;
    cfg.n_procs = 24;
    cfg.t_faults = 5;
    cfg.value = 7;
    cfg.protocol = proto;
    ByzantineResult r = run_byzantine(cfg, std::make_unique<NoFaults>());
    EXPECT_TRUE(r.agreement) << proto;
    EXPECT_TRUE(r.validity) << proto;
    EXPECT_FALSE(r.general_crashed) << proto;
    for (int i = 0; i < cfg.n_procs; ++i) {
      ASSERT_TRUE(r.decisions[static_cast<std::size_t>(i)].has_value()) << proto << " proc " << i;
      EXPECT_EQ(*r.decisions[static_cast<std::size_t>(i)], 7) << proto << " proc " << i;
    }
  }
}

TEST(Byzantine, GeneralCrashesMidBroadcastStillAgree) {
  // The general reaches only 2 of the senders with its value; agreement must
  // still hold (validity is vacuous).
  for (const char* proto : {"A", "B", "C"}) {
    ByzantineConfig cfg;
    cfg.n_procs = 16;
    cfg.t_faults = 4;
    cfg.value = 9;
    cfg.protocol = proto;
    std::vector<ScheduledFaults::Entry> entries{{0, 1, CrashPlan{false, 2}}};
    ByzantineResult r =
        run_byzantine(cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
    EXPECT_TRUE(r.general_crashed) << proto;
    EXPECT_TRUE(r.agreement) << proto;
    EXPECT_TRUE(r.validity) << proto;  // vacuously
  }
}

TEST(Byzantine, GeneralCrashReachingNobodyDecidesDefault) {
  ByzantineConfig cfg;
  cfg.n_procs = 12;
  cfg.t_faults = 3;
  cfg.value = 5;
  cfg.protocol = "B";
  std::vector<ScheduledFaults::Entry> entries{{0, 1, CrashPlan{false, 0}}};
  ByzantineResult r = run_byzantine(cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
  EXPECT_TRUE(r.general_crashed);
  EXPECT_TRUE(r.agreement);
  // Nobody heard 5: all survivors decide the default 0.
  for (int i = 1; i < cfg.n_procs; ++i)
    if (r.decisions[static_cast<std::size_t>(i)])
      EXPECT_EQ(*r.decisions[static_cast<std::size_t>(i)], 0);
}

TEST(Byzantine, SenderCascadeCrashesKeepAgreement) {
  for (const char* proto : {"A", "B", "C"}) {
    ByzantineConfig cfg;
    cfg.n_procs = 20;
    cfg.t_faults = 4;
    cfg.value = 3;
    cfg.protocol = proto;
    // Every active sender dies after informing 2 processes.
    ByzantineResult r = run_byzantine(
        cfg, std::make_unique<WorkCascadeFaults>(2, cfg.t_faults, /*deliver_prefix=*/1));
    EXPECT_TRUE(r.agreement) << proto;
    EXPECT_TRUE(r.validity) << proto;
  }
}

TEST(Byzantine, MessageComplexityMatchesSectionFive) {
  // Via B: O(n + t sqrt t) messages; via C: O(n + t log t).
  ByzantineConfig cfg;
  cfg.n_procs = 64;
  cfg.t_faults = 15;  // 16 senders
  cfg.value = 2;

  cfg.protocol = "B";
  ByzantineResult rb = run_byzantine(cfg, std::make_unique<NoFaults>());
  ASSERT_TRUE(rb.agreement && rb.validity);
  const std::uint64_t t1 = 16, s = 4;
  EXPECT_LE(rb.metrics.messages_total, 64u + 10 * t1 * s + 10 * s * s + t1);

  cfg.protocol = "C";
  ByzantineResult rc = run_byzantine(cfg, std::make_unique<NoFaults>());
  ASSERT_TRUE(rc.agreement && rc.validity);
  EXPECT_LE(rc.metrics.messages_total, 64u + 8 * t1 * 4 + 4 * t1 + t1);
}

class ByzantineRandom : public ::testing::TestWithParam<unsigned> {};

TEST_P(ByzantineRandom, RandomCrashSchedulesPreserveAgreementAndValidity) {
  for (const char* proto : {"A", "B", "C"}) {
    ByzantineConfig cfg;
    cfg.n_procs = 18;
    cfg.t_faults = 5;
    cfg.value = 11;
    cfg.protocol = proto;
    ByzantineResult r = run_byzantine(
        cfg, std::make_unique<RandomFaults>(0.05, cfg.t_faults, GetParam()));
    EXPECT_TRUE(r.agreement) << proto << " seed " << GetParam();
    EXPECT_TRUE(r.validity) << proto << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ByzantineRandom, ::testing::Range(0u, 15u));

TEST(Byzantine, RejectsBadConfigs) {
  ByzantineConfig cfg;
  cfg.n_procs = 4;
  cfg.t_faults = 4;  // t+1 senders > n
  EXPECT_THROW(run_byzantine(cfg, std::make_unique<NoFaults>()), std::invalid_argument);
}

}  // namespace
}  // namespace dowork
