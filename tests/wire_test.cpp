// Wire codec for the socket substrate (src/substrate/wire.h): every frame
// kind and every payload of the closed set round-trips bit-exactly, the
// incremental FrameReader reassembles frames from arbitrary byte splits,
// a mid-write kill's torn prefix is classified (mid_frame) rather than
// erroring, and malformed bytes are structured WireErrors -- the codec is
// the trust boundary between the coordinator and its worker processes.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "protocols/baseline_checkpoint.h"
#include "protocols/protocol_a.h"
#include "protocols/protocol_b.h"
#include "protocols/protocol_c.h"
#include "protocols/protocol_d.h"
#include "substrate/wire.h"
#include "util/bitset.h"

namespace dowork::substrate::wire {
namespace {

// Frames a blob through the reader and hands back (type, body).  Feeding
// byte-at-a-time exercises every resume point of the incremental parser.
std::pair<FrameType, std::string> read_one(const std::string& frame, bool byte_at_a_time) {
  FrameReader reader;
  if (byte_at_a_time) {
    for (char c : frame) reader.feed(&c, 1);
  } else {
    reader.feed(frame.data(), frame.size());
  }
  FrameType type{};
  std::string body;
  EXPECT_TRUE(reader.next(&type, &body));
  EXPECT_FALSE(reader.mid_frame());
  return {type, body};
}

TEST(WireTest, HelloRoundTripsIncludingPromotedWake) {
  HelloMsg h;
  h.proc = 11;
  h.wake0 = Round::pow2(300) + Round{7};  // far past u64: the limb encoding
  h.known0 = 123456789;
  for (bool trickle : {false, true}) {
    auto [type, body] = read_one(encode_hello(h), trickle);
    EXPECT_EQ(type, FrameType::kHello);
    const HelloMsg got = decode_hello(body);
    EXPECT_EQ(got.proc, 11);
    EXPECT_EQ(got.wake0, h.wake0);
    EXPECT_EQ(got.known0, 123456789);
  }
}

TEST(WireTest, StepAndKillAndExitRoundTrip) {
  {
    auto [type, body] = read_one(encode_step(Round{42}), true);
    EXPECT_EQ(type, FrameType::kStep);
    EXPECT_EQ(decode_step(body), Round{42});
  }
  {
    auto [type, body] = read_one(encode_kill(17), true);
    EXPECT_EQ(type, FrameType::kKill);
    EXPECT_EQ(decode_kill(body), 17u);
  }
  {
    auto [type, body] = read_one(encode_exit(), true);
    EXPECT_EQ(type, FrameType::kExit);
    EXPECT_TRUE(body.empty());
  }
}

// One deliver round-trip per payload of the closed set, including the
// zero-field payloads (GoAhead, PollC, PollReplyC) and the null payload.
TEST(WireTest, DeliverRoundTripsEveryPayloadKind) {
  ViewC view;
  view.retired = {1, 0, 0, 1};
  view.point0 = 9;
  view.round0 = Round::pow2(90);  // Protocol C's exponential deadlines
  view.point = {3, -1};
  view.round = {Round{5}, Round::pow2(70) + Round{1}};

  DynBitset s(5);
  s.set(0);
  s.set(4);
  DynBitset alive(5);
  for (std::size_t i = 0; i < 5; ++i) alive.set(i);

  struct Case {
    std::shared_ptr<const Payload> payload;
    MsgKind kind;
  };
  const std::vector<Case> cases = {
      {nullptr, MsgKind::kOther},
      {std::make_shared<CkptPartial>(4), MsgKind::kCheckpoint},
      {std::make_shared<CkptFull>(4, 2), MsgKind::kCheckpoint},
      {std::make_shared<GoAhead>(), MsgKind::kGoAhead},
      {std::make_shared<OrdinaryC>(view), MsgKind::kOrdinary},
      {std::make_shared<PollC>(), MsgKind::kPoll},
      {std::make_shared<PollReplyC>(), MsgKind::kPollReply},
      {std::make_shared<AgreeMsg>(3, s, alive, true), MsgKind::kAgreement},
      {std::make_shared<BaselineCkpt>(77), MsgKind::kCheckpoint},
  };
  for (const Case& c : cases) {
    auto [type, body] =
        read_one(encode_deliver(/*from=*/2, c.kind, Round{10}, c.payload.get()), false);
    ASSERT_EQ(type, FrameType::kDeliver);
    const Envelope e = decode_deliver(body, /*self=*/6);
    EXPECT_EQ(e.from, 2);
    EXPECT_EQ(e.to, 6);
    EXPECT_EQ(e.kind, c.kind);
    EXPECT_EQ(e.sent_round, Round{10});
    if (c.payload == nullptr) {
      EXPECT_EQ(e.payload, nullptr);
      continue;
    }
    ASSERT_NE(e.payload, nullptr);
    // Exact dynamic type survives (payload_as is typeid-exact).
    EXPECT_EQ(typeid(*e.payload).name(), std::string(typeid(*c.payload).name()));
  }
}

TEST(WireTest, DeliverPreservesPayloadFields) {
  const auto full = std::make_shared<CkptFull>(13, 5);
  auto [type, body] =
      read_one(encode_deliver(0, MsgKind::kCheckpoint, Round{1}, full.get()), false);
  const Envelope e = decode_deliver(body, 3);
  const auto* got = e.as<CkptFull>();
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->c, 13);
  EXPECT_EQ(got->g, 5);

  DynBitset s(70);  // multi-word bitset with a ragged tail
  s.set(0);
  s.set(63);
  s.set(69);
  DynBitset alive(70);
  alive.set(7);
  const auto agree = std::make_shared<AgreeMsg>(2, s, alive, false);
  auto [t2, b2] = read_one(encode_deliver(1, MsgKind::kAgreement, Round{4}, agree.get()), false);
  const Envelope e2 = decode_deliver(b2, 0);
  const auto* ga = e2.as<AgreeMsg>();
  ASSERT_NE(ga, nullptr);
  EXPECT_EQ(ga->phase, 2);
  EXPECT_EQ(ga->done, false);
  ASSERT_EQ(ga->s_left.size(), 70u);
  EXPECT_TRUE(ga->s_left.test(0));
  EXPECT_TRUE(ga->s_left.test(63));
  EXPECT_TRUE(ga->s_left.test(69));
  EXPECT_FALSE(ga->s_left.test(1));
  EXPECT_TRUE(ga->t_alive.test(7));
}

TEST(WireTest, ReplyRoundTripsWorkSendsAndAudiences) {
  Action a;
  a.work = 41;
  auto [type0, body0] = read_one(encode_reply(a, Round{8}, /*known=*/40), true);
  EXPECT_EQ(type0, FrameType::kReply);
  ReplyMsg m0 = decode_reply(body0);
  ASSERT_TRUE(m0.action.work.has_value());
  EXPECT_EQ(*m0.action.work, 41);
  EXPECT_TRUE(m0.action.sends.empty());
  EXPECT_FALSE(m0.action.terminate);
  EXPECT_EQ(m0.next_wake, Round{8});
  EXPECT_EQ(m0.known, 40);

  // Every audience representation: single id, range, and a max-audience
  // shared bitset (all t processes).
  Action b;
  b.terminate = true;
  DynBitset everyone(64);
  for (std::size_t i = 0; i < 64; ++i) everyone.set(i);
  b.sends.push_back({RecipientSet{3}, MsgKind::kPollReply, std::make_shared<PollReplyC>()});
  b.sends.push_back(
      {RecipientSet{IdRange{4, 9}}, MsgKind::kCheckpoint, std::make_shared<CkptPartial>(2)});
  b.sends.push_back({RecipientSet{make_recipient_bits(everyone)}, MsgKind::kAgreement,
                     std::make_shared<AgreeMsg>(1, everyone, everyone, false)});
  auto [type1, body1] = read_one(encode_reply(b, Round{9}, 0), false);
  ReplyMsg m1 = decode_reply(body1);
  EXPECT_TRUE(m1.action.terminate);
  ASSERT_EQ(m1.action.sends.size(), 3u);
  EXPECT_EQ(m1.action.sends[0].to.size(), 1u);
  EXPECT_TRUE(m1.action.sends[0].to.contains(3));
  EXPECT_EQ(m1.action.sends[1].to.size(), 5u);
  EXPECT_TRUE(m1.action.sends[1].to.contains(4));
  EXPECT_TRUE(m1.action.sends[1].to.contains(8));
  EXPECT_FALSE(m1.action.sends[1].to.contains(9));
  EXPECT_EQ(m1.action.sends[2].to.size(), 64u);
  EXPECT_TRUE(m1.action.sends[2].to.contains(63));
}

TEST(WireTest, ReplyPreservesPayloadSharingAcrossSends) {
  // The strict one-broadcast check counts distinct payload OBJECTS, so a
  // payload shared by several Outgoing entries must decode back to one
  // object (the back-reference encoding), never to per-send copies.
  Action a;
  const auto shared = std::make_shared<CkptFull>(3, 1);
  a.sends.push_back({RecipientSet{IdRange{0, 4}}, MsgKind::kCheckpoint, shared});
  a.sends.push_back({RecipientSet{IdRange{8, 12}}, MsgKind::kCheckpoint, shared});
  a.sends.push_back({RecipientSet{5}, MsgKind::kPollReply, std::make_shared<PollReplyC>()});
  auto [type, body] = read_one(encode_reply(a, Round{1}, 0), false);
  ReplyMsg m = decode_reply(body);
  ASSERT_EQ(m.action.sends.size(), 3u);
  EXPECT_EQ(m.action.sends[0].payload.get(), m.action.sends[1].payload.get());
  EXPECT_NE(m.action.sends[0].payload.get(), m.action.sends[2].payload.get());
}

TEST(WireTest, FrameReaderReassemblesBackToBackFramesFromAnySplit) {
  const std::string stream =
      encode_step(Round{1}) + encode_exit() + encode_kill(3) + encode_step(Round::pow2(80));
  // Split the stream at every position: both halves fed separately must
  // yield the identical frame sequence.
  for (std::size_t split = 0; split <= stream.size(); ++split) {
    FrameReader reader;
    reader.feed(stream.data(), split);
    std::vector<FrameType> types;
    FrameType type{};
    std::string body;
    while (reader.next(&type, &body)) types.push_back(type);
    reader.feed(stream.data() + split, stream.size() - split);
    while (reader.next(&type, &body)) types.push_back(type);
    ASSERT_EQ(types.size(), 4u) << "split at " << split;
    EXPECT_EQ(types[0], FrameType::kStep);
    EXPECT_EQ(types[1], FrameType::kExit);
    EXPECT_EQ(types[2], FrameType::kKill);
    EXPECT_EQ(types[3], FrameType::kStep);
    EXPECT_FALSE(reader.mid_frame());
  }
}

TEST(WireTest, TornFrameIsClassifiedNotErrored) {
  // A mid-write SIGKILL leaves the first N bytes of a frame on the stream.
  // Every proper prefix must parse to "no frame yet, mid-frame pending" --
  // exactly what the coordinator's reader uses to discard ghost bytes of a
  // mid-broadcast crash.
  const std::string frame = encode_reply(Action{}, Round{5}, 2);
  for (std::size_t torn = 1; torn < frame.size(); ++torn) {
    FrameReader reader;
    reader.feed(frame.data(), torn);
    FrameType type{};
    std::string body;
    EXPECT_FALSE(reader.next(&type, &body)) << "torn at " << torn;
    EXPECT_TRUE(reader.mid_frame());
    EXPECT_EQ(reader.pending(), torn);
  }
}

TEST(WireTest, MalformedBytesAreStructuredErrors) {
  // Zero-length frame.
  {
    FrameReader reader;
    const char zeros[5] = {0, 0, 0, 0, 1};
    reader.feed(zeros, sizeof zeros);
    FrameType type{};
    std::string body;
    EXPECT_THROW(reader.next(&type, &body), WireError);
  }
  // Unknown frame type byte.
  {
    FrameReader reader;
    const char bad[5] = {1, 0, 0, 0, 99};
    reader.feed(bad, sizeof bad);
    FrameType type{};
    std::string body;
    EXPECT_THROW(reader.next(&type, &body), WireError);
  }
  // Truncated body and trailing garbage at the decoder layer.
  EXPECT_THROW(decode_hello(std::string_view("ab")), WireError);
  {
    auto [type, body] = read_one(encode_step(Round{3}), false);
    body.push_back('\0');
    EXPECT_THROW(decode_step(body), WireError);
  }
}

TEST(WireTest, UnknownPayloadTypeIsAStructuredError) {
  // The closed-set policy: a payload outside the roster must be an explicit
  // WireError at ENCODE time (a new protocol opting into the socket backend
  // extends the codec first), never silently dropped bytes.
  struct Mystery final : Payload {};
  const Mystery m;
  EXPECT_THROW(encode_deliver(0, MsgKind::kOther, Round{1}, &m), WireError);
  Action a;
  a.sends.push_back({RecipientSet{1}, MsgKind::kOther, std::make_shared<Mystery>()});
  EXPECT_THROW(encode_reply(a, Round{1}, 0), WireError);
}

}  // namespace
}  // namespace dowork::substrate::wire
