// Tests for the network-fault plane (sim/network_model.h): the NetSpec
// grammar, the NetworkModel oracle, both substrates' delivery behavior under
// latency / loss / partitions, the no-op identity that keeps crash-only runs
// byte-for-bit unchanged, and the observable's network visibility.
#include "sim/network_model.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "async/protocol_a_async.h"
#include "core/runner.h"
#include "harness/fault_spec.h"

namespace dowork {
namespace {

using harness::FaultSpec;

// --- NetSpec value semantics ------------------------------------------------

TEST(NetSpec, DefaultIsNoop) {
  NetSpec spec;
  EXPECT_TRUE(spec.is_noop());
  NetworkModel model(spec);
  EXPECT_TRUE(model.is_noop());
  EXPECT_FALSE(model.has_latency());
  EXPECT_FALSE(model.has_drop());
  EXPECT_FALSE(model.has_partitions());
}

TEST(NetSpec, RoundTripsEveryComponentCombination) {
  const std::vector<NetSpec> specs = {
      NetSpec::latency(1, 20, 7),
      NetSpec::lossy(0.05, 3),
      NetSpec::lossy(1.0 / 3.0, 0),  // needs full double precision
      NetSpec::partition({{8, 40, 4}}, 0),
      NetSpec::partition({{4, 24, 8}, {48, 64, 2}}, 9),
      [] {
        NetSpec s = NetSpec::latency(2, 5, 11);
        s.drop = 0.1;
        s.partitions = {{10, 20, 3}};
        return s;
      }(),
  };
  for (const NetSpec& spec : specs) {
    const std::string text = spec.to_string();
    EXPECT_EQ(NetSpec::parse(text), spec) << text;
    EXPECT_EQ(NetSpec::parse(text).to_string(), text);
  }
}

TEST(NetSpec, ExactStrings) {
  EXPECT_EQ(NetSpec::latency(1, 20, 7).to_string(), "(lat=1..20,seed=7)");
  EXPECT_EQ(NetSpec::lossy(0.05, 3).to_string(), "(drop=0.05,seed=3)");
  EXPECT_EQ(NetSpec::partition({{8, 40, 4}}, 0).to_string(), "(part=8..40@4,seed=0)");
  EXPECT_EQ(NetSpec::partition({{4, 24, 8}, {48, 64, 2}}, 9).to_string(),
            "(part=4..24@8;48..64@2,seed=9)");
}

TEST(NetSpec, RejectsMalformedText) {
  for (const char* bad : {
           "",                        // empty
           "lat=1..20,seed=7",       // missing parens
           "(seed=7)",               // effect-free
           "()",                     // empty body
           "(lat=0..0,seed=1)",      // latency component present but disabled
           "(lat=20..1,seed=1)",     // inverted range
           "(lat=1..20)",            // missing seed
           "(drop=0,seed=1)",        // drop present but zero
           "(drop=1.5,seed=1)",      // probability out of range
           "(drop=-0.1,seed=1)",     // negative probability
           "(part=,seed=1)",         // empty windows
           "(part=8..40,seed=1)",    // window missing split
           "(lat=1..2,lat=3..4,seed=1)",  // duplicate field
           "(weather=bad,seed=1)",   // unknown field
       }) {
    EXPECT_THROW(NetSpec::parse(bad), std::invalid_argument) << bad;
  }
}

// --- the oracle's deterministic components ----------------------------------

TEST(NetworkModel, SeveredRespectsWindowsAndSides) {
  NetworkModel m(NetSpec::partition({{10, 20, 4}}, 0));
  // Before, at heal time, and after: nothing severed.
  EXPECT_FALSE(m.severed(0, 7, 9));
  EXPECT_FALSE(m.severed(0, 7, 20));
  // In force: only cross-cut links sever, both directions.
  EXPECT_TRUE(m.severed(0, 7, 10));
  EXPECT_TRUE(m.severed(7, 0, 15));
  EXPECT_FALSE(m.severed(0, 3, 15));  // same side (below split)
  EXPECT_FALSE(m.severed(5, 7, 15));  // same side (rest)
}

TEST(NetworkModel, PartitionSideMatchesObservableConvention) {
  NetworkModel m(NetSpec::partition({{10, 20, 4}}, 0));
  EXPECT_EQ(m.partition_side(0, 5), 0);  // no window in force
  EXPECT_EQ(m.partition_side(0, 10), 1);
  EXPECT_EQ(m.partition_side(3, 15), 1);
  EXPECT_EQ(m.partition_side(4, 15), 2);
  EXPECT_EQ(m.partition_side(0, 20), 0);  // healed
}

// --- synchronous substrate --------------------------------------------------

RunResult run_sync(const char* proto, std::int64_t n, int t, NetSpec net) {
  RunOptions opts;
  opts.net = std::move(net);
  return run_do_all(proto, DoAllConfig{n, t}, harness::FaultSpec::none().make(), opts);
}

TEST(SyncNetwork, NoopSpecIsByteIdenticalToCrashOnly) {
  RunResult plain = run_do_all("A", DoAllConfig{64, 8}, FaultSpec::none().make());
  RunResult netted = run_sync("A", 64, 8, NetSpec{});
  EXPECT_EQ(plain.metrics.work_total, netted.metrics.work_total);
  EXPECT_EQ(plain.metrics.messages_total, netted.metrics.messages_total);
  EXPECT_EQ(plain.metrics.last_retire_round, netted.metrics.last_retire_round);
  EXPECT_EQ(plain.metrics.available_processor_steps, netted.metrics.available_processor_steps);
}

TEST(SyncNetwork, LatencyDelaysDeliveryButCompletes) {
  RunResult r = run_sync("A", 64, 8, NetSpec::latency(1, 4, 3));
  EXPECT_TRUE(r.ok()) << r.violation;
  EXPECT_GT(r.metrics.net_delayed, 0u);
  EXPECT_EQ(r.metrics.net_dropped, 0u);
  // Late checkpoints trigger deadline takeovers: never less total work than
  // the undisturbed run, and never less time.
  RunResult plain = run_sync("A", 64, 8, NetSpec{});
  EXPECT_GE(r.metrics.work_total, plain.metrics.work_total);
  EXPECT_LT(plain.metrics.last_retire_round, r.metrics.last_retire_round);
}

TEST(SyncNetwork, LossDropsRecipientsButCompletes) {
  RunResult r = run_sync("B", 256, 16, NetSpec::lossy(0.2, 7));
  EXPECT_TRUE(r.ok()) << r.violation;
  EXPECT_GT(r.metrics.net_dropped, 0u);
}

TEST(SyncNetwork, PartitionSeversCrossCutLinksThenHeals) {
  RunResult r = run_sync("A", 64, 8, NetSpec::partition({{2, 30, 4}}, 0));
  EXPECT_TRUE(r.ok()) << r.violation;
  EXPECT_GT(r.metrics.net_blocked, 0u);
  EXPECT_EQ(r.metrics.net_dropped, 0u);  // partitions consume no draws
}

TEST(SyncNetwork, LossIsSeedDeterministic) {
  RunResult a = run_sync("A", 64, 8, NetSpec::lossy(0.1, 5));
  RunResult b = run_sync("A", 64, 8, NetSpec::lossy(0.1, 5));
  EXPECT_EQ(a.metrics.work_total, b.metrics.work_total);
  EXPECT_EQ(a.metrics.net_dropped, b.metrics.net_dropped);
  EXPECT_EQ(a.metrics.last_retire_round, b.metrics.last_retire_round);
  RunResult c = run_sync("A", 64, 8, NetSpec::lossy(0.1, 6));
  EXPECT_NE(a.metrics.net_dropped, c.metrics.net_dropped);
}

// --- asynchronous substrate -------------------------------------------------

TEST(AsyncNetwork, UnsetLatencyReproducesTheOptionKnobsExactly) {
  // The NetSpec latency component replaces [min_delay, max_delay]; leaving
  // it unset must reproduce the historical event stream byte for byte.
  DoAllConfig cfg{64, 8};
  AsyncSim::Options plain;
  plain.seed = 5;
  plain.min_delay = 2;
  plain.max_delay = 9;
  AsyncMetrics a = run_async_protocol_a(cfg, plain);

  AsyncSim::Options netted = plain;
  netted.net = NetSpec::latency(2, 9, 0);  // same range through the model
  AsyncMetrics b = run_async_protocol_a(cfg, netted);
  EXPECT_EQ(a.work_total, b.work_total);
  EXPECT_EQ(a.messages_total, b.messages_total);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.fd_notices, b.fd_notices);
}

TEST(AsyncNetwork, LossCostsWorkButTheDetectorCarriesTheRun) {
  DoAllConfig cfg{64, 8};
  AsyncSim::Options opts;
  opts.seed = 5;
  opts.net = NetSpec::lossy(0.2, 0);
  AsyncMetrics m = run_async_protocol_a(cfg, opts);
  EXPECT_TRUE(m.all_retired);
  EXPECT_TRUE(m.all_units_done());
  EXPECT_GT(m.net_dropped, 0u);
}

TEST(AsyncNetwork, PartitionWindowsSeverByEventTime) {
  DoAllConfig cfg{64, 8};
  AsyncSim::Options opts;
  opts.seed = 5;
  opts.net = NetSpec::partition({{0, 200, 4}}, 0);
  AsyncMetrics m = run_async_protocol_a(cfg, opts);
  EXPECT_TRUE(m.all_retired);
  EXPECT_TRUE(m.all_units_done());
  EXPECT_GT(m.net_blocked, 0u);
}

// --- observable network visibility ------------------------------------------

// A fault injector that snoops the observable's network accessors during the
// run: current_partition must track the scheduled windows round by round.
// Results land in caller-owned storage (the injector dies with the
// simulator inside run_do_all).
class PartitionSpy final : public FaultInjector {
 public:
  PartitionSpy(bool* saw_split, std::uint64_t* max_in_flight)
      : saw_split_(saw_split), max_in_flight_(max_in_flight) {}

  void attach(const SimObservable& sim) override { sim_ = &sim; }
  void on_round_start(const Round& round) override {
    if (!round.fits_u64()) return;
    const std::uint64_t now = round.to_u64_saturating();
    if (now >= 5 && now < 15) {
      *saw_split_ = *saw_split_ || (sim_->current_partition(0) == 1 &&
                                    sim_->current_partition(7) == 2);
    } else {
      EXPECT_EQ(sim_->current_partition(0), 0) << "round " << now;
    }
    *max_in_flight_ = std::max(*max_in_flight_, sim_->in_flight_messages());
  }
  std::optional<CrashPlan> inspect(int, const Round&, const Action&,
                                   const SimSnapshot&) override {
    return std::nullopt;
  }

 private:
  bool* saw_split_;
  std::uint64_t* max_in_flight_;
  const SimObservable* sim_ = nullptr;
};

TEST(SyncNetwork, ObservableSeesPartitionsAndInFlightMessages) {
  bool saw_split = false;
  std::uint64_t max_in_flight = 0;
  RunOptions opts;
  opts.net = NetSpec::partition({{5, 15, 4}}, 0);
  // A latency component keeps records in flight across round boundaries, so
  // the spy can observe a nonzero in_flight_messages() at round start.
  opts.net.lat_min = 1;
  opts.net.lat_max = 3;
  RunResult r = run_do_all("B", DoAllConfig{64, 8},
                           std::make_unique<PartitionSpy>(&saw_split, &max_in_flight), opts);
  EXPECT_TRUE(r.ok()) << r.violation;
  EXPECT_TRUE(saw_split);
  EXPECT_GT(max_in_flight, 0u);
}

// --- adversarial message faults (decision point 4) --------------------------

TEST(Jammer, SpendsItsBudgetDroppingAnnouncements) {
  // Protocol B rebuilds jammed knowledge as redone work; Protocol A absorbs
  // the same drops as waiting time instead, so the work assertion lives on B.
  RunResult jammed = run_do_all("B", DoAllConfig{256, 16},
                                FaultSpec::adaptive("jammer", 0, 1, /*jam=*/16).make());
  EXPECT_TRUE(jammed.ok()) << jammed.violation;
  RunResult plain = run_do_all("B", DoAllConfig{256, 16}, FaultSpec::none().make());
  EXPECT_GT(jammed.metrics.work_total, plain.metrics.work_total);
  EXPECT_GT(jammed.metrics.net_dropped, 0u);
  EXPECT_EQ(jammed.metrics.crashes, 0u);

  // A completes without redone work but still records the drops.
  RunResult a = run_do_all("A", DoAllConfig{256, 16},
                           FaultSpec::adaptive("jammer", 0, 1, /*jam=*/16).make());
  EXPECT_TRUE(a.ok()) << a.violation;
  EXPECT_GT(a.metrics.net_dropped, 0u);
  EXPECT_EQ(a.metrics.crashes, 0u);
}

TEST(Jammer, ZeroJamBudgetIsCrashOnlyNoop) {
  RunResult jammed = run_do_all("A", DoAllConfig{64, 8},
                                FaultSpec::adaptive("jammer", 0, 1, /*jam=*/0).make());
  RunResult plain = run_do_all("A", DoAllConfig{64, 8}, FaultSpec::none().make());
  EXPECT_EQ(jammed.metrics.work_total, plain.metrics.work_total);
  EXPECT_EQ(jammed.metrics.messages_total, plain.metrics.messages_total);
  EXPECT_EQ(jammed.metrics.net_dropped, 0u);
}

}  // namespace
}  // namespace dowork
