// Tests for the scenario harness: fault-spec round-trips, the parallel
// runner's determinism and ordering guarantees, the experiment registry,
// and the scenario hooks added to core/ and sim/.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

#include "core/runner.h"
#include "harness/experiments.h"
#include "harness/parallel_runner.h"
#include "harness/report.h"
#include "harness/scenario.h"

namespace dowork::harness {
namespace {

// --- FaultSpec --------------------------------------------------------------

TEST(FaultSpec, RoundTripsEveryKind) {
  std::vector<FaultSpec> specs = {
      FaultSpec::none(),
      FaultSpec::cascade(7, 15, 2, false),
      FaultSpec::cascade(1, 3, SIZE_MAX, true),
      FaultSpec::on_unit(63, 31, 1),
      FaultSpec::random(0.05, 15, 42),
      FaultSpec::random(1.0 / 3.0, 7, 0),  // needs full double precision
      FaultSpec::scheduled({{0, 1, CrashPlan{false, 4}}, {3, 9, CrashPlan{true, SIZE_MAX}}}),
      FaultSpec::adaptive("greedy", 15, 42),
      FaultSpec::adaptive("restart", 7),
      FaultSpec::adaptive("jammer", 0, 1, /*jam=*/8),
      // Composed v2 forms: every crash kind with a network component, and
      // the net-only spec (tests/fault_spec_fuzz_test.cpp hammers the full
      // grammar; this table pins one of each shape).
      FaultSpec::none().with_net(NetSpec::latency(1, 20, 7)),
      FaultSpec::cascade(7, 15, 2, false).with_net(NetSpec::lossy(0.05, 3)),
      FaultSpec::on_unit(63, 31, 1).with_net(NetSpec::partition({{8, 40, 4}}, 0)),
      FaultSpec::random(0.05, 15, 42).with_net(NetSpec::latency(2, 5, 1)),
      FaultSpec::scheduled({{0, 1, CrashPlan{false, 4}}})
          .with_net(NetSpec::partition({{4, 24, 8}, {48, 64, 2}}, 9)),
      FaultSpec::adaptive("jammer", 0, 1, /*jam=*/16).with_net(NetSpec::lossy(0.02, 5)),
  };
  for (const FaultSpec& spec : specs) {
    const std::string text = spec.to_string();
    EXPECT_EQ(FaultSpec::parse(text), spec) << text;
    // A second round-trip must be a fixed point.
    EXPECT_EQ(FaultSpec::parse(text).to_string(), text);
  }
}

TEST(FaultSpec, ParseRejectsMalformedInput) {
  EXPECT_THROW(FaultSpec::parse("bogus"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("cascade(units=1)"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("martian(x=1)"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("scheduled(nonsense)"), std::invalid_argument);
}

TEST(FaultSpec, AdaptiveRoundTripsExactly) {
  // The grammar's adaptive form, pinned literally: parse(to_string()) is the
  // identity and to_string(parse()) a fixed point on the exact spelling.
  const FaultSpec spec = FaultSpec::adaptive("chain", 15, 3);
  EXPECT_EQ(spec.to_string(), "adaptive:chain(crashes=15,seed=3)");
  EXPECT_EQ(FaultSpec::parse("adaptive:chain(crashes=15,seed=3)"), spec);
  EXPECT_EQ(FaultSpec::parse(spec.to_string()).to_string(), spec.to_string());
}

TEST(FaultSpec, AdaptiveRejectsUnknownStrategies) {
  // Unknown strategies are rejected when the spec is *built*, not when the
  // injector is -- both at parse time and in the convenience constructor.
  EXPECT_THROW(FaultSpec::parse("adaptive:zeus(crashes=1,seed=0)"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("adaptive:(crashes=1,seed=0)"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::adaptive("zeus", 1), std::invalid_argument);
}

TEST(FaultSpec, MakeBuildsTheRightInjector) {
  // The cascade spec must reproduce WorkCascadeFaults behavior: run Protocol
  // A under the spec-built injector and under a hand-built one; identical
  // deterministic adversaries give identical metrics.
  const DoAllConfig cfg{64, 8};
  RunResult via_spec = run_do_all("A", cfg, FaultSpec::cascade(2, 7, 1).make());
  RunResult direct = run_do_all("A", cfg, std::make_unique<WorkCascadeFaults>(2, 7, 1));
  ASSERT_TRUE(via_spec.ok());
  EXPECT_EQ(via_spec.metrics.work_total, direct.metrics.work_total);
  EXPECT_EQ(via_spec.metrics.messages_total, direct.metrics.messages_total);
  EXPECT_EQ(via_spec.metrics.crashes, direct.metrics.crashes);
}

TEST(FaultSpec, RandomRepPerturbsTheSeed) {
  // Same spec, different rep => different schedule (with overwhelming
  // probability for this shape); same rep => identical schedule.
  const DoAllConfig cfg{256, 16};
  const FaultSpec spec = FaultSpec::random(0.2, 15, 7);
  RunResult r0a = run_do_all("A", cfg, spec.make(0));
  RunResult r0b = run_do_all("A", cfg, spec.make(0));
  RunResult r1 = run_do_all("A", cfg, spec.make(1));
  EXPECT_EQ(r0a.metrics.work_total, r0b.metrics.work_total);
  EXPECT_EQ(r0a.metrics.messages_total, r0b.metrics.messages_total);
  EXPECT_TRUE(r0a.metrics.work_total != r1.metrics.work_total ||
              r0a.metrics.messages_total != r1.metrics.messages_total ||
              r0a.metrics.last_retire_round != r1.metrics.last_retire_round);
}

// --- scenario hooks in core/ ------------------------------------------------

TEST(ScenarioHooks, ProtocolParamSelectsCheckpointInterval) {
  const DoAllConfig cfg{128, 8};
  RunOptions k1, k32;
  k1.protocol_param = 1;
  k32.protocol_param = 32;
  RunResult frequent = run_do_all("baseline_checkpoint", cfg, std::make_unique<NoFaults>(), k1);
  RunResult rare = run_do_all("baseline_checkpoint", cfg, std::make_unique<NoFaults>(), k32);
  ASSERT_TRUE(frequent.ok());
  ASSERT_TRUE(rare.ok());
  // Checkpointing every unit sends ~t messages per unit; every 32 units
  // divides that by 32.
  EXPECT_GT(frequent.metrics.messages_total, 4 * rare.metrics.messages_total);
}

TEST(ScenarioHooks, ParamOnParamlessProtocolThrows) {
  RunOptions opts;
  opts.protocol_param = 3;
  EXPECT_THROW(run_do_all("A", DoAllConfig{16, 4}, std::make_unique<NoFaults>(), opts),
               std::invalid_argument);
}

// --- bound assertion (assert_bounds / bound_margin_*) -----------------------

TEST(ScenarioBounds, AssertBoundsFlagsBreachesAndReportsMargins) {
  // A deliberately impossible work bound must flip the row to a violation
  // naming the bound, while the satisfied message bound still reports its
  // margin; without assert_bounds the same params are copy-through columns.
  Scenario s;
  s.id = s.group = "tight";
  s.protocol = "A";
  s.cfg = DoAllConfig{32, 4};
  s.faults = FaultSpec::none();
  s.params["assert_bounds"] = 1;
  s.params["bound_work_3n"] = 8;  // failure-free A performs all 32 units
  s.params["bound_msgs"] = 1000000;
  const std::vector<ScenarioResult> rows = run_scenario("x", s);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(rows[0].ok);
  EXPECT_NE(rows[0].violation.find("exceeds bound_work_3n=8"), std::string::npos)
      << rows[0].violation;
  auto margin = [&](const std::string& key) -> std::string {
    for (const auto& [k, v] : rows[0].extra)
      if (k == key) return v;
    return "<missing>";
  };
  EXPECT_EQ(margin("bound_margin_work"), "400");  // 32 of 8, ceil percent
  EXPECT_EQ(margin("bound_margin_msgs"), "1");    // comfortably under
}

TEST(ScenarioBounds, WithoutAssertBoundsParamsAreCopyThroughOnly) {
  Scenario s;
  s.id = s.group = "loose";
  s.protocol = "A";
  s.cfg = DoAllConfig{32, 4};
  s.faults = FaultSpec::none();
  s.params["bound_work_3n"] = 8;  // violated, but nothing checks it
  const std::vector<ScenarioResult> rows = run_scenario("x", s);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].ok) << rows[0].violation;
  for (const auto& [k, v] : rows[0].extra)
    EXPECT_EQ(k.rfind("bound_margin_", 0), std::string::npos) << k;
}

// --- MetricsAggregate -------------------------------------------------------

TEST(MetricsAggregate, OrderIndependentReduction) {
  RunMetrics a, b, c;
  a.work_total = 10;
  a.messages_total = 5;
  a.last_retire_round = Round{100};
  a.all_retired = true;
  b.work_total = 30;
  b.messages_total = 1;
  b.last_retire_round = Round{50};
  b.all_retired = true;
  c.work_total = 20;
  c.messages_total = 9;
  c.last_retire_round = BigUint::pow2(90);
  c.all_retired = true;

  MetricsAggregate fwd, rev;
  for (const RunMetrics* m : {&a, &b, &c}) fwd.absorb(*m);
  for (const RunMetrics* m : {&c, &b, &a}) rev.absorb(*m);
  EXPECT_EQ(fwd.max_work, 30u);
  EXPECT_EQ(fwd.sum_work, 60u);
  EXPECT_EQ(fwd.max_messages, 9u);
  EXPECT_EQ(fwd.max_effort, rev.max_effort);
  EXPECT_EQ(fwd.max_rounds, rev.max_rounds);
  EXPECT_EQ(fwd.max_rounds, BigUint::pow2(90));
  EXPECT_EQ(fwd.sum_messages, rev.sum_messages);
}

// --- experiment registry ----------------------------------------------------

TEST(Experiments, RegistryIsWellFormed) {
  std::set<std::string> names;
  for (const ExperimentInfo& e : all_experiments()) {
    EXPECT_TRUE(names.insert(e.name).second) << "duplicate experiment " << e.name;
    EXPECT_FALSE(e.title.empty());
    EXPECT_FALSE(e.claim.empty());
    const std::vector<Scenario> scenarios = e.scenarios();
    EXPECT_FALSE(scenarios.empty()) << e.name;
    std::set<std::string> ids;
    for (const Scenario& s : scenarios) {
      EXPECT_TRUE(ids.insert(s.id).second) << e.name << " duplicate scenario id " << s.id;
      EXPECT_GE(s.repetitions, 1) << s.id;
    }
  }
  EXPECT_NE(find_experiment("smoke"), nullptr);
  EXPECT_EQ(find_experiment("no_such_experiment"), nullptr);
}

// --- parallel runner --------------------------------------------------------

TEST(ParallelScenarioRunner, PreservesScenarioOrderAtAnyParallelism) {
  const ExperimentInfo* smoke = find_experiment("smoke");
  ASSERT_NE(smoke, nullptr);
  const std::vector<Scenario> scenarios = smoke->scenarios();
  const std::vector<ScenarioResult> rows = ParallelScenarioRunner(4).run("smoke", scenarios);
  ASSERT_EQ(rows.size(), scenarios.size());  // smoke has one rep per scenario
  for (std::size_t i = 0; i < scenarios.size(); ++i) EXPECT_EQ(rows[i].id, scenarios[i].id);
}

TEST(ParallelScenarioRunner, DeterministicJsonAcrossJobCounts) {
  // The acceptance bar for the whole harness: same seeds => byte-identical
  // aggregated output whether scenarios ran on 1 thread or 8.
  const ExperimentInfo* smoke = find_experiment("smoke");
  ASSERT_NE(smoke, nullptr);
  const std::vector<Scenario> scenarios = smoke->scenarios();
  const std::string json1 = to_json("smoke", ParallelScenarioRunner(1).run("smoke", scenarios));
  const std::string json8 = to_json("smoke", ParallelScenarioRunner(8).run("smoke", scenarios));
  EXPECT_EQ(json1, json8);
}

TEST(ParallelScenarioRunner, AdversarySearchIsByteIdenticalAcrossJobCounts) {
  // Adaptive strategies observe only committed single-run state and draw
  // randomness only from scenario seeds, so the tournament keeps the same
  // determinism contract as every scripted family: the full JSON document
  // is byte-identical at any parallelism.
  const ExperimentInfo* e = find_experiment("adversary_search");
  ASSERT_NE(e, nullptr);
  const std::vector<Scenario> scenarios = e->scenarios();
  const std::string json1 =
      to_json("adversary_search", ParallelScenarioRunner(1).run("adversary_search", scenarios));
  const std::string json8 =
      to_json("adversary_search", ParallelScenarioRunner(8).run("adversary_search", scenarios));
  EXPECT_EQ(json1, json8);
}

TEST(ParallelScenarioRunner, BadScenarioBecomesFailedRowNotCrash) {
  Scenario bad;
  bad.id = bad.group = "bad";
  bad.protocol = "no_such_protocol";
  bad.cfg = DoAllConfig{8, 2};
  Scenario good;
  good.id = good.group = "good";
  good.protocol = "A";
  good.cfg = DoAllConfig{8, 2};
  good.faults = FaultSpec::none();
  const std::vector<ScenarioResult> rows =
      ParallelScenarioRunner(2).run("mixed", {bad, good});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_FALSE(rows[0].ok);
  EXPECT_NE(rows[0].violation.find("no_such_protocol"), std::string::npos);
  EXPECT_TRUE(rows[1].ok);
}

TEST(ParallelScenarioRunner, RepetitionsExpandToIndexedRows) {
  Scenario s;
  s.id = s.group = "reps";
  s.protocol = "A";
  s.cfg = DoAllConfig{32, 4};
  s.faults = FaultSpec::random(0.1, 3, 11);
  s.repetitions = 5;
  const std::vector<ScenarioResult> rows = ParallelScenarioRunner(2).run("reps", {s});
  ASSERT_EQ(rows.size(), 5u);
  for (int rep = 0; rep < 5; ++rep) {
    EXPECT_EQ(rows[static_cast<std::size_t>(rep)].rep, rep);
    EXPECT_TRUE(rows[static_cast<std::size_t>(rep)].ok)
        << rows[static_cast<std::size_t>(rep)].violation;
  }
}

// --- report -----------------------------------------------------------------

TEST(Report, AggregatesByGroupInFirstOccurrenceOrder) {
  ScenarioResult r1, r2, r3;
  r1.group = "g1";
  r1.work = 10;
  r1.last_round = Round{5};
  r1.ok = true;
  r2.group = "g2";
  r2.work = 99;
  r2.last_round = BigUint::pow2(80);
  r2.ok = true;
  r3.group = "g1";
  r3.work = 30;
  r3.last_round = Round{12};
  r3.ok = false;
  const std::vector<GroupAggregate> groups = aggregate({r1, r2, r3});
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].group, "g1");
  EXPECT_EQ(groups[0].metrics.runs, 2u);
  EXPECT_EQ(groups[0].metrics.max_work, 30u);
  EXPECT_EQ(groups[0].metrics.max_rounds, Round{12});
  EXPECT_FALSE(groups[0].metrics.all_ok);
  EXPECT_EQ(groups[1].group, "g2");
  EXPECT_EQ(groups[1].metrics.max_rounds, BigUint::pow2(80));
  EXPECT_TRUE(groups[1].metrics.all_ok);
}

TEST(Report, ExtrasReduceAcrossGroupRows) {
  // A group's extra columns must be reduced over ALL rows (union of keys,
  // max of magnitudes, NO-dominates flags) -- not copied from the first row.
  ScenarioResult r1, r2, r3;
  r1.group = r2.group = r3.group = "g";
  r1.ok = r2.ok = r3.ok = true;
  r1.extra = {{"polls", "8"}, {"agreement", "yes"}};
  r2.extra = {{"polls", "12"}, {"aps", "~2^80"}, {"agreement", "yes"}};
  r3.extra = {{"polls", "9"}, {"aps", "999"}, {"agreement", "NO"}};
  const std::vector<GroupAggregate> groups = aggregate({r1, r2, r3});
  ASSERT_EQ(groups.size(), 1u);
  const auto value_of = [&](const std::string& key) -> std::string {
    for (const auto& [k, v] : groups[0].extra)
      if (k == key) return v;
    return "<missing>";
  };
  EXPECT_EQ(value_of("polls"), "12");     // max over rows, not first row's 8
  EXPECT_EQ(value_of("aps"), "~2^80");    // ~2^k dominates any decimal
  EXPECT_EQ(value_of("agreement"), "NO");  // a failing flag must surface
}

TEST(Report, JsonEscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Report, TimingSectionIsOptInAndRowsStayClean) {
  const ExperimentInfo* smoke = find_experiment("smoke");
  ASSERT_NE(smoke, nullptr);
  const std::vector<ScenarioResult> rows =
      ParallelScenarioRunner(2).run("smoke", smoke->scenarios());
  const std::string plain = to_json("smoke", rows);
  const std::string timed = to_json("smoke", rows, /*include_timing=*/true);
  // Default output carries no machine-dependent bytes...
  EXPECT_EQ(plain.find("timing"), std::string::npos);
  EXPECT_EQ(plain.find("ms"), std::string::npos);
  // ...and the opt-in form only APPENDS the timing section: the
  // deterministic prefix is byte-identical.
  ASSERT_NE(timed.find("\"timing\":{\"total_ms\":"), std::string::npos);
  EXPECT_EQ(timed.compare(0, plain.size() - 2, plain, 0, plain.size() - 2), 0);
}

// --- golden JSON: the simulator optimisations must be unobservable ----------

// tests/golden/*.json were captured from the pre-optimisation simulator
// (the O(t)-scan scheduler, unshared buffers, byte-packed Protocol D views).
// The reports produced by today's binary must match them byte for byte:
// scheduling, delivery order, every metric, and the JSON encoding itself are
// all pinned.  Regenerate a golden only for a deliberate semantic change:
//   ./build/dowork_bench --experiment <name> --jobs 1 --quiet
//       --json tests/golden/<name>.json   (one command line)
class GoldenJson : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenJson, ByteIdenticalToPreOptimizationCapture) {
  const char* name = GetParam();
  const ExperimentInfo* e = find_experiment(name);
  ASSERT_NE(e, nullptr);
  // The bench writes the document plus a trailing newline.
  const std::string produced =
      to_json(name, ParallelScenarioRunner(4).run(name, e->scenarios())) + "\n";
  const std::string path =
      std::string(DOWORK_SOURCE_DIR) + "/tests/golden/" + name + ".json";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open()) << "missing golden file " << path;
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(produced, golden.str())
      << "JSON drifted from the golden capture; if the change is an intended "
         "semantic change, regenerate " << path;
}

// protocol_c was captured from the pre-two-tier-Round binary (PR 3): its
// rows' exact exponential round counts pin that promoted deadlines still
// compare, format and order exactly as the flat 512-bit representation did.
INSTANTIATE_TEST_SUITE_P(PreOptimizationCaptures, GoldenJson,
                         ::testing::Values("smoke", "checkpoint_sweep", "protocol_c"),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
}  // namespace dowork::harness
