// Tests for the adaptive adversary subsystem (src/adversary/): the
// committed-state observable view, the AdaptiveFaults budget contract, each
// strategy's characteristic behavior, and the adversary_search tournament's
// acceptance bar -- the adaptive worst case dominates the scripted cascade
// at the same shape while every paper bound holds per row.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "adversary/strategies.h"
#include "core/runner.h"
#include "harness/experiments.h"
#include "harness/parallel_runner.h"
#include "harness/report.h"

namespace dowork {
namespace {

using harness::FaultSpec;

RunMetrics run(const std::string& proto, std::int64_t n, int t,
               std::unique_ptr<FaultInjector> faults) {
  RunResult r = run_do_all(proto, DoAllConfig{n, t}, std::move(faults));
  EXPECT_TRUE(r.ok()) << r.violation;
  return r.metrics;
}

void expect_same_execution(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.work_total, b.work_total);
  EXPECT_EQ(a.messages_total, b.messages_total);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.last_retire_round, b.last_retire_round);
}

// --- strategy registry ------------------------------------------------------

TEST(Strategies, RegistryKnowsItsNamesAndRejectsOthers) {
  for (const adversary::StrategyInfo& info : adversary::all_strategies()) {
    EXPECT_TRUE(adversary::is_strategy(info.name));
    EXPECT_EQ(adversary::make_strategy(info.name, 0)->name(), info.name);
  }
  EXPECT_FALSE(adversary::is_strategy("zeus"));
  EXPECT_THROW(adversary::make_strategy("zeus", 0), std::invalid_argument);
}

TEST(Strategies, TournamentFieldsEveryRegisteredStrategy) {
  // The registry is the single source of truth: every strategy appears in
  // the adversary_search scenarios, and the stochastic ones get several
  // repetitions (the seeded restart search).
  const harness::ExperimentInfo* e = harness::find_experiment("adversary_search");
  ASSERT_NE(e, nullptr);
  const std::vector<harness::Scenario> scenarios = e->scenarios();
  for (const adversary::StrategyInfo& info : adversary::all_strategies()) {
    const std::string needle = "adaptive:" + info.name + "(";
    int seen = 0;
    for (const harness::Scenario& s : scenarios)
      if (s.id.find(needle) != std::string::npos) {
        ++seen;
        EXPECT_EQ(s.repetitions, info.stochastic ? 6 : 1) << s.id;
      }
    EXPECT_GT(seen, 0) << "tournament never fields strategy " << info.name;
  }
}

// --- chain: the adaptive floor under the scripted cascades ------------------

TEST(ChainChaser, ReplaysTheChunkCascadeOnSequentialProtocols) {
  // On A/B/C the chain chaser re-derives the scripted worst-case chunk
  // cascade decision for decision, so the two executions are identical --
  // this is what guarantees the tournament's adaptive worst case can never
  // fall below the scripted floor.
  const std::int64_t n = 256;
  const int t = 16;
  const std::uint64_t chunk = static_cast<std::uint64_t>(ceil_div(n, int_sqrt_ceil(t)) + 1);
  for (const char* proto : {"A", "B"}) {
    RunMetrics scripted = run(proto, n, t, FaultSpec::cascade(chunk, t - 1, 1).make());
    RunMetrics adaptive = run(proto, n, t, FaultSpec::adaptive("chain", t - 1).make());
    expect_same_execution(scripted, adaptive);
    EXPECT_GT(adaptive.crashes, 0u) << proto;
  }
}

TEST(ChainChaser, TightensToTwoUnitsUnderConcurrentWorkers) {
  // Protocol D works in parallel; the chaser observes that in round 0 and
  // switches to the two-unit, nothing-escapes cascade the protocol_d
  // experiments script by hand.
  const std::int64_t n = 256;
  const int t = 16;
  const int f = t / 2 - 1;
  RunMetrics scripted = run("D", n, t, FaultSpec::cascade(2, f, 0).make());
  RunMetrics adaptive = run("D", n, t, FaultSpec::adaptive("chain", f).make());
  expect_same_execution(scripted, adaptive);
  EXPECT_EQ(adaptive.crashes, static_cast<std::uint64_t>(f));
}

// --- greedy: kill announcements of maximal knowledge ------------------------

TEST(GreedyEffortMax, ForcesRedoByErasingAnnouncements) {
  // Every active process dies at its first checkpoint attempt with nothing
  // escaping, so each successor restarts from zero knowledge: work strictly
  // exceeds n (redo happened) yet stays within Theorem 2.3's 3n.
  const std::int64_t n = 256;
  const int t = 16;
  RunMetrics m = run("A", n, t, FaultSpec::adaptive("greedy", t - 1).make());
  EXPECT_EQ(m.crashes, static_cast<std::uint64_t>(t - 1));
  EXPECT_GT(m.work_total, static_cast<std::uint64_t>(n));
  EXPECT_LE(m.work_total, static_cast<std::uint64_t>(3 * n));
}

TEST(GreedyEffortMax, SpendsNothingWithoutAnnouncements) {
  // baseline_all never communicates: with no announcements to erase the
  // greedy adversary never crashes anyone.
  RunMetrics m = run("baseline_all", 64, 8, FaultSpec::adaptive("greedy", 7).make());
  EXPECT_EQ(m.crashes, 0u);
}

// --- splitter: agreement-phase prefix cuts ----------------------------------

TEST(AgreementSplitter, StretchesProtocolDsAgreementLoop) {
  const std::int64_t n = 256;
  const int t = 16;
  RunMetrics ff = run("D", n, t, std::make_unique<NoFaults>());
  RunMetrics split = run("D", n, t, FaultSpec::adaptive("splitter", t / 2 - 1).make());
  EXPECT_GT(split.crashes, 0u);
  EXPECT_GT(split.messages_total, ff.messages_total);
}

TEST(AgreementSplitter, NeverFiresWithoutAgreementTraffic) {
  RunMetrics ff = run("A", 256, 16, std::make_unique<NoFaults>());
  RunMetrics split = run("A", 256, 16, FaultSpec::adaptive("splitter", 15).make());
  EXPECT_EQ(split.crashes, 0u);
  expect_same_execution(ff, split);
}

// --- restart: the seeded random search --------------------------------------

TEST(RandomRestart, SeedDeterminesTheScheduleExactly) {
  const FaultSpec spec = FaultSpec::adaptive("restart", 15, 7);
  RunMetrics a = run("A", 256, 16, spec.make(0));
  RunMetrics b = run("A", 256, 16, spec.make(0));
  expect_same_execution(a, b);
  // make(rep) perturbs the seed: a different restart explores a different
  // schedule (with overwhelming probability at this shape).
  RunMetrics c = run("A", 256, 16, spec.make(1));
  EXPECT_TRUE(a.work_total != c.work_total || a.messages_total != c.messages_total ||
              a.last_retire_round != c.last_retire_round);
}

// --- AdaptiveFaults contract ------------------------------------------------

TEST(AdaptiveFaults, BudgetCapsTheCrashes) {
  RunMetrics m = run("A", 256, 16, FaultSpec::adaptive("greedy", 3).make());
  EXPECT_EQ(m.crashes, 3u);
}

TEST(AdaptiveFaults, InspectWithoutAttachThrows) {
  adversary::AdaptiveFaults injector(adversary::make_strategy("greedy", 0), 1);
  Action a;
  a.work = 1;
  EXPECT_THROW(injector.inspect(0, Round{0}, a, SimSnapshot{2, 2, 0}), std::logic_error);
}

// --- the observable view ----------------------------------------------------

// Probe injector: validates the committed-state window from inside a real
// run (decision points fire in order; tallies match the final metrics).
// Findings land in a test-owned Stats struct: the Simulator owns (and, when
// run_do_all returns, destroys) the injector itself.
struct ProbeStats {
  int rounds_seen = 0;
  std::int64_t max_known = 0;
};

class ProbeFaults final : public FaultInjector {
 public:
  explicit ProbeFaults(ProbeStats* stats) : stats_(stats) {}

  void attach(const SimObservable& sim) override { sim_ = &sim; }
  void on_round_start(const Round& round) override {
    ASSERT_NE(sim_, nullptr) << "on_round_start before attach";
    EXPECT_EQ(sim_->rounds_elapsed(), round);
    EXPECT_TRUE(last_round_ < round || stats_->rounds_seen == 0);
    last_round_ = round;
    ++stats_->rounds_seen;
  }
  std::optional<CrashPlan> inspect(int proc, const Round& round, const Action&,
                                   const SimSnapshot& snap) override {
    EXPECT_NE(sim_, nullptr);
    EXPECT_EQ(sim_->rounds_elapsed(), round);
    EXPECT_TRUE(sim_->is_active(proc));  // retired processes never step
    EXPECT_EQ(sim_->active_count(), snap.alive);
    EXPECT_EQ(sim_->crashes_so_far(), static_cast<std::uint64_t>(snap.crashed_so_far));
    EXPECT_EQ(sim_->num_procs(), snap.t);
    std::uint64_t sum = 0;
    for (int p = 0; p < sim_->num_procs(); ++p) {
      sum += sim_->units_done(p);
      // A process's progress view is bounded by the workload even while it
      // runs ahead of committed work for its own in-progress units.
      EXPECT_GE(sim_->announced_progress(p), 0);
      EXPECT_LE(sim_->announced_progress(p), sim_->num_units());
      (void)sim_->inbox_size(p);  // valid to read for any process
    }
    EXPECT_EQ(sum, sim_->total_units_done());
    stats_->max_known = std::max(stats_->max_known, sim_->announced_progress(proc));
    return std::nullopt;
  }

 private:
  ProbeStats* stats_;
  const SimObservable* sim_ = nullptr;
  Round last_round_;
};

TEST(Observable, CommittedStateWindowMatchesTheRun) {
  ProbeStats stats;
  const std::int64_t n = 64;
  const int t = 8;
  RunResult r = run_do_all("A", DoAllConfig{n, t}, std::make_unique<ProbeFaults>(&stats));
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_GT(stats.rounds_seen, 0);
  // By the time the last active process retires it has performed (and
  // therefore knows) the full workload -- the accessor saw that.
  EXPECT_EQ(stats.max_known, n);
}

TEST(Observable, KnownDoneUnitsTracksProtocolKnowledge) {
  // Fresh processes know nothing.
  const DoAllConfig cfg{64, 8};
  for (const char* proto : {"A", "B", "C", "D"}) {
    auto procs = make_processes(find_protocol(proto), cfg);
    for (const auto& p : procs) EXPECT_EQ(p->known_done_units(), 0) << proto;
  }
}

// --- the tournament ---------------------------------------------------------

TEST(AdversarySearch, AdaptiveWorstCaseDominatesScriptedAndRespectsBounds) {
  // The experiment's acceptance bar, pinned at the t=16 shapes: for each of
  // A/B/C/D the adaptive group's worst effort is at least the scripted
  // cascade's, no row violates a paper bound (assert_bounds flips ok on any
  // breach), and every bound_margin_* column stays at or below 100.
  const harness::ExperimentInfo* e = harness::find_experiment("adversary_search");
  ASSERT_NE(e, nullptr);
  std::vector<harness::Scenario> scenarios = e->scenarios();
  std::erase_if(scenarios, [](const harness::Scenario& s) {
    return s.id.find("t=16/") == std::string::npos;
  });
  ASSERT_FALSE(scenarios.empty());
  const std::vector<harness::ScenarioResult> rows =
      harness::ParallelScenarioRunner(2).run("adversary_search", scenarios);
  for (const harness::ScenarioResult& row : rows) {
    EXPECT_TRUE(row.ok) << row.id << ": " << row.violation;
    for (const auto& [key, value] : row.extra)
      if (key.rfind("bound_margin_", 0) == 0)
        EXPECT_LE(std::stoi(value), 100) << row.id << " " << key;
  }
  const std::vector<harness::GroupAggregate> groups = harness::aggregate(rows);
  auto effort_of = [&](const std::string& group) -> std::uint64_t {
    for (const harness::GroupAggregate& g : groups)
      if (g.group == group) return g.metrics.max_effort;
    ADD_FAILURE() << "missing group " << group;
    return 0;
  };
  for (const char* proto : {"A", "B", "C", "D"}) {
    const std::string base = std::string("t=16/") + proto;
    EXPECT_GE(effort_of(base + "/adaptive"), effort_of(base + "/scripted")) << proto;
  }
}

}  // namespace
}  // namespace dowork
