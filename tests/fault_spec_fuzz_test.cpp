// Grammar fuzz for the composed FaultSpec v2: 10k randomly generated valid
// specs must round-trip parse(to_string()) == identity (and to_string o
// parse must be a fixed point), and a corpus of near-miss malformed strings
// -- each one edit away from valid -- must be rejected with
// std::invalid_argument rather than mis-parsed.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "adversary/strategies.h"
#include "harness/fault_spec.h"

namespace dowork::harness {
namespace {

// Deterministic generator: one random valid FaultSpec per call.
class SpecGen {
 public:
  explicit SpecGen(std::uint64_t seed) : rng_(seed) {}

  FaultSpec next() {
    FaultSpec spec = random_crash();
    // Half the specs carry a network component (possibly on a bare "none"
    // crash, exercising the net-only rendering).
    if (flip()) spec.net = random_net();
    return spec;
  }

 private:
  bool flip() { return rng_() % 2 == 0; }
  std::uint64_t u64(std::uint64_t lo, std::uint64_t hi) {
    return lo + rng_() % (hi - lo + 1);
  }
  int small() { return static_cast<int>(u64(0, 99)); }
  std::size_t prefix() {
    return flip() ? SIZE_MAX : static_cast<std::size_t>(u64(0, 1000));
  }
  double probability() {
    // Includes values needing full 17-digit round-trips.
    switch (u64(0, 3)) {
      case 0: return 0.05;
      case 1: return 1.0 / 3.0;
      case 2: return static_cast<double>(u64(1, 999)) / 1000.0;
      default: return 1.0 / static_cast<double>(u64(3, 97));
    }
  }

  FaultSpec random_crash() {
    switch (u64(0, 5)) {
      case 0:
        return FaultSpec::none();
      case 1:
        return FaultSpec::cascade(u64(1, 1 << 20), small(), prefix(), flip());
      case 2:
        return FaultSpec::on_unit(static_cast<std::int64_t>(u64(0, 1 << 20)), small(),
                                  prefix());
      case 3:
        return FaultSpec::random(probability(), small(), u64(0, 1 << 30));
      case 4: {
        std::vector<ScheduledFaults::Entry> entries;
        const std::uint64_t count = u64(0, 5);
        for (std::uint64_t i = 0; i < count; ++i)
          entries.push_back({static_cast<int>(u64(0, 63)), u64(1, 1000),
                             CrashPlan{flip(), prefix()}});
        return FaultSpec::scheduled(std::move(entries));
      }
      default: {
        const auto& all = adversary::all_strategies();
        const std::string& name = all[u64(0, all.size() - 1)].name;
        return FaultSpec::adaptive(name, small(), u64(0, 1 << 30),
                                   /*jam=*/flip() ? small() : 0);
      }
    }
  }

  NetSpec random_net() {
    NetSpec net;
    net.seed = u64(0, 1 << 30);
    // At least one active component, any combination.
    do {
      if (flip()) {
        net.lat_min = u64(0, 50);
        net.lat_max = net.lat_min + u64(1, 50);
      }
      if (flip()) net.drop = probability();
      if (flip()) {
        net.partitions.clear();
        const std::uint64_t count = u64(1, 3);
        std::uint64_t from = u64(0, 100);
        for (std::uint64_t i = 0; i < count; ++i) {
          const std::uint64_t until = from + u64(1, 100);
          net.partitions.push_back(
              {from, until, static_cast<int>(u64(1, 64))});
          from = until + u64(1, 100);
        }
      }
    } while (net.is_noop());
    return net;
  }

  std::mt19937_64 rng_;
};

TEST(FaultSpecFuzz, TenThousandRandomSpecsRoundTrip) {
  SpecGen gen(0xD0A11);
  for (int i = 0; i < 10'000; ++i) {
    const FaultSpec spec = gen.next();
    const std::string text = spec.to_string();
    FaultSpec back;
    ASSERT_NO_THROW(back = FaultSpec::parse(text)) << text;
    ASSERT_EQ(back, spec) << text;
    ASSERT_EQ(back.to_string(), text) << text;
  }
}

TEST(FaultSpecFuzz, BareV1StringsStillParse) {
  // The composed grammar is a superset: every v1 rendering parses, with and
  // without the optional "crash=" tag, to the same spec.
  const std::vector<std::string> v1 = {
      "none",
      "cascade(units=129,crashes=63,prefix=1,completes=1)",
      "on_unit(unit=63,crashes=31,prefix=all)",
      "random(p=0.05,crashes=15,seed=42)",
      "scheduled()",
      "scheduled(0@1:0:4;3@9:1:all)",
      "adaptive:greedy(crashes=15,seed=7)",
  };
  for (const std::string& text : v1) {
    EXPECT_EQ(FaultSpec::parse(text), FaultSpec::parse("crash=" + text)) << text;
    EXPECT_EQ(FaultSpec::parse(text).to_string(), text);
  }
}

TEST(FaultSpecFuzz, NearMissCorpusIsRejected) {
  // Each entry is one edit from a valid spec; parse must throw, never
  // guess.
  const std::vector<std::string> corpus = {
      "",
      ";",
      "none;",                                       // trailing separator
      ";none",                                       // leading separator
      "none;none",                                   // duplicate crash part
      "crash=none;crash=none",                       // duplicate tagged crash
      "net=(lat=1..4,seed=0);net=(drop=0.1,seed=0)",  // duplicate net part
      "crash=",                                      // tag without value
      "net=",                                        // tag without value
      "net=(seed=3)",                                // effect-free net
      "net=(lat=1..4)",                              // missing seed
      "net=(lat=4..1,seed=0)",                       // inverted range
      "net=lat=1..4,seed=0",                         // net body without parens
      "crash=cascade(units=1,crashes=1,prefix=0,completes=1",  // unbalanced
      "cascade(units=1,crashes=1,prefix=0)",          // missing field
      "cascade(units=1,crashes=1,prefix=0,completes=1);extra=1",  // unknown part
      "adaptive:zeus(crashes=1,seed=0)",              // unregistered strategy
      "adaptive:jammer(crashes=0,jam=0,seed=0)",      // explicit zero jam
      "adaptive:jammer(crashes=0,jam=-2,seed=0)",     // negative jam
      "none;net=(lat=1..4,seed=0);none",              // three components
      "martian(x=1)",
      "crash=martian(x=1);net=(lat=1..4,seed=0)",
  };
  for (const std::string& text : corpus) {
    EXPECT_THROW(FaultSpec::parse(text), std::invalid_argument) << "'" << text << "'";
  }
}

TEST(FaultSpecFuzz, ComposedExactStrings) {
  // One pinned rendering per composed shape (the harness_test v1 table pins
  // the bare crash forms).
  EXPECT_EQ(FaultSpec::none().with_net(NetSpec::latency(1, 20, 7)).to_string(),
            "net=(lat=1..20,seed=7)");
  EXPECT_EQ(FaultSpec::cascade(2, 7, 1).with_net(NetSpec::lossy(0.05, 11)).to_string(),
            "crash=cascade(units=2,crashes=7,prefix=1,completes=1);net=(drop=0.05,seed=11)");
  EXPECT_EQ(FaultSpec::scheduled({{0, 1, CrashPlan{false, 4}}})
                .with_net(NetSpec::partition({{8, 40, 4}}, 2))
                .to_string(),
            "crash=scheduled(0@1:0:4);net=(part=8..40@4,seed=2)");
  EXPECT_EQ(FaultSpec::adaptive("jammer", 0, 1, /*jam=*/16).to_string(),
            "adaptive:jammer(crashes=0,jam=16,seed=1)");
  NetSpec all = NetSpec::latency(1, 4, 3);
  all.drop = 0.1;
  all.partitions = {{10, 20, 3}, {30, 44, 5}};
  EXPECT_EQ(FaultSpec::none().with_net(all).to_string(),
            "net=(lat=1..4,drop=0.1,part=10..20@3;30..44@5,seed=3)");
}

}  // namespace
}  // namespace dowork::harness
