#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <type_traits>

#include "sim/fault_injector.h"

namespace dowork {
namespace {

struct IntPayload final : Payload {
  int v;
  explicit IntPayload(int v_in) : v(v_in) {}
};

// Sends one message to `to` at its start round, then terminates.
class OneShotSender final : public IProcess {
 public:
  OneShotSender(int to, std::uint64_t at_round, int tag = 7)
      : to_(to), at_(at_round), tag_(tag) {}
  Action on_round(const RoundContext& ctx, const InboxView&) override {
    Action a;
    if (ctx.round >= Round{at_}) {
      a.sends.push_back(Outgoing{to_, MsgKind::kOther, std::make_shared<IntPayload>(tag_)});
      a.terminate = true;
    }
    return a;
  }
  Round next_wake(const Round& now) const override {
    return Round{at_} > now ? Round{at_} : now;
  }

 private:
  int to_;
  std::uint64_t at_;
  int tag_;
};

// Records the round of its first received message, then terminates.
class Receiver final : public IProcess {
 public:
  Action on_round(const RoundContext& ctx, const InboxView& inbox) override {
    Action a;
    if (!inbox.empty()) {
      const Msg first = inbox.front();
      received_round = ctx.round;
      received_from = first.from;
      received_tag = first.as<IntPayload>() ? first.as<IntPayload>()->v : -1;
      a.terminate = true;
    }
    return a;
  }
  Round next_wake(const Round&) const override { return never_round(); }

  Round received_round;
  int received_from = -1;
  int received_tag = -1;
};

// Performs `n` units of work, one per round, then terminates.
class Worker final : public IProcess {
 public:
  explicit Worker(std::int64_t n) : n_(n) {}
  Action on_round(const RoundContext&, const InboxView&) override {
    Action a;
    if (next_ <= n_) a.work = next_++;
    if (next_ > n_) a.terminate = true;
    return a;
  }
  Round next_wake(const Round& now) const override { return now; }

 private:
  std::int64_t n_;
  std::int64_t next_ = 1;
};

// Broadcasts to everyone each round, forever (used for crash tests).
class Chatterbox final : public IProcess {
 public:
  explicit Chatterbox(int t) : t_(t) {}
  Action on_round(const RoundContext& ctx, const InboxView&) override {
    Action a;
    a.sends.push_back(Outgoing{IdRange{0, t_}, MsgKind::kOther,
                               std::make_shared<IntPayload>(
                                   static_cast<int>(ctx.round.to_u64_saturating()))});
    return a;
  }
  Round next_wake(const Round& now) const override { return now; }

 private:
  int t_;
};

TEST(Simulator, MessageDeliveredNextRound) {
  std::vector<std::unique_ptr<IProcess>> procs;
  procs.push_back(std::make_unique<OneShotSender>(1, 3));
  auto receiver = std::make_unique<Receiver>();
  Receiver* rx = receiver.get();
  procs.push_back(std::move(receiver));

  Simulator sim(std::move(procs), std::make_unique<NoFaults>(), {});
  RunMetrics m = sim.run();  // keep sim (and the processes) alive for rx
  EXPECT_TRUE(m.all_retired);
  EXPECT_EQ(m.messages_total, 1u);
  EXPECT_EQ(rx->received_round, Round{4});  // sent at 3, delivered at 4
  EXPECT_EQ(rx->received_from, 0);
  EXPECT_EQ(rx->received_tag, 7);
}

TEST(Simulator, FastForwardSkipsIdleRounds) {
  std::vector<std::unique_ptr<IProcess>> procs;
  procs.push_back(std::make_unique<OneShotSender>(1, 1'000'000));
  auto receiver = std::make_unique<Receiver>();
  Receiver* rx = receiver.get();
  procs.push_back(std::move(receiver));

  Simulator sim(std::move(procs), std::make_unique<NoFaults>(), {});
  RunMetrics m = sim.run();
  EXPECT_TRUE(m.all_retired);
  EXPECT_EQ(rx->received_round, Round{1'000'001});
  EXPECT_LE(m.stepped_rounds, 4u);  // not a million rounds
  EXPECT_GE(m.fast_forward_jumps, 1u);
}

TEST(Simulator, FastForwardWorksBeyondU64) {
  std::vector<std::unique_ptr<IProcess>> procs;
  // A receiver-only system would deadlock; use a sender waking at a
  // beyond-u64 round to prove big-jump scheduling works.
  class LateActor final : public IProcess {
   public:
    Action on_round(const RoundContext& ctx, const InboxView&) override {
      acted_at = ctx.round;
      Action a;
      a.terminate = true;
      return a;
    }
    Round next_wake(const Round& now) const override {
      Round at = BigUint::pow2(100);
      return at > now ? at : now;
    }
    Round acted_at;
  };
  auto actor = std::make_unique<LateActor>();
  LateActor* ptr = actor.get();
  procs.push_back(std::move(actor));
  Simulator sim(std::move(procs), std::make_unique<NoFaults>(), {});
  RunMetrics m = sim.run();
  EXPECT_TRUE(m.all_retired);
  EXPECT_EQ(ptr->acted_at, BigUint::pow2(100));
  EXPECT_LE(m.stepped_rounds, 2u);  // round 0 plus the wake round
}

TEST(Simulator, WorkAccountingAndSink) {
  std::vector<std::unique_ptr<IProcess>> procs;
  procs.push_back(std::make_unique<Worker>(5));
  Simulator::Options opts;
  opts.n_units = 5;
  std::vector<std::int64_t> sunk;
  RunMetrics m = run_simulation(std::move(procs), std::make_unique<NoFaults>(), opts,
                                [&](int, std::int64_t u, const Round&) { sunk.push_back(u); });
  EXPECT_EQ(m.work_total, 5u);
  EXPECT_TRUE(m.all_units_done());
  EXPECT_EQ(sunk, (std::vector<std::int64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(m.max_concurrent_workers, 1u);
}

TEST(Simulator, DeadlockDetected) {
  std::vector<std::unique_ptr<IProcess>> procs;
  procs.push_back(std::make_unique<Receiver>());  // waits forever
  RunMetrics m = run_simulation(std::move(procs), std::make_unique<NoFaults>(), {});
  EXPECT_TRUE(m.deadlocked);
  EXPECT_FALSE(m.all_retired);
}

TEST(Simulator, CrashTruncatesBroadcastToPrefix) {
  // Process 0 broadcasts to 0..3 every round; crash it on its first action
  // delivering only a prefix of the flattened recipient sequence.
  std::vector<std::unique_ptr<IProcess>> procs;
  procs.push_back(std::make_unique<Chatterbox>(4));
  std::vector<Receiver*> rx;
  for (int i = 0; i < 3; ++i) {
    auto r = std::make_unique<Receiver>();
    rx.push_back(r.get());
    procs.push_back(std::move(r));
  }
  ScheduledFaults::Entry e;
  e.proc = 0;
  e.on_nth_action = 1;
  // Chatterbox's audience is {0,1,2,3} in ascending order; prefix 2 covers
  // recipients {0, 1}.
  e.plan.deliver_prefix = 2;
  Simulator sim(std::move(procs), std::make_unique<ScheduledFaults>(std::vector{e}), {});
  RunMetrics m = sim.run();
  EXPECT_EQ(m.crashes, 1u);
  EXPECT_EQ(m.messages_total, 2u);     // only the prefix counts as sent
  EXPECT_EQ(rx[0]->received_from, 0);  // process 1 got it
  EXPECT_EQ(rx[1]->received_from, -1);
  EXPECT_EQ(rx[2]->received_from, -1);
  // Processes 2,3 then deadlock (they wait forever): run reports it.
  EXPECT_TRUE(m.deadlocked);
}

TEST(Simulator, CrashCanSuppressWorkUnit) {
  std::vector<std::unique_ptr<IProcess>> procs;
  procs.push_back(std::make_unique<Worker>(10));
  procs.push_back(std::make_unique<Worker>(10));  // survivor so crash is allowed
  ScheduledFaults::Entry e;
  e.proc = 0;
  e.on_nth_action = 3;
  e.plan.work_completes = false;
  Simulator::Options opts;
  opts.n_units = 10;
  RunMetrics m = run_simulation(std::move(procs),
                                std::make_unique<ScheduledFaults>(std::vector{e}), opts);
  EXPECT_EQ(m.crashes, 1u);
  EXPECT_EQ(m.work_by_proc[0], 2u);   // third unit suppressed
  EXPECT_EQ(m.work_by_proc[1], 10u);  // untouched
}

TEST(Simulator, LastSurvivorNeverCrashes) {
  std::vector<std::unique_ptr<IProcess>> procs;
  procs.push_back(std::make_unique<Worker>(4));
  ScheduledFaults::Entry e;
  e.proc = 0;
  e.on_nth_action = 1;
  Simulator::Options opts;
  opts.n_units = 4;
  RunMetrics m = run_simulation(std::move(procs),
                                std::make_unique<ScheduledFaults>(std::vector{e}), opts);
  EXPECT_EQ(m.crashes, 0u);
  EXPECT_TRUE(m.all_units_done());
}

TEST(Simulator, StrictModeRejectsWorkPlusSend) {
  class Bad final : public IProcess {
    Action on_round(const RoundContext&, const InboxView&) override {
      Action a;
      a.work = 1;
      a.sends.push_back(Outgoing{0, MsgKind::kOther, std::make_shared<IntPayload>(0)});
      a.terminate = true;
      return a;
    }
    Round next_wake(const Round& now) const override { return now; }
  };
  std::vector<std::unique_ptr<IProcess>> procs;
  procs.push_back(std::make_unique<Bad>());
  Simulator::Options opts;
  opts.strict_one_op = true;
  Simulator sim(std::move(procs), std::make_unique<NoFaults>(), opts);
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(Simulator, StrictModeAllowsPollReplyAlongsideWork) {
  class PolledWorker final : public IProcess {
    Action on_round(const RoundContext&, const InboxView& inbox) override {
      Action a;
      a.work = 1;
      for (const Msg& msg : inbox)
        if (msg.kind == MsgKind::kPoll)
          a.sends.push_back(Outgoing{msg.from, MsgKind::kPollReply, nullptr});
      a.terminate = true;
      return a;
    }
    Round next_wake(const Round& now) const override { return now; }
  };
  std::vector<std::unique_ptr<IProcess>> procs;
  procs.push_back(std::make_unique<PolledWorker>());
  Simulator::Options opts;
  opts.strict_one_op = true;
  Simulator sim(std::move(procs), std::make_unique<NoFaults>(), opts);
  EXPECT_NO_THROW(sim.run());
}

TEST(Simulator, RunTwiceThrows) {
  std::vector<std::unique_ptr<IProcess>> procs;
  procs.push_back(std::make_unique<Worker>(1));
  Simulator sim(std::move(procs), std::make_unique<NoFaults>(), {});
  sim.run();
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(FaultInjector, WorkCascadeCrashesSequentially) {
  // Three workers working in parallel; cascade kills each after 2 units,
  // at most 2 crashes.
  std::vector<std::unique_ptr<IProcess>> procs;
  for (int i = 0; i < 3; ++i) procs.push_back(std::make_unique<Worker>(6));
  Simulator::Options opts;
  opts.n_units = 6;
  RunMetrics m = run_simulation(
      std::move(procs), std::make_unique<WorkCascadeFaults>(2, /*max_crashes=*/2), opts);
  EXPECT_EQ(m.crashes, 2u);
  // The survivor did all 6 units.
  std::uint64_t max_work = 0;
  for (auto w : m.work_by_proc) max_work = std::max(max_work, w);
  EXPECT_EQ(max_work, 6u);
}

TEST(FaultInjector, RandomFaultsRespectMaxCrashes) {
  std::vector<std::unique_ptr<IProcess>> procs;
  for (int i = 0; i < 8; ++i) procs.push_back(std::make_unique<Worker>(20));
  RunMetrics m = run_simulation(std::move(procs),
                                std::make_unique<RandomFaults>(0.9, 5, /*seed=*/42), {});
  EXPECT_LE(m.crashes, 5u);
  EXPECT_TRUE(m.all_retired);
}

// --- payload sharing (the ownership rules in message.h) ---------------------

// Payload that counts its constructions, so a test can assert a broadcast
// allocates exactly once regardless of recipient count.
struct CountedPayload final : Payload {
  static int constructions;
  int v;
  explicit CountedPayload(int v_in) : v(v_in) { ++constructions; }
  CountedPayload(const CountedPayload& o) : Payload(o), v(o.v) { ++constructions; }
};
int CountedPayload::constructions = 0;

// Broadcasts one CountedPayload to every other process in round 0, via the
// explicit-recipient-list broadcast() helper.
class CountingBroadcaster final : public IProcess {
 public:
  explicit CountingBroadcaster(int t) : t_(t) {}
  Action on_round(const RoundContext&, const InboxView&) override {
    Action a;
    std::vector<int> recipients;
    for (int i = 1; i < t_; ++i) recipients.push_back(i);
    a.sends.push_back(broadcast(recipients, MsgKind::kOther, std::make_shared<CountedPayload>(42)));
    a.terminate = true;
    return a;
  }
  Round next_wake(const Round& now) const override { return now; }

 private:
  int t_;
};

// Keeps the payload it received alive past on_round by copying the Msg's
// owning reference -- the retention idiom the inbox reuse contract in
// process.h prescribes (raw pointers or Msg views would dangle).  Also
// records how many owners the payload had at receipt time: under the
// broadcast ledger that is exactly one (the ledger record), however many
// recipients the broadcast had.
class PayloadObserver final : public IProcess {
 public:
  PayloadObserver(std::shared_ptr<const Payload>* slot, long* use_count)
      : slot_(slot), use_count_(use_count) {}
  Action on_round(const RoundContext&, const InboxView& inbox) override {
    Action a;
    if (!inbox.empty()) {
      const Msg first = inbox.front();
      *use_count_ = first.payload().use_count();
      *slot_ = first.payload();
      a.terminate = true;
    }
    return a;
  }
  Round next_wake(const Round&) const override { return never_round(); }

 private:
  std::shared_ptr<const Payload>* slot_;
  long* use_count_;
};

TEST(PayloadSharing, BroadcastAllocatesOncePerBroadcastNotPerRecipient) {
  constexpr int t = 17;
  CountedPayload::constructions = 0;
  std::vector<std::shared_ptr<const Payload>> seen(t);
  std::vector<long> owners(t, 0);
  std::vector<std::unique_ptr<IProcess>> procs;
  procs.push_back(std::make_unique<CountingBroadcaster>(t));
  for (int i = 1; i < t; ++i)
    procs.push_back(std::make_unique<PayloadObserver>(&seen[i], &owners[i]));
  RunMetrics m = run_simulation(std::move(procs), std::make_unique<NoFaults>(), {});
  ASSERT_TRUE(m.all_retired);
  EXPECT_EQ(m.messages_total, static_cast<std::uint64_t>(t - 1));

  // One allocation for the whole t-1 recipient broadcast...
  EXPECT_EQ(CountedPayload::constructions, 1);
  // ...and every recipient reads the SAME object (refcount sharing, no
  // clones), still alive because each kept a reference.
  const auto* first = dynamic_cast<const CountedPayload*>(seen[1].get());
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->v, 42);
  for (int i = 2; i < t; ++i) EXPECT_EQ(seen[i].get(), seen[1].get()) << "recipient " << i;
  // Delivery holds ONE owning reference -- the ledger record -- no matter
  // the fan-out; the envelope-per-pair plane held t-1 here.  Only the
  // first recipient's count is asserted: later recipients also see the
  // copies earlier observers retained, and GCC is free to elide those
  // matched refcount updates at -O2+ (it does), so their exact counts are
  // optimization-dependent.  The first recipient observes pure delivery
  // state either way.
  EXPECT_EQ(owners[1], 1);
}

TEST(PayloadSharing, ReceivedPayloadsAreImmutable) {
  // Msg::payload() is shared_ptr<const Payload> and as<T>() yields a const
  // pointer: a recipient cannot mutate what its peers will read.
  // (Compile-time property; pinned here so a refactor that drops the const
  // turns this test red at build time.)
  static_assert(std::is_same_v<decltype(std::declval<const Msg&>().as<CountedPayload>()),
                               const CountedPayload*>);
  static_assert(std::is_same_v<std::remove_cvref_t<decltype(std::declval<const Msg&>().payload())>,
                               std::shared_ptr<const Payload>>);
  static_assert(std::is_same_v<decltype(Envelope::payload), std::shared_ptr<const Payload>>);
  SUCCEED();
}

}  // namespace
}  // namespace dowork
