#include "protocols/protocol_c.h"

#include <gtest/gtest.h>

#include "core/runner.h"

namespace dowork {
namespace {

std::uint64_t u(std::int64_t v) { return static_cast<std::uint64_t>(v); }

// Theorem 3.8 bounds, generalized to padded T = 2^ceil(log2 t): work <=
// n + 2t, messages <= n + 8 T log T (plus small slack for the padding).
void expect_theorem_3_8_bounds(const DoAllConfig& cfg, const RunMetrics& m) {
  const int T = pow2_ceil(cfg.t);
  const int L = std::max(1, log2_of_pow2(T));
  EXPECT_LE(m.work_total, u(cfg.n) + 2 * u(cfg.t)) << "work bound (Thm 3.8a)";
  EXPECT_LE(m.messages_total, u(cfg.n) + 8 * u(T) * u(L) + 4 * u(T))
      << "message bound (Thm 3.8b)";
  EXPECT_LE(m.max_concurrent_workers, 1u) << "single active process (Lemma 3.4d)";
}

TEST(LevelTree, GeometryForEight) {
  LevelTree tr(8);
  EXPECT_EQ(tr.padded(), 8);
  EXPECT_EQ(tr.levels(), 3);
  EXPECT_EQ(tr.num_groups(), 7);
  // Level 1: one group of 8; level 2: two of 4; level 3: four pairs.
  EXPECT_EQ(tr.group_size(1), 8);
  EXPECT_EQ(tr.group_size(2), 4);
  EXPECT_EQ(tr.group_size(3), 2);
  EXPECT_EQ(tr.group_index(1, 5), 0);
  EXPECT_EQ(tr.group_index(2, 5), 2);   // second level-2 group
  EXPECT_EQ(tr.group_index(3, 5), 3 + 2);
  EXPECT_EQ(tr.group_base(3, 5), 4);
  EXPECT_EQ(tr.group_base(2, 5), 4);
  EXPECT_EQ(tr.group_base(1, 5), 0);
}

TEST(LevelTree, PadsToNextPowerOfTwo) {
  LevelTree tr(6);
  EXPECT_EQ(tr.padded(), 8);
  EXPECT_EQ(tr.levels(), 3);
}

TEST(ViewC, MergeKeepsFresherEntries) {
  ViewC a, b;
  a.retired = {0, 1, 0, 0};
  b.retired = {0, 0, 1, 0};
  a.point0 = 3;
  a.round0 = Round{10};
  b.point0 = 5;
  b.round0 = Round{20};
  a.point = {1, 2};
  a.round = {Round{5}, Round{9}};
  b.point = {3, 0};
  b.round = {Round{7}, Round{2}};
  a.merge(b);
  EXPECT_EQ(a.retired, (std::vector<std::uint8_t>{0, 1, 1, 0}));
  EXPECT_EQ(a.point0, 5);
  EXPECT_EQ(a.point[0], 3);  // b fresher
  EXPECT_EQ(a.point[1], 2);  // a fresher
  EXPECT_EQ(a.reduced(4), 5 - 1 + 2);
}

TEST(ProtocolC, DeadlinesAreExponentiallySeparated) {
  DoAllConfig cfg{16, 8};
  ProtocolCProcess p(cfg, 3);
  // D(m) halves (roughly) as m grows; more knowledge = earlier takeover.
  Round prev = p.deadline_for(1);
  for (std::int64_t m = 2; m < cfg.n + cfg.t; ++m) {
    Round d = p.deadline_for(m);
    EXPECT_LT(d, prev) << "m=" << m;
    prev = d;
  }
  // Zero-knowledge deadlines order by id, highest first.
  ProtocolCProcess hi(cfg, 7);
  EXPECT_LT(hi.deadline_for(0), p.deadline_for(0));
}

TEST(ProtocolC, RejectsOversizedInstances) {
  EXPECT_THROW(ProtocolCProcess(DoAllConfig{1000, 64}, 0), std::invalid_argument);
}

TEST(ProtocolC, FailureFreeWorkIsNearOptimal) {
  DoAllConfig cfg{32, 8};
  RunResult r = run_do_all("C", cfg, std::make_unique<NoFaults>());
  ASSERT_TRUE(r.ok()) << r.violation;
  // Process 0 does all n units.  Later deadline-driven activations may redo
  // the unreported tail (that inherent slack is the 2t term of Thm 3.8a),
  // but early units are never repeated.
  EXPECT_EQ(r.metrics.unit_multiplicity[0], 1u);
  EXPECT_GE(r.metrics.work_total, 32u);
  expect_theorem_3_8_bounds(cfg, r.metrics);
  // Every unit was reported: n ordinary messages at least.
  EXPECT_GE(r.metrics.messages_of(MsgKind::kOrdinary), 32u);
}

TEST(ProtocolC, RunsForExponentiallyManyRoundsButFewSteps) {
  DoAllConfig cfg{16, 4};
  RunResult r = run_do_all("C", cfg, std::make_unique<NoFaults>());
  ASSERT_TRUE(r.ok()) << r.violation;
  // The last deadline-based activation happens at a round around
  // K * 2^(n+t-ish): astronomically large, yet simulated in few steps.
  EXPECT_GT(r.metrics.last_retire_round, BigUint::pow2(12));
  EXPECT_LT(r.metrics.stepped_rounds, 10'000u);
  // Exponential-time bound of Theorem 3.8(c): t*K*(n+t)*2^(n+t).
  Round limit = (Round{u(cfg.t)} * ProtocolCProcess(cfg, 0).contact_bound_k() *
                 u(cfg.n + cfg.t))
                << static_cast<unsigned>(cfg.n + cfg.t);
  EXPECT_LE(r.metrics.last_retire_round, limit);
}

TEST(ProtocolC, SingleProcessDegenerates) {
  DoAllConfig cfg{10, 1};
  RunResult r = run_do_all("C", cfg, std::make_unique<NoFaults>());
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_EQ(r.metrics.work_total, 10u);
  EXPECT_EQ(r.metrics.messages_total, 0u);
}

TEST(ProtocolC, PairOfProcessesWithCrash) {
  DoAllConfig cfg{8, 2};
  std::vector<ScheduledFaults::Entry> entries{{0, 5, CrashPlan{true, 0}}};
  RunResult r = run_do_all("C", cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
  ASSERT_TRUE(r.ok()) << r.violation;
  expect_theorem_3_8_bounds(cfg, r.metrics);
}

TEST(ProtocolC, CascadeOfCrashesStaysWorkOptimal) {
  DoAllConfig cfg{32, 8};
  // Each active process dies after 3 units, crash completing the unit but
  // suppressing the report broadcast.
  RunResult r = run_do_all("C", cfg,
                           std::make_unique<WorkCascadeFaults>(3, cfg.t - 1, 0));
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_EQ(r.metrics.crashes, u(cfg.t - 1));
  expect_theorem_3_8_bounds(cfg, r.metrics);
}

TEST(ProtocolC, FaultDetectionAvoidsReportingToTheDead) {
  DoAllConfig cfg{24, 8};
  // Crash processes 1..6 before they ever act; process 0 only discovers this
  // while doing fault detection... process 0 is active first, so instead
  // crash 0 after 1 unit and let 7's takeover exercise detection.
  std::vector<ScheduledFaults::Entry> entries;
  entries.push_back({0, 3, CrashPlan{true, 0}});
  RunResult r = run_do_all("C", cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
  ASSERT_TRUE(r.ok()) << r.violation;
  expect_theorem_3_8_bounds(cfg, r.metrics);
  EXPECT_GT(r.metrics.messages_of(MsgKind::kPoll), 0u);
}

TEST(ProtocolCBatch, CutsMessagesBelowN) {
  DoAllConfig cfg{128, 4};
  RunResult base = run_do_all("C", cfg, std::make_unique<NoFaults>());
  RunResult batch = run_do_all("C_batch", cfg, std::make_unique<NoFaults>());
  ASSERT_TRUE(base.ok()) << base.violation;
  ASSERT_TRUE(batch.ok()) << batch.violation;
  // Corollary 3.9: reporting every ceil(n/t) units removes the n term.
  EXPECT_GE(base.metrics.messages_total, 128u);
  EXPECT_LT(batch.metrics.messages_total, 64u);
  EXPECT_LE(batch.metrics.work_total, 2u * 128u + 3u * 4u);
}

TEST(NaiveC, SectionThreeCascadeRedoesQuadraticWork) {
  // The Section 3 scenario: every active process dies the moment it performs
  // the last unit, so its final report is lost.  Without fault detection the
  // tail keeps being redone and re-reported to dead processes (Theta(n+t^2));
  // Protocol C's pointer-guided polling discovers the dead and hands the
  // tail knowledge to a live process instead.
  DoAllConfig cfg{31, 32};  // n = t - 1, the paper's shape
  auto adversary = [&] { return std::make_unique<CrashOnUnitFaults>(cfg.n, cfg.t - 1); };
  RunResult naive = run_do_all("naive_C", cfg, adversary());
  RunResult smart = run_do_all("C", cfg, adversary());
  ASSERT_TRUE(naive.ok()) << naive.violation;
  ASSERT_TRUE(smart.ok()) << smart.violation;
  EXPECT_LE(smart.metrics.work_total, u(cfg.n) + 2 * u(cfg.t)) << "Thm 3.8a";
  // Naive work grows quadratically: well above C's linear bound.
  EXPECT_GT(naive.metrics.work_total, 3 * u(cfg.n) + 2 * u(cfg.t));
}

struct SweepCase {
  std::int64_t n;
  int t;
  int fault_mode;
  unsigned seed;
};

class ProtocolCSweep : public ::testing::TestWithParam<SweepCase> {};

std::unique_ptr<FaultInjector> make_faults(const SweepCase& c) {
  switch (c.fault_mode) {
    case 1:
      return std::make_unique<WorkCascadeFaults>(1, c.t - 1, 0);
    case 2:
      return std::make_unique<WorkCascadeFaults>(u(ceil_div(c.n, c.t)) + 1, c.t - 1, 1);
    case 3:
      return std::make_unique<RandomFaults>(0.05, c.t - 1, c.seed);
    default:
      return std::make_unique<NoFaults>();
  }
}

TEST_P(ProtocolCSweep, CompletesWithinTheorem38Bounds) {
  const SweepCase& c = GetParam();
  DoAllConfig cfg{c.n, c.t};
  RunResult r = run_do_all("C", cfg, make_faults(c));
  ASSERT_TRUE(r.ok()) << r.violation << " (" << cfg.to_string() << ")";
  expect_theorem_3_8_bounds(cfg, r.metrics);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProtocolCSweep,
    ::testing::Values(
        SweepCase{16, 4, 0, 0}, SweepCase{16, 4, 1, 0}, SweepCase{16, 4, 2, 0},
        SweepCase{16, 4, 3, 1}, SweepCase{40, 8, 1, 0}, SweepCase{40, 8, 2, 0},
        SweepCase{40, 8, 3, 2}, SweepCase{64, 16, 1, 0}, SweepCase{64, 16, 3, 3},
        SweepCase{20, 6, 1, 0},   // padded t
        SweepCase{20, 6, 3, 4}, SweepCase{4, 8, 1, 0},  // n < t
        SweepCase{1, 4, 1, 0}, SweepCase{30, 5, 3, 5}, SweepCase{96, 32, 1, 0},
        SweepCase{96, 32, 3, 6}, SweepCase{50, 2, 1, 0}, SweepCase{50, 2, 3, 7},
        SweepCase{33, 7, 2, 0}, SweepCase{33, 7, 3, 8}));

class ProtocolCBatchSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ProtocolCBatchSweep, BatchVariantCompletes) {
  const SweepCase& c = GetParam();
  DoAllConfig cfg{c.n, c.t};
  RunResult r = run_do_all("C_batch", cfg, make_faults(c));
  ASSERT_TRUE(r.ok()) << r.violation << " (" << cfg.to_string() << ")";
  // Looser work bound: a takeover may redo up to a batch per group cycle.
  EXPECT_LE(r.metrics.work_total, 2 * u(std::max(cfg.n, (std::int64_t)cfg.t)) + 3 * u(cfg.t));
  EXPECT_LE(r.metrics.max_concurrent_workers, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProtocolCBatchSweep,
    ::testing::Values(SweepCase{64, 4, 0, 0}, SweepCase{64, 4, 1, 0}, SweepCase{64, 4, 3, 1},
                      SweepCase{96, 8, 1, 0}, SweepCase{96, 8, 2, 0}, SweepCase{96, 8, 3, 2},
                      SweepCase{64, 16, 1, 0}, SweepCase{64, 16, 3, 3}, SweepCase{40, 6, 3, 4},
                      SweepCase{128, 32, 1, 0}));

class ProtocolCRandom : public ::testing::TestWithParam<unsigned> {};

TEST_P(ProtocolCRandom, RandomSchedulesAlwaysComplete) {
  DoAllConfig cfg{48, 12};
  RunResult r = run_do_all("C", cfg, std::make_unique<RandomFaults>(0.08, 11, GetParam()));
  ASSERT_TRUE(r.ok()) << r.violation;
  expect_theorem_3_8_bounds(cfg, r.metrics);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolCRandom, ::testing::Range(0u, 20u));

}  // namespace
}  // namespace dowork
