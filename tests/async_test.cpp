#include "async/protocol_a_async.h"

#include <gtest/gtest.h>

namespace dowork {
namespace {

std::uint64_t u(std::int64_t v) { return static_cast<std::uint64_t>(v); }

void expect_work_and_message_bounds(const DoAllConfig& cfg, const AsyncMetrics& m) {
  const std::int64_t n_prime = std::max(cfg.n, static_cast<std::int64_t>(cfg.t));
  const std::int64_t s = int_sqrt_ceil(cfg.t);
  EXPECT_TRUE(m.all_retired);
  EXPECT_TRUE(m.all_units_done());
  // Same Theorem 2.3 bounds as the synchronous protocol: asynchrony changes
  // timing, never effort.
  EXPECT_LE(m.work_total, 3 * u(n_prime) + u(cfg.t));
  EXPECT_LE(m.messages_total, 9 * u(cfg.t) * u(s) + 9 * u(s) * u(s));
}

TEST(AsyncProtocolA, FailureFreeCompletes) {
  DoAllConfig cfg{64, 16};
  AsyncSim::Options opts;
  opts.seed = 1;
  AsyncMetrics m = run_async_protocol_a(cfg, opts);
  expect_work_and_message_bounds(cfg, m);
  EXPECT_EQ(m.work_total, 64u);  // process 0 never yields
  EXPECT_EQ(m.crashes, 0u);
}

TEST(AsyncProtocolA, TakeoverIsDrivenByTheDetectorNotDeadlines) {
  DoAllConfig cfg{32, 9};
  AsyncSim::Options opts;
  opts.seed = 2;
  opts.fd_max_delay = 50;
  std::vector<std::optional<AsyncSim::CrashSpec>> crashes(static_cast<std::size_t>(cfg.t));
  crashes[0] = AsyncSim::CrashSpec{5, 0, true};  // process 0 dies on its 5th action
  AsyncMetrics m = run_async_protocol_a(cfg, opts, std::move(crashes));
  expect_work_and_message_bounds(cfg, m);
  EXPECT_EQ(m.crashes, 1u);
  EXPECT_GT(m.fd_notices, 0u);
}

TEST(AsyncProtocolA, CascadeOfCrashes) {
  DoAllConfig cfg{40, 8};
  AsyncSim::Options opts;
  opts.seed = 3;
  std::vector<std::optional<AsyncSim::CrashSpec>> crashes(static_cast<std::size_t>(cfg.t));
  // Each process dies shortly after becoming active (if it ever does).
  for (int p = 0; p < cfg.t - 1; ++p)
    crashes[static_cast<std::size_t>(p)] = AsyncSim::CrashSpec{3, 1, true};
  AsyncMetrics m = run_async_protocol_a(cfg, opts, std::move(crashes));
  expect_work_and_message_bounds(cfg, m);
  EXPECT_EQ(m.crashes, u(cfg.t - 1));
}

class AsyncDelaySweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(AsyncDelaySweep, CompletionIsDelayInvariant) {
  // Whatever delays the adversary picks for messages and detector latency,
  // the protocol completes with the same effort bounds.
  DoAllConfig cfg{48, 12};
  AsyncSim::Options opts;
  opts.seed = GetParam();
  opts.min_delay = 1 + GetParam() % 3;
  opts.max_delay = 5 + 17 * (GetParam() % 4);
  opts.fd_max_delay = 7 + 23 * (GetParam() % 3);
  std::vector<std::optional<AsyncSim::CrashSpec>> crashes(static_cast<std::size_t>(cfg.t));
  for (int p = 0; p < cfg.t - 1; p += 2)
    crashes[static_cast<std::size_t>(p)] =
        AsyncSim::CrashSpec{1 + GetParam() % 7, GetParam() % 3, (GetParam() % 2) == 0};
  AsyncMetrics m = run_async_protocol_a(cfg, opts, std::move(crashes));
  expect_work_and_message_bounds(cfg, m);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsyncDelaySweep, ::testing::Range(0u, 24u));

TEST(AsyncProtocolA, SingleProcess) {
  DoAllConfig cfg{5, 1};
  AsyncSim::Options opts;
  AsyncMetrics m = run_async_protocol_a(cfg, opts);
  EXPECT_TRUE(m.all_retired);
  EXPECT_EQ(m.work_total, 5u);
  EXPECT_EQ(m.messages_total, 0u);
}

}  // namespace
}  // namespace dowork
