// Cross-protocol integration and property tests: every registered protocol,
// under systematic adversaries, must complete the work whenever one process
// survives, with sane accounting.
#include <gtest/gtest.h>

#include "core/runner.h"

namespace dowork {
namespace {

std::vector<std::string> protocol_names() {
  std::vector<std::string> names;
  for (const ProtocolInfo& p : all_protocols()) names.push_back(p.name);
  return names;
}

// --- systematic crash-position sweep --------------------------------------
// Crash the k-th non-idle action of the process that reaches it first, for
// every k in a range: this walks the crash point across work, partial
// checkpoint, full checkpoint, agreement and probing rounds of each
// protocol.  Completion must hold at every position.

struct CrashPosCase {
  std::string protocol;
  std::uint64_t kth_action;
};

class CrashPositionSweep : public ::testing::TestWithParam<CrashPosCase> {};

TEST_P(CrashPositionSweep, AnySingleCrashPositionCompletes) {
  const auto& c = GetParam();
  DoAllConfig cfg{24, 6};
  // Process 0 is the first to act in every protocol here; crash it at the
  // exact k-th action with an ugly half-delivered broadcast.
  std::vector<ScheduledFaults::Entry> entries{{0, c.kth_action, CrashPlan{false, 1}}};
  RunResult r =
      run_do_all(c.protocol, cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
  ASSERT_TRUE(r.ok()) << c.protocol << " crash at action " << c.kth_action << ": "
                      << r.violation;
}

std::vector<CrashPosCase> crash_position_grid() {
  std::vector<CrashPosCase> cases;
  for (const std::string& proto : protocol_names()) {
    for (std::uint64_t k = 1; k <= 30; k += (k < 10 ? 1 : 3))
      cases.push_back({proto, k});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, CrashPositionSweep,
                         ::testing::ValuesIn(crash_position_grid()),
                         [](const auto& info) {
                           return info.param.protocol + "_k" +
                                  std::to_string(info.param.kth_action);
                         });

// --- two-crash interleavings ----------------------------------------------

struct DoubleCrashCase {
  std::string protocol;
  std::uint64_t k0, k1;
};

class DoubleCrashSweep : public ::testing::TestWithParam<DoubleCrashCase> {};

TEST_P(DoubleCrashSweep, TwoCrashesAtChosenPositionsComplete) {
  const auto& c = GetParam();
  DoAllConfig cfg{20, 5};
  std::vector<ScheduledFaults::Entry> entries{{0, c.k0, CrashPlan{true, 0}},
                                              {1, c.k1, CrashPlan{false, 2}}};
  RunResult r =
      run_do_all(c.protocol, cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
  ASSERT_TRUE(r.ok()) << c.protocol << " crashes at " << c.k0 << "," << c.k1 << ": "
                      << r.violation;
}

std::vector<DoubleCrashCase> double_crash_grid() {
  std::vector<DoubleCrashCase> cases;
  for (const std::string& proto : protocol_names()) {
    for (std::uint64_t k0 : {1u, 4u, 9u, 17u})
      for (std::uint64_t k1 : {1u, 3u, 8u, 20u}) cases.push_back({proto, k0, k1});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, DoubleCrashSweep,
                         ::testing::ValuesIn(double_crash_grid()),
                         [](const auto& info) {
                           return info.param.protocol + "_" + std::to_string(info.param.k0) +
                                  "_" + std::to_string(info.param.k1);
                         });

// --- accounting sanity across protocols ------------------------------------

class ProtocolAccounting : public ::testing::TestWithParam<std::string> {};

TEST_P(ProtocolAccounting, MetricsAreInternallyConsistent) {
  DoAllConfig cfg{30, 6};
  RunResult r = run_do_all(GetParam(), cfg, std::make_unique<RandomFaults>(0.06, 5, 7));
  ASSERT_TRUE(r.ok()) << r.violation;
  const RunMetrics& m = r.metrics;

  std::uint64_t by_kind = 0;
  for (std::uint64_t v : m.messages_by_kind) by_kind += v;
  EXPECT_EQ(by_kind, m.messages_total);

  std::uint64_t by_proc_w = 0, by_proc_m = 0;
  for (std::uint64_t v : m.work_by_proc) by_proc_w += v;
  for (std::uint64_t v : m.messages_by_proc) by_proc_m += v;
  EXPECT_EQ(by_proc_w, m.work_total);
  EXPECT_EQ(by_proc_m, m.messages_total);

  std::uint64_t by_unit = 0;
  for (std::uint64_t v : m.unit_multiplicity) by_unit += v;
  EXPECT_EQ(by_unit, m.work_total);
  EXPECT_EQ(m.effort(), m.work_total + m.messages_total);
  EXPECT_EQ(m.crashes + m.terminated, static_cast<std::uint64_t>(cfg.t));
}

TEST_P(ProtocolAccounting, FailureFreeDoesEveryUnitAtMostTwicePerProcess) {
  DoAllConfig cfg{30, 6};
  RunResult r = run_do_all(GetParam(), cfg, std::make_unique<NoFaults>());
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_EQ(r.metrics.crashes, 0u);
  for (std::uint64_t mult : r.metrics.unit_multiplicity)
    EXPECT_LE(mult, static_cast<std::uint64_t>(cfg.t));
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolAccounting,
                         ::testing::ValuesIn(protocol_names()),
                         [](const auto& info) { return info.param; });

// --- work optimality comparison ---------------------------------------------

TEST(Integration, WorkOptimalProtocolsBeatBaselineAllUnderNoFaults) {
  DoAllConfig cfg{120, 16};
  RunResult all = run_do_all("baseline_all", cfg, std::make_unique<NoFaults>());
  for (const char* proto : {"A", "B", "C", "D"}) {
    RunResult r = run_do_all(proto, cfg, std::make_unique<NoFaults>());
    ASSERT_TRUE(r.ok());
    EXPECT_LT(r.metrics.work_total, all.metrics.work_total / 4) << proto;
  }
}

TEST(Integration, DeterministicGivenSeed) {
  DoAllConfig cfg{50, 8};
  for (const char* proto : {"A", "B", "C", "D"}) {
    RunResult r1 = run_do_all(proto, cfg, std::make_unique<RandomFaults>(0.1, 7, 99));
    RunResult r2 = run_do_all(proto, cfg, std::make_unique<RandomFaults>(0.1, 7, 99));
    ASSERT_TRUE(r1.ok());
    EXPECT_EQ(r1.metrics.work_total, r2.metrics.work_total) << proto;
    EXPECT_EQ(r1.metrics.messages_total, r2.metrics.messages_total) << proto;
    EXPECT_EQ(r1.metrics.last_retire_round, r2.metrics.last_retire_round) << proto;
    EXPECT_EQ(r1.metrics.crashes, r2.metrics.crashes) << proto;
  }
}

TEST(Integration, SequentialProtocolsNeverOverlapWorkers) {
  // Stronger check than the verifier default: run many seeds.
  for (unsigned seed = 0; seed < 10; ++seed) {
    for (const char* proto : {"A", "B", "C", "baseline_checkpoint"}) {
      DoAllConfig cfg{36, 9};
      RunResult r = run_do_all(proto, cfg, std::make_unique<RandomFaults>(0.1, 8, seed));
      ASSERT_TRUE(r.ok()) << proto << " seed " << seed << ": " << r.violation;
      EXPECT_LE(r.metrics.max_concurrent_workers, 1u) << proto << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace dowork
