// Tests for the dynamic-workload extension of Protocol D (work arriving at
// individual sites over time, not initially common knowledge).
#include <gtest/gtest.h>

#include "dynamic/dynamic_d.h"

namespace dowork {
namespace {

DynamicConfig three_batches(int t) {
  DynamicConfig cfg;
  cfg.t = t;
  cfg.max_units = 30;
  cfg.horizon = 60;
  cfg.arrivals = {
      {0, 0, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
      {12, 1 % t, {11, 12, 13, 14, 15, 16, 17, 18, 19, 20}},
      {30, 2 % t, {21, 22, 23, 24, 25, 26, 27, 28, 29, 30}},
  };
  return cfg;
}

TEST(DynamicConfig, ValidationCatchesBadSchedules) {
  DynamicConfig cfg;
  cfg.t = 2;
  cfg.max_units = 4;
  cfg.horizon = 10;
  cfg.arrivals = {{3, 0, {1, 1}}};  // duplicate unit
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.arrivals = {{12, 0, {1}}};  // arrival past the horizon
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.arrivals = {{3, 5, {1}}};  // bad proc
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(DynamicD, FailureFreePerformsEverythingExactlyOnce) {
  DynamicConfig cfg = three_batches(5);
  DynamicRunResult r = run_dynamic_do_all(cfg, std::make_unique<NoFaults>());
  EXPECT_TRUE(r.metrics.all_retired);
  EXPECT_TRUE(r.all_known_work_done);
  EXPECT_TRUE(r.lost_units.empty());
  EXPECT_EQ(r.metrics.work_total, 30u);  // no redo without failures
  for (std::size_t u = 0; u < 30; ++u) EXPECT_EQ(r.metrics.unit_multiplicity[u], 1u) << u;
}

TEST(DynamicD, WorkArrivingMidPhaseIsPickedUpNextPhase) {
  DynamicConfig cfg;
  cfg.t = 3;
  cfg.max_units = 6;
  cfg.horizon = 40;
  cfg.arrivals = {{0, 0, {1, 2, 3}}, {2, 1, {4, 5, 6}}};  // second batch lands mid-phase-1
  DynamicRunResult r = run_dynamic_do_all(cfg, std::make_unique<NoFaults>());
  EXPECT_TRUE(r.all_known_work_done);
  EXPECT_EQ(r.metrics.work_total, 6u);
}

TEST(DynamicD, SingleProcess) {
  DynamicConfig cfg;
  cfg.t = 1;
  cfg.max_units = 5;
  cfg.horizon = 20;
  cfg.arrivals = {{0, 0, {1, 2}}, {7, 0, {3, 4, 5}}};
  DynamicRunResult r = run_dynamic_do_all(cfg, std::make_unique<NoFaults>());
  EXPECT_TRUE(r.all_known_work_done);
  EXPECT_EQ(r.metrics.messages_total, 0u);
}

TEST(DynamicD, CrashesDoNotLoseAnnouncedWork) {
  DynamicConfig cfg = three_batches(6);
  // Crash processes 3..5 (never arrival sites) spread over the run.
  std::vector<ScheduledFaults::Entry> entries{{3, 2, CrashPlan{true, 0}},
                                              {4, 6, CrashPlan{false, 1}},
                                              {5, 10, CrashPlan{true, 2}}};
  DynamicRunResult r =
      run_dynamic_do_all(cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
  EXPECT_TRUE(r.metrics.all_retired);
  EXPECT_TRUE(r.all_known_work_done);
  EXPECT_TRUE(r.lost_units.empty());
  EXPECT_EQ(r.metrics.crashes, 3u);
  // Redo bounded: crashed slices redone at most once each here.
  EXPECT_LE(r.metrics.work_total, 30u + 3u * 10u);
}

TEST(DynamicD, ArrivalSiteCrashingBeforePropagationLosesOnlyItsFreshUnits) {
  DynamicConfig cfg;
  cfg.t = 4;
  cfg.max_units = 8;
  cfg.horizon = 50;
  cfg.arrivals = {{0, 0, {1, 2, 3, 4}}, {20, 2, {5, 6, 7, 8}}};
  // Process 2 receives the second batch around round 20 and is crashed on
  // its next non-idle action before it can gossip the batch... its earlier
  // actions already happened, so schedule a late crash: its 30th action.
  std::vector<ScheduledFaults::Entry> entries{{2, 12, CrashPlan{true, 0}}};
  DynamicRunResult r =
      run_dynamic_do_all(cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
  EXPECT_TRUE(r.metrics.all_retired);
  // Whatever was lost must be exactly (a subset of) the crashed site's
  // fresh batch, and the loss is flagged as legitimate.
  EXPECT_TRUE(r.all_known_work_done);
  for (std::int64_t u : r.lost_units) EXPECT_GE(u, 5);
  // The first batch is never lost.
  for (int u = 0; u < 4; ++u) EXPECT_GE(r.metrics.unit_multiplicity[u], 1u);
}

class DynamicDRandom : public ::testing::TestWithParam<unsigned> {};

TEST_P(DynamicDRandom, RandomCrashesNeverLoseAnnouncedWork) {
  DynamicConfig cfg = three_batches(8);
  DynamicRunResult r =
      run_dynamic_do_all(cfg, std::make_unique<RandomFaults>(0.04, 5, GetParam()));
  EXPECT_TRUE(r.metrics.all_retired);
  EXPECT_TRUE(r.all_known_work_done) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicDRandom, ::testing::Range(0u, 20u));

}  // namespace
}  // namespace dowork
