// verify_run's invariant checks and, in particular, the network-weather
// waiver: the sequentiality invariant is a theorem about reliable delivery,
// so it is waived exactly when a net_* counter is nonzero -- while the
// completion and unit-coverage requirements survive any weather.
#include "core/verifier.h"

#include <gtest/gtest.h>

#include "core/registry.h"
#include "core/work.h"
#include "sim/metrics.h"

namespace dowork {
namespace {

DoAllConfig config(std::int64_t n, int t) {
  DoAllConfig cfg;
  cfg.n = n;
  cfg.t = t;
  return cfg;
}

ProtocolInfo sequential_info() {
  ProtocolInfo info;
  info.name = "test_seq";
  info.sequential = true;
  return info;
}

ProtocolInfo concurrent_info() {
  ProtocolInfo info;
  info.name = "test_conc";
  info.sequential = false;
  return info;
}

// A run that satisfies every requirement for config(n, t).
RunMetrics clean_metrics(std::int64_t n) {
  RunMetrics m;
  m.all_retired = true;
  m.unit_multiplicity.assign(static_cast<std::size_t>(n), 1);
  m.max_concurrent_workers = 1;
  return m;
}

TEST(VerifierTest, CleanRunPasses) {
  EXPECT_EQ(verify_run(sequential_info(), config(4, 2), clean_metrics(4)), "");
}

TEST(VerifierTest, RoundCapIsReportedFirst) {
  // A capped run is a non-result: the cap outranks every other diagnosis,
  // including deadlock and missing retirement.
  RunMetrics m = clean_metrics(4);
  m.hit_round_cap = true;
  m.deadlocked = true;
  m.all_retired = false;
  EXPECT_EQ(verify_run(sequential_info(), config(4, 2), m),
            "run hit the stepped-round cap");
}

TEST(VerifierTest, DeadlockOutranksUnretired) {
  RunMetrics m = clean_metrics(4);
  m.deadlocked = true;
  m.all_retired = false;
  EXPECT_EQ(verify_run(sequential_info(), config(4, 2), m),
            "run deadlocked: live processes with no timers or messages");
}

TEST(VerifierTest, UnretiredProcessesFail) {
  RunMetrics m = clean_metrics(4);
  m.all_retired = false;
  EXPECT_EQ(verify_run(sequential_info(), config(4, 2), m),
            "run ended with unretired processes");
}

TEST(VerifierTest, MisconfiguredMultiplicityVectorFails) {
  RunMetrics m = clean_metrics(3);  // one slot short for n = 4
  EXPECT_EQ(verify_run(sequential_info(), config(4, 2), m),
            "metrics not configured with n units");
}

TEST(VerifierTest, MissedUnitIsNamedOneIndexed) {
  RunMetrics m = clean_metrics(4);
  m.unit_multiplicity[2] = 0;  // unit 3 in the paper's 1..n numbering
  EXPECT_EQ(verify_run(sequential_info(), config(4, 2), m),
            "unit 3 was never performed");
}

TEST(VerifierTest, SequentialOverlapFailsWithoutWeather) {
  RunMetrics m = clean_metrics(4);
  m.max_concurrent_workers = 3;
  EXPECT_EQ(verify_run(sequential_info(), config(4, 2), m),
            "sequential protocol had 3 concurrent workers");
}

TEST(VerifierTest, ConcurrentProtocolMayOverlap) {
  RunMetrics m = clean_metrics(4);
  m.max_concurrent_workers = 2;
  EXPECT_EQ(verify_run(concurrent_info(), config(4, 2), m), "");
}

TEST(VerifierTest, SequentialityWaivedIffSomeNetCounterNonzero) {
  // Each of the three weather counters alone waives the overlap invariant;
  // with all three zero the same run fails it.
  for (int which = 0; which < 3; ++which) {
    RunMetrics m = clean_metrics(4);
    m.max_concurrent_workers = 2;
    if (which == 0) m.net_dropped = 1;
    if (which == 1) m.net_blocked = 1;
    if (which == 2) m.net_delayed = 1;
    EXPECT_EQ(verify_run(sequential_info(), config(4, 2), m), "")
        << "counter " << which << " should waive sequentiality";
  }
  RunMetrics calm = clean_metrics(4);
  calm.max_concurrent_workers = 2;
  EXPECT_EQ(verify_run(sequential_info(), config(4, 2), calm),
            "sequential protocol had 2 concurrent workers");
}

TEST(VerifierTest, WeatherDoesNotWaiveCompletionOrCoverage) {
  // Drops and partitions excuse overlap, never an incomplete run: a dropped
  // delivery that starves a unit must still fail coverage...
  RunMetrics m = clean_metrics(4);
  m.net_dropped = 7;
  m.unit_multiplicity[0] = 0;
  EXPECT_EQ(verify_run(sequential_info(), config(4, 2), m),
            "unit 1 was never performed");

  // ...and a partition that wedges the run must still fail completion.
  RunMetrics blocked = clean_metrics(4);
  blocked.net_blocked = 3;
  blocked.all_retired = false;
  EXPECT_EQ(verify_run(sequential_info(), config(4, 2), blocked),
            "run ended with unretired processes");
}

}  // namespace
}  // namespace dowork
