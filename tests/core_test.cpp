// Tests for the core harness: registry, runner, verifier, and the small
// arithmetic helpers in core/work.h.
#include <gtest/gtest.h>

#include "core/runner.h"

namespace dowork {
namespace {

TEST(Work, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(11, 5), 3);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(ceil_div(0, 5), 0);
}

TEST(Work, IntSqrtCeil) {
  EXPECT_EQ(int_sqrt_ceil(1), 1);
  EXPECT_EQ(int_sqrt_ceil(2), 2);
  EXPECT_EQ(int_sqrt_ceil(4), 2);
  EXPECT_EQ(int_sqrt_ceil(5), 3);
  EXPECT_EQ(int_sqrt_ceil(9), 3);
  EXPECT_EQ(int_sqrt_ceil(10), 4);
  EXPECT_EQ(int_sqrt_ceil(100), 10);
  EXPECT_EQ(int_sqrt_ceil(101), 11);
}

TEST(Work, Pow2Helpers) {
  EXPECT_EQ(pow2_ceil(1), 1);
  EXPECT_EQ(pow2_ceil(2), 2);
  EXPECT_EQ(pow2_ceil(3), 4);
  EXPECT_EQ(pow2_ceil(17), 32);
  EXPECT_EQ(log2_of_pow2(1), 0);
  EXPECT_EQ(log2_of_pow2(32), 5);
}

TEST(Work, ConfigValidation) {
  EXPECT_THROW(DoAllConfig({0, 4}).validate(), std::invalid_argument);
  EXPECT_THROW(DoAllConfig({4, 0}).validate(), std::invalid_argument);
  EXPECT_NO_THROW(DoAllConfig({1, 1}).validate());
}

TEST(Registry, ContainsAllPaperProtocols) {
  for (const char* name :
       {"baseline_all", "baseline_checkpoint", "A", "B", "C", "C_batch", "naive_C", "D"}) {
    const ProtocolInfo& info = find_protocol(name);
    EXPECT_EQ(info.name, name);
    ASSERT_TRUE(info.make_proc != nullptr);
  }
}

TEST(Registry, SequentialFlagsMatchTheProtocols) {
  EXPECT_FALSE(find_protocol("baseline_all").sequential);
  EXPECT_FALSE(find_protocol("D").sequential);
  for (const char* name : {"baseline_checkpoint", "A", "B", "C", "C_batch", "naive_C"})
    EXPECT_TRUE(find_protocol(name).sequential) << name;
}

TEST(Registry, UnknownProtocolThrows) {
  EXPECT_THROW(find_protocol("protocol_x"), std::invalid_argument);
}

TEST(Registry, MakeProcessesBuildsTDistinctProcesses) {
  DoAllConfig cfg{10, 5};
  auto procs = make_processes(find_protocol("A"), cfg);
  EXPECT_EQ(procs.size(), 5u);
  for (const auto& p : procs) EXPECT_NE(p, nullptr);
}

TEST(Verifier, FlagsMissingUnits) {
  DoAllConfig cfg{3, 2};
  RunMetrics m;
  m.all_retired = true;
  m.unit_multiplicity = {1, 0, 1};
  std::string v = verify_run(find_protocol("A"), cfg, m);
  EXPECT_NE(v.find("unit 2"), std::string::npos);
}

TEST(Verifier, FlagsDeadlock) {
  DoAllConfig cfg{1, 1};
  RunMetrics m;
  m.deadlocked = true;
  m.unit_multiplicity = {1};
  EXPECT_NE(verify_run(find_protocol("A"), cfg, m).find("deadlock"), std::string::npos);
}

TEST(Verifier, FlagsConcurrentWorkersForSequentialProtocols) {
  DoAllConfig cfg{2, 2};
  RunMetrics m;
  m.all_retired = true;
  m.unit_multiplicity = {1, 1};
  m.max_concurrent_workers = 2;
  EXPECT_FALSE(verify_run(find_protocol("A"), cfg, m).empty());
  EXPECT_TRUE(verify_run(find_protocol("D"), cfg, m).empty());  // D is parallel
}

TEST(Verifier, FlagsRoundCap) {
  DoAllConfig cfg{1, 1};
  RunMetrics m;
  m.hit_round_cap = true;
  m.unit_multiplicity = {1};
  EXPECT_FALSE(verify_run(find_protocol("A"), cfg, m).empty());
}

TEST(Verifier, AcceptsCleanRun) {
  DoAllConfig cfg{2, 3};
  RunMetrics m;
  m.all_retired = true;
  m.unit_multiplicity = {1, 2};
  m.max_concurrent_workers = 1;
  EXPECT_TRUE(verify_run(find_protocol("A"), cfg, m).empty());
}

TEST(Runner, ByNameAndByInfoAgree) {
  DoAllConfig cfg{12, 4};
  RunResult a = run_do_all("A", cfg, std::make_unique<NoFaults>());
  RunResult b = run_do_all(find_protocol("A"), cfg, std::make_unique<NoFaults>());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.metrics.work_total, b.metrics.work_total);
  EXPECT_EQ(a.metrics.messages_total, b.metrics.messages_total);
}

TEST(Runner, InvalidConfigThrows) {
  EXPECT_THROW(run_do_all("A", DoAllConfig{0, 4}, std::make_unique<NoFaults>()),
               std::invalid_argument);
}

TEST(Runner, RoundCapSurfacesAsViolation) {
  DoAllConfig cfg{1000, 10};
  RunOptions opts;
  opts.max_stepped_rounds = 5;  // absurdly small
  RunResult r = run_do_all("A", cfg, std::make_unique<NoFaults>(), opts);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.metrics.hit_round_cap);
}

TEST(Metrics, SummaryMentionsKeyNumbers) {
  RunMetrics m;
  m.work_total = 42;
  m.messages_total = 7;
  m.unit_multiplicity = {1};
  m.all_retired = true;
  std::string s = m.summary();
  EXPECT_NE(s.find("work=42"), std::string::npos);
  EXPECT_NE(s.find("msgs=7"), std::string::npos);
  EXPECT_NE(s.find("effort=49"), std::string::npos);
}

}  // namespace
}  // namespace dowork
