// The round-parallel core's determinism proof harness (sim/round_pool.h).
//
// Two layers:
//   * RoundPoolTest -- the pool against a fake StepEval: ordered commit
//     (ascending id, whatever thread evaluated what), genuine cross-thread
//     evaluation (a gated eval that cannot finish until two shards run
//     concurrently -- also the TSan workout), the inline small-round path,
//     and the abort contract (first failure in shard order, nothing
//     appended).
//   * ParallelSimTest -- the real simulator serial vs --sim-threads {2,4,8}:
//     metric-for-metric and report-byte equality over fuzz-generator-sampled
//     (protocol x shape x FaultSpec) cases, and targeted Protocol D runs
//     where a mid-broadcast prefix cut straddles a shard boundary (the
//     delivery-plane case the ordered commit must reproduce exactly).
#include "sim/round_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/runner.h"
#include "fuzz/generator.h"
#include "harness/report.h"
#include "harness/scenario.h"

namespace dowork {
namespace {

using harness::Scenario;
using harness::ScenarioResult;
using harness::Substrate;

// A StepEval that records who evaluated what; optionally throws on a chosen
// proc, optionally refuses to let any evaluation finish until `gate` distinct
// procs have *started* (forcing real concurrency, with a deadline so a
// regression fails instead of hanging).
class RecordingEval final : public StepEval {
 public:
  Action eval_step(int proc) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      order.push_back(proc);
      threads.insert(std::this_thread::get_id());
    }
    started.fetch_add(1);
    if (gate > 0) {
      const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
      while (started.load() < gate && std::chrono::steady_clock::now() < deadline)
        std::this_thread::yield();
    }
    if (proc == fail_on || proc == also_fail_on) throw std::runtime_error(std::to_string(proc));
    Action a;
    a.work = proc + 1;
    return a;
  }

  int gate = 0;
  int fail_on = -1;
  int also_fail_on = -1;
  std::atomic<int> started{0};
  std::mutex mu_;
  std::vector<int> order;                  // eval order across all threads
  std::set<std::thread::id> threads;       // who served
};

std::vector<int> iota_steps(int n) {
  std::vector<int> steps;
  for (int i = 0; i < n; ++i) steps.push_back(i);
  return steps;
}

TEST(RoundPoolTest, CommitsInAscendingIdOrder) {
  RecordingEval eval;
  RoundPool pool(4, /*min_steps_per_shard=*/1);
  const std::vector<int> steps = iota_steps(64);
  std::vector<StepExecutor::Ready> out;
  pool.run_steps(eval, Round{1u}, steps, out);
  ASSERT_EQ(out.size(), steps.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].proc, steps[i]);
    ASSERT_TRUE(out[i].action.work.has_value());
    EXPECT_EQ(*out[i].action.work, steps[i] + 1);
  }
  // Every step evaluated exactly once (in whatever cross-shard interleaving).
  std::vector<int> sorted = eval.order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, steps);
}

TEST(RoundPoolTest, ShardsEvaluateOnDistinctThreadsConcurrently) {
  // Two shards of 8; the gate keeps every evaluation spinning until both
  // shards have started, and a thread cannot claim its second shard before
  // finishing its first -- so passing the gate REQUIRES the worker thread
  // to serve the other shard.  (On timeout the gate opens and the
  // two-threads assertion below fails instead of hanging the suite.)
  RecordingEval eval;
  eval.gate = 2;
  RoundPool pool(2, /*min_steps_per_shard=*/1);
  const std::vector<int> steps = iota_steps(16);
  std::vector<StepExecutor::Ready> out;
  pool.run_steps(eval, Round{1u}, steps, out);
  ASSERT_EQ(out.size(), steps.size());
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].proc, steps[i]);
  EXPECT_EQ(eval.threads.size(), 2u);
  // Non-contiguous ids partition by position, not value: still ascending.
  eval.order.clear();
  eval.started.store(0);
  std::vector<int> odd;
  for (int i = 0; i < 16; ++i) odd.push_back(2 * i + 1);
  std::vector<StepExecutor::Ready> out2;
  pool.run_steps(eval, Round{2u}, odd, out2);
  ASSERT_EQ(out2.size(), odd.size());
  for (std::size_t i = 0; i < out2.size(); ++i) EXPECT_EQ(out2[i].proc, odd[i]);
}

TEST(RoundPoolTest, SmallRoundsRunInlineOnTheCallingThread) {
  // Below 2x min_steps_per_shard the dispatch is skipped entirely: one
  // serving thread (this one), serial order.
  RecordingEval eval;
  RoundPool pool(8);  // default min_steps_per_shard = 8
  const std::vector<int> steps = iota_steps(10);
  std::vector<StepExecutor::Ready> out;
  pool.run_steps(eval, Round{1u}, steps, out);
  ASSERT_EQ(out.size(), steps.size());
  EXPECT_EQ(eval.order, steps);
  ASSERT_EQ(eval.threads.size(), 1u);
  EXPECT_EQ(*eval.threads.begin(), std::this_thread::get_id());
}

TEST(RoundPoolTest, AbortSurfacesFirstFailureInShardOrderWithNothingAppended) {
  // Failures land in shard 0 (proc 3) and shard 2 (proc 20); the serial
  // loop would have hit proc 3 first, so that is the one the pool must
  // rethrow -- with `out` untouched, per the executor contract.
  RecordingEval eval;
  eval.fail_on = 20;
  eval.also_fail_on = 3;
  RoundPool pool(4, /*min_steps_per_shard=*/1);
  const std::vector<int> steps = iota_steps(32);
  std::vector<StepExecutor::Ready> out;
  try {
    pool.run_steps(eval, Round{1u}, steps, out);
    FAIL() << "expected the shard failure to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "3");
  }
  EXPECT_TRUE(out.empty());
  // The pool survives an aborted round: the next round runs normally.
  eval.fail_on = -1;
  eval.also_fail_on = -1;
  pool.run_steps(eval, Round{2u}, steps, out);
  EXPECT_EQ(out.size(), steps.size());
}

// --- the real simulator: serial vs sharded, byte for byte -------------------

void expect_metrics_eq(const RunMetrics& a, const RunMetrics& b, const std::string& label) {
  EXPECT_EQ(a.work_total, b.work_total) << label;
  EXPECT_EQ(a.messages_total, b.messages_total) << label;
  EXPECT_EQ(a.last_retire_round, b.last_retire_round) << label;
  EXPECT_EQ(a.available_processor_steps, b.available_processor_steps) << label;
  EXPECT_EQ(a.messages_by_kind, b.messages_by_kind) << label;
  EXPECT_EQ(a.crashes, b.crashes) << label;
  EXPECT_EQ(a.terminated, b.terminated) << label;
  EXPECT_EQ(a.stepped_rounds, b.stepped_rounds) << label;
  EXPECT_EQ(a.fast_forward_jumps, b.fast_forward_jumps) << label;
  EXPECT_EQ(a.max_concurrent_workers, b.max_concurrent_workers) << label;
  EXPECT_EQ(a.net_dropped, b.net_dropped) << label;
  EXPECT_EQ(a.net_blocked, b.net_blocked) << label;
  EXPECT_EQ(a.net_delayed, b.net_delayed) << label;
  EXPECT_EQ(a.unit_multiplicity, b.unit_multiplicity) << label;
  EXPECT_EQ(a.work_by_proc, b.work_by_proc) << label;
  EXPECT_EQ(a.messages_by_proc, b.messages_by_proc) << label;
}

// Mid-broadcast prefix cuts straddling shard boundaries: t = 32 at
// sim_threads = 4 shards the agreement rounds into runs of 8 ids, and the
// cuts deliver prefixes of 17 and 9 recipients -- so the delivered/lost
// split lands *inside* shards 2 and 1 respectively, on both sides of a
// boundary.  The ordered commit must reproduce the serial ledger exactly;
// every observable metric, per-process and per-unit, is compared.
TEST(ParallelSimTest, MidBroadcastCutStraddlingShardBoundary) {
  const DoAllConfig cfg{128, 32};  // n/t = 4 work rounds, then agreement
  auto faults = [] {
    return std::make_unique<ScheduledFaults>(std::vector<ScheduledFaults::Entry>{
        // Action 5 is the first agreement broadcast (after 4 work units):
        // proc 10 reaches 17 of its 31 recipients, proc 27 reaches 9.
        {10, 5, CrashPlan{false, 17}},
        {27, 6, CrashPlan{false, 9}},
        // And one work-round death for the redistribution path.
        {3, 2, CrashPlan{true, 0}},
    });
  };
  RunOptions serial;
  const RunResult base = run_do_all("D", cfg, faults(), serial);
  ASSERT_TRUE(base.ok()) << base.violation;
  for (int threads : {2, 4, 8}) {
    RunOptions opts;
    opts.sim_threads = threads;
    const RunResult got = run_do_all("D", cfg, faults(), opts);
    ASSERT_TRUE(got.ok()) << got.violation;
    expect_metrics_eq(got.metrics, base.metrics, "sim_threads=" + std::to_string(threads));
  }
}

// The adaptive/random injectors draw from the committed-state window at the
// commit boundary, so their decision streams must be untouched by sharding.
TEST(ParallelSimTest, RandomFaultScheduleIsThreadCountInvariant) {
  const DoAllConfig cfg{192, 24};
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    RunOptions serial;
    const RunResult base =
        run_do_all("D", cfg, std::make_unique<RandomFaults>(0.05, 11, seed), serial);
    for (int threads : {2, 8}) {
      RunOptions opts;
      opts.sim_threads = threads;
      const RunResult got =
          run_do_all("D", cfg, std::make_unique<RandomFaults>(0.05, 11, seed), opts);
      expect_metrics_eq(got.metrics, base.metrics,
                        "seed " + std::to_string(seed) + " threads " + std::to_string(threads));
      EXPECT_EQ(got.violation, base.violation);
    }
  }
}

// Property layer: fuzz-generator-sampled (protocol x shape x FaultSpec --
// crash cascades, adaptive adversaries, network weather) sync cases, run
// serial and at --sim-threads {2,4,8}; the whole report -- every row, every
// column, every bound margin -- must serialize to identical bytes.
TEST(ParallelSimTest, FuzzSampledCasesReportByteIdentical) {
  const fuzz::GeneratorOptions gopts{20260809, 100};
  const std::vector<Scenario> cases = fuzz::generate_cases(gopts, 80);
  int used = 0;
  for (const Scenario& base : cases) {
    if (base.substrate != Substrate::kSync) continue;
    if (used == 24) break;
    ++used;
    const std::vector<ScenarioResult> serial_rows = harness::run_scenario("pp", base);
    const std::string serial_json = harness::to_json("pp", serial_rows, false);
    for (int threads : {2, 4, 8}) {
      Scenario s = base;
      s.sim_threads = threads;
      const std::vector<ScenarioResult> rows = harness::run_scenario("pp", s);
      EXPECT_EQ(harness::to_json("pp", rows, false), serial_json)
          << base.id << " sim_threads=" << threads;
    }
  }
  // The generator's mix must actually feed the property: if sync cases dry
  // up the test would silently assert nothing.
  EXPECT_EQ(used, 24);
}

}  // namespace
}  // namespace dowork
