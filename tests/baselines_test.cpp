#include <gtest/gtest.h>

#include "core/runner.h"
#include "protocols/baseline_checkpoint.h"

namespace dowork {
namespace {

TEST(BaselineAll, FailureFreeDoesTnWorkAndNoMessages) {
  DoAllConfig cfg{32, 5};
  RunResult r = run_do_all("baseline_all", cfg, std::make_unique<NoFaults>());
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_EQ(r.metrics.work_total, 32u * 5u);
  EXPECT_EQ(r.metrics.messages_total, 0u);
  // n rounds of work; all retire in round n-1 (0-based).
  EXPECT_EQ(r.metrics.last_retire_round, Round{31});
}

TEST(BaselineAll, SurvivesAnyCrashPattern) {
  DoAllConfig cfg{20, 6};
  RunResult r = run_do_all("baseline_all", cfg, std::make_unique<RandomFaults>(0.2, 5, 1));
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_LE(r.metrics.work_total, 20u * 6u);
}

TEST(BaselineCheckpoint, FailureFreeIsWorkOptimalButMessageHeavy) {
  DoAllConfig cfg{30, 5};
  RunResult r = run_do_all("baseline_checkpoint", cfg, std::make_unique<NoFaults>());
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_EQ(r.metrics.work_total, 30u);  // only process 0 works
  // k=1: a checkpoint to t-1 processes after every unit => ~n(t-1) messages.
  EXPECT_EQ(r.metrics.messages_total, 30u * 4u);
  EXPECT_EQ(r.metrics.max_concurrent_workers, 1u);
}

TEST(BaselineCheckpoint, CascadeCrashesStayWorkOptimal) {
  DoAllConfig cfg{40, 8};
  // Kill each active worker after 3 units; k=1 means at most 1 unit of work
  // is lost per crash (the unit whose checkpoint did not go out).
  RunResult r = run_do_all("baseline_checkpoint", cfg,
                           std::make_unique<WorkCascadeFaults>(3, 7, /*deliver_prefix=*/0));
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_LE(r.metrics.work_total, 40u + 7u + 7u);  // n + one redone unit + one in-flight per crash
  EXPECT_EQ(r.metrics.crashes, 7u);
}

TEST(BaselineCheckpoint, LargerKTradesMessagesForRedoneWork) {
  DoAllConfig cfg{120, 6};
  auto run_k = [&](std::int64_t k) {
    std::vector<std::unique_ptr<IProcess>> procs;
    for (int i = 0; i < cfg.t; ++i)
      procs.push_back(std::make_unique<BaselineCheckpointProcess>(cfg, i, k));
    Simulator::Options opts;
    opts.n_units = cfg.n;
    opts.strict_one_op = true;
    return run_simulation(std::move(procs),
                          std::make_unique<WorkCascadeFaults>(10, cfg.t - 1, 0), opts);
  };
  RunMetrics fine = run_k(1);
  RunMetrics coarse = run_k(30);
  // Coarse checkpointing sends far fewer messages but redoes more work.
  EXPECT_LT(coarse.messages_total, fine.messages_total / 4);
  EXPECT_GT(coarse.work_total, fine.work_total);
  EXPECT_TRUE(fine.all_units_done());
  EXPECT_TRUE(coarse.all_units_done());
}

TEST(BaselineCheckpoint, SingleProcessDegenerate) {
  DoAllConfig cfg{10, 1};
  RunResult r = run_do_all("baseline_checkpoint", cfg, std::make_unique<NoFaults>());
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_EQ(r.metrics.work_total, 10u);
  EXPECT_EQ(r.metrics.messages_total, 0u);
}

TEST(BaselineCheckpoint, AllButOneCrashImmediately) {
  DoAllConfig cfg{25, 5};
  // Crash processes 0..3 on their first action.
  std::vector<ScheduledFaults::Entry> entries;
  for (int p = 0; p < 4; ++p) entries.push_back({p, 1, CrashPlan{false, 0}});
  RunResult r = run_do_all("baseline_checkpoint", cfg,
                           std::make_unique<ScheduledFaults>(std::move(entries)));
  ASSERT_TRUE(r.ok()) << r.violation;
  // The survivor (process 4) did all the work itself.
  EXPECT_EQ(r.metrics.work_by_proc[4], 25u);
}

}  // namespace
}  // namespace dowork
