// Delivery-plane unit tests: RecipientSet addressing, the broadcast ledger's
// InboxView (iteration order, prefix-cut visibility, the empty fast path),
// and the allocation contract (one payload allocation per broadcast, zero
// per-recipient work in steady state).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/fault_injector.h"
#include "sim/message.h"
#include "sim/simulator.h"

namespace dowork {
namespace {

struct TagPayload final : Payload {
  int tag;
  explicit TagPayload(int t) : tag(t) {}
};

std::shared_ptr<const RecipientBits> bits_of(std::vector<int> ids, int t) {
  DynBitset b(static_cast<std::size_t>(t));
  for (int id : ids) b.set(static_cast<std::size_t>(id));
  return make_recipient_bits(std::move(b));
}

// --- RecipientSet ------------------------------------------------------------

TEST(RecipientSet, SingleRangeAndSetAddressing) {
  RecipientSet single(5);
  EXPECT_EQ(single.size(), 1u);
  EXPECT_TRUE(single.contains(5));
  EXPECT_FALSE(single.contains(4));
  EXPECT_EQ(single.rank_of(5), 0u);
  EXPECT_TRUE(single.within(6));
  EXPECT_FALSE(single.within(5));

  RecipientSet range(IdRange{2, 6});
  EXPECT_EQ(range.size(), 4u);
  EXPECT_TRUE(range.contains(2));
  EXPECT_TRUE(range.contains(5));
  EXPECT_FALSE(range.contains(6));
  EXPECT_EQ(range.rank_of(4), 2u);

  RecipientSet set(bits_of({1, 3, 6}, 8));
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.contains(3));
  EXPECT_FALSE(set.contains(2));
  EXPECT_FALSE(set.contains(-1));
  EXPECT_FALSE(set.contains(100));
  EXPECT_EQ(set.rank_of(6), 2u);  // members below 6: {1, 3}
  EXPECT_TRUE(set.within(8));
  EXPECT_EQ(set.lowest(), 1);
}

TEST(RecipientSet, ForEachPrefixEnumeratesAscending) {
  std::vector<int> got;
  RecipientSet set(bits_of({1, 3, 6}, 8));
  set.for_each_prefix(2, [&](int id) { got.push_back(id); });
  EXPECT_EQ(got, (std::vector<int>{1, 3}));

  got.clear();
  RecipientSet range(IdRange{4, 9});
  range.for_each_prefix(99, [&](int id) { got.push_back(id); });
  EXPECT_EQ(got, (std::vector<int>{4, 5, 6, 7, 8}));
}

TEST(RecipientSet, MarkPrefixMatchesForEach) {
  // The word-OR fast path (full set, matching sizes) and the generic member
  // loop must mark identical bits.
  auto shared = bits_of({0, 2, 5, 7}, 8);
  RecipientSet set(shared);
  DynBitset fast(8);
  set.mark_prefix(fast, set.size());
  DynBitset slow(8);
  set.for_each_prefix(set.size(), [&](int id) { slow.set(static_cast<std::size_t>(id)); });
  EXPECT_EQ(fast, slow);

  // A cut forces the member loop; only the first k ascending members mark.
  DynBitset cut(8);
  set.mark_prefix(cut, 2);
  EXPECT_TRUE(cut.test(0));
  EXPECT_TRUE(cut.test(2));
  EXPECT_FALSE(cut.test(5));
  EXPECT_FALSE(cut.test(7));
}

TEST(RecipientSet, RemapTranslatesMembers) {
  // rank -> id translation as Protocol D's revert wrapper uses it.
  std::vector<int> map{2, 5, 7};
  RecipientSet unicast = remap_recipients(RecipientSet(1), map, 8);
  EXPECT_EQ(unicast.size(), 1u);
  EXPECT_TRUE(unicast.contains(5));

  RecipientSet range = remap_recipients(RecipientSet(IdRange{0, 3}), map, 8);
  EXPECT_EQ(range.size(), 3u);
  EXPECT_TRUE(range.contains(2));
  EXPECT_TRUE(range.contains(5));
  EXPECT_TRUE(range.contains(7));
  EXPECT_FALSE(range.contains(0));
}

// --- InboxView over the ledger ----------------------------------------------

DeliveryRecord record(int from, MsgKind kind, RecipientSet to, int tag,
                      std::size_t cut = SIZE_MAX) {
  DeliveryRecord r;
  r.from = from;
  r.kind = kind;
  r.cut = std::min(cut, to.size());
  r.to = std::move(to);
  r.payload = std::make_shared<TagPayload>(tag);
  return r;
}

std::vector<int> tags_seen(const InboxView& v) {
  std::vector<int> tags;
  for (const Msg& m : v) tags.push_back(m.as<TagPayload>()->tag);
  return tags;
}

TEST(InboxView, FiltersRecordsToRecipientInEmissionOrder) {
  Round sent{41};
  std::vector<DeliveryRecord> ledger;
  ledger.push_back(record(0, MsgKind::kCheckpoint, IdRange{1, 4}, 100));
  ledger.push_back(record(2, MsgKind::kOther, 5, 200));            // unicast, not for 1
  ledger.push_back(record(3, MsgKind::kPollReply, 1, 300));        // spillover unicast for 1
  ledger.push_back(record(4, MsgKind::kAgreement, bits_of({1, 5}, 6), 400));

  InboxView v1(ledger, sent, /*self=*/1, /*any=*/true);
  EXPECT_FALSE(v1.empty());
  EXPECT_EQ(v1.count(), 3u);
  // Broadcasts and unicasts interleave exactly in emission order.
  EXPECT_EQ(tags_seen(v1), (std::vector<int>{100, 300, 400}));
  // Msg metadata reflects the record and the ledger-wide sent round.
  Msg first = v1.front();
  EXPECT_EQ(first.from, 0);
  EXPECT_EQ(first.kind, MsgKind::kCheckpoint);
  EXPECT_EQ(first.sent_round(), Round{41});

  InboxView v5(ledger, sent, /*self=*/5, /*any=*/true);
  EXPECT_EQ(tags_seen(v5), (std::vector<int>{200, 400}));
}

TEST(InboxView, PrefixCutHidesHigherIdRecipients) {
  Round sent{7};
  std::vector<DeliveryRecord> ledger;
  // Broadcast to {1,2,3,4} cut at 2: only 1 and 2 (ascending order) see it.
  ledger.push_back(record(0, MsgKind::kOther, IdRange{1, 5}, 1, /*cut=*/2));
  // Set-addressed broadcast to {2,4,6} cut at 1: only 2 sees it.
  ledger.push_back(record(1, MsgKind::kOther, bits_of({2, 4, 6}, 7), 2, /*cut=*/1));

  auto count_for = [&](int self) {
    return InboxView(ledger, sent, self, true).count();
  };
  EXPECT_EQ(count_for(1), 1u);
  EXPECT_EQ(count_for(2), 2u);
  EXPECT_EQ(count_for(3), 0u);
  EXPECT_EQ(count_for(4), 0u);
  EXPECT_EQ(count_for(6), 0u);
}

TEST(InboxView, EmptyFastPathSkipsTheLedger) {
  Round sent{0};
  std::vector<DeliveryRecord> ledger;
  ledger.push_back(record(0, MsgKind::kOther, 3, 9));
  // `any` is the simulator's precomputed mail-membership bit; with it false
  // the view is empty without a ledger scan (begin() == end() immediately).
  InboxView v(ledger, sent, /*self=*/5, /*any=*/false);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.begin(), v.end());

  InboxView def;
  EXPECT_TRUE(def.empty());
  EXPECT_EQ(def.begin(), def.end());
}

TEST(InboxView, EnvelopeBackedViewForWrappers) {
  // Protocol wrappers (Protocol D's revert, the Byzantine layer) translate
  // mail into materialized envelopes and re-wrap them.
  std::vector<Envelope> envs;
  envs.push_back(Envelope{4, 1, MsgKind::kValue, Round{9}, std::make_shared<TagPayload>(77)});
  InboxView v(envs);
  EXPECT_FALSE(v.empty());
  EXPECT_EQ(v.count(), 1u);
  Msg m = v.front();
  EXPECT_EQ(m.from, 4);
  EXPECT_EQ(m.sent_round(), Round{9});
  EXPECT_EQ(m.as<TagPayload>()->tag, 77);
}

// --- allocation contract -----------------------------------------------------

// Broadcasts one payload to every other process each round for `rounds`
// rounds, then terminates.
class RoundBroadcaster final : public IProcess {
 public:
  RoundBroadcaster(int t, int rounds) : t_(t), rounds_(rounds) {}
  Action on_round(const RoundContext&, const InboxView&) override {
    Action a;
    if (sent_ < rounds_) {
      a.sends.push_back(
          Outgoing{IdRange{1, t_}, MsgKind::kOther, std::make_shared<TagPayload>(sent_)});
      ++sent_;
    }
    if (sent_ >= rounds_) a.terminate = true;
    return a;
  }
  Round next_wake(const Round& now) const override { return now; }

 private:
  int t_;
  int rounds_;
  int sent_ = 0;
};

// Consumes mail forever (keeps nothing); tallies into an external counter
// (the processes die with run_simulation's Simulator).
class Sink final : public IProcess {
 public:
  explicit Sink(int* seen) : seen_(seen) {}
  Action on_round(const RoundContext&, const InboxView& inbox) override {
    for (const Msg& m : inbox) *seen_ += m.as<TagPayload>() != nullptr;
    return {};
  }
  Round next_wake(const Round&) const override { return never_round(); }

 private:
  int* seen_;
};

TEST(DeliveryPlane, OnePayloadAllocationPerBroadcastZeroPerRecipient) {
  constexpr int t = 33;
  constexpr int rounds = 16;
  std::vector<std::unique_ptr<IProcess>> procs;
  procs.push_back(std::make_unique<RoundBroadcaster>(t, rounds));
  std::vector<int> seen(t, 0);
  for (int i = 1; i < t; ++i) procs.push_back(std::make_unique<Sink>(&seen[i]));
  const std::uint64_t before = Payload::allocations();
  RunMetrics m = run_simulation(std::move(procs), std::make_unique<NoFaults>(), {});
  const std::uint64_t allocated = Payload::allocations() - before;

  EXPECT_EQ(m.messages_total, static_cast<std::uint64_t>(rounds) * (t - 1));
  // The instrumented Payload hook counts every Payload constructed anywhere
  // in the run: exactly one per broadcast round -- zero per-recipient
  // allocations or clones in steady state, whatever the fan-out.
  EXPECT_EQ(allocated, static_cast<std::uint64_t>(rounds));
  for (int i = 1; i < t; ++i) EXPECT_EQ(seen[i], rounds) << "recipient " << i;
}

}  // namespace
}  // namespace dowork
