// Tests for the shared-memory substrate and the Section 1.1 Write-All
// counter algorithm: shared memory makes Do-All easy (effort 2n + O(t))
// because progress state survives crashes.
#include <gtest/gtest.h>

#include "sharedmem/write_all.h"

namespace dowork {
namespace {

TEST(SharedMemSim, ReadsSeeStartOfRoundWritesApplyAtEnd) {
  // Process 0 writes 7 to cell 0 in round 0; process 1 reads cell 0 in
  // round 0 (sees 0) and again in round 1 (sees 7).
  class Writer final : public ISharedProcess {
   public:
    SharedOp on_round(std::uint64_t round, std::optional<std::int64_t>) override {
      if (round == 0) return SharedOp::write(0, 7);
      return SharedOp::terminate();
    }
    std::uint64_t next_wake(std::uint64_t now) const override { return now; }
  };
  class Reader final : public ISharedProcess {
   public:
    SharedOp on_round(std::uint64_t round, std::optional<std::int64_t> last) override {
      if (last) values.push_back(*last);
      if (round <= 1) return SharedOp::read(0);
      return SharedOp::terminate();
    }
    std::uint64_t next_wake(std::uint64_t now) const override { return now; }
    std::vector<std::int64_t> values;
  };
  std::vector<std::unique_ptr<ISharedProcess>> procs;
  procs.push_back(std::make_unique<Writer>());
  auto reader = std::make_unique<Reader>();
  Reader* rd = reader.get();
  procs.push_back(std::move(reader));
  SharedMemSim::Options opts;
  opts.n_cells = 1;
  SharedMemSim sim(std::move(procs), opts);
  SharedMetrics m = sim.run();
  EXPECT_TRUE(m.all_retired);
  EXPECT_EQ(rd->values, (std::vector<std::int64_t>{0, 7}));
  EXPECT_EQ(m.reads, 2u);
  EXPECT_EQ(m.writes, 1u);
}

TEST(WriteAll, FailureFreeEffortIsTwoNPlusReads) {
  DoAllConfig cfg{50, 8};
  SharedMetrics m = run_write_all(cfg);
  EXPECT_TRUE(m.all_retired);
  EXPECT_TRUE(m.all_units_done());
  EXPECT_EQ(m.work_total, 50u);
  EXPECT_EQ(m.writes, 50u);
  EXPECT_EQ(m.reads, 8u);  // one counter read per process
  EXPECT_EQ(m.effort(), 2u * 50u + 8u);
}

TEST(WriteAll, EachCrashCostsAtMostOneRedoneUnit) {
  DoAllConfig cfg{40, 6};
  std::vector<std::optional<SharedMemSim::CrashSpec>> crashes(6);
  // Crash each of processes 0..4 on its 9th op: mid work/write alternation.
  for (int p = 0; p < 5; ++p) crashes[static_cast<std::size_t>(p)] =
      SharedMemSim::CrashSpec{9, false};
  SharedMetrics m = run_write_all(cfg, std::move(crashes));
  EXPECT_TRUE(m.all_units_done());
  EXPECT_EQ(m.crashes, 5u);
  // Work <= n + one redone unit per crash.
  EXPECT_LE(m.work_total, 40u + 5u);
  EXPECT_LE(m.effort(), 2u * (40u + 5u) + 6u + 5u);
}

TEST(WriteAll, CrashBetweenWorkAndWriteRedoesExactlyThatUnit) {
  DoAllConfig cfg{10, 2};
  std::vector<std::optional<SharedMemSim::CrashSpec>> crashes(2);
  // Process 0: read(op1), work(op2), write(op3), work(op4)... crash on op4
  // (a work op whose write-back never happens).
  crashes[0] = SharedMemSim::CrashSpec{4, true};
  SharedMetrics m = run_write_all(cfg, std::move(crashes));
  EXPECT_TRUE(m.all_units_done());
  EXPECT_EQ(m.unit_multiplicity[1], 2u);  // unit 2 done twice
  EXPECT_EQ(m.unit_multiplicity[0], 1u);
  EXPECT_EQ(m.work_total, 11u);
}

TEST(WriteAll, SurvivorFinishesWhenEveryoneElseDiesInstantly) {
  DoAllConfig cfg{25, 5};
  std::vector<std::optional<SharedMemSim::CrashSpec>> crashes(5);
  for (int p = 0; p < 4; ++p)
    crashes[static_cast<std::size_t>(p)] = SharedMemSim::CrashSpec{1, false};
  SharedMetrics m = run_write_all(cfg, std::move(crashes));
  EXPECT_TRUE(m.all_units_done());
  EXPECT_EQ(m.crashes, 4u);
}

TEST(WriteAll, TimeIsOrderNT) {
  DoAllConfig cfg{30, 4};
  std::vector<std::optional<SharedMemSim::CrashSpec>> crashes(4);
  for (int p = 0; p < 3; ++p)
    crashes[static_cast<std::size_t>(p)] = SharedMemSim::CrashSpec{7, true};
  SharedMetrics m = run_write_all(cfg, std::move(crashes));
  EXPECT_TRUE(m.all_units_done());
  // Deadline-staggered: last retire within t * (2n + 4) + 2n rounds.
  EXPECT_LE(m.last_round, 4u * (2u * 30u + 4u) + 2u * 30u + 4u);
}

// The paper's comparison: the same adversary pattern costs the
// message-passing Protocol A checkpoint waves, while shared memory gets
// away with the 2n+O(t) counter discipline.
TEST(WriteAll, SharedMemoryEffortBeatsMessagePassing) {
  DoAllConfig cfg{128, 16};
  std::vector<std::optional<SharedMemSim::CrashSpec>> crashes(16);
  for (int p = 0; p < 15; ++p)
    crashes[static_cast<std::size_t>(p)] = SharedMemSim::CrashSpec{17, true};
  SharedMetrics shared = run_write_all(cfg, std::move(crashes));
  EXPECT_TRUE(shared.all_units_done());
  EXPECT_LE(shared.effort(), 2u * (128u + 15u) + 16u + 15u);
}

}  // namespace
}  // namespace dowork
