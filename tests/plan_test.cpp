// Unit tests for the shared active-process plan builder (Figure 1's DoWork)
// used by Protocols A and B and by Protocol D's revert path.
#include <gtest/gtest.h>

#include "protocols/protocol_a.h"

namespace dowork {
namespace {

struct PlanSummary {
  std::int64_t work_units = 0;
  std::int64_t first_unit = -1, last_unit = -1;
  int broadcasts = 0;
  int messages = 0;
  std::vector<std::pair<int, int>> full_ckpts;  // (c, g) of CkptFull payloads
  std::vector<int> partial_ckpts;               // c of CkptPartial payloads
};

PlanSummary summarize(const std::deque<ActiveOp>& plan) {
  PlanSummary s;
  for (const ActiveOp& op : plan) {
    if (op.work) {
      ++s.work_units;
      if (s.first_unit < 0) s.first_unit = *op.work;
      s.last_unit = *op.work;
    } else {
      ++s.broadcasts;
      s.messages += static_cast<int>(op.recipients.size());
      if (const auto* f = dynamic_cast<const CkptFull*>(op.payload.get()))
        s.full_ckpts.emplace_back(f->c, f->g);
      else if (const auto* p = dynamic_cast<const CkptPartial*>(op.payload.get()))
        s.partial_ckpts.push_back(p->c);
    }
  }
  return s;
}

class PlanFixture : public ::testing::Test {
 protected:
  // t = 9 -> s = 3, groups {0,1,2},{3,4,5},{6,7,8}; n = 36 -> subchunks of 4.
  GroupLayout layout_ = GroupLayout::for_sqrt(9);
  WorkPartition part_ = WorkPartition::for_protocol_a(36, 9);
};

TEST_F(PlanFixture, FreshStartCoversEverythingInOrder) {
  LastCheckpoint fresh;  // fictitious
  auto plan = build_active_plan(layout_, part_, /*self=*/0, fresh, nullptr);
  PlanSummary s = summarize(plan);
  EXPECT_EQ(s.work_units, 36);
  EXPECT_EQ(s.first_unit, 1);
  EXPECT_EQ(s.last_unit, 36);
  // 9 partial checkpoints (one per subchunk), full checkpoints after
  // subchunks 3, 6, 9.
  EXPECT_EQ(s.partial_ckpts, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8, 9}));
  // Each full checkpoint from group 0: direct+echo for groups 1 and 2.
  EXPECT_EQ(s.full_ckpts,
            (std::vector<std::pair<int, int>>{{3, 1}, {3, 1}, {3, 2}, {3, 2},
                                              {6, 1}, {6, 1}, {6, 2}, {6, 2},
                                              {9, 1}, {9, 1}, {9, 2}, {9, 2}}));
}

TEST_F(PlanFixture, ResumeFromPartialCheckpointSkipsDoneWork) {
  // Process 4 heard (5) from process 3 (same group): resume at subchunk 6.
  LastCheckpoint last{5, std::nullopt, 3, Round{10}, false};
  auto plan = build_active_plan(layout_, part_, 4, last, nullptr);
  PlanSummary s = summarize(plan);
  EXPECT_EQ(s.first_unit, 21);  // subchunk 6 starts at unit 21
  EXPECT_EQ(s.work_units, 16);  // units 21..36
  // It first completes the partial checkpoint of 5 to the rest of its group.
  EXPECT_EQ(s.partial_ckpts.front(), 5);
}

TEST_F(PlanFixture, ResumeFromChunkBoundaryPartialRedoesFullCheckpoint) {
  // (6) is a chunk boundary: the crashed process may have died mid full
  // checkpoint, so the taker redoes it from its own next group.
  LastCheckpoint last{6, std::nullopt, 3, Round{10}, false};
  auto plan = build_active_plan(layout_, part_, 4, last, nullptr);
  PlanSummary s = summarize(plan);
  EXPECT_EQ(s.first_unit, 25);
  ASSERT_GE(s.full_ckpts.size(), 2u);
  EXPECT_EQ(s.full_ckpts[0], (std::pair<int, int>{6, 2}));  // resumes at group 2
}

TEST_F(PlanFixture, ResumeFromDirectFullCheckpoint) {
  // Process 4 (group 1) heard (3, 1) from process 0 (group 0): complete the
  // partial checkpoint of 3, then the full checkpoint from group 2.
  LastCheckpoint last{3, 1, 0, Round{5}, false};
  auto plan = build_active_plan(layout_, part_, 4, last, nullptr);
  PlanSummary s = summarize(plan);
  EXPECT_EQ(s.partial_ckpts.front(), 3);
  EXPECT_EQ(s.full_ckpts.front(), (std::pair<int, int>{3, 2}));
  EXPECT_EQ(s.first_unit, 13);  // subchunk 4
}

TEST_F(PlanFixture, ResumeFromEchoContinuesAfterEchoedGroup) {
  // Process 1 (group 0) heard the echo (3, 1) from group mate 0: re-echo to
  // its own remainder, then continue the full checkpoint at group 2.
  LastCheckpoint last{3, 1, 0, Round{5}, false};
  auto plan = build_active_plan(layout_, part_, 1, last, nullptr);
  PlanSummary s = summarize(plan);
  ASSERT_FALSE(s.full_ckpts.empty());
  EXPECT_EQ(s.full_ckpts[0], (std::pair<int, int>{3, 1}));  // the re-echo
  EXPECT_EQ(s.full_ckpts[1], (std::pair<int, int>{3, 2}));
  EXPECT_EQ(s.first_unit, 13);
}

TEST_F(PlanFixture, TakeoverAtLastSubchunkOnlyFinishesCheckpointing) {
  LastCheckpoint last{9, 2, 0, Round{50}, false};  // direct full ckpt (9, 2) to group 2
  auto plan = build_active_plan(layout_, part_, 7, last, nullptr);
  PlanSummary s = summarize(plan);
  EXPECT_EQ(s.work_units, 0);  // nothing left to do but informing
  EXPECT_GT(s.broadcasts, 0);
}

TEST_F(PlanFixture, LastGroupMemberSendsNoFullCheckpoints) {
  LastCheckpoint fresh;
  auto plan = build_active_plan(layout_, part_, /*self=*/8, fresh, nullptr);
  PlanSummary s = summarize(plan);
  EXPECT_EQ(s.work_units, 36);
  EXPECT_TRUE(s.full_ckpts.empty());      // no higher group, no own remainder
  EXPECT_TRUE(s.partial_ckpts.empty());   // 8 is last in its group
  EXPECT_EQ(s.messages, 0);
}

TEST_F(PlanFixture, UnitMapRemapsWork) {
  std::vector<std::int64_t> map;
  for (std::int64_t u = 2; u <= 72; u += 2) map.push_back(u);  // 36 even units
  LastCheckpoint fresh;
  auto plan = build_active_plan(layout_, part_, 0, fresh, &map);
  PlanSummary s = summarize(plan);
  EXPECT_EQ(s.work_units, 36);
  EXPECT_EQ(s.first_unit, 2);
  EXPECT_EQ(s.last_unit, 72);
}

TEST(PlanEdge, EmptySubchunksStillCheckpointed) {
  // n < t: subchunks may be empty but the checkpoint cadence survives.
  GroupLayout layout = GroupLayout::for_sqrt(9);
  WorkPartition part = WorkPartition::for_protocol_a(4, 9);
  LastCheckpoint fresh;
  auto plan = build_active_plan(layout, part, 0, fresh, nullptr);
  PlanSummary s = summarize(plan);
  EXPECT_EQ(s.work_units, 4);
  EXPECT_EQ(s.partial_ckpts.size(), 9u);  // one per subchunk, even empty ones
}

TEST(CompletionNotice, RecognizesOnlyTrueCompletions) {
  GroupLayout layout = GroupLayout::for_sqrt(9);
  WorkPartition part = WorkPartition::for_protocol_a(36, 9);
  auto env_partial = [&](int c) {
    Envelope e;
    e.from = 0;
    e.payload = std::make_shared<CkptPartial>(c);
    return e;
  };
  auto env_full = [&](int c, int g) {
    Envelope e;
    e.from = 0;
    e.payload = std::make_shared<CkptFull>(c, g);
    return e;
  };
  // self = 4 is in group 1.
  EXPECT_TRUE(is_completion_notice(layout, part, 4, env_partial(9)));
  EXPECT_FALSE(is_completion_notice(layout, part, 4, env_partial(8)));
  EXPECT_TRUE(is_completion_notice(layout, part, 4, env_full(9, 1)));
  EXPECT_FALSE(is_completion_notice(layout, part, 4, env_full(9, 2)));  // echo form
  EXPECT_FALSE(is_completion_notice(layout, part, 4, env_full(3, 1)));
}

}  // namespace
}  // namespace dowork
