#include "protocols/protocol_b.h"

#include <gtest/gtest.h>

#include "core/runner.h"

namespace dowork {
namespace {

std::uint64_t u(std::int64_t v) { return static_cast<std::uint64_t>(v); }

// Generalized Theorem 2.8 bounds with slack for the non-square / rounding
// generalization: work <= 3n' + t, messages <= 10ts + O(s^2), retirement by
// O(n + t) rounds.
void expect_theorem_2_8_bounds(const DoAllConfig& cfg, const RunMetrics& m) {
  const std::int64_t n_prime = std::max(cfg.n, static_cast<std::int64_t>(cfg.t));
  const std::int64_t s = int_sqrt_ceil(cfg.t);
  EXPECT_LE(m.work_total, 3 * u(n_prime) + u(cfg.t)) << "work bound";
  EXPECT_LE(m.messages_total, 10 * u(cfg.t) * u(s) + 10 * u(s) * u(s)) << "message bound";
  // Theorem 2.8(c): 3n + 8t; generalized slack ~ s*PTO for rounding.
  Round limit{3 * u(n_prime) + 14 * u(cfg.t) + 8 * u(s) + 64};
  EXPECT_LE(m.last_retire_round, limit) << "round bound (linear in n + t)";
  EXPECT_LE(m.max_concurrent_workers, 1u) << "single active process";
}

TEST(ProtocolB, TimeoutFunctionsMatchDefinitions) {
  DoAllConfig cfg{64, 16};  // s = 4, n/t = 4
  ProtocolBProcess p5(cfg, 5);
  EXPECT_EQ(p5.pto(), 6u);  // ceil(n/t) + 2
  // GTO(i) = s*ceil(n/t) + 3s + (s - ibar - 1)*PTO + 1
  EXPECT_EQ(p5.gto(0), 16u + 12u + 3u * 6u + 1u);
  EXPECT_EQ(p5.gto(3), 16u + 12u + 0u * 6u + 1u);
  // Same group (5 and 4 are both in group 1): DDB = PTO.
  EXPECT_EQ(p5.ddb(4), p5.pto());
  // Different group: GTO(i) + (gj - gi - 1) * GTO(0).
  ProtocolBProcess p13(cfg, 13);  // group 3
  EXPECT_EQ(p13.ddb(2), p13.gto(2) + 2u * p13.gto(0));
}

TEST(ProtocolB, FailureFreeMatchesProtocolA) {
  DoAllConfig cfg{64, 16};
  RunResult r = run_do_all("B", cfg, std::make_unique<NoFaults>());
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_EQ(r.metrics.work_total, 64u);
  EXPECT_EQ(r.metrics.work_by_proc[0], 64u);
  EXPECT_EQ(r.metrics.messages_of(MsgKind::kGoAhead), 0u);  // nobody probes
  EXPECT_LE(r.metrics.last_retire_round, Round{64u + 3u * 16u});
}

TEST(ProtocolB, SingleProcess) {
  DoAllConfig cfg{10, 1};
  RunResult r = run_do_all("B", cfg, std::make_unique<NoFaults>());
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_EQ(r.metrics.work_total, 10u);
  EXPECT_EQ(r.metrics.messages_total, 0u);
}

TEST(ProtocolB, GoAheadWakesLowerNumberedSurvivor) {
  DoAllConfig cfg{16, 4};  // groups {0,1}, {2,3}
  // Process 0 crashes after 1 unit, delivering nothing.  Process 1 should be
  // probed... actually process 1 times out on PTO and takes over directly
  // (same group).  For a cross-group probe, crash 0 and 1: process 2 times
  // out, probes nobody outside its group, and becomes active.  Here we
  // verify the run completes and somebody below the prober was reached via
  // go-aheads when applicable.
  std::vector<ScheduledFaults::Entry> entries{{0, 2, CrashPlan{false, 0}},
                                              {1, 2, CrashPlan{false, 0}}};
  RunResult r = run_do_all("B", cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
  ASSERT_TRUE(r.ok()) << r.violation;
  expect_theorem_2_8_bounds(cfg, r.metrics);
}

TEST(ProtocolB, ProbeFindsAliveGroupMate) {
  DoAllConfig cfg{36, 9};  // s = 3, groups {0,1,2},{3,4,5},{6,7,8}
  // Kill 0 after its first chunk's full checkpoint reaches group 1 only
  // partially; then group-1 members sort out activation among themselves.
  // Concretely: crash 0 mid full checkpoint (prefix 1), crash 4 on its first
  // action.  Eventually 3 should become active via timeout or probe; run
  // must complete either way with one active at a time.
  std::vector<ScheduledFaults::Entry> entries{{0, 16, CrashPlan{false, 1}},
                                              {4, 1, CrashPlan{false, 0}}};
  RunResult r = run_do_all("B", cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
  ASSERT_TRUE(r.ok()) << r.violation;
  expect_theorem_2_8_bounds(cfg, r.metrics);
}

TEST(ProtocolB, MuchFasterThanProtocolAUnderCascade) {
  DoAllConfig cfg{128, 64};
  auto cascade = [] {
    return std::make_unique<WorkCascadeFaults>(1, 63, /*deliver_prefix=*/0);
  };
  RunResult ra = run_do_all("A", cfg, cascade());
  RunResult rb = run_do_all("B", cfg, cascade());
  ASSERT_TRUE(ra.ok()) << ra.violation;
  ASSERT_TRUE(rb.ok()) << rb.violation;
  // A stalls on absolute deadlines DD(j) = j(n+3t); B's message-relative
  // timeouts finish in O(n + t).
  EXPECT_LT(rb.metrics.last_retire_round.to_u64_saturating() * 10,
            ra.metrics.last_retire_round.to_u64_saturating());
}

struct SweepCase {
  std::int64_t n;
  int t;
  int fault_mode;
  unsigned seed;
};

class ProtocolBSweep : public ::testing::TestWithParam<SweepCase> {};

std::unique_ptr<FaultInjector> make_faults(const SweepCase& c) {
  switch (c.fault_mode) {
    case 1:
      return std::make_unique<WorkCascadeFaults>(1, c.t - 1, 0);
    case 2:
      return std::make_unique<WorkCascadeFaults>(u(ceil_div(c.n, c.t)) + 1, c.t - 1, 1);
    case 3:
      return std::make_unique<RandomFaults>(0.05, c.t - 1, c.seed);
    default:
      return std::make_unique<NoFaults>();
  }
}

TEST_P(ProtocolBSweep, CompletesWithinTheorem28Bounds) {
  const SweepCase& c = GetParam();
  DoAllConfig cfg{c.n, c.t};
  RunResult r = run_do_all("B", cfg, make_faults(c));
  ASSERT_TRUE(r.ok()) << r.violation << " (" << cfg.to_string() << ")";
  expect_theorem_2_8_bounds(cfg, r.metrics);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProtocolBSweep,
    ::testing::Values(
        SweepCase{16, 4, 0, 0}, SweepCase{16, 4, 1, 0}, SweepCase{16, 4, 2, 0},
        SweepCase{16, 4, 3, 1}, SweepCase{100, 10, 1, 0}, SweepCase{100, 10, 2, 0},
        SweepCase{100, 10, 3, 2}, SweepCase{64, 16, 1, 0}, SweepCase{64, 16, 3, 3},
        SweepCase{50, 7, 1, 0}, SweepCase{50, 7, 3, 4}, SweepCase{8, 16, 1, 0},
        SweepCase{8, 16, 3, 5}, SweepCase{1, 4, 1, 0}, SweepCase{33, 11, 2, 0},
        SweepCase{33, 11, 3, 6}, SweepCase{256, 25, 1, 0}, SweepCase{256, 25, 3, 7},
        SweepCase{128, 2, 1, 0}, SweepCase{40, 3, 3, 8}, SweepCase{500, 36, 3, 9},
        SweepCase{81, 81, 1, 0}, SweepCase{81, 81, 3, 10}));

class ProtocolBRandom : public ::testing::TestWithParam<unsigned> {};

TEST_P(ProtocolBRandom, RandomCrashSchedulesAlwaysComplete) {
  DoAllConfig cfg{120, 12};
  RunResult r = run_do_all("B", cfg, std::make_unique<RandomFaults>(0.08, 11, GetParam()));
  ASSERT_TRUE(r.ok()) << r.violation;
  expect_theorem_2_8_bounds(cfg, r.metrics);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolBRandom, ::testing::Range(0u, 20u));

}  // namespace
}  // namespace dowork
