// The shared bound-formula oracle (src/harness/bounds.h): exact values at
// the boundary shapes the formulas are most often evaluated at, so a
// refactor of the arithmetic cannot silently shift a bound the tournament,
// the protocol families, and the fuzz campaign all assert.
#include "harness/bounds.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace dowork::harness {
namespace {

std::map<std::string, std::int64_t> bounds_of(const std::string& protocol, std::int64_t n,
                                              int t, int crash_budget) {
  std::map<std::string, std::int64_t> out;
  for (const auto& [key, value] : paper_bounds(protocol, n, t, crash_budget)) out[key] = value;
  return out;
}

TEST(BoundsTest, ProtocolAAtTOne) {
  // t = 1: sqrt ceil is 1, so msgs <= 9, rounds <= n + 3.
  const auto b = bounds_of("A", 5, 1, 0);
  EXPECT_EQ(b.at("bound_work_3n"), 15);
  EXPECT_EQ(b.at("bound_msgs"), 9);
  EXPECT_EQ(b.at("bound_rounds"), 5 * 1 + 3 * 1);
}

TEST(BoundsTest, ProtocolAAtTTwo) {
  // sqrt(2) ceils to 2: msgs <= 9 * 2 * 2 = 36.
  const auto b = bounds_of("A", 8, 2, 1);
  EXPECT_EQ(b.at("bound_work_3n"), 24);
  EXPECT_EQ(b.at("bound_msgs"), 36);
  EXPECT_EQ(b.at("bound_rounds"), 8 * 2 + 3 * 4);
}

TEST(BoundsTest, ProtocolBDiffersFromAInMsgsAndRounds) {
  const auto a = bounds_of("A", 16, 4, 3);
  const auto b = bounds_of("B", 16, 4, 3);
  EXPECT_EQ(a.at("bound_work_3n"), b.at("bound_work_3n"));  // both 3n
  EXPECT_EQ(a.at("bound_msgs"), 9 * 4 * 2);
  EXPECT_EQ(b.at("bound_msgs"), 10 * 4 * 2);
  EXPECT_EQ(a.at("bound_rounds"), 16 * 4 + 3 * 16);  // nt + 3t^2
  EXPECT_EQ(b.at("bound_rounds"), 3 * 16 + 8 * 4);   // 3n + 8t
}

TEST(BoundsTest, ProtocolCAtNEqualsT) {
  // n = t = 4: T = 4, log T = 2; work n + 2t, msgs n + 8 T log T; and no
  // rounds bound -- C's deadlines are exponential by design.
  const auto b = bounds_of("C", 4, 4, 3);
  EXPECT_EQ(b.at("bound_work_n_2t"), 4 + 8);
  EXPECT_EQ(b.at("bound_msgs"), 4 + 8 * 4 * 2);
  EXPECT_EQ(b.count("bound_rounds"), 0u);
}

TEST(BoundsTest, ProtocolCPadsTToPowerOfTwo) {
  // t = 5 pads to T = 8, log T = 3.
  const auto b = bounds_of("C", 20, 5, 0);
  EXPECT_EQ(b.at("bound_msgs"), 20 + 8 * 8 * 3);
}

TEST(BoundsTest, ProtocolCAtTOneUsesLogFloorOne) {
  // T = 1 would give log T = 0 and an absurd msgs <= n; the formula floors
  // the log factor at 1.
  const auto b = bounds_of("C", 6, 1, 0);
  EXPECT_EQ(b.at("bound_msgs"), 6 + 8 * 1 * 1);
}

TEST(BoundsTest, CRoundBudgetMatchesTheScaleCap) {
  // Shapes are capped at n + t <= 440 everywhere C is exactly simulated
  // (512-bit deadlines); the constant is shared, not re-derived per family.
  EXPECT_EQ(kCRoundBudget, 440);
}

TEST(BoundsTest, CBatchInflatesWorkByBatchesAndKeepsMsgs) {
  // batch = ceil(23/3) = 8: work <= n + 2t * batch; msgs as plain C.
  const auto c = bounds_of("C", 23, 3, 2);
  const auto cb = bounds_of("C_batch", 23, 3, 2);
  EXPECT_EQ(cb.at("bound_work_batched"), 23 + 2 * 3 * 8);
  EXPECT_EQ(cb.at("bound_msgs"), c.at("bound_msgs"));
  EXPECT_EQ(cb.count("bound_rounds"), 0u);
}

TEST(BoundsTest, CBatchReducesToCWhenBatchIsOne) {
  // n <= t means batch = 1 and the Corollary 3.9 bound collapses to
  // Theorem 3.8's n + 2t exactly (only the key differs).
  const auto c = bounds_of("C", 4, 4, 1);
  const auto cb = bounds_of("C_batch", 4, 4, 1);
  EXPECT_EQ(cb.at("bound_work_batched"), c.at("bound_work_n_2t"));
}

TEST(BoundsTest, ProtocolDAtZeroCrashes) {
  // f = 0: work <= 2n, msgs <= 2t^2, rounds <= ceil(n/t) + 2.
  const auto b = bounds_of("D", 12, 4, 0);
  EXPECT_EQ(b.at("bound_work_2n"), 24);
  EXPECT_EQ(b.at("bound_msgs"), 2 * 16);
  EXPECT_EQ(b.at("bound_rounds"), 3 + 2);
}

TEST(BoundsTest, ProtocolDAtMinorityBudget) {
  // The largest case-1 budget, f = t/2 - 1 = 3 at t = 8.
  const auto b = bounds_of("D", 16, 8, 3);
  EXPECT_EQ(b.at("bound_work_2n"), 32);
  EXPECT_EQ(b.at("bound_msgs"), (4 * 3 + 2) * 64);
  EXPECT_EQ(b.at("bound_rounds"), 4 * 2 + 4 * 3 + 2);
}

TEST(BoundsTest, BoundsAreMonotoneInTheCrashBudget) {
  // Asserting with the budget when fewer crashes happen must stay sound,
  // so every bound is non-decreasing in crash_budget.
  for (const char* proto : {"A", "B", "C", "C_batch", "D"}) {
    const auto lo = bounds_of(proto, 20, 5, 1);
    const auto hi = bounds_of(proto, 20, 5, 2);
    for (const auto& [key, value] : lo) {
      EXPECT_LE(value, hi.at(key)) << proto << " " << key;
    }
  }
}

TEST(BoundsTest, KeysCarryTheDispatchPrefixes) {
  // assert_bounds routes on the bound_work* / bound_msgs* / bound_rounds*
  // prefixes; every emitted key must match one.
  for (const char* proto : {"A", "B", "C", "C_batch", "D"}) {
    for (const auto& [key, value] : paper_bounds(proto, 20, 5, 2)) {
      const bool routed = key.rfind("bound_work", 0) == 0 ||
                          key.rfind("bound_msgs", 0) == 0 ||
                          key.rfind("bound_rounds", 0) == 0;
      EXPECT_TRUE(routed) << proto << " emits unroutable key " << key;
      EXPECT_GT(value, 0) << proto << " " << key;
    }
  }
}

TEST(BoundsTest, UnknownProtocolThrows) {
  EXPECT_THROW(paper_bounds("naive_C", 8, 2, 1), std::invalid_argument);
  EXPECT_THROW(paper_bounds("", 8, 2, 1), std::invalid_argument);
}

TEST(BoundsTest, HasPaperBoundsMatchesTheAuditedSet) {
  for (const char* proto : {"A", "B", "C", "C_batch", "D"})
    EXPECT_TRUE(has_paper_bounds(proto)) << proto;
  EXPECT_FALSE(has_paper_bounds("naive_C"));
  EXPECT_FALSE(has_paper_bounds("A_async"));  // mapped to A by the fuzzer, not audited
  EXPECT_FALSE(has_paper_bounds(""));
}

}  // namespace
}  // namespace dowork::harness
