// Promotion-boundary tests for the two-tier Round (util/round.h): exact
// arithmetic at 2^64 - 1 +- 1, automatic promotion/demotion, total ordering
// across representations, and preservation of BigUint's overflow semantics.
#include "util/round.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/process.h"

namespace dowork {
namespace {

constexpr std::uint64_t kMax = UINT64_MAX;  // 2^64 - 1

TEST(RoundPromotion, SizeStaysTwoWords) {
  // The point of the two-tier representation: a Round is pointer + word, so
  // the simulator's WakeEntry fits a third of a cache line instead of 72B.
  static_assert(sizeof(Round) == 16);
}

TEST(RoundPromotion, AddAcrossTheBoundaryIsExact) {
  Round r{kMax};
  EXPECT_TRUE(r.fits_u64());
  r += Round{1};
  EXPECT_FALSE(r.fits_u64());  // promoted at exactly 2^64
  EXPECT_EQ(r.to_string(), "18446744073709551616");
  EXPECT_EQ(r, Round::pow2(64));
  EXPECT_EQ(r.to_u64_saturating(), kMax);  // saturates like BigUint did

  // The carry is exact, not saturating: (2^64-1) + (2^64-1) = 2^65 - 2.
  Round s = Round{kMax} + Round{kMax};
  EXPECT_EQ(s.to_string(), "36893488147419103230");
  EXPECT_EQ(s, (BigUint{kMax} + BigUint{kMax}));
}

TEST(RoundPromotion, SubtractionDemotesBackBelowTheBoundary) {
  Round r = Round::pow2(64);  // promoted
  r -= Round{1};
  EXPECT_TRUE(r.fits_u64());  // demoted: representation is canonical
  EXPECT_EQ(r.to_u64_saturating(), kMax);
  EXPECT_EQ(r, Round{kMax});

  // Underflow still throws (the paper's deadline math must fail loudly).
  EXPECT_THROW(Round{5} - Round{6}, std::underflow_error);
  EXPECT_THROW(Round{5} - Round::pow2(64), std::underflow_error);
}

TEST(RoundPromotion, MultiplyAcrossTheBoundary) {
  Round r{std::uint64_t{1} << 63};
  r *= 2;  // exactly 2^64
  EXPECT_FALSE(r.fits_u64());
  EXPECT_EQ(r, Round::pow2(64));

  // (2^64-1) * (2^64-1): the same two-limb product BigUint computes.
  Round p = Round{kMax} * kMax;
  EXPECT_EQ(p, (BigUint{kMax} * kMax));

  // Multiplying a promoted value by 0 demotes to inline zero.
  Round z = Round::pow2(100) * std::uint64_t{0};
  EXPECT_TRUE(z.is_zero());
  EXPECT_TRUE(z.fits_u64());
  EXPECT_EQ(z, Round{0});
}

TEST(RoundPromotion, ShiftAcrossTheBoundary) {
  EXPECT_TRUE((Round{1} << 63).fits_u64());
  EXPECT_EQ(Round{1} << 64, Round::pow2(64));
  EXPECT_FALSE((Round{1} << 64).fits_u64());
  EXPECT_EQ(Round{3} << 63, Round{3} * (std::uint64_t{1} << 62) * 2);
  // Zero shifts anywhere without promoting or throwing, as in BigUint.
  EXPECT_TRUE((Round{0} << 1000).is_zero());
  // 512-bit overflow still throws.
  EXPECT_THROW(Round{1} << 512, std::overflow_error);
  EXPECT_THROW(Round::pow2(511) << 1, std::overflow_error);
  EXPECT_THROW(Round::pow2(511) + Round::pow2(511), std::overflow_error);
  EXPECT_THROW(Round::pow2(512), std::overflow_error);
}

TEST(RoundPromotion, OrderingIsTotalAcrossRepresentations) {
  const Round small{kMax};
  const Round promoted = Round::pow2(64);
  EXPECT_LT(small, promoted);           // small vs promoted: one null check
  EXPECT_GT(promoted, small);
  EXPECT_LT(Round{0}, small);           // small vs small: u64 compare
  EXPECT_LT(promoted, Round::pow2(65)); // promoted vs promoted: limb compare
  EXPECT_EQ(promoted, Round::pow2(64));
  EXPECT_NE(small, promoted);
  // A promoted value never equals an inline one (canonical representation).
  EXPECT_NE(Round::pow2(64) - Round{1}, promoted);
  // Interop with BigUint (implicit, demoting conversion).
  EXPECT_EQ(Round(BigUint{42}), Round{42});
  EXPECT_TRUE(Round(BigUint{42}).fits_u64());
  EXPECT_EQ(Round(BigUint::pow2(90)), Round::pow2(90));
}

TEST(RoundPromotion, ToStringRoundTripMatchesBigUintAtTheBoundary) {
  for (const Round& r : {Round{kMax - 1}, Round{kMax}, Round::pow2(64),
                         Round::pow2(64) + Round{1}}) {
    EXPECT_EQ(r.to_string(), r.as_big().to_string());
  }
  EXPECT_EQ(Round{kMax}.log2_floor(), 63);
  EXPECT_EQ(Round::pow2(64).log2_floor(), 64);
  EXPECT_EQ(Round{0}.log2_floor(), -1);
}

TEST(RoundPromotion, CopyAndAssignPreserveTheValueAcrossTiers) {
  Round promoted = Round::pow2(200);
  Round copy = promoted;  // deep copy of the promoted representation
  promoted -= Round{1};
  EXPECT_EQ(copy, Round::pow2(200));
  EXPECT_LT(promoted, copy);
  copy = Round{7};  // promoted -> small assignment
  EXPECT_TRUE(copy.fits_u64());
  Round small{3};
  small = Round::pow2(80);  // small -> promoted assignment
  EXPECT_EQ(small, Round::pow2(80));
}

// Protocol C's deadline shape D(i,m) = K(NT-m) * 2^(NT-1-m) spans both
// tiers when NT straddles ~64: the takeover order the correctness proof
// depends on (strictly decreasing in m) must hold across the promotion
// boundary exactly as it held for plain BigUint.  The golden-pinned
// protocol_c report (tests/golden/protocol_c.json, captured from the
// pre-Round binary) pins the full end-to-end consequence.
TEST(RoundPromotion, ProtocolCDeadlineShapeOrdersAcrossTheBoundary) {
  const std::uint64_t K = 5;
  const unsigned NT = 96;  // m near NT-1 gives inline deadlines, small m promoted
  Round prev;
  bool seen_small = false, seen_promoted = false;
  for (unsigned m = NT - 1; m + 1 >= 1; --m) {
    Round d = (Round{K} * (NT - m)) << (NT - 1 - m);
    (d.fits_u64() ? seen_small : seen_promoted) = true;
    EXPECT_GT(d, prev) << "m=" << m;
    prev = d;
    if (m == 0) break;
  }
  EXPECT_TRUE(seen_small);
  EXPECT_TRUE(seen_promoted);
  // never_round() beats every deadline, promoted ones included.
  EXPECT_GT(never_round(), prev);
}

}  // namespace
}  // namespace dowork
