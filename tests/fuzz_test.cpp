// The fuzzing subsystem end to end (src/fuzz/): generator determinism and
// validity, trace round-trip and record/replay bit-identity, campaign
// determinism across --jobs, and the planted-violation path -- a tightened
// bound produces a violation whose shrunk reproducer still fails the same
// way and replays bit-identically.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "fuzz/campaign.h"
#include "fuzz/generator.h"
#include "fuzz/shrink.h"
#include "fuzz/trace.h"
#include "harness/bounds.h"
#include "harness/scenario.h"

namespace dowork::fuzz {
namespace {

using harness::FaultSpec;
using harness::Scenario;
using harness::ScenarioResult;

TEST(FuzzGeneratorTest, PerIndexDeterministicAndScheduleIndependent) {
  // Case k depends only on (seed, k): regenerating a subset, in any order,
  // yields identical scenarios.
  const GeneratorOptions opts{42, 100};
  const std::vector<Scenario> all = generate_cases(opts, 50);
  ASSERT_EQ(all.size(), 50u);
  for (int k : {49, 7, 23, 0}) {
    const Scenario again = generate_case(opts, k);
    EXPECT_EQ(again.id, all[static_cast<std::size_t>(k)].id);
    EXPECT_EQ(again.faults.to_string(), all[static_cast<std::size_t>(k)].faults.to_string());
    EXPECT_EQ(again.params, all[static_cast<std::size_t>(k)].params);
    EXPECT_EQ(again.seed, all[static_cast<std::size_t>(k)].seed);
  }
  // A different seed draws a different campaign.
  const Scenario other = generate_case({43, 100}, 0);
  const bool differs = other.faults.to_string() != all[0].faults.to_string() ||
                       other.seed != all[0].seed || other.cfg.n != all[0].cfg.n;
  EXPECT_TRUE(differs);
}

TEST(FuzzGeneratorTest, EveryCaseIsValidAndRoundTrips) {
  // The generator doubles as a FaultSpec grammar fuzzer: every drawn spec
  // must survive parse(to_string()), and every case must sit inside the
  // region where the oracle applies.
  for (const Scenario& s : generate_cases({42, 100}, 200)) {
    EXPECT_EQ(FaultSpec::parse(s.faults.to_string()).to_string(), s.faults.to_string())
        << s.id;
    EXPECT_GE(s.cfg.t, 2) << s.id;
    EXPECT_EQ(s.repetitions, 1) << s.id;
    if (s.protocol == "C" || s.protocol == "C_batch")
      EXPECT_LE(s.cfg.n + s.cfg.t, harness::kCRoundBudget) << s.id;
    if (s.protocol == "D") EXPECT_EQ(s.cfg.n % s.cfg.t, 0) << s.id;
    // Exactly one bound policy: crash-only cases assert, weather/jam cases
    // report margins only.
    const bool asserts = s.params.count("assert_bounds") != 0;
    const bool reports = s.params.count("report_bounds") != 0;
    EXPECT_NE(asserts, reports) << s.id;
    if (asserts) {
      EXPECT_TRUE(s.faults.net.is_noop()) << s.id;
    }
  }
}

TEST(FuzzGeneratorTest, TightenScalesAttachedBounds) {
  // Find a case that asserts a work bound and check the 40% attachment is
  // the scaled value of the 100% attachment.
  for (int k = 0; k < 50; ++k) {
    const Scenario full = generate_case({42, 100}, k);
    if (!full.params.count("assert_bounds")) continue;
    const Scenario tight = generate_case({42, 40}, k);
    for (const auto& [key, value] : full.params) {
      if (key.rfind("bound_", 0) != 0) continue;
      EXPECT_EQ(tight.params.at(key), std::max<std::int64_t>(1, value * 40 / 100))
          << full.id << " " << key;
    }
    return;
  }
  FAIL() << "no asserting case in the first 50";
}

TEST(FuzzTraceTest, SerializationRoundTrips) {
  Trace trace;
  trace.id = "case00007/B";
  trace.substrate = "sync";
  trace.protocol = "B";
  trace.n = 24;
  trace.t = 6;
  trace.seed = 12345;
  trace.faults = "cascade(units=3,crashes=2,prefix=all,completes=1)";
  trace.params = {{"assert_bounds", 1}, {"bound_work_3n", 72}};
  trace.wants_message_faults = true;
  trace.crashes = {{4, 2, true, 7}, {9, 0, false, 0}};
  trace.message_faults = {{3, true, 0}, {11, false, 2}};
  trace.outcome = {false, 80, 120, 200, 2, "~2^12", "work 80 exceeds bound_work_3n=72"};
  const Trace back = Trace::parse(trace.to_string());
  EXPECT_EQ(back, trace);

  // Malformed input is rejected, not silently absorbed.
  EXPECT_THROW(Trace::parse("not a trace"), std::invalid_argument);
  EXPECT_THROW(Trace::parse(""), std::invalid_argument);
}

TEST(FuzzTraceTest, RecordReplayIsBitIdentical) {
  // Record real runs across the protocol mix and replay each trace both
  // frozen (decision streams) and rebuilt (seeds); all three executions
  // must agree on every outcome field.
  int replayed = 0;
  for (const Scenario& s : generate_cases({42, 100}, 30)) {
    const RecordedRun rec = run_recorded(s);
    EXPECT_EQ(outcome_of(rec.row), rec.trace.outcome) << s.id;
    const Trace reparsed = Trace::parse(rec.trace.to_string());
    EXPECT_EQ(reparsed, rec.trace) << s.id;
    EXPECT_EQ(outcome_of(replay(reparsed, /*frozen=*/true)), rec.trace.outcome) << s.id;
    EXPECT_EQ(outcome_of(replay(reparsed, /*frozen=*/false)), rec.trace.outcome) << s.id;
    ++replayed;
  }
  EXPECT_EQ(replayed, 30);
}

TEST(FuzzCampaignTest, SmokeCampaignIsCleanAndJobsIndependent) {
  // The CI acceptance pin, at smoke scale: 100 seed-42 cases, zero
  // violations, and a report byte-identical at --jobs 1 and --jobs 8.
  CampaignOptions opts;
  opts.cases = 100;
  opts.seed = 42;
  opts.quiet = true;
  opts.jobs = 1;
  const CampaignResult serial = run_campaign(opts);
  EXPECT_TRUE(serial.clean());
  ASSERT_EQ(serial.rows.size(), 100u);
  std::set<std::string> protocols;
  for (const ScenarioResult& row : serial.rows) {
    EXPECT_TRUE(row.ok) << row.id << ": " << row.violation;
    protocols.insert(row.protocol);
  }
  // The campaign exercises every audited protocol plus the async substrate.
  for (const char* p : {"A", "A_async", "B", "C", "C_batch", "D"})
    EXPECT_TRUE(protocols.count(p)) << p;

  opts.jobs = 8;
  const CampaignResult parallel = run_campaign(opts);
  EXPECT_EQ(parallel.to_json(), serial.to_json());
}

TEST(FuzzCampaignTest, DifferentialModeRunsSyncCasesOnBothBackends) {
  // --differential flips every sync case to the two-backend substrate; the
  // oracle contract (src/substrate/differential.h) says the legs agree
  // metric for metric, so a healthy campaign stays clean and every flipped
  // row reports the "differential" substrate.
  CampaignOptions opts;
  opts.cases = 24;
  opts.seed = 42;
  opts.quiet = true;
  opts.jobs = 2;
  opts.differential = true;
  const CampaignResult result = run_campaign(opts);
  EXPECT_TRUE(result.clean());
  ASSERT_EQ(result.rows.size(), 24u);
  int flipped = 0;
  for (const ScenarioResult& row : result.rows) {
    EXPECT_TRUE(row.ok) << row.id << ": " << row.violation;
    if (row.substrate == "differential") ++flipped;
    else EXPECT_EQ(row.substrate, "async") << row.id;
  }
  EXPECT_GT(flipped, 0);
  EXPECT_NE(result.to_json().find("\"differential\": true"), std::string::npos);
}

TEST(FuzzCampaignTest, ParallelDiffModeIsCleanAndJobsIndependent) {
  // --parallel-diff runs every sync case under the round pool and serial,
  // comparing whole decision traces; the pool's byte-identity contract
  // (sim/round_pool.h) says a healthy campaign stays clean, and the report
  // must stay byte-identical across --jobs like every other mode.
  CampaignOptions opts;
  opts.cases = 40;
  opts.seed = 42;
  opts.quiet = true;
  opts.jobs = 1;
  opts.parallel_diff = 4;
  const CampaignResult serial = run_campaign(opts);
  EXPECT_TRUE(serial.clean());
  ASSERT_EQ(serial.rows.size(), 40u);
  for (const ScenarioResult& row : serial.rows)
    EXPECT_TRUE(row.ok) << row.id << ": " << row.violation;
  EXPECT_NE(serial.to_json().find("\"parallel_diff\": 4"), std::string::npos);

  opts.jobs = 8;
  const CampaignResult parallel = run_campaign(opts);
  EXPECT_EQ(parallel.to_json(), serial.to_json());
}

TEST(FuzzCampaignTest, ParallelDiffModeShrinksSeriallyReproducedViolations) {
  // A tightened bound fails both legs the same way: that is not a
  // parallelism finding, so the case shrinks through the normal pipeline
  // (with the serial oracle leg's trace) instead of being reported as a
  // divergence.
  CampaignOptions opts;
  opts.cases = 24;
  opts.seed = 42;
  opts.tighten_pct = 40;
  opts.quiet = true;
  opts.jobs = 2;
  opts.parallel_diff = 4;
  const CampaignResult result = run_campaign(opts);
  ASSERT_FALSE(result.clean()) << "40% bounds should plant violations";
  bool checked_one = false;
  for (const CampaignViolation& v : result.violations) {
    if (v.row.substrate != "sync") continue;
    EXPECT_TRUE(is_bound_violation(v.row.violation)) << v.row.violation;
    EXPECT_EQ(v.row.violation.find("parallel-diff divergence"), std::string::npos)
        << v.row.violation;
    EXPECT_TRUE(is_bound_violation(v.shrunk.row.violation)) << v.shrunk.row.violation;
    const Trace reparsed = Trace::parse(v.trace.to_string());
    EXPECT_EQ(reparsed.substrate, "sync");
    EXPECT_EQ(outcome_of(replay(reparsed, /*frozen=*/true)), reparsed.outcome);
    checked_one = true;
    break;
  }
  EXPECT_TRUE(checked_one) << "no sync-substrate violation in the campaign";
}

TEST(FuzzCampaignTest, DifferentialModeShrinksSimReproducedViolations) {
  // A tightened bound fails the differential row on the sim leg's metrics;
  // the campaign re-runs the simulator alone, reproduces the violation, and
  // the normal shrink/replay pipeline takes over from there.
  CampaignOptions opts;
  opts.cases = 24;
  opts.seed = 42;
  opts.tighten_pct = 40;
  opts.quiet = true;
  opts.jobs = 2;
  opts.differential = true;
  const CampaignResult result = run_campaign(opts);
  ASSERT_FALSE(result.clean()) << "40% bounds should plant violations";
  bool checked_one = false;
  for (const CampaignViolation& v : result.violations) {
    if (v.row.substrate != "differential") continue;
    EXPECT_TRUE(is_bound_violation(v.row.violation)) << v.row.violation;
    EXPECT_TRUE(is_bound_violation(v.shrunk.row.violation)) << v.shrunk.row.violation;
    // The recovered trace is the sim leg's and replays bit-identically.
    const Trace reparsed = Trace::parse(v.trace.to_string());
    EXPECT_EQ(reparsed.substrate, "sync");
    EXPECT_EQ(outcome_of(replay(reparsed, /*frozen=*/true)), reparsed.outcome);
    checked_one = true;
    break;
  }
  EXPECT_TRUE(checked_one) << "no differential-substrate violation in the campaign";
}

TEST(FuzzShrinkTest, PlantedViolationShrinksAndReplays) {
  // Tighten every bound to 40% of the paper's value: violations are now
  // planted by construction.  The shrinker must produce a no-larger
  // reproducer that still fails in the bound category, and its trace must
  // replay bit-identically -- the full CI-artifact workflow, in-process.
  CampaignOptions opts;
  opts.cases = 40;
  opts.seed = 42;
  opts.tighten_pct = 40;
  opts.quiet = true;
  opts.jobs = 2;
  const CampaignResult result = run_campaign(opts);
  ASSERT_FALSE(result.clean()) << "40% bounds should plant violations";

  const CampaignViolation& v = result.violations.front();
  EXPECT_TRUE(is_bound_violation(v.row.violation)) << v.row.violation;
  EXPECT_TRUE(is_bound_violation(v.shrunk.row.violation)) << v.shrunk.row.violation;
  EXPECT_LE(v.shrunk.minimal.cfg.t, v.trace.t);
  EXPECT_LE(v.shrunk.minimal.cfg.n, v.trace.n);

  // The shrunk trace replays to the exact recorded outcome, through the
  // text format (what --trace-dir writes and --replay reads).
  const Trace reparsed = Trace::parse(v.shrunk.trace.to_string());
  EXPECT_EQ(reparsed.outcome, v.shrunk.trace.outcome);
  EXPECT_FALSE(reparsed.outcome.ok);
  EXPECT_EQ(outcome_of(replay(reparsed, /*frozen=*/true)), reparsed.outcome);

  // The report names both trace artifacts whether or not they were written.
  EXPECT_FALSE(v.trace_file.empty());
  EXPECT_FALSE(v.shrunk_trace_file.empty());
}

TEST(FuzzShrinkTest, ShrinkRejectsAPassingCase) {
  for (const Scenario& s : generate_cases({42, 100}, 5)) {
    if (!s.params.count("assert_bounds")) continue;
    EXPECT_THROW(shrink(s), std::invalid_argument);
    return;
  }
  FAIL() << "no asserting case in the first 5";
}

}  // namespace
}  // namespace dowork::fuzz
