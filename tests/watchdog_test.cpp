// Watchdog supervision (src/substrate/thread_substrate.cpp): a
// deliberately-wedged process must produce a structured abort within the
// round deadline -- never a hung run -- and teardown must join every worker
// (no thread leak) when the wedge honors cooperative cancellation.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "harness/fault_spec.h"
#include "substrate/fabric.h"
#include "substrate/thread_substrate.h"

namespace dowork::substrate {
namespace {

// Spins inside on_round forever; a std::thread cannot be killed from
// outside, so the only exit is the cooperative cancel token the watchdog
// trips (the documented contract for long-running protocol code).
class WedgedProcess final : public IProcess {
 public:
  Action on_round(const RoundContext&, const InboxView&) override {
    while (!run_cancelled()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return Action::none();
  }
  Round next_wake(const Round& now) const override { return now; }
  std::string describe() const override { return "wedged"; }
};

// Retires immediately: the other workers must not keep the run going.
class QuitterProcess final : public IProcess {
 public:
  Action on_round(const RoundContext&, const InboxView&) override {
    Action a;
    a.terminate = true;
    return a;
  }
  Round next_wake(const Round& now) const override { return now; }
};

ProtocolInfo wedge_protocol(int wedged_proc) {
  ProtocolInfo info;
  info.name = "wedge_fixture";
  info.sequential = false;
  info.strict_one_op = false;
  info.make_proc = [wedged_proc](const DoAllConfig&, int self) -> std::unique_ptr<IProcess> {
    if (self == wedged_proc) return std::make_unique<WedgedProcess>();
    return std::make_unique<QuitterProcess>();
  };
  return info;
}

TEST(WatchdogTest, WedgedWorkerAbortsStructurally) {
  DoAllConfig cfg;
  cfg.n = 4;
  cfg.t = 4;
  LiveOptions live;
  live.watchdog_ms = 200;
  live.join_grace_ms = 10'000;

  const auto start = std::chrono::steady_clock::now();
  LiveRunResult r =
      run_live_do_all(wedge_protocol(/*wedged_proc=*/2), cfg, harness::FaultSpec::none().make(),
                      RunOptions{}, live);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  // Structured degradation, not a hang: aborted metrics, the reason naming
  // the watchdog and the stalled process, and the verifier surfacing it.
  EXPECT_TRUE(r.run.metrics.aborted);
  EXPECT_NE(r.run.metrics.aborted_reason.find("watchdog"), std::string::npos)
      << r.run.metrics.aborted_reason;
  EXPECT_NE(r.run.metrics.aborted_reason.find("proc 2"), std::string::npos)
      << r.run.metrics.aborted_reason;
  EXPECT_NE(r.run.violation.find("aborted"), std::string::npos) << r.run.violation;

  // The cooperative wedge honors cancellation: every worker joined, nothing
  // leaked, and the whole run finished well under CTest scale.
  EXPECT_FALSE(r.stats.leaked);
  EXPECT_EQ(r.stats.threads, 4);
  EXPECT_LT(elapsed, std::chrono::seconds(60));
}

TEST(WatchdogTest, HealthyRunNeverTripsTheWatchdog) {
  // All-quitter control: the same deadline, no wedge, clean verdict.
  DoAllConfig cfg;
  cfg.n = 4;
  cfg.t = 4;
  LiveOptions live;
  live.watchdog_ms = 200;
  LiveRunResult r = run_live_do_all(wedge_protocol(/*wedged_proc=*/-1), cfg,
                                    harness::FaultSpec::none().make(), RunOptions{}, live);
  EXPECT_FALSE(r.run.metrics.aborted);
  EXPECT_FALSE(r.stats.leaked);
}

TEST(WatchdogTest, AbortCommitsNothingFromTheStalledRound) {
  // The wedge stalls round 0, so no work at all commits: the abort happens
  // before any of the round's evaluations are handed back.
  DoAllConfig cfg;
  cfg.n = 4;
  cfg.t = 2;
  LiveOptions live;
  live.watchdog_ms = 200;
  LiveRunResult r = run_live_do_all(wedge_protocol(/*wedged_proc=*/0), cfg,
                                    harness::FaultSpec::none().make(), RunOptions{}, live);
  EXPECT_TRUE(r.run.metrics.aborted);
  EXPECT_EQ(r.run.metrics.work_total, 0u);
  EXPECT_EQ(r.run.metrics.messages_total, 0u);
  EXPECT_FALSE(r.stats.leaked);
}

}  // namespace
}  // namespace dowork::substrate
