#include "protocols/protocol_a.h"

#include <gtest/gtest.h>

#include "core/runner.h"

namespace dowork {
namespace {

std::uint64_t u(std::int64_t v) { return static_cast<std::uint64_t>(v); }

// Generalized Theorem 2.3 bounds (n' = max(n, t), s = ceil(sqrt t)); small
// additive slack covers the non-square / non-divisible generalization.
void expect_theorem_2_3_bounds(const DoAllConfig& cfg, const RunMetrics& m) {
  const std::int64_t n_prime = std::max(cfg.n, static_cast<std::int64_t>(cfg.t));
  const std::int64_t s = int_sqrt_ceil(cfg.t);
  EXPECT_LE(m.work_total, 3 * u(n_prime) + u(cfg.t)) << "work bound";
  EXPECT_LE(m.messages_total, 9 * u(cfg.t) * u(s) + 9 * u(s) * u(s)) << "message bound";
  Round limit = Round{u(n_prime) + 3 * u(cfg.t)} * u(cfg.t) + Round{u(cfg.t)};
  EXPECT_LE(m.last_retire_round, limit) << "round bound";
  EXPECT_LE(m.max_concurrent_workers, 1u) << "single active process";
}

TEST(ProtocolA, FailureFreeProcessZeroDoesEverything) {
  DoAllConfig cfg{64, 16};
  RunResult r = run_do_all("A", cfg, std::make_unique<NoFaults>());
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_EQ(r.metrics.work_total, 64u);
  EXPECT_EQ(r.metrics.work_by_proc[0], 64u);
  // Only checkpoint traffic; well under the worst-case bound.
  EXPECT_EQ(r.metrics.messages_of(MsgKind::kCheckpoint), r.metrics.messages_total);
  expect_theorem_2_3_bounds(cfg, r.metrics);
  // Failure-free time: n work rounds + < 3t checkpoint rounds (Lemma 2.1).
  EXPECT_LE(r.metrics.last_retire_round, Round{64u + 3u * 16u});
}

TEST(ProtocolA, SingleProcess) {
  DoAllConfig cfg{10, 1};
  RunResult r = run_do_all("A", cfg, std::make_unique<NoFaults>());
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_EQ(r.metrics.work_total, 10u);
  EXPECT_EQ(r.metrics.messages_total, 0u);
}

TEST(ProtocolA, EveryProcessButLastCrashesImmediately) {
  DoAllConfig cfg{20, 9};
  std::vector<ScheduledFaults::Entry> entries;
  for (int p = 0; p < 8; ++p) entries.push_back({p, 1, CrashPlan{false, 0}});
  RunResult r = run_do_all("A", cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_EQ(r.metrics.work_by_proc[8], 20u);
  expect_theorem_2_3_bounds(cfg, r.metrics);
}

TEST(ProtocolA, CrashDuringPartialCheckpointLosesNothingPermanently) {
  DoAllConfig cfg{16, 4};  // s = 2, subchunks of 4 units
  // Process 0 works 4 units (actions 1-4), then crashes during the partial
  // checkpoint (action 5) delivering it to nobody.
  std::vector<ScheduledFaults::Entry> entries{{0, 5, CrashPlan{false, 0}}};
  RunResult r = run_do_all("A", cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
  ASSERT_TRUE(r.ok()) << r.violation;
  // Successor knew nothing, so the first subchunk is redone: work = 16 + 4.
  EXPECT_EQ(r.metrics.work_total, 20u);
  expect_theorem_2_3_bounds(cfg, r.metrics);
}

TEST(ProtocolA, CrashMidBroadcastDeliversPrefixOnly) {
  DoAllConfig cfg{16, 4};
  // Crash during the first partial checkpoint, reaching only process 1.
  std::vector<ScheduledFaults::Entry> entries{{0, 5, CrashPlan{true, 1}}};
  RunResult r = run_do_all("A", cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
  ASSERT_TRUE(r.ok()) << r.violation;
  // Process 1 heard (1): it resumes from subchunk 2 -- no work redone.
  EXPECT_EQ(r.metrics.work_total, 16u);
  EXPECT_EQ(r.metrics.work_by_proc[1], 12u);
  expect_theorem_2_3_bounds(cfg, r.metrics);
}

TEST(ProtocolA, TakeoverFromFullCheckpointEcho) {
  DoAllConfig cfg{36, 9};  // s = 3; chunk = 3 subchunks = 12 units
  // Process 0 performs chunk 1 (12 units) + 3 partial checkpoints = 15
  // actions, then the full checkpoint: direct to group 1 (action 16), echo
  // (action 17), direct to group 2 (action 18) -- crash there, nobody hears.
  std::vector<ScheduledFaults::Entry> entries{{0, 18, CrashPlan{false, 0}}};
  RunResult r = run_do_all("A", cfg, std::make_unique<ScheduledFaults>(std::move(entries)));
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_EQ(r.metrics.work_total, 36u);  // chunk 1 known everywhere needed
  expect_theorem_2_3_bounds(cfg, r.metrics);
}

struct SweepCase {
  std::int64_t n;
  int t;
  int fault_mode;  // 0 none, 1 cascade(1 unit), 2 cascade(subchunk), 3 random
  unsigned seed;
};

class ProtocolASweep : public ::testing::TestWithParam<SweepCase> {};

std::unique_ptr<FaultInjector> make_faults(const SweepCase& c) {
  switch (c.fault_mode) {
    case 1:
      return std::make_unique<WorkCascadeFaults>(1, c.t - 1, /*deliver_prefix=*/0);
    case 2:
      return std::make_unique<WorkCascadeFaults>(u(ceil_div(c.n, c.t)) + 1, c.t - 1,
                                                 /*deliver_prefix=*/1);
    case 3:
      return std::make_unique<RandomFaults>(0.05, c.t - 1, c.seed);
    default:
      return std::make_unique<NoFaults>();
  }
}

TEST_P(ProtocolASweep, CompletesWithinTheorem23Bounds) {
  const SweepCase& c = GetParam();
  DoAllConfig cfg{c.n, c.t};
  RunResult r = run_do_all("A", cfg, make_faults(c));
  ASSERT_TRUE(r.ok()) << r.violation << " (" << cfg.to_string() << ")";
  expect_theorem_2_3_bounds(cfg, r.metrics);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProtocolASweep,
    ::testing::Values(
        SweepCase{16, 4, 0, 0}, SweepCase{16, 4, 1, 0}, SweepCase{16, 4, 2, 0},
        SweepCase{16, 4, 3, 1}, SweepCase{100, 10, 0, 0}, SweepCase{100, 10, 1, 0},
        SweepCase{100, 10, 2, 0}, SweepCase{100, 10, 3, 2}, SweepCase{64, 16, 1, 0},
        SweepCase{64, 16, 2, 0}, SweepCase{64, 16, 3, 3}, SweepCase{50, 7, 1, 0},
        SweepCase{50, 7, 3, 4}, SweepCase{8, 16, 1, 0},   // n < t
        SweepCase{8, 16, 3, 5}, SweepCase{1, 4, 1, 0},    // single unit
        SweepCase{33, 11, 2, 0}, SweepCase{33, 11, 3, 6}, // prime t
        SweepCase{256, 25, 1, 0}, SweepCase{256, 25, 3, 7},
        SweepCase{128, 2, 1, 0}, SweepCase{40, 3, 2, 0}, SweepCase{40, 3, 3, 8},
        SweepCase{500, 36, 3, 9}, SweepCase{81, 81, 1, 0}, SweepCase{81, 81, 3, 10}));

// Different random seeds, moderately large instance.
class ProtocolARandom : public ::testing::TestWithParam<unsigned> {};

TEST_P(ProtocolARandom, RandomCrashSchedulesAlwaysComplete) {
  DoAllConfig cfg{120, 12};
  RunResult r = run_do_all("A", cfg, std::make_unique<RandomFaults>(0.08, 11, GetParam()));
  ASSERT_TRUE(r.ok()) << r.violation;
  expect_theorem_2_3_bounds(cfg, r.metrics);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolARandom, ::testing::Range(0u, 20u));

}  // namespace
}  // namespace dowork
