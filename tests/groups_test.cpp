#include "protocols/groups.h"

#include <gtest/gtest.h>

#include <set>

namespace dowork {
namespace {

TEST(GroupLayout, PerfectSquare) {
  GroupLayout g = GroupLayout::for_sqrt(16);
  EXPECT_EQ(g.group_size(), 4);
  EXPECT_EQ(g.num_groups(), 4);
  EXPECT_EQ(g.group_of(0), 0);
  EXPECT_EQ(g.group_of(15), 3);
  EXPECT_EQ(g.pos_in_group(6), 2);
  EXPECT_EQ(g.members(1), (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(g.members_above(1, 5), (std::vector<int>{6, 7}));
  EXPECT_EQ(g.members_above(1, 7), (std::vector<int>{}));
}

TEST(GroupLayout, NonSquareHasShortLastGroup) {
  GroupLayout g = GroupLayout::for_sqrt(10);  // s = 4, groups of 4,4,2
  EXPECT_EQ(g.group_size(), 4);
  EXPECT_EQ(g.num_groups(), 3);
  EXPECT_EQ(g.members(2), (std::vector<int>{8, 9}));
  EXPECT_EQ(g.end_of_group(2), 10);
}

TEST(GroupLayout, SingleProcess) {
  GroupLayout g = GroupLayout::for_sqrt(1);
  EXPECT_EQ(g.num_groups(), 1);
  EXPECT_EQ(g.members(0), (std::vector<int>{0}));
  EXPECT_EQ(g.members_above(0, 0), (std::vector<int>{}));
}

class GroupLayoutSweep : public ::testing::TestWithParam<int> {};

TEST_P(GroupLayoutSweep, GroupsPartitionTheProcesses) {
  int t = GetParam();
  GroupLayout g = GroupLayout::for_sqrt(t);
  std::set<int> seen;
  for (int grp = 0; grp < g.num_groups(); ++grp) {
    for (int m : g.members(grp)) {
      EXPECT_EQ(g.group_of(m), grp);
      EXPECT_TRUE(seen.insert(m).second) << "duplicate member " << m;
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), t);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), t - 1);
  // Group size is ceil(sqrt(t)): s^2 >= t > (s-1)^2.
  int s = g.group_size();
  EXPECT_GE(s * s, t);
  if (s > 1) EXPECT_LT((s - 1) * (s - 1), t);
}

INSTANTIATE_TEST_SUITE_P(AllSizes, GroupLayoutSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 10, 15, 16, 17, 25, 26, 36, 50,
                                           63, 64, 65, 100, 121, 128));

TEST(WorkPartition, EvenSplit) {
  WorkPartition p = WorkPartition::for_protocol_a(16, 4);  // 4 subchunks of 4
  EXPECT_EQ(p.num_subchunks(), 4);
  EXPECT_EQ(p.sub_begin(1), 1);
  EXPECT_EQ(p.sub_end(1), 4);
  EXPECT_EQ(p.sub_begin(4), 13);
  EXPECT_EQ(p.sub_end(4), 16);
}

TEST(WorkPartition, ChunkBoundaries) {
  WorkPartition p = WorkPartition::for_protocol_a(100, 9);  // s = 3
  EXPECT_FALSE(p.is_chunk_boundary(1));
  EXPECT_TRUE(p.is_chunk_boundary(3));
  EXPECT_TRUE(p.is_chunk_boundary(6));
  EXPECT_TRUE(p.is_chunk_boundary(9));  // final subchunk always a boundary
}

TEST(WorkPartition, FinalSubchunkIsBoundaryEvenWhenNotMultiple) {
  WorkPartition p = WorkPartition::for_protocol_a(100, 10);  // s = 4, 10 subchunks
  EXPECT_TRUE(p.is_chunk_boundary(4));
  EXPECT_TRUE(p.is_chunk_boundary(8));
  EXPECT_FALSE(p.is_chunk_boundary(9));
  EXPECT_TRUE(p.is_chunk_boundary(10));
}

struct PartitionCase {
  std::int64_t n;
  int t;
};

class PartitionSweep : public ::testing::TestWithParam<PartitionCase> {};

TEST_P(PartitionSweep, SubchunksTileTheWorkExactly) {
  auto [n, t] = GetParam();
  WorkPartition p = WorkPartition::for_protocol_a(n, t);
  std::int64_t expected_next = 1;
  std::int64_t total = 0;
  for (int c = 1; c <= p.num_subchunks(); ++c) {
    std::int64_t b = p.sub_begin(c), e = p.sub_end(c);
    if (b > e) {  // empty subchunk (n < t)
      EXPECT_EQ(b, expected_next);
      continue;
    }
    EXPECT_EQ(b, expected_next);
    total += e - b + 1;
    expected_next = e + 1;
    // Sizes differ by at most one unit.
    EXPECT_LE(e - b + 1, ceil_div(n, t));
  }
  EXPECT_EQ(total, n);
  EXPECT_EQ(expected_next, n + 1);
}

INSTANTIATE_TEST_SUITE_P(Shapes, PartitionSweep,
                         ::testing::Values(PartitionCase{16, 4}, PartitionCase{17, 4},
                                           PartitionCase{100, 7}, PartitionCase{5, 9},
                                           PartitionCase{1, 1}, PartitionCase{1, 16},
                                           PartitionCase{1000, 31}, PartitionCase{64, 64},
                                           PartitionCase{63, 64}, PartitionCase{65, 64}));

}  // namespace
}  // namespace dowork
