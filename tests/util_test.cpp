// Tests for util/: the table printer, number formatting, and the seeded RNG.
#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/strings.h"

namespace dowork {
namespace {

TEST(TablePrinter, AlignsColumnsAndPadsShortRows) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "23,456"});
  t.add_row({"only-one-cell"});
  std::string out = t.render();
  EXPECT_NE(out.find("| name          | value  |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name   | 23,456 |"), std::string::npos);
  EXPECT_NE(out.find("| only-one-cell |        |"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TablePrinter, TruncatesOverlongRows) {
  TablePrinter t({"a"});
  t.add_row({"1", "spillover"});
  // The extra cell is dropped by resize; rendering must not crash.
  std::string out = t.render();
  EXPECT_EQ(out.find("spillover"), std::string::npos);
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(18446744073709551615ull), "18,446,744,073,709,551,615");
}

TEST(Strings, Ratio) {
  EXPECT_EQ(ratio(1.0), "1.00x");
  EXPECT_EQ(ratio(12.345), "12.35x");
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(0, 1000), b.uniform(0, 1000));
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = r.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, SubsetMaskSized) {
  Rng r(7);
  EXPECT_EQ(r.subset_mask(13).size(), 13u);
  EXPECT_TRUE(r.subset_mask(0).empty());
}

TEST(Rng, ShufflePermutes) {
  Rng r(7);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  r.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(55);
  Rng child = a.fork();
  // Same construction replayed gives the same child stream.
  Rng b(55);
  Rng child2 = b.fork();
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(child.uniform(0, 1 << 30), child2.uniform(0, 1 << 30));
}

}  // namespace
}  // namespace dowork
