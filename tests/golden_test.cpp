// Golden regression values: the failure-free run of every protocol on a
// fixed instance (n=48, t=9) is fully deterministic, so its exact metrics
// pin down the implementation.  Any refactor that changes checkpoint
// cadence, timeout formulas, agreement round structure or deadline shapes
// shows up here first -- with values that can be re-derived from the paper:
//
//   baseline_all        t*n work, no messages, n rounds
//   baseline_checkpoint n work, n*(t-1)-ish checkpoints, work+ckpt rounds
//   A / B               n work; process 0 full-run checkpoint pattern:
//                       9 partial (subchunks) + chunk-boundary fulls; B adds
//                       nothing without failures (no probes)
//   C                   n + redone tail; ~2 messages per unit + polls;
//                       exponential last deadline (512-bit exact)
//   D                   n work, 2t(t-1) agreement messages, n/t + 2 rounds
//   D_coord             n work, 2(t-1) messages, n/t + constant rounds
#include <gtest/gtest.h>

#include "core/runner.h"

namespace dowork {
namespace {

struct Golden {
  const char* protocol;
  std::uint64_t work;
  std::uint64_t messages;
  const char* rounds;  // decimal, exact (0-based last retirement round)
};

class GoldenFailureFree : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenFailureFree, ExactMetricsOnFixedInstance) {
  const Golden& g = GetParam();
  DoAllConfig cfg{48, 9};
  RunResult r = run_do_all(g.protocol, cfg, std::make_unique<NoFaults>());
  ASSERT_TRUE(r.ok()) << r.violation;
  EXPECT_EQ(r.metrics.work_total, g.work);
  EXPECT_EQ(r.metrics.messages_total, g.messages);
  EXPECT_EQ(r.metrics.last_retire_round.to_string(), g.rounds);
  EXPECT_EQ(r.metrics.crashes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, GoldenFailureFree,
    ::testing::Values(
        Golden{"baseline_all", 432, 0, "47"},
        Golden{"baseline_checkpoint", 48, 384, "96"},
        Golden{"A", 48, 48, "68"},
        Golden{"B", 48, 48, "68"},
        Golden{"C", 54, 122, "394299154575543238773"},
        Golden{"C_batch", 84, 82, "722881783394214084685"},
        Golden{"naive_C", 76, 76, "115642835633287680942631221253776606815"},
        Golden{"D", 48, 144, "7"},
        Golden{"D_coord", 48, 16, "14"}),
    [](const auto& info) { return std::string(info.param.protocol); });

// A second instance shape (non-square t, n not divisible) to pin the
// generalized geometry.
TEST(GoldenFailureFree, NonSquareInstanceStaysDeterministic) {
  DoAllConfig cfg{50, 7};
  RunResult a1 = run_do_all("A", cfg, std::make_unique<NoFaults>());
  RunResult a2 = run_do_all("A", cfg, std::make_unique<NoFaults>());
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(a1.metrics.work_total, 50u);
  EXPECT_EQ(a1.metrics.messages_total, a2.metrics.messages_total);
  EXPECT_EQ(a1.metrics.last_retire_round, a2.metrics.last_retire_round);
}

}  // namespace
}  // namespace dowork
