#include "util/biguint.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dowork {
namespace {

TEST(BigUint, DefaultIsZero) {
  BigUint z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.to_string(), "0");
  EXPECT_EQ(z.to_u64_saturating(), 0u);
  EXPECT_EQ(z.log2_floor(), -1);
}

TEST(BigUint, U64RoundTrip) {
  BigUint v{123456789ull};
  EXPECT_TRUE(v.fits_u64());
  EXPECT_EQ(v.to_u64_saturating(), 123456789ull);
  EXPECT_EQ(v.to_string(), "123456789");
}

TEST(BigUint, AdditionCarriesAcrossLimbs) {
  BigUint a{UINT64_MAX};
  BigUint b = a + BigUint{1};
  EXPECT_FALSE(b.fits_u64());
  EXPECT_EQ(b, BigUint::pow2(64));
  EXPECT_EQ(b.to_string(), "18446744073709551616");
}

TEST(BigUint, SubtractionBorrows) {
  BigUint a = BigUint::pow2(128);
  BigUint b = a - BigUint{1};
  EXPECT_EQ(b + BigUint{1}, a);
  EXPECT_LT(b, a);
}

TEST(BigUint, SubtractionUnderflowThrows) {
  BigUint a{5};
  EXPECT_THROW(a - BigUint{6}, std::underflow_error);
}

TEST(BigUint, MultiplicationByU64) {
  BigUint a{1000000007ull};
  BigUint b = a * 1000000009ull;
  EXPECT_EQ(b.to_string(), "1000000016000000063");
  // (2^64-1) * (2^64-1) spans two limbs.
  BigUint c = BigUint{UINT64_MAX} * UINT64_MAX;
  EXPECT_EQ(c + BigUint{UINT64_MAX} + BigUint{UINT64_MAX}, BigUint::pow2(128) - BigUint{1});
}

TEST(BigUint, ShiftLeft) {
  EXPECT_EQ(BigUint{1} << 100, BigUint::pow2(100));
  EXPECT_EQ(BigUint{3} << 64, BigUint::pow2(64) * 3ull);
  EXPECT_EQ(BigUint{7} << 0, BigUint{7});
}

TEST(BigUint, ShiftOverflowThrows) {
  EXPECT_THROW(BigUint{1} << 512, std::overflow_error);
  EXPECT_THROW(BigUint::pow2(511) << 1, std::overflow_error);
}

TEST(BigUint, Pow2Bounds) {
  EXPECT_EQ(BigUint::pow2(0), BigUint{1});
  EXPECT_EQ(BigUint::pow2(511).log2_floor(), 511);
  EXPECT_THROW(BigUint::pow2(512), std::overflow_error);
}

TEST(BigUint, AdditionOverflowThrows) {
  BigUint max = BigUint::pow2(511);
  EXPECT_THROW(max + max, std::overflow_error);
}

TEST(BigUint, OrderingIsLexicographicOnLimbs) {
  EXPECT_LT(BigUint{5}, BigUint{6});
  EXPECT_LT(BigUint{UINT64_MAX}, BigUint::pow2(64));
  EXPECT_GT(BigUint::pow2(300), BigUint::pow2(299) + BigUint::pow2(298));
  EXPECT_EQ(BigUint{42}, BigUint{42});
}

TEST(BigUint, Log2Floor) {
  EXPECT_EQ(BigUint{1}.log2_floor(), 0);
  EXPECT_EQ(BigUint{2}.log2_floor(), 1);
  EXPECT_EQ(BigUint{3}.log2_floor(), 1);
  EXPECT_EQ(BigUint::pow2(200).log2_floor(), 200);
  EXPECT_EQ((BigUint::pow2(200) - BigUint{1}).log2_floor(), 199);
}

TEST(BigUint, ToStringLargeValue) {
  // 2^128 = 340282366920938463463374607431768211456
  EXPECT_EQ(BigUint::pow2(128).to_string(), "340282366920938463463374607431768211456");
}

TEST(BigUint, SaturatingU64) {
  EXPECT_EQ(BigUint::pow2(70).to_u64_saturating(), UINT64_MAX);
}

// The exact shape Protocol C uses: D(i,m) = K(NT-m) * 2^(NT-1-m).
TEST(BigUint, ProtocolCDeadlineShape) {
  const std::uint64_t K = 5 * 64 + 2 * 6;
  const unsigned NT = 128 + 64;
  BigUint d1 = BigUint{K} * (NT - 1) << (NT - 1 - 1);
  BigUint d2 = BigUint{K} * (NT - 2) << (NT - 1 - 2);
  EXPECT_GT(d1, d2);
  // The deadline recurrence the proof needs: D(m) > (NT-m)K + sum_{m'>m} D(m').
  BigUint sum{0};
  for (unsigned m = NT - 1; m >= NT - 20; --m) {
    BigUint d = BigUint{K} * (NT - m) << (NT - 1 - m);
    EXPECT_GE(d, sum + BigUint{K} * (NT - m)) << "m=" << m;
    sum += d;
  }
}

}  // namespace
}  // namespace dowork
