// The live thread substrate against the simulator as differential oracle
// (src/substrate/): metric-for-metric equality under the deterministic
// barrier schedule across protocols and adversaries, paper bounds under the
// free schedule, kill-point accounting, and clean join-all teardown.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/runner.h"
#include "harness/bounds.h"
#include "harness/fault_spec.h"
#include "substrate/differential.h"
#include "substrate/thread_substrate.h"

namespace dowork::substrate {
namespace {

using harness::FaultSpec;

// One differential case: sim leg, live deterministic leg, field-for-field
// equal metrics and both legs verified.
void expect_differential_ok(const std::string& protocol, std::int64_t n, int t,
                            const FaultSpec& spec) {
  DoAllConfig cfg;
  cfg.n = n;
  cfg.t = t;
  DiffResult d = run_differential(protocol, cfg, [&] { return spec.make(); });
  EXPECT_EQ(d.divergence, "") << protocol << " n=" << n << " t=" << t << " faults "
                              << spec.to_string();
  EXPECT_FALSE(d.live.stats.leaked);
  EXPECT_EQ(d.live.stats.threads, t);
}

FaultSpec chunk_cascade(std::int64_t n, int t) {
  return FaultSpec::cascade(
      static_cast<std::uint64_t>(ceil_div(n, int_sqrt_ceil(t)) + 1), t - 1, /*prefix=*/1);
}

TEST(SubstrateTest, DifferentialFaultFree) {
  expect_differential_ok("A", 64, 8, FaultSpec::none());
  expect_differential_ok("B", 64, 8, FaultSpec::none());
  expect_differential_ok("C", 32, 8, FaultSpec::none());
  expect_differential_ok("D", 64, 8, FaultSpec::none());
}

TEST(SubstrateTest, DifferentialScriptedCrashes) {
  expect_differential_ok("A", 64, 8, chunk_cascade(64, 8));
  expect_differential_ok("B", 64, 8, chunk_cascade(64, 8));
  expect_differential_ok("C", 32, 8, FaultSpec::cascade(3, 7, /*prefix=*/0));
  // D's crash budget stays under the Theorem 4.1 case-1 majority line.
  expect_differential_ok("D", 64, 8, FaultSpec::cascade(2, 3, /*prefix=*/1));
}

TEST(SubstrateTest, DifferentialAdaptiveAdversaries) {
  // Adaptive strategies derive their choices from observed committed state;
  // the deterministic schedule makes the observations identical on both
  // legs, so even the adversary's decisions replay exactly.
  expect_differential_ok("A", 64, 8, FaultSpec::adaptive("greedy", 7, /*seed=*/3));
  expect_differential_ok("B", 64, 8, FaultSpec::adaptive("chain", 7, /*seed=*/3));
  expect_differential_ok("D", 64, 8, FaultSpec::adaptive("greedy", 3, /*seed=*/3));
}

TEST(SubstrateTest, DifferentialLargerShape) {
  expect_differential_ok("B", 256, 16, chunk_cascade(256, 16));
}

TEST(SubstrateTest, CompareMetricsReportsFirstDivergence) {
  RunMetrics a;
  a.work_total = 10;
  RunMetrics b = a;
  EXPECT_EQ(compare_metrics(a, b), "");
  b.work_total = 11;
  EXPECT_EQ(compare_metrics(a, b), "work_total: sim=10 live=11");
  b = a;
  b.work_by_proc = {1, 2};
  EXPECT_NE(compare_metrics(a, b), "");
}

TEST(SubstrateTest, KillPointCensusMatchesCrashCount) {
  DoAllConfig cfg;
  cfg.n = 64;
  cfg.t = 8;
  const FaultSpec spec = chunk_cascade(cfg.n, cfg.t);
  LiveRunResult r = run_live_do_all("B", cfg, spec.make());
  ASSERT_EQ(r.run.violation, "");
  EXPECT_GT(r.run.metrics.crashes, 0u);
  EXPECT_EQ(r.stats.kills_send_commit + r.stats.kills_mid_broadcast + r.stats.kills_round_barrier,
            r.run.metrics.crashes);
  EXPECT_FALSE(r.stats.leaked);
}

TEST(SubstrateTest, MidBroadcastKillsCutDeliveries) {
  // prefix=1 on a multi-recipient broadcast classifies as a mid-broadcast
  // kill (one send escaped, the rest were cut).  The cascade adversary
  // always crashes on work actions, so script the crash instead: sweep
  // proc 0's first few non-idle actions -- B's early schedule includes
  // checkpoint broadcasts to its sqrt(t) group -- until one lands on a
  // multi-recipient send.
  DoAllConfig cfg;
  cfg.n = 64;
  cfg.t = 8;
  bool saw_mid_broadcast = false;
  for (std::uint64_t nth = 1; nth <= 12 && !saw_mid_broadcast; ++nth) {
    ScheduledFaults::Entry e;
    e.proc = 0;
    e.on_nth_action = nth;
    e.plan.work_completes = true;
    e.plan.deliver_prefix = 1;
    LiveRunResult r = run_live_do_all("B", cfg, FaultSpec::scheduled({e}).make());
    ASSERT_EQ(r.run.violation, "") << "nth=" << nth;
    saw_mid_broadcast = r.stats.kills_mid_broadcast > 0;
  }
  EXPECT_TRUE(saw_mid_broadcast);
}

TEST(SubstrateTest, ThroughputIsMeasured) {
  DoAllConfig cfg;
  cfg.n = 64;
  cfg.t = 8;
  LiveRunResult r = run_live_do_all("B", cfg, FaultSpec::none().make());
  ASSERT_EQ(r.run.violation, "");
  EXPECT_GT(r.stats.wall_seconds, 0.0);
  EXPECT_GT(r.stats.units_per_sec, 0.0);
}

// Free schedule: commits land in completion order, so the OS scheduler is a
// real adversary and metric equality with the sim is not expected -- but the
// paper's theorem bounds and the verifier must hold on every execution.
void expect_free_schedule_within_bounds(const std::string& protocol, std::int64_t n, int t,
                                        const FaultSpec& spec, int crash_budget) {
  DoAllConfig cfg;
  cfg.n = n;
  cfg.t = t;
  LiveOptions live;
  live.schedule = LiveOptions::Schedule::kFree;
  LiveRunResult r = run_live_do_all(protocol, cfg, spec.make(), RunOptions{}, live);
  ASSERT_EQ(r.run.violation, "") << protocol << " free schedule";
  EXPECT_FALSE(r.stats.leaked);
  const RunMetrics& m = r.run.metrics;
  for (const auto& [key, val] : harness::paper_bounds(protocol, n, t, crash_budget)) {
    const auto bound = static_cast<std::uint64_t>(val);
    if (key.rfind("bound_work", 0) == 0) {
      EXPECT_LE(m.work_total, bound) << protocol << " " << key;
    } else if (key.rfind("bound_msgs", 0) == 0) {
      EXPECT_LE(m.messages_total, bound) << protocol << " " << key;
    } else if (key.rfind("bound_rounds", 0) == 0) {
      EXPECT_TRUE(m.last_retire_round <= Round(bound)) << protocol << " " << key;
    }
  }
}

TEST(SubstrateTest, FreeScheduleSatisfiesPaperBounds) {
  expect_free_schedule_within_bounds("A", 64, 8, chunk_cascade(64, 8), 7);
  expect_free_schedule_within_bounds("B", 64, 8, chunk_cascade(64, 8), 7);
  expect_free_schedule_within_bounds("D", 64, 8, FaultSpec::cascade(2, 3, 1), 3);
}

TEST(SubstrateTest, SimSubstrateAdapterMatchesRunDoAll) {
  DoAllConfig cfg;
  cfg.n = 64;
  cfg.t = 8;
  const FaultSpec spec = chunk_cascade(cfg.n, cfg.t);
  auto sub = make_substrate(Backend::kSim);
  EXPECT_STREQ(sub->name(), "sim");
  RunResult via_adapter = sub->run(find_protocol("B"), cfg, spec.make(), RunOptions{});
  RunResult direct = run_do_all("B", cfg, spec.make());
  EXPECT_EQ(compare_metrics(direct.metrics, via_adapter.metrics), "");
  EXPECT_EQ(sub->last_live_stats().threads, 0);
}

TEST(SubstrateTest, ThreadSubstrateAdapterReportsLiveStats) {
  DoAllConfig cfg;
  cfg.n = 64;
  cfg.t = 8;
  auto sub = make_substrate(Backend::kThread);
  EXPECT_STREQ(sub->name(), "thread");
  RunResult r = sub->run(find_protocol("B"), cfg, FaultSpec::none().make(), RunOptions{});
  EXPECT_EQ(r.violation, "");
  EXPECT_EQ(sub->last_live_stats().threads, 8);
  EXPECT_GT(sub->last_live_stats().units_per_sec, 0.0);
}

TEST(SubstrateTest, BackendNames) {
  EXPECT_STREQ(to_string(Backend::kSim), "sim");
  EXPECT_STREQ(to_string(Backend::kThread), "thread");
}

TEST(SubstrateTest, ProtocolDCacheFreeConstructionIsObservablyIdentical) {
  // The live backend builds D without the run-shared agreement merge cache
  // (registry.h); the cache is a pure memoization, so the sim run with and
  // without it must agree on every metric -- this is what licenses comparing
  // a shared-cache sim leg against a cache-free live leg.
  const ProtocolInfo& info = find_protocol("D");
  DoAllConfig cfg;
  cfg.n = 64;
  cfg.t = 8;
  const FaultSpec spec = FaultSpec::cascade(2, 3, 1);
  Simulator::Options so;
  so.strict_one_op = true;
  so.n_units = cfg.n;
  Simulator with_cache(make_processes(info, cfg, std::nullopt, /*shared_state=*/true),
                       spec.make(), so);
  Simulator cache_free(make_processes(info, cfg, std::nullopt, /*shared_state=*/false),
                       spec.make(), so);
  const RunMetrics a = with_cache.run();
  const RunMetrics b = cache_free.run();
  EXPECT_EQ(compare_metrics(a, b), "");
}

}  // namespace
}  // namespace dowork::substrate
